package dgcl

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"dgcl/internal/graph"
	"dgcl/internal/testutil"
)

// Resilience acceptance battery (ISSUE 4): a seeded fail-stop crash
// mid-training must be detected, recovered by replanning over the survivors
// and restoring the newest checkpoint, and must land in the fault-free loss
// band without leaking goroutines; a kill-and-resume must be bit-identical
// to an uninterrupted run across many seeds; and corrupt checkpoints must
// fall back to the newest intact generation, never panicking.

// resilientFixture builds a small 4-GPU system plus the training inputs.
func resilientFixture(t *testing.T, seed int64) (*System, *graph.Graph, *Model, *Matrix, *Matrix) {
	t.Helper()
	g := WebGoogle.Generate(4096, seed)
	sys := Init(TopologyForGPUCountMust(4), Options{Seed: seed})
	if err := sys.BuildCommInfo(g, 16); err != nil {
		t.Fatal(err)
	}
	model := NewModel(GCN, 16, 8, 2, seed+1)
	features := RandomFeatures(g.NumVertices(), 16, seed+2)
	targets := RandomFeatures(g.NumVertices(), 8, seed+3)
	return sys, g, model, features, targets
}

func trainOpts(epochs int, dir string) TrainOptions {
	return TrainOptions{
		Epochs:        epochs,
		NewOptimizer:  func() Optimizer { return NewSGD(0.01, 0.9) },
		CheckpointDir: dir,
	}
}

func finalWeightsBitIdentical(t *testing.T, a, b *Model, label string) {
	t.Helper()
	if len(a.Layers) != len(b.Layers) {
		t.Fatalf("%s: layer counts differ: %d vs %d", label, len(a.Layers), len(b.Layers))
	}
	for li := range a.Layers {
		ap, bp := a.Layers[li].Params(), b.Layers[li].Params()
		for pi := range ap {
			for j := range ap[pi].Data {
				if ap[pi].Data[j] != bp[pi].Data[j] {
					t.Fatalf("%s: layer %d param %d element %d differs: %v vs %v",
						label, li, pi, j, ap[pi].Data[j], bp[pi].Data[j])
				}
			}
		}
	}
}

func TestChaosCrashRecoveryStaysInLossBand(t *testing.T) {
	const epochs = 6

	// Fault-free baseline.
	sysA, _, modelA, featA, targA := resilientFixture(t, 11)
	base, err := sysA.Train(context.Background(), modelA, featA, targA, trainOpts(epochs, ""))
	if err != nil {
		t.Fatal(err)
	}

	// Same run with device 1 dying at epoch 2 and durable checkpoints.
	before := testutil.Goroutines()
	sysB, _, modelB, featB, targB := resilientFixture(t, 11)
	if err := sysB.SetRunOptions(RunOptions{
		Crash: &CrashConfig{Events: []CrashEvent{{Device: 1, Epoch: 2, Stage: 0}}},
	}); err != nil {
		t.Fatal(err)
	}
	opts := trainOpts(epochs, t.TempDir())
	res, err := sysB.Train(context.Background(), modelB, featB, targB, opts)
	if err != nil {
		t.Fatalf("crashed run did not recover: %v", err)
	}

	if len(res.Recoveries) != 1 {
		t.Fatalf("recoveries = %+v, want exactly one", res.Recoveries)
	}
	ev := res.Recoveries[0]
	if !reflect.DeepEqual(ev.Down, []int{1}) {
		t.Fatalf("recovery removed %v, want [1]", ev.Down)
	}
	if !reflect.DeepEqual(ev.Survivors, []int{0, 2, 3}) {
		t.Fatalf("survivors = %v, want [0 2 3]", ev.Survivors)
	}
	if ev.FailedEpoch != 2 {
		t.Fatalf("failure detected at epoch %d, want 2", ev.FailedEpoch)
	}
	// Checkpoints were written for epochs 1 and 2 before the crash, so the
	// restore is durable, not in-memory.
	if ev.Generation < 0 {
		t.Fatal("recovery fell back to in-memory state despite durable checkpoints")
	}
	if ev.ResumedEpoch != 2 {
		t.Fatalf("resumed at epoch %d, want 2 (newest checkpoint)", ev.ResumedEpoch)
	}
	if !reflect.DeepEqual(sysB.AliveDevices(), []int{0, 2, 3}) {
		t.Fatalf("alive devices after recovery = %v, want [0 2 3]", sysB.AliveDevices())
	}

	// The degraded run trains the same global vertex set (the dead device's
	// vertices moved to survivors), so its final loss must sit in the
	// fault-free band.
	got, want := res.Losses[epochs-1], base.Losses[epochs-1]
	if math.IsNaN(got) || math.Abs(got-want)/math.Abs(want) > 0.02 {
		t.Fatalf("final loss %v outside the fault-free band around %v", got, want)
	}
	// And it still makes progress: the last loss beats the first.
	if res.Losses[epochs-1] >= res.Losses[0] {
		t.Fatalf("no convergence after recovery: %v -> %v", res.Losses[0], res.Losses[epochs-1])
	}

	if !testutil.GoroutinesSettleTo(before, 2*time.Second) {
		t.Fatalf("goroutines leaked across crash recovery: %d before, %d after", before, testutil.Goroutines())
	}
}

func TestResumeBitIdenticalAcrossSeeds(t *testing.T) {
	const (
		seeds    = 20
		epochs   = 5
		killedAt = 3
	)
	for i := 0; i < seeds; i++ {
		seed := int64(100 + i*13)
		// Uninterrupted run.
		sysA, _, modelA, featA, targA := resilientFixture(t, seed)
		full, err := sysA.Train(context.Background(), modelA, featA, targA, trainOpts(epochs, ""))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Killed after killedAt epochs: the process "dies", a fresh process
		// resumes from the durable checkpoint.
		dir := t.TempDir()
		sysB, _, modelB, featB, targB := resilientFixture(t, seed)
		if _, err := sysB.Train(context.Background(), modelB, featB, targB, trainOpts(killedAt, dir)); err != nil {
			t.Fatalf("seed %d pre-kill: %v", seed, err)
		}
		sysC, _, modelC, featC, targC := resilientFixture(t, seed)
		opts := trainOpts(epochs, dir)
		opts.Resume = true
		resumed, err := sysC.Train(context.Background(), modelC, featC, targC, opts)
		if err != nil {
			t.Fatalf("seed %d resume: %v", seed, err)
		}
		if resumed.StartEpoch != killedAt {
			t.Fatalf("seed %d resumed at epoch %d, want %d", seed, resumed.StartEpoch, killedAt)
		}
		// Per-epoch losses after the resume point are bit-identical float64s,
		// and the final weights match the uninterrupted run exactly.
		for e := killedAt; e < epochs; e++ {
			if resumed.Losses[e] != full.Losses[e] {
				t.Fatalf("seed %d epoch %d loss diverged: %v vs %v", seed, e, resumed.Losses[e], full.Losses[e])
			}
		}
		finalWeightsBitIdentical(t, full.Model, resumed.Model, "resume")
	}
}

func TestResumeRejectsMismatchedConfiguration(t *testing.T) {
	dir := t.TempDir()
	sysA, _, modelA, featA, targA := resilientFixture(t, 5)
	if _, err := sysA.Train(context.Background(), modelA, featA, targA, trainOpts(2, dir)); err != nil {
		t.Fatal(err)
	}
	// Different system seed: resuming would silently break determinism.
	g := WebGoogle.Generate(4096, 5)
	sysB := Init(TopologyForGPUCountMust(4), Options{Seed: 6})
	if err := sysB.BuildCommInfo(g, 16); err != nil {
		t.Fatal(err)
	}
	opts := trainOpts(3, dir)
	opts.Resume = true
	if _, err := sysB.Train(context.Background(), NewModel(GCN, 16, 8, 2, 6),
		RandomFeatures(g.NumVertices(), 16, 7), RandomFeatures(g.NumVertices(), 8, 8), opts); err == nil {
		t.Fatal("resume with a different system seed accepted")
	}
	// Different optimizer: the checkpointed state would not bind.
	sysC, _, modelC, featC, targC := resilientFixture(t, 5)
	badOpt := trainOpts(3, dir)
	badOpt.Resume = true
	badOpt.NewOptimizer = func() Optimizer { return NewAdam(0.01) }
	if _, err := sysC.Train(context.Background(), modelC, featC, targC, badOpt); err == nil {
		t.Fatal("resume with a different optimizer accepted")
	}
}

// payloadFiles returns the store's payload files, oldest generation first.
func payloadFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "gen-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(matches)
	return matches
}

func TestCorruptCheckpointsFallBackToNewestIntact(t *testing.T) {
	dir := t.TempDir()
	sysA, _, modelA, featA, targA := resilientFixture(t, 21)
	if _, err := sysA.Train(context.Background(), modelA, featA, targA, trainOpts(4, dir)); err != nil {
		t.Fatal(err)
	}
	payloads := payloadFiles(t, dir)
	if len(payloads) != 3 {
		t.Fatalf("store retains %d generations, want 3 (default keep)", len(payloads))
	}
	// Bit-flip the newest payload: resume must fall back one generation (to
	// epoch 3) and continue without panicking.
	newest := payloads[len(payloads)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sysB, _, modelB, featB, targB := resilientFixture(t, 21)
	opts := trainOpts(5, dir)
	opts.Resume = true
	res, err := sysB.Train(context.Background(), modelB, featB, targB, opts)
	if err != nil {
		t.Fatalf("resume over corrupt newest generation: %v", err)
	}
	if res.StartEpoch != 3 {
		t.Fatalf("resumed at epoch %d, want 3 (newest intact generation)", res.StartEpoch)
	}

	// With every payload destroyed, resume degrades to a clean fresh start.
	for _, p := range payloadFiles(t, dir) {
		if err := os.Truncate(p, 3); err != nil {
			t.Fatal(err)
		}
	}
	sysC, _, modelC, featC, targC := resilientFixture(t, 21)
	fresh := trainOpts(2, t.TempDir())
	fresh.Resume = true
	res, err = sysC.Train(context.Background(), modelC, featC, targC, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if res.StartEpoch != 0 {
		t.Fatalf("fresh-start resume began at epoch %d, want 0", res.StartEpoch)
	}
}

func TestDegradeValidation(t *testing.T) {
	sys, _, _, _, _ := resilientFixture(t, 31)
	if err := sys.Degrade([]int{9}); err == nil {
		t.Fatal("unknown device accepted")
	}
	if err := sys.Degrade([]int{0, 1, 2, 3}); err == nil {
		t.Fatal("removing every device accepted")
	}
	if err := sys.Degrade(nil); err != nil {
		t.Fatalf("empty degrade should be a no-op: %v", err)
	}
	if err := sys.Degrade([]int{2}); err != nil {
		t.Fatal(err)
	}
	if got := sys.AliveDevices(); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Fatalf("alive = %v, want [0 1 3]", got)
	}
	// Degrading an already-removed device is a no-op, not an error.
	if err := sys.Degrade([]int{2}); err != nil {
		t.Fatalf("re-degrading a dead device: %v", err)
	}
	// A second real failure leaves two survivors and training still works.
	if err := sys.Degrade([]int{0}); err != nil {
		t.Fatal(err)
	}
	if got := sys.AliveDevices(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("alive = %v, want [1 3]", got)
	}
}
