package dgcl

import (
	"math"
	"testing"
)

func TestListingOneWorkflow(t *testing.T) {
	// The end-to-end flow of Listing 1: init, buildCommInfo, dispatch,
	// allgather per layer, backward.
	g := Reddit.Generate(512, 1)
	sys := Init(DGX1(), Options{Seed: 1})
	if sys.NumGPUs() != 8 {
		t.Fatalf("NumGPUs=%d", sys.NumGPUs())
	}
	if err := sys.BuildCommInfo(g, 32); err != nil {
		t.Fatal(err)
	}
	features := RandomFeatures(g.NumVertices(), 32, 2)
	local, err := sys.DispatchFeatures(features)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sys.GraphAllgather(local)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 8; d++ {
		lg := sys.LocalGraph(d)
		if full[d].Rows != lg.NumLocal+lg.NumRemote {
			t.Fatalf("GPU %d full rows %d want %d", d, full[d].Rows, lg.NumLocal+lg.NumRemote)
		}
		// Every delivered row matches the global feature row.
		for i, v := range lg.GlobalID {
			for j := 0; j < 32; j++ {
				if full[d].At(i, j) != features.At(int(v), j) {
					t.Fatalf("GPU %d vertex %d feature mismatch", d, v)
				}
			}
		}
	}
}

func TestCallOrderEnforced(t *testing.T) {
	sys := Init(DGX1(), Options{})
	if _, err := sys.DispatchFeatures(NewMatrix(8, 4)); err == nil {
		t.Fatal("DispatchFeatures before BuildCommInfo must fail")
	}
	if _, err := sys.GraphAllgather(nil); err == nil {
		t.Fatal("GraphAllgather before BuildCommInfo must fail")
	}
}

func TestBuildCommInfoErrors(t *testing.T) {
	g := Reddit.Generate(2048, 1)
	sys := Init(DGX1(), Options{})
	if err := sys.BuildCommInfo(g, 0); err == nil {
		t.Fatal("featureDim 0 must fail")
	}
	bad := Init(DGX1(), Options{Planner: "bogus"})
	if err := bad.BuildCommInfo(g, 8); err == nil {
		t.Fatal("unknown planner must fail")
	}
}

func TestSPSTBeatsP2PViaPublicAPI(t *testing.T) {
	g := Reddit.Generate(256, 3)
	spst := Init(DGX1(), Options{Planner: PlannerSPST, Seed: 3})
	if err := spst.BuildCommInfo(g, 128); err != nil {
		t.Fatal(err)
	}
	p2p := Init(DGX1(), Options{Planner: PlannerP2P, Seed: 3})
	if err := p2p.BuildCommInfo(g, 128); err != nil {
		t.Fatal(err)
	}
	if spst.PlannedCost() >= p2p.PlannedCost() {
		t.Fatalf("SPST %v should beat P2P %v", spst.PlannedCost(), p2p.PlannedCost())
	}
	st, err := spst.SimulateAllgatherTime(1)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := p2p.SimulateAllgatherTime(1)
	if err != nil {
		t.Fatal(err)
	}
	if st >= pt {
		t.Fatalf("simulated: SPST %v should beat P2P %v", st, pt)
	}
}

func TestDistributedTrainingViaPublicAPI(t *testing.T) {
	g := WebGoogle.Generate(2048, 4)
	n := g.NumVertices()
	sys := Init(TopologyForGPUCountMust(4), Options{Seed: 4})
	if err := sys.BuildCommInfo(g, 16); err != nil {
		t.Fatal(err)
	}
	model := NewModel(GCN, 16, 8, 2, 5)
	features := RandomFeatures(n, 16, 6)
	targets := RandomFeatures(n, 8, 7)
	tr, err := sys.NewTrainer(model, features, targets)
	if err != nil {
		t.Fatal(err)
	}
	first, err := tr.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	tr.Step(0.001)
	var last float64
	for i := 0; i < 5; i++ {
		last, err = tr.Epoch()
		if err != nil {
			t.Fatal(err)
		}
		tr.Step(0.001)
	}
	if math.IsNaN(last) || last >= first {
		t.Fatalf("training did not progress: %v -> %v", first, last)
	}
}

// TopologyForGPUCountMust is a test helper.
func TopologyForGPUCountMust(n int) *Topology {
	topo, err := TopologyForGPUCount(n)
	if err != nil {
		panic(err)
	}
	return topo
}

func TestMultiMachineHierarchicalPartitioning(t *testing.T) {
	g := ComOrkut.Generate(2048, 5)
	sys := Init(TwoMachineDGX1(), Options{Seed: 5})
	if err := sys.BuildCommInfo(g, 16); err != nil {
		t.Fatal(err)
	}
	if sys.NumGPUs() != 16 {
		t.Fatalf("NumGPUs=%d", sys.NumGPUs())
	}
	assign := sys.PartitionAssignment()
	seen := map[int32]bool{}
	for _, a := range assign {
		seen[a] = true
	}
	if len(seen) != 16 {
		t.Fatalf("only %d parts used", len(seen))
	}
}

func TestNewGraphFromEdges(t *testing.T) {
	g, err := NewGraphFromEdges(3, []Edge{{Src: 0, Dst: 1}}, false)
	if err != nil || g.NumEdges() != 1 {
		t.Fatalf("g=%v err=%v", g, err)
	}
	if _, err := NewGraphFromEdges(1, []Edge{{Src: 0, Dst: 9}}, false); err == nil {
		t.Fatal("expected range error")
	}
}

func TestGraphAllgatherBackwardPublic(t *testing.T) {
	g := WebGoogle.Generate(4096, 8)
	sys := Init(TopologyForGPUCountMust(4), Options{Seed: 8})
	if err := sys.BuildCommInfo(g, 8); err != nil {
		t.Fatal(err)
	}
	gradFull := make([]*Matrix, 4)
	for d := 0; d < 4; d++ {
		lg := sys.LocalGraph(d)
		gradFull[d] = RandomFeatures(lg.NumLocal+lg.NumRemote, 8, int64(d))
	}
	grads, err := sys.GraphAllgatherBackward(gradFull)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		if grads[d].Rows != sys.LocalGraph(d).NumLocal {
			t.Fatalf("GPU %d grad rows %d", d, grads[d].Rows)
		}
	}
}

func TestSteinerPlannerViaPublicAPI(t *testing.T) {
	g := Reddit.Generate(512, 9)
	st := Init(DGX1(), Options{Planner: PlannerSteiner, Seed: 9})
	if err := st.BuildCommInfo(g, 64); err != nil {
		t.Fatal(err)
	}
	spst := Init(DGX1(), Options{Planner: PlannerSPST, Seed: 9})
	if err := spst.BuildCommInfo(g, 64); err != nil {
		t.Fatal(err)
	}
	if spst.PlannedCost() > st.PlannedCost()*1.02 {
		t.Fatalf("SPST %v should not lose to Steiner %v", spst.PlannedCost(), st.PlannedCost())
	}
	// Steiner plans are executable: training runs on them.
	features := RandomFeatures(g.NumVertices(), 8, 1)
	targets := RandomFeatures(g.NumVertices(), 8, 2)
	model := NewModel(GCN, 8, 8, 2, 3)
	tr, err := st.NewTrainer(model, features, targets)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Epoch(); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicBackwardOptionEquivalence(t *testing.T) {
	g := WebGoogle.Generate(4096, 11)
	n := g.NumVertices()
	features := RandomFeatures(n, 8, 12)
	targets := RandomFeatures(n, 6, 13)
	run := func(atomic bool) float64 {
		sys := Init(TopologyForGPUCountMust(4), Options{Seed: 11, AtomicBackward: atomic})
		if err := sys.BuildCommInfo(g, 8); err != nil {
			t.Fatal(err)
		}
		tr, err := sys.NewTrainer(NewModel(GCN, 8, 6, 2, 14), features, targets)
		if err != nil {
			t.Fatal(err)
		}
		loss, err := tr.Epoch()
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("atomic option changed results: %v vs %v", a, b)
	}
}

func TestDGX2FlatFabricNearParity(t *testing.T) {
	// On a flat NVSwitch fabric every pair has full bandwidth, so SPST has
	// little to improve over P2P — the planner must not hurt.
	g := ComOrkut.Generate(2048, 15)
	spst := Init(DGX2(), Options{Seed: 15})
	if err := spst.BuildCommInfo(g, 32); err != nil {
		t.Fatal(err)
	}
	p2p := Init(DGX2(), Options{Planner: PlannerP2P, Seed: 15})
	if err := p2p.BuildCommInfo(g, 32); err != nil {
		t.Fatal(err)
	}
	if spst.PlannedCost() > p2p.PlannedCost()*1.05 {
		t.Fatalf("SPST %v should not lose on DGX-2 vs P2P %v", spst.PlannedCost(), p2p.PlannedCost())
	}
}

func TestAccessorsAndEarlyCalls(t *testing.T) {
	sys := Init(DGX1(), Options{Seed: 21})
	// Everything that needs BuildCommInfo must refuse before it.
	if _, err := sys.GraphAllgatherBackward(nil); err == nil {
		t.Fatal("backward before BuildCommInfo must fail")
	}
	if _, err := sys.NewTrainer(nil, nil, nil); err == nil {
		t.Fatal("trainer before BuildCommInfo must fail")
	}
	if _, err := sys.SimulateAllgatherTime(1); err == nil {
		t.Fatal("simulate before BuildCommInfo must fail")
	}
	g := Reddit.Generate(1024, 21)
	if err := sys.BuildCommInfo(g, 16); err != nil {
		t.Fatal(err)
	}
	if sys.Plan() == nil || sys.Plan().NumStages() < 1 {
		t.Fatal("Plan accessor broken")
	}
	rel := sys.Relation()
	if rel == nil || rel.K != 8 {
		t.Fatal("Relation accessor broken")
	}
	if err := rel.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dispatch with wrong row count fails.
	if _, err := sys.DispatchFeatures(NewMatrix(3, 16)); err == nil {
		t.Fatal("wrong-sized features must fail")
	}
}

func TestCacheFeaturesViaPublicAPI(t *testing.T) {
	g := WebGoogle.Generate(8192, 22)
	n := g.NumVertices()
	features := RandomFeatures(n, 8, 23)
	targets := RandomFeatures(n, 4, 24)
	run := func(cache bool) float64 {
		sys := Init(TopologyForGPUCountMust(4), Options{Seed: 22, CacheFeatures: cache})
		if err := sys.BuildCommInfo(g, 8); err != nil {
			t.Fatal(err)
		}
		tr, err := sys.NewTrainer(NewModel(GCN, 8, 4, 2, 25), features, targets)
		if err != nil {
			t.Fatal(err)
		}
		var loss float64
		for e := 0; e < 2; e++ {
			var err error
			loss, err = tr.Epoch()
			if err != nil {
				t.Fatal(err)
			}
			tr.Step(0.001)
		}
		return loss
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("feature caching changed results: %v vs %v", a, b)
	}
}

func TestParallelPlannerViaPublicAPI(t *testing.T) {
	// Parallel planning is aimed at multi-machine fabrics, where relations
	// are large enough for planning time to matter and path diversity keeps
	// the staleness cost small (see DESIGN.md for the measured envelope).
	g := Reddit.Generate(64, 1)
	serial := Init(TwoMachineDGX1(), Options{Seed: 1})
	if err := serial.BuildCommInfo(g, 32); err != nil {
		t.Fatal(err)
	}
	par := Init(TwoMachineDGX1(), Options{Seed: 1, Plan: PlanOptions{Workers: 4, BatchSize: 4}})
	if err := par.BuildCommInfo(g, 32); err != nil {
		t.Fatal(err)
	}
	if err := par.Plan().Validate(par.Relation()); err != nil {
		t.Fatal(err)
	}
	if r := par.PlannedCost() / serial.PlannedCost(); r > 1.5 {
		t.Fatalf("parallel plan cost ratio %.3f vs serial", r)
	}
	bad := Init(DGX1(), Options{Plan: PlanOptions{Workers: -1}})
	if err := bad.BuildCommInfo(g, 32); err == nil {
		t.Fatal("negative Workers must fail")
	}
}

func TestPlanCacheViaPublicAPI(t *testing.T) {
	g := Reddit.Generate(512, 1)
	dir := t.TempDir()
	opts := Options{Seed: 1, Plan: PlanOptions{CacheDir: dir}}

	cold := Init(DGX1(), opts)
	if err := cold.BuildCommInfo(g, 32); err != nil {
		t.Fatal(err)
	}
	if hits, misses := cold.PlanCacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("cold stats = (%d, %d), want (0, 1)", hits, misses)
	}

	warm := Init(DGX1(), opts)
	if err := warm.BuildCommInfo(g, 32); err != nil {
		t.Fatal(err)
	}
	if hits, misses := warm.PlanCacheStats(); hits != 1 || misses != 0 {
		t.Fatalf("warm stats = (%d, %d), want (1, 0)", hits, misses)
	}
	if warm.PlannedCost() <= 0 {
		t.Fatal("cached plan lost its cost state")
	}
	// The cached plan must execute: run one allgather through the runtime.
	features := RandomFeatures(g.NumVertices(), 32, 2)
	local, err := warm.DispatchFeatures(features)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.GraphAllgather(local); err != nil {
		t.Fatal(err)
	}

	uncached := Init(DGX1(), Options{Seed: 1})
	if err := uncached.BuildCommInfo(g, 32); err != nil {
		t.Fatal(err)
	}
	if hits, misses := uncached.PlanCacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("no-cache stats = (%d, %d), want (0, 0)", hits, misses)
	}
	if warm.PlannedCost() != uncached.PlannedCost() {
		t.Fatalf("cached cost %v != freshly planned cost %v", warm.PlannedCost(), uncached.PlannedCost())
	}
}
