package dgcl

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"dgcl/internal/comm/wire"
	"dgcl/internal/testutil"
)

// The resilience battery over real sockets: the chaos/crash scenarios of
// dgcl_resilience_test.go rerun with the loopback TCP fabric installed as
// the base transport. The acceptance bar is behavioral identity — the same
// recovery structure, and losses and final weights bit-identical to the
// channel-transport runs — plus the one failure mode only sockets have:
// a peer's connections dying mid-collective must surface as DeviceDownError
// and drive the same degrade-and-continue recovery.

// wireFixture is resilientFixture plus a loopback TCP fabric installed as
// the system's base transport.
func wireFixture(t *testing.T, seed int64) (*System, *wire.Fabric, *Model, *Matrix, *Matrix) {
	t.Helper()
	sys, _, model, features, targets := resilientFixture(t, seed)
	fab, err := wire.NewLoopbackFabric(4, wire.Config{
		ClusterID: "dgcl-resilience",
		PlanSum:   wire.PlanDigest(sys.Plan()),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fab.Close)
	if err := sys.SetRunOptions(RunOptions{Transport: fab}); err != nil {
		t.Fatal(err)
	}
	return sys, fab, model, features, targets
}

// TestWireChaosCrashRecoveryBitIdenticalToChan: a scheduled fail-stop crash
// with durable checkpoints must recover identically whether the embeddings
// cross in-memory channels or TCP sockets — same recovery event, bit-equal
// per-epoch losses, bit-identical final weights.
func TestWireChaosCrashRecoveryBitIdenticalToChan(t *testing.T) {
	const epochs = 6
	crash := func() *CrashConfig {
		return &CrashConfig{Events: []CrashEvent{{Device: 1, Epoch: 2, Stage: 0}}}
	}

	// Fault-free baseline for the loss band.
	sysA, _, modelA, featA, targA := resilientFixture(t, 11)
	base, err := sysA.Train(context.Background(), modelA, featA, targA, trainOpts(epochs, ""))
	if err != nil {
		t.Fatal(err)
	}

	// The crashed run over channels: the reference recovery.
	sysB, _, modelB, featB, targB := resilientFixture(t, 11)
	if err := sysB.SetRunOptions(RunOptions{Crash: crash()}); err != nil {
		t.Fatal(err)
	}
	chanRes, err := sysB.Train(context.Background(), modelB, featB, targB, trainOpts(epochs, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}

	// The same crashed run over loopback TCP.
	before := testutil.Goroutines()
	sysC, fab, modelC, featC, targC := wireFixture(t, 11)
	if err := sysC.SetRunOptions(RunOptions{Transport: fab, Crash: crash()}); err != nil {
		t.Fatal(err)
	}
	wireRes, err := sysC.Train(context.Background(), modelC, featC, targC, trainOpts(epochs, t.TempDir()))
	if err != nil {
		t.Fatalf("crashed wire run did not recover: %v", err)
	}

	if len(wireRes.Recoveries) != 1 {
		t.Fatalf("wire recoveries = %+v, want exactly one", wireRes.Recoveries)
	}
	if !reflect.DeepEqual(wireRes.Recoveries, chanRes.Recoveries) {
		t.Fatalf("recovery events differ:\nwire: %+v\nchan: %+v", wireRes.Recoveries, chanRes.Recoveries)
	}
	for e := range chanRes.Losses {
		if wireRes.Losses[e] != chanRes.Losses[e] {
			t.Fatalf("epoch %d loss differs over the wire: %v vs %v", e, wireRes.Losses[e], chanRes.Losses[e])
		}
	}
	finalWeightsBitIdentical(t, chanRes.Model, wireRes.Model, "wire crash recovery")

	// And the recovered run still lands in the fault-free band.
	got, want := wireRes.Losses[epochs-1], base.Losses[epochs-1]
	if math.IsNaN(got) || math.Abs(got-want)/math.Abs(want) > 0.02 {
		t.Fatalf("final wire loss %v outside the fault-free band around %v", got, want)
	}

	fab.Close()
	if !testutil.GoroutinesSettleTo(before, 2*time.Second) {
		t.Fatalf("goroutines leaked across wire crash recovery: %d before, %d after", before, testutil.Goroutines())
	}
}

// TestWireResumeBitIdenticalToChan: kill the process after 3 epochs of a
// wire run, resume from the durable checkpoint in a fresh process with a
// fresh fabric, and the completed run must match an uninterrupted
// channel-transport run bit for bit.
func TestWireResumeBitIdenticalToChan(t *testing.T) {
	const (
		epochs   = 5
		killedAt = 3
		seed     = 17
	)
	sysA, _, modelA, featA, targA := resilientFixture(t, seed)
	full, err := sysA.Train(context.Background(), modelA, featA, targA, trainOpts(epochs, ""))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	sysB, _, modelB, featB, targB := wireFixture(t, seed)
	if _, err := sysB.Train(context.Background(), modelB, featB, targB, trainOpts(killedAt, dir)); err != nil {
		t.Fatalf("pre-kill wire run: %v", err)
	}
	sysC, _, modelC, featC, targC := wireFixture(t, seed)
	opts := trainOpts(epochs, dir)
	opts.Resume = true
	resumed, err := sysC.Train(context.Background(), modelC, featC, targC, opts)
	if err != nil {
		t.Fatalf("wire resume: %v", err)
	}
	if resumed.StartEpoch != killedAt {
		t.Fatalf("wire run resumed at epoch %d, want %d", resumed.StartEpoch, killedAt)
	}
	for e := killedAt; e < epochs; e++ {
		if resumed.Losses[e] != full.Losses[e] {
			t.Fatalf("epoch %d loss diverged after wire resume: %v vs %v", e, resumed.Losses[e], full.Losses[e])
		}
	}
	finalWeightsBitIdentical(t, full.Model, resumed.Model, "wire resume")
}

// TestWireNodeKillMidTrainingRecovers is the socket-only failure mode: an
// unscheduled kill of one node's real connections mid-training. The peers'
// reads fail, the transport maps the dead links to DeviceDownError, the
// failure detector convicts the device, and the resilient loop degrades
// onto the survivors — whose fabric connections keep working — and finishes
// inside the fault-free loss band.
func TestWireNodeKillMidTrainingRecovers(t *testing.T) {
	const epochs = 6

	sysA, _, modelA, featA, targA := resilientFixture(t, 11)
	base, err := sysA.Train(context.Background(), modelA, featA, targA, trainOpts(epochs, ""))
	if err != nil {
		t.Fatal(err)
	}

	before := testutil.Goroutines()
	sysB, fab, modelB, featB, targB := wireFixture(t, 11)
	opts := trainOpts(epochs, t.TempDir())
	killed := false
	opts.OnEpoch = func(e int, loss float64) {
		// After epoch 1 completes, node 1's sockets die for real: epoch 2's
		// collectives find the connections gone mid-flight.
		if e == 1 && !killed {
			killed = true
			fab.Kill(1)
		}
	}
	res, err := sysB.Train(context.Background(), modelB, featB, targB, opts)
	if err != nil {
		t.Fatalf("training did not survive the node kill: %v", err)
	}
	if len(res.Recoveries) != 1 {
		t.Fatalf("recoveries = %+v, want exactly one", res.Recoveries)
	}
	ev := res.Recoveries[0]
	if !reflect.DeepEqual(ev.Down, []int{1}) {
		t.Fatalf("recovery removed %v, want [1]", ev.Down)
	}
	if !reflect.DeepEqual(ev.Survivors, []int{0, 2, 3}) {
		t.Fatalf("survivors = %v, want [0 2 3]", ev.Survivors)
	}
	if ev.FailedEpoch != 2 {
		t.Fatalf("failure detected at epoch %d, want 2", ev.FailedEpoch)
	}
	if !reflect.DeepEqual(sysB.AliveDevices(), []int{0, 2, 3}) {
		t.Fatalf("alive devices after recovery = %v, want [0 2 3]", sysB.AliveDevices())
	}
	got, want := res.Losses[epochs-1], base.Losses[epochs-1]
	if math.IsNaN(got) || math.Abs(got-want)/math.Abs(want) > 0.02 {
		t.Fatalf("final loss %v outside the fault-free band around %v", got, want)
	}
	if res.Losses[epochs-1] >= res.Losses[0] {
		t.Fatalf("no convergence after recovery: %v -> %v", res.Losses[0], res.Losses[epochs-1])
	}

	fab.Close()
	if !testutil.GoroutinesSettleTo(before, 2*time.Second) {
		t.Fatalf("goroutines leaked across node-kill recovery: %d before, %d after", before, testutil.Goroutines())
	}
}
