// gcn_reddit reproduces the paper's motivating workload: training a 2-layer
// GCN on a Reddit-like graph with 8 GPUs, comparing DGCL's SPST plan against
// peer-to-peer communication — the Figure 7(a) story in miniature.
package main

import (
	"fmt"
	"log"

	"dgcl"
)

func main() {
	const scale = 128
	g := dgcl.Reddit.Generate(scale, 1)
	fmt.Printf("Reddit at 1/%d scale: %d vertices, %d edges, avg degree %.1f\n",
		scale, g.NumVertices(), g.NumEdges(), g.AvgDegree())

	run := func(planner dgcl.Planner) (modeled, simulated float64) {
		sys := dgcl.Init(dgcl.DGX1(), dgcl.Options{Planner: planner, Seed: 1})
		if err := sys.BuildCommInfo(g, dgcl.Reddit.FeatureDim); err != nil {
			log.Fatal(err)
		}
		sim, err := sys.SimulateAllgatherTime(1)
		if err != nil {
			log.Fatal(err)
		}
		return sys.PlannedCost(), sim
	}

	spstCost, spstSim := run(dgcl.PlannerSPST)
	p2pCost, p2pSim := run(dgcl.PlannerP2P)
	noFwdCost, noFwdSim := run(dgcl.PlannerSPSTNoForward)

	fmt.Printf("\n%-18s %12s %14s\n", "planner", "modeled(ms)", "simulated(ms)")
	fmt.Printf("%-18s %12.3f %14.3f\n", "DGCL (SPST)", spstCost*1e3, spstSim*1e3)
	fmt.Printf("%-18s %12.3f %14.3f\n", "SPST, no relay", noFwdCost*1e3, noFwdSim*1e3)
	fmt.Printf("%-18s %12.3f %14.3f\n", "peer-to-peer", p2pCost*1e3, p2pSim*1e3)
	fmt.Printf("\nDGCL reduces P2P communication time by %.1f%% (paper: 77.5%% on average)\n",
		(1-spstSim/p2pSim)*100)

	// Verify that the cheaper plan trains identically: compare a few epochs
	// of distributed GCN under both planners.
	features := dgcl.RandomFeatures(g.NumVertices(), dgcl.Reddit.FeatureDim, 2)
	targets := dgcl.RandomFeatures(g.NumVertices(), dgcl.Reddit.HiddenDim, 3)
	losses := map[dgcl.Planner]float64{}
	for _, pl := range []dgcl.Planner{dgcl.PlannerSPST, dgcl.PlannerP2P} {
		sys := dgcl.Init(dgcl.DGX1(), dgcl.Options{Planner: pl, Seed: 1})
		if err := sys.BuildCommInfo(g, dgcl.Reddit.FeatureDim); err != nil {
			log.Fatal(err)
		}
		model := dgcl.NewModel(dgcl.GCN, dgcl.Reddit.FeatureDim, dgcl.Reddit.HiddenDim, 2, 5)
		tr, err := sys.NewTrainer(model, features, targets)
		if err != nil {
			log.Fatal(err)
		}
		var loss float64
		for e := 0; e < 3; e++ {
			loss, err = tr.Epoch()
			if err != nil {
				log.Fatal(err)
			}
			tr.Step(0.0005)
		}
		losses[pl] = loss
	}
	fmt.Printf("\nfinal loss with SPST plan:  %.6f\n", losses[dgcl.PlannerSPST])
	fmt.Printf("final loss with P2P plan:   %.6f (same math, different routing)\n", losses[dgcl.PlannerP2P])
}
