// Quickstart: the paper's Listing-1 workflow end to end on a small graph —
// initialize DGCL for a DGX-1, partition and plan, scatter features, run one
// graphAllgather, and train a 2-layer GCN for a few epochs.
package main

import (
	"fmt"
	"log"

	"dgcl"
)

func main() {
	// A Reddit-like graph at 1/512 of the paper's size.
	g := dgcl.Reddit.Generate(512, 42)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Init + buildCommInfo: partition across the 8 GPUs of a DGX-1 and run
	// the SPST communication planner.
	sys := dgcl.Init(dgcl.DGX1(), dgcl.Options{Seed: 42})
	const featureDim = 64
	if err := sys.BuildCommInfo(g, featureDim); err != nil {
		log.Fatal(err)
	}
	plan := sys.Plan()
	fmt.Printf("plan: %d stages, %.1f KB per allgather, modeled %.3f ms\n",
		plan.NumStages(), float64(plan.TotalBytes())/1e3, sys.PlannedCost()*1e3)

	// dispatch_features + graphAllgather.
	features := dgcl.RandomFeatures(g.NumVertices(), featureDim, 7)
	local, err := sys.DispatchFeatures(features)
	if err != nil {
		log.Fatal(err)
	}
	full, err := sys.GraphAllgather(local)
	if err != nil {
		log.Fatal(err)
	}
	for d := 0; d < sys.NumGPUs(); d++ {
		lg := sys.LocalGraph(d)
		fmt.Printf("gpu %d: %d local + %d remote rows after allgather (%d rows delivered)\n",
			d, lg.NumLocal, lg.NumRemote, full[d].Rows)
	}

	// Simulated communication time on the virtual fabric.
	simTime, err := sys.SimulateAllgatherTime(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated allgather: %.3f ms on the DGX-1 fabric\n", simTime*1e3)

	// Distributed training: 2-layer GCN, 5 epochs.
	model := dgcl.NewModel(dgcl.GCN, featureDim, 32, 2, 1)
	targets := dgcl.RandomFeatures(g.NumVertices(), 32, 9)
	trainer, err := sys.NewTrainer(model, features, targets)
	if err != nil {
		log.Fatal(err)
	}
	for epoch := 0; epoch < 5; epoch++ {
		loss, err := trainer.Epoch()
		if err != nil {
			log.Fatal(err)
		}
		trainer.Step(0.001)
		fmt.Printf("epoch %d: loss %.4f\n", epoch, loss)
	}
}
