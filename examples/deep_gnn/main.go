// deep_gnn demonstrates why communication planning, not replication, is the
// road to deeper GNNs (§3 and Figure 4 of the paper): as layers grow, the
// K-hop replication working set explodes toward the whole graph per GPU
// while DGCL's per-epoch communication grows only linearly in the number of
// layers. It trains 2- and 3-layer models distributed over 8 GPUs and
// reports both costs side by side.
package main

import (
	"fmt"
	"log"

	"dgcl"
	"dgcl/internal/baselines"
	"dgcl/internal/partition"
)

func main() {
	const scale = 256
	g := dgcl.WebGoogle.Generate(scale, 11)
	n := g.NumVertices()
	fmt.Printf("Web-Google at 1/%d scale: %d vertices, %d edges\n\n", scale, n, g.NumEdges())

	// Replication working set per GPU by depth (Figure 4's story).
	p, err := partition.KWay(g, 8, partition.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replication factor by GNN depth (8 GPUs):")
	for hops := 1; hops <= 3; hops++ {
		ri := baselines.Replication(g, p, hops)
		fmt.Printf("  %d-layer GNN: factor %.2f (largest GPU stores %.0f%% of the graph)\n",
			hops, ri.Factor, 100*float64(ri.MaxStored)/float64(n))
	}

	// DGCL: the same communication plan serves any depth (the §5.1
	// dimension-invariance); per-epoch comm grows linearly with layers.
	sys := dgcl.Init(dgcl.DGX1(), dgcl.Options{Seed: 11})
	if err := sys.BuildCommInfo(g, 32); err != nil {
		log.Fatal(err)
	}
	allgather, err := sys.SimulateAllgatherTime(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDGCL allgather: %.3f ms; a K-layer epoch needs K forward + K-1 backward exchanges\n", allgather*1e3)

	features := dgcl.RandomFeatures(n, 32, 12)
	targets := dgcl.RandomFeatures(n, 16, 13)
	for _, layers := range []int{2, 3} {
		model := dgcl.NewModel(dgcl.GCN, 32, 16, layers, 14)
		tr, err := sys.NewTrainer(model, features, targets)
		if err != nil {
			log.Fatal(err)
		}
		var loss float64
		for e := 0; e < 3; e++ {
			loss, err = tr.Epoch()
			if err != nil {
				log.Fatal(err)
			}
			tr.Step(0.001)
		}
		fmt.Printf("%d-layer GCN distributed training: loss %.4f after 3 epochs, ~%.3f ms comm/epoch\n",
			layers, loss, float64(2*layers-1)*allgather*1e3)
	}
	fmt.Println("\nreplication cost explodes with depth; planned communication grows linearly")
}
