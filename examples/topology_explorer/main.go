// topology_explorer plans the same communication relation over different
// fabrics — NVLink DGX-1, PCIe-only, and two IB-connected machines — showing
// how the SPST planner adapts its trees to what the hardware offers
// (multi-hop NVLink relays on the DGX-1, contention avoidance on PCIe, IB
// fusion across machines).
package main

import (
	"fmt"
	"log"

	"dgcl"
)

func main() {
	const scale = 128
	g := dgcl.ComOrkut.Generate(scale, 9)
	fmt.Printf("Com-Orkut at 1/%d scale: %d vertices, %d edges\n\n",
		scale, g.NumVertices(), g.NumEdges())

	fabrics := []struct {
		name string
		topo *dgcl.Topology
	}{
		{"DGX-1 (NVLink cube mesh)", dgcl.DGX1()},
		{"8x 1080Ti (PCIe only)", dgcl.PCIeOnly8()},
		{"2x DGX-1 over IB (16 GPUs)", dgcl.TwoMachineDGX1()},
	}
	fmt.Printf("%-28s %8s %12s %12s %9s\n", "fabric", "stages", "DGCL(ms)", "P2P(ms)", "speedup")
	for _, f := range fabrics {
		spst := dgcl.Init(f.topo, dgcl.Options{Seed: 9})
		if err := spst.BuildCommInfo(g, dgcl.ComOrkut.FeatureDim); err != nil {
			log.Fatal(err)
		}
		spstTime, err := spst.SimulateAllgatherTime(1)
		if err != nil {
			log.Fatal(err)
		}
		p2p := dgcl.Init(f.topo, dgcl.Options{Planner: dgcl.PlannerP2P, Seed: 9})
		if err := p2p.BuildCommInfo(g, dgcl.ComOrkut.FeatureDim); err != nil {
			log.Fatal(err)
		}
		p2pTime, err := p2p.SimulateAllgatherTime(1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8d %12.3f %12.3f %8.2fx\n",
			f.name, spst.Plan().NumStages(), spstTime*1e3, p2pTime*1e3, p2pTime/spstTime)
	}
	fmt.Println("\nthe same relation routes differently on each fabric: relays through")
	fmt.Println("NVLink on the DGX-1, stage scheduling on PCIe, multicast fusion on IB")
}
