// multimachine demonstrates 16-GPU training across two simulated DGX-1
// servers connected by InfiniBand: hierarchical partitioning keeps most
// traffic on NVLink, and the example contrasts plain DGCL with the DGCL-R
// idea of Table 5 (replicate the cross-machine halo to eliminate IB traffic
// at the price of recomputation).
package main

import (
	"fmt"
	"log"

	"dgcl"
)

func main() {
	const scale = 128
	g := dgcl.Reddit.Generate(scale, 3)
	fmt.Printf("Reddit at 1/%d scale: %d vertices, %d edges\n",
		scale, g.NumVertices(), g.NumEdges())

	topo := dgcl.TwoMachineDGX1()
	sys := dgcl.Init(topo, dgcl.Options{Seed: 3})
	if err := sys.BuildCommInfo(g, dgcl.Reddit.FeatureDim); err != nil {
		log.Fatal(err)
	}

	// How much of the relation crosses machines? (hierarchical partitioning
	// minimizes exactly this)
	rel := sys.Relation()
	var crossPairs, localPairs int64
	for src := 0; src < rel.K; src++ {
		for dst := 0; dst < rel.K; dst++ {
			n := int64(len(rel.Send[src][dst]))
			if (src < 8) != (dst < 8) {
				crossPairs += n
			} else {
				localPairs += n
			}
		}
	}
	fmt.Printf("communication relation: %d intra-machine vs %d cross-machine vertex sends\n",
		localPairs, crossPairs)

	sim, err := sys.SimulateAllgatherTime(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DGCL 16-GPU allgather: %.3f ms (plan: %d stages)\n", sim*1e3, sys.Plan().NumStages())

	// Contrast with P2P at 16 GPUs: every cross pair hits the IB link
	// separately.
	p2pSys := dgcl.Init(topo, dgcl.Options{Planner: dgcl.PlannerP2P, Seed: 3})
	if err := p2pSys.BuildCommInfo(g, dgcl.Reddit.FeatureDim); err != nil {
		log.Fatal(err)
	}
	p2pSim, err := p2pSys.SimulateAllgatherTime(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P2P 16-GPU allgather:  %.3f ms (%.2fx DGCL)\n", p2pSim*1e3, p2pSim/sim)

	// Train a couple of epochs to show the 16-GPU runtime works end to end.
	model := dgcl.NewModel(dgcl.GCN, dgcl.Reddit.FeatureDim, 32, 2, 4)
	features := dgcl.RandomFeatures(g.NumVertices(), dgcl.Reddit.FeatureDim, 5)
	targets := dgcl.RandomFeatures(g.NumVertices(), 32, 6)
	tr, err := sys.NewTrainer(model, features, targets)
	if err != nil {
		log.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		loss, err := tr.Epoch()
		if err != nil {
			log.Fatal(err)
		}
		tr.Step(0.001)
		fmt.Printf("epoch %d on 16 GPUs: loss %.4f\n", e, loss)
	}
	fmt.Println("\nsee `dgclbench -exp table5` for the full DGCL vs DGCL-R comparison")
}
