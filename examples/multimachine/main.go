// multimachine runs one training job split across two worker processes
// connected by real TCP sockets — the multi-process deployment shape of the
// paper, on loopback. A coordinator hands each worker its share of the
// cluster; the workers mesh over the wire transport (length-prefixed,
// checksummed frames with credit-based backpressure), exchange embeddings,
// losses, and gradients, and must finish with per-epoch losses and final
// weights bit-identical to a single-process run of the same spec.
//
// The same code spans real machines:
//
//	dgcltrain -listen :7000 -workers 2 -dataset Web-Google -gpus 4  # coordinator
//	dgclworker -connect coord-host:7000 -data worker-host:0         # each machine
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"dgcl/internal/worker"
)

func main() {
	spec := worker.Spec{
		Dataset:    "Web-Google",
		Scale:      4096,
		FeatureDim: 16,
		Model:      "GCN",
		Hidden:     8,
		Layers:     2,
		GPUs:       4,
		Epochs:     3,
		Seed:       7,
		LR:         0.01,
	}

	// The single-process baseline: whatever the distributed run produces
	// must match this bit for bit.
	local, err := worker.TrainLocal(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single process, %d GPUs in one address space: digest %#x\n", spec.GPUs, local.ModelSum)

	// The distributed run: a coordinator plus two worker "machines", each
	// hosting two of the four GPU ranks, connected only by TCP.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const workers = 2
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := worker.RunWorker(ctx, ln.Addr().String(), "127.0.0.1:0"); err != nil {
				log.Printf("worker %d: %v", i, err)
			}
		}(i)
	}
	report, err := worker.RunCoordinator(ctx, ln, workers, spec)
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d processes over loopback TCP:        digest %#x\n", workers, report.ModelSum)
	for e := range report.Losses {
		match := "BIT-IDENTICAL"
		if report.Losses[e] != local.Losses[e] {
			match = "DIVERGED"
		}
		fmt.Printf("epoch %d: local %.6f  wire %.6f  %s\n", e, local.Losses[e], report.Losses[e], match)
	}
	if report.ModelSum != local.ModelSum {
		log.Fatalf("final weights diverged: %#x vs %#x", local.ModelSum, report.ModelSum)
	}
	fmt.Println("\nfinal weights bit-identical across deployment shapes: the wire is invisible to the math")
}
