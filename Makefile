GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test race fuzz vet check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race tier: the runtime is one goroutine per GPU over shared transports,
# so every test also runs under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzz pass over every fuzz target (plan decode + round-trip).
fuzz:
	$(GO) test -fuzz=FuzzReadPlanJSON -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz=FuzzPlanJSONRoundTrip -fuzztime=$(FUZZTIME) ./internal/core/

check: vet build test race
