GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test race fuzz fuzz-smoke vet lint check bench-smoke chaos wire serve bench-serve rejoin

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race tier: the runtime is one goroutine per GPU over shared transports,
# so every test also runs under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Lint tier: gofmt hygiene plus the project's own analyzer suite (dgclvet,
# internal/analysis) enforcing the determinism/concurrency/error invariants
# DESIGN.md §9/§14 document. Exit 1 = findings, exit 2 = load failure.
# Findings matching the committed baseline (kept empty — the tree is clean)
# are reported but do not fail; the ignores audit then fails on any
# //dgclvet:ignore naming a nonexistent analyzer or missing a justification.
lint: vet
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) run ./cmd/dgclvet -baseline .github/dgclvet-baseline.json ./...
	$(GO) run ./cmd/dgclvet -ignores

# Bench-smoke tier: one iteration of every planner benchmark (serial,
# parallel waves, warm cache), recorded as BENCH_plan.json for trend
# tracking. -benchtime 1x keeps it fast enough for CI. The runtime epoch
# hot-path benchmarks (DESIGN.md §11/§16) — overlap-off and overlap-on
# variants both match the unanchored -bench regex — refresh the "current"
# run of BENCH_runtime.json; the "baseline" run is the frozen pre-compile
# implementation. dgclbenchdiff prints the delta and, with -fail-over,
# exits nonzero if any shared benchmark regressed past 25% so the smoke
# gates rather than just reports. The threshold is deliberately loose:
# 3-iteration runs on shared CI boxes are noisy, and the frozen baseline
# leaves real headroom below it.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPlanSPST|BenchmarkPlanCacheWarm' \
		-benchtime 1x -json ./internal/core/ > BENCH_plan.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_plan.json | sed 's/"Output":"//;s/\\n//' || true
	$(GO) test -run '^$$' -bench 'BenchmarkAllgather|BenchmarkEpoch|BenchmarkWire' \
		-benchtime 3x -json ./internal/runtime/ ./internal/comm/wire/ \
		| $(GO) run ./cmd/dgclbenchdiff -record BENCH_runtime.json -label current
	$(GO) run ./cmd/dgclbenchdiff -runs baseline,current -fail-over 25 BENCH_runtime.json

# Chaos tier (DESIGN.md §10): the failure-handling battery under the race
# detector — fault-injection chaos, fail-stop crash/recovery, checkpoint
# corruption fallback, and the bit-identical resume property.
chaos:
	$(GO) test -race -count=1 \
		-run 'Chaos|Crash|Health|Recover|Resume|Corrupt|Degrade|Without|Checkpoint|Snapshot|Store' \
		./internal/runtime/ ./internal/checkpoint/ ./internal/topology/ ./internal/gnn/ .

# Wire tier: the transport conformance battery (one table over channels,
# decorators, and sockets), the socket chaos/crash suite, and the
# multi-process worker protocol, all under the race detector.
wire:
	$(GO) test -race -count=1 \
		-run 'Conformance|Fabric|Frame|PlanDigest|Handshake|Exchanges|SteadyState|Wire|Distributed|SplitRanks|Coordinator|OSProcesses' \
		./internal/comm/wire/ ./internal/runtime/ ./internal/worker/ .

# Serve tier (DESIGN.md §13): the embedding-serving battery under the race
# detector — batcher cutoffs, cache/version staleness properties, bitwise
# equivalence with the direct forward, admission shedding, the DGS1 protocol,
# and the mid-load device-kill failover.
serve:
	$(GO) test -race -count=1 ./internal/serve/

# Bench-serve smoke: the Zipf load driver against an in-process server at two
# QPS points, recorded as the "current" run of BENCH_serve.json (the
# "baseline" run is frozen), then the delta table.
bench-serve:
	$(GO) run ./cmd/dgclloadgen -selfserve -qps 200,800 -requests 2000 \
		-record BENCH_serve.json -label current
	$(GO) run ./cmd/dgclbenchdiff -runs baseline,current BENCH_serve.json

# Rejoin tier (DESIGN.md §15): the supervised-membership battery under the
# race detector — lease/heartbeat/backoff timing on injected clocks, control
# envelope validation, generation fencing, and the process-kill/restart
# chaos suite (real dgclworker subprocesses, SIGKILL + SIGTERM) with the
# degrade-onto-survivors path. DGCL_RECORD_RECOVERY=1 makes the kill/restart
# test record its detection→resume time into the "recovery" run of
# BENCH_runtime.json.
rejoin:
	DGCL_RECORD_RECOVERY=1 $(GO) test -race -count=1 \
		-run 'Membership|Lease|Backoff|Rejoin|Drain|SplitRanks|DecodeCtrl|ProtocolError|Mismatch|Typed|OSProcess|Health|Epochs|LoadEpoch' \
		./internal/worker/ ./internal/runtime/ ./internal/checkpoint/

# Short fuzz pass over every fuzz target (plan decode + round-trip, the
# untrusted checkpoint decode paths, the wire frame decoder, the serve
# request decoder, and the worker control-plane envelope decoder).
fuzz:
	$(GO) test -fuzz=FuzzReadPlanJSON -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz=FuzzPlanJSONRoundTrip -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz=FuzzDecodeSnapshot -fuzztime=$(FUZZTIME) ./internal/checkpoint/
	$(GO) test -fuzz=FuzzDecodeManifest -fuzztime=$(FUZZTIME) ./internal/checkpoint/
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=$(FUZZTIME) ./internal/comm/wire/
	$(GO) test -fuzz=FuzzDecodeServeRequest -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -fuzz=FuzzDecodeCtrlMsg -fuzztime=$(FUZZTIME) ./internal/worker/

# CI-sized fuzz pass: same targets, 10 seconds each.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=10s

check: vet lint build test race chaos wire serve rejoin
