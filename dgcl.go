// Package dgcl is a Go reproduction of DGCL, the distributed graph
// communication library for GNN training (Cai et al., EuroSys 2021). It
// plans and executes the irregular embedding-passing communication of
// full-graph distributed GNN training: graphs are partitioned across
// (simulated) GPUs, a topology-aware SPST planner builds per-vertex
// multicast trees that exploit fast links, fuse transfers, avoid contention
// and balance load, and a decentralized runtime executes the plan.
//
// The package mirrors the paper's API (Listing 1):
//
//	sys := dgcl.Init(dgcl.DGX1(), dgcl.Options{})
//	sys.BuildCommInfo(g, featureDim)          // partition + plan
//	local := sys.DispatchFeatures(features)   // scatter to GPUs
//	full, _ := sys.GraphAllgather(local)      // remote embeddings in
//
// Hardware is simulated (see DESIGN.md): package simnet provides virtual
// time over Table-1 link speeds, and the runtime moves real float32 data
// between goroutine "GPUs", so results are verifiable against single-device
// training.
package dgcl

import (
	"context"
	"fmt"
	"time"

	"dgcl/internal/baselines"
	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/runtime"
	"dgcl/internal/simnet"
	"dgcl/internal/tensor"
	"dgcl/internal/topology"
)

// Re-exported core types so applications only import dgcl.
type (
	// Graph is a CSR data graph (see NewGraphFromEdges and the dataset
	// generators).
	Graph = graph.Graph
	// Edge is a directed graph edge.
	Edge = graph.Edge
	// Dataset describes one of the paper's evaluation graphs.
	Dataset = graph.Dataset
	// Matrix is a dense float32 matrix of vertex embeddings.
	Matrix = tensor.Matrix
	// Topology describes a GPU fabric.
	Topology = topology.Topology
	// Plan is a staged communication schedule.
	Plan = core.Plan
	// Model is a stack of GNN layers.
	Model = gnn.Model
	// ModelKind selects GCN, CommNet or GIN.
	ModelKind = gnn.ModelKind
	// Trainer runs distributed training on an initialized System.
	Trainer = runtime.Trainer
	// LocalGraph is the re-indexed per-GPU graph.
	LocalGraph = comm.LocalGraph
	// Relation is the communication relation (who needs which vertices).
	Relation = comm.Relation
	// CommStats holds per-GPU transfer, retry and timeout counters.
	CommStats = runtime.CommStats
	// RetryPolicy configures the transport retry/timeout decorator.
	RetryPolicy = runtime.RetryPolicy
	// FaultConfig configures transport fault injection (chaos testing).
	FaultConfig = runtime.FaultConfig
	// FaultRates are per-send fault probabilities per link class.
	FaultRates = runtime.FaultRates
	// FaultStats counts injected transport faults.
	FaultStats = runtime.FaultStats
	// CollectiveError is the structured per-GPU failure of a collective.
	CollectiveError = runtime.CollectiveError
	// TransportError is one transfer's retry/timeout failure.
	TransportError = runtime.TransportError
	// CrashConfig is a deterministic fail-stop failure schedule.
	CrashConfig = runtime.CrashConfig
	// CrashEvent schedules one fail-stop device failure.
	CrashEvent = runtime.CrashEvent
	// DeviceDownError identifies which device a transfer found dead.
	DeviceDownError = runtime.DeviceDownError
	// Optimizer applies accumulated gradients to model parameters.
	Optimizer = gnn.Optimizer
	// TransportProvider supplies the base transport per collective (the
	// seam the wire transport plugs into; see RunOptions.Transport).
	TransportProvider = runtime.TransportProvider
	// PeerExchange synchronizes losses and gradients across the processes
	// of a multi-process run (see System.SetWorkerMode).
	PeerExchange = runtime.PeerExchange
)

// ErrDeviceDown matches (via errors.Is) any failure caused by a fail-stop
// dead device.
var ErrDeviceDown = runtime.ErrDeviceDown

// DefaultRetryPolicy returns the standard retry/timeout budget.
func DefaultRetryPolicy() RetryPolicy { return runtime.DefaultRetryPolicy() }

// ParseCrashSchedule parses "dev@epoch[:stage],..." into a CrashConfig (see
// RunOptions.Crash and the dgcltrain -crash flag).
func ParseCrashSchedule(s string) (*CrashConfig, error) {
	return runtime.ParseCrashSchedule(s)
}

// NewSGD builds an SGD optimizer with optional momentum.
func NewSGD(lr, momentum float32) Optimizer { return gnn.NewSGD(lr, momentum) }

// NewAdam builds an Adam optimizer with standard defaults.
func NewAdam(lr float32) Optimizer { return gnn.NewAdam(lr) }

// The paper's datasets (Table 4) and models (§7).
var (
	Reddit    = graph.Reddit
	ComOrkut  = graph.ComOrkut
	WebGoogle = graph.WebGoogle
	WikiTalk  = graph.WikiTalk
)

// Model kinds: the paper's three evaluated models plus GraphSAGE (max-pool
// aggregator) as an extension.
const (
	GCN       = gnn.GCN
	CommNet   = gnn.CommNet
	GIN       = gnn.GIN
	GraphSAGE = gnn.GraphSAGE
	GAT       = gnn.GAT
)

// Topology builders for the paper's hardware configurations.
var (
	// DGX1 is the 8-GPU NVLink server of Figure 3.
	DGX1 = topology.DGX1
	// TwoMachineDGX1 is the default 16-GPU two-server configuration.
	TwoMachineDGX1 = topology.TwoMachineDGX1
	// PCIeOnly8 is the NVLink-less 8-GPU second configuration.
	PCIeOnly8 = topology.PCIeOnly8
	// DGX2 is a 16-GPU NVSwitch fabric (flat full-bandwidth NVLink).
	DGX2 = topology.DGX2
	// TopologyForGPUCount picks the standard configuration for 1..8 or 16
	// GPUs.
	TopologyForGPUCount = topology.ForGPUCount
	// ParseTopology builds a custom fabric from the text spec format
	// documented in internal/topology/spec.go.
	ParseTopology = topology.ParseSpec
)

// NewGraphFromEdges builds a graph with n vertices from an edge list.
func NewGraphFromEdges(n int, edges []Edge, dedup bool) (*Graph, error) {
	return graph.FromEdges(n, edges, dedup)
}

// NewModel builds a GNN model (2 layers is the paper's default).
func NewModel(kind ModelKind, inDim, hiddenDim, numLayers int, seed int64) *Model {
	return gnn.NewModel(kind, inDim, hiddenDim, numLayers, seed)
}

// NewMatrix allocates a rows×cols embedding matrix.
func NewMatrix(rows, cols int) *Matrix { return tensor.New(rows, cols) }

// RandomFeatures generates deterministic random vertex features, as the
// paper does for graphs without native features.
func RandomFeatures(vertices, dim int, seed int64) *Matrix {
	return tensor.New(vertices, dim).FillRandom(seed)
}

// Planner selects the communication planning algorithm.
type Planner string

// Available planners: SPST is the paper's contribution, the others are the
// §7 baselines and DESIGN.md ablations.
const (
	PlannerSPST          Planner = "spst"
	PlannerP2P           Planner = "p2p"
	PlannerSPSTNoForward Planner = "spst-noforward"
	PlannerSteiner       Planner = "steiner"
)

// PlanOptions tunes how the SPST planner executes — parallelism and plan
// caching. It never changes what a plan means, only how fast one is
// produced: Workers/BatchSize trade bounded staleness for planning speed
// (see internal/core/parallel.go), and CacheDir short-circuits planning
// entirely when an identical (graph relation, fabric, options) input has
// been planned before.
type PlanOptions struct {
	// Workers is the number of concurrent planning workers. 0 or 1 runs the
	// paper's exact serial algorithm; larger values plan work items in
	// waves against an immutable snapshot of the link loads.
	Workers int
	// BatchSize is the number of work items each worker plans per wave
	// (default 1). Workers*BatchSize bounds how stale a worker's view of
	// link contention can be.
	BatchSize int
	// CacheDir, when non-empty, persists plans to this directory keyed by a
	// content digest of everything that determines them; warm lookups skip
	// the planner entirely. The empty string disables caching.
	CacheDir string
}

// Options configures Init.
type Options struct {
	// Planner defaults to PlannerSPST.
	Planner Planner
	// Seed drives partitioning and planning; runs are reproducible.
	Seed int64
	// ChunkSize is the SPST vertex-chunking granularity (default 16; 1 =
	// exact per-vertex planning).
	ChunkSize int
	// Plan tunes planner execution: parallel workers, wave batch size and
	// the on-disk plan cache. The zero value plans serially, uncached.
	Plan PlanOptions
	// AtomicBackward disables the §6.2 non-atomic sub-stage schedule.
	AtomicBackward bool
	// CacheFeatures enables the §3 strategy (1): remote layer-0 features are
	// allgathered once and cached across epochs, trading memory for the
	// elimination of the widest allgather of every epoch.
	CacheFeatures bool
	// KernelWorkers is the number of workers the deterministic parallel
	// tensor kernels use (tensor.SetParallelism): 0 or 1 runs serially,
	// larger values row-partition the dense matmuls and the aggregator
	// forward. Results are bit-identical for every worker count — each
	// output row has exactly one writer using the serial accumulation order.
	// The knob is process-wide: the kernels are shared by every client
	// goroutine, so the last Init wins.
	KernelWorkers int
	// Overlap configures chunked transfers and async stage pipelining in
	// the collective executor. Overlap is ON by default (the zero value
	// chunks at DefaultChunkRows and pipelines with the default window);
	// results are bit-identical to serial execution at any setting.
	Overlap OverlapOptions
}

// DefaultChunkRows is the transfer-chunking granularity used when
// OverlapOptions does not choose one: transfers wider than this many rows
// are split so receivers aggregate rows as chunks land.
const DefaultChunkRows = 256

// OverlapOptions configures the overlapped epoch executor (DESIGN.md §16):
// large per-stage transfers are split into fixed-size row chunks and each
// client's sends run concurrently with its aggregation, bounded by an
// in-flight stage window. The chunking granularity determines the
// wire-visible transfer keys, so every process of a multi-process run must
// agree on ChunkRows (the worker layer folds it into the wire plan digest);
// Disabled and Window are purely local execution policy — a Disabled
// process executes the same chunked layout strictly in order and stays
// bit-compatible with pipelined peers.
type OverlapOptions struct {
	// Disabled falls back to the serial stage-by-stage executor.
	Disabled bool
	// ChunkRows is the maximum rows per transfer chunk (<= 0 means
	// DefaultChunkRows).
	ChunkRows int
	// Window bounds how many stages a client's sender may run ahead of its
	// aggregator (<= 0 means runtime.DefaultOverlapWindow).
	Window int
}

// chunkRows returns the effective chunking granularity.
func (o OverlapOptions) chunkRows() int {
	if o.ChunkRows > 0 {
		return o.ChunkRows
	}
	return DefaultChunkRows
}

// runtimeConfig lowers the options onto the cluster executor.
func (o OverlapOptions) runtimeConfig() runtime.OverlapConfig {
	return runtime.OverlapConfig{Enabled: !o.Disabled, ChunkRows: o.chunkRows(), Window: o.Window}
}

// System is an initialized DGCL instance bound to a topology, matching the
// DGCL master + clients of Figure 5.
type System struct {
	topo *Topology
	opts Options

	g      *Graph
	part   *partition.Partition
	rel    *Relation
	locals []*LocalGraph
	plan   *Plan
	cost   float64
	clu    *runtime.Cluster
	pcache *core.PlanCache

	// Crash-tolerance state (see resilience.go). featureDim is remembered
	// from BuildCommInfo so degraded replans weight the plan identically;
	// dtopo is the degraded fabric after Degrade (nil = full fabric); alive
	// maps compact device index -> original device id (nil = identity);
	// runOpts/autoClassify reapply transport options after a rebuild; crash
	// and health outlive cluster rebuilds so dead devices stay dead.
	featureDim   int
	dtopo        *Topology
	alive        []int
	runOpts      *RunOptions
	autoClassify bool
	crash        *runtime.CrashTracker
	health       *runtime.HealthTracker

	// Worker-mode state (see SetWorkerMode): the client ranks this process
	// executes and the peer exchanger that synchronizes the rest.
	ranks []int
	peers PeerExchange

	// Epoch-boundary hooks (see OnEpochEnd): the serving layer's
	// cache-invalidation seam.
	epochHooks []func(epoch int, model *Model)
}

// curTopo returns the fabric the current cluster runs on (degraded after
// Degrade, full otherwise).
func (s *System) curTopo() *Topology {
	if s.dtopo != nil {
		return s.dtopo
	}
	return s.topo
}

// Init initializes the distributed communication environment for the given
// fabric.
func Init(topo *Topology, opts Options) *System {
	if opts.Planner == "" {
		opts.Planner = PlannerSPST
	}
	if opts.KernelWorkers > 0 {
		tensor.SetParallelism(opts.KernelWorkers)
	}
	return &System{topo: topo, opts: opts}
}

// NumGPUs returns the number of workers.
func (s *System) NumGPUs() int { return s.topo.NumGPUs() }

// OverlapChunkRows returns the effective transfer-chunking granularity —
// the layout-affecting half of the overlap configuration. Peers of a
// multi-process run must agree on it for their wire transfer keys to match;
// the worker layer folds it into the wire plan digest so a mismatch is
// rejected at the handshake.
func (s *System) OverlapChunkRows() int { return s.opts.Overlap.chunkRows() }

// SetOverlapPolicy overrides the local half of the overlap configuration —
// whether the pipelined executor runs, and how many stages its sender may
// run ahead (window <= 0 keeps the default). The chunked layout (ChunkRows)
// is untouched, so the override is always safe to differ per process:
// results are bit-identical either way. Takes effect from the next
// collective and survives degraded rebuilds.
func (s *System) SetOverlapPolicy(disabled bool, window int) {
	s.opts.Overlap.Disabled = disabled
	s.opts.Overlap.Window = window
	s.applyRunOptions()
}

// BuildCommInfo partitions the graph onto the GPUs (hierarchically when the
// topology spans machines), builds the communication relation and runs the
// communication planner. featureDim is the embedding width used to weight
// the plan; by the §5.1 invariance property the same plan is optimal for
// every layer width.
func (s *System) BuildCommInfo(g *Graph, featureDim int) error {
	if featureDim < 1 {
		return fmt.Errorf("dgcl: featureDim must be >= 1, got %d", featureDim)
	}
	k := s.topo.NumGPUs()
	var p *partition.Partition
	var err error
	if s.topo.NumMachines() > 1 {
		per := make([]int, s.topo.NumMachines())
		for d := 0; d < k; d++ {
			per[s.topo.GPUMachine(d)]++
		}
		p, err = partition.Hierarchical(g, per, partition.Options{Seed: s.opts.Seed})
	} else {
		p, err = partition.KWay(g, k, partition.Options{Seed: s.opts.Seed})
	}
	if err != nil {
		return err
	}
	rel, err := comm.Build(g, p)
	if err != nil {
		return err
	}
	plan, err := s.buildPlan(rel, s.topo, featureDim)
	if err != nil {
		return err
	}
	locals := comm.BuildLocalGraphs(g, rel)
	clu, err := runtime.NewCluster(rel, locals, plan)
	if err != nil {
		return err
	}
	clu.NonAtomic = !s.opts.AtomicBackward
	s.g, s.part, s.rel, s.locals, s.plan, s.clu = g, p, rel, locals, plan, clu
	s.featureDim = featureDim
	s.dtopo, s.alive = nil, nil
	s.applyRunOptions()
	return nil
}

// buildPlan runs the configured planner for the relation over the given
// fabric (the full topology normally, a degraded one after Degrade) and
// records the modeled cost. Degraded replans over a warm plan cache
// short-circuit planning entirely on repeat failures.
func (s *System) buildPlan(rel *Relation, topo *Topology, featureDim int) (*Plan, error) {
	bytesPerVertex := int64(featureDim) * 4
	var plan *Plan
	var err error
	switch s.opts.Planner {
	case PlannerSPST, PlannerSPSTNoForward:
		spstOpts := core.SPSTOptions{Seed: s.opts.Seed, ChunkSize: s.opts.ChunkSize,
			Workers: s.opts.Plan.Workers, BatchSize: s.opts.Plan.BatchSize,
			DisableForwarding: s.opts.Planner == PlannerSPSTNoForward}
		var state *core.State
		if s.opts.Plan.CacheDir != "" {
			if s.pcache == nil {
				s.pcache = core.NewPlanCache(s.opts.Plan.CacheDir)
			}
			plan, state, err = s.pcache.PlanSPST(rel, topo, bytesPerVertex, spstOpts)
		} else {
			plan, state, err = core.PlanSPST(rel, topo, bytesPerVertex, spstOpts)
		}
		if err != nil {
			return nil, err
		}
		s.cost = state.Cost()
	case PlannerP2P:
		plan = baselines.PlanP2P(rel, bytesPerVertex)
		m, merr := core.NewModel(topo)
		if merr != nil {
			return nil, merr
		}
		s.cost = core.CostOfPlan(m, plan)
	case PlannerSteiner:
		plan, err = baselines.PlanSteiner(rel, topo, bytesPerVertex)
		if err != nil {
			return nil, err
		}
		m, merr := core.NewModel(topo)
		if merr != nil {
			return nil, merr
		}
		s.cost = core.CostOfPlan(m, plan)
	default:
		return nil, fmt.Errorf("dgcl: unknown planner %q", s.opts.Planner)
	}
	return plan, nil
}

func (s *System) ready() error {
	if s.clu == nil {
		return fmt.Errorf("dgcl: call BuildCommInfo first")
	}
	return nil
}

// RunOptions configures how collectives execute: deadlines, retry budgets
// and (for testing) transport fault injection. Install with SetRunOptions
// after BuildCommInfo.
type RunOptions struct {
	// Timeout bounds each collective end to end; 0 means unbounded (the
	// context passed to the *Context variants still applies).
	Timeout time.Duration
	// Retry, when non-nil, installs the retry/timeout transport decorator:
	// lost messages are retransmitted with backoff and surface as
	// structured per-GPU errors within the policy's deadlines instead of
	// hanging the allgather.
	Retry *RetryPolicy
	// Faults, when non-nil, injects seeded transport faults
	// (drop/delay/duplicate/corrupt), classified per physical link class
	// when no Classify function is set. Pair with Retry for recovery.
	Faults *FaultConfig
	// CollectStats enables per-GPU transfer/retry/timeout counters,
	// readable via Stats. Implied when Retry or Faults is set.
	CollectStats bool
	// Crash, when non-nil, installs a deterministic fail-stop schedule
	// ("device d dies at epoch E, stage S"): transfers touching a crashed
	// device fail fast with ErrDeviceDown and the resilient Train loop
	// recovers by degrading onto the survivors. See ParseCrashSchedule.
	Crash *CrashConfig
	// DownAfter enables failure detection without a schedule: this many
	// consecutive deadline-class failures blamed on one device convert into
	// a down verdict (0 leaves detection to Train's default).
	DownAfter int
	// Transport, when non-nil, supplies the base transport for every
	// collective instead of the in-memory channels — the seam the wire
	// transport (internal/comm/wire) plugs into. Providers route by
	// external device id, so they survive degraded rebuilds. Fault, crash,
	// and retry decorators stack on top unchanged.
	Transport runtime.TransportProvider
}

// SetRunOptions installs transport options on the initialized system. When
// fault injection is requested without a link classifier, transfers are
// classified by the topology's channel classes ("NVLink", "SameSocket",
// "CrossSocket", "CrossMachine") so FaultConfig.PerClass keys match the
// physical fabric. Options survive a degraded rebuild: Degrade reapplies
// them against the surviving fabric.
func (s *System) SetRunOptions(opts RunOptions) error {
	if err := s.ready(); err != nil {
		return err
	}
	s.runOpts = &opts
	s.autoClassify = opts.Faults != nil && opts.Faults.Classify == nil
	if opts.Crash != nil {
		s.crash = runtime.NewCrashTracker(*opts.Crash)
	}
	if opts.Crash != nil || opts.DownAfter > 0 {
		s.ensureResilience(opts.DownAfter)
	}
	s.applyRunOptions()
	return nil
}

// applyRunOptions (re)installs the recorded run options on the current
// cluster. Called after SetRunOptions and after every rebuild
// (BuildCommInfo, Degrade) so transport decorators, stats, and the
// crash/health trackers follow the cluster across degraded replans.
func (s *System) applyRunOptions() {
	if s.clu == nil {
		return
	}
	s.clu.Overlap = s.opts.Overlap.runtimeConfig()
	if s.runOpts != nil {
		opts := s.runOpts
		if opts.Faults != nil && (opts.Faults.Classify == nil || s.autoClassify) {
			// Regenerate the auto classifier against the *current* fabric: a
			// closure over the pre-degrade topology would misclassify links
			// after survivors are renumbered.
			topo := s.curTopo()
			opts.Faults.Classify = func(src, dst int) string {
				ch, err := topo.GPUChannel(src, dst)
				if err != nil {
					return ""
				}
				return ch.Class.String()
			}
		}
		s.clu.Timeout = opts.Timeout
		s.clu.Faults = opts.Faults
		s.clu.Retry = opts.Retry
		s.clu.Provider = opts.Transport
		if (opts.CollectStats || opts.Retry != nil || opts.Faults != nil) && s.clu.Stats == nil {
			s.clu.Stats = runtime.NewCommStats(s.rel.K)
		}
	}
	s.clu.Crash = s.crash
	s.clu.Health = s.health
	s.clu.DeviceIDs = append([]int(nil), s.alive...)
	s.clu.Ranks = s.ranks
}

// SetWorkerMode restricts collective execution to the given client ranks and
// installs the peer exchanger that synchronizes losses and gradients with
// the other processes of a multi-process run (see cmd/dgclworker). Every
// process keeps all K model replicas and steps them identically, so final
// weights are bit-identical to an in-process run with the same seed. Call
// after BuildCommInfo (and SetRunOptions with the wire provider). Worker
// mode composes with Degrade-based recovery under coordinator supervision
// (internal/worker): Degrade renumbers this process's ranks through the
// survivor mapping, and the supervision layer re-meshes the survivors and
// calls SetWorkerMode again with the new generation's wire node.
func (s *System) SetWorkerMode(ranks []int, peers PeerExchange) error {
	if err := s.ready(); err != nil {
		return err
	}
	for _, r := range ranks {
		if r < 0 || r >= s.rel.K {
			return fmt.Errorf("dgcl: worker rank %d outside [0,%d)", r, s.rel.K)
		}
	}
	s.ranks = append([]int(nil), ranks...)
	s.peers = peers
	s.clu.Ranks = s.ranks
	return nil
}

// OnEpochEnd registers a hook observing the epoch boundaries of the
// resilient Train loop: fn runs synchronously after each completed epoch's
// optimizer step — and after every crash-recovery rebuild — with the number
// of the last epoch reflected in the weights (-1 when a recovery restarted
// from scratch) and replica 0's live model. Hooks that retain the model must
// Clone it; Train mutates it on the next step. The serving layer
// (internal/serve) registers its model-version bump and wholesale embedding
// cache invalidation here, which makes epoch boundaries the safe
// interleaving point between training and serving on one System: hooks run
// with no collective in flight.
func (s *System) OnEpochEnd(fn func(epoch int, model *Model)) {
	s.epochHooks = append(s.epochHooks, fn)
}

// fireEpochEnd runs the registered epoch-boundary hooks in registration
// order.
func (s *System) fireEpochEnd(epoch int, model *Model) {
	for _, fn := range s.epochHooks {
		fn(epoch, model)
	}
}

// ensureResilience installs the crash tracker and health tracker (detection
// threshold downAfter; 0 = default) that the resilient loop and the crash
// transport share. Idempotent.
func (s *System) ensureResilience(downAfter int) {
	if s.crash == nil {
		s.crash = runtime.NewCrashTracker(runtime.CrashConfig{})
	}
	if s.clu != nil && s.clu.Stats == nil {
		s.clu.Stats = runtime.NewCommStats(s.rel.K)
	}
	if s.health == nil {
		var stats *CommStats
		if s.clu != nil {
			stats = s.clu.Stats
		}
		s.health = runtime.NewHealthTracker(downAfter, s.crash, stats)
	}
}

// Stats returns the per-GPU communication counters, or nil when collection
// was never enabled (see RunOptions.CollectStats).
func (s *System) Stats() *CommStats {
	if s.clu == nil {
		return nil
	}
	return s.clu.Stats
}

// DispatchFeatures scatters global vertex features to the GPUs' partitions.
func (s *System) DispatchFeatures(features *Matrix) ([]*Matrix, error) {
	if err := s.ready(); err != nil {
		return nil, err
	}
	if features.Rows != s.g.NumVertices() {
		return nil, fmt.Errorf("dgcl: features have %d rows, graph has %d vertices", features.Rows, s.g.NumVertices())
	}
	out := make([]*Matrix, s.rel.K)
	for d := 0; d < s.rel.K; d++ {
		out[d] = tensor.GatherRows(features, s.rel.Local[d])
	}
	return out, nil
}

// GraphAllgather fetches remote vertex embeddings for every GPU: local[d]
// holds GPU d's owned rows; the result holds local+remote rows in local
// graph order, ready for a single-GPU GNN layer. It blocks until all clients
// finish, as in the paper (graphAllgather is synchronous).
func (s *System) GraphAllgather(local []*Matrix) ([]*Matrix, error) {
	return s.GraphAllgatherContext(context.Background(), local)
}

// GraphAllgatherContext is GraphAllgather bounded by a context: cancellation
// or a deadline aborts all clients with a structured CollectiveError.
func (s *System) GraphAllgatherContext(ctx context.Context, local []*Matrix) ([]*Matrix, error) {
	if err := s.ready(); err != nil {
		return nil, err
	}
	return s.clu.AllgatherContext(ctx, local)
}

// GraphAllgatherBackward routes gradients for remote vertices back to their
// owners along the plan's trees in reverse, returning accumulated gradients
// for each GPU's owned rows.
func (s *System) GraphAllgatherBackward(gradFull []*Matrix) ([]*Matrix, error) {
	return s.GraphAllgatherBackwardContext(context.Background(), gradFull)
}

// GraphAllgatherBackwardContext is GraphAllgatherBackward bounded by a
// context.
func (s *System) GraphAllgatherBackwardContext(ctx context.Context, gradFull []*Matrix) ([]*Matrix, error) {
	if err := s.ready(); err != nil {
		return nil, err
	}
	return s.clu.BackwardAllgatherContext(ctx, gradFull)
}

// NewTrainer builds a distributed trainer for the model with the global
// features and regression targets.
func (s *System) NewTrainer(model *Model, features, targets *Matrix) (*Trainer, error) {
	if err := s.ready(); err != nil {
		return nil, err
	}
	tr, err := runtime.NewTrainer(s.clu, model, features, targets)
	if err != nil {
		return nil, err
	}
	tr.CacheFeatures = s.opts.CacheFeatures
	tr.Peers = s.peers
	return tr, nil
}

// Plan returns the active communication plan.
func (s *System) Plan() *Plan { return s.plan }

// Relation returns the communication relation.
func (s *System) Relation() *Relation { return s.rel }

// LocalGraph returns GPU d's re-indexed graph.
func (s *System) LocalGraph(d int) *LocalGraph { return s.locals[d] }

// PartitionAssignment returns the vertex -> GPU assignment.
func (s *System) PartitionAssignment() []int32 { return s.part.Assign }

// PlannedCost returns the §5.1 modeled communication time of the plan in
// seconds.
func (s *System) PlannedCost() float64 { return s.cost }

// PlanCacheStats returns the plan cache's hit and miss counters; both are
// zero when no cache is configured (Options.Plan.CacheDir empty).
func (s *System) PlanCacheStats() (hits, misses int64) {
	if s.pcache == nil {
		return 0, 0
	}
	return s.pcache.Stats()
}

// SimulateAllgatherTime runs the virtual-time network simulator over the
// plan and returns the simulated wall time of one forward graphAllgather.
func (s *System) SimulateAllgatherTime(seed int64) (float64, error) {
	if err := s.ready(); err != nil {
		return 0, err
	}
	net, err := simnet.New(s.topo, simnet.DefaultConfig(seed))
	if err != nil {
		return 0, err
	}
	res, err := net.RunPlan(s.plan)
	if err != nil {
		return 0, err
	}
	return res.Time, nil
}
