// Command dgclbench regenerates the paper's evaluation tables and figures
// (§7) on the simulated substrate. Run with no flags to reproduce every
// experiment, or select one with -exp.
//
//	dgclbench                 # everything, default 1/64 scale
//	dgclbench -exp fig7       # just the headline comparison
//	dgclbench -scale 16       # larger graphs (slower, closer to full size)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dgcl/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table9, fig2..fig11) or 'all'")
	scale := flag.Int("scale", 64, "divide Table-4 dataset sizes by this factor")
	seed := flag.Int64("seed", 1, "random seed for graphs, partitioning and planning")
	layers := flag.Int("layers", 2, "GNN depth")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text | md")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.All(), "\n"))
		return
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Layers: *layers}
	ids := experiments.All()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		r, err := experiments.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgclbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *format == "md" {
			fmt.Println(r.Markdown())
		} else {
			fmt.Println(r.String())
		}
	}
}
