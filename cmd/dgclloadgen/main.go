// Command dgclloadgen drives an embedding server with Zipf-distributed
// queries at one or more target QPS points and reports the latency
// distribution (p50/p99/p999, split by cache hit vs forward path) plus the
// cache hit rate. It can drive a remote dgclserve endpoint, or spin up a
// complete server in-process (-selfserve) for the bench-serve smoke:
//
//	dgclloadgen -connect host:7100 -qps 100,300 -requests 5000
//	dgclloadgen -selfserve -dataset Web-Google -gpus 4 \
//	    -qps 200,800 -requests 4000 -record BENCH_serve.json -label current
//
// With -record, results land in a dgclbenchdiff runs file (latency quantiles
// as ns_op), so serve-path trends diff with the same tool as every other
// BENCH file.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"dgcl"
	"dgcl/internal/comm/wire"
	"dgcl/internal/serve"
	"dgcl/internal/worker"
)

func main() {
	connect := flag.String("connect", "", "dgclserve address to drive (mutually exclusive with -selfserve)")
	selfserve := flag.Bool("selfserve", false, "build and serve an in-process system over a loopback listener")
	qpsList := flag.String("qps", "200", "comma-separated target QPS points (0 = unpaced)")
	requests := flag.Int("requests", 2000, "queries per QPS point")
	concurrency := flag.Int("concurrency", 8, "worker goroutines")
	zipfS := flag.Float64("zipf-s", 1.2, "Zipf skew s (> 1)")
	zipfV := flag.Float64("zipf-v", 1, "Zipf v (>= 1)")
	seed := flag.Int64("seed", 1, "query stream seed")
	record := flag.String("record", "", "upsert results into this dgclbenchdiff runs file")
	label := flag.String("label", "current", "run label used with -record")

	dataset := flag.String("dataset", "Web-Google", "dataset from Table 4 (selfserve)")
	model := flag.String("model", "GCN", "model kind (selfserve)")
	gpus := flag.Int("gpus", 4, "GPU count (selfserve)")
	scale := flag.Int("scale", 256, "dataset downscale factor (selfserve)")
	featureDim := flag.Int("feature-dim", 16, "input feature width (selfserve)")
	hidden := flag.Int("hidden", 8, "hidden layer width (selfserve)")
	layers := flag.Int("layers", 2, "GNN depth (selfserve)")
	train := flag.Int("train", 1, "pretraining epochs (selfserve)")
	maxBatch := flag.Int("max-batch", 32, "occupancy cutoff (selfserve)")
	batchDelay := flag.Duration("batch-delay", 2*time.Millisecond, "latency cutoff (selfserve)")
	cacheEntries := flag.Int("cache", 4096, "embedding cache entries (selfserve; negative disables)")
	flag.Parse()

	if err := run(options{
		connect: *connect, selfserve: *selfserve,
		qpsList: *qpsList, requests: *requests, concurrency: *concurrency,
		zipfS: *zipfS, zipfV: *zipfV, seed: *seed,
		record: *record, label: *label,
		spec: worker.Spec{
			Dataset: *dataset, Model: *model, GPUs: *gpus, Scale: *scale,
			FeatureDim: *featureDim, Hidden: *hidden, Layers: *layers, Seed: *seed,
		},
		train: *train,
		cfg: serve.Config{
			MaxBatch:     *maxBatch,
			BatchDelay:   *batchDelay,
			CacheEntries: *cacheEntries,
		},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "dgclloadgen:", err)
		os.Exit(1)
	}
}

type options struct {
	connect     string
	selfserve   bool
	qpsList     string
	requests    int
	concurrency int
	zipfS       float64
	zipfV       float64
	seed        int64
	record      string
	label       string
	spec        worker.Spec
	train       int
	cfg         serve.Config
}

func run(o options) error {
	if o.selfserve == (o.connect != "") {
		return fmt.Errorf("exactly one of -connect and -selfserve must be set")
	}
	var points []float64
	for _, s := range strings.Split(o.qpsList, ",") {
		q, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad -qps element %q: %w", s, err)
		}
		points = append(points, q)
	}

	addr := o.connect
	vertices := 0
	if o.selfserve {
		sys, model, features, targets, err := worker.Build(o.spec)
		if err != nil {
			return err
		}
		if o.train > 0 {
			res, err := sys.Train(context.Background(), model, features, targets, dgcl.TrainOptions{Epochs: o.train})
			if err != nil {
				return fmt.Errorf("pretraining: %w", err)
			}
			model = res.Model
		}
		srv, err := serve.New(sys, model, features, o.cfg)
		if err != nil {
			return err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		go srv.ServeListener(ln)
		addr = ln.Addr().String()
		vertices = srv.NumVertices()
		fmt.Printf("selfserve: %d vertices on %s\n", vertices, addr)
	} else {
		n, err := remoteVertices(addr)
		if err != nil {
			return err
		}
		vertices = n
	}

	var reports []*serve.LoadReport
	for _, qps := range points {
		rep, err := serve.RunLoad(context.Background(), serve.LoadOptions{
			Addr:        addr,
			Vertices:    vertices,
			QPS:         qps,
			Requests:    o.requests,
			Concurrency: o.concurrency,
			ZipfS:       o.zipfS,
			ZipfV:       o.zipfV,
			Seed:        o.seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(serve.FormatReport(rep))
		reports = append(reports, rep)
	}

	if o.record != "" {
		if err := serve.RecordBench(o.record, o.label, reports); err != nil {
			return err
		}
		fmt.Printf("recorded %d QPS points as %q in %s\n", len(reports), o.label, o.record)
	}
	return nil
}

// remoteVertices asks the server for its vertex count via an OpStats probe.
func remoteVertices(addr string) (int, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("dialing %s: %w", addr, err)
	}
	defer conn.Close()
	if err := serve.WriteRequest(conn, &serve.Request{Op: serve.OpStats, ID: 1}, 10*time.Second); err != nil {
		return 0, err
	}
	var reply serve.StatsReply
	if err := wire.ReadControl(conn, &reply, 10*time.Second); err != nil {
		return 0, err
	}
	if reply.NumVertices <= 0 {
		return 0, fmt.Errorf("server reports %d vertices", reply.NumVertices)
	}
	return reply.NumVertices, nil
}
