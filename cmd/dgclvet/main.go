// Command dgclvet is the multichecker driver for the dgclvet analyzer suite
// (internal/analysis): project-specific static checks that enforce the
// planner's determinism and the runtime's concurrency/error invariants.
//
// Usage:
//
//	dgclvet [-only name1,name2] [-list] [-json] [-baseline file] [-ignores] [packages]
//
// Packages default to ./... relative to the current directory. Exit status
// is 0 when clean, 1 when any analyzer reported a finding, 2 when packages
// failed to load or type-check. Findings are suppressed per line with
// //dgclvet:ignore <analyzers> <justification>.
//
// -json emits findings as a JSON array instead of text lines. -baseline
// names a committed JSON baseline; findings matching it on (file, analyzer,
// message) are reported but do not fail the run, so CI gates on new findings
// only. -ignores skips analysis and instead audits every //dgclvet:ignore
// directive in the tree, failing on stale analyzer names or missing
// justifications.
package main

import (
	"flag"
	"fmt"
	"os"

	"dgcl/internal/analysis/dgclvet"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	baseline := flag.String("baseline", "", "JSON baseline file; matching findings do not fail the run")
	ignores := flag.Bool("ignores", false, "audit //dgclvet:ignore directives instead of running analysis")
	flag.Parse()

	if *list {
		for _, name := range dgclvet.Names() {
			fmt.Println(name)
		}
		return
	}
	if *ignores {
		os.Exit(dgclvet.Ignores(".", dgclvet.Analyzers, os.Stdout))
	}
	analyzers, err := dgclvet.Select(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgclvet: %v\n", err)
		os.Exit(dgclvet.ExitLoadError)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	opts := dgclvet.Options{JSON: *jsonOut, Baseline: *baseline}
	os.Exit(dgclvet.Run(".", patterns, analyzers, opts, os.Stdout))
}
