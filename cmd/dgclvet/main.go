// Command dgclvet is the multichecker driver for the dgclvet analyzer suite
// (internal/analysis): project-specific static checks that enforce the
// planner's determinism and the runtime's concurrency/error invariants.
//
// Usage:
//
//	dgclvet [-only name1,name2] [-list] [packages]
//
// Packages default to ./... relative to the current directory. Exit status
// is 0 when clean, 1 when any analyzer reported a finding, 2 when packages
// failed to load or type-check. Findings are suppressed per line with
// //dgclvet:ignore <analyzers> <justification>.
package main

import (
	"flag"
	"fmt"
	"os"

	"dgcl/internal/analysis/dgclvet"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, name := range dgclvet.Names() {
			fmt.Println(name)
		}
		return
	}
	analyzers, err := dgclvet.Select(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgclvet: %v\n", err)
		os.Exit(dgclvet.ExitLoadError)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(dgclvet.Main(".", patterns, analyzers, os.Stdout))
}
