// Command dgcltrain runs end-to-end distributed GNN training on a simulated
// cluster: the math is real (goroutine workers exchanging float32
// embeddings under the SPST plan), while per-epoch wall time is assembled
// from the device compute model and the network simulator — giving the same
// per-epoch/communication breakdown as the paper's Figure 7 rows, for any
// model/dataset/fabric combination.
//
//	dgcltrain -dataset Reddit -model GCN -gpus 8 -epochs 3
//	dgcltrain -dataset Web-Google -model GAT -gpus 16 -planner p2p
//
// With -listen, dgcltrain instead coordinates a real multi-process run: it
// waits for -workers dgclworker processes to join over TCP, hands each its
// share of the cluster, and verifies every process reports bit-identical
// losses and final weights.
//
//	dgcltrain -listen :7000 -workers 2 -dataset Web-Google -gpus 4
//	dgclworker -connect host:7000        # on each worker machine
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"dgcl"
	"dgcl/internal/device"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/simnet"
	"dgcl/internal/worker"
)

// chaosOptions bundles the fault-injection / retry flags.
type chaosOptions struct {
	drop, corrupt, dup float64
	seed               int64
	retries            int
	timeout            time.Duration
}

func (c chaosOptions) enabled() bool { return c.drop > 0 || c.corrupt > 0 || c.dup > 0 }

// recoveryOptions bundles the checkpoint / resume / crash-schedule flags.
type recoveryOptions struct {
	dir    string
	every  int
	keep   int
	resume bool
	crash  string
}

// overlapOptions bundles the overlapped-execution flags (DESIGN.md §16).
type overlapOptions struct {
	on         bool
	chunkRows  int
	window     int
	wireWindow int
}

func (o overlapOptions) dgcl() dgcl.OverlapOptions {
	return dgcl.OverlapOptions{Disabled: !o.on, ChunkRows: o.chunkRows, Window: o.window}
}

func main() {
	dataset := flag.String("dataset", "Reddit", "dataset from Table 4")
	model := flag.String("model", "GCN", "GCN | CommNet | GIN | GraphSAGE | GAT")
	gpus := flag.Int("gpus", 8, "GPU count (1-8 or 16)")
	scale := flag.Int("scale", 256, "dataset downscale factor")
	epochs := flag.Int("epochs", 5, "training epochs")
	layers := flag.Int("layers", 2, "GNN depth")
	seed := flag.Int64("seed", 1, "random seed")
	lr := flag.Float64("lr", 0.001, "learning rate")
	adam := flag.Bool("adam", false, "use Adam instead of SGD")
	planner := flag.String("planner", "spst", "spst | p2p | spst-noforward")
	cache := flag.Bool("cache-features", false, "cache remote layer-0 features across epochs")
	kernelWorkers := flag.Int("kernel-workers", 1, "workers for the deterministic parallel tensor kernels (results bit-identical at any value)")
	var ov overlapOptions
	flag.BoolVar(&ov.on, "overlap", true, "chunked transfers + async stage pipelining (bit-identical to serial; false runs stages serially)")
	flag.IntVar(&ov.chunkRows, "chunk-rows", 0, "rows per transfer chunk for overlapped execution (0 = default; shared by every process of a -listen run)")
	flag.IntVar(&ov.window, "overlap-window", 0, "stages the send pipeline may run ahead of aggregation (0 = default)")
	flag.IntVar(&ov.wireWindow, "wire-window", 0, "per-link wire credit window in frames for -listen runs (0 = default)")
	var chaos chaosOptions
	flag.Float64Var(&chaos.drop, "fault-drop", 0, "transport drop probability per message (chaos)")
	flag.Float64Var(&chaos.corrupt, "fault-corrupt", 0, "transport corruption probability per message (chaos)")
	flag.Float64Var(&chaos.dup, "fault-dup", 0, "transport duplication probability per message (chaos)")
	flag.Int64Var(&chaos.seed, "fault-seed", 1, "fault injection seed")
	flag.IntVar(&chaos.retries, "retries", 8, "retransmission budget per transfer when faults are on")
	flag.DurationVar(&chaos.timeout, "comm-timeout", 30*time.Second, "end-to-end deadline per collective when faults are on")
	var rec recoveryOptions
	flag.StringVar(&rec.dir, "checkpoint-dir", "", "directory for durable epoch checkpoints (empty = disabled)")
	flag.IntVar(&rec.every, "checkpoint-every", 1, "epochs between checkpoints")
	flag.IntVar(&rec.keep, "checkpoint-keep", 0, "checkpoint generations to retain (0 = default)")
	flag.BoolVar(&rec.resume, "resume", false, "resume from the newest intact checkpoint in -checkpoint-dir")
	flag.StringVar(&rec.crash, "crash", "", "fail-stop schedule dev@epoch[:stage],... (chaos)")
	listen := flag.String("listen", "", "coordinate a multi-process run: accept dgclworker joins on this address")
	workers := flag.Int("workers", 2, "worker processes to wait for in -listen mode")
	var sup supervisionOptions
	flag.DurationVar(&sup.heartbeat, "heartbeat", 0, "worker heartbeat interval in -listen mode (0 = default)")
	flag.DurationVar(&sup.lease, "lease", 0, "per-heartbeat lease deadline in -listen mode (0 = 4x heartbeat)")
	flag.IntVar(&sup.downAfter, "down-after", 0, "consecutive missed leases before a worker is judged dead (0 = default)")
	flag.DurationVar(&sup.rejoinWait, "rejoin-wait", 0, "grace window for a restarted worker to rejoin before degrading (0 = default)")
	flag.Parse()

	var err error
	if *listen != "" {
		err = coordinate(*listen, *workers, *dataset, *model, *gpus, *scale, *epochs, *layers, *seed, *lr, ov, chaos, rec, sup)
	} else {
		err = run(*dataset, *model, *gpus, *scale, *epochs, *layers, *seed, float32(*lr), *adam, *planner, *cache, *kernelWorkers, ov, chaos, rec)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgcltrain:", err)
		os.Exit(1)
	}
}

// supervisionOptions bundles the -listen mode membership flags.
type supervisionOptions struct {
	heartbeat  time.Duration
	lease      time.Duration
	downAfter  int
	rejoinWait time.Duration
}

// coordinate serves one supervised multi-process training run: the heavy
// lifting — graph build, planning, training — happens in the dgclworker
// processes; this side is pure control plane, supervising the membership
// (heartbeats, rejoin, degrade-onto-survivors).
func coordinate(addr string, workers int, dataset, modelName string, gpus, scale, epochs, layers int, seed int64, lr float64, ov overlapOptions, chaos chaosOptions, rec recoveryOptions, sup supervisionOptions) error {
	if chaos.enabled() || rec.crash != "" || rec.dir != "" {
		return fmt.Errorf("-listen coordinates real processes; the chaos and checkpoint flags apply to single-process runs only")
	}
	if !ov.on || ov.window > 0 {
		return fmt.Errorf("-overlap and -overlap-window are per-process policy: set them on each dgclworker (-chunk-rows and -wire-window distribute through the spec)")
	}
	ds, err := graph.DatasetByName(dataset)
	if err != nil {
		return err
	}
	spec := worker.Spec{
		Dataset: dataset,
		Scale:   scale,
		Model:   modelName,
		Hidden:  ds.HiddenDim,
		Layers:  layers,
		GPUs:    gpus,
		Epochs:  epochs,
		Seed:    seed,
		LR:      lr,

		ChunkRows:  ov.chunkRows,
		WireWindow: ov.wireWindow,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("coordinating %s/%s over %d GPUs: waiting for %d workers on %s\n",
		dataset, modelName, gpus, workers, ln.Addr())
	report, err := worker.Supervise(context.Background(), ln, worker.SuperviseOptions{
		Workers:      workers,
		Spec:         spec,
		Heartbeat:    sup.heartbeat,
		LeaseTimeout: sup.lease,
		DownAfter:    sup.downAfter,
		RejoinWait:   sup.rejoinWait,
		OnEvent: func(ev worker.MemberEvent) {
			if ev.Detail != "" {
				fmt.Printf("membership: gen %d worker %d %s (%s)\n", ev.Gen, ev.Member, ev.State, ev.Detail)
				return
			}
			fmt.Printf("membership: gen %d worker %d %s\n", ev.Gen, ev.Member, ev.State)
		},
	})
	if err != nil {
		return err
	}
	for e, loss := range report.Losses {
		fmt.Printf("epoch %d: loss %12.4f\n", e, loss)
	}
	fmt.Printf("all %d workers bit-identical; final model digest %#x\n", workers, report.ModelSum)
	return nil
}

func run(dataset, modelName string, gpus, scale, epochs, layers int, seed int64, lr float32, adam bool, planner string, cache bool, kernelWorkers int, ov overlapOptions, chaos chaosOptions, rec recoveryOptions) error {
	ds, err := graph.DatasetByName(dataset)
	if err != nil {
		return err
	}
	kind := gnn.ModelKind(modelName)
	switch kind {
	case gnn.GCN, gnn.CommNet, gnn.GIN, gnn.GraphSAGE, gnn.GAT:
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}
	g := ds.Generate(scale, seed)
	fmt.Printf("%s at 1/%d scale: %d vertices, %d edges; %s, %d layers, %d GPUs\n",
		ds.Name, scale, g.NumVertices(), g.NumEdges(), kind, layers, gpus)

	topo, err := dgcl.TopologyForGPUCount(gpus)
	if err != nil {
		return err
	}
	sys := dgcl.Init(topo, dgcl.Options{Planner: dgcl.Planner(planner), Seed: seed, CacheFeatures: cache, KernelWorkers: kernelWorkers, Overlap: ov.dgcl()})
	if err := sys.BuildCommInfo(g, ds.FeatureDim); err != nil {
		return err
	}
	fmt.Printf("plan: %s, %d stages, modeled comm %.3f ms per allgather\n",
		sys.Plan().Algorithm, sys.Plan().NumStages(), sys.PlannedCost()*1e3)
	if ov.on {
		fmt.Printf("overlap: pipelined execution, %d-row chunks\n", sys.OverlapChunkRows())
	}

	// Fault injection: the runtime transport retries real losses, and the
	// network simulator prices the retransmissions in virtual time. A
	// -crash schedule additionally kills whole devices fail-stop; the
	// resilient loop recovers by degrading onto the survivors.
	var faultProfile *simnet.FaultProfile
	var crashCfg *dgcl.CrashConfig
	if rec.crash != "" {
		crashCfg, err = dgcl.ParseCrashSchedule(rec.crash)
		if err != nil {
			return err
		}
	}
	if chaos.enabled() || crashCfg != nil {
		retry := dgcl.DefaultRetryPolicy()
		retry.MaxRetries = chaos.retries
		runOpts := dgcl.RunOptions{
			Timeout: chaos.timeout,
			Retry:   &retry,
			Crash:   crashCfg,
		}
		if chaos.enabled() {
			runOpts.Faults = &dgcl.FaultConfig{
				Seed:    chaos.seed,
				Default: dgcl.FaultRates{Drop: chaos.drop, Corrupt: chaos.corrupt, Duplicate: chaos.dup},
				Stats:   &dgcl.FaultStats{},
			}
			faultProfile = &simnet.FaultProfile{
				DropRate: chaos.drop, CorruptRate: chaos.corrupt, DuplicateRate: chaos.dup,
				MaxRetries: chaos.retries,
			}
			fmt.Printf("chaos: drop %.2f corrupt %.2f dup %.2f, %d retries, %s deadline\n",
				chaos.drop, chaos.corrupt, chaos.dup, chaos.retries, chaos.timeout)
		}
		if crashCfg != nil {
			fmt.Printf("crash schedule: %s\n", rec.crash)
		}
		if err := sys.SetRunOptions(runOpts); err != nil {
			return err
		}
	}

	model := dgcl.NewModel(kind, ds.FeatureDim, ds.HiddenDim, layers, seed)
	features := dgcl.RandomFeatures(g.NumVertices(), ds.FeatureDim, seed+1)
	targets := dgcl.RandomFeatures(g.NumVertices(), ds.HiddenDim, seed+2)
	newOptimizer := func() dgcl.Optimizer {
		if adam {
			return gnn.NewAdam(lr)
		}
		return gnn.NewSGD(lr, 0.9)
	}
	fmt.Printf("optimizer: %s\n\n", newOptimizer().Name())

	// Simulated per-epoch timing: compute (device model) + communication
	// (network simulator over the plan).
	gpu := device.V100()
	simCfg := simnet.DefaultConfig(seed)
	simCfg.Faults = faultProfile
	if ov.on {
		simCfg.Overlap = &simnet.OverlapModel{ChunkRows: sys.OverlapChunkRows(), Window: ov.window}
	}
	net, err := simnet.New(topo, simCfg)
	if err != nil {
		return err
	}
	var commPerEpoch float64
	var retransPerEpoch int
	dims := make([]int, layers)
	dims[0] = ds.FeatureDim
	for l := 1; l < layers; l++ {
		dims[l] = ds.HiddenDim
	}
	for li, dim := range dims {
		p := *sys.Plan()
		p.BytesPerVertex = int64(dim) * 4
		if !(cache && li == 0) {
			fwd, err := net.RunPlan(&p)
			if err != nil {
				return err
			}
			commPerEpoch += fwd.Time
			retransPerEpoch += fwd.Retransmissions
		}
		if li > 0 {
			bwd, err := net.RunBackward(&p, true)
			if err != nil {
				return err
			}
			commPerEpoch += bwd.Time
			retransPerEpoch += bwd.Retransmissions
		}
	}
	if retransPerEpoch > 0 {
		fmt.Printf("simulated retransmissions per epoch: %d\n", retransPerEpoch)
	}
	maxV, maxE := int64(0), int64(0)
	for d := 0; d < gpus; d++ {
		lg := sys.LocalGraph(d)
		if int64(lg.NumLocal) > maxV {
			maxV = int64(lg.NumLocal)
		}
		if e := lg.G.NumEdges(); e > maxE {
			maxE = e
		}
	}
	computePerEpoch := gpu.EpochComputeTime(model, maxV, maxE)

	res, err := sys.Train(context.Background(), model, features, targets, dgcl.TrainOptions{
		Epochs:          epochs,
		NewOptimizer:    newOptimizer,
		CheckpointDir:   rec.dir,
		CheckpointEvery: rec.every,
		CheckpointKeep:  rec.keep,
		Resume:          rec.resume,
		OnEpoch: func(e int, loss float64) {
			fmt.Printf("epoch %d: loss %12.4f | simulated %.3f ms (compute %.3f + comm %.3f)\n",
				e, loss, (computePerEpoch+commPerEpoch)*1e3, computePerEpoch*1e3, commPerEpoch*1e3)
		},
		OnRecovery: func(ev dgcl.RecoveryEvent) {
			fmt.Printf("recovery: devices %v down at epoch %d; replanned over %v, resumed at epoch %d (checkpoint generation %d)\n",
				ev.Down, ev.FailedEpoch, ev.Survivors, ev.ResumedEpoch, ev.Generation)
		},
	})
	if err != nil {
		return err
	}
	if res.StartEpoch > 0 {
		fmt.Printf("resumed from epoch %d\n", res.StartEpoch)
	}
	if st := sys.Stats(); st != nil && chaos.enabled() {
		fmt.Printf("\ntransport: %d retransmissions, %d receive timeouts\n",
			st.TotalRetries(), st.TotalTimeouts())
	}
	// Recovery pricing: virtual-time cost of the crash-tolerance machinery
	// for this configuration (checkpoint write/restore, full recovery stall,
	// amortized per-epoch overhead at the chosen interval).
	if rec.dir != "" || crashCfg != nil {
		ckptBytes := modelBytes(res.Model)
		rp := &simnet.RecoveryProfile{}
		epochTime := computePerEpoch + commPerEpoch
		fmt.Printf("\nrecovery pricing: checkpoint %.3f ms (payload %d B), restore %.3f ms, full recovery %.3f s\n",
			rp.CheckpointTime(ckptBytes)*1e3, ckptBytes, rp.RestoreTime(ckptBytes)*1e3, rp.RecoveryTime(ckptBytes))
		fmt.Printf("amortized overhead at interval %d: %.3f ms/epoch (at 1e-4 failures/epoch)\n",
			rec.every, rp.OverheadPerEpoch(rec.every, ckptBytes, epochTime, 1e-4)*1e3)
		if len(res.Recoveries) > 0 {
			fmt.Printf("recoveries performed: %d, checkpoints written: %d\n", len(res.Recoveries), res.Checkpoints)
		}
	}
	return nil
}

// modelBytes is the checkpoint payload size estimate: float32 parameters.
func modelBytes(m *dgcl.Model) int64 {
	var n int64
	for _, l := range m.Layers {
		for _, p := range l.Params() {
			n += int64(p.Rows) * int64(p.Cols) * 4
		}
	}
	return n
}
