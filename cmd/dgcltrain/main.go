// Command dgcltrain runs end-to-end distributed GNN training on a simulated
// cluster: the math is real (goroutine workers exchanging float32
// embeddings under the SPST plan), while per-epoch wall time is assembled
// from the device compute model and the network simulator — giving the same
// per-epoch/communication breakdown as the paper's Figure 7 rows, for any
// model/dataset/fabric combination.
//
//	dgcltrain -dataset Reddit -model GCN -gpus 8 -epochs 3
//	dgcltrain -dataset Web-Google -model GAT -gpus 16 -planner p2p
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dgcl"
	"dgcl/internal/device"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/simnet"
)

// chaosOptions bundles the fault-injection / retry flags.
type chaosOptions struct {
	drop, corrupt, dup float64
	seed               int64
	retries            int
	timeout            time.Duration
}

func (c chaosOptions) enabled() bool { return c.drop > 0 || c.corrupt > 0 || c.dup > 0 }

func main() {
	dataset := flag.String("dataset", "Reddit", "dataset from Table 4")
	model := flag.String("model", "GCN", "GCN | CommNet | GIN | GraphSAGE | GAT")
	gpus := flag.Int("gpus", 8, "GPU count (1-8 or 16)")
	scale := flag.Int("scale", 256, "dataset downscale factor")
	epochs := flag.Int("epochs", 5, "training epochs")
	layers := flag.Int("layers", 2, "GNN depth")
	seed := flag.Int64("seed", 1, "random seed")
	lr := flag.Float64("lr", 0.001, "learning rate")
	adam := flag.Bool("adam", false, "use Adam instead of SGD")
	planner := flag.String("planner", "spst", "spst | p2p | spst-noforward")
	cache := flag.Bool("cache-features", false, "cache remote layer-0 features across epochs")
	var chaos chaosOptions
	flag.Float64Var(&chaos.drop, "fault-drop", 0, "transport drop probability per message (chaos)")
	flag.Float64Var(&chaos.corrupt, "fault-corrupt", 0, "transport corruption probability per message (chaos)")
	flag.Float64Var(&chaos.dup, "fault-dup", 0, "transport duplication probability per message (chaos)")
	flag.Int64Var(&chaos.seed, "fault-seed", 1, "fault injection seed")
	flag.IntVar(&chaos.retries, "retries", 8, "retransmission budget per transfer when faults are on")
	flag.DurationVar(&chaos.timeout, "comm-timeout", 30*time.Second, "end-to-end deadline per collective when faults are on")
	flag.Parse()

	if err := run(*dataset, *model, *gpus, *scale, *epochs, *layers, *seed, float32(*lr), *adam, *planner, *cache, chaos); err != nil {
		fmt.Fprintln(os.Stderr, "dgcltrain:", err)
		os.Exit(1)
	}
}

func run(dataset, modelName string, gpus, scale, epochs, layers int, seed int64, lr float32, adam bool, planner string, cache bool, chaos chaosOptions) error {
	ds, err := graph.DatasetByName(dataset)
	if err != nil {
		return err
	}
	kind := gnn.ModelKind(modelName)
	switch kind {
	case gnn.GCN, gnn.CommNet, gnn.GIN, gnn.GraphSAGE, gnn.GAT:
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}
	g := ds.Generate(scale, seed)
	fmt.Printf("%s at 1/%d scale: %d vertices, %d edges; %s, %d layers, %d GPUs\n",
		ds.Name, scale, g.NumVertices(), g.NumEdges(), kind, layers, gpus)

	topo, err := dgcl.TopologyForGPUCount(gpus)
	if err != nil {
		return err
	}
	sys := dgcl.Init(topo, dgcl.Options{Planner: dgcl.Planner(planner), Seed: seed, CacheFeatures: cache})
	if err := sys.BuildCommInfo(g, ds.FeatureDim); err != nil {
		return err
	}
	fmt.Printf("plan: %s, %d stages, modeled comm %.3f ms per allgather\n",
		sys.Plan().Algorithm, sys.Plan().NumStages(), sys.PlannedCost()*1e3)

	// Fault injection: the runtime transport retries real losses, and the
	// network simulator prices the retransmissions in virtual time.
	var faultProfile *simnet.FaultProfile
	if chaos.enabled() {
		retry := dgcl.DefaultRetryPolicy()
		retry.MaxRetries = chaos.retries
		if err := sys.SetRunOptions(dgcl.RunOptions{
			Timeout: chaos.timeout,
			Retry:   &retry,
			Faults: &dgcl.FaultConfig{
				Seed:    chaos.seed,
				Default: dgcl.FaultRates{Drop: chaos.drop, Corrupt: chaos.corrupt, Duplicate: chaos.dup},
				Stats:   &dgcl.FaultStats{},
			},
		}); err != nil {
			return err
		}
		faultProfile = &simnet.FaultProfile{
			DropRate: chaos.drop, CorruptRate: chaos.corrupt, DuplicateRate: chaos.dup,
			MaxRetries: chaos.retries,
		}
		fmt.Printf("chaos: drop %.2f corrupt %.2f dup %.2f, %d retries, %s deadline\n",
			chaos.drop, chaos.corrupt, chaos.dup, chaos.retries, chaos.timeout)
	}

	model := dgcl.NewModel(kind, ds.FeatureDim, ds.HiddenDim, layers, seed)
	features := dgcl.RandomFeatures(g.NumVertices(), ds.FeatureDim, seed+1)
	targets := dgcl.RandomFeatures(g.NumVertices(), ds.HiddenDim, seed+2)
	trainer, err := sys.NewTrainer(model, features, targets)
	if err != nil {
		return err
	}
	var opts []gnn.Optimizer
	for d := 0; d < gpus; d++ {
		if adam {
			opts = append(opts, gnn.NewAdam(lr))
		} else {
			opts = append(opts, gnn.NewSGD(lr, 0.9))
		}
	}
	fmt.Printf("optimizer: %s\n\n", opts[0].Name())

	// Simulated per-epoch timing: compute (device model) + communication
	// (network simulator over the plan).
	gpu := device.V100()
	simCfg := simnet.DefaultConfig(seed)
	simCfg.Faults = faultProfile
	net, err := simnet.New(topo, simCfg)
	if err != nil {
		return err
	}
	var commPerEpoch float64
	var retransPerEpoch int
	dims := make([]int, layers)
	dims[0] = ds.FeatureDim
	for l := 1; l < layers; l++ {
		dims[l] = ds.HiddenDim
	}
	for li, dim := range dims {
		p := *sys.Plan()
		p.BytesPerVertex = int64(dim) * 4
		if !(cache && li == 0) {
			fwd, err := net.RunPlan(&p)
			if err != nil {
				return err
			}
			commPerEpoch += fwd.Time
			retransPerEpoch += fwd.Retransmissions
		}
		if li > 0 {
			bwd, err := net.RunBackward(&p, true)
			if err != nil {
				return err
			}
			commPerEpoch += bwd.Time
			retransPerEpoch += bwd.Retransmissions
		}
	}
	if retransPerEpoch > 0 {
		fmt.Printf("simulated retransmissions per epoch: %d\n", retransPerEpoch)
	}
	maxV, maxE := int64(0), int64(0)
	for d := 0; d < gpus; d++ {
		lg := sys.LocalGraph(d)
		if int64(lg.NumLocal) > maxV {
			maxV = int64(lg.NumLocal)
		}
		if e := lg.G.NumEdges(); e > maxE {
			maxE = e
		}
	}
	computePerEpoch := gpu.EpochComputeTime(model, maxV, maxE)

	for e := 0; e < epochs; e++ {
		loss, err := trainer.Epoch()
		if err != nil {
			return err
		}
		if err := trainer.StepWith(opts); err != nil {
			return err
		}
		fmt.Printf("epoch %d: loss %12.4f | simulated %.3f ms (compute %.3f + comm %.3f)\n",
			e, loss, (computePerEpoch+commPerEpoch)*1e3, computePerEpoch*1e3, commPerEpoch*1e3)
	}
	if st := sys.Stats(); st != nil && chaos.enabled() {
		fmt.Printf("\ntransport: %d retransmissions, %d receive timeouts\n",
			st.TotalRetries(), st.TotalTimeouts())
	}
	return nil
}
