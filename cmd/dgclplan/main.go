// Command dgclplan plans the communication of one workload and dumps the
// plan: stages, per-pair volumes, modeled and simulated times, and a
// comparison against the peer-to-peer and swap baselines.
//
//	dgclplan -dataset Reddit -gpus 8 -scale 64
//	dgclplan -dataset Web-Google -gpus 16 -planner p2p -verbose
package main

import (
	"flag"
	"fmt"
	"os"

	"dgcl/internal/baselines"
	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/simnet"
	"dgcl/internal/topology"
)

func main() {
	dataset := flag.String("dataset", "Reddit", "dataset name from Table 4")
	gpus := flag.Int("gpus", 8, "GPU count (1-8 or 16)")
	scale := flag.Int("scale", 64, "dataset downscale factor")
	seed := flag.Int64("seed", 1, "random seed")
	planner := flag.String("planner", "spst", "spst | spst-noforward | p2p")
	chunk := flag.Int("chunk", 16, "SPST vertex chunk size (1 = exact per-vertex)")
	workers := flag.Int("workers", 1, "SPST planning workers (1 = exact serial planning)")
	batch := flag.Int("batch", 1, "items each worker plans per wave against a frozen load snapshot")
	cacheDir := flag.String("plan-cache", "", "content-addressed plan cache directory (empty = no cache)")
	verbose := flag.Bool("verbose", false, "print per-stage transfer lists")
	gantt := flag.Bool("gantt", false, "render the simulated flow timeline as an ASCII chart")
	planOut := flag.String("o", "", "write the plan as JSON to this file")
	traceOut := flag.String("trace", "", "write the simulated flow timeline as CSV to this file")
	flag.Parse()

	cfg := plannerConfig{chunk: *chunk, workers: *workers, batch: *batch, cacheDir: *cacheDir}
	if err := run(*dataset, *gpus, *scale, *seed, *planner, cfg, *verbose, *gantt, *planOut, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "dgclplan:", err)
		os.Exit(1)
	}
}

// plannerConfig groups the SPST tuning flags so run() stays readable.
type plannerConfig struct {
	chunk    int
	workers  int
	batch    int
	cacheDir string
}

func run(dataset string, gpus, scale int, seed int64, planner string, cfg plannerConfig, verbose, gantt bool, planOut, traceOut string) error {
	ds, err := graph.DatasetByName(dataset)
	if err != nil {
		return err
	}
	g := ds.Generate(scale, seed)
	stats := g.ComputeStats()
	fmt.Printf("graph: %s at 1/%d scale: %d vertices, %d edges, avg degree %.2f\n",
		ds.Name, scale, stats.Vertices, stats.Edges, stats.AvgDegree)

	topo, err := topology.ForGPUCount(gpus)
	if err != nil {
		return err
	}
	var p *partition.Partition
	if topo.NumMachines() > 1 {
		per := make([]int, topo.NumMachines())
		for d := 0; d < gpus; d++ {
			per[topo.GPUMachine(d)]++
		}
		p, err = partition.Hierarchical(g, per, partition.Options{Seed: seed})
	} else {
		p, err = partition.KWay(g, gpus, partition.Options{Seed: seed})
	}
	if err != nil {
		return err
	}
	fmt.Printf("partition: %d parts, edge cut %d (%.1f%% of edges), balance %.3f\n",
		p.K, p.EdgeCut(g), 100*float64(p.EdgeCut(g))/float64(g.NumEdges()), p.Balance())

	rel, err := comm.Build(g, p)
	if err != nil {
		return err
	}
	fmt.Printf("relation: %d remote vertex requirements\n", rel.TotalRemoteVertices())

	bytesPerVertex := int64(ds.FeatureDim) * 4
	var plan *core.Plan
	switch planner {
	case "spst", "spst-noforward":
		opts := core.SPSTOptions{
			Seed: seed, ChunkSize: cfg.chunk, Workers: cfg.workers, BatchSize: cfg.batch,
			DisableForwarding: planner == "spst-noforward"}
		var state *core.State
		if cfg.cacheDir != "" {
			cache := core.NewPlanCache(cfg.cacheDir)
			plan, state, err = cache.PlanSPST(rel, topo, bytesPerVertex, opts)
			if err != nil {
				return err
			}
			hits, misses := cache.Stats()
			if hits > 0 {
				fmt.Printf("plan cache: hit (key %.16s..., dir %s)\n",
					core.CacheKey(rel, topo, bytesPerVertex, opts), cfg.cacheDir)
			} else {
				fmt.Printf("plan cache: miss, %d plan stored in %s\n", misses, cfg.cacheDir)
			}
		} else {
			plan, state, err = core.PlanSPST(rel, topo, bytesPerVertex, opts)
			if err != nil {
				return err
			}
		}
		fmt.Printf("plan: %s, %d stages, %.0f KB moved, modeled time %.3f ms\n",
			plan.Algorithm, plan.NumStages(), float64(plan.TotalBytes())/1e3, state.Cost()*1e3)
	case "p2p":
		plan = baselines.PlanP2P(rel, bytesPerVertex)
		m, err := core.NewModel(topo)
		if err != nil {
			return err
		}
		fmt.Printf("plan: p2p, %d stages, %.0f KB moved, modeled time %.3f ms\n",
			plan.NumStages(), float64(plan.TotalBytes())/1e3, core.CostOfPlan(m, plan)*1e3)
	default:
		return fmt.Errorf("unknown planner %q", planner)
	}
	if err := plan.Validate(rel); err != nil {
		return fmt.Errorf("plan failed validation: %w", err)
	}

	ps := plan.ComputeStats(rel.Owner)
	fmt.Printf("plan stats: %d transfers, %d vertex sends (%d relayed), max fanout %d, tables %d B\n",
		ps.Transfers, ps.VertexSends, ps.RelayedSends, ps.MaxFanoutPerGPU, ps.TableBytes)

	net, err := simnet.New(topo, simnet.DefaultConfig(seed))
	if err != nil {
		return err
	}
	res, trace, err := net.RunPlanTraced(plan)
	if err != nil {
		return err
	}
	fmt.Printf("simulated allgather: %.3f ms over %d flows (NVLink %.3f ms, others %.3f ms)\n",
		res.Time*1e3, res.Flows, res.NVLinkTime*1e3, res.OtherTime*1e3)
	if gantt {
		fmt.Print(trace.Gantt(60))
	}
	for _, f := range trace.SlowestFlows(3) {
		fmt.Printf("  straggler: stage %d gpu%d->gpu%d, %d B, finished at %.3f ms\n",
			f.Stage, f.Src, f.Dst, f.Bytes, f.End*1e3)
	}
	if planOut != "" {
		f, err := os.Create(planOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := plan.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("plan written to %s\n", planOut)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", traceOut)
	}

	// Baseline comparison.
	p2p := baselines.PlanP2P(rel, bytesPerVertex)
	p2pRes, err := net.RunPlan(p2p)
	if err != nil {
		return err
	}
	sp, err := baselines.PlanSwap(rel, topo, bytesPerVertex)
	if err != nil {
		return err
	}
	swapRes, err := net.RunSwap(sp)
	if err != nil {
		return err
	}
	fmt.Printf("baselines: p2p %.3f ms, swap %.3f ms\n", p2pRes.Time*1e3, swapRes.Time*1e3)

	if verbose {
		for si, st := range plan.Stages {
			fmt.Printf("stage %d: %d transfers\n", si+1, len(st))
			for _, tr := range st {
				fmt.Printf("  gpu%d -> gpu%d: %d vertices\n", tr.Src, tr.Dst, len(tr.Vertices))
			}
		}
	}
	return nil
}
