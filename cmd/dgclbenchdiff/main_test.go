package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRuns(t *testing.T, baselineNs, currentNs float64) string {
	t.Helper()
	rec := record{Runs: []run{
		{Label: "baseline", Results: []result{
			{Name: "BenchmarkEpoch/k8", Iters: 100, NsPerOp: baselineNs},
			{Name: "BenchmarkOnlyInBaseline", Iters: 100, NsPerOp: 10},
		}},
		{Label: "current", Results: []result{
			{Name: "BenchmarkEpoch/k8", Iters: 100, NsPerOp: currentNs},
			{Name: "BenchmarkOnlyInCurrent", Iters: 100, NsPerOp: 99999},
		}},
	}}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFailOverPassesWithinThreshold(t *testing.T) {
	path := writeRuns(t, 1000, 1200) // +20%
	if err := mainErr("", "current", "baseline,current", 25, []string{path}); err != nil {
		t.Fatalf("20%% regression under a 25%% gate: %v", err)
	}
}

func TestFailOverRejectsRegression(t *testing.T) {
	path := writeRuns(t, 1000, 1300) // +30%
	err := mainErr("", "current", "baseline,current", 25, []string{path})
	if err == nil {
		t.Fatal("30% regression passed a 25% gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkEpoch/k8") {
		t.Fatalf("error does not name the offender: %v", err)
	}
}

func TestFailOverZeroOnlyReports(t *testing.T) {
	path := writeRuns(t, 1000, 5000)
	if err := mainErr("", "current", "baseline,current", 0, []string{path}); err != nil {
		t.Fatalf("-fail-over 0 must report only: %v", err)
	}
}

func TestFailOverIgnoresUnsharedBenchmarks(t *testing.T) {
	// Benchmarks present in only one run (added or removed) never trip the
	// gate, however extreme their numbers.
	path := writeRuns(t, 1000, 1000)
	if err := mainErr("", "current", "baseline,current", 1, []string{path}); err != nil {
		t.Fatalf("unshared benchmarks tripped the gate: %v", err)
	}
}
