// Command dgclbenchdiff records and compares Go benchmark results, the
// trend-tracking half of the bench-smoke tier. It understands two inputs:
// raw `go test -json` streams (what bench-smoke produces) and recorded runs
// files like BENCH_runtime.json (labeled sets of benchmark results).
//
//	go test -bench ... -json ./internal/runtime/ \
//	    | dgclbenchdiff -record BENCH_runtime.json -label current
//	dgclbenchdiff -runs baseline,current BENCH_runtime.json   # delta table
//	dgclbenchdiff old.json new.json                           # two streams
//
// The delta table matches benchmarks by name and prints ns/op, B/op and
// allocs/op side by side with improvement factors; benchmarks present in
// only one run are listed without a delta. Exit status is 0 on success, 1
// on usage or parse errors. By default the tool only reports (the
// allocation budgets live in the test suite); with -fail-over PCT a
// comparison additionally exits nonzero when any shared benchmark's ns/op
// regressed by more than PCT percent, so bench-smoke can gate CI:
//
//	dgclbenchdiff -runs baseline,current -fail-over 25 BENCH_runtime.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"text/tabwriter"
)

// result is one benchmark line.
type result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_op"`
	BPerOp   int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// run is a labeled set of results.
type run struct {
	Label   string   `json:"label"`
	Results []result `json:"results"`
}

// record is the on-disk runs file (BENCH_runtime.json): multiple labeled
// runs over the same benchmark set, typically "baseline" (pre-change) and
// "current" (refreshed by bench-smoke).
type record struct {
	Note string `json:"note,omitempty"`
	Runs []run  `json:"runs"`
}

func main() {
	recordPath := flag.String("record", "", "upsert parsed results into this runs file (reads a stream from stdin or the file argument)")
	label := flag.String("label", "current", "run label used with -record")
	runsFlag := flag.String("runs", "", "two comma-separated run labels to compare within one runs file")
	failOver := flag.Float64("fail-over", 0, "exit nonzero when a shared benchmark's ns/op regresses by more than this percentage (0 = report only)")
	flag.Parse()
	if err := mainErr(*recordPath, *label, *runsFlag, *failOver, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dgclbenchdiff:", err)
		os.Exit(1)
	}
}

func mainErr(recordPath, label, runsFlag string, failOver float64, args []string) error {
	if recordPath != "" {
		return recordRun(recordPath, label, args)
	}
	if runsFlag != "" {
		if len(args) != 1 {
			return fmt.Errorf("-runs wants exactly one runs file, got %d arguments", len(args))
		}
		labels := strings.Split(runsFlag, ",")
		if len(labels) != 2 {
			return fmt.Errorf("-runs wants two comma-separated labels, got %q", runsFlag)
		}
		rec, err := readRecord(args[0])
		if err != nil {
			return err
		}
		old, err := findRun(rec, strings.TrimSpace(labels[0]))
		if err != nil {
			return fmt.Errorf("%s: %w", args[0], err)
		}
		cur, err := findRun(rec, strings.TrimSpace(labels[1]))
		if err != nil {
			return fmt.Errorf("%s: %w", args[0], err)
		}
		printDelta(old, cur)
		return checkRegressions(old, cur, failOver)
	}
	if len(args) != 2 {
		return fmt.Errorf("usage: dgclbenchdiff OLD.json NEW.json | dgclbenchdiff -runs A,B FILE.json | ... -record FILE.json -label L")
	}
	old, err := readAnyRun(args[0])
	if err != nil {
		return err
	}
	cur, err := readAnyRun(args[1])
	if err != nil {
		return err
	}
	printDelta(old, cur)
	return checkRegressions(old, cur, failOver)
}

// checkRegressions enforces -fail-over: every benchmark present in both runs
// may regress its ns/op by at most pct percent. pct <= 0 means report-only.
func checkRegressions(old, cur run, pct float64) error {
	if pct <= 0 {
		return nil
	}
	curIdx := make(map[string]result, len(cur.Results))
	for _, r := range cur.Results {
		curIdx[r.Name] = r
	}
	var bad []string
	for _, o := range old.Results {
		c, ok := curIdx[o.Name]
		if !ok || o.NsPerOp == 0 {
			continue
		}
		if c.NsPerOp > o.NsPerOp*(1+pct/100) {
			bad = append(bad, fmt.Sprintf("%s %.0f -> %.0f ns/op (+%.1f%%)",
				o.Name, o.NsPerOp, c.NsPerOp, (c.NsPerOp/o.NsPerOp-1)*100))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past %.0f%%: %s", len(bad), pct, strings.Join(bad, "; "))
	}
	return nil
}

// recordRun parses a benchmark stream (stdin, or a file argument) and
// upserts it as a labeled run in the runs file, preserving other labels.
func recordRun(path, label string, args []string) error {
	in := os.Stdin
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	} else if len(args) > 1 {
		return fmt.Errorf("-record wants at most one stream file, got %d arguments", len(args))
	}
	results, err := parseStream(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}
	rec := &record{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, rec); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	replaced := false
	for i := range rec.Runs {
		if rec.Runs[i].Label == label {
			rec.Runs[i].Results = results
			replaced = true
		}
	}
	if !replaced {
		rec.Runs = append(rec.Runs, run{Label: label, Results: results})
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded %d benchmarks as %q in %s\n", len(results), label, path)
	return nil
}

func readRecord(path string) (*record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec := &record{}
	if err := json.Unmarshal(data, rec); err != nil || len(rec.Runs) == 0 {
		return nil, fmt.Errorf("%s: not a runs file (want {\"runs\": [...]})", path)
	}
	return rec, nil
}

func findRun(rec *record, label string) (run, error) {
	for _, r := range rec.Runs {
		if r.Label == label {
			return r, nil
		}
	}
	return run{}, fmt.Errorf("no run labeled %q", label)
}

// readAnyRun loads a file as either a runs file (using its LAST run, the
// most recently recorded) or a raw benchmark stream.
func readAnyRun(path string) (run, error) {
	if rec, err := readRecord(path); err == nil {
		return rec.Runs[len(rec.Runs)-1], nil
	}
	f, err := os.Open(path)
	if err != nil {
		return run{}, err
	}
	defer f.Close()
	results, err := parseStream(f)
	if err != nil {
		return run{}, err
	}
	if len(results) == 0 {
		return run{}, fmt.Errorf("%s: no benchmark results", path)
	}
	return run{Label: path, Results: results}, nil
}

// benchLine matches one `go test -bench` result line, with the optional
// -N GOMAXPROCS suffix stripped off the name and optional B/op and
// allocs/op columns (present when the benchmark calls ReportAllocs).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseStream extracts benchmark result lines from either a `go test -json`
// event stream or plain `go test -bench` text. JSON events split one
// logical result across several Output fragments, so fragments are
// concatenated before line scanning.
func parseStream(f *os.File) ([]result, error) {
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var ev struct{ Output string }
		if strings.HasPrefix(strings.TrimSpace(line), "{") && json.Unmarshal([]byte(line), &ev) == nil {
			text.WriteString(ev.Output)
		} else {
			text.WriteString(line)
			text.WriteString("\n")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var results []result
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bop, aop int64
		if m[4] != "" {
			bop, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			aop, _ = strconv.ParseInt(m[5], 10, 64)
		}
		results = append(results, result{Name: m[1], Iters: iters, NsPerOp: ns, BPerOp: bop, AllocsOp: aop})
	}
	return results, nil
}

// printDelta prints the side-by-side comparison, in the old run's order
// with new-only benchmarks appended.
func printDelta(old, cur run) {
	curIdx := make(map[string]result, len(cur.Results))
	for _, r := range cur.Results {
		curIdx[r.Name] = r
	}
	oldSeen := make(map[string]bool, len(old.Results))
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "benchmark\tns/op %s\tns/op %s\tspeedup\tallocs %s\tallocs %s\tfactor\t\n",
		old.Label, cur.Label, old.Label, cur.Label)
	for _, o := range old.Results {
		oldSeen[o.Name] = true
		c, ok := curIdx[o.Name]
		if !ok {
			fmt.Fprintf(w, "%s\t%.0f\t-\t-\t%d\t-\t-\t\n", o.Name, o.NsPerOp, o.AllocsOp)
			continue
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%s\t%d\t%d\t%s\t\n",
			o.Name, o.NsPerOp, c.NsPerOp, factor(o.NsPerOp, c.NsPerOp),
			o.AllocsOp, c.AllocsOp, factor(float64(o.AllocsOp), float64(c.AllocsOp)))
	}
	for _, c := range cur.Results {
		if !oldSeen[c.Name] {
			fmt.Fprintf(w, "%s\t-\t%.0f\t-\t-\t%d\t-\t\n", c.Name, c.NsPerOp, c.AllocsOp)
		}
	}
	w.Flush()
}

// factor formats old/new as an improvement multiple ("2.75x"; "0.50x" is a
// regression), or "-" when either side is zero.
func factor(before, after float64) string {
	if before == 0 || after == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", before/after)
}
