// Command dgclserve is the online-inference frontend: it builds a training
// run from the same deterministic spec as dgcltrain/dgclworker, optionally
// pretrains for a few epochs, and then serves vertex embeddings over TCP —
// batched (latency-deadline or occupancy cutoff, whichever first), cached
// (partition-aware LRU keyed by (vertex, model-version)), admission
// controlled (token bucket + queue-depth shed), and failover-capable (a
// device death mid-serve degrades onto the survivors and keeps answering).
//
//	dgclserve -listen :7100 -dataset Web-Google -gpus 4 -train 3
//	dgclloadgen -connect host:7100 -qps 200 -requests 5000
//
// SIGINT/SIGTERM close the listener, drain in-flight batches, and print the
// final serve stats.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dgcl"
	"dgcl/internal/serve"
	"dgcl/internal/worker"
)

func main() {
	listen := flag.String("listen", ":7100", "address to serve DGS1 requests on")
	dataset := flag.String("dataset", "Web-Google", "dataset from Table 4")
	model := flag.String("model", "GCN", "GCN | CommNet | GIN | GraphSAGE | GAT")
	gpus := flag.Int("gpus", 4, "GPU count (1-8 or 16)")
	scale := flag.Int("scale", 256, "dataset downscale factor")
	featureDim := flag.Int("feature-dim", 16, "input feature width (0 = dataset native)")
	hidden := flag.Int("hidden", 8, "hidden layer width")
	layers := flag.Int("layers", 2, "GNN depth")
	seed := flag.Int64("seed", 1, "random seed")
	train := flag.Int("train", 1, "pretraining epochs before serving")
	lr := flag.Float64("lr", 0.01, "pretraining learning rate")

	maxBatch := flag.Int("max-batch", 32, "occupancy cutoff: requests per batched forward")
	batchDelay := flag.Duration("batch-delay", 2*time.Millisecond, "latency cutoff: max wait before a partial batch flushes")
	queueDepth := flag.Int("queue", 256, "queued-miss shed threshold")
	cacheEntries := flag.Int("cache", 4096, "embedding cache entries (negative disables)")
	rate := flag.Float64("rate", 0, "admitted queries per second (0 = unlimited)")
	burst := flag.Int("burst", 64, "token-bucket burst")
	flag.Parse()

	if err := run(*listen, worker.Spec{
		Dataset:    *dataset,
		Model:      *model,
		GPUs:       *gpus,
		Scale:      *scale,
		FeatureDim: *featureDim,
		Hidden:     *hidden,
		Layers:     *layers,
		Seed:       *seed,
	}, *train, *lr, serve.Config{
		MaxBatch:     *maxBatch,
		BatchDelay:   *batchDelay,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		RateLimit:    *rate,
		RateBurst:    *burst,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "dgclserve:", err)
		os.Exit(1)
	}
}

func run(listen string, spec worker.Spec, epochs int, lr float64, cfg serve.Config) error {
	sys, model, features, targets, err := worker.Build(spec)
	if err != nil {
		return err
	}
	if epochs > 0 {
		fmt.Printf("pretraining %d epochs on %s (k=%d)...\n", epochs, spec.Dataset, spec.GPUs)
		res, err := sys.Train(context.Background(), model, features, targets, dgcl.TrainOptions{
			Epochs:       epochs,
			NewOptimizer: func() dgcl.Optimizer { return dgcl.NewSGD(float32(lr), 0) },
		})
		if err != nil {
			return fmt.Errorf("pretraining: %w", err)
		}
		model = res.Model
		fmt.Printf("pretrained: final loss %.6f\n", res.Losses[len(res.Losses)-1])
	}

	srv, err := serve.New(sys, model, features, cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("serving %d vertex embeddings on %s (max-batch %d, delay %v, cache %d)\n",
		srv.NumVertices(), ln.Addr(), cfg.MaxBatch, cfg.BatchDelay, cfg.CacheEntries)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-sig:
			ln.Close()
		case <-done:
		}
	}()

	if err := srv.ServeListener(ln); err != nil {
		return err
	}
	srv.Close()
	printStats(srv.Stats())
	return nil
}

func printStats(st serve.Stats) {
	fmt.Printf("served %d requests: %d hits, %d misses, %d shed (rate %d, queue %d), %d errors\n",
		st.Requests, st.Hits, st.Misses, st.ShedRate+st.ShedQueue, st.ShedRate, st.ShedQueue, st.Errors)
	fmt.Printf("flushes %d (full %d, deadline %d, drain %d), avg batch %.1f, max %d\n",
		st.Flushes, st.FlushFull, st.FlushDeadline, st.FlushDrain, st.AvgBatch, st.MaxBatch)
	fmt.Printf("latency p50 %v p99 %v p999 %v (hit p99 %v, miss p99 %v)\n",
		st.P50, st.P99, st.P999, st.HitP99, st.MissP99)
	for _, t := range st.Transitions {
		fmt.Printf("failover: lost %v, serving from %v (model version %d)\n", t.Down, t.Survivors, t.Version)
	}
}
