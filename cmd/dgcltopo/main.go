// Command dgcltopo inspects communication fabrics: it renders the GPU
// connection matrix (nvidia-smi topo -m style), the node/link inventory,
// and the measured point-to-point bandwidth of every GPU pair on the
// simulated fabric.
//
//	dgcltopo -fabric dgx1
//	dgcltopo -fabric 2xdgx1 -bandwidth
//	dgcltopo -spec myfabric.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"dgcl/internal/simnet"
	"dgcl/internal/topology"
)

func main() {
	fabric := flag.String("fabric", "dgx1", "dgx1 | dgx2 | 2xdgx1 | pcie8 | eth16")
	spec := flag.String("spec", "", "path to a topology spec file (overrides -fabric)")
	bandwidth := flag.Bool("bandwidth", false, "measure pairwise bandwidth on the simulated fabric")
	flag.Parse()

	topo, err := pick(*fabric, *spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgcltopo:", err)
		os.Exit(1)
	}
	fmt.Println(topo.Summary())
	fmt.Println()
	fmt.Print(topo.Matrix())
	if *bandwidth {
		if err := measure(topo); err != nil {
			fmt.Fprintln(os.Stderr, "dgcltopo:", err)
			os.Exit(1)
		}
	}
}

func pick(fabric, spec string) (*topology.Topology, error) {
	if spec != "" {
		f, err := os.Open(spec)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topology.ParseSpec(spec, f)
	}
	switch fabric {
	case "dgx1":
		return topology.DGX1(), nil
	case "dgx2":
		return topology.DGX2(), nil
	case "2xdgx1":
		return topology.TwoMachineDGX1(), nil
	case "pcie8":
		return topology.PCIeOnly8(), nil
	case "eth16":
		return topology.TwoMachineEthernet(), nil
	}
	return nil, fmt.Errorf("unknown fabric %q", fabric)
}

func measure(topo *topology.Topology) error {
	net, err := simnet.New(topo, simnet.Config{Seed: 1, ContentionExponent: 1})
	if err != nil {
		return err
	}
	n := topo.NumGPUs()
	fmt.Println("\npairwise bandwidth (GB/s, lone flow):")
	fmt.Printf("%-6s", "")
	for j := 0; j < n; j++ {
		fmt.Printf("%-7s", fmt.Sprintf("GPU%d", j))
	}
	fmt.Println()
	for i := 0; i < n; i++ {
		fmt.Printf("%-6s", fmt.Sprintf("GPU%d", i))
		for j := 0; j < n; j++ {
			if i == j {
				fmt.Printf("%-7s", "-")
				continue
			}
			bw, err := net.MeasureFlows([][2]int{{i, j}}, 1<<26)
			if err != nil {
				return err
			}
			fmt.Printf("%-7.1f", bw[0]/1e9)
		}
		fmt.Println()
	}
	return nil
}
