// Command dgclpart partitions a dataset graph and reports quality metrics
// for the multilevel partitioner against the hash and range baselines,
// including the hierarchical two-level mode used for multi-machine
// topologies.
//
//	dgclpart -dataset Web-Google -k 8
//	dgclpart -dataset Reddit -k 16 -machines 2
package main

import (
	"flag"
	"fmt"
	"os"

	"dgcl/internal/graph"
	"dgcl/internal/partition"
)

func main() {
	dataset := flag.String("dataset", "Web-Google", "dataset name from Table 4")
	k := flag.Int("k", 8, "number of parts")
	machines := flag.Int("machines", 1, "machines for hierarchical partitioning")
	scale := flag.Int("scale", 64, "dataset downscale factor")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if err := run(*dataset, *k, *machines, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dgclpart:", err)
		os.Exit(1)
	}
}

func run(dataset string, k, machines, scale int, seed int64) error {
	ds, err := graph.DatasetByName(dataset)
	if err != nil {
		return err
	}
	g := ds.Generate(scale, seed)
	stats := g.ComputeStats()
	fmt.Printf("graph: %s at 1/%d scale: %d vertices, %d edges\n", ds.Name, scale, stats.Vertices, stats.Edges)

	report := func(name string, p *partition.Partition) {
		q := partition.Evaluate(g, p)
		fmt.Printf("%-12s cut %8d (%5.1f%%)  comm volume %8d  balance %.3f\n",
			name, q.EdgeCut, q.CutPercent, q.CommVolume, q.Balance)
	}
	if machines > 1 {
		per := make([]int, machines)
		for i := 0; i < k; i++ {
			per[i%machines]++
		}
		hp, err := partition.Hierarchical(g, per, partition.Options{Seed: seed})
		if err != nil {
			return err
		}
		report("hierarchical", hp)
	}
	ml, err := partition.KWay(g, k, partition.Options{Seed: seed})
	if err != nil {
		return err
	}
	report("multilevel", ml)
	report("streaming", partition.Streaming(g, k, seed))
	report("hash", partition.Hash(g, k))
	report("range", partition.Range(g, k))
	return nil
}
