// Command dgclworker hosts one process's share of a multi-process training
// run. It joins the coordinator (a dgcltrain -listen process), receives its
// node id, client ranks, and the cluster's address table, meshes with the
// other workers over TCP, trains its ranks, and reports the result back.
// Every process computes the same losses and final weights bit for bit.
//
//	dgcltrain -listen :7000 -workers 2 -dataset Web-Google -gpus 4   # coordinator
//	dgclworker -connect host:7000                                    # on each machine
//
// On a real cluster pass -data host:0 (or host:port) so peers dial a
// routable address instead of loopback.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"dgcl/internal/worker"
)

func main() {
	connect := flag.String("connect", "", "coordinator address (host:port), required")
	data := flag.String("data", "127.0.0.1:0", "bind/advertise address for the peer data listener")
	timeout := flag.Duration("timeout", 15*time.Minute, "overall deadline for the run")
	flag.Parse()
	if *connect == "" {
		fmt.Fprintln(os.Stderr, "dgclworker: -connect is required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	report, err := worker.RunWorker(ctx, *connect, *data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgclworker:", err)
		os.Exit(1)
	}
	for e, loss := range report.Losses {
		fmt.Printf("epoch %d: loss %.6f\n", e, loss)
	}
	fmt.Printf("final model digest %#x\n", report.ModelSum)
}
