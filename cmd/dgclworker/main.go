// Command dgclworker hosts one process's share of a supervised multi-process
// training run. It joins the coordinator (a dgcltrain -listen process),
// receives its node id, client ranks, and the generation's address table,
// meshes with the other workers over TCP, trains its ranks under heartbeats,
// and reports the result back. Every process computes the same losses and
// final weights bit for bit.
//
//	dgcltrain -listen :7000 -workers 2 -dataset Web-Google -gpus 4   # coordinator
//	dgclworker -connect host:7000 -state /var/lib/dgcl/w0            # on each machine
//
// A worker killed mid-run can be restarted with -rejoin: it re-dials the
// coordinator with bounded backoff, presents the run identity persisted
// under -state, reclaims its slot, and catches up from the newest checkpoint
// epoch every member holds. SIGTERM/SIGINT drain gracefully: the worker
// finishes its in-flight epoch, flushes a checkpoint, tells the coordinator
// it is leaving, and exits 0.
//
// On a real cluster pass -data host:0 (or host:port) so peers dial a
// routable address instead of loopback.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dgcl/internal/worker"
)

func main() {
	connect := flag.String("connect", "", "coordinator address (host:port), required")
	data := flag.String("data", "127.0.0.1:0", "bind/advertise address for the peer data listener")
	state := flag.String("state", "", "directory for durable worker state (membership identity + checkpoints)")
	rejoin := flag.Bool("rejoin", false, "rejoin the run persisted under -state instead of joining fresh")
	ckptEvery := flag.Int("checkpoint-every", 1, "checkpoint cadence in epochs")
	dialInitial := flag.Duration("dial-backoff", 100*time.Millisecond, "initial coordinator dial backoff")
	dialMax := flag.Duration("dial-backoff-max", 5*time.Second, "backoff ceiling")
	dialTries := flag.Int("dial-tries", 1, "coordinator dial attempts before giving up")
	timeout := flag.Duration("timeout", 15*time.Minute, "overall deadline for the run")
	overlap := flag.Bool("overlap", true, "pipelined chunked execution for this process's ranks (bit-identical either way)")
	overlapWindow := flag.Int("overlap-window", 0, "stages the send pipeline may run ahead of aggregation (0 = default)")
	wireWindow := flag.Int("wire-window", 0, "per-link wire credit window in frames (0 = spec value, else default)")
	flag.Parse()
	if *connect == "" {
		fmt.Fprintln(os.Stderr, "dgclworker: -connect is required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// SIGTERM/SIGINT request a graceful drain, polled at epoch boundaries. A
	// second signal kills the process the usual way (the handler is reset
	// once the drain is requested).
	drain := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		select {
		case <-sigs:
			signal.Stop(sigs)
			close(drain)
		case <-ctx.Done():
		}
	}()
	defer signal.Stop(sigs)

	report, err := worker.Run(ctx, worker.WorkerOptions{
		Coordinator:     *connect,
		DataBind:        *data,
		StateDir:        *state,
		CheckpointEvery: *ckptEvery,
		Rejoin:          *rejoin,
		Backoff:         worker.BackoffConfig{Initial: *dialInitial, Max: *dialMax, Tries: *dialTries},
		Drain:           drain,
		OverlapOff:      !*overlap,
		OverlapWindow:   *overlapWindow,
		WireWindow:      *wireWindow,
	})
	if errors.Is(err, worker.ErrDrained) {
		fmt.Println("drained")
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgclworker:", err)
		os.Exit(1)
	}
	for e, loss := range report.Losses {
		fmt.Printf("epoch %d: loss %.6f\n", e, loss)
	}
	fmt.Printf("final model digest %#x\n", report.ModelSum)
}
