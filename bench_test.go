package dgcl

// One testing.B benchmark per table and figure of the paper's evaluation
// (§7). Each bench regenerates its experiment through the shared harness in
// internal/experiments at a reduced graph scale; each report is printed
// once per run (b.Logf), so `go test -bench .` leaves the reproduced tables
// in its output. cmd/dgclbench renders the same reports standalone at any
// scale.

import (
	"sync"
	"testing"

	"dgcl/internal/experiments"
)

// benchCfg keeps bench iterations fast while exercising the full pipeline.
var benchCfg = experiments.Config{Scale: 256, Seed: 1, Layers: 2}

// printOnce renders each experiment's report a single time per bench run.
var printOnce sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := printOnce.LoadOrStore(id, true); !loaded {
			b.Logf("\n%s", r.String())
		}
	}
}

// BenchmarkTable1LinkSpeeds reproduces Table 1 (link bandwidths).
func BenchmarkTable1LinkSpeeds(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFigure2P2PProfile reproduces Figure 2 (P2P comm overhead vs
// compute across GPU counts).
func BenchmarkFigure2P2PProfile(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkTable2P2PLinkBreakdown reproduces Table 2 (P2P time on NVLink vs
// other links).
func BenchmarkTable2P2PLinkBreakdown(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3QPIContention reproduces Table 3 (QPI bandwidth under
// concurrent flows).
func BenchmarkTable3QPIContention(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4DatasetStats reports the synthesized dataset statistics
// against Table 4.
func BenchmarkTable4DatasetStats(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFigure4ReplicationFactor reproduces Figure 4 (replication factor
// by hops and GPU count).
func BenchmarkFigure4ReplicationFactor(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure7MainComparison reproduces Figure 7 (per-epoch and comm
// time: 3 models x 4 datasets x 4 schemes, 8 GPUs).
func BenchmarkFigure7MainComparison(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFigure8GCNRedditSweep reproduces Figure 8 (GCN on Reddit, 1-16
// GPUs).
func BenchmarkFigure8GCNRedditSweep(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFigure9GINWebGoogleSweep reproduces Figure 9 (GIN on Web-Google,
// 1-16 GPUs).
func BenchmarkFigure9GINWebGoogleSweep(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkTable5DGCLR reproduces Table 5 (DGCL vs DGCL-R on 16 GPUs).
func BenchmarkTable5DGCLR(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6NoNVLink reproduces Table 6 (graphAllgather on the
// PCIe-only server).
func BenchmarkTable6NoNVLink(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkFigure10CostModel reproduces Figure 10 (cost model vs actual time
// linearity).
func BenchmarkFigure10CostModel(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkTable7LinkBalance reproduces Table 7 (DGCL time breakdown across
// link classes).
func BenchmarkTable7LinkBalance(b *testing.B) { runExperiment(b, "table7") }

// BenchmarkTable8SPSTRuntime reproduces Table 8 (SPST planning wall time).
func BenchmarkTable8SPSTRuntime(b *testing.B) { runExperiment(b, "table8") }

// BenchmarkFigure11TableMemory reproduces Figure 11 (send/receive table
// memory ratio).
func BenchmarkFigure11TableMemory(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkTable9NonAtomic reproduces Table 9 (atomic vs non-atomic backward
// allgather).
func BenchmarkTable9NonAtomic(b *testing.B) { runExperiment(b, "table9") }

// BenchmarkAblationsReport renders the full planner design-choice study
// (see also the individual BenchmarkAblation* benches).
func BenchmarkAblationsReport(b *testing.B) { runExperiment(b, "ablations") }

// BenchmarkScalingBeyondPaper projects GCN/Reddit scaling onto 1-4
// IB-switched machines (8-32 GPUs).
func BenchmarkScalingBeyondPaper(b *testing.B) { runExperiment(b, "scaling") }

// BenchmarkOverlapStudy bounds the gain of NeuGraph-style transfer-compute
// pipelining on top of DGCL's plans.
func BenchmarkOverlapStudy(b *testing.B) { runExperiment(b, "overlap") }
