module dgcl

go 1.22
