package dgcl

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"dgcl/internal/checkpoint"
	"dgcl/internal/comm"
	"dgcl/internal/gnn"
	"dgcl/internal/partition"
	"dgcl/internal/runtime"
	"dgcl/internal/topology"
)

// Crash-tolerant training (DESIGN.md §10). DGCL's separation of the
// communication relation from the physical topology makes recovery cheap:
// when a device fails fail-stop, its vertices are reassigned to the
// least-loaded survivors, the SPST planner replans over the degraded fabric
// (hitting the plan cache on repeat failures), and training resumes from the
// newest intact checkpoint. A resume with no crash is bit-identical to an
// uninterrupted run; a crashed-and-recovered run converges to the same loss
// band over the surviving replicas.

// AliveDevices returns the original device ids still participating,
// ascending (all devices before any Degrade).
func (s *System) AliveDevices() []int {
	if s.alive != nil {
		return append([]int(nil), s.alive...)
	}
	out := make([]int, s.topo.NumGPUs())
	for i := range out {
		out[i] = i
	}
	return out
}

// Degrade removes the given devices (original ids) from the system:
// survivors are renumbered compactly, the dead devices' vertices are
// reassigned to the least-loaded survivors (deterministically: ascending
// vertex id, ties to the lower device index), the communication relation is
// rebuilt and the planner re-run over the degraded fabric, and the recorded
// run options — including the crash/health trackers, so dead devices stay
// dead — are reapplied to the rebuilt cluster. Devices already removed are
// ignored; unknown ids are an error.
func (s *System) Degrade(down []int) error {
	if err := s.ready(); err != nil {
		return err
	}
	alive := s.AliveDevices()
	pos := make(map[int]int, len(alive)) // original id -> current compact index
	for i, id := range alive {
		pos[id] = i
	}
	deadCompact := make(map[int]bool)
	for _, id := range down {
		if id < 0 || id >= s.topo.NumGPUs() {
			return fmt.Errorf("dgcl: cannot degrade unknown device %d", id)
		}
		if ci, ok := pos[id]; ok {
			deadCompact[ci] = true
		}
	}
	if len(deadCompact) == 0 {
		return nil
	}
	if len(deadCompact) >= len(alive) {
		return fmt.Errorf("dgcl: removing %v leaves no survivors", down)
	}
	// Survivor renumbering: old compact index -> new compact index.
	newIndex := make([]int, len(alive))
	var newAlive []int
	var compactDown []int
	for ci, id := range alive {
		if deadCompact[ci] {
			newIndex[ci] = -1
			compactDown = append(compactDown, ci)
			continue
		}
		newIndex[ci] = len(newAlive)
		newAlive = append(newAlive, id)
	}
	dtopo, err := topology.Without(s.curTopo(), compactDown)
	if err != nil {
		return err
	}
	// Reassign: survivors keep their vertices; each dead device's vertices
	// go to the least-loaded survivor at the moment of assignment.
	newK := len(newAlive)
	loads := make([]int, newK)
	oldAssign := s.part.Assign
	for _, a := range oldAssign {
		if ni := newIndex[a]; ni >= 0 {
			loads[ni]++
		}
	}
	leastLoaded := func() int {
		best := 0
		for i := 1; i < newK; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		return best
	}
	newAssign := make([]int32, len(oldAssign))
	for v, a := range oldAssign {
		if ni := newIndex[a]; ni >= 0 {
			newAssign[v] = int32(ni)
			continue
		}
		t := leastLoaded()
		newAssign[v] = int32(t)
		loads[t]++
	}
	p := &partition.Partition{K: newK, Assign: newAssign}
	rel, err := comm.Build(s.g, p)
	if err != nil {
		return err
	}
	plan, err := s.buildPlan(rel, dtopo, s.featureDim)
	if err != nil {
		return err
	}
	locals := comm.BuildLocalGraphs(s.g, rel)
	clu, err := runtime.NewCluster(rel, locals, plan)
	if err != nil {
		return err
	}
	clu.NonAtomic = !s.opts.AtomicBackward
	s.part, s.rel, s.locals, s.plan, s.clu = p, rel, locals, plan, clu
	s.dtopo, s.alive = dtopo, newAlive
	// Worker mode survives a degrade: this process's rank restriction is
	// renumbered through the same survivor mapping as the cluster (dead ranks
	// drop out), so clu.Ranks never dangles outside the new [0, K'). The
	// supervised membership layer (internal/worker) still re-meshes and calls
	// SetWorkerMode with the fresh wire node afterwards.
	if s.ranks != nil {
		remapped := make([]int, 0, len(s.ranks))
		for _, r := range s.ranks {
			if r >= 0 && r < len(newIndex) && newIndex[r] >= 0 {
				remapped = append(remapped, newIndex[r])
			}
		}
		s.ranks = remapped
	}
	s.applyRunOptions()
	return nil
}

// pendingDown returns the devices the trackers judged dead that are still in
// the active cluster — the set Degrade must remove.
func (s *System) pendingDown() []int {
	if s.crash == nil {
		return nil
	}
	cur := make(map[int]bool)
	for _, id := range s.AliveDevices() {
		cur[id] = true
	}
	var out []int
	for _, d := range s.crash.DownDevices() {
		if cur[d] {
			out = append(out, d)
		}
	}
	return out
}

// TrainOptions configures the resilient training loop.
type TrainOptions struct {
	// Epochs is the target epoch count (required).
	Epochs int
	// NewOptimizer builds one optimizer per replica (and per rebuild after
	// recovery); every call must return an identically-configured optimizer.
	// Nil means plain SGD with lr 0.01.
	NewOptimizer func() Optimizer
	// CheckpointDir enables durable checkpoints in this directory; empty
	// disables checkpointing (recovery then continues from the in-memory
	// replica state).
	CheckpointDir string
	// CheckpointEvery writes a checkpoint each time this many epochs
	// complete (by absolute epoch number, so resumed and uninterrupted runs
	// checkpoint at the same boundaries). <=0 means every epoch.
	CheckpointEvery int
	// CheckpointKeep bounds retained generations (<=0 = checkpoint.DefaultKeep).
	CheckpointKeep int
	// Resume starts from the newest intact checkpoint in CheckpointDir when
	// one exists (a fresh start otherwise).
	Resume bool
	// EpochRetries bounds retries of one epoch on transient (non-device-down)
	// collective failures before giving up (<=0 means 2).
	EpochRetries int
	// MaxRecoveries bounds device-down recoveries before giving up (<=0
	// means the device count minus one — every device but the last may die).
	MaxRecoveries int
	// DownAfter tunes the failure detector's consecutive-strike threshold
	// (0 = default).
	DownAfter int
	// OnEpoch, when non-nil, observes every completed epoch.
	OnEpoch func(epoch int, loss float64)
	// OnRecovery, when non-nil, observes every completed recovery.
	OnRecovery func(RecoveryEvent)
}

// RecoveryEvent describes one completed crash recovery.
type RecoveryEvent struct {
	// FailedEpoch is the epoch whose collective detected the death.
	FailedEpoch int
	// Down lists the devices removed (original ids).
	Down []int
	// Survivors lists the devices continuing (original ids).
	Survivors []int
	// ResumedEpoch is where training restarted (the restored checkpoint's
	// epoch, or FailedEpoch when recovery continued from in-memory state).
	ResumedEpoch int
	// Generation is the checkpoint generation restored, -1 when recovery
	// used in-memory state.
	Generation int
}

// TrainResult reports a resilient training run.
type TrainResult struct {
	// Losses[e] is the global loss of epoch e as last executed (zero for
	// epochs before a resume's start). After a recovery onto fewer devices
	// the loss is summed over survivors only.
	Losses []float64
	// StartEpoch is where this process began (non-zero after Resume).
	StartEpoch int
	// Model is the final trained model (one replica; replicas are identical).
	Model *Model
	// Recoveries lists every crash recovery performed, in order.
	Recoveries []RecoveryEvent
	// Checkpoints counts checkpoints written by this run.
	Checkpoints int
}

// Train runs the resilient training loop: epochs with periodic durable
// checkpoints, transient-failure retries, and device-down recovery
// (degrade to survivors, replan, restore newest intact checkpoint,
// continue). model/features/targets are global; sharding follows the active
// partition and is redone on every recovery.
func (s *System) Train(ctx context.Context, model *Model, features, targets *Matrix, opts TrainOptions) (*TrainResult, error) {
	if err := s.ready(); err != nil {
		return nil, err
	}
	if opts.Epochs <= 0 {
		return nil, fmt.Errorf("dgcl: TrainOptions.Epochs must be >= 1, got %d", opts.Epochs)
	}
	newOpt := opts.NewOptimizer
	if newOpt == nil {
		newOpt = func() Optimizer { return gnn.NewSGD(0.01, 0) }
	}
	epochRetries := opts.EpochRetries
	if epochRetries <= 0 {
		epochRetries = 2
	}
	maxRecoveries := opts.MaxRecoveries
	if maxRecoveries <= 0 {
		maxRecoveries = s.topo.NumGPUs() - 1
	}
	s.ensureResilience(opts.DownAfter)
	s.applyRunOptions()

	var store *checkpoint.Store
	every := opts.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	if opts.CheckpointDir != "" {
		store = checkpoint.NewStore(opts.CheckpointDir)
		if opts.CheckpointKeep > 0 {
			store.Keep = opts.CheckpointKeep
		}
	}

	start := 0
	var optState []byte
	if opts.Resume && store != nil {
		snap, _, err := store.Load()
		switch {
		case err == nil:
			if snap.Seed != s.opts.Seed {
				return nil, fmt.Errorf("dgcl: checkpoint seed %d != system seed %d; resuming would break determinism",
					snap.Seed, s.opts.Seed)
			}
			if probe := newOpt(); probe.Name() != snap.OptName {
				return nil, fmt.Errorf("dgcl: checkpoint optimizer %q != configured %q", snap.OptName, probe.Name())
			}
			model, start, optState = snap.Model, snap.Epoch, snap.OptState
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// Fresh start.
		default:
			return nil, err
		}
	}

	result := &TrainResult{Losses: make([]float64, opts.Epochs), StartEpoch: start}
	tr, optimizers, err := s.buildTrainer(model, features, targets, newOpt, optState)
	if err != nil {
		return nil, err
	}
	if start >= opts.Epochs {
		result.Model = tr.Models[0].Clone()
		return result, nil
	}

	epoch, retries, recoveries := start, 0, 0
	for epoch < opts.Epochs {
		loss, err := tr.EpochAt(ctx, epoch)
		if err == nil {
			if err := tr.StepWith(optimizers); err != nil {
				return result, err
			}
			result.Losses[epoch] = loss
			if opts.OnEpoch != nil {
				opts.OnEpoch(epoch, loss)
			}
			s.fireEpochEnd(epoch, tr.Models[0])
			epoch++
			retries = 0
			if store != nil && (epoch%every == 0 || epoch == opts.Epochs) {
				if _, serr := s.saveCheckpoint(store, tr, optimizers[0], epoch); serr != nil {
					return result, serr
				}
				result.Checkpoints++
			}
			continue
		}
		if ctx.Err() != nil {
			return result, err
		}
		down := s.pendingDown()
		if len(down) == 0 {
			// Transient collective failure (lossy links beyond the retry
			// budget): clear the partial gradients and retry the epoch.
			retries++
			if retries > epochRetries {
				return result, fmt.Errorf("dgcl: epoch %d failed %d times: %w", epoch, retries, err)
			}
			tr.ZeroGrads()
			continue
		}
		if recoveries >= maxRecoveries {
			return result, fmt.Errorf("dgcl: recovery budget (%d) exhausted: %w", maxRecoveries, err)
		}
		recoveries++
		failedEpoch := epoch
		if derr := s.Degrade(down); derr != nil {
			return result, derr
		}
		// Restore: newest intact checkpoint when one exists, else continue
		// from the in-memory replica state (weights are unchanged since the
		// last completed epoch — a failed epoch never reaches the optimizer
		// step).
		restored, resumeEpoch, gen := tr.Models[0], epoch, -1
		restoredOptState := s.encodeOptimizerState(optimizers[0], tr.Models[0])
		if store != nil {
			snap, g, lerr := store.Load()
			switch {
			case lerr == nil:
				restored, resumeEpoch, gen = snap.Model, snap.Epoch, g
				restoredOptState = snap.OptState
			case errors.Is(lerr, checkpoint.ErrNoCheckpoint):
				// Nothing durable yet; fall through to in-memory state.
			default:
				return result, lerr
			}
		}
		tr, optimizers, err = s.buildTrainer(restored, features, targets, newOpt, restoredOptState)
		if err != nil {
			return result, err
		}
		// The weights may have rolled back to an older checkpoint and the
		// cluster was rebuilt over survivors: anything derived from the
		// pre-crash model (served embedding caches above all) is stale.
		s.fireEpochEnd(resumeEpoch-1, tr.Models[0])
		epoch, retries = resumeEpoch, 0
		ev := RecoveryEvent{
			FailedEpoch:  failedEpoch,
			Down:         down,
			Survivors:    s.AliveDevices(),
			ResumedEpoch: resumeEpoch,
			Generation:   gen,
		}
		result.Recoveries = append(result.Recoveries, ev)
		if opts.OnRecovery != nil {
			opts.OnRecovery(ev)
		}
	}
	result.Model = tr.Models[0].Clone()
	return result, nil
}

// buildTrainer shards model/features/targets over the active cluster and
// builds one optimizer per replica, restoring serialized optimizer state
// into each (the state bytes are replica-independent; binding happens
// against each replica's parameters).
func (s *System) buildTrainer(model *Model, features, targets *Matrix, newOpt func() Optimizer, optState []byte) (*Trainer, []Optimizer, error) {
	tr, err := s.NewTrainer(model, features, targets)
	if err != nil {
		return nil, nil, err
	}
	optimizers := make([]Optimizer, s.rel.K)
	for d := range optimizers {
		o := newOpt()
		if len(optState) > 0 {
			so, ok := o.(gnn.StatefulOptimizer)
			if !ok {
				return nil, nil, fmt.Errorf("dgcl: optimizer %q cannot restore checkpointed state", o.Name())
			}
			if err := so.LoadState(bytes.NewReader(optState), tr.Models[d]); err != nil {
				return nil, nil, err
			}
		}
		optimizers[d] = o
	}
	return tr, optimizers, nil
}

// encodeOptimizerState serializes opt's state against m, or nil for
// stateless optimizers.
func (s *System) encodeOptimizerState(opt Optimizer, m *Model) []byte {
	so, ok := opt.(gnn.StatefulOptimizer)
	if !ok {
		return nil
	}
	var buf bytes.Buffer
	if err := so.SaveState(&buf, m); err != nil {
		return nil
	}
	return buf.Bytes()
}

// saveCheckpoint commits one generation capturing replica 0 (replicas are
// identical by construction).
func (s *System) saveCheckpoint(store *checkpoint.Store, tr *Trainer, opt Optimizer, epoch int) (int, error) {
	snap := &checkpoint.Snapshot{
		Epoch:    epoch,
		Seed:     s.opts.Seed,
		OptName:  opt.Name(),
		OptState: s.encodeOptimizerState(opt, tr.Models[0]),
		Model:    tr.Models[0],
	}
	return store.Save(snap)
}
