package testutil

import (
	"sort"
	"sync"
	"time"
)

// FakeClock is a manually-advanced clock for deterministic timing tests. It
// structurally satisfies the Clock interfaces of packages that abstract time
// behind Now/After (internal/worker's lease and backoff machinery): timers
// only fire when the test calls Advance, so lease expiry, strike cadence, and
// backoff schedules are exact rather than wall-clock races.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at      time.Time
	ch      chan time.Time
	stopped bool
}

// NewFakeClock starts a fake clock at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that delivers once when Advance moves the clock to
// or past d from now, plus a stop function reporting whether it prevented the
// firing (time.Timer semantics).
func (c *FakeClock) After(d time.Duration) (<-chan time.Time, func() bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.ch <- c.now
		t.stopped = true
		return t.ch, func() bool { return false }
	}
	c.timers = append(c.timers, t)
	return t.ch, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		prevented := !t.stopped
		t.stopped = true
		return prevented
	}
}

// Advance moves the clock forward by d, firing every due timer in deadline
// order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	due := make([]*fakeTimer, 0, len(c.timers))
	rest := c.timers[:0]
	for _, t := range c.timers {
		if !t.stopped && !t.at.After(c.now) {
			due = append(due, t)
			continue
		}
		rest = append(rest, t)
	}
	c.timers = rest
	sort.SliceStable(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	now := c.now
	for _, t := range due {
		t.stopped = true
	}
	c.mu.Unlock()
	for _, t := range due {
		t.ch <- now
	}
}
