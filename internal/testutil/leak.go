// Package testutil holds helpers shared by the test batteries of several
// packages: the goroutine-leak checker used by the chaos, crash-recovery and
// checkpoint suites. Production code must not import it.
package testutil

import (
	"runtime"
	"time"
)

// Goroutines returns the current live goroutine count.
func Goroutines() int { return runtime.NumGoroutine() }

// GoroutinesSettleTo polls until the live goroutine count returns to within
// a small slack of baseline (test-harness goroutines come and go), or the
// window expires. It reports whether the count settled — a false return
// after a failure-injecting test means client goroutines leaked, typically
// blocked forever on a channel whose peer gave up.
func GoroutinesSettleTo(baseline int, window time.Duration) bool {
	deadline := time.Now().Add(window)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}
