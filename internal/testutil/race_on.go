//go:build race

package testutil

// RaceEnabled reports whether this binary was built with -race. Allocation
// budgets (testing.AllocsPerRun) are asserted only in non-race builds: race
// instrumentation allocates shadow state of its own, so the counts are not
// meaningful there.
const RaceEnabled = true
