package runtime

import (
	"context"
	"errors"
	"sort"
	"sync"
)

// Failure detection. The crash transport makes transfers touching a *known*
// dead device fail fast, but a real fail-stop failure first shows up as
// repeated receive deadlines: the peer simply stops answering. The
// HealthTracker is the cluster's failure detector — it grades each client's
// collective outcome, converts explicit DeviceDownError evidence into an
// immediate verdict, and converts DownAfter consecutive deadline-class
// failures blamed on the same peer into a suspicion verdict. Verdicts are
// fed back into the CrashTracker (so the crash transport starts fast-failing
// the device) and surfaced to callers via CollectiveError.Down, which is
// what the resilient training loop keys recovery on.

// DefaultDownAfter is the consecutive deadline-strike threshold before a
// device with no explicit down evidence is declared dead.
const DefaultDownAfter = 2

// HealthTracker converts per-collective client errors into per-device down
// verdicts. Methods are safe for concurrent use.
type HealthTracker struct {
	// DownAfter is the number of consecutive deadline-class strikes against
	// one device before it is declared down (<=0 means DefaultDownAfter).
	DownAfter int

	mu       sync.Mutex
	crash    *CrashTracker
	stats    *CommStats
	strikes  map[int]int
	verdicts map[int]bool
	evidence CommSnapshot
}

// NewHealthTracker builds a detector that reports verdicts into crash (so
// the transport layer fast-fails confirmed-dead devices) and snapshots stats
// (may be nil) as evidence whenever a verdict is reached.
func NewHealthTracker(downAfter int, crash *CrashTracker, stats *CommStats) *HealthTracker {
	if downAfter <= 0 {
		downAfter = DefaultDownAfter
	}
	return &HealthTracker{
		DownAfter: downAfter,
		crash:     crash,
		stats:     stats,
		strikes:   make(map[int]int),
		verdicts:  make(map[int]bool),
	}
}

// ObserveCollective grades one finished collective: errs[d] is the error
// client d returned (nil for a clean finish) and ids maps client index to
// external device id (nil = identity). It returns every device now judged
// down, ascending, in external ids.
func (h *HealthTracker) ObserveCollective(errs []error, ids []int) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	dev := func(i int) int {
		if ids == nil {
			return i
		}
		return ids[i]
	}
	// Collect this round's suspicions first: a clean client exonerates a
	// suspect only if no other client indicted it in the same collective
	// (the survivor that never talks to the dead device must not erase the
	// strikes of those that do).
	indicted := make(map[int]bool)
	for i, err := range errs {
		if err == nil {
			continue
		}
		var down *DeviceDownError
		if errors.As(err, &down) {
			h.verdictLocked(down.Device)
			indicted[down.Device] = true
			continue
		}
		if suspect, ok := suspectOf(err, i); ok {
			indicted[dev(suspect)] = true
		}
	}
	for d := range indicted {
		if h.verdicts[d] {
			continue
		}
		h.strikes[d]++
		if h.strikes[d] >= h.DownAfter {
			h.verdictLocked(d)
		}
	}
	// A device that answered cleanly this round is alive: clear its strikes.
	for i, err := range errs {
		if err == nil && !indicted[dev(i)] {
			delete(h.strikes, dev(i))
		}
	}
	return h.downLocked()
}

// verdictLocked records a down verdict, snapshots evidence, and tells the
// crash tracker so the transport fast-fails the device from now on.
func (h *HealthTracker) verdictLocked(dev int) {
	if h.verdicts[dev] {
		return
	}
	h.verdicts[dev] = true
	delete(h.strikes, dev)
	if h.stats != nil {
		h.evidence = h.stats.Snapshot()
	}
	if h.crash != nil {
		h.crash.MarkDown(dev)
	}
}

// suspectOf extracts the peer a client error implicates: a deadline-class
// TransportError blames the remote endpoint of the transfer. Plain context
// cancellation is collateral damage from another client aborting the
// collective and implicates nobody.
func suspectOf(err error, self int) (int, bool) {
	var te *TransportError
	if !errors.As(err, &te) {
		return 0, false
	}
	if !errors.Is(te.Err, context.DeadlineExceeded) {
		return 0, false
	}
	if te.Src != self {
		return te.Src, true
	}
	return te.Dst, true
}

// Direct-evidence API. The collective path above grades whole collectives;
// lease-based supervisors (the multi-process coordinator's control-plane
// heartbeats, internal/worker) feed the same verdict model one observation at
// a time: a renewal is proof of life, a missed lease deadline is one
// deadline-class strike, and a connection loss is explicit fail-stop
// evidence. Strikes accumulate to the same DownAfter threshold and verdicts
// are just as persistent, so "stalled" and "dead" mean the same thing on the
// control plane as they do on the data plane.

// ObserveRenewal records direct proof of life for dev (a heartbeat arrived):
// its consecutive-strike count resets. Verdicts are persistent — a renewal
// never resurrects a device already judged down.
func (h *HealthTracker) ObserveRenewal(dev int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.strikes, dev)
}

// ObserveStrike records one deadline-class strike against dev (a lease
// expired with no heartbeat) and reports whether dev now has a down verdict.
func (h *HealthTracker) ObserveStrike(dev int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.verdicts[dev] {
		return true
	}
	h.strikes[dev]++
	if h.strikes[dev] >= h.DownAfter {
		h.verdictLocked(dev)
	}
	return h.verdicts[dev]
}

// ObserveEvidence records explicit fail-stop evidence against dev (its
// control connection died, or a peer reported it DeviceDown): an immediate
// verdict, same as the collective path's DeviceDownError handling.
func (h *HealthTracker) ObserveEvidence(dev int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.verdictLocked(dev)
}

// Strikes returns dev's current consecutive deadline-strike count (0 after a
// renewal or a verdict).
func (h *HealthTracker) Strikes(dev int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.strikes[dev]
}

// Down reports whether the device (external id) has a down verdict.
func (h *HealthTracker) Down(dev int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.verdicts[dev]
}

// DownDevices returns every device with a down verdict, ascending.
func (h *HealthTracker) DownDevices() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.downLocked()
}

func (h *HealthTracker) downLocked() []int {
	out := make([]int, 0, len(h.verdicts))
	for d := range h.verdicts {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Evidence returns the stats snapshot captured at the most recent verdict
// (zero value if none was reached or no stats were attached).
func (h *HealthTracker) Evidence() CommSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.evidence
}
