package runtime

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"dgcl/internal/core"
	"dgcl/internal/graph"
	"dgcl/internal/tensor"
	"dgcl/internal/testutil"
)

// Fail-stop battery: a scheduled device death must surface as a structured
// DeviceDownError on every client that touches the dead device, abort the
// collective promptly (no receiver burns its full deadline waiting on a
// corpse), name the dead devices in CollectiveError.Down, and leave no
// goroutines behind. The schedule itself is a pure function of (epoch,
// stage): replaying it yields the same down set every time.

func TestParseCrashSchedule(t *testing.T) {
	cfg, err := ParseCrashSchedule("2@3:1, 5@7")
	if err != nil {
		t.Fatal(err)
	}
	want := []CrashEvent{{Device: 2, Epoch: 3, Stage: 1}, {Device: 5, Epoch: 7, Stage: 0}}
	if !reflect.DeepEqual(cfg.Events, want) {
		t.Fatalf("parsed %+v, want %+v", cfg.Events, want)
	}

	for _, bad := range []string{"", "   ", "2", "2@", "@3", "2@3:", "x@3", "2@y", "2@3:z", "-1@3", "2@-3", "2@3:-1"} {
		if _, err := ParseCrashSchedule(bad); err == nil {
			t.Errorf("schedule %q parsed without error", bad)
		}
	}
}

func TestCrashTrackerFiresAsPureFunctionOfEpochAndStage(t *testing.T) {
	run := func() [][]int {
		tr := NewCrashTracker(CrashConfig{Events: []CrashEvent{
			{Device: 0, Epoch: 1, Stage: 0},
			{Device: 1, Epoch: 1, Stage: 2},
			{Device: 2, Epoch: 3, Stage: 99}, // beyond any stage: fires at BeginEpoch(4)
		}})
		var states [][]int
		snap := func() { states = append(states, tr.DownDevices()) }
		tr.BeginEpoch(0)
		tr.advance(5)
		snap() // nothing scheduled for epoch 0
		tr.BeginEpoch(1)
		tr.advance(0)
		snap() // device 0 dies at stage 0
		tr.advance(1)
		snap() // stage 1: still just device 0
		tr.advance(2)
		snap() // device 1 dies at stage 2
		tr.BeginEpoch(3)
		tr.advance(3)
		snap() // device 2's stage 99 not reached
		tr.BeginEpoch(4)
		snap() // missed event from epoch 3 fires on the epoch boundary
		return states
	}
	want := [][]int{{}, {0}, {0}, {0, 1}, {0, 1}, {0, 1, 2}}
	first := run()
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("down-set trace %v, want %v", first, want)
	}
	if second := run(); !reflect.DeepEqual(second, first) {
		t.Fatalf("replay diverged: %v then %v", first, second)
	}
}

func TestCrashTrackerOutlivesRebuildAndMapsExternalIDs(t *testing.T) {
	tr := NewCrashTracker(CrashConfig{})
	tr.MarkDown(2)
	// A degraded cluster renumbers survivors compactly; ids maps compact
	// client index -> external device id. Transfers between survivors pass,
	// transfers addressed (in external terms) to the dead device fail even
	// though its compact index has been reused.
	ct := &crashTransport{inner: nil, tracker: tr, ids: []int{0, 1, 3}}
	if got := ct.dev(2); got != 3 {
		t.Fatalf("compact index 2 maps to %d, want external 3", got)
	}
	if tr.Down(3) {
		t.Fatal("external device 3 should be alive")
	}
	if !tr.Down(2) {
		t.Fatal("external device 2 should stay dead across the rebuild")
	}
}

// crashedCluster builds a 4-GPU cluster with a crash tracker, health tracker
// and stats wired the way dgcl.System does.
func crashedCluster(t *testing.T, cfg CrashConfig) (*Cluster, []*tensor.Matrix) {
	t.Helper()
	g := graph.CommunityGraph(300, 10, 4, 0.8, 42)
	c, rel := setup(t, g, 4, 42, 64)
	cols := 3
	local := make([]*tensor.Matrix, 4)
	for d := 0; d < 4; d++ {
		local[d] = tensor.New(len(rel.Local[d]), cols).FillRandom(int64(d))
	}
	c.Stats = NewCommStats(c.K)
	c.Crash = NewCrashTracker(cfg)
	c.Health = NewHealthTracker(0, c.Crash, c.Stats)
	c.Timeout = 30 * time.Second
	return c, local
}

func TestCrashAbortsCollectiveStructuredAndLeakFree(t *testing.T) {
	c, local := crashedCluster(t, CrashConfig{Events: []CrashEvent{{Device: 2, Epoch: 0, Stage: 0}}})
	c.Crash.BeginEpoch(0)

	before := testutil.Goroutines()
	start := time.Now()
	_, err := c.Allgather(local)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("allgather succeeded with device 2 dead from stage 0")
	}
	// The watch/cancel path must abort the collective immediately — far
	// inside any receive deadline — rather than timing every transfer out.
	if elapsed > 5*time.Second {
		t.Fatalf("abort took %v; dead-device detection should not wait out deadlines", elapsed)
	}
	if !errors.Is(err, ErrDeviceDown) {
		t.Fatalf("error does not unwrap to ErrDeviceDown: %v", err)
	}
	var dde *DeviceDownError
	if !errors.As(err, &dde) || dde.Device != 2 {
		t.Fatalf("no DeviceDownError naming device 2 in chain: %v", err)
	}
	var ce *CollectiveError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CollectiveError", err)
	}
	if !reflect.DeepEqual(ce.Down, []int{2}) {
		t.Fatalf("CollectiveError.Down = %v, want [2]", ce.Down)
	}
	if !c.Health.Down(2) {
		t.Fatal("health tracker has no verdict for device 2")
	}
	if !testutil.GoroutinesSettleTo(before, 2*time.Second) {
		t.Fatalf("goroutines leaked: %d before, %d after settling window", before, testutil.Goroutines())
	}
}

func TestCrashBeforeScheduledEpochIsHarmless(t *testing.T) {
	c, local := crashedCluster(t, CrashConfig{Events: []CrashEvent{{Device: 1, Epoch: 5, Stage: 0}}})
	c.Crash.BeginEpoch(0)
	if _, err := c.Allgather(local); err != nil {
		t.Fatalf("epoch 0 allgather failed with a crash scheduled for epoch 5: %v", err)
	}
	if down := c.Crash.DownDevices(); len(down) != 0 {
		t.Fatalf("devices %v down before their scheduled epoch", down)
	}
}

func TestCrashTransportFastFailsBothDirections(t *testing.T) {
	tr := NewCrashTracker(CrashConfig{})
	tr.BeginEpoch(0)
	tr.MarkDown(1)
	toDead := core.Transfer{Src: 0, Dst: 1, Vertices: []int32{0}}
	fromDead := core.Transfer{Src: 1, Dst: 0, Vertices: []int32{0}}
	alive := core.Transfer{Src: 0, Dst: 2, Vertices: []int32{0}}
	ct := NewCrashTransport(NewChanTransport([][]core.Transfer{{toDead, fromDead, alive}}), tr, nil)

	if err := ct.Send(context.Background(), TransferKey{0, 0}, toDead, payload(1)); !errors.Is(err, ErrDeviceDown) {
		t.Fatalf("send to dead device: %v, want ErrDeviceDown", err)
	}
	if _, err := ct.Recv(context.Background(), TransferKey{0, 1}, fromDead); !errors.Is(err, ErrDeviceDown) {
		t.Fatalf("recv from dead device: %v, want ErrDeviceDown", err)
	}
	// Transfers between live devices pass through untouched.
	if err := ct.Send(context.Background(), TransferKey{0, 2}, alive, payload(1)); err != nil {
		t.Fatalf("send between live devices: %v", err)
	}
	if _, err := ct.Recv(context.Background(), TransferKey{0, 2}, alive); err != nil {
		t.Fatalf("recv between live devices: %v", err)
	}
}

func TestCrashWatcherUnblocksPendingRecv(t *testing.T) {
	tr := NewCrashTracker(CrashConfig{})
	tr.BeginEpoch(0)
	pending := core.Transfer{Src: 1, Dst: 0, Vertices: []int32{0}}
	ct := NewCrashTransport(NewChanTransport([][]core.Transfer{{pending}}), tr, nil)

	errCh := make(chan error, 1)
	go func() {
		// No deadline on the context: only the crash watcher can end this.
		_, err := ct.Recv(context.Background(), TransferKey{0, 0}, pending)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the receive block
	tr.MarkDown(1)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrDeviceDown) {
			t.Fatalf("unblocked recv returned %v, want ErrDeviceDown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv still blocked 2s after its sender was marked down")
	}
}

func TestHealthTrackerStrikesAndExoneration(t *testing.T) {
	crash := NewCrashTracker(CrashConfig{})
	h := NewHealthTracker(2, crash, nil)
	deadline := func(self, peer int) error {
		return &TransportError{Op: "recv", Src: peer, Dst: self, Attempts: 1, Err: context.DeadlineExceeded}
	}

	// Round 1: clients 0 and 1 time out against device 3 — one strike, no
	// verdict yet.
	down := h.ObserveCollective([]error{deadline(0, 3), deadline(1, 3), nil, nil}, nil)
	if len(down) != 0 {
		t.Fatalf("verdict after one strike round: %v", down)
	}
	// Round 2: a second consecutive strike reaches the threshold.
	down = h.ObserveCollective([]error{deadline(0, 3), nil, nil, nil}, nil)
	if !reflect.DeepEqual(down, []int{3}) {
		t.Fatalf("down after two strike rounds = %v, want [3]", down)
	}
	if !crash.Down(3) {
		t.Fatal("verdict was not fed back into the crash tracker")
	}

	// A clean round from the suspect itself clears accumulated strikes.
	h2 := NewHealthTracker(2, nil, nil)
	h2.ObserveCollective([]error{deadline(0, 2), nil, nil, nil}, nil)
	h2.ObserveCollective([]error{nil, nil, nil, nil}, nil) // device 2 answers cleanly
	down = h2.ObserveCollective([]error{deadline(0, 2), nil, nil, nil}, nil)
	if len(down) != 0 {
		t.Fatalf("verdict despite an intervening clean round: %v", down)
	}

	// Explicit down evidence is an immediate verdict regardless of strikes,
	// and plain cancellation implicates nobody.
	h3 := NewHealthTracker(2, nil, nil)
	down = h3.ObserveCollective([]error{&DeviceDownError{Device: 1}, context.Canceled, nil, nil}, nil)
	if !reflect.DeepEqual(down, []int{1}) {
		t.Fatalf("down after explicit evidence = %v, want [1]", down)
	}
}

func TestHealthTrackerMapsClientIndicesToExternalIDs(t *testing.T) {
	h := NewHealthTracker(1, nil, nil)
	// Compact client 1 times out against compact client 2; ids maps compact
	// 2 to external device 5.
	err := &TransportError{Op: "recv", Src: 2, Dst: 1, Attempts: 1, Err: context.DeadlineExceeded}
	down := h.ObserveCollective([]error{nil, err, nil}, []int{0, 3, 5})
	if !reflect.DeepEqual(down, []int{5}) {
		t.Fatalf("down = %v, want external id [5]", down)
	}
}
