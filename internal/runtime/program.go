package runtime

import (
	"fmt"
	"sync"

	"dgcl/internal/core"
)

// Compiled routing programs: the plan-dependent half of a collective, hoisted
// out of the per-epoch hot path. The legacy client loop rescanned every
// stage's full transfer list per client (`if tr.Src != d { continue }`) and
// resolved vertex ids through per-client hash maps on every row it touched —
// O(K·transfers) of scanning plus a map probe per vertex per stage, every
// collective, even though the plan never changes between epochs. compile()
// walks the stage list once per client and emits a clientProgram: the
// client's own sends/receives per stage with every vertex id pre-resolved to
// a dense slot. Execution then touches only its own transfers and does
// nothing but row copies at precomputed offsets.
//
// Slot encoding (per client):
//
//   - forward: slot s >= 0 is row s of the assembled `full` matrix (rows
//     [0, NumLocal) are the owned block, NumLocal+i is remote vertex i in
//     local-graph order — so receives land directly in their final output
//     position). s < 0 is row -s-1 of the relay arena: vertices this client
//     forwards down the tree but never consumes.
//   - backward: slot s >= 0 is row s of the owned-gradient accumulator;
//     s < 0 is row -s-1 of the gradient arena. Arena rows [0, NumRemote)
//     start as the remote block of gradFull (this client's own consumer
//     contribution); rows beyond that are relay-only accumulators that start
//     at zero.
//
// Programs are compiled lazily (once per plan, and per backward schedule
// flavor) under progMu and shared by all subsequent collectives. The
// backward program also hoists the BackwardSchedule sub-stage flattening,
// which the legacy path redid on every call.

// sendStep is one compiled send: the transport key, the transfer (for
// accounting and fault classification), and the source slot of each payload
// row.
type sendStep struct {
	key   TransferKey
	tr    core.Transfer
	slots []int32
}

// recvStep is one compiled receive: the destination slot of each incoming
// row.
type recvStep struct {
	key   TransferKey
	tr    core.Transfer
	slots []int32
}

// clientStage is one client's view of one (flattened) stage.
type clientStage struct {
	sends []sendStep
	recvs []recvStep
}

// clientProgram is one client's complete routing program for a collective
// direction, plus the relay-arena row count its execution needs.
type clientProgram struct {
	stages    []clientStage
	arenaRows int
	// zeroFrom is the first arena row that must be zeroed before use
	// (backward relay accumulators; pooled arena memory is dirty). Forward
	// programs set it to arenaRows: every forward arena row is fully
	// overwritten by a receive before anything reads it.
	zeroFrom int
	// Pipeline hazard gates (overlap.go): sendDep[s]/aggDep[s] are the
	// stages the sender/aggregator must respectively wait for before
	// touching stage s; serialOnly forces the serial executor when the
	// compiled dependencies would not pipeline safely.
	sendDep    []int
	aggDep     []int
	serialOnly bool
}

// routingProgram is the compiled form of one collective direction: per-client
// programs, the flattened transport stage layout they are keyed against, and
// the reusable plain-stack transport bound to that layout.
type routingProgram struct {
	clients []clientProgram
	stages  [][]core.Transfer
	tc      transportCache
}

// forwardProgram returns the compiled forward program, compiling it on first
// use and recompiling when the chunking granularity changed (the chunked
// layout determines the transport keys, so a stale program would desync from
// peers compiled at the new granularity).
func (c *Cluster) forwardProgram() (*routingProgram, error) {
	c.progMu.Lock()
	defer c.progMu.Unlock()
	if c.fwdProg == nil || c.fwdChunk != c.Overlap.chunkRows() {
		p, err := c.compileForward()
		if err != nil {
			return nil, err
		}
		c.fwdProg, c.fwdChunk = p, c.Overlap.chunkRows()
	}
	return c.fwdProg, nil
}

// backwardProgram returns the compiled backward program for the cluster's
// current NonAtomic setting, recompiling when the setting or the chunking
// granularity changed since the last call.
func (c *Cluster) backwardProgram() (*routingProgram, error) {
	c.progMu.Lock()
	defer c.progMu.Unlock()
	if c.bwdProg == nil || c.bwdNonAtomic != c.NonAtomic || c.bwdChunk != c.Overlap.chunkRows() {
		p, err := c.compileBackward(c.NonAtomic)
		if err != nil {
			return nil, err
		}
		c.bwdProg, c.bwdNonAtomic, c.bwdChunk = p, c.NonAtomic, c.Overlap.chunkRows()
	}
	return c.bwdProg, nil
}

// compileForward builds the forward program from c.Plan.Stages. The walk
// mirrors execution order exactly — stages in order, transfers in index
// order, sends resolved against pre-stage state — so the availability check
// the legacy loop made per row ("GPU d lacks vertex v at stage s") moves to
// compile time.
func (c *Cluster) compileForward() (*routingProgram, error) {
	stages := chunkStages(c.Plan.Stages, c.Overlap.chunkRows())
	prog := &routingProgram{clients: make([]clientProgram, c.K), stages: stages}
	for d := 0; d < c.K; d++ {
		lg := c.Locals[d]
		slot := make(map[int32]int32, lg.NumLocal+lg.NumRemote)
		for i, v := range c.Rel.Local[d] {
			slot[v] = int32(i)
		}
		for i := 0; i < lg.NumRemote; i++ {
			slot[lg.GlobalID[lg.NumLocal+i]] = int32(lg.NumLocal + i)
		}
		cp := &prog.clients[d]
		cp.stages = make([]clientStage, len(stages))
		relay := 0
		for si, st := range stages {
			cs := &cp.stages[si]
			for ti, tr := range st {
				if tr.Src == d {
					slots := make([]int32, len(tr.Vertices))
					for i, v := range tr.Vertices {
						s, ok := slot[v]
						if !ok {
							return nil, fmt.Errorf("runtime: GPU %d lacks vertex %d at stage %d", d, v, si+1)
						}
						slots[i] = s
					}
					cs.sends = append(cs.sends, sendStep{key: TransferKey{si, ti}, tr: tr, slots: slots})
				}
				if tr.Dst == d {
					slots := make([]int32, len(tr.Vertices))
					for i, v := range tr.Vertices {
						s, ok := slot[v]
						if !ok {
							// Relay-only vertex: held in the arena, never part
							// of this client's local graph.
							s = int32(-(relay + 1))
							relay++
							slot[v] = s
						}
						slots[i] = s
					}
					cs.recvs = append(cs.recvs, recvStep{key: TransferKey{si, ti}, tr: tr, slots: slots})
				}
			}
		}
		cp.arenaRows, cp.zeroFrom = relay, relay
		cp.computeDeps(lg.NumLocal + lg.NumRemote)
	}
	return prog, nil
}

// compileBackward builds the backward program, flattening the (non-)atomic
// sub-stage schedule into transport-keyed stages once instead of on every
// collective. Sends resolve before the stage's receives register new relay
// slots, matching the legacy send-then-receive execution order; a relay
// vertex first seen in a send starts as a zeroed accumulator exactly as the
// legacy grow() did.
func (c *Cluster) compileBackward(nonAtomic bool) (*routingProgram, error) {
	sched := c.Plan.BackwardSchedule(nonAtomic)
	flat := make([][]core.Transfer, 0, len(sched))
	for _, stage := range sched {
		var all []core.Transfer
		for _, sub := range stage {
			all = append(all, sub...)
		}
		flat = append(flat, all)
	}
	flat = chunkStages(flat, c.Overlap.chunkRows())
	prog := &routingProgram{clients: make([]clientProgram, c.K), stages: flat}
	for d := 0; d < c.K; d++ {
		lg := c.Locals[d]
		slot := make(map[int32]int32, lg.NumLocal+lg.NumRemote)
		for i := 0; i < lg.NumLocal; i++ {
			slot[lg.GlobalID[i]] = int32(i)
		}
		for i := 0; i < lg.NumRemote; i++ {
			slot[lg.GlobalID[lg.NumLocal+i]] = int32(-(i + 1))
		}
		arenaRows := lg.NumRemote
		grow := func(v int32) int32 {
			s, ok := slot[v]
			if !ok {
				s = int32(-(arenaRows + 1))
				arenaRows++
				slot[v] = s
			}
			return s
		}
		cp := &prog.clients[d]
		cp.stages = make([]clientStage, len(flat))
		for si, st := range flat {
			cs := &cp.stages[si]
			for ti, tr := range st {
				if tr.Src == d {
					slots := make([]int32, len(tr.Vertices))
					for i, v := range tr.Vertices {
						slots[i] = grow(v)
					}
					cs.sends = append(cs.sends, sendStep{key: TransferKey{si, ti}, tr: tr, slots: slots})
				}
				if tr.Dst == d {
					slots := make([]int32, len(tr.Vertices))
					for i, v := range tr.Vertices {
						slots[i] = grow(v)
					}
					cs.recvs = append(cs.recvs, recvStep{key: TransferKey{si, ti}, tr: tr, slots: slots})
				}
			}
		}
		cp.arenaRows, cp.zeroFrom = arenaRows, lg.NumRemote
		cp.computeDeps(lg.NumLocal)
	}
	return prog, nil
}

// transportCache holds the reusable plain-stack channel transport bound to
// one compiled program's stage layout. Channel construction is O(transfers)
// per collective; on the undecorated stack (no faults, crashes, retries, or
// custom base) a successful collective provably drains every channel — each
// key is sent exactly once and received exactly once — so the transport can
// carry the next collective as-is. Any client error (timeout, cancellation)
// may strand messages in channels, so a failed collective discards the
// cached transport instead of handing stale payloads to the next epoch.
type transportCache struct {
	mu    sync.Mutex
	base  Transport
	inUse bool
}

// acquire returns the cached transport when it is free, building (and, when
// the slot is empty, adopting) a fresh one otherwise. A transport built
// while the slot is busy simply runs uncached.
func (tc *transportCache) acquire(stages [][]core.Transfer) Transport {
	tc.mu.Lock()
	if tc.base != nil && !tc.inUse {
		tc.inUse = true
		b := tc.base
		tc.mu.Unlock()
		return b
	}
	busy := tc.base != nil
	tc.mu.Unlock()
	b := NewChanTransport(stages)
	if !busy {
		tc.mu.Lock()
		if tc.base == nil {
			tc.base, tc.inUse = b, true
		}
		tc.mu.Unlock()
	}
	return b
}

// release frees the cached transport after a collective; a failed collective
// drops it so the next acquire rebuilds clean channels.
func (tc *transportCache) release(b Transport, failed bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.base != b {
		return
	}
	tc.inUse = false
	if failed {
		tc.base = nil
	}
}

// acquireTransport composes the transport stack for one collective over the
// program's stage layout. Decorated stacks (fault injection, crash, retry,
// custom base) are rebuilt per collective exactly as before — their
// correctness depends on per-collective state. The plain stack reuses the
// program's cached channel transport, re-wrapping only the cheap stats
// accounting layer.
func (c *Cluster) acquireTransport(prog *routingProgram, relayAware bool) (Transport, func(failed bool)) {
	if c.Transport != nil || c.Provider != nil || c.Faults != nil || c.Crash != nil || c.Retry != nil {
		return c.newTransport(prog.stages, relayAware), func(bool) {}
	}
	base := prog.tc.acquire(prog.stages)
	tp := base
	if c.Stats != nil {
		tp = newStatsTransport(tp, c.Stats, c.Rel.Owner, relayAware)
	}
	return tp, func(failed bool) { prog.tc.release(base, failed) }
}

// seal wraps a payload for transmission. Checksums exist so transports that
// can corrupt data (fault injection, custom bases) are detectable end to
// end; the plain in-process stack never corrupts, and nothing on it ever
// calls Valid, so sealing there would burn a hash of every payload float for
// a field nobody reads. Profiling put that hash at ~21% of epoch CPU.
func (c *Cluster) seal(rows Message) Message {
	if c.Faults != nil || c.Transport != nil {
		rows.Checksum = payloadChecksum(rows.Rows)
	}
	return rows
}

// recycle returns a consumed receive buffer to its pool. On the built-in
// stack that is the cluster pool: after a successful Recv the per-key
// channel is never read again, faults corrupt copies rather than originals,
// and retransmissions re-deliver the same buffer at most once — so the
// consumer owns the payload outright. A transport chain exposing a
// MessageRecycler (the wire transport pools its decode buffers) takes the
// payload back itself. Any other custom Transport may retain or replay
// messages, so its payloads are never pooled.
func (c *Cluster) recycle(tp Transport, msg Message) {
	if msg.Rows == nil {
		return
	}
	if c.Transport == nil && c.Provider == nil {
		c.pool.put(msg.Rows)
		return
	}
	if r := transportRecycler(tp); r != nil {
		r.RecycleMessage(msg)
	}
}
