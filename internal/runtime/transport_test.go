package runtime

import (
	"context"
	"errors"
	"testing"
	"time"

	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/graph"
	"dgcl/internal/tensor"
)

var testTransfer = core.Transfer{Src: 0, Dst: 1, Vertices: []int32{3, 5}}

// relayFixture is the 4-GPU relay chain of TestMultiHopForwardingDeliversData:
// GPU0 owns v0, needed by GPUs 2 and 3, forwarded 0->1->2->3.
func relayFixture(t *testing.T) (*comm.Relation, []*comm.LocalGraph, *core.Plan) {
	t.Helper()
	rel := &comm.Relation{
		K:      4,
		Owner:  []int32{0, 1, 2, 3},
		Local:  [][]int32{{0}, {1}, {2}, {3}},
		Remote: [][]int32{nil, nil, {0}, {0}},
		Send:   make([][][]int32, 4),
	}
	for i := range rel.Send {
		rel.Send[i] = make([][]int32, 4)
	}
	rel.Send[0][2] = []int32{0}
	rel.Send[0][3] = []int32{0}
	plan := core.NewPlan(4, 4, "relay")
	plan.Stages = [][]core.Transfer{
		{{Src: 0, Dst: 1, Vertices: []int32{0}}},
		{{Src: 1, Dst: 2, Vertices: []int32{0}}},
		{{Src: 2, Dst: 3, Vertices: []int32{0}}},
	}
	g := graph.MustFromEdges(4, []graph.Edge{{Src: 2, Dst: 0}, {Src: 3, Dst: 0}}, false)
	return rel, comm.BuildLocalGraphs(g, rel), plan
}

func testStages() [][]core.Transfer { return [][]core.Transfer{{testTransfer}} }

func payload(vals ...float32) Message {
	return NewMessage(tensor.FromData(1, len(vals), vals))
}

func TestChanTransportRoundTrip(t *testing.T) {
	tp := NewChanTransport(testStages())
	key := TransferKey{0, 0}
	want := payload(1, 2, 3)
	if err := tp.Send(context.Background(), key, testTransfer, want); err != nil {
		t.Fatal(err)
	}
	got, err := tp.Recv(context.Background(), key, testTransfer)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows.At(0, 1) != 2 || !got.Valid() {
		t.Fatalf("payload damaged in transit: %+v", got)
	}
}

func TestChanTransportRejectsBadKey(t *testing.T) {
	tp := NewChanTransport(testStages())
	if err := tp.Send(context.Background(), TransferKey{5, 0}, testTransfer, payload(1)); err == nil {
		t.Fatal("expected bad-key error")
	}
	if _, err := tp.Recv(context.Background(), TransferKey{0, 9}, testTransfer); err == nil {
		t.Fatal("expected bad-key error")
	}
}

func TestChanTransportBackpressure(t *testing.T) {
	tp := NewChanTransport(testStages())
	key := TransferKey{0, 0}
	for i := 0; i < chanBuffer; i++ {
		if err := tp.Send(context.Background(), key, testTransfer, payload(float32(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := tp.Send(context.Background(), key, testTransfer, payload(99)); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("overflow send = %v, want ErrBackpressure", err)
	}
}

func TestChanTransportRecvHonorsContext(t *testing.T) {
	tp := NewChanTransport(testStages())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tp.Recv(ctx, TransferKey{0, 0}, testTransfer)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("recv = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("recv did not respect the deadline")
	}
}

func TestMessageChecksumDetectsCorruption(t *testing.T) {
	msg := payload(1, 2, 3)
	if !msg.Valid() {
		t.Fatal("fresh message must be valid")
	}
	msg.Rows.Data[1] = 42
	if msg.Valid() {
		t.Fatal("mutated payload must fail its checksum")
	}
}

func TestFaultTransportDrop(t *testing.T) {
	tp := NewFaultTransport(NewChanTransport(testStages()),
		FaultConfig{Seed: 1, Default: FaultRates{Drop: 1}, Stats: &FaultStats{}})
	err := tp.Send(context.Background(), TransferKey{0, 0}, testTransfer, payload(1))
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("send = %v, want ErrDropped", err)
	}
}

func TestFaultTransportCorruptIsDetected(t *testing.T) {
	stats := &FaultStats{}
	tp := NewFaultTransport(NewChanTransport(testStages()),
		FaultConfig{Seed: 1, Default: FaultRates{Corrupt: 1}, Stats: stats})
	key := TransferKey{0, 0}
	orig := payload(7, 8)
	if err := tp.Send(context.Background(), key, testTransfer, orig); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("send = %v, want ErrCorrupt (sender NACK)", err)
	}
	// The original payload must be untouched (it will be retransmitted).
	if !orig.Valid() {
		t.Fatal("corruption mutated the sender's buffer")
	}
	if _, err := tp.Recv(context.Background(), key, testTransfer); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recv = %v, want ErrCorrupt (checksum mismatch)", err)
	}
	if stats.Corrupts.Load() != 1 {
		t.Fatalf("corrupts = %d, want 1", stats.Corrupts.Load())
	}
}

func TestFaultTransportDuplicateIsDeliveredTwice(t *testing.T) {
	tp := NewFaultTransport(NewChanTransport(testStages()),
		FaultConfig{Seed: 1, Default: FaultRates{Duplicate: 1}})
	key := TransferKey{0, 0}
	if err := tp.Send(context.Background(), key, testTransfer, payload(5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		msg, err := tp.Recv(context.Background(), key, testTransfer)
		if err != nil || msg.Rows.At(0, 0) != 5 {
			t.Fatalf("copy %d: %v %v", i, msg, err)
		}
	}
}

func TestFaultTransportPerClassRates(t *testing.T) {
	// Link 0->1 is "lossy" (always drops); everything else is clean.
	tp := NewFaultTransport(NewChanTransport([][]core.Transfer{{
		{Src: 0, Dst: 1}, {Src: 2, Dst: 3},
	}}), FaultConfig{
		Seed:     1,
		PerClass: map[string]FaultRates{"lossy": {Drop: 1}},
		Classify: func(src, dst int) string {
			if src == 0 && dst == 1 {
				return "lossy"
			}
			return "clean"
		},
	})
	if err := tp.Send(context.Background(), TransferKey{0, 0}, core.Transfer{Src: 0, Dst: 1}, payload(1)); !errors.Is(err, ErrDropped) {
		t.Fatalf("lossy link send = %v, want ErrDropped", err)
	}
	if err := tp.Send(context.Background(), TransferKey{0, 1}, core.Transfer{Src: 2, Dst: 3}, payload(1)); err != nil {
		t.Fatalf("clean link send = %v, want nil", err)
	}
}

// flakyTransport fails the first n sends with errs, then delegates.
type flakyTransport struct {
	Transport
	failures int
	err      error
}

func (f *flakyTransport) Send(ctx context.Context, key TransferKey, tr core.Transfer, msg Message) error {
	if f.failures > 0 {
		f.failures--
		return f.err
	}
	return f.Transport.Send(ctx, key, tr, msg)
}

func TestRetryTransportRecoversFromTransientDrops(t *testing.T) {
	stats := NewCommStats(2)
	inner := &flakyTransport{Transport: NewChanTransport(testStages()), failures: 3, err: ErrDropped}
	tp := NewRetryTransport(inner, RetryPolicy{MaxRetries: 5, BaseBackoff: time.Microsecond}, stats)
	key := TransferKey{0, 0}
	if err := tp.Send(context.Background(), key, testTransfer, payload(9)); err != nil {
		t.Fatal(err)
	}
	msg, err := tp.Recv(context.Background(), key, testTransfer)
	if err != nil || msg.Rows.At(0, 0) != 9 {
		t.Fatalf("recv after retries: %v %v", msg, err)
	}
	if got := stats.Retries(0); got != 3 {
		t.Fatalf("retries = %d, want 3", got)
	}
}

func TestRetryTransportExhaustsBudget(t *testing.T) {
	inner := &flakyTransport{Transport: NewChanTransport(testStages()), failures: 100, err: ErrDropped}
	tp := NewRetryTransport(inner, RetryPolicy{MaxRetries: 2, BaseBackoff: time.Microsecond}, nil)
	err := tp.Send(context.Background(), TransferKey{0, 0}, testTransfer, payload(1))
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("send = %v, want *TransportError", err)
	}
	if te.Op != "send" || te.Attempts != 3 || !errors.Is(te, ErrDropped) {
		t.Fatalf("unexpected TransportError: %+v", te)
	}
}

func TestRetryTransportRecvTimeout(t *testing.T) {
	stats := NewCommStats(2)
	tp := NewRetryTransport(NewChanTransport(testStages()),
		RetryPolicy{RecvTimeout: 20 * time.Millisecond}, stats)
	start := time.Now()
	_, err := tp.Recv(context.Background(), TransferKey{0, 0}, testTransfer)
	var te *TransportError
	if !errors.As(err, &te) || te.Op != "recv" {
		t.Fatalf("recv = %v, want recv *TransportError", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("recv timeout did not bound the wait")
	}
	if stats.Timeouts(1) != 1 {
		t.Fatalf("timeouts = %d, want 1 attributed to receiver", stats.Timeouts(1))
	}
}

func TestRetryTransportDiscardsCorruptCopies(t *testing.T) {
	// A corrupt copy followed by a clean retransmission: Recv must skip the
	// damaged copy and return the good one.
	base := NewChanTransport(testStages())
	key := TransferKey{0, 0}
	good := payload(11)
	bad := corruptCopy(good)
	if err := base.Send(context.Background(), key, testTransfer, bad); err != nil {
		t.Fatal(err)
	}
	if err := base.Send(context.Background(), key, testTransfer, good); err != nil {
		t.Fatal(err)
	}
	// Fault layer with zero rates still verifies checksums on Recv.
	tp := NewRetryTransport(NewFaultTransport(base, FaultConfig{}),
		RetryPolicy{RecvTimeout: time.Second}, nil)
	msg, err := tp.Recv(context.Background(), key, testTransfer)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Rows.At(0, 0) != 11 {
		t.Fatalf("got %v, want the clean retransmission", msg.Rows.At(0, 0))
	}
}

func TestCommStatsCountsBackwardCollectives(t *testing.T) {
	// With the counters behind the transport, backward allgathers are
	// accounted too (they previously bypassed CommStats entirely).
	rel, locals, plan := relayFixture(t)
	c, err := NewCluster(rel, locals, plan)
	if err != nil {
		t.Fatal(err)
	}
	c.Stats = NewCommStats(4)
	gradFull := []*tensor.Matrix{
		tensor.FromData(1, 1, []float32{0}),
		tensor.FromData(1, 1, []float32{0}),
		tensor.FromData(2, 1, []float32{0, 5}),
		tensor.FromData(2, 1, []float32{0, 7}),
	}
	if _, err := c.BackwardAllgather(gradFull); err != nil {
		t.Fatal(err)
	}
	if c.Stats.TotalBytes() == 0 {
		t.Fatal("backward transfers not accounted")
	}
	var recvMsgs int64
	for d := 0; d < 4; d++ {
		_, m := c.Stats.Received(d)
		recvMsgs += m
	}
	if recvMsgs != 3 {
		t.Fatalf("backward recv msgs = %d, want 3 (one per relay hop)", recvMsgs)
	}
}

func TestBackwardAllgatherValidatesInputs(t *testing.T) {
	rel, locals, plan := relayFixture(t)
	c, err := NewCluster(rel, locals, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Nil entry: used to panic dereferencing gradFull[0].Cols.
	if _, err := c.BackwardAllgather(make([]*tensor.Matrix, 4)); err == nil {
		t.Fatal("expected nil-input error")
	}
	// Inconsistent feature dims across GPUs.
	bad := []*tensor.Matrix{
		tensor.New(1, 1), tensor.New(1, 2), tensor.New(2, 1), tensor.New(2, 1),
	}
	if _, err := c.BackwardAllgather(bad); err == nil {
		t.Fatal("expected dimension-mismatch error")
	}
	// Wrong row count for a GPU's local graph.
	bad2 := []*tensor.Matrix{
		tensor.New(1, 1), tensor.New(1, 1), tensor.New(5, 1), tensor.New(2, 1),
	}
	if _, err := c.BackwardAllgather(bad2); err == nil {
		t.Fatal("expected row-count error")
	}
	// Allgather gets the same nil protection.
	if _, err := c.Allgather(make([]*tensor.Matrix, 4)); err == nil {
		t.Fatal("expected nil-input error on forward")
	}
}
