package runtime

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"dgcl/internal/core"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/tensor"
	"dgcl/internal/testutil"
)

// Equivalence battery for the compiled hot path (ISSUE 5, DESIGN.md §11).
// Three claims are checked:
//
//  1. The compiled routing programs are bit-identical to the legacy
//     map-based client loops they replaced. The legacy loops are preserved
//     below as test-local reference implementations and both paths run over
//     the full 50-triple property battery, forward and backward, with a
//     required diff of exactly zero — compilation reorders nothing, so not
//     even float32 rounding may differ.
//  2. Training epochs are bit-identical at any kernel worker count (the
//     one-writer-per-row argument), checked across 20 seeded configurations
//     with W=1 vs W=4: losses and final weights must match bit for bit.
//  3. Steady-state collectives allocate O(1) per client, never per vertex:
//     after one warm-up (program compile + buffer-pool fill), allocations
//     per operation stay far below the vertex count.

// legacyForwardAllgather runs the pre-compile forward client loops — the
// map-based vertexStore implementation this PR replaced — over a fresh
// channel transport. Kept verbatim (modulo test-local naming) as the
// reference the compiled path must reproduce bit for bit.
func legacyForwardAllgather(c *Cluster, local []*tensor.Matrix) ([]*tensor.Matrix, error) {
	cols := local[0].Cols
	tp := NewChanTransport(c.Plan.Stages)
	full := make([]*tensor.Matrix, c.K)
	errs := make([]error, c.K)
	var wg sync.WaitGroup
	for d := 0; d < c.K; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			full[d], errs[d] = legacyForwardClient(c, d, local[d], cols, tp)
		}(d)
	}
	wg.Wait()
	return full, collectClientErrors("legacy graphAllgather", errs)
}

func legacyForwardClient(c *Cluster, d int, local *tensor.Matrix, cols int, tp Transport) (*tensor.Matrix, error) {
	ctx := context.Background()
	ownerIndex := make(map[int32]int, len(c.Rel.Local[d]))
	for i, v := range c.Rel.Local[d] {
		ownerIndex[v] = i
	}
	received := make(map[int32][]float32)
	row := func(v int32) ([]float32, bool) {
		if i, ok := ownerIndex[v]; ok {
			return local.Row(i), true
		}
		r, ok := received[v]
		return r, ok
	}
	for si, st := range c.Plan.Stages {
		for ti, tr := range st {
			if tr.Src != d {
				continue
			}
			buf := tensor.New(len(tr.Vertices), cols)
			for i, v := range tr.Vertices {
				r, ok := row(v)
				if !ok {
					return nil, fmt.Errorf("legacy: GPU %d lacks vertex %d at stage %d", d, v, si+1)
				}
				copy(buf.Row(i), r)
			}
			if err := tp.Send(ctx, TransferKey{si, ti}, tr, NewMessage(buf)); err != nil {
				return nil, err
			}
		}
		for ti, tr := range st {
			if tr.Dst != d {
				continue
			}
			msg, err := tp.Recv(ctx, TransferKey{si, ti}, tr)
			if err != nil {
				return nil, err
			}
			for i, v := range tr.Vertices {
				r := make([]float32, cols)
				copy(r, msg.Rows.Row(i))
				received[v] = r
			}
		}
	}
	lg := c.Locals[d]
	full := tensor.New(lg.NumLocal+lg.NumRemote, cols)
	for i := 0; i < lg.NumLocal; i++ {
		copy(full.Row(i), local.Row(i))
	}
	for i := 0; i < lg.NumRemote; i++ {
		v := lg.GlobalID[lg.NumLocal+i]
		r, ok := received[v]
		if !ok {
			return nil, fmt.Errorf("legacy: GPU %d never received remote vertex %d", d, v)
		}
		copy(full.Row(lg.NumLocal+i), r)
	}
	return full, nil
}

// legacyBackwardAllgather runs the pre-compile backward client loops (map
// accumulators, per-stage BackwardSchedule flattening) over a fresh channel
// transport.
func legacyBackwardAllgather(c *Cluster, gradFull []*tensor.Matrix) ([]*tensor.Matrix, error) {
	cols := gradFull[0].Cols
	sched := c.Plan.BackwardSchedule(c.NonAtomic)
	flat := make([][]core.Transfer, 0, len(sched))
	for _, stage := range sched {
		var all []core.Transfer
		for _, sub := range stage {
			all = append(all, sub...)
		}
		flat = append(flat, all)
	}
	tp := NewChanTransport(flat)
	out := make([]*tensor.Matrix, c.K)
	errs := make([]error, c.K)
	var wg sync.WaitGroup
	for d := 0; d < c.K; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			out[d], errs[d] = legacyBackwardClient(c, d, gradFull[d], cols, flat, tp)
		}(d)
	}
	wg.Wait()
	return out, collectClientErrors("legacy backward graphAllgather", errs)
}

func legacyBackwardClient(c *Cluster, d int, gradFull *tensor.Matrix, cols int, flat [][]core.Transfer, tp Transport) (*tensor.Matrix, error) {
	ctx := context.Background()
	lg := c.Locals[d]
	accum := make(map[int32][]float32)
	for i := 0; i < lg.NumRemote; i++ {
		v := lg.GlobalID[lg.NumLocal+i]
		r := make([]float32, cols)
		copy(r, gradFull.Row(lg.NumLocal+i))
		accum[v] = r
	}
	grow := func(v int32) []float32 {
		r, ok := accum[v]
		if !ok {
			r = make([]float32, cols)
			accum[v] = r
		}
		return r
	}
	own := tensor.New(lg.NumLocal, cols)
	for i := 0; i < lg.NumLocal; i++ {
		copy(own.Row(i), gradFull.Row(i))
	}
	ownIndex := make(map[int32]int, lg.NumLocal)
	for i := 0; i < lg.NumLocal; i++ {
		ownIndex[lg.GlobalID[i]] = i
	}
	for si, st := range flat {
		for ti, tr := range st {
			if tr.Src != d {
				continue
			}
			buf := tensor.New(len(tr.Vertices), cols)
			for i, v := range tr.Vertices {
				copy(buf.Row(i), grow(v))
			}
			if err := tp.Send(ctx, TransferKey{si, ti}, tr, NewMessage(buf)); err != nil {
				return nil, err
			}
		}
		for ti, tr := range st {
			if tr.Dst != d {
				continue
			}
			msg, err := tp.Recv(ctx, TransferKey{si, ti}, tr)
			if err != nil {
				return nil, err
			}
			for i, v := range tr.Vertices {
				src := msg.Rows.Row(i)
				if oi, ok := ownIndex[v]; ok {
					dst := own.Row(oi)
					for j, x := range src {
						dst[j] += x
					}
				} else {
					dst := grow(v)
					for j, x := range src {
						dst[j] += x
					}
				}
			}
		}
	}
	return own, nil
}

// TestCompiledForwardMatchesLegacyBitwise runs the compiled forward path and
// the legacy map-based loops over the 50-triple battery and requires exactly
// zero difference: the compile walk mirrors the legacy execution order, so
// the outputs must be the same bits, not merely close.
func TestCompiledForwardMatchesLegacyBitwise(t *testing.T) {
	for _, pc := range propertyCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			t.Parallel()
			c, rel := buildCase(t, pc)
			local := make([]*tensor.Matrix, pc.k)
			for d := 0; d < pc.k; d++ {
				local[d] = tensor.New(len(rel.Local[d]), pc.cols).FillRandom(pc.seed + int64(d))
			}
			got, err := c.Allgather(local)
			if err != nil {
				t.Fatal(err)
			}
			want, err := legacyForwardAllgather(c, local)
			if err != nil {
				t.Fatal(err)
			}
			for d := 0; d < pc.k; d++ {
				if diff := tensor.MaxAbsDiff(got[d], want[d]); diff != 0 {
					t.Fatalf("GPU %d: compiled forward differs from legacy loops by %v", d, diff)
				}
			}
		})
	}
}

// TestCompiledBackwardMatchesLegacyBitwise is the backward half: relay
// accumulation reorders nothing between the two implementations (same stage,
// transfer, and vertex order), so gradients must match bit for bit even
// though float addition is non-associative.
func TestCompiledBackwardMatchesLegacyBitwise(t *testing.T) {
	for _, pc := range propertyCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			t.Parallel()
			c, _ := buildCase(t, pc)
			c.NonAtomic = pc.seed%2 == 0
			gradFull := make([]*tensor.Matrix, pc.k)
			for d := 0; d < pc.k; d++ {
				lg := c.Locals[d]
				gradFull[d] = tensor.New(lg.NumLocal+lg.NumRemote, pc.cols).FillRandom(pc.seed + 100 + int64(d))
			}
			got, err := c.BackwardAllgather(gradFull)
			if err != nil {
				t.Fatal(err)
			}
			want, err := legacyBackwardAllgather(c, gradFull)
			if err != nil {
				t.Fatal(err)
			}
			for d := 0; d < pc.k; d++ {
				if diff := tensor.MaxAbsDiff(got[d], want[d]); diff != 0 {
					t.Fatalf("GPU %d: compiled backward differs from legacy loops by %v", d, diff)
				}
			}
		})
	}
}

// runSeededTraining builds a fresh trainer for one seed and runs three
// epochs under the given kernel worker count, returning the per-epoch losses
// and the final replica-0 model.
func runSeededTraining(t *testing.T, seed int64, workers int) ([]float64, *gnn.Model) {
	t.Helper()
	return runSeededTrainingOverlap(t, seed, workers, OverlapConfig{})
}

// runSeededTrainingOverlap is runSeededTraining with an execution-policy
// override: the overlapped-executor bit-identity battery (overlap_test.go)
// reruns the same seeds under chunked, pipelined execution.
func runSeededTrainingOverlap(t *testing.T, seed int64, workers int, ov OverlapConfig) ([]float64, *gnn.Model) {
	t.Helper()
	prev := tensor.SetParallelism(workers)
	defer tensor.SetParallelism(prev)
	ks := []int{2, 3, 4, 6, 8}
	k := ks[seed%int64(len(ks))]
	cols := 8
	pc := propertyCase{
		name:    fmt.Sprintf("train/seed%d", seed),
		g:       graph.CommunityGraph(150+10*int(seed%7), 6, 3, 0.8, seed),
		k:       k,
		seed:    seed,
		planner: "spst",
		cols:    cols,
	}
	c, _ := buildCase(t, pc)
	c.Overlap = ov
	verts := pc.g.NumVertices()
	model := gnn.NewModel(gnn.GCN, cols, cols/2, 2, seed)
	features := tensor.New(verts, cols).FillRandom(seed + 1)
	targets := tensor.New(verts, cols/2).FillRandom(seed + 2)
	tr, err := NewTrainer(c, model, features, targets)
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	for e := 0; e < 3; e++ {
		loss, err := tr.Epoch()
		if err != nil {
			t.Fatal(err)
		}
		tr.Step(0.05)
		losses = append(losses, loss)
	}
	return losses, tr.Models[0]
}

// TestEpochBitIdenticalAcrossKernelWorkers trains the same seeded
// configuration twice — serial kernels vs four workers — and requires the
// losses and every final weight to agree bit for bit. This is the acceptance
// check for the one-writer-per-row determinism argument: parallelism may
// only change wall-clock time, never a single bit of the result.
func TestEpochBitIdenticalAcrossKernelWorkers(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			l1, m1 := runSeededTraining(t, seed, 1)
			l4, m4 := runSeededTraining(t, seed, 4)
			for e := range l1 {
				if math.Float64bits(l1[e]) != math.Float64bits(l4[e]) {
					t.Fatalf("epoch %d loss diverges: W=1 %v, W=4 %v", e, l1[e], l4[e])
				}
			}
			for li, layer := range m1.Layers {
				p4 := m4.Layers[li].Params()
				for pi, p1 := range layer.Params() {
					for j := range p1.Data {
						if math.Float32bits(p1.Data[j]) != math.Float32bits(p4[pi].Data[j]) {
							t.Fatalf("layer %d param %d element %d diverges: W=1 %v, W=4 %v",
								li, pi, j, p1.Data[j], p4[pi].Data[j])
						}
					}
				}
			}
		})
	}
}

// allocCluster builds the k=4 benchmark workload used by the allocation
// budgets: 1200 vertices means a per-vertex allocation anywhere in the hot
// path blows the budget by an order of magnitude.
func allocCluster(t *testing.T) (*Cluster, []*tensor.Matrix, []*tensor.Matrix) {
	t.Helper()
	pc := propertyCase{
		name: "alloc", g: graph.CommunityGraph(1200, 8, 4, 0.8, 1),
		k: 4, seed: 1, planner: "spst", cols: 32,
	}
	c, rel := buildCase(t, pc)
	local := make([]*tensor.Matrix, pc.k)
	gradFull := make([]*tensor.Matrix, pc.k)
	for d := 0; d < pc.k; d++ {
		local[d] = tensor.New(len(rel.Local[d]), pc.cols).FillRandom(int64(d) + 1)
		lg := c.Locals[d]
		gradFull[d] = tensor.New(lg.NumLocal+lg.NumRemote, pc.cols).FillRandom(int64(d) + 50)
	}
	return c, local, gradFull
}

// TestAllgatherSteadyStateAllocs pins the steady-state allocation budget of
// the forward collective: after one warm-up collective (program compile,
// transport cache, buffer-pool fill), each Allgather allocates a small
// per-client constant — the result matrices, goroutines, and context
// plumbing — and nothing per vertex or per transfer row.
func TestAllgatherSteadyStateAllocs(t *testing.T) {
	c, local, _ := allocCluster(t)
	if _, err := c.Allgather(local); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := c.Allgather(local); err != nil {
			t.Fatal(err)
		}
	})
	// The race tier still exercises the steady-state path above, but race
	// instrumentation allocates shadow state so the count is asserted only
	// in plain builds.
	if testutil.RaceEnabled {
		t.Skipf("allocation count (%.0f with -race instrumentation) asserted in non-race builds only", allocs)
	}
	// The steady state measures ~25 allocs; 200 leaves headroom for runtime
	// noise while staying two orders of magnitude under one-per-vertex.
	if allocs > 200 {
		t.Fatalf("forward allgather allocates %.0f objects per op in steady state (budget 200)", allocs)
	}
}

// TestBackwardAllgatherSteadyStateAllocs is the backward twin of the
// forward budget test.
func TestBackwardAllgatherSteadyStateAllocs(t *testing.T) {
	c, _, gradFull := allocCluster(t)
	if _, err := c.BackwardAllgather(gradFull); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := c.BackwardAllgather(gradFull); err != nil {
			t.Fatal(err)
		}
	})
	if testutil.RaceEnabled {
		t.Skipf("allocation count (%.0f with -race instrumentation) asserted in non-race builds only", allocs)
	}
	if allocs > 200 {
		t.Fatalf("backward allgather allocates %.0f objects per op in steady state (budget 200)", allocs)
	}
}

// TestEpochSteadyStateAllocs bounds the whole training epoch: layer
// activations are per-epoch allocations by design, but the budget (2000)
// still sits far below the pre-compile implementation's per-vertex behavior
// (~38k allocs on the benchmark workload) and below one alloc per vertex.
func TestEpochSteadyStateAllocs(t *testing.T) {
	c, _, _ := allocCluster(t)
	model := gnn.NewModel(gnn.GCN, 32, 16, 2, 7)
	features := tensor.New(1200, 32).FillRandom(11)
	targets := tensor.New(1200, 16).FillRandom(12)
	tr, err := NewTrainer(c, model, features, targets)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Epoch(); err != nil {
		t.Fatal(err)
	}
	tr.Step(0.01)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := tr.Epoch(); err != nil {
			t.Fatal(err)
		}
		tr.Step(0.01)
	})
	if testutil.RaceEnabled {
		t.Skipf("allocation count (%.0f with -race instrumentation) asserted in non-race builds only", allocs)
	}
	if allocs > 2000 {
		t.Fatalf("epoch allocates %.0f objects per op in steady state (budget 2000)", allocs)
	}
}
