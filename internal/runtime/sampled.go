package runtime

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"dgcl/internal/collective"
	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/tensor"
	"dgcl/internal/topology"
)

// Distributed neighbor-sampled training — the demonstration of §3's claim
// that DGCL's communication planning "can be easily generalized to more
// diverse GNN training strategies". Each GPU trains a minibatch sampled
// around its own seed vertices; the only communication is fetching the
// layer-0 features of sampled remote vertices, and that irregular per-batch
// exchange is planned with the same SPST machinery as full-graph training
// (the communication relation is just smaller and changes every batch).
type SampledTrainer struct {
	Topo     *topology.Topology
	G        *graph.Graph
	Owner    []int32 // vertex -> GPU (from the partition)
	Local    [][]int32
	Models   []*gnn.Model
	Features []*tensor.Matrix // per-GPU owned feature rows (Local order)
	Targets  []*tensor.Matrix
	Sampler  *gnn.NeighborSampler
	Seed     int64
}

// NewSampledTrainer shards features/targets by the ownership in owner (one
// entry per vertex, values in [0, topo.NumGPUs())).
func NewSampledTrainer(topo *topology.Topology, g *graph.Graph, owner []int32,
	model *gnn.Model, features, targets *tensor.Matrix,
	sampler *gnn.NeighborSampler, seed int64) (*SampledTrainer, error) {
	k := topo.NumGPUs()
	if len(owner) != g.NumVertices() {
		return nil, fmt.Errorf("runtime: %d owners for %d vertices", len(owner), g.NumVertices())
	}
	st := &SampledTrainer{Topo: topo, G: g, Owner: owner, Sampler: sampler, Seed: seed}
	st.Local = make([][]int32, k)
	for v, d := range owner {
		if d < 0 || int(d) >= k {
			return nil, fmt.Errorf("runtime: vertex %d owned by invalid GPU %d", v, d)
		}
		st.Local[d] = append(st.Local[d], int32(v))
	}
	for d := 0; d < k; d++ {
		st.Models = append(st.Models, model.Clone())
		st.Features = append(st.Features, tensor.GatherRows(features, st.Local[d]))
		st.Targets = append(st.Targets, tensor.GatherRows(targets, st.Local[d]))
	}
	return st, nil
}

// Step trains one round with a background context; see StepContext.
func (st *SampledTrainer) Step(seedBatches [][]int32) (float64, *core.Plan, error) {
	return st.StepContext(context.Background(), seedBatches)
}

// StepContext trains one round: every GPU samples a minibatch around its
// seed slice, the remote layer-0 features of all batches are fetched over
// one SPST-planned exchange, each GPU runs its sampled forward+backward, and
// gradients are allreduced. It returns the summed batch loss and the plan
// used for the fetch (for inspection). The feature fetch observes ctx.
func (st *SampledTrainer) StepContext(ctx context.Context, seedBatches [][]int32) (float64, *core.Plan, error) {
	k := st.Topo.NumGPUs()
	if len(seedBatches) != k {
		return 0, nil, fmt.Errorf("runtime: %d seed batches for %d GPUs", len(seedBatches), k)
	}
	// Sample every GPU's blocks (sampling reads only graph structure, which
	// every worker holds for its halo; here the shared CSR stands in for the
	// distributed graph store samplers use in practice).
	batches := make([]*gnn.MiniBatch, k)
	for d := 0; d < k; d++ {
		mb, err := st.Sampler.Sample(st.G, seedBatches[d])
		if err != nil {
			return 0, nil, fmt.Errorf("runtime: sampling GPU %d: %w", d, err)
		}
		batches[d] = mb
	}
	// Build the per-batch communication relation: GPU d needs the layer-0
	// features of every sampled src it does not own.
	rel := &comm.Relation{K: k, Owner: st.Owner,
		Local: st.Local, Remote: make([][]int32, k), Send: make([][][]int32, k)}
	for i := range rel.Send {
		rel.Send[i] = make([][]int32, k)
	}
	for d := 0; d < k; d++ {
		need := map[int32]bool{}
		for _, v := range batches[d].Blocks[0].Srcs {
			if int(st.Owner[v]) != d {
				need[v] = true
			}
		}
		rem := make([]int32, 0, len(need))
		for v := range need {
			rem = append(rem, v)
		}
		sort.Slice(rem, func(i, j int) bool { return rem[i] < rem[j] })
		rel.Remote[d] = rem
		for _, v := range rem {
			src := int(st.Owner[v])
			rel.Send[src][d] = append(rel.Send[src][d], v)
		}
	}
	cols := st.Features[0].Cols
	plan, _, err := core.PlanSPST(rel, st.Topo, int64(cols)*4, core.SPSTOptions{Seed: st.Seed})
	if err != nil {
		return 0, nil, err
	}
	// Execute the fetch with the standard cluster; the "local graphs" here
	// only carry row ordering (locals then remotes), no edges.
	locals := make([]*comm.LocalGraph, k)
	for d := 0; d < k; d++ {
		ids := make([]int32, 0, len(st.Local[d])+len(rel.Remote[d]))
		ids = append(ids, st.Local[d]...)
		ids = append(ids, rel.Remote[d]...)
		empty, err := graph.FromEdges(len(ids), nil, false)
		if err != nil {
			return 0, nil, err
		}
		locals[d] = &comm.LocalGraph{GPU: d, NumLocal: len(st.Local[d]),
			NumRemote: len(rel.Remote[d]), G: empty, GlobalID: ids}
	}
	clu, err := NewCluster(rel, locals, plan)
	if err != nil {
		return 0, nil, err
	}
	full, err := clu.AllgatherContext(ctx, st.Features)
	if err != nil {
		return 0, nil, err
	}
	// Per-GPU minibatch epochs, concurrently.
	losses := make([]float64, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for d := 0; d < k; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			lg := locals[d]
			rowOf := make(map[int32]int, len(lg.GlobalID))
			for i, v := range lg.GlobalID {
				rowOf[v] = i
			}
			mb := batches[d]
			h0 := tensor.New(len(mb.Blocks[0].Srcs), cols)
			for i, v := range mb.Blocks[0].Srcs {
				ri, ok := rowOf[v]
				if !ok {
					errs[d] = fmt.Errorf("runtime: GPU %d missing feature row for vertex %d", d, v)
					return
				}
				copy(h0.Row(i), full[d].Row(ri))
			}
			// Targets for the seeds, gathered from this GPU's shard (seeds
			// are its own vertices).
			bt := tensor.New(len(mb.Seeds), st.Targets[d].Cols)
			localIdx := make(map[int32]int, len(st.Local[d]))
			for i, v := range st.Local[d] {
				localIdx[v] = i
			}
			for i, s := range mb.Seeds {
				li, ok := localIdx[s]
				if !ok {
					errs[d] = fmt.Errorf("runtime: GPU %d asked to train foreign seed %d", d, s)
					return
				}
				copy(bt.Row(i), st.Targets[d].Row(li))
			}
			losses[d], errs[d] = gnn.MinibatchEpochFrom(st.Models[d], mb, h0, bt)
		}(d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}
	// Gradient allreduce, then the caller steps the replicas.
	bufs := make([]*tensor.Matrix, k)
	for l := range st.Models[0].Layers {
		for p := range st.Models[0].Layers[l].Grads() {
			for d := 0; d < k; d++ {
				bufs[d] = st.Models[d].Layers[l].Grads()[p]
			}
			if err := collective.RingAllreduce(bufs); err != nil {
				return 0, nil, err
			}
		}
	}
	return tensor.Sum64(losses), plan, nil
}

// Step applies the optimizer step on every replica.
func (st *SampledTrainer) Apply(lr float32) {
	for _, m := range st.Models {
		m.Step(lr)
	}
}
