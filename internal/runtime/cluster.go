// Package runtime executes communication plans with real data movement: one
// goroutine per DGCL client (GPU), coordinated the way §6.1 describes —
// decentralized, with per-peer buffers and done signals instead of a master
// round-trip per stage. The forward graphAllgather delivers remote vertex
// embeddings to every client (including multi-hop relays); the backward
// allgather routes gradients down the same trees in reverse, accumulating at
// relays, following the (non-)atomic sub-stage schedule. The runtime is the
// correctness half of the reproduction; timing comes from package simnet.
package runtime

import (
	"fmt"
	"sync"

	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/tensor"
)

// Cluster binds a communication relation, its per-GPU local graphs, and a
// staged plan into an executable ensemble.
type Cluster struct {
	K      int
	Rel    *comm.Relation
	Locals []*comm.LocalGraph
	Plan   *core.Plan
	// NonAtomic selects the §6.2 sub-stage schedule for backward passes.
	NonAtomic bool
	// Stats, when non-nil, accumulates actual per-GPU transfer counters.
	Stats *CommStats
}

// NewCluster validates the plan against the relation and builds the cluster.
func NewCluster(rel *comm.Relation, locals []*comm.LocalGraph, plan *core.Plan) (*Cluster, error) {
	if len(locals) != rel.K {
		return nil, fmt.Errorf("runtime: %d local graphs for %d GPUs", len(locals), rel.K)
	}
	if err := plan.Validate(rel); err != nil {
		return nil, fmt.Errorf("runtime: invalid plan: %w", err)
	}
	return &Cluster{K: rel.K, Rel: rel, Locals: locals, Plan: plan, NonAtomic: true}, nil
}

// message is one transfer's payload: the embedding rows for the transfer's
// vertex list, in list order. The buffered channel carrying it plays the
// role of the peer buffer plus done flag of §6.1: the send is the sender
// setting its done flag after filling the buffer, the receive is the peer
// retrieving the data when it observes the flag.
type message struct {
	rows *tensor.Matrix
}

// Allgather performs the forward graphAllgather: local[d] holds GPU d's
// owned embedding rows (in Rel.Local[d] order, cols = feature dim); the
// result full[d] has Locals[d].NumLocal+NumRemote rows in local-graph order,
// ready for single-GPU layer execution. It runs all clients concurrently.
func (c *Cluster) Allgather(local []*tensor.Matrix) ([]*tensor.Matrix, error) {
	if len(local) != c.K {
		return nil, fmt.Errorf("runtime: %d inputs for %d GPUs", len(local), c.K)
	}
	cols := 0
	for d, m := range local {
		if m.Rows != len(c.Rel.Local[d]) {
			return nil, fmt.Errorf("runtime: GPU %d input has %d rows, owns %d vertices", d, m.Rows, len(c.Rel.Local[d]))
		}
		if cols == 0 {
			cols = m.Cols
		} else if m.Cols != cols {
			return nil, fmt.Errorf("runtime: inconsistent feature dims (%d vs %d)", m.Cols, cols)
		}
	}
	chans := c.makeChannels(c.Plan.Stages)
	full := make([]*tensor.Matrix, c.K)
	var wg sync.WaitGroup
	errs := make([]error, c.K)
	for d := 0; d < c.K; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			full[d], errs[d] = c.runForwardClient(d, local[d], cols, chans)
		}(d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return full, nil
}

// makeChannels builds one buffered channel per transfer of each stage; the
// unique sender never blocks, so stage execution cannot deadlock.
func (c *Cluster) makeChannels(stages [][]core.Transfer) [][]chan message {
	out := make([][]chan message, len(stages))
	for si, st := range stages {
		out[si] = make([]chan message, len(st))
		for ti := range st {
			out[si][ti] = make(chan message, 1)
		}
	}
	return out
}

// vertexStore resolves a client's view of vertex embeddings during an
// allgather: rows it owns, rows delivered for its own use, and rows held
// only for relaying.
type vertexStore struct {
	ownerIndex map[int32]int // global id -> row in the owned matrix
	owned      *tensor.Matrix
	received   map[int32][]float32
}

func newVertexStore(ownedIDs []int32, owned *tensor.Matrix) *vertexStore {
	idx := make(map[int32]int, len(ownedIDs))
	for i, v := range ownedIDs {
		idx[v] = i
	}
	return &vertexStore{ownerIndex: idx, owned: owned, received: make(map[int32][]float32)}
}

func (vs *vertexStore) row(v int32) ([]float32, bool) {
	if i, ok := vs.ownerIndex[v]; ok {
		return vs.owned.Row(i), true
	}
	r, ok := vs.received[v]
	return r, ok
}

func (c *Cluster) runForwardClient(d int, local *tensor.Matrix, cols int, chans [][]chan message) (*tensor.Matrix, error) {
	store := newVertexStore(c.Rel.Local[d], local)
	for si, st := range c.Plan.Stages {
		// Send phase: fill peer buffers and set done flags.
		for ti, tr := range st {
			if tr.Src != d {
				continue
			}
			buf := tensor.New(len(tr.Vertices), cols)
			var relayed int64
			for i, v := range tr.Vertices {
				row, ok := store.row(v)
				if !ok {
					return nil, fmt.Errorf("runtime: GPU %d lacks vertex %d at stage %d", d, v, si+1)
				}
				copy(buf.Row(i), row)
				if _, owned := store.ownerIndex[v]; !owned {
					relayed += int64(cols) * 4
				}
			}
			if c.Stats != nil {
				c.Stats.sentBytes[d].Add(int64(len(buf.Data)) * 4)
				c.Stats.sentMsgs[d].Add(1)
				c.Stats.relayedBytes[d].Add(relayed)
			}
			chans[si][ti] <- message{rows: buf}
		}
		// Receive phase: wait for each peer's done flag and retrieve.
		for ti, tr := range st {
			if tr.Dst != d {
				continue
			}
			msg := <-chans[si][ti]
			if c.Stats != nil {
				c.Stats.recvBytes[d].Add(int64(len(msg.rows.Data)) * 4)
				c.Stats.recvMsgs[d].Add(1)
			}
			for i, v := range tr.Vertices {
				row := make([]float32, cols)
				copy(row, msg.rows.Row(i))
				store.received[v] = row
			}
		}
	}
	// Assemble the local-graph-ordered output.
	lg := c.Locals[d]
	full := tensor.New(lg.NumLocal+lg.NumRemote, cols)
	for i := 0; i < lg.NumLocal; i++ {
		copy(full.Row(i), local.Row(i))
	}
	for i := 0; i < lg.NumRemote; i++ {
		v := lg.GlobalID[lg.NumLocal+i]
		row, ok := store.received[v]
		if !ok {
			return nil, fmt.Errorf("runtime: GPU %d never received remote vertex %d", d, v)
		}
		copy(full.Row(lg.NumLocal+i), row)
	}
	return full, nil
}

// BackwardAllgather routes gradients back along the plan's trees: gradFull[d]
// has one row per local-graph vertex of GPU d (locals then remotes, the
// shape layers' Backward produces). The result grad[d] has one row per owned
// vertex of GPU d: its own local-row gradients plus every gradient
// contribution received from GPUs that consumed (or relayed) its vertices.
func (c *Cluster) BackwardAllgather(gradFull []*tensor.Matrix) ([]*tensor.Matrix, error) {
	if len(gradFull) != c.K {
		return nil, fmt.Errorf("runtime: %d inputs for %d GPUs", len(gradFull), c.K)
	}
	cols := gradFull[0].Cols
	sched := c.Plan.BackwardSchedule(c.NonAtomic)
	// Flatten sub-stages into channel-indexed stages.
	flat := make([][]core.Transfer, 0, len(sched))
	for _, stage := range sched {
		var all []core.Transfer
		for _, sub := range stage {
			all = append(all, sub...)
		}
		flat = append(flat, all)
	}
	chans := c.makeChannels(flat)
	out := make([]*tensor.Matrix, c.K)
	errs := make([]error, c.K)
	var wg sync.WaitGroup
	for d := 0; d < c.K; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			out[d], errs[d] = c.runBackwardClient(d, gradFull[d], cols, flat, chans)
		}(d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (c *Cluster) runBackwardClient(d int, gradFull *tensor.Matrix, cols int, flat [][]core.Transfer, chans [][]chan message) (*tensor.Matrix, error) {
	lg := c.Locals[d]
	if gradFull.Rows != lg.NumLocal+lg.NumRemote {
		return nil, fmt.Errorf("runtime: GPU %d gradient has %d rows, local graph has %d", d, gradFull.Rows, lg.NumLocal+lg.NumRemote)
	}
	// accum holds this client's running gradient for every non-owned vertex
	// it touched: its own consumer contribution (remote rows of gradFull)
	// plus anything received from tree children. Relay-only vertices start
	// at zero.
	accum := make(map[int32][]float32)
	for i := 0; i < lg.NumRemote; i++ {
		v := lg.GlobalID[lg.NumLocal+i]
		row := make([]float32, cols)
		copy(row, gradFull.Row(lg.NumLocal+i))
		accum[v] = row
	}
	grow := func(v int32) []float32 {
		r, ok := accum[v]
		if !ok {
			r = make([]float32, cols)
			accum[v] = r
		}
		return r
	}
	// Owned-vertex accumulator starts from the local rows of gradFull.
	own := tensor.New(lg.NumLocal, cols)
	for i := 0; i < lg.NumLocal; i++ {
		copy(own.Row(i), gradFull.Row(i))
	}
	ownIndex := make(map[int32]int, lg.NumLocal)
	for i := 0; i < lg.NumLocal; i++ {
		ownIndex[lg.GlobalID[i]] = i
	}
	for si, st := range flat {
		// Send first within a backward stage: tree edges at different depths
		// land in different backward stages, so a stage's sends only carry
		// gradients accumulated in earlier stages — never data arriving in
		// this stage's receives. Sending first therefore preserves both
		// correctness and deadlock freedom, exactly as in forward.
		for ti, tr := range st {
			if tr.Src != d {
				continue
			}
			buf := tensor.New(len(tr.Vertices), cols)
			for i, v := range tr.Vertices {
				copy(buf.Row(i), grow(v))
			}
			chans[si][ti] <- message{rows: buf}
		}
		for ti, tr := range st {
			if tr.Dst != d {
				continue
			}
			msg := <-chans[si][ti]
			for i, v := range tr.Vertices {
				src := msg.rows.Row(i)
				if oi, ok := ownIndex[v]; ok {
					dst := own.Row(oi)
					for j, x := range src {
						dst[j] += x
					}
				} else {
					dst := grow(v)
					for j, x := range src {
						dst[j] += x
					}
				}
			}
		}
	}
	return own, nil
}
