// Package runtime executes communication plans with real data movement: one
// goroutine per DGCL client (GPU), coordinated the way §6.1 describes —
// decentralized, with per-peer buffers and done signals instead of a master
// round-trip per stage. The forward graphAllgather delivers remote vertex
// embeddings to every client (including multi-hop relays); the backward
// allgather routes gradients down the same trees in reverse, accumulating at
// relays, following the (non-)atomic sub-stage schedule. All data movement
// goes through the Transport interface (transport.go): the default in-memory
// channel transport, optionally wrapped with fault injection and
// retry/timeout decorators. The runtime is the correctness half of the
// reproduction; timing comes from package simnet.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/tensor"
)

// Cluster binds a communication relation, its per-GPU local graphs, and a
// staged plan into an executable ensemble.
type Cluster struct {
	K      int
	Rel    *comm.Relation
	Locals []*comm.LocalGraph
	Plan   *core.Plan
	// NonAtomic selects the §6.2 sub-stage schedule for backward passes.
	NonAtomic bool
	// Stats, when non-nil, accumulates actual per-GPU transfer counters
	// (behind the transport, so forward and backward collectives both
	// count).
	Stats *CommStats
	// Transport overrides the base transport (default: in-memory channels).
	Transport TransportFactory
	// Provider, when non-nil, supplies the base transport instead (it wins
	// over Transport). Providers keep long-lived state across collectives
	// (pooled sockets) and route by external device id, so they survive
	// Degrade rebuilds.
	Provider TransportProvider
	// Ranks, when non-nil, restricts execution to those client indices: in a
	// multi-process run each process hosts a subset of the clients and the
	// wire transport carries the cross-process transfers. Nil means all K
	// clients run locally.
	Ranks []int
	// Faults, when non-nil, wraps the base transport with seeded fault
	// injection. Pair it with Retry so injected failures are retried.
	Faults *FaultConfig
	// Retry, when non-nil, wraps the transport with the retry/timeout
	// decorator: lost messages surface as structured per-GPU errors within
	// the policy's deadlines instead of hanging the collective.
	Retry *RetryPolicy
	// Timeout, when positive, bounds each collective end to end (applied as
	// a context deadline when the caller's context has none).
	Timeout time.Duration
	// Crash, when non-nil, injects/propagates fail-stop device failures:
	// transfers touching a down device fail fast with ErrDeviceDown and the
	// collective aborts instead of running out its deadline.
	Crash *CrashTracker
	// Health, when non-nil, grades every collective and converts repeated
	// deadline failures or explicit down evidence into per-device verdicts
	// (surfaced via CollectiveError.Down).
	Health *HealthTracker
	// DeviceIDs maps client index -> external device id. Nil means the
	// identity mapping; a degraded cluster rebuilt over survivors sets it so
	// crash schedules and down verdicts keep using the original numbering.
	DeviceIDs []int
	// Overlap configures chunked, pipelined execution of the compiled
	// routing programs (overlap.go). The zero value keeps the serial
	// executor and the unchunked layout.
	Overlap OverlapConfig

	// Compiled routing programs (program.go), built lazily on first use and
	// reused by every subsequent collective. The backward program depends on
	// the NonAtomic setting, and both depend on the chunking granularity, so
	// the values they were compiled for are recorded.
	progMu       sync.Mutex
	fwdProg      *routingProgram
	bwdProg      *routingProgram
	bwdNonAtomic bool
	fwdChunk     int
	bwdChunk     int

	// pool recycles transfer payloads and relay arenas across collectives
	// (pool.go): steady-state epochs allocate O(1) per transfer instead of
	// O(vertices).
	pool bufPool
}

// ActiveRanks returns the client indices this cluster executes locally: all
// K unless a worker-mode subset is installed via Ranks. Callers must not
// mutate the result.
func (c *Cluster) ActiveRanks() []int {
	if c.Ranks != nil {
		return c.Ranks
	}
	all := make([]int, c.K)
	for d := range all {
		all[d] = d
	}
	return all
}

// eachActive runs fn for every locally-executed client index.
func (c *Cluster) eachActive(fn func(d int)) {
	if c.Ranks == nil {
		for d := 0; d < c.K; d++ {
			fn(d)
		}
		return
	}
	for _, d := range c.Ranks {
		fn(d)
	}
}

// DeviceID returns the external id of client index d (identity when no
// mapping is installed).
func (c *Cluster) DeviceID(d int) int {
	if c.DeviceIDs == nil {
		return d
	}
	return c.DeviceIDs[d]
}

// NewCluster validates the plan against the relation and builds the cluster.
func NewCluster(rel *comm.Relation, locals []*comm.LocalGraph, plan *core.Plan) (*Cluster, error) {
	if len(locals) != rel.K {
		return nil, fmt.Errorf("runtime: %d local graphs for %d GPUs", len(locals), rel.K)
	}
	if err := plan.Validate(rel); err != nil {
		return nil, fmt.Errorf("runtime: invalid plan: %w", err)
	}
	return &Cluster{K: rel.K, Rel: rel, Locals: locals, Plan: plan, NonAtomic: true}, nil
}

// newTransport composes the transport stack for one collective: base
// (channels) -> fault injection -> fail-stop crash -> retry/timeout -> stats
// accounting. Crash sits below retry so ErrDeviceDown (not retryable) cuts
// straight through to the client, and above faults so dead links stop
// rolling message faults.
func (c *Cluster) newTransport(stages [][]core.Transfer, relayAware bool) Transport {
	var t Transport
	if c.Provider != nil {
		t = c.Provider.CollectiveTransport(stages, c.DeviceIDs)
	} else if c.Transport != nil {
		t = c.Transport(stages)
	} else {
		t = NewChanTransport(stages)
	}
	if c.Faults != nil {
		t = NewFaultTransport(t, *c.Faults)
	}
	if c.Crash != nil {
		t = NewCrashTransport(t, c.Crash, c.DeviceIDs)
	}
	if c.Retry != nil {
		t = NewRetryTransport(t, *c.Retry, c.Stats)
	}
	if c.Stats != nil {
		t = newStatsTransport(t, c.Stats, c.Rel.Owner, relayAware)
	}
	return t
}

// collectiveContext applies the cluster timeout when the caller's context
// carries no deadline of its own.
func (c *Cluster) collectiveContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.Timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			return context.WithTimeout(ctx, c.Timeout)
		}
	}
	return context.WithCancel(ctx)
}

// CollectiveError reports a failed collective with the structured per-GPU
// failures: PerGPU[d] is the error GPU d's client returned (nil for clients
// that finished cleanly). Down lists the devices (external ids, ascending)
// judged fail-stop dead by the time the collective finished — the signal
// that separates "lossy link, retry the epoch" from "peer is gone, degrade
// and recover."
type CollectiveError struct {
	Op     string
	PerGPU []error
	Down   []int
}

func (e *CollectiveError) Error() string {
	n, first := 0, error(nil)
	for _, err := range e.PerGPU {
		if err != nil {
			n++
			if first == nil {
				first = err
			}
		}
	}
	msg := fmt.Sprintf("runtime: %s failed on %d/%d GPUs: %v", e.Op, n, len(e.PerGPU), first)
	if len(e.Down) > 0 {
		msg += fmt.Sprintf(" (devices down: %v)", e.Down)
	}
	return msg
}

// Unwrap exposes the per-GPU errors to errors.Is/As.
func (e *CollectiveError) Unwrap() []error {
	out := make([]error, 0, len(e.PerGPU))
	for _, err := range e.PerGPU {
		if err != nil {
			out = append(out, err)
		}
	}
	return out
}

// collectClientErrors folds per-client errors into one *CollectiveError
// (or nil when every client succeeded), attaching any down verdicts. The
// error is built complete here rather than patched by the caller, so no
// layer ever needs to type-assert its way back into the concrete type.
func collectClientErrors(op string, errs []error, down ...int) error {
	for _, err := range errs {
		if err != nil {
			ce := &CollectiveError{Op: op, PerGPU: errs}
			if len(down) > 0 {
				ce.Down = down
			}
			return ce
		}
	}
	return nil
}

// finishCollective grades the collective with the health tracker (when one
// is installed) and attaches the down verdicts to the structured error.
func (c *Cluster) finishCollective(op string, errs []error) error {
	var down []int
	if c.Health != nil {
		down = c.Health.ObserveCollective(errs, c.DeviceIDs)
	}
	return collectClientErrors(op, errs, down...)
}

// abortOnDeviceDown cancels the collective the moment any client reports a
// dead device: clients that never touch the dead device would otherwise
// block on peers that already gave up, turning one fail-stop death into a
// full deadline stall. Ordinary transport failures do NOT abort the
// collective — the structured per-GPU error semantics of the fault battery
// depend on every client running to its own conclusion.
func abortOnDeviceDown(err error, cancel context.CancelFunc) {
	if err != nil && errors.Is(err, ErrDeviceDown) {
		cancel()
	}
}

// Allgather performs the forward graphAllgather: local[d] holds GPU d's
// owned embedding rows (in Rel.Local[d] order, cols = feature dim); the
// result full[d] has Locals[d].NumLocal+NumRemote rows in local-graph order,
// ready for single-GPU layer execution. It runs all clients concurrently.
func (c *Cluster) Allgather(local []*tensor.Matrix) ([]*tensor.Matrix, error) {
	return c.AllgatherContext(context.Background(), local)
}

// AllgatherContext is Allgather bounded by a context: cancellation or a
// deadline aborts all clients with a structured error.
func (c *Cluster) AllgatherContext(ctx context.Context, local []*tensor.Matrix) ([]*tensor.Matrix, error) {
	cols, err := c.validateInputs(local, false)
	if err != nil {
		return nil, err
	}
	prog, err := c.forwardProgram()
	if err != nil {
		return nil, err
	}
	ctx, cancel := c.collectiveContext(ctx)
	defer cancel()
	tp, release := c.acquireTransport(prog, true)
	copies := transportCopies(tp)
	full := make([]*tensor.Matrix, c.K)
	var wg sync.WaitGroup
	errs := make([]error, c.K)
	c.eachActive(func(d int) {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			full[d], errs[d] = c.runForwardClient(ctx, d, local[d], cols, tp, &prog.clients[d], copies)
			abortOnDeviceDown(errs[d], cancel)
		}(d)
	})
	wg.Wait()
	release(anyError(errs))
	if err := c.finishCollective("graphAllgather", errs); err != nil {
		return nil, err
	}
	return full, nil
}

func anyError(errs []error) bool {
	for _, err := range errs {
		if err != nil {
			return true
		}
	}
	return false
}

// validateInputs checks one matrix per locally-executed GPU, all non-nil
// with a consistent column count; forward inputs must also match the
// owned-row counts (the backward client checks its own local-graph row
// count). In worker mode the entries of inactive ranks are ignored (they may
// be nil — those clients run in another process).
func (c *Cluster) validateInputs(in []*tensor.Matrix, backward bool) (int, error) {
	if len(in) != c.K {
		return 0, fmt.Errorf("runtime: %d inputs for %d GPUs", len(in), c.K)
	}
	cols := -1
	var verr error
	c.eachActive(func(d int) {
		if verr != nil {
			return
		}
		m := in[d]
		if m == nil {
			verr = fmt.Errorf("runtime: GPU %d input is nil", d)
			return
		}
		if !backward && m.Rows != len(c.Rel.Local[d]) {
			verr = fmt.Errorf("runtime: GPU %d input has %d rows, owns %d vertices", d, m.Rows, len(c.Rel.Local[d]))
			return
		}
		if cols == -1 {
			cols = m.Cols
		} else if m.Cols != cols {
			verr = fmt.Errorf("runtime: inconsistent feature dims (%d vs %d)", m.Cols, cols)
		}
	})
	if verr != nil {
		return 0, verr
	}
	return cols, nil
}

// runForwardClient executes one client's compiled forward program. The
// output `full` doubles as the vertex store: owned rows are block-copied up
// front, received rows land directly at their precomputed local-graph
// offset, and relay-only rows live in a pooled arena. Send buffers come
// from the pool and are returned by the *receiving* client once consumed
// (Cluster.recycle), so steady-state epochs allocate no payload memory.
func (c *Cluster) runForwardClient(ctx context.Context, d int, local *tensor.Matrix, cols int, tp Transport, cp *clientProgram, copies bool) (*tensor.Matrix, error) {
	lg := c.Locals[d]
	full := tensor.New(lg.NumLocal+lg.NumRemote, cols)
	copy(full.Data[:lg.NumLocal*cols], local.Data)
	arena := c.pool.get(cp.arenaRows, cols)
	defer c.pool.put(arena)
	rowOf := func(s int32) []float32 {
		if s >= 0 {
			return full.Row(int(s))
		}
		return arena.Row(int(-s - 1))
	}
	if c.Overlap.Enabled && !cp.serialOnly {
		if err := c.runClientPipelined(ctx, d, cols, tp, cp, copies, rowOf, func(slots []int32, rows *tensor.Matrix) {
			aggregateCopy(rowOf, slots, rows)
		}); err != nil {
			return nil, err
		}
		return full, nil
	}
	for _, cs := range cp.stages {
		// Send phase: fill peer buffers and set done flags.
		for _, snd := range cs.sends {
			buf := c.pool.get(len(snd.slots), cols)
			for i, s := range snd.slots {
				copy(buf.Row(i), rowOf(s))
			}
			if err := tp.Send(ctx, snd.key, snd.tr, c.seal(Message{Rows: buf})); err != nil {
				return nil, fmt.Errorf("runtime: GPU %d send: %w", d, err)
			}
			if copies {
				// A copying transport serialized the payload before Send
				// returned; the buffer is ours again.
				c.pool.put(buf)
			}
		}
		// Receive phase: wait for each peer's done flag and retrieve.
		for _, rcv := range cs.recvs {
			msg, err := tp.Recv(ctx, rcv.key, rcv.tr)
			if err != nil {
				return nil, fmt.Errorf("runtime: GPU %d recv: %w", d, err)
			}
			aggregateCopy(rowOf, rcv.slots, msg.Rows)
			c.recycle(tp, msg)
		}
	}
	return full, nil
}

// BackwardAllgather routes gradients back along the plan's trees: gradFull[d]
// has one row per local-graph vertex of GPU d (locals then remotes, the
// shape layers' Backward produces). The result grad[d] has one row per owned
// vertex of GPU d: its own local-row gradients plus every gradient
// contribution received from GPUs that consumed (or relayed) its vertices.
func (c *Cluster) BackwardAllgather(gradFull []*tensor.Matrix) ([]*tensor.Matrix, error) {
	return c.BackwardAllgatherContext(context.Background(), gradFull)
}

// BackwardAllgatherContext is BackwardAllgather bounded by a context.
func (c *Cluster) BackwardAllgatherContext(ctx context.Context, gradFull []*tensor.Matrix) ([]*tensor.Matrix, error) {
	cols, err := c.validateInputs(gradFull, true)
	if err != nil {
		return nil, err
	}
	var shapeErr error
	c.eachActive(func(d int) {
		lg := c.Locals[d]
		if m := gradFull[d]; shapeErr == nil && m.Rows != lg.NumLocal+lg.NumRemote {
			shapeErr = fmt.Errorf("runtime: GPU %d gradient has %d rows, local graph has %d", d, m.Rows, lg.NumLocal+lg.NumRemote)
		}
	})
	if shapeErr != nil {
		return nil, shapeErr
	}
	prog, err := c.backwardProgram()
	if err != nil {
		return nil, err
	}
	ctx, cancel := c.collectiveContext(ctx)
	defer cancel()
	tp, release := c.acquireTransport(prog, false)
	copies := transportCopies(tp)
	out := make([]*tensor.Matrix, c.K)
	errs := make([]error, c.K)
	var wg sync.WaitGroup
	c.eachActive(func(d int) {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			out[d], errs[d] = c.runBackwardClient(ctx, d, gradFull[d], cols, tp, &prog.clients[d], copies)
			abortOnDeviceDown(errs[d], cancel)
		}(d)
	})
	wg.Wait()
	release(anyError(errs))
	if err := c.finishCollective("backward graphAllgather", errs); err != nil {
		return nil, err
	}
	return out, nil
}

// runBackwardClient executes one client's compiled backward program. The
// owned-gradient accumulator starts from the local rows of gradFull; the
// pooled arena holds the running gradient for every non-owned vertex this
// client touches — rows [0, NumRemote) start as the remote rows of gradFull
// (this client's own consumer contribution), relay-only rows start at zero
// (zeroed explicitly: pooled memory is dirty). Receives accumulate row i of
// the payload into its precomputed slot in the exact legacy iteration order,
// so results are bit-identical to the map-based path.
func (c *Cluster) runBackwardClient(ctx context.Context, d int, gradFull *tensor.Matrix, cols int, tp Transport, cp *clientProgram, copies bool) (*tensor.Matrix, error) {
	lg := c.Locals[d]
	own := tensor.New(lg.NumLocal, cols)
	copy(own.Data, gradFull.Data[:lg.NumLocal*cols])
	arena := c.pool.get(cp.arenaRows, cols)
	defer c.pool.put(arena)
	copy(arena.Data[:lg.NumRemote*cols], gradFull.Data[lg.NumLocal*cols:])
	clear(arena.Data[cp.zeroFrom*cols:])
	rowOf := func(s int32) []float32 {
		if s >= 0 {
			return own.Row(int(s))
		}
		return arena.Row(int(-s - 1))
	}
	if c.Overlap.Enabled && !cp.serialOnly {
		if err := c.runClientPipelined(ctx, d, cols, tp, cp, copies, rowOf, func(slots []int32, rows *tensor.Matrix) {
			aggregateAdd(rowOf, slots, rows)
		}); err != nil {
			return nil, err
		}
		return own, nil
	}
	for _, cs := range cp.stages {
		// Send first within a backward stage: tree edges at different depths
		// land in different backward stages, so a stage's sends only carry
		// gradients accumulated in earlier stages — never data arriving in
		// this stage's receives. Sending first therefore preserves both
		// correctness and deadlock freedom, exactly as in forward.
		for _, snd := range cs.sends {
			buf := c.pool.get(len(snd.slots), cols)
			for i, s := range snd.slots {
				copy(buf.Row(i), rowOf(s))
			}
			if err := tp.Send(ctx, snd.key, snd.tr, c.seal(Message{Rows: buf})); err != nil {
				return nil, fmt.Errorf("runtime: GPU %d send: %w", d, err)
			}
			if copies {
				c.pool.put(buf)
			}
		}
		for _, rcv := range cs.recvs {
			msg, err := tp.Recv(ctx, rcv.key, rcv.tr)
			if err != nil {
				return nil, fmt.Errorf("runtime: GPU %d recv: %w", d, err)
			}
			aggregateAdd(rowOf, rcv.slots, msg.Rows)
			c.recycle(tp, msg)
		}
	}
	return own, nil
}
