// Package runtime executes communication plans with real data movement: one
// goroutine per DGCL client (GPU), coordinated the way §6.1 describes —
// decentralized, with per-peer buffers and done signals instead of a master
// round-trip per stage. The forward graphAllgather delivers remote vertex
// embeddings to every client (including multi-hop relays); the backward
// allgather routes gradients down the same trees in reverse, accumulating at
// relays, following the (non-)atomic sub-stage schedule. All data movement
// goes through the Transport interface (transport.go): the default in-memory
// channel transport, optionally wrapped with fault injection and
// retry/timeout decorators. The runtime is the correctness half of the
// reproduction; timing comes from package simnet.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/tensor"
)

// Cluster binds a communication relation, its per-GPU local graphs, and a
// staged plan into an executable ensemble.
type Cluster struct {
	K      int
	Rel    *comm.Relation
	Locals []*comm.LocalGraph
	Plan   *core.Plan
	// NonAtomic selects the §6.2 sub-stage schedule for backward passes.
	NonAtomic bool
	// Stats, when non-nil, accumulates actual per-GPU transfer counters
	// (behind the transport, so forward and backward collectives both
	// count).
	Stats *CommStats
	// Transport overrides the base transport (default: in-memory channels).
	Transport TransportFactory
	// Faults, when non-nil, wraps the base transport with seeded fault
	// injection. Pair it with Retry so injected failures are retried.
	Faults *FaultConfig
	// Retry, when non-nil, wraps the transport with the retry/timeout
	// decorator: lost messages surface as structured per-GPU errors within
	// the policy's deadlines instead of hanging the collective.
	Retry *RetryPolicy
	// Timeout, when positive, bounds each collective end to end (applied as
	// a context deadline when the caller's context has none).
	Timeout time.Duration
	// Crash, when non-nil, injects/propagates fail-stop device failures:
	// transfers touching a down device fail fast with ErrDeviceDown and the
	// collective aborts instead of running out its deadline.
	Crash *CrashTracker
	// Health, when non-nil, grades every collective and converts repeated
	// deadline failures or explicit down evidence into per-device verdicts
	// (surfaced via CollectiveError.Down).
	Health *HealthTracker
	// DeviceIDs maps client index -> external device id. Nil means the
	// identity mapping; a degraded cluster rebuilt over survivors sets it so
	// crash schedules and down verdicts keep using the original numbering.
	DeviceIDs []int
}

// DeviceID returns the external id of client index d (identity when no
// mapping is installed).
func (c *Cluster) DeviceID(d int) int {
	if c.DeviceIDs == nil {
		return d
	}
	return c.DeviceIDs[d]
}

// NewCluster validates the plan against the relation and builds the cluster.
func NewCluster(rel *comm.Relation, locals []*comm.LocalGraph, plan *core.Plan) (*Cluster, error) {
	if len(locals) != rel.K {
		return nil, fmt.Errorf("runtime: %d local graphs for %d GPUs", len(locals), rel.K)
	}
	if err := plan.Validate(rel); err != nil {
		return nil, fmt.Errorf("runtime: invalid plan: %w", err)
	}
	return &Cluster{K: rel.K, Rel: rel, Locals: locals, Plan: plan, NonAtomic: true}, nil
}

// newTransport composes the transport stack for one collective: base
// (channels) -> fault injection -> fail-stop crash -> retry/timeout -> stats
// accounting. Crash sits below retry so ErrDeviceDown (not retryable) cuts
// straight through to the client, and above faults so dead links stop
// rolling message faults.
func (c *Cluster) newTransport(stages [][]core.Transfer, relayAware bool) Transport {
	base := c.Transport
	if base == nil {
		base = NewChanTransport
	}
	t := base(stages)
	if c.Faults != nil {
		t = NewFaultTransport(t, *c.Faults)
	}
	if c.Crash != nil {
		t = NewCrashTransport(t, c.Crash, c.DeviceIDs)
	}
	if c.Retry != nil {
		t = NewRetryTransport(t, *c.Retry, c.Stats)
	}
	if c.Stats != nil {
		t = newStatsTransport(t, c.Stats, c.Rel.Owner, relayAware)
	}
	return t
}

// collectiveContext applies the cluster timeout when the caller's context
// carries no deadline of its own.
func (c *Cluster) collectiveContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.Timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			return context.WithTimeout(ctx, c.Timeout)
		}
	}
	return context.WithCancel(ctx)
}

// CollectiveError reports a failed collective with the structured per-GPU
// failures: PerGPU[d] is the error GPU d's client returned (nil for clients
// that finished cleanly). Down lists the devices (external ids, ascending)
// judged fail-stop dead by the time the collective finished — the signal
// that separates "lossy link, retry the epoch" from "peer is gone, degrade
// and recover."
type CollectiveError struct {
	Op     string
	PerGPU []error
	Down   []int
}

func (e *CollectiveError) Error() string {
	n, first := 0, error(nil)
	for _, err := range e.PerGPU {
		if err != nil {
			n++
			if first == nil {
				first = err
			}
		}
	}
	msg := fmt.Sprintf("runtime: %s failed on %d/%d GPUs: %v", e.Op, n, len(e.PerGPU), first)
	if len(e.Down) > 0 {
		msg += fmt.Sprintf(" (devices down: %v)", e.Down)
	}
	return msg
}

// Unwrap exposes the per-GPU errors to errors.Is/As.
func (e *CollectiveError) Unwrap() []error {
	out := make([]error, 0, len(e.PerGPU))
	for _, err := range e.PerGPU {
		if err != nil {
			out = append(out, err)
		}
	}
	return out
}

func collectClientErrors(op string, errs []error) error {
	for _, err := range errs {
		if err != nil {
			return &CollectiveError{Op: op, PerGPU: errs}
		}
	}
	return nil
}

// finishCollective grades the collective with the health tracker (when one
// is installed) and attaches the down verdicts to the structured error.
func (c *Cluster) finishCollective(op string, errs []error) error {
	var down []int
	if c.Health != nil {
		down = c.Health.ObserveCollective(errs, c.DeviceIDs)
	}
	err := collectClientErrors(op, errs)
	if err != nil && len(down) > 0 {
		err.(*CollectiveError).Down = down
	}
	return err
}

// abortOnDeviceDown cancels the collective the moment any client reports a
// dead device: clients that never touch the dead device would otherwise
// block on peers that already gave up, turning one fail-stop death into a
// full deadline stall. Ordinary transport failures do NOT abort the
// collective — the structured per-GPU error semantics of the fault battery
// depend on every client running to its own conclusion.
func abortOnDeviceDown(err error, cancel context.CancelFunc) {
	if err != nil && errors.Is(err, ErrDeviceDown) {
		cancel()
	}
}

// Allgather performs the forward graphAllgather: local[d] holds GPU d's
// owned embedding rows (in Rel.Local[d] order, cols = feature dim); the
// result full[d] has Locals[d].NumLocal+NumRemote rows in local-graph order,
// ready for single-GPU layer execution. It runs all clients concurrently.
func (c *Cluster) Allgather(local []*tensor.Matrix) ([]*tensor.Matrix, error) {
	return c.AllgatherContext(context.Background(), local)
}

// AllgatherContext is Allgather bounded by a context: cancellation or a
// deadline aborts all clients with a structured error.
func (c *Cluster) AllgatherContext(ctx context.Context, local []*tensor.Matrix) ([]*tensor.Matrix, error) {
	cols, err := c.validateInputs(local, false)
	if err != nil {
		return nil, err
	}
	ctx, cancel := c.collectiveContext(ctx)
	defer cancel()
	tp := c.newTransport(c.Plan.Stages, true)
	full := make([]*tensor.Matrix, c.K)
	var wg sync.WaitGroup
	errs := make([]error, c.K)
	for d := 0; d < c.K; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			full[d], errs[d] = c.runForwardClient(ctx, d, local[d], cols, tp)
			abortOnDeviceDown(errs[d], cancel)
		}(d)
	}
	wg.Wait()
	if err := c.finishCollective("graphAllgather", errs); err != nil {
		return nil, err
	}
	return full, nil
}

// validateInputs checks one matrix per GPU, all non-nil with a consistent
// column count; forward inputs must also match the owned-row counts (the
// backward client checks its own local-graph row count).
func (c *Cluster) validateInputs(in []*tensor.Matrix, backward bool) (int, error) {
	if len(in) != c.K {
		return 0, fmt.Errorf("runtime: %d inputs for %d GPUs", len(in), c.K)
	}
	cols := -1
	for d, m := range in {
		if m == nil {
			return 0, fmt.Errorf("runtime: GPU %d input is nil", d)
		}
		if !backward && m.Rows != len(c.Rel.Local[d]) {
			return 0, fmt.Errorf("runtime: GPU %d input has %d rows, owns %d vertices", d, m.Rows, len(c.Rel.Local[d]))
		}
		if cols == -1 {
			cols = m.Cols
		} else if m.Cols != cols {
			return 0, fmt.Errorf("runtime: inconsistent feature dims (%d vs %d)", m.Cols, cols)
		}
	}
	return cols, nil
}

// vertexStore resolves a client's view of vertex embeddings during an
// allgather: rows it owns, rows delivered for its own use, and rows held
// only for relaying.
type vertexStore struct {
	ownerIndex map[int32]int // global id -> row in the owned matrix
	owned      *tensor.Matrix
	received   map[int32][]float32
}

func newVertexStore(ownedIDs []int32, owned *tensor.Matrix) *vertexStore {
	idx := make(map[int32]int, len(ownedIDs))
	for i, v := range ownedIDs {
		idx[v] = i
	}
	return &vertexStore{ownerIndex: idx, owned: owned, received: make(map[int32][]float32)}
}

func (vs *vertexStore) row(v int32) ([]float32, bool) {
	if i, ok := vs.ownerIndex[v]; ok {
		return vs.owned.Row(i), true
	}
	r, ok := vs.received[v]
	return r, ok
}

func (c *Cluster) runForwardClient(ctx context.Context, d int, local *tensor.Matrix, cols int, tp Transport) (*tensor.Matrix, error) {
	store := newVertexStore(c.Rel.Local[d], local)
	for si, st := range c.Plan.Stages {
		// Send phase: fill peer buffers and set done flags.
		for ti, tr := range st {
			if tr.Src != d {
				continue
			}
			buf := tensor.New(len(tr.Vertices), cols)
			for i, v := range tr.Vertices {
				row, ok := store.row(v)
				if !ok {
					return nil, fmt.Errorf("runtime: GPU %d lacks vertex %d at stage %d", d, v, si+1)
				}
				copy(buf.Row(i), row)
			}
			if err := tp.Send(ctx, TransferKey{si, ti}, tr, NewMessage(buf)); err != nil {
				return nil, fmt.Errorf("runtime: GPU %d send: %w", d, err)
			}
		}
		// Receive phase: wait for each peer's done flag and retrieve.
		for ti, tr := range st {
			if tr.Dst != d {
				continue
			}
			msg, err := tp.Recv(ctx, TransferKey{si, ti}, tr)
			if err != nil {
				return nil, fmt.Errorf("runtime: GPU %d recv: %w", d, err)
			}
			for i, v := range tr.Vertices {
				row := make([]float32, cols)
				copy(row, msg.Rows.Row(i))
				store.received[v] = row
			}
		}
	}
	// Assemble the local-graph-ordered output.
	lg := c.Locals[d]
	full := tensor.New(lg.NumLocal+lg.NumRemote, cols)
	for i := 0; i < lg.NumLocal; i++ {
		copy(full.Row(i), local.Row(i))
	}
	for i := 0; i < lg.NumRemote; i++ {
		v := lg.GlobalID[lg.NumLocal+i]
		row, ok := store.received[v]
		if !ok {
			return nil, fmt.Errorf("runtime: GPU %d never received remote vertex %d", d, v)
		}
		copy(full.Row(lg.NumLocal+i), row)
	}
	return full, nil
}

// BackwardAllgather routes gradients back along the plan's trees: gradFull[d]
// has one row per local-graph vertex of GPU d (locals then remotes, the
// shape layers' Backward produces). The result grad[d] has one row per owned
// vertex of GPU d: its own local-row gradients plus every gradient
// contribution received from GPUs that consumed (or relayed) its vertices.
func (c *Cluster) BackwardAllgather(gradFull []*tensor.Matrix) ([]*tensor.Matrix, error) {
	return c.BackwardAllgatherContext(context.Background(), gradFull)
}

// BackwardAllgatherContext is BackwardAllgather bounded by a context.
func (c *Cluster) BackwardAllgatherContext(ctx context.Context, gradFull []*tensor.Matrix) ([]*tensor.Matrix, error) {
	cols, err := c.validateInputs(gradFull, true)
	if err != nil {
		return nil, err
	}
	for d, m := range gradFull {
		lg := c.Locals[d]
		if m.Rows != lg.NumLocal+lg.NumRemote {
			return nil, fmt.Errorf("runtime: GPU %d gradient has %d rows, local graph has %d", d, m.Rows, lg.NumLocal+lg.NumRemote)
		}
	}
	ctx, cancel := c.collectiveContext(ctx)
	defer cancel()
	sched := c.Plan.BackwardSchedule(c.NonAtomic)
	// Flatten sub-stages into transport-keyed stages.
	flat := make([][]core.Transfer, 0, len(sched))
	for _, stage := range sched {
		var all []core.Transfer
		for _, sub := range stage {
			all = append(all, sub...)
		}
		flat = append(flat, all)
	}
	tp := c.newTransport(flat, false)
	out := make([]*tensor.Matrix, c.K)
	errs := make([]error, c.K)
	var wg sync.WaitGroup
	for d := 0; d < c.K; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			out[d], errs[d] = c.runBackwardClient(ctx, d, gradFull[d], cols, flat, tp)
			abortOnDeviceDown(errs[d], cancel)
		}(d)
	}
	wg.Wait()
	if err := c.finishCollective("backward graphAllgather", errs); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Cluster) runBackwardClient(ctx context.Context, d int, gradFull *tensor.Matrix, cols int, flat [][]core.Transfer, tp Transport) (*tensor.Matrix, error) {
	lg := c.Locals[d]
	// accum holds this client's running gradient for every non-owned vertex
	// it touched: its own consumer contribution (remote rows of gradFull)
	// plus anything received from tree children. Relay-only vertices start
	// at zero.
	accum := make(map[int32][]float32)
	for i := 0; i < lg.NumRemote; i++ {
		v := lg.GlobalID[lg.NumLocal+i]
		row := make([]float32, cols)
		copy(row, gradFull.Row(lg.NumLocal+i))
		accum[v] = row
	}
	grow := func(v int32) []float32 {
		r, ok := accum[v]
		if !ok {
			r = make([]float32, cols)
			accum[v] = r
		}
		return r
	}
	// Owned-vertex accumulator starts from the local rows of gradFull.
	own := tensor.New(lg.NumLocal, cols)
	for i := 0; i < lg.NumLocal; i++ {
		copy(own.Row(i), gradFull.Row(i))
	}
	ownIndex := make(map[int32]int, lg.NumLocal)
	for i := 0; i < lg.NumLocal; i++ {
		ownIndex[lg.GlobalID[i]] = i
	}
	for si, st := range flat {
		// Send first within a backward stage: tree edges at different depths
		// land in different backward stages, so a stage's sends only carry
		// gradients accumulated in earlier stages — never data arriving in
		// this stage's receives. Sending first therefore preserves both
		// correctness and deadlock freedom, exactly as in forward.
		for ti, tr := range st {
			if tr.Src != d {
				continue
			}
			buf := tensor.New(len(tr.Vertices), cols)
			for i, v := range tr.Vertices {
				copy(buf.Row(i), grow(v))
			}
			if err := tp.Send(ctx, TransferKey{si, ti}, tr, NewMessage(buf)); err != nil {
				return nil, fmt.Errorf("runtime: GPU %d send: %w", d, err)
			}
		}
		for ti, tr := range st {
			if tr.Dst != d {
				continue
			}
			msg, err := tp.Recv(ctx, TransferKey{si, ti}, tr)
			if err != nil {
				return nil, fmt.Errorf("runtime: GPU %d recv: %w", d, err)
			}
			for i, v := range tr.Vertices {
				src := msg.Rows.Row(i)
				if oi, ok := ownIndex[v]; ok {
					dst := own.Row(oi)
					for j, x := range src {
						dst[j] += x
					}
				} else {
					dst := grow(v)
					for j, x := range src {
						dst[j] += x
					}
				}
			}
		}
	}
	return own, nil
}
