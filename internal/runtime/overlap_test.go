package runtime

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"dgcl/internal/core"
	"dgcl/internal/tensor"
	"dgcl/internal/testutil"
)

// Overlap battery: the chunked, pipelined executor must be bit-identical to
// the serial one — same collectives, same training trajectories — at every
// chunk size, window, and kernel worker count, because the aggregator
// consumes recvSteps in compiled order and chunking preserves row order
// (see overlap.go). These tests rerun the equivalence suites under a grid
// of overlap configurations and compare against serial output bit for bit.

// overlapVariants is the execution-policy grid every equivalence check runs
// under: tiny chunks (maximum pipeline depth), realistic chunks, unchunked
// pipelining (stage overlap only), lockstep window 1, and the serial
// fallback over a chunked layout (Enabled false, ChunkRows set).
func overlapVariants() []OverlapConfig {
	return []OverlapConfig{
		{Enabled: true, ChunkRows: 3, Window: 1},
		{Enabled: true, ChunkRows: 3, Window: 4},
		{Enabled: true, ChunkRows: 64, Window: 4},
		{Enabled: true},
		{Enabled: false, ChunkRows: 5},
	}
}

func (o OverlapConfig) testName() string {
	if !o.Enabled {
		return fmt.Sprintf("serial-chunk%d", o.ChunkRows)
	}
	return fmt.Sprintf("chunk%d-window%d", o.ChunkRows, o.window())
}

// TestOverlapForwardBitIdenticalToSerial runs the 50-triple forward battery:
// for each case, the serial result is the reference and every overlap
// variant must reproduce it exactly.
func TestOverlapForwardBitIdenticalToSerial(t *testing.T) {
	for _, pc := range propertyCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			t.Parallel()
			c, rel := buildCase(t, pc)
			local := make([]*tensor.Matrix, pc.k)
			for d := 0; d < pc.k; d++ {
				local[d] = tensor.New(len(rel.Local[d]), pc.cols).FillRandom(pc.seed + int64(d))
			}
			want, err := c.Allgather(local)
			if err != nil {
				t.Fatal(err)
			}
			for _, ov := range overlapVariants() {
				c.Overlap = ov
				got, err := c.Allgather(local)
				if err != nil {
					t.Fatalf("%s: %v", ov.testName(), err)
				}
				for d := 0; d < pc.k; d++ {
					if diff := tensor.MaxAbsDiff(got[d], want[d]); diff != 0 {
						t.Fatalf("%s: GPU %d diverges from serial by %v", ov.testName(), d, diff)
					}
				}
			}
		})
	}
}

// TestOverlapBackwardBitIdenticalToSerial is the backward half, over both
// backward schedules. Backward is where the WAR hazard lives (receives
// accumulate into rows later sends read), so this is the test that fails if
// the aggDep gate is wrong.
func TestOverlapBackwardBitIdenticalToSerial(t *testing.T) {
	for _, pc := range propertyCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			t.Parallel()
			c, _ := buildCase(t, pc)
			c.NonAtomic = pc.seed%2 == 0
			gradFull := make([]*tensor.Matrix, pc.k)
			for d := 0; d < pc.k; d++ {
				lg := c.Locals[d]
				gradFull[d] = tensor.New(lg.NumLocal+lg.NumRemote, pc.cols).FillRandom(pc.seed + 100 + int64(d))
			}
			want, err := c.BackwardAllgather(gradFull)
			if err != nil {
				t.Fatal(err)
			}
			for _, ov := range overlapVariants() {
				c.Overlap = ov
				got, err := c.BackwardAllgather(gradFull)
				if err != nil {
					t.Fatalf("%s: %v", ov.testName(), err)
				}
				for d := 0; d < pc.k; d++ {
					if diff := tensor.MaxAbsDiff(got[d], want[d]); diff != 0 {
						t.Fatalf("%s: GPU %d diverges from serial by %v", ov.testName(), d, diff)
					}
				}
			}
		})
	}
}

// TestOverlapTrainingBitIdentical trains the 20 seeded configurations under
// serial execution and under overlapped execution at two chunk sizes and
// two kernel worker counts; losses and final weights must agree bit for bit
// in every combination.
func TestOverlapTrainingBitIdentical(t *testing.T) {
	variants := []struct {
		name    string
		workers int
		ov      OverlapConfig
	}{
		{"chunk64-w1", 1, OverlapConfig{Enabled: true, ChunkRows: 64, Window: 4}},
		{"chunk16-w4", 4, OverlapConfig{Enabled: true, ChunkRows: 16, Window: 2}},
	}
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			refLosses, refModel := runSeededTraining(t, seed, 1)
			for _, v := range variants {
				losses, model := runSeededTrainingOverlap(t, seed, v.workers, v.ov)
				for e := range refLosses {
					if math.Float64bits(refLosses[e]) != math.Float64bits(losses[e]) {
						t.Fatalf("%s: epoch %d loss diverges: serial %v, overlap %v", v.name, e, refLosses[e], losses[e])
					}
				}
				for li, layer := range refModel.Layers {
					pv := model.Layers[li].Params()
					for pi, pr := range layer.Params() {
						for j := range pr.Data {
							if math.Float32bits(pr.Data[j]) != math.Float32bits(pv[pi].Data[j]) {
								t.Fatalf("%s: layer %d param %d element %d diverges: serial %v, overlap %v",
									v.name, li, pi, j, pr.Data[j], pv[pi].Data[j])
							}
						}
					}
				}
			}
		})
	}
}

// TestChunkStagesPreservesRowsAndStages checks the chunk splitter's
// invariants directly: stage count unchanged, per-stage vertex sequences
// unchanged (concatenating chunk vertex lists reproduces the originals in
// order), every chunk within the size bound, and endpoints preserved.
func TestChunkStagesPreservesRowsAndStages(t *testing.T) {
	stages := [][]core.Transfer{
		{{Src: 0, Dst: 1, Vertices: []int32{1, 2, 3, 4, 5, 6, 7}}},
		{{Src: 1, Dst: 2, Vertices: []int32{8, 9}}, {Src: 2, Dst: 0, Vertices: []int32{10, 11, 12}}},
		{},
	}
	chunked := chunkStages(stages, 3)
	if len(chunked) != len(stages) {
		t.Fatalf("stage count changed: %d -> %d", len(stages), len(chunked))
	}
	for si, st := range stages {
		var got []int32
		for _, tr := range chunked[si] {
			if len(tr.Vertices) > 3 {
				t.Fatalf("stage %d: chunk of %d rows exceeds bound", si, len(tr.Vertices))
			}
			got = append(got, tr.Vertices...)
		}
		var want []int32
		for _, tr := range st {
			want = append(want, tr.Vertices...)
		}
		if len(got) != len(want) {
			t.Fatalf("stage %d: %d rows after chunking, want %d", si, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("stage %d row %d: vertex %d, want %d", si, i, got[i], want[i])
			}
		}
	}
	// Endpoint check: every chunk of stage 1 keeps its parent's src/dst.
	for _, tr := range chunked[1] {
		if (tr.Src != 1 || tr.Dst != 2) && (tr.Src != 2 || tr.Dst != 0) {
			t.Fatalf("stage 1 chunk has foreign endpoints %d->%d", tr.Src, tr.Dst)
		}
	}
	if got := chunkStages(stages, 0); &got[0] != &stages[0] {
		t.Fatal("chunkRows 0 should return the input unchanged")
	}
}

// TestCompiledDepsPipelineSafe compiles every property case at a small chunk
// size and asserts the invariants the deadlock-freedom argument rests on:
// sendDep[s] < s and aggDep[s] <= s for every client and stage, and no
// program is forced serial.
func TestCompiledDepsPipelineSafe(t *testing.T) {
	for _, pc := range propertyCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			t.Parallel()
			c, _ := buildCase(t, pc)
			c.Overlap = OverlapConfig{Enabled: true, ChunkRows: 4}
			fwd, err := c.forwardProgram()
			if err != nil {
				t.Fatal(err)
			}
			bwd, err := c.backwardProgram()
			if err != nil {
				t.Fatal(err)
			}
			for _, prog := range []*routingProgram{fwd, bwd} {
				for d, cp := range prog.clients {
					if cp.serialOnly {
						t.Fatalf("client %d compiled serial-only", d)
					}
					for s := range cp.stages {
						if cp.sendDep[s] >= s {
							t.Fatalf("client %d stage %d: sendDep %d not strictly earlier", d, s, cp.sendDep[s])
						}
						if cp.aggDep[s] > s {
							t.Fatalf("client %d stage %d: aggDep %d beyond stage", d, s, cp.aggDep[s])
						}
					}
				}
			}
		})
	}
}

// TestTransportCacheConcurrentAcquireRelease hammers the program transport
// cache from many goroutines, with a deterministic sprinkling of failed
// releases: the cache must stay race-clean, never hand the same base
// transport to two holders at once, and evict a transport released as
// failed instead of reusing it. The overlap window makes acquire/release
// genuinely concurrent with in-flight stages, so this path needs its own
// coverage beyond the collective tests.
func TestTransportCacheConcurrentAcquireRelease(t *testing.T) {
	stages := [][]core.Transfer{{{Src: 0, Dst: 1, Vertices: []int32{1, 2}}}}
	tc := &transportCache{}
	var mu sync.Mutex
	held := make(map[Transport]bool)
	failedOnce := make(map[Transport]bool)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := tc.acquire(stages)
				mu.Lock()
				if held[b] {
					mu.Unlock()
					t.Error("transport handed to two concurrent holders")
					return
				}
				if failedOnce[b] {
					mu.Unlock()
					t.Error("failed-released transport reused")
					return
				}
				held[b] = true
				mu.Unlock()
				fail := (g+i)%13 == 0
				mu.Lock()
				delete(held, b)
				if fail {
					failedOnce[b] = true
				}
				mu.Unlock()
				tc.release(b, fail)
			}
		}()
	}
	wg.Wait()
}

// TestOverlapSteadyStateAllocs pins the overlapped executor's per-collective
// allocation cost on the k=4 alloc workload: pipelining adds a bounded
// constant per client (context, pipeState, sender goroutine) and chunking
// must add nothing per chunk — buffers and arenas still cycle through the
// pool. Budgets have ~2x headroom over measured values, mirroring the PR 5
// budgets the serial path keeps.
func TestOverlapSteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	c, local, gradFull := allocCluster(t)
	c.Overlap = OverlapConfig{Enabled: true, ChunkRows: 256, Window: 4}
	if _, err := c.Allgather(local); err != nil {
		t.Fatal(err)
	}
	fwd := testing.AllocsPerRun(10, func() {
		if _, err := c.Allgather(local); err != nil {
			t.Fatal(err)
		}
	})
	if fwd > 400 {
		t.Errorf("overlapped Allgather allocates %.0f/op, budget 400", fwd)
	}
	if _, err := c.BackwardAllgather(gradFull); err != nil {
		t.Fatal(err)
	}
	bwd := testing.AllocsPerRun(10, func() {
		if _, err := c.BackwardAllgather(gradFull); err != nil {
			t.Fatal(err)
		}
	})
	if bwd > 400 {
		t.Errorf("overlapped BackwardAllgather allocates %.0f/op, budget 400", bwd)
	}
}
