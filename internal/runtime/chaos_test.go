package runtime

import (
	"errors"
	"testing"
	"time"

	"dgcl/internal/graph"
	"dgcl/internal/tensor"
	"dgcl/internal/testutil"
)

// Chaos battery: under injected faults the collectives must be either
// transparent (retries recover, results bit-identical to the fault-free
// run) or cleanly fatal (budget exhausted -> structured per-GPU errors
// before the deadline, no goroutine leaks). There is no third outcome:
// never a hang, never silently corrupted data.

func chaosCluster(t *testing.T) (*Cluster, []*tensor.Matrix, []*tensor.Matrix) {
	t.Helper()
	g := graph.CommunityGraph(300, 10, 4, 0.8, 42)
	c, rel := setup(t, g, 4, 42, 64)
	cols := 3
	local := make([]*tensor.Matrix, 4)
	gradFull := make([]*tensor.Matrix, 4)
	for d := 0; d < 4; d++ {
		local[d] = tensor.New(len(rel.Local[d]), cols).FillRandom(int64(d))
		lg := c.Locals[d]
		gradFull[d] = tensor.New(lg.NumLocal+lg.NumRemote, cols).FillRandom(int64(100 + d))
	}
	return c, local, gradFull
}

func TestChaosRetriesMakeFaultsTransparent(t *testing.T) {
	c, local, gradFull := chaosCluster(t)

	// Fault-free baselines.
	wantFull, err := c.Allgather(local)
	if err != nil {
		t.Fatal(err)
	}
	wantGrads, err := c.BackwardAllgather(gradFull)
	if err != nil {
		t.Fatal(err)
	}

	// Heavy but recoverable chaos: every fault kind fires, the retry budget
	// comfortably exceeds the worst losing streak.
	fstats := &FaultStats{}
	c.Faults = &FaultConfig{
		Seed:     7,
		Default:  FaultRates{Drop: 0.25, Duplicate: 0.1, Corrupt: 0.1, Delay: 0.05},
		MaxDelay: 200 * time.Microsecond,
		Stats:    fstats,
	}
	retry := DefaultRetryPolicy()
	retry.MaxRetries = 30
	retry.BaseBackoff = 50 * time.Microsecond
	c.Retry = &retry
	c.Timeout = 30 * time.Second
	c.Stats = NewCommStats(c.K)

	for round := 0; round < 3; round++ {
		gotFull, err := c.Allgather(local)
		if err != nil {
			t.Fatalf("round %d forward: %v", round, err)
		}
		gotGrads, err := c.BackwardAllgather(gradFull)
		if err != nil {
			t.Fatalf("round %d backward: %v", round, err)
		}
		for d := 0; d < c.K; d++ {
			// Retransmission carries the same bytes: results are
			// bit-identical to the fault-free run, not merely close.
			if diff := tensor.MaxAbsDiff(gotFull[d], wantFull[d]); diff != 0 {
				t.Fatalf("round %d GPU %d forward differs under faults by %v", round, d, diff)
			}
			if diff := tensor.MaxAbsDiff(gotGrads[d], wantGrads[d]); diff != 0 {
				t.Fatalf("round %d GPU %d backward differs under faults by %v", round, d, diff)
			}
		}
	}
	if fstats.Drops.Load() == 0 {
		t.Fatal("chaos run injected no drops; the test exercised nothing")
	}
	if c.Stats.TotalRetries() == 0 {
		t.Fatal("drops were injected but no sends were retried")
	}
}

// participants returns which GPUs appear as an endpoint of any planned
// transfer; only they can fail (a GPU with no traffic finishes trivially).
func participants(c *Cluster) []bool {
	in := make([]bool, c.K)
	for _, st := range c.Plan.Stages {
		for _, tr := range st {
			in[tr.Src] = true
			in[tr.Dst] = true
		}
	}
	return in
}

func TestChaosExhaustedBudgetFailsStructuredAndLeakFree(t *testing.T) {
	c, local, _ := chaosCluster(t)

	// Beyond-budget faults: every send drops, the budget is tiny, receives
	// time out fast. The collective must fail on every participating GPU
	// well inside the deadline.
	c.Faults = &FaultConfig{Seed: 11, Default: FaultRates{Drop: 1.0}}
	c.Retry = &RetryPolicy{
		MaxRetries:  2,
		BaseBackoff: 20 * time.Microsecond,
		MaxBackoff:  100 * time.Microsecond,
		RecvTimeout: 150 * time.Millisecond,
	}
	const deadline = 5 * time.Second
	c.Timeout = deadline
	c.Stats = NewCommStats(c.K)

	before := testutil.Goroutines()
	start := time.Now()
	_, err := c.Allgather(local)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("total packet loss produced a successful allgather")
	}
	if elapsed >= deadline {
		t.Fatalf("failure took %v, deadline was %v", elapsed, deadline)
	}

	var ce *CollectiveError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CollectiveError", err)
	}
	in := participants(c)
	for d, perr := range ce.PerGPU {
		if in[d] && perr == nil {
			t.Errorf("GPU %d participates in the plan but reported no error", d)
		}
	}
	// Each per-GPU failure unwraps to the structured transport error with
	// the exhausted attempt count or a receive timeout.
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("no *TransportError in the chain: %v", err)
	}
	if te.Op == "send" && !errors.Is(te, ErrDropped) {
		t.Fatalf("send failure does not unwrap to ErrDropped: %v", te)
	}

	// All client goroutines must wind down: no one may block forever on a
	// channel whose sender gave up.
	if !testutil.GoroutinesSettleTo(before, 2*time.Second) {
		t.Fatalf("goroutines leaked: %d before, %d after settling window", before, testutil.Goroutines())
	}
	if c.Stats.TotalRetries() == 0 && c.Stats.TotalTimeouts() == 0 {
		t.Fatal("failed collective recorded neither retries nor timeouts")
	}
}
