package runtime

import (
	"strings"
	"testing"

	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/graph"
	"dgcl/internal/tensor"
)

func TestCommStatsAccounting(t *testing.T) {
	g := graph.CommunityGraph(300, 10, 4, 0.8, 71)
	c, rel := setup(t, g, 4, 71, 32)
	c.Stats = NewCommStats(4)
	cols := 8
	local := make([]*tensor.Matrix, 4)
	for d := 0; d < 4; d++ {
		local[d] = tensor.New(len(rel.Local[d]), cols).FillRandom(int64(d))
	}
	if _, err := c.Allgather(local); err != nil {
		t.Fatal(err)
	}
	// Total sent equals the plan's byte volume at this embedding width.
	want := int64(0)
	for _, st := range c.Plan.Stages {
		for _, tr := range st {
			want += int64(len(tr.Vertices)) * int64(cols) * 4
		}
	}
	if got := c.Stats.TotalBytes(); got != want {
		t.Fatalf("sent %d want %d", got, want)
	}
	// Received equals sent in aggregate.
	var recv int64
	for d := 0; d < 4; d++ {
		rb, _ := c.Stats.Received(d)
		recv += rb
	}
	if recv != want {
		t.Fatalf("received %d want %d", recv, want)
	}
	// The rendered summary mentions every GPU.
	s := c.Stats.String()
	for _, tag := range []string{"gpu0", "gpu3"} {
		if !strings.Contains(s, tag) {
			t.Fatalf("summary missing %s:\n%s", tag, s)
		}
	}
	c.Stats.Reset()
	if c.Stats.TotalBytes() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCommStatsRelayAccounting(t *testing.T) {
	// Relay chain: GPU0 owns v0, needed by GPUs 2 and 3; the plan forwards
	// 0->1->2->3, so GPUs 1 and 2 relay a vertex they do not own.
	rel := &comm.Relation{
		K:      4,
		Owner:  []int32{0, 1, 2, 3},
		Local:  [][]int32{{0}, {1}, {2}, {3}},
		Remote: [][]int32{nil, nil, {0}, {0}},
		Send:   make([][][]int32, 4),
	}
	for i := range rel.Send {
		rel.Send[i] = make([][]int32, 4)
	}
	rel.Send[0][2] = []int32{0}
	rel.Send[0][3] = []int32{0}
	plan := core.NewPlan(4, 4, "relay")
	plan.Stages = [][]core.Transfer{
		{{Src: 0, Dst: 1, Vertices: []int32{0}}},
		{{Src: 1, Dst: 2, Vertices: []int32{0}}},
		{{Src: 2, Dst: 3, Vertices: []int32{0}}},
	}
	g := graph.MustFromEdges(4, []graph.Edge{{Src: 2, Dst: 0}, {Src: 3, Dst: 0}}, false)
	c, err := NewCluster(rel, comm.BuildLocalGraphs(g, rel), plan)
	if err != nil {
		t.Fatal(err)
	}
	c.Stats = NewCommStats(4)
	local := []*tensor.Matrix{
		tensor.FromData(1, 1, []float32{42}),
		tensor.FromData(1, 1, []float32{1}),
		tensor.FromData(1, 1, []float32{2}),
		tensor.FromData(1, 1, []float32{3}),
	}
	if _, err := c.Allgather(local); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Relayed(0) != 0 {
		t.Fatal("owner send must not count as relay")
	}
	if c.Stats.Relayed(1) != 4 || c.Stats.Relayed(2) != 4 {
		t.Fatalf("relay bytes: gpu1=%d gpu2=%d want 4 each", c.Stats.Relayed(1), c.Stats.Relayed(2))
	}
}
