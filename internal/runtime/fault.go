package runtime

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dgcl/internal/core"
	"dgcl/internal/tensor"
)

// Fault injection: a Transport wrapper that, with seeded probabilities,
// drops, delays, duplicates, or corrupts messages per link class. It models
// the misbehaving transports of real deployments (lossy cross-machine
// links, contended PCIe) so the chaos tests can exercise the retry/timeout
// machinery deterministically. The same knobs are mirrored into
// internal/simnet (Config.Faults) so virtual-time experiments price the
// retransmissions this wrapper forces.

// FaultRates are per-send probabilities in [0,1] for each fault kind.
// Multiple faults can fire on one send (a delayed duplicate, a corrupted
// delivery); drop preempts the rest.
type FaultRates struct {
	Drop      float64
	Delay     float64
	Duplicate float64
	Corrupt   float64
}

func (r FaultRates) zero() bool {
	return r.Drop == 0 && r.Delay == 0 && r.Duplicate == 0 && r.Corrupt == 0
}

// FaultStats counts injected faults across all collectives sharing one
// FaultConfig (transports are rebuilt per collective; the counters
// persist).
type FaultStats struct {
	Drops, Delays, Duplicates, Corrupts atomic.Int64
}

// FaultSnapshot is a race-free point-in-time copy of FaultStats.
type FaultSnapshot struct {
	Drops, Delays, Duplicates, Corrupts int64
}

// Snapshot returns the counters as plain values; safe to call while a
// collective is injecting faults.
func (s *FaultStats) Snapshot() FaultSnapshot {
	return FaultSnapshot{
		Drops: s.Drops.Load(), Delays: s.Delays.Load(),
		Duplicates: s.Duplicates.Load(), Corrupts: s.Corrupts.Load(),
	}
}

// Reset zeroes every counter.
func (s *FaultStats) Reset() {
	s.Drops.Store(0)
	s.Delays.Store(0)
	s.Duplicates.Store(0)
	s.Corrupts.Store(0)
}

// FaultConfig configures the fault-injecting transport wrapper.
type FaultConfig struct {
	// Seed makes the fault sequence reproducible.
	Seed int64
	// Default applies to every link without a per-class override.
	Default FaultRates
	// PerClass overrides rates for specific link classes (keys are the
	// topology.ChannelClass strings, e.g. "nvlink", "cross-machine").
	PerClass map[string]FaultRates
	// Classify maps a transfer's endpoints to a link class for PerClass
	// lookup. Nil means every link uses Default.
	Classify func(src, dst int) string
	// MaxDelay bounds the injected delay (uniform in (0, MaxDelay]);
	// defaults to 1ms when a Delay rate is set.
	MaxDelay time.Duration
	// Stats, when non-nil, counts injected faults.
	Stats *FaultStats
}

func (c FaultConfig) ratesFor(src, dst int) FaultRates {
	if c.Classify != nil && len(c.PerClass) > 0 {
		if r, ok := c.PerClass[c.Classify(src, dst)]; ok {
			return r
		}
	}
	return c.Default
}

type faultTransport struct {
	inner Transport
	cfg   FaultConfig

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFaultTransport wraps inner with seeded fault injection. Use it under
// NewRetryTransport so injected failures are retried; without the retry
// decorator they surface directly as client errors.
func NewFaultTransport(inner Transport, cfg FaultConfig) Transport {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Millisecond
	}
	return &faultTransport{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// roll draws the fault decisions for one send under the mutex so concurrent
// clients keep the sequence deterministic per (seed, arrival order).
// Unwrap exposes the decorated transport (see WrappingTransport).
func (t *faultTransport) Unwrap() Transport { return t.inner }

func (t *faultTransport) roll(r FaultRates) (drop, dup, corrupt bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r.Drop > 0 && t.rng.Float64() < r.Drop {
		return true, false, false, 0
	}
	dup = r.Duplicate > 0 && t.rng.Float64() < r.Duplicate
	corrupt = r.Corrupt > 0 && t.rng.Float64() < r.Corrupt
	if r.Delay > 0 && t.rng.Float64() < r.Delay {
		delay = time.Duration(1 + t.rng.Int63n(int64(t.cfg.MaxDelay)))
	}
	return drop, dup, corrupt, delay
}

func (t *faultTransport) Send(ctx context.Context, key TransferKey, tr core.Transfer, msg Message) error {
	rates := t.cfg.ratesFor(tr.Src, tr.Dst)
	if rates.zero() {
		return t.inner.Send(ctx, key, tr, msg)
	}
	drop, dup, corrupt, delay := t.roll(rates)
	if drop {
		t.count(func(s *FaultStats) *atomic.Int64 { return &s.Drops })
		return ErrDropped
	}
	if delay > 0 {
		t.count(func(s *FaultStats) *atomic.Int64 { return &s.Delays })
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	deliver := msg
	if corrupt {
		t.count(func(s *FaultStats) *atomic.Int64 { return &s.Corrupts })
		deliver = corruptCopy(msg)
	}
	if dup {
		t.count(func(s *FaultStats) *atomic.Int64 { return &s.Duplicates })
		// Best effort: a lost duplicate is invisible to the protocol.
		_ = t.inner.Send(ctx, key, tr, deliver) //dgclvet:ignore errwrap duplicate injection is fire-and-forget; the tracked copy below carries the error
	}
	if err := t.inner.Send(ctx, key, tr, deliver); err != nil {
		return err
	}
	if corrupt {
		// The reliable-delivery layer's NACK: the sender learns the copy
		// arrived damaged and (under the retry decorator) retransmits.
		return ErrCorrupt
	}
	return nil
}

func (t *faultTransport) Recv(ctx context.Context, key TransferKey, tr core.Transfer) (Message, error) {
	msg, err := t.inner.Recv(ctx, key, tr)
	if err != nil {
		return Message{}, err
	}
	// Injection implies verification: damaged copies must not escape into
	// the runtime as silent data corruption.
	if !msg.Valid() {
		return Message{}, ErrCorrupt
	}
	return msg, nil
}

func (t *faultTransport) count(sel func(*FaultStats) *atomic.Int64) {
	if t.cfg.Stats != nil {
		sel(t.cfg.Stats).Add(1)
	}
}

// corruptCopy flips one float's bits in a copy of the payload, leaving the
// original (which the retry decorator will retransmit) intact.
func corruptCopy(msg Message) Message {
	rows := tensor.New(msg.Rows.Rows, msg.Rows.Cols)
	copy(rows.Data, msg.Rows.Data)
	if len(rows.Data) > 0 {
		bits := math.Float32bits(rows.Data[0]) ^ 0xDEADBEEF
		rows.Data[0] = math.Float32frombits(bits)
	}
	return Message{Rows: rows, Checksum: msg.Checksum}
}
