package runtime

import (
	"reflect"
	"testing"
)

// Direct-evidence API battery: the lease-based supervisors (internal/worker's
// coordinator) feed the HealthTracker one observation at a time instead of
// whole collectives; strikes, renewals, and explicit evidence must follow the
// same verdict model as the collective path.

func TestHealthDirectStrikesReachVerdict(t *testing.T) {
	h := NewHealthTracker(3, nil, nil)
	if h.ObserveStrike(5) {
		t.Fatal("first strike produced a verdict")
	}
	if h.ObserveStrike(5) {
		t.Fatal("second strike produced a verdict")
	}
	if got := h.Strikes(5); got != 2 {
		t.Fatalf("Strikes = %d, want 2", got)
	}
	if !h.ObserveStrike(5) {
		t.Fatal("third strike did not reach the DownAfter=3 verdict")
	}
	if !h.Down(5) {
		t.Fatal("verdict not visible through Down")
	}
	if got := h.Strikes(5); got != 0 {
		t.Fatalf("strikes persisted past the verdict: %d", got)
	}
}

func TestHealthRenewalClearsStrikesButNotVerdicts(t *testing.T) {
	h := NewHealthTracker(2, nil, nil)
	h.ObserveStrike(3)
	h.ObserveRenewal(3)
	if got := h.Strikes(3); got != 0 {
		t.Fatalf("renewal left %d strikes", got)
	}
	// The count restarts: one more strike is not a verdict.
	if h.ObserveStrike(3) {
		t.Fatal("strike after renewal reached a verdict")
	}
	if !h.ObserveStrike(3) {
		t.Fatal("second consecutive strike did not reach the verdict")
	}
	// Verdicts are persistent: a late renewal never resurrects the device.
	h.ObserveRenewal(3)
	if !h.Down(3) {
		t.Fatal("renewal resurrected a judged-down device")
	}
	if !h.ObserveStrike(3) {
		t.Fatal("strike on a judged-down device must still report the verdict")
	}
}

func TestHealthEvidenceIsImmediateAndFeedsCrash(t *testing.T) {
	crash := NewCrashTracker(CrashConfig{})
	h := NewHealthTracker(5, crash, nil)
	h.ObserveEvidence(7)
	if !h.Down(7) {
		t.Fatal("explicit evidence did not produce an immediate verdict")
	}
	if !crash.Down(7) {
		t.Fatal("verdict did not reach the crash tracker")
	}
	h.ObserveStrike(2)
	h.ObserveEvidence(2)
	if got := h.DownDevices(); !reflect.DeepEqual(got, []int{2, 7}) {
		t.Fatalf("DownDevices = %v, want [2 7]", got)
	}
}
