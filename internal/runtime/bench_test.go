package runtime

import (
	"fmt"
	"testing"

	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/tensor"
	"dgcl/internal/topology"
)

// Epoch hot-path benchmarks (ISSUE 5): BenchmarkAllgather times the forward
// graphAllgather alone, BenchmarkEpoch the full forward+backward+SGD step.
// Both report allocations (b.ReportAllocs) so the bench-smoke tier's
// BENCH_runtime.json tracks the steady-state allocation budget alongside
// wall-clock time; cmd/dgclbenchdiff prints the delta between two runs.

// benchCase is one synthesized workload: a community graph partitioned over
// k GPUs with an SPST plan, the configuration the paper's epoch measurements
// use.
type benchCase struct {
	k, verts, cols int
}

func (bc benchCase) name() string { return fmt.Sprintf("k%d/v%d/c%d", bc.k, bc.verts, bc.cols) }

func buildBenchCluster(b *testing.B, bc benchCase) (*Cluster, *comm.Relation) {
	b.Helper()
	g := graph.CommunityGraph(bc.verts, 8, 4, 0.8, 1)
	p, err := partition.KWay(g, bc.k, partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rel, err := comm.Build(g, p)
	if err != nil {
		b.Fatal(err)
	}
	plan, _, err := core.PlanSPST(rel, topology.SubDGX1(bc.k), int64(4*bc.cols), core.SPSTOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCluster(rel, comm.BuildLocalGraphs(g, rel), plan)
	if err != nil {
		b.Fatal(err)
	}
	return c, rel
}

// BenchmarkAllgather times one forward graphAllgather per iteration.
func BenchmarkAllgather(b *testing.B) {
	for _, bc := range []benchCase{
		{k: 4, verts: 1200, cols: 32},
		{k: 8, verts: 3000, cols: 64},
	} {
		b.Run(bc.name(), func(b *testing.B) {
			c, rel := buildBenchCluster(b, bc)
			local := make([]*tensor.Matrix, bc.k)
			for d := 0; d < bc.k; d++ {
				local[d] = tensor.New(len(rel.Local[d]), bc.cols).FillRandom(int64(d) + 1)
			}
			if _, err := c.Allgather(local); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Allgather(local); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEpoch times one full distributed training epoch per iteration:
// per-layer forward allgathers + layer compute, loss, backward layer compute
// + reverse allgather, gradient allreduce, and the SGD step.
func BenchmarkEpoch(b *testing.B) {
	benchEpoch(b, OverlapConfig{})
}

// BenchmarkEpochOverlap is BenchmarkEpoch with the chunked pipelined
// executor on — the same math (bit-identical results), overlapped schedule.
func BenchmarkEpochOverlap(b *testing.B) {
	benchEpoch(b, OverlapConfig{Enabled: true, ChunkRows: 256, Window: 4})
}

func benchEpoch(b *testing.B, ov OverlapConfig) {
	for _, bc := range []benchCase{
		{k: 4, verts: 1200, cols: 32},
		{k: 8, verts: 3000, cols: 64},
	} {
		b.Run(bc.name(), func(b *testing.B) {
			c, _ := buildBenchCluster(b, bc)
			c.Overlap = ov
			hidden := bc.cols / 2
			model := gnn.NewModel(gnn.GCN, bc.cols, hidden, 2, 7)
			features := tensor.New(bc.verts, bc.cols).FillRandom(11)
			targets := tensor.New(bc.verts, hidden).FillRandom(12)
			tr, err := NewTrainer(c, model, features, targets)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tr.Epoch(); err != nil {
				b.Fatal(err)
			}
			tr.Step(0.01)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Epoch(); err != nil {
					b.Fatal(err)
				}
				tr.Step(0.01)
			}
		})
	}
}
