package runtime

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dgcl/internal/core"
)

// Fail-stop crash injection. Message-level faults (fault.go) model lossy
// links that retries can hide; this layer models the failure mode that
// dominates long multi-machine GNN jobs: a whole device dying mid-epoch and
// never coming back. A CrashConfig is a seeded-free, fully deterministic
// schedule ("device d dies at epoch E, stage S"); the CrashTracker turns it
// into a monotone per-device down set, and the crash transport wrapper makes
// every send or receive touching a crashed device fail fast with
// ErrDeviceDown — which is NOT retryable, so it cuts through the retry
// decorator and surfaces to the client immediately. Callers distinguish
// "lossy link, retry" (TransportError wrapping ErrDropped & co.) from "peer
// is gone, recover" (DeviceDownError) and react by replanning over the
// survivors (see dgcl.System.Degrade).

// ErrDeviceDown reports that a transfer endpoint has failed fail-stop. It is
// permanent: no retry budget can bring the device back.
var ErrDeviceDown = errors.New("device down")

// DeviceDownError identifies which device a transfer found dead. It unwraps
// to ErrDeviceDown so errors.Is(err, ErrDeviceDown) matches anywhere in a
// CollectiveError chain.
type DeviceDownError struct {
	// Device is the external device id (original GPU numbering, stable
	// across degraded replans — see Cluster.DeviceIDs).
	Device int
}

func (e *DeviceDownError) Error() string {
	return fmt.Sprintf("device %d is down", e.Device)
}

func (e *DeviceDownError) Unwrap() error { return ErrDeviceDown }

// CrashEvent schedules one fail-stop failure: Device dies the first time any
// transfer of epoch Epoch reaches plan stage Stage (0-based flattened stage
// index; stage 0 means the device is dead from the epoch's first transfer).
// Once down, a device stays down for the rest of the run.
type CrashEvent struct {
	Device int
	Epoch  int
	Stage  int
}

// CrashConfig is a deterministic fail-stop schedule.
type CrashConfig struct {
	Events []CrashEvent
}

// ParseCrashSchedule parses a comma-separated schedule of the form
// "dev@epoch" or "dev@epoch:stage" (e.g. "2@3:1,5@7"). An omitted stage
// means stage 0.
func ParseCrashSchedule(s string) (*CrashConfig, error) {
	cfg := &CrashConfig{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		devStr, at, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("runtime: crash event %q: want dev@epoch[:stage]", part)
		}
		epochStr, stageStr, hasStage := strings.Cut(at, ":")
		dev, err := strconv.Atoi(devStr)
		if err != nil {
			return nil, fmt.Errorf("runtime: crash event %q: bad device: %w", part, err)
		}
		epoch, err := strconv.Atoi(epochStr)
		if err != nil {
			return nil, fmt.Errorf("runtime: crash event %q: bad epoch: %w", part, err)
		}
		stage := 0
		if hasStage {
			stage, err = strconv.Atoi(stageStr)
			if err != nil {
				return nil, fmt.Errorf("runtime: crash event %q: bad stage: %w", part, err)
			}
		}
		if dev < 0 || epoch < 0 || stage < 0 {
			return nil, fmt.Errorf("runtime: crash event %q: negative field", part)
		}
		cfg.Events = append(cfg.Events, CrashEvent{Device: dev, Epoch: epoch, Stage: stage})
	}
	if len(cfg.Events) == 0 {
		return nil, fmt.Errorf("runtime: empty crash schedule %q", s)
	}
	return cfg, nil
}

// CrashTracker executes a CrashConfig: it tracks the current epoch, fires
// scheduled events as transfers reach their stage, and exposes the monotone
// down set. One tracker outlives cluster rebuilds, so devices that died
// before a degraded replan stay dead in the rebuilt world. All methods are
// safe for concurrent use by the client goroutines of a collective.
type CrashTracker struct {
	mu       sync.Mutex
	pending  []CrashEvent
	epoch    int
	down     map[int]bool
	watchers map[int]crashWatch
	nextID   int
}

// crashWatch is one receiver waiting on a transfer: if either watched device
// is marked down, cancel unblocks it.
type crashWatch struct {
	devices [2]int
	cancel  context.CancelFunc
}

// NewCrashTracker builds a tracker for the schedule. A nil-safe empty
// config yields a tracker that never fires (but MarkDown still works, so the
// health tracker can feed verdicts into it).
func NewCrashTracker(cfg CrashConfig) *CrashTracker {
	t := &CrashTracker{
		pending:  append([]CrashEvent(nil), cfg.Events...),
		epoch:    -1,
		down:     make(map[int]bool),
		watchers: make(map[int]crashWatch),
	}
	return t
}

// BeginEpoch advances the tracker's epoch clock. The trainer calls it before
// each epoch's first collective; events of earlier epochs that never fired
// (their stage was beyond the plan) fire now, keeping the schedule monotone.
func (t *CrashTracker) BeginEpoch(epoch int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epoch = epoch
	t.fireLocked(func(e CrashEvent) bool { return e.Epoch < epoch })
}

// advance fires every pending event of the current epoch whose stage has
// been reached. Called by the crash transport on every send/receive with the
// transfer's stage, so the down decision is a pure function of (epoch,
// stage) rather than of goroutine scheduling.
func (t *CrashTracker) advance(stage int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fireLocked(func(e CrashEvent) bool { return e.Epoch == t.epoch && e.Stage <= stage })
}

// fireLocked marks down every pending event matching the predicate and wakes
// watchers of those devices. Caller holds t.mu.
func (t *CrashTracker) fireLocked(match func(CrashEvent) bool) {
	kept := t.pending[:0]
	for _, e := range t.pending {
		if match(e) {
			t.markDownLocked(e.Device)
		} else {
			kept = append(kept, e)
		}
	}
	t.pending = kept
}

func (t *CrashTracker) markDownLocked(dev int) {
	if t.down[dev] {
		return
	}
	t.down[dev] = true
	// Wake every receiver blocked on a transfer touching the dead device.
	// Cancel order does not matter: each watcher independently observes the
	// same monotone down set when it wakes.
	for _, w := range t.watchers {
		if w.devices[0] == dev || w.devices[1] == dev {
			w.cancel()
		}
	}
}

// MarkDown records an externally detected failure (e.g. a health-tracker
// verdict) as a fail-stop death.
func (t *CrashTracker) MarkDown(dev int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.markDownLocked(dev)
}

// Down reports whether the device has failed.
func (t *CrashTracker) Down(dev int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.down[dev]
}

// DownDevices returns every failed device, ascending.
func (t *CrashTracker) DownDevices() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, len(t.down))
	for d := range t.down {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// watch registers a cancellation hook fired if either device goes down;
// the returned func unregisters it. Used by crash-transport receives so a
// receiver blocked on a dead sender unblocks immediately instead of running
// out its receive deadline.
func (t *CrashTracker) watch(a, b int, cancel context.CancelFunc) func() {
	t.mu.Lock()
	id := t.nextID
	t.nextID++
	t.watchers[id] = crashWatch{devices: [2]int{a, b}, cancel: cancel}
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		delete(t.watchers, id)
		t.mu.Unlock()
	}
}

// crashTransport fails every transfer touching a crashed device. It sits
// directly below the retry decorator (above fault injection, so dead links
// stop rolling message faults): ErrDeviceDown is not retryable, so the retry
// decorator passes it through to the client unmodified.
type crashTransport struct {
	inner   Transport
	tracker *CrashTracker
	ids     []int // client index -> external device id; nil = identity
}

// NewCrashTransport wraps inner with fail-stop crash injection/propagation.
// ids maps the cluster's client indices to external device ids (the original
// GPU numbering); nil means the identity mapping.
func NewCrashTransport(inner Transport, tracker *CrashTracker, ids []int) Transport {
	return &crashTransport{inner: inner, tracker: tracker, ids: ids}
}

// Unwrap exposes the decorated transport (see WrappingTransport).
func (t *crashTransport) Unwrap() Transport { return t.inner }

func (t *crashTransport) dev(i int) int {
	if t.ids == nil {
		return i
	}
	return t.ids[i]
}

// downEndpoint returns the external id of a crashed endpoint of tr, or -1.
func (t *crashTransport) downEndpoint(tr core.Transfer) int {
	if src := t.dev(tr.Src); t.tracker.Down(src) {
		return src
	}
	if dst := t.dev(tr.Dst); t.tracker.Down(dst) {
		return dst
	}
	return -1
}

func (t *crashTransport) Send(ctx context.Context, key TransferKey, tr core.Transfer, msg Message) error {
	t.tracker.advance(key.Stage)
	if dev := t.downEndpoint(tr); dev >= 0 {
		return &DeviceDownError{Device: dev}
	}
	return t.inner.Send(ctx, key, tr, msg)
}

func (t *crashTransport) Recv(ctx context.Context, key TransferKey, tr core.Transfer) (Message, error) {
	t.tracker.advance(key.Stage)
	if dev := t.downEndpoint(tr); dev >= 0 {
		return Message{}, &DeviceDownError{Device: dev}
	}
	// A dead sender never delivers: watch the endpoints so this receive
	// unblocks the moment either dies, instead of burning its full receive
	// deadline per transfer.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	unwatch := t.tracker.watch(t.dev(tr.Src), t.dev(tr.Dst), cancel)
	defer unwatch()
	msg, err := t.inner.Recv(ctx, key, tr)
	if err != nil {
		if dev := t.downEndpoint(tr); dev >= 0 {
			return Message{}, &DeviceDownError{Device: dev}
		}
	}
	return msg, err
}
