package runtime

import (
	"context"
	"math"
	"testing"

	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/tensor"
)

// Regression tests for the context-threaded trainer entry points: Epoch and
// Forward used to call the Background-context collectives, so a caller could
// not bound an epoch by a deadline at all.

// An already-canceled context must fail the epoch promptly in the first
// allgather, not hang or complete the epoch.
func TestEpochContextCanceled(t *testing.T) {
	g := graph.CommunityGraph(120, 8, 4, 0.8, 7)
	n := g.NumVertices()
	model := gnn.NewModel(gnn.GCN, 5, 4, 2, 11)
	features := tensor.New(n, 5).FillRandom(12)
	targets := tensor.New(n, 4).FillRandom(13)

	c, _ := setup(t, g, 4, 7, 20)
	tr, err := NewTrainer(c, model, features, targets)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.EpochContext(ctx); err == nil {
		t.Fatal("EpochContext succeeded under a canceled context")
	}
	if _, err := tr.ForwardContext(ctx, n); err == nil {
		t.Fatal("ForwardContext succeeded under a canceled context")
	}
}

// A live context must be invisible: EpochContext(ctx) produces exactly the
// numbers Epoch() produces on an identical replica.
func TestEpochContextEquivalence(t *testing.T) {
	g := graph.CommunityGraph(120, 8, 4, 0.8, 17)
	n := g.NumVertices()
	model := gnn.NewModel(gnn.GCN, 5, 4, 2, 19)
	features := tensor.New(n, 5).FillRandom(21)
	targets := tensor.New(n, 4).FillRandom(23)

	losses := make([]float64, 2)
	for i := 0; i < 2; i++ {
		c, _ := setup(t, g, 4, 17, 20)
		tr, err := NewTrainer(c, model.Clone(), features, targets)
		if err != nil {
			t.Fatal(err)
		}
		var loss float64
		if i == 0 {
			loss, err = tr.Epoch()
		} else {
			loss, err = tr.EpochContext(context.Background())
		}
		if err != nil {
			t.Fatal(err)
		}
		losses[i] = loss
	}
	if losses[0] != losses[1] {
		t.Fatalf("Epoch loss %v != EpochContext loss %v (must be bit-identical)", losses[0], losses[1])
	}
	if math.IsNaN(losses[0]) {
		t.Fatal("loss is NaN")
	}
}
