package runtime

import (
	"fmt"
	"sync/atomic"
)

// CommStats counts actual data movement performed by the runtime, per GPU.
// Counters are updated atomically so concurrent clients can report while
// running; they accumulate across allgathers until Reset.
type CommStats struct {
	k            int
	sentBytes    []atomic.Int64
	recvBytes    []atomic.Int64
	sentMsgs     []atomic.Int64
	recvMsgs     []atomic.Int64
	relayedBytes []atomic.Int64
}

// NewCommStats allocates counters for k GPUs.
func NewCommStats(k int) *CommStats {
	return &CommStats{
		k:         k,
		sentBytes: make([]atomic.Int64, k), recvBytes: make([]atomic.Int64, k),
		sentMsgs: make([]atomic.Int64, k), recvMsgs: make([]atomic.Int64, k),
		relayedBytes: make([]atomic.Int64, k),
	}
}

// Reset zeroes every counter.
func (s *CommStats) Reset() {
	for d := 0; d < s.k; d++ {
		s.sentBytes[d].Store(0)
		s.recvBytes[d].Store(0)
		s.sentMsgs[d].Store(0)
		s.recvMsgs[d].Store(0)
		s.relayedBytes[d].Store(0)
	}
}

// Sent returns (bytes, messages) GPU d has sent.
func (s *CommStats) Sent(d int) (int64, int64) {
	return s.sentBytes[d].Load(), s.sentMsgs[d].Load()
}

// Received returns (bytes, messages) GPU d has received.
func (s *CommStats) Received(d int) (int64, int64) {
	return s.recvBytes[d].Load(), s.recvMsgs[d].Load()
}

// Relayed returns the bytes GPU d sent on behalf of other owners.
func (s *CommStats) Relayed(d int) int64 { return s.relayedBytes[d].Load() }

// TotalBytes returns all bytes sent across the cluster.
func (s *CommStats) TotalBytes() int64 {
	var t int64
	for d := 0; d < s.k; d++ {
		t += s.sentBytes[d].Load()
	}
	return t
}

// String renders a per-GPU summary.
func (s *CommStats) String() string {
	out := ""
	for d := 0; d < s.k; d++ {
		sb, sm := s.Sent(d)
		rb, rm := s.Received(d)
		out += fmt.Sprintf("gpu%d: sent %d B in %d msgs (relayed %d B), received %d B in %d msgs\n",
			d, sb, sm, s.Relayed(d), rb, rm)
	}
	return out
}

// statsTest helpers live in cluster_test.go.
