package runtime

import (
	"context"
	"fmt"
	"sync/atomic"

	"dgcl/internal/core"
)

// CommStats counts actual data movement performed by the runtime, per GPU.
// Counters are updated atomically so concurrent clients can report while
// running; they accumulate across allgathers until Reset. The counters live
// behind the transport layer (see statsTransport): send/receive sites in the
// clients no longer touch them, so every transport path — forward, backward,
// retried, faulty — is accounted uniformly.
type CommStats struct {
	k            int
	sentBytes    []atomic.Int64
	recvBytes    []atomic.Int64
	sentMsgs     []atomic.Int64
	recvMsgs     []atomic.Int64
	relayedBytes []atomic.Int64
	retries      []atomic.Int64
	timeouts     []atomic.Int64
}

// NewCommStats allocates counters for k GPUs.
func NewCommStats(k int) *CommStats {
	return &CommStats{
		k:         k,
		sentBytes: make([]atomic.Int64, k), recvBytes: make([]atomic.Int64, k),
		sentMsgs: make([]atomic.Int64, k), recvMsgs: make([]atomic.Int64, k),
		relayedBytes: make([]atomic.Int64, k),
		retries:      make([]atomic.Int64, k), timeouts: make([]atomic.Int64, k),
	}
}

// Reset zeroes every counter.
func (s *CommStats) Reset() {
	for d := 0; d < s.k; d++ {
		s.sentBytes[d].Store(0)
		s.recvBytes[d].Store(0)
		s.sentMsgs[d].Store(0)
		s.recvMsgs[d].Store(0)
		s.relayedBytes[d].Store(0)
		s.retries[d].Store(0)
		s.timeouts[d].Store(0)
	}
}

// Sent returns (bytes, messages) GPU d has sent.
func (s *CommStats) Sent(d int) (int64, int64) {
	return s.sentBytes[d].Load(), s.sentMsgs[d].Load()
}

// Received returns (bytes, messages) GPU d has received.
func (s *CommStats) Received(d int) (int64, int64) {
	return s.recvBytes[d].Load(), s.recvMsgs[d].Load()
}

// Relayed returns the bytes GPU d sent on behalf of other owners.
func (s *CommStats) Relayed(d int) int64 { return s.relayedBytes[d].Load() }

// Retries returns the retransmissions GPU d performed as a sender.
func (s *CommStats) Retries(d int) int64 { return s.retries[d].Load() }

// Timeouts returns the receive deadlines GPU d hit.
func (s *CommStats) Timeouts(d int) int64 { return s.timeouts[d].Load() }

// GPUCommSnapshot is one GPU's counters at a point in time.
type GPUCommSnapshot struct {
	SentBytes, SentMsgs int64
	RecvBytes, RecvMsgs int64
	RelayedBytes        int64
	Retries, Timeouts   int64
}

// CommSnapshot is a consistent-enough point-in-time copy of CommStats: each
// counter is loaded atomically, so a snapshot taken while a collective is in
// flight is race-free (individual counters may be mid-update relative to
// each other, which is fine for health evidence and reporting).
type CommSnapshot struct {
	PerGPU []GPUCommSnapshot
}

// TotalTimeouts sums the receive-deadline hits across the snapshot.
func (s CommSnapshot) TotalTimeouts() int64 {
	var t int64
	for _, g := range s.PerGPU {
		t += g.Timeouts
	}
	return t
}

// TotalRetries sums the retransmissions across the snapshot.
func (s CommSnapshot) TotalRetries() int64 {
	var t int64
	for _, g := range s.PerGPU {
		t += g.Retries
	}
	return t
}

// Snapshot returns a race-free copy of every counter; safe to call while
// collectives are running.
func (s *CommStats) Snapshot() CommSnapshot {
	out := CommSnapshot{PerGPU: make([]GPUCommSnapshot, s.k)}
	for d := 0; d < s.k; d++ {
		out.PerGPU[d] = GPUCommSnapshot{
			SentBytes: s.sentBytes[d].Load(), SentMsgs: s.sentMsgs[d].Load(),
			RecvBytes: s.recvBytes[d].Load(), RecvMsgs: s.recvMsgs[d].Load(),
			RelayedBytes: s.relayedBytes[d].Load(),
			Retries:      s.retries[d].Load(), Timeouts: s.timeouts[d].Load(),
		}
	}
	return out
}

// TotalBytes returns all bytes sent across the cluster.
func (s *CommStats) TotalBytes() int64 {
	var t int64
	for d := 0; d < s.k; d++ {
		t += s.sentBytes[d].Load()
	}
	return t
}

// TotalRetries returns all retransmissions across the cluster.
func (s *CommStats) TotalRetries() int64 {
	var t int64
	for d := 0; d < s.k; d++ {
		t += s.retries[d].Load()
	}
	return t
}

// TotalTimeouts returns all receive deadline hits across the cluster.
func (s *CommStats) TotalTimeouts() int64 {
	var t int64
	for d := 0; d < s.k; d++ {
		t += s.timeouts[d].Load()
	}
	return t
}

// String renders a per-GPU summary.
func (s *CommStats) String() string {
	out := ""
	for d := 0; d < s.k; d++ {
		sb, sm := s.Sent(d)
		rb, rm := s.Received(d)
		out += fmt.Sprintf("gpu%d: sent %d B in %d msgs (relayed %d B), received %d B in %d msgs",
			d, sb, sm, s.Relayed(d), rb, rm)
		if r, to := s.Retries(d), s.Timeouts(d); r > 0 || to > 0 {
			out += fmt.Sprintf(", %d retries, %d timeouts", r, to)
		}
		out += "\n"
	}
	return out
}

// statsTransport accounts successful sends and receives into CommStats. It
// wraps the outermost transport so a logical transfer is counted once, no
// matter how many retransmissions or duplicates the layers below produced —
// the retry layer reports those separately via the retry/timeout counters.
type statsTransport struct {
	inner Transport
	stats *CommStats
	// owner maps global vertex id -> owning GPU for relay accounting;
	// relayAware is false for backward collectives, where the sender almost
	// never owns the gradients it forwards and the forward-relay notion
	// does not apply.
	owner      []int32
	relayAware bool
}

func newStatsTransport(inner Transport, stats *CommStats, owner []int32, relayAware bool) Transport {
	return &statsTransport{inner: inner, stats: stats, owner: owner, relayAware: relayAware}
}

// NewStatsTransport wraps inner with per-GPU transfer accounting. Exported
// for the transport conformance battery; production composition happens in
// Cluster.newTransport.
func NewStatsTransport(inner Transport, stats *CommStats, owner []int32, relayAware bool) Transport {
	return newStatsTransport(inner, stats, owner, relayAware)
}

// Unwrap exposes the decorated transport (see WrappingTransport).
func (t *statsTransport) Unwrap() Transport { return t.inner }

func (t *statsTransport) Send(ctx context.Context, key TransferKey, tr core.Transfer, msg Message) error {
	// Size the payload before handing it to the inner transport: once Send
	// returns, the receiver may already have consumed the message and
	// recycled its buffer into the cluster pool, so the sender must not
	// touch msg afterwards.
	bytes := int64(len(msg.Rows.Data)) * 4
	if err := t.inner.Send(ctx, key, tr, msg); err != nil {
		return err
	}
	t.stats.sentBytes[tr.Src].Add(bytes)
	t.stats.sentMsgs[tr.Src].Add(1)
	if t.relayAware && len(tr.Vertices) > 0 {
		perVertex := bytes / int64(len(tr.Vertices))
		var relayed int64
		for _, v := range tr.Vertices {
			if int(t.owner[v]) != tr.Src {
				relayed += perVertex
			}
		}
		if relayed > 0 {
			t.stats.relayedBytes[tr.Src].Add(relayed)
		}
	}
	return nil
}

func (t *statsTransport) Recv(ctx context.Context, key TransferKey, tr core.Transfer) (Message, error) {
	msg, err := t.inner.Recv(ctx, key, tr)
	if err != nil {
		return Message{}, err
	}
	t.stats.recvBytes[tr.Dst].Add(int64(len(msg.Rows.Data)) * 4)
	t.stats.recvMsgs[tr.Dst].Add(1)
	return msg, nil
}
