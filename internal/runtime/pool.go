package runtime

import (
	"math/bits"
	"sync"

	"dgcl/internal/tensor"
)

// bufPool is the cluster-owned, size-classed free list for transfer payloads
// and relay arenas. Every steady-state buffer the hot path needs cycles
// through here: a send buffer is filled, shipped, consumed by the receiving
// client, and returned (see Cluster.recycle), so after the first collective
// warms the pool an epoch performs no per-transfer data allocations.
//
// This is deliberately NOT a sync.Pool: sync.Pool is emptied by GC at
// arbitrary points, which would make steady-state allocation counts (and the
// testing.AllocsPerRun regression tests that pin them) nondeterministic. A
// plain mutex-guarded free list keeps buffers alive for the cluster's
// lifetime — bounded, since the working set is one collective's transfers.
//
// Buffers are binned by power-of-two capacity: get rounds the requested
// element count up to the next power of two (so a 100-row buffer can later
// serve a 97-row transfer of the same shape class), put bins by the
// capacity's floor class. All pooled buffers are allocated here with exact
// power-of-two capacity, so the round trip is exact. Pooled memory is dirty
// by contract: every consumer either fully overwrites the rows it uses
// (sends, forward arenas) or explicitly zeroes accumulator rows (backward
// relay arenas).
type bufPool struct {
	mu   sync.Mutex
	free map[int][]*tensor.Matrix
}

// get returns a rows×cols matrix backed by pooled (dirty) memory,
// allocating a power-of-two-capacity buffer on a miss.
func (p *bufPool) get(rows, cols int) *tensor.Matrix {
	n := rows * cols
	if n == 0 {
		return tensor.New(rows, cols)
	}
	cl := bits.Len(uint(n - 1)) // ceil(log2(n))
	p.mu.Lock()
	if ms := p.free[cl]; len(ms) > 0 {
		m := ms[len(ms)-1]
		p.free[cl] = ms[:len(ms)-1]
		p.mu.Unlock()
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:n]
		return m
	}
	p.mu.Unlock()
	return tensor.FromData(rows, cols, make([]float32, n, 1<<cl)[:n])
}

// MatrixPool is the exported face of the size-classed free list, for
// transports that manage their own receive/serialization buffers (the wire
// transport decodes frames into pooled matrices and takes them back through
// Cluster.recycle). Like bufPool it is deliberately not a sync.Pool, so
// AllocsPerRun regression tests over the wire path stay deterministic.
type MatrixPool struct{ p bufPool }

// Get returns a rows×cols matrix backed by pooled (dirty) memory.
func (mp *MatrixPool) Get(rows, cols int) *tensor.Matrix { return mp.p.get(rows, cols) }

// Put returns a matrix to the pool.
func (mp *MatrixPool) Put(m *tensor.Matrix) { mp.p.put(m) }

// put returns a matrix to the pool. Zero-capacity and non-pool-shaped
// buffers are dropped.
func (p *bufPool) put(m *tensor.Matrix) {
	c := cap(m.Data)
	if c == 0 {
		return
	}
	cl := bits.Len(uint(c)) - 1 // floor(log2(cap))
	p.mu.Lock()
	if p.free == nil {
		p.free = make(map[int][]*tensor.Matrix)
	}
	p.free[cl] = append(p.free[cl], m)
	p.mu.Unlock()
}
