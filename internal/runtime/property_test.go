package runtime

import (
	"fmt"
	"testing"

	"dgcl/internal/baselines"
	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/tensor"
	"dgcl/internal/topology"
)

// Property battery: across ~50 seeded (graph, topology, partition) triples,
// the concurrent graphAllgather must agree with a trivial serial reference
// gather, and the backward allgather with a serial transpose-accumulate
// reference. The references ignore the plan entirely (they index straight
// into the owners' matrices), so any routing, relaying, or staging bug in
// the runtime or planner shows up as a mismatch.

// ownerIndexMap maps global vertex id -> row index in the owner's matrix.
func ownerIndexMap(rel *comm.Relation) map[int32]int {
	idx := make(map[int32]int)
	for d := 0; d < rel.K; d++ {
		for i, v := range rel.Local[d] {
			idx[v] = i
		}
	}
	return idx
}

// referenceGather computes what Allgather must deliver, serially: each
// local-graph row is looked up directly in its owner's input matrix.
func referenceGather(rel *comm.Relation, locals []*comm.LocalGraph, local []*tensor.Matrix) []*tensor.Matrix {
	idx := ownerIndexMap(rel)
	cols := local[0].Cols
	out := make([]*tensor.Matrix, rel.K)
	for d := 0; d < rel.K; d++ {
		lg := locals[d]
		out[d] = tensor.New(lg.NumLocal+lg.NumRemote, cols)
		for i := 0; i < lg.NumLocal+lg.NumRemote; i++ {
			v := lg.GlobalID[i]
			copy(out[d].Row(i), local[rel.Owner[v]].Row(idx[v]))
		}
	}
	return out
}

// referenceBackward computes what BackwardAllgather must deliver, serially:
// the transpose of the gather. Every GPU's gradient row for a vertex is
// accumulated at the vertex's owner.
func referenceBackward(rel *comm.Relation, locals []*comm.LocalGraph, gradFull []*tensor.Matrix) []*tensor.Matrix {
	idx := ownerIndexMap(rel)
	cols := gradFull[0].Cols
	out := make([]*tensor.Matrix, rel.K)
	for d := 0; d < rel.K; d++ {
		out[d] = tensor.New(len(rel.Local[d]), cols)
	}
	for e := 0; e < rel.K; e++ {
		lg := locals[e]
		for i := 0; i < lg.NumLocal+lg.NumRemote; i++ {
			v := lg.GlobalID[i]
			dst := out[rel.Owner[v]].Row(idx[v])
			src := gradFull[e].Row(i)
			for j, x := range src {
				dst[j] += x
			}
		}
	}
	return out
}

// propertyCase is one seeded triple plus the planner choice.
type propertyCase struct {
	name    string
	g       *graph.Graph
	k       int
	seed    int64
	planner string // "spst" or "p2p"
	cols    int
}

// propertyCases enumerates the battery: 5 graph families x 5 GPU counts x 2
// planners = 50 triples, each with its own partition seed.
func propertyCases() []propertyCase {
	gens := []struct {
		name string
		make func(seed int64) *graph.Graph
	}{
		{"community", func(s int64) *graph.Graph { return graph.CommunityGraph(200, 8, 4, 0.8, s) }},
		{"rmat", func(s int64) *graph.Graph { return graph.RMAT(180, 900, 0.57, 0.19, 0.19, s) }},
		{"locality", func(s int64) *graph.Graph { return graph.LocalityGraph(160, 6, s) }},
		{"erdos", func(s int64) *graph.Graph { return graph.ErdosRenyi(150, 700, s) }},
		{"grid", func(s int64) *graph.Graph { return graph.Grid2D(12, 13) }},
	}
	ks := []int{2, 3, 4, 6, 8}
	var cases []propertyCase
	seed := int64(1)
	for _, gen := range gens {
		for _, k := range ks {
			for _, planner := range []string{"spst", "p2p"} {
				cases = append(cases, propertyCase{
					name:    fmt.Sprintf("%s/k%d/%s/seed%d", gen.name, k, planner, seed),
					g:       gen.make(seed),
					k:       k,
					seed:    seed,
					planner: planner,
					cols:    1 + int(seed%5),
				})
				seed++
			}
		}
	}
	return cases
}

func buildCase(t *testing.T, pc propertyCase) (*Cluster, *comm.Relation) {
	t.Helper()
	p, err := partition.KWay(pc.g, pc.k, partition.Options{Seed: pc.seed})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := comm.Build(pc.g, p)
	if err != nil {
		t.Fatal(err)
	}
	var plan *core.Plan
	if pc.planner == "p2p" {
		plan = baselines.PlanP2P(rel, int64(4*pc.cols))
	} else {
		plan, _, err = core.PlanSPST(rel, topology.SubDGX1(pc.k), int64(4*pc.cols), core.SPSTOptions{Seed: pc.seed})
		if err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewCluster(rel, comm.BuildLocalGraphs(pc.g, rel), plan)
	if err != nil {
		t.Fatal(err)
	}
	return c, rel
}

func TestPropertyAllgatherMatchesSerialReference(t *testing.T) {
	for _, pc := range propertyCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			t.Parallel()
			c, rel := buildCase(t, pc)
			local := make([]*tensor.Matrix, pc.k)
			for d := 0; d < pc.k; d++ {
				local[d] = tensor.New(len(rel.Local[d]), pc.cols).FillRandom(pc.seed + int64(d))
			}
			got, err := c.Allgather(local)
			if err != nil {
				t.Fatal(err)
			}
			want := referenceGather(rel, c.Locals, local)
			for d := 0; d < pc.k; d++ {
				// Forward moves pure copies: bit-identical, not merely close.
				if diff := tensor.MaxAbsDiff(got[d], want[d]); diff != 0 {
					t.Fatalf("GPU %d diverges from serial reference by %v", d, diff)
				}
			}
		})
	}
}

func TestPropertyBackwardMatchesTransposeReference(t *testing.T) {
	for _, pc := range propertyCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			t.Parallel()
			c, rel := buildCase(t, pc)
			// Exercise both backward schedules across the battery.
			c.NonAtomic = pc.seed%2 == 0
			gradFull := make([]*tensor.Matrix, pc.k)
			for d := 0; d < pc.k; d++ {
				lg := c.Locals[d]
				gradFull[d] = tensor.New(lg.NumLocal+lg.NumRemote, pc.cols).FillRandom(pc.seed + 100 + int64(d))
			}
			got, err := c.BackwardAllgather(gradFull)
			if err != nil {
				t.Fatal(err)
			}
			want := referenceBackward(rel, c.Locals, gradFull)
			for d := 0; d < pc.k; d++ {
				// Relays re-associate float32 sums; allow rounding slack only.
				if diff := tensor.MaxAbsDiff(got[d], want[d]); diff > 1e-4 {
					t.Fatalf("GPU %d diverges from transpose reference by %v", d, diff)
				}
			}
		})
	}
}
