package runtime

import (
	"context"
	"errors"
	"time"

	"dgcl/internal/core"
)

// RetryPolicy configures the retry/timeout transport decorator: how many
// retransmissions a sender may attempt, how it backs off between attempts,
// and how long a receiver waits before declaring a transfer lost. With a
// policy installed, a dropped or corrupted message becomes a structured
// *TransportError within a bounded time instead of a hung allgather.
type RetryPolicy struct {
	// MaxRetries is the retransmission budget per transfer (0 = a single
	// attempt, no retries).
	MaxRetries int
	// BaseBackoff is the wait before the first retransmission; it doubles
	// each retry up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RecvTimeout bounds each receive. 0 means no per-receive deadline
	// (the collective's context deadline still applies).
	RecvTimeout time.Duration
}

// DefaultRetryPolicy is a sane starting point: 4 retransmissions with
// 200µs..5ms exponential backoff, 2s receive deadline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries:  4,
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  5 * time.Millisecond,
		RecvTimeout: 2 * time.Second,
	}
}

func (p RetryPolicy) backoff(attempt int) time.Duration {
	if p.BaseBackoff <= 0 {
		return 0
	}
	d := p.BaseBackoff << uint(attempt)
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

type retryTransport struct {
	inner  Transport
	policy RetryPolicy
	stats  *CommStats // optional: retry/timeout counters
}

// NewRetryTransport decorates inner with the retry/timeout policy. stats,
// when non-nil, accumulates per-GPU retry and timeout counters (retries
// attributed to the sender, timeouts to the receiver).
func NewRetryTransport(inner Transport, policy RetryPolicy, stats *CommStats) Transport {
	return &retryTransport{inner: inner, policy: policy, stats: stats}
}

// Unwrap exposes the decorated transport (see WrappingTransport).
func (t *retryTransport) Unwrap() Transport { return t.inner }

func (t *retryTransport) Send(ctx context.Context, key TransferKey, tr core.Transfer, msg Message) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := t.inner.Send(ctx, key, tr, msg)
		if err == nil {
			return nil
		}
		if !IsRetryable(err) {
			return err
		}
		lastErr = err
		if attempt >= t.policy.MaxRetries {
			return &TransportError{Op: "send", Key: key, Src: tr.Src, Dst: tr.Dst,
				Attempts: attempt + 1, Err: lastErr}
		}
		if t.stats != nil {
			t.stats.retries[tr.Src].Add(1)
		}
		if d := t.policy.backoff(attempt); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return &TransportError{Op: "send", Key: key, Src: tr.Src, Dst: tr.Dst,
					Attempts: attempt + 1, Err: ctx.Err()}
			}
		} else if err := ctx.Err(); err != nil {
			return &TransportError{Op: "send", Key: key, Src: tr.Src, Dst: tr.Dst,
				Attempts: attempt + 1, Err: err}
		}
	}
}

func (t *retryTransport) Recv(ctx context.Context, key TransferKey, tr core.Transfer) (Message, error) {
	attempts := 0
	deadline := ctx
	cancel := func() {}
	if t.policy.RecvTimeout > 0 {
		deadline, cancel = context.WithTimeout(ctx, t.policy.RecvTimeout)
	}
	defer cancel()
	for {
		attempts++
		msg, err := t.inner.Recv(deadline, key, tr)
		if err == nil {
			return msg, nil
		}
		if errors.Is(err, ErrCorrupt) {
			// A damaged copy was consumed; the sender was NACKed and will
			// retransmit — keep waiting within the deadline.
			continue
		}
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			if t.stats != nil {
				t.stats.timeouts[tr.Dst].Add(1)
			}
			return Message{}, &TransportError{Op: "recv", Key: key, Src: tr.Src, Dst: tr.Dst,
				Attempts: attempts, Err: err}
		}
		return Message{}, err
	}
}
