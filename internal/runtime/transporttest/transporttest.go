// Package transporttest is the conformance battery every runtime.Transport
// implementation must pass: delivery fidelity, per-key FIFO ordering, context
// cancellation and deadline behavior, fail-fast Recv after the remote
// endpoint closes, and buffer-ownership discipline on both sides of a
// transfer. The in-memory channel transport, every decorator, and the wire
// transport all run the same table (see the conformance tests in the runtime
// and wire packages), so a new transport implementation starts by passing
// this battery. Production code must not import it.
package transporttest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dgcl/internal/core"
	"dgcl/internal/runtime"
	"dgcl/internal/tensor"
)

// Caps declares the optional behaviors of the transport under test.
type Caps struct {
	// Close, when non-nil, tears down the transport's remote endpoints;
	// after calling it a blocked or subsequent Recv must fail fast instead
	// of hanging. Nil means the transport has no close notion (in-memory
	// channels live for the collective) and the close cases are skipped.
	Close func()
}

// Factory builds a fresh transport instance for one stage layout. The
// battery calls it once per subtest, so per-instance state never leaks
// between cases.
type Factory func(t testing.TB, stages [][]core.Transfer) (runtime.Transport, Caps)

// stages is the battery's standard single-stage layout: four parallel
// transfers between four devices, each with its own TransferKey index.
func stages() [][]core.Transfer {
	return [][]core.Transfer{{
		{Src: 0, Dst: 1, Vertices: []int32{0, 1, 2}},
		{Src: 1, Dst: 0, Vertices: []int32{3, 4, 5}},
		{Src: 2, Dst: 3, Vertices: []int32{6, 7, 8}},
		{Src: 3, Dst: 2, Vertices: []int32{9, 10, 11}},
	}}
}

func key(i int) runtime.TransferKey { return runtime.TransferKey{Stage: 0, Index: i} }

// payload builds a 3×2 matrix whose cells encode (tag, position) so
// misdelivery and reordering are distinguishable from corruption.
func payload(tag int) *tensor.Matrix {
	m := tensor.New(3, 2)
	for i := range m.Data {
		m.Data[i] = float32(tag)*100 + float32(i)
	}
	return m
}

// send delivers one message, retrying retryable rejections (channel
// backpressure, injected faults) so the battery exercises slow-consumer
// paths without depending on any particular retry decorator.
func send(ctx context.Context, tp runtime.Transport, k runtime.TransferKey, tr core.Transfer, msg runtime.Message) error {
	for {
		err := tp.Send(ctx, k, tr, msg)
		if err == nil || !runtime.IsRetryable(err) {
			return err
		}
		select {
		case <-time.After(50 * time.Microsecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// copies walks the decorator chain for the CopyingTransport marker.
func copies(tp runtime.Transport) bool {
	for tp != nil {
		if _, ok := tp.(runtime.CopyingTransport); ok {
			return true
		}
		w, ok := tp.(runtime.WrappingTransport)
		if !ok {
			return false
		}
		tp = w.Unwrap()
	}
	return false
}

// Run executes the full battery against the factory's transport.
func Run(t *testing.T, factory Factory) {
	st := stages()
	tr := st[0][0]

	t.Run("RoundTrip", func(t *testing.T) {
		tp, _ := factory(t, st)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		want := payload(1)
		msg := runtime.NewMessage(want)
		if !msg.Valid() {
			t.Fatal("freshly sealed message does not validate")
		}
		if err := send(ctx, tp, key(0), tr, msg); err != nil {
			t.Fatal(err)
		}
		got, err := tp.Recv(ctx, key(0), tr)
		if err != nil {
			t.Fatal(err)
		}
		if got.Checksum != msg.Checksum {
			t.Fatalf("checksum changed in transit: %#x -> %#x", msg.Checksum, got.Checksum)
		}
		if !got.Valid() {
			t.Fatal("received message fails its own seal")
		}
		if diff := tensor.MaxAbsDiff(got.Rows, want); diff != 0 {
			t.Fatalf("payload differs by %v; delivery must be bit-identical", diff)
		}
	})

	t.Run("PerKeyOrdering", func(t *testing.T) {
		tp, _ := factory(t, st)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		const n = 20
		errc := make(chan error, 1)
		go func() {
			for i := 0; i < n; i++ {
				if err := send(ctx, tp, key(0), tr, runtime.NewMessage(payload(i))); err != nil {
					errc <- fmt.Errorf("send %d: %w", i, err) //dgclvet:ignore goleaklite buffered channel (cap 1), single send per goroutine; cannot block
					return
				}
			}
			errc <- nil //dgclvet:ignore goleaklite buffered channel (cap 1), single send per goroutine; cannot block
		}()
		for i := 0; i < n; i++ {
			got, err := tp.Recv(ctx, key(0), tr)
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if tag := int(got.Rows.Data[0]) / 100; tag != i {
				t.Fatalf("recv %d delivered message %d: per-key FIFO order violated", i, tag)
			}
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	})

	t.Run("ConcurrentKeys", func(t *testing.T) {
		tp, _ := factory(t, st)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		const n = 10
		var wg sync.WaitGroup
		errs := make([]error, len(st[0]))
		for ki := range st[0] {
			wg.Add(1)
			go func(ki int) {
				defer wg.Done()
				ktr := st[0][ki]
				for i := 0; i < n; i++ {
					tag := ki*1000 + i
					if err := send(ctx, tp, key(ki), ktr, runtime.NewMessage(payload(tag))); err != nil {
						errs[ki] = fmt.Errorf("key %d send %d: %w", ki, i, err)
						return
					}
					got, err := tp.Recv(ctx, key(ki), ktr)
					if err != nil {
						errs[ki] = fmt.Errorf("key %d recv %d: %w", ki, i, err)
						return
					}
					if gotTag := int(got.Rows.Data[0]) / 100; gotTag != tag {
						errs[ki] = fmt.Errorf("key %d recv %d delivered message %d: cross-key delivery", ki, i, gotTag)
						return
					}
				}
			}(ki)
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("RecvContextCancellation", func(t *testing.T) {
		tp, _ := factory(t, st)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		done := make(chan error, 1)
		go func() {
			_, err := tp.Recv(ctx, key(0), tr)
			done <- err //dgclvet:ignore goleaklite buffered channel (cap 1), single send per goroutine; cannot block
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("Recv with a canceled context returned a message from nowhere")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancellation surfaced as %v, want context.Canceled in the chain", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("Recv ignored an already-canceled context")
		}
	})

	t.Run("RecvDeadline", func(t *testing.T) {
		tp, _ := factory(t, st)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		start := time.Now()
		_, err := tp.Recv(ctx, key(0), tr)
		if err == nil {
			t.Fatal("Recv on an empty transport returned a message")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("deadline surfaced as %v, want context.DeadlineExceeded in the chain", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("Recv took %v to honor a 50ms deadline", elapsed)
		}
	})

	t.Run("RecvAfterClose", func(t *testing.T) {
		tp, caps := factory(t, st)
		if caps.Close == nil {
			t.Skip("transport has no close notion")
		}
		caps.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		start := time.Now()
		_, err := tp.Recv(ctx, key(0), tr)
		if err == nil {
			t.Fatal("Recv after close returned a message")
		}
		if errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Recv after close timed out instead of failing fast: %v", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("Recv took %v to notice the closed endpoint", elapsed)
		}
	})

	t.Run("BlockedRecvUnblocksOnClose", func(t *testing.T) {
		tp, caps := factory(t, st)
		if caps.Close == nil {
			t.Skip("transport has no close notion")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done := make(chan error, 1)
		go func() {
			_, err := tp.Recv(ctx, key(0), tr)
			done <- err //dgclvet:ignore goleaklite buffered channel (cap 1), single send per goroutine; cannot block
		}()
		time.Sleep(20 * time.Millisecond) // let the Recv block
		caps.Close()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("Recv blocked across a close returned a message")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("close left a blocked Recv hanging")
		}
	})

	t.Run("ReceivedBufferOwnership", func(t *testing.T) {
		tp, _ := factory(t, st)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := send(ctx, tp, key(0), tr, runtime.NewMessage(payload(1))); err != nil {
			t.Fatal(err)
		}
		first, err := tp.Recv(ctx, key(0), tr)
		if err != nil {
			t.Fatal(err)
		}
		// The buffer is ours now: deface it, run another transfer, and
		// confirm neither message is disturbed — the transport may not
		// retain or reuse a delivered buffer.
		for i := range first.Rows.Data {
			first.Rows.Data[i] = -999
		}
		want := payload(2)
		if err := send(ctx, tp, key(0), tr, runtime.NewMessage(want)); err != nil {
			t.Fatal(err)
		}
		second, err := tp.Recv(ctx, key(0), tr)
		if err != nil {
			t.Fatal(err)
		}
		if diff := tensor.MaxAbsDiff(second.Rows, want); diff != 0 {
			t.Fatalf("second payload differs by %v after the first buffer was defaced", diff)
		}
		for i, x := range first.Rows.Data {
			if x != -999 {
				t.Fatalf("transport wrote into a delivered buffer at %d: %v", i, x)
			}
		}
	})

	t.Run("SentBufferAliasing", func(t *testing.T) {
		tp, _ := factory(t, st)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m := payload(3)
		want := payload(3)
		if err := send(ctx, tp, key(0), tr, runtime.NewMessage(m)); err != nil {
			t.Fatal(err)
		}
		if copies(tp) {
			// A copying transport serialized before Send returned: the
			// sender is free to reuse its buffer immediately.
			for i := range m.Data {
				m.Data[i] = -1
			}
		}
		got, err := tp.Recv(ctx, key(0), tr)
		if err != nil {
			t.Fatal(err)
		}
		if diff := tensor.MaxAbsDiff(got.Rows, want); diff != 0 {
			t.Fatalf("payload differs by %v after the sent buffer was reused", diff)
		}
	})
}
