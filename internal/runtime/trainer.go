package runtime

import (
	"context"
	"fmt"
	"sync"

	"dgcl/internal/collective"
	"dgcl/internal/gnn"
	"dgcl/internal/tensor"
)

// Trainer runs distributed full-graph GNN training on a Cluster: every
// client holds a replica of the model, its graph partition, and its slice of
// the features and targets. Each layer's execution interleaves a
// graphAllgather (remote embeddings in), local single-GPU layer compute, and
// in the backward pass a reverse allgather (remote gradients out), exactly
// the §6.3 integration. Model gradients are allreduced (summed) across
// clients before every optimizer step so replicas stay identical.
type Trainer struct {
	Cluster  *Cluster
	Models   []*gnn.Model
	Aggs     []*gnn.Aggregator
	Features []*tensor.Matrix
	Targets  []*tensor.Matrix
	// CacheFeatures enables the §3 strategy (1): the layer-0 embeddings of
	// remote vertices never change across epochs, so they are allgathered
	// once and cached, eliminating the first (widest) allgather of every
	// epoch at the price of storing the remote features.
	CacheFeatures bool
	// Peers, when non-nil, synchronizes losses and gradients with the other
	// processes of a multi-process run (worker mode: Cluster.Ranks names the
	// locally-executed clients). Every process keeps all K model replicas
	// and steps them identically, so the final weights are bit-identical to
	// an in-process run with the same seed.
	Peers        PeerExchange
	cachedLayer0 []*tensor.Matrix
}

// NewTrainer shards the global features/targets across the cluster's
// partitions (the dispatch_features step of Listing 1) and replicates the
// model onto every client.
func NewTrainer(c *Cluster, model *gnn.Model, features, targets *tensor.Matrix) (*Trainer, error) {
	tr := &Trainer{Cluster: c}
	for d := 0; d < c.K; d++ {
		lg := c.Locals[d]
		tr.Models = append(tr.Models, model.Clone())
		tr.Aggs = append(tr.Aggs, gnn.NewAggregator(lg.G, lg.NumLocal, model.Kind.NeedsMeanAggregator()))
		tr.Features = append(tr.Features, tensor.GatherRows(features, c.Rel.Local[d]))
		tr.Targets = append(tr.Targets, tensor.GatherRows(targets, c.Rel.Local[d]))
	}
	return tr, nil
}

// layer0Full returns the allgathered layer-0 embeddings, from the cache when
// feature caching is on.
func (tr *Trainer) layer0Full(ctx context.Context) ([]*tensor.Matrix, error) {
	if tr.CacheFeatures && tr.cachedLayer0 != nil {
		return tr.cachedLayer0, nil
	}
	full, err := tr.Cluster.AllgatherContext(ctx, tr.Features)
	if err != nil {
		return nil, err
	}
	if tr.CacheFeatures {
		tr.cachedLayer0 = full
	}
	return full, nil
}

// Epoch runs one epoch with a background context; see EpochContext.
func (tr *Trainer) Epoch() (float64, error) {
	return tr.EpochContext(context.Background())
}

// EpochAt runs one epoch after advancing the cluster's crash clock: under a
// CrashConfig schedule, devices scheduled to die at this epoch will fail the
// first transfer reaching their stage. Callers of the resilient loop use it
// so crash injection is a deterministic function of the epoch counter.
func (tr *Trainer) EpochAt(ctx context.Context, epoch int) (float64, error) {
	if tr.Cluster.Crash != nil {
		tr.Cluster.Crash.BeginEpoch(epoch)
	}
	return tr.EpochContext(ctx)
}

// ZeroGrads clears the accumulated layer gradients on every replica. An
// aborted epoch leaves partially-accumulated gradients behind; recovery
// paths that retry an epoch on the same trainer must zero them first.
func (tr *Trainer) ZeroGrads() {
	for _, m := range tr.Models {
		for _, l := range m.Layers {
			l.ZeroGrads()
		}
	}
}

// EpochContext runs one distributed forward+backward pass, allreduces the
// model gradients, and returns the global loss. Layer compute runs
// concurrently on all clients; allgathers synchronize them, as on real
// hardware. Every collective observes ctx: cancellation surfaces as a
// CollectiveError from the allgather in flight.
func (tr *Trainer) EpochContext(ctx context.Context) (float64, error) {
	c := tr.Cluster
	numLayers := len(tr.Models[0].Layers)
	active := c.ActiveRanks()
	// Forward: per layer, allgather then concurrent local layer compute.
	h := tr.Features
	for l := 0; l < numLayers; l++ {
		var full []*tensor.Matrix
		var err error
		if l == 0 {
			full, err = tr.layer0Full(ctx)
		} else {
			full, err = c.AllgatherContext(ctx, h)
		}
		if err != nil {
			return 0, fmt.Errorf("runtime: forward allgather layer %d: %w", l, err)
		}
		next := make([]*tensor.Matrix, c.K)
		var wg sync.WaitGroup
		for _, d := range active {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				next[d] = tr.Models[d].Layers[l].Forward(tr.Aggs[d], full[d])
			}(d)
		}
		wg.Wait()
		h = next
	}
	// Loss on local outputs; worker mode fills in the other processes' rank
	// losses so the global loss stays a bit-identical rank-ordered sum.
	losses := make([]float64, c.K)
	grads := make([]*tensor.Matrix, c.K)
	for _, d := range active {
		losses[d], grads[d] = gnn.MSELossGrad(h[d], tr.Targets[d])
	}
	if tr.Peers != nil {
		if err := tr.Peers.ExchangeFloat64s(ctx, "loss", active, losses); err != nil {
			return 0, fmt.Errorf("runtime: loss exchange: %w", err)
		}
	}
	loss := tensor.Sum64(losses)
	// Backward: per layer, concurrent local backward then reverse allgather.
	// The gradient with respect to the layer-0 input features is discarded
	// (features are not trained), so the final backward allgather is skipped
	// — a 2-layer epoch communicates 2 forward + 1 backward allgathers.
	for l := numLayers - 1; l >= 0; l-- {
		gradFull := make([]*tensor.Matrix, c.K)
		var wg sync.WaitGroup
		for _, d := range active {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				layer := tr.Models[d].Layers[l]
				// Layer 0's input gradient would be discarded below; layers
				// that support it accumulate parameter gradients only (the
				// updates are identical, see gnn.ParamsOnlyBackward).
				if po, ok := layer.(gnn.ParamsOnlyBackward); ok && l == 0 {
					po.BackwardParams(tr.Aggs[d], grads[d])
					return
				}
				gradFull[d] = layer.Backward(tr.Aggs[d], grads[d])
			}(d)
		}
		wg.Wait()
		if l == 0 {
			break
		}
		var err error
		grads, err = c.BackwardAllgatherContext(ctx, gradFull)
		if err != nil {
			return 0, fmt.Errorf("runtime: backward allgather layer %d: %w", l, err)
		}
	}
	if err := tr.allreduceGrads(ctx); err != nil {
		return 0, err
	}
	return loss, nil
}

// allreduceGrads synchronizes every parameter gradient across clients with a
// ring allreduce (the model-synchronization step DGCL delegates to Horovod /
// PyTorch DDP, §6.3; GNN models are small so no further optimization is
// needed). Gradients of one layer/param are reduced together as one buffer.
// In worker mode each process first exchanges its locally-computed rank
// gradients with its peers, then runs the same local ring over all K
// buffers — the reduction order is identical everywhere, so the summed
// gradients (and therefore the stepped weights) are bit-identical to an
// in-process run.
func (tr *Trainer) allreduceGrads(ctx context.Context) error {
	numLayers := len(tr.Models[0].Layers)
	active := tr.Cluster.ActiveRanks()
	bufs := make([]*tensor.Matrix, tr.Cluster.K)
	for l := 0; l < numLayers; l++ {
		numParams := len(tr.Models[0].Layers[l].Grads())
		for p := 0; p < numParams; p++ {
			for d := 0; d < tr.Cluster.K; d++ {
				bufs[d] = tr.Models[d].Layers[l].Grads()[p]
			}
			if tr.Peers != nil {
				tag := fmt.Sprintf("grad.%d.%d", l, p)
				if err := tr.Peers.ExchangeMatrices(ctx, tag, active, bufs); err != nil {
					return fmt.Errorf("runtime: gradient exchange layer %d param %d: %w", l, p, err)
				}
			}
			// Same-shaped replicas by construction; the ring cannot fail.
			if err := collective.RingAllreduce(bufs); err != nil {
				panic(fmt.Sprintf("runtime: gradient allreduce: %v", err))
			}
		}
	}
	return nil
}

// Step applies one SGD step on every replica (identical because gradients
// were allreduced).
func (tr *Trainer) Step(lr float32) {
	for _, m := range tr.Models {
		m.Step(lr)
	}
}

// StepWith applies one optimizer step per replica. opts must hold one
// optimizer per GPU (each keeps its own moment state; replicas stay
// identical because gradients are allreduced before stepping).
func (tr *Trainer) StepWith(opts []gnn.Optimizer) error {
	if len(opts) != len(tr.Models) {
		return fmt.Errorf("runtime: %d optimizers for %d replicas", len(opts), len(tr.Models))
	}
	for d, m := range tr.Models {
		opts[d].Step(m)
	}
	return nil
}

// GatherOutput reassembles per-client local rows into a global matrix using
// the partition's vertex ordering (for verification against single-device
// training).
func (tr *Trainer) GatherOutput(local []*tensor.Matrix, globalRows int) *tensor.Matrix {
	out := tensor.New(globalRows, local[0].Cols)
	for d, m := range local {
		for i, v := range tr.Cluster.Rel.Local[d] {
			copy(out.Row(int(v)), m.Row(i))
		}
	}
	return out
}

// Forward runs the forward passes with a background context; see
// ForwardContext.
func (tr *Trainer) Forward(globalRows int) (*tensor.Matrix, error) {
	return tr.ForwardContext(context.Background(), globalRows)
}

// ForwardContext runs only the forward passes and returns the global output
// matrix, for inference-style verification. Every allgather observes ctx.
func (tr *Trainer) ForwardContext(ctx context.Context, globalRows int) (*tensor.Matrix, error) {
	c := tr.Cluster
	h := tr.Features
	for l := 0; l < len(tr.Models[0].Layers); l++ {
		full, err := c.AllgatherContext(ctx, h)
		if err != nil {
			return nil, err
		}
		next := make([]*tensor.Matrix, c.K)
		for d := 0; d < c.K; d++ {
			next[d] = tr.Models[d].Layers[l].Forward(tr.Aggs[d], full[d])
		}
		h = next
	}
	return tr.GatherOutput(h, globalRows), nil
}
