package runtime

import (
	"math"
	"testing"

	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/tensor"
)

// GraphSAGE's max-pool aggregation crosses partitions through argmax
// routing; the distributed result must still match single-device exactly
// (max is order-independent).
func TestDistributedSAGEMatchesSingleDevice(t *testing.T) {
	g := graph.CommunityGraph(150, 8, 4, 0.8, 31)
	n := g.NumVertices()
	model := gnn.NewModel(gnn.GraphSAGE, 5, 4, 2, 32)
	features := tensor.New(n, 5).FillRandom(33)
	targets := tensor.New(n, 4).FillRandom(34)

	ref := model.Clone()
	sd := gnn.NewSingleDevice(ref, g, 0)
	sd.Target = targets
	refLoss := sd.Epoch(features)

	c, _ := setup(t, g, 4, 31, 20)
	trainer, err := NewTrainer(c, model, features, targets)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := trainer.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-refLoss) > 1e-3*(1+math.Abs(refLoss)) {
		t.Fatalf("SAGE distributed loss %v != single-device %v", loss, refLoss)
	}
}

// Feature caching must not change results: the cached layer-0 allgather is
// just memoization of an epoch-invariant exchange.
func TestFeatureCachingEquivalence(t *testing.T) {
	g := graph.CommunityGraph(200, 8, 4, 0.8, 41)
	n := g.NumVertices()
	model := gnn.NewModel(gnn.GCN, 6, 5, 2, 42)
	features := tensor.New(n, 6).FillRandom(43)
	targets := tensor.New(n, 5).FillRandom(44)

	run := func(cache bool) []float64 {
		c, _ := setup(t, g, 4, 41, 24)
		tr, err := NewTrainer(c, model, features, targets)
		if err != nil {
			t.Fatal(err)
		}
		tr.CacheFeatures = cache
		var losses []float64
		for e := 0; e < 3; e++ {
			loss, err := tr.Epoch()
			if err != nil {
				t.Fatal(err)
			}
			tr.Step(0.001)
			losses = append(losses, loss)
		}
		return losses
	}
	plain := run(false)
	cached := run(true)
	for e := range plain {
		if plain[e] != cached[e] {
			t.Fatalf("epoch %d: cached loss %v != plain %v", e, cached[e], plain[e])
		}
	}
}

// Multi-epoch training with caching still converges (the cache is reused,
// not recomputed, across epochs).
func TestFeatureCachingReuse(t *testing.T) {
	g := graph.Ring(64)
	model := gnn.NewModel(gnn.GCN, 4, 3, 2, 51)
	features := tensor.New(64, 4).FillRandom(52)
	targets := tensor.New(64, 3).FillRandom(53)
	c, _ := setup(t, g, 4, 51, 16)
	tr, err := NewTrainer(c, model, features, targets)
	if err != nil {
		t.Fatal(err)
	}
	tr.CacheFeatures = true
	first, err := tr.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if tr.cachedLayer0 == nil {
		t.Fatal("cache not populated")
	}
	tr.Step(0.01)
	var last float64
	for e := 0; e < 10; e++ {
		last, err = tr.Epoch()
		if err != nil {
			t.Fatal(err)
		}
		tr.Step(0.01)
	}
	if last >= first {
		t.Fatalf("cached training did not converge: %v -> %v", first, last)
	}
}

// A 3-layer model must run K forward and K-1 backward exchanges and still
// match single-device training (the paper notes deeper GNNs are gaining
// relevance; replication cannot serve them, communication planning can).
func TestThreeLayerDistributedMatches(t *testing.T) {
	g := graph.CommunityGraph(120, 8, 4, 0.8, 61)
	n := g.NumVertices()
	model := gnn.NewModel(gnn.GCN, 4, 4, 3, 62)
	features := tensor.New(n, 4).FillRandom(63)
	targets := tensor.New(n, 4).FillRandom(64)

	ref := model.Clone()
	sd := gnn.NewSingleDevice(ref, g, 0)
	sd.Target = targets
	refLoss := sd.Epoch(features)

	c, _ := setup(t, g, 4, 61, 16)
	tr, err := NewTrainer(c, model, features, targets)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := tr.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-refLoss) > 1e-3*(1+refLoss) {
		t.Fatalf("3-layer distributed %v != single %v", loss, refLoss)
	}
}

// GAT's per-neighborhood softmax must normalize over remote neighbors too;
// distributed attention must match single-device attention.
func TestDistributedGATMatchesSingleDevice(t *testing.T) {
	g := graph.CommunityGraph(120, 8, 4, 0.8, 81)
	n := g.NumVertices()
	model := gnn.NewModel(gnn.GAT, 5, 4, 2, 82)
	features := tensor.New(n, 5).FillRandom(83)
	targets := tensor.New(n, 4).FillRandom(84)

	ref := model.Clone()
	sd := gnn.NewSingleDevice(ref, g, 0)
	sd.Target = targets
	refLoss := sd.Epoch(features)

	c, _ := setup(t, g, 4, 81, 20)
	trainer, err := NewTrainer(c, model, features, targets)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := trainer.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-refLoss) > 1e-3*(1+math.Abs(refLoss)) {
		t.Fatalf("GAT distributed loss %v != single-device %v", loss, refLoss)
	}
	// Gradients agree too.
	for li, layer := range ref.Layers {
		for pi, gref := range layer.Grads() {
			gdist := trainer.Models[0].Layers[li].Grads()[pi]
			if diff := tensor.MaxAbsDiff(gref, gdist); diff > 1e-2*(1+tensor.Frobenius(gref)) {
				t.Fatalf("GAT layer %d param %d grad diff %v", li, pi, diff)
			}
		}
	}
}
