package runtime

import (
	"context"
	"fmt"
	"sync"

	"dgcl/internal/core"
	"dgcl/internal/tensor"
)

// Overlapped epoch execution (DESIGN.md §16). The serial client loop runs
// each stage's sends, then its receives, then moves on — so a client's
// outbound I/O and its aggregation never overlap, and epoch time is the sum
// of the two. The overlapped executor splits every client into a sender
// goroutine and an aggregator (the client's own goroutine), connected by a
// pipeState: the sender runs ahead issuing stage s+1's sends while the
// aggregator is still landing stage s's receives, bounded by the in-flight
// window and by the compiled slot-hazard dependencies (sendDep/aggDep), so
// pooled-buffer ownership and row contents stay exactly as serial execution
// would leave them. Chunked transfers (chunkStages) make the pipeline
// fine-grained: a large transfer becomes consecutive sub-transfers within
// its stage, so the receiver starts aggregating rows as chunks land instead
// of waiting for the full matrix.
//
// Determinism argument: the aggregator consumes recvSteps strictly in
// compiled order (one blocking Recv per key), and chunk splitting preserves
// the global row order of every transfer, so the slots of a collective are
// written in the same order with the same values as serially. Within one
// received payload each destination row has exactly one writer and its
// floats are combined in row-local order, so partitioning the rows over
// tensor.ParallelRows workers cannot reorder any addition. Results are
// therefore bit-identical to serial execution at any chunk size and worker
// count.

// DefaultOverlapWindow is the in-flight stage window used when OverlapConfig
// enables the pipeline without choosing one: the sender may run at most this
// many stages ahead of the aggregator.
const DefaultOverlapWindow = 4

// OverlapConfig controls chunked, pipelined execution of the compiled
// routing programs. The zero value preserves the serial executor and the
// unchunked stage layout exactly.
type OverlapConfig struct {
	// Enabled runs every client as a sender/aggregator pipeline instead of
	// the strictly-in-order stage loop.
	Enabled bool
	// ChunkRows, when positive, splits transfers wider than this many rows
	// into consecutive sub-transfers at program-compile time. The chunked
	// layout changes the wire-visible transfer keys, so every process of a
	// multi-process run must agree on it (it is folded into the wire plan
	// digest); Enabled and Window are purely local execution policy.
	ChunkRows int
	// Window bounds how many stages the sender may run ahead of the
	// aggregator (<= 0 means DefaultOverlapWindow). Window 1 degenerates to
	// send-stage-then-aggregate-it lockstep.
	Window int
}

// chunkRows returns the effective compile-time chunking granularity; 0
// means no chunking.
func (o OverlapConfig) chunkRows() int {
	if o.ChunkRows > 0 {
		return o.ChunkRows
	}
	return 0
}

// window returns the effective in-flight stage window.
func (o OverlapConfig) window() int {
	if o.Window > 0 {
		return o.Window
	}
	return DefaultOverlapWindow
}

// chunkStages splits every transfer wider than chunkRows rows into
// consecutive sub-transfers sharing its stage. Byte totals, row order, and
// stage membership are preserved — only the transfer granularity changes —
// so stats, crash schedules (stage-keyed), and plan validation (which ran on
// the unchunked plan) are all unaffected. chunkRows <= 0 returns stages
// unchanged.
func chunkStages(stages [][]core.Transfer, chunkRows int) [][]core.Transfer {
	if chunkRows <= 0 {
		return stages
	}
	out := make([][]core.Transfer, len(stages))
	for si, st := range stages {
		cs := make([]core.Transfer, 0, len(st))
		for _, tr := range st {
			if len(tr.Vertices) <= chunkRows {
				cs = append(cs, tr)
				continue
			}
			for lo := 0; lo < len(tr.Vertices); lo += chunkRows {
				hi := lo + chunkRows
				if hi > len(tr.Vertices) {
					hi = len(tr.Vertices)
				}
				sub := tr
				sub.Vertices = tr.Vertices[lo:hi]
				cs = append(cs, sub)
			}
		}
		out[si] = cs
	}
	return out
}

// computeDeps derives the per-stage hazard gates that make pipelined
// execution equivalent to serial, by replaying the program's slot accesses
// in execution order. posRows is the size of the client's non-arena slot
// space (forward: the full matrix; backward: the owned accumulator).
//
//   - sendDep[s] = the last stage whose receives write a slot that stage
//     s's sends read (-1 if none): the sender may not start stage s until
//     the aggregator has finished that stage, or it would ship stale relay
//     rows.
//   - aggDep[s] = the last stage whose sends read a slot that stage s's
//     receives write (-1 if none): the aggregator may not land stage s
//     until the sender has issued that stage, or an accumulation would
//     clobber a row a pending send still has to read (the backward WAR
//     hazard).
//
// Serial execution trivially satisfies both. For any plan produced by the
// tree planners sendDep[s] < s (a relay can only forward rows that arrived
// in an earlier stage) and aggDep[s] <= s by construction, which makes every
// pipeline wait chain strictly decreasing — hence deadlock-free. A program
// violating sendDep[s] < s could not run even serially (its send would read
// data that hasn't arrived); serialOnly records it defensively and the
// executor falls back to the serial loop.
func (cp *clientProgram) computeDeps(posRows int) {
	total := posRows + cp.arenaRows
	writer := make([]int, total)
	lastRead := make([]int, total)
	for i := range writer {
		writer[i], lastRead[i] = -1, -1
	}
	idx := func(s int32) int {
		if s >= 0 {
			return int(s)
		}
		return posRows + int(-s-1)
	}
	cp.sendDep = make([]int, len(cp.stages))
	cp.aggDep = make([]int, len(cp.stages))
	for si := range cp.stages {
		cs := &cp.stages[si]
		dep := -1
		for _, snd := range cs.sends {
			for _, sl := range snd.slots {
				if w := writer[idx(sl)]; w > dep {
					dep = w
				}
			}
		}
		cp.sendDep[si] = dep
		if dep >= si {
			cp.serialOnly = true
		}
		for _, snd := range cs.sends {
			for _, sl := range snd.slots {
				lastRead[idx(sl)] = si
			}
		}
		dep = -1
		for _, rcv := range cs.recvs {
			for _, sl := range rcv.slots {
				if r := lastRead[idx(sl)]; r > dep {
					dep = r
				}
			}
		}
		cp.aggDep[si] = dep
		for _, rcv := range cs.recvs {
			for _, sl := range rcv.slots {
				writer[idx(sl)] = si
			}
		}
	}
}

// pipeState synchronizes one client's sender goroutine with its aggregator:
// two monotone stage counters under one mutex, a broadcast condition for the
// gates, and first-error capture. Either side failing aborts the other (the
// per-client context is cancelled by fail, unblocking a peer stuck in a
// transport call).
type pipeState struct {
	mu       sync.Mutex
	cond     sync.Cond
	sendDone int // stages whose sends have all been issued
	aggDone  int // stages whose receives have all been aggregated
	err      error
	aborted  bool
}

func newPipeState() *pipeState {
	ps := &pipeState{}
	ps.cond.L = &ps.mu
	return ps
}

// fail records the pipeline's first error, aborts both sides, and cancels
// the client context so blocked transport calls return.
func (ps *pipeState) fail(err error, cancel context.CancelFunc) {
	ps.mu.Lock()
	if ps.err == nil {
		ps.err = err
	}
	ps.aborted = true
	ps.cond.Broadcast()
	ps.mu.Unlock()
	cancel()
}

// waitAgg blocks until at least n stages are aggregated; false means the
// pipeline aborted.
func (ps *pipeState) waitAgg(n int) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for ps.aggDone < n && !ps.aborted {
		ps.cond.Wait()
	}
	return !ps.aborted
}

// waitSend blocks until at least n stages are fully sent; false means the
// pipeline aborted.
func (ps *pipeState) waitSend(n int) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for ps.sendDone < n && !ps.aborted {
		ps.cond.Wait()
	}
	return !ps.aborted
}

func (ps *pipeState) advanceSend() {
	ps.mu.Lock()
	ps.sendDone++
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

func (ps *pipeState) advanceAgg() {
	ps.mu.Lock()
	ps.aggDone++
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

func (ps *pipeState) firstErr() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.err
}

// minParallelAggRows keeps tiny payloads on the inline path: below this the
// per-goroutine overhead of ParallelRows outweighs the copy work. The
// arithmetic is identical either way, so the threshold cannot affect
// results.
const minParallelAggRows = 128

// aggregateCopy lands a received payload at its compiled slots (forward:
// pure row copies). Rows are partitioned over the kernel workers with one
// writer per row, so the result is bit-identical at any worker count.
func aggregateCopy(rowOf func(int32) []float32, slots []int32, rows *tensor.Matrix) {
	if tensor.Parallelism() > 1 && len(slots) >= minParallelAggRows {
		tensor.ParallelRows(len(slots), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				copy(rowOf(slots[i]), rows.Row(i))
			}
		})
		return
	}
	for i, s := range slots {
		copy(rowOf(s), rows.Row(i))
	}
}

// aggregateAdd accumulates a received payload into its compiled slots
// (backward). Each destination row is touched by exactly one worker and its
// floats are added in row-local order, so partitioning cannot reorder any
// addition.
func aggregateAdd(rowOf func(int32) []float32, slots []int32, rows *tensor.Matrix) {
	if tensor.Parallelism() > 1 && len(slots) >= minParallelAggRows {
		tensor.ParallelRows(len(slots), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				src := rows.Row(i)
				dst := rowOf(slots[i])
				for j, x := range src {
					dst[j] += x
				}
			}
		})
		return
	}
	for i, s := range slots {
		src := rows.Row(i)
		dst := rowOf(s)
		for j, x := range src {
			dst[j] += x
		}
	}
}

// runClientPipelined executes one client's program with sends decoupled from
// aggregation. The caller owns the slot storage and passes rowOf/agg; the
// pipeline owns nothing but pooled send buffers, whose ownership protocol is
// unchanged from serial execution: a buffer is filled, shipped, and either
// returned immediately (copying transports) or returned by the receiving
// client through Cluster.recycle.
func (c *Cluster) runClientPipelined(ctx context.Context, d, cols int, tp Transport, cp *clientProgram, copies bool, rowOf func(int32) []float32, agg func([]int32, *tensor.Matrix)) error {
	window := c.Overlap.window()
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ps := newPipeState()
	var sender sync.WaitGroup
	sender.Add(1)
	go func() {
		defer sender.Done()
		for s := range cp.stages {
			// Gate: the aggregator must have landed every stage whose
			// receives write rows these sends read, and may not fall more
			// than the window behind.
			need := cp.sendDep[s] + 1
			if w := s + 1 - window; w > need {
				need = w
			}
			if !ps.waitAgg(need) {
				return
			}
			for _, snd := range cp.stages[s].sends {
				buf := c.pool.get(len(snd.slots), cols)
				for i, sl := range snd.slots {
					copy(buf.Row(i), rowOf(sl))
				}
				if err := tp.Send(cctx, snd.key, snd.tr, c.seal(Message{Rows: buf})); err != nil {
					ps.fail(fmt.Errorf("runtime: GPU %d send: %w", d, err), cancel)
					return
				}
				if copies {
					c.pool.put(buf)
				}
			}
			ps.advanceSend()
		}
	}()
	for r := range cp.stages {
		// Gate: the sender must have issued every stage whose sends read
		// rows these receives are about to overwrite or accumulate into.
		if !ps.waitSend(cp.aggDep[r] + 1) {
			break
		}
		failed := false
		for _, rcv := range cp.stages[r].recvs {
			msg, err := tp.Recv(cctx, rcv.key, rcv.tr)
			if err != nil {
				ps.fail(fmt.Errorf("runtime: GPU %d recv: %w", d, err), cancel)
				failed = true
				break
			}
			agg(rcv.slots, msg.Rows)
			c.recycle(tp, msg)
		}
		if failed {
			break
		}
		ps.advanceAgg()
	}
	// The aggregator can finish while the sender still owes later-stage
	// sends (peers consume them, not us): join before declaring the client
	// done so the collective never returns with sends in flight.
	sender.Wait()
	return ps.firstErr()
}
