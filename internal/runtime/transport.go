package runtime

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"dgcl/internal/core"
	"dgcl/internal/tensor"
)

// The transport layer abstracts the per-transfer peer buffers + done flags of
// §6.1 behind an interface so the runtime can run over different media: the
// default in-memory channel transport, a fault-injecting wrapper for chaos
// testing, and a retry/timeout decorator that turns lost messages into
// structured per-GPU errors instead of hung clients. Later networking
// backends (TCP/RPC multi-process execution) plug in at the same seam.

// TransferKey addresses one transfer of one (flattened) stage within a
// single collective. Stage indexes the flattened stage list the transport
// was built for; Index is the transfer's position within that stage.
type TransferKey struct {
	Stage, Index int
}

func (k TransferKey) String() string { return fmt.Sprintf("stage %d transfer %d", k.Stage+1, k.Index) }

// Message is one transfer's payload: the embedding (or gradient) rows for
// the transfer's vertex list, in list order, plus a checksum so transports
// that can corrupt data are detectable end to end.
type Message struct {
	Rows     *tensor.Matrix
	Checksum uint64
}

// NewMessage seals a payload with its checksum.
func NewMessage(rows *tensor.Matrix) Message {
	return Message{Rows: rows, Checksum: payloadChecksum(rows)}
}

// Valid reports whether the payload still matches its checksum.
func (m Message) Valid() bool { return m.Checksum == payloadChecksum(m.Rows) }

func payloadChecksum(rows *tensor.Matrix) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, f := range rows.Data {
		bits := math.Float32bits(f)
		b[0], b[1], b[2], b[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
		h.Write(b[:])
	}
	return h.Sum64()
}

// Transport moves one collective's messages between clients. A Transport
// instance is built per collective (the stage layout is fixed at
// construction) and used concurrently by all K client goroutines; both
// methods must be safe for concurrent use on distinct keys.
//
// Send delivers the payload for key and returns once the transport has
// accepted it — or an error when the transport detected the delivery failed
// (dropped, corrupted in flight, receiver buffer full). Recv blocks until
// the payload for key arrives, the context is done, or the transport gives
// up. The tr argument carries the transfer's endpoints and vertex list for
// accounting and fault classification; implementations must not mutate it.
type Transport interface {
	Send(ctx context.Context, key TransferKey, tr core.Transfer, msg Message) error
	Recv(ctx context.Context, key TransferKey, tr core.Transfer) (Message, error)
}

// TransportFactory builds a fresh Transport for one collective over the
// given (flattened) stage layout.
type TransportFactory func(stages [][]core.Transfer) Transport

// TransportProvider supplies the base transport per collective along with
// the cluster's client->device mapping. Unlike a bare TransportFactory, a
// provider can keep long-lived state (pooled sockets, sequence counters)
// across collectives and route transfers by external device id — so a
// degraded cluster rebuilt over survivors keeps addressing the same
// endpoints. The wire transport (internal/comm/wire) is the canonical
// implementation.
type TransportProvider interface {
	CollectiveTransport(stages [][]core.Transfer, deviceIDs []int) Transport
}

// CopyingTransport marks transports whose Send serializes the payload before
// returning (the caller regains ownership of msg.Rows as soon as Send
// returns) and whose Recv yields buffers the caller owns outright. The
// cluster uses the marker to return send buffers to its pool immediately
// instead of waiting for the receiving client to recycle them.
type CopyingTransport interface {
	Transport
	// CopiesPayloads is a marker method; it performs no work.
	CopiesPayloads()
}

// MessageRecycler is implemented by transports that pool their receive-side
// buffers: the cluster hands a fully-consumed payload back through it so
// steady-state epochs stay allocation-flat over any medium.
type MessageRecycler interface {
	RecycleMessage(msg Message)
}

// WrappingTransport exposes a decorator's inner transport so the marker
// interfaces above stay discoverable under any decorator stack.
type WrappingTransport interface {
	Unwrap() Transport
}

// transportCopies walks the decorator chain looking for a CopyingTransport
// base.
func transportCopies(tp Transport) bool {
	for tp != nil {
		if _, ok := tp.(CopyingTransport); ok {
			return true
		}
		w, ok := tp.(WrappingTransport)
		if !ok {
			return false
		}
		tp = w.Unwrap()
	}
	return false
}

// transportRecycler walks the decorator chain looking for a MessageRecycler.
func transportRecycler(tp Transport) MessageRecycler {
	for tp != nil {
		if r, ok := tp.(MessageRecycler); ok {
			return r
		}
		w, ok := tp.(WrappingTransport)
		if !ok {
			return nil
		}
		tp = w.Unwrap()
	}
	return nil
}

// PeerExchange synchronizes per-rank values across the processes of a
// multi-process run. vals holds one entry per client rank; entries for the
// ranks in local are broadcast to every peer process and the remaining
// entries are filled in from their owning processes. tag disambiguates
// concurrent exchanges (all processes must issue the same tags in the same
// order). Implementations must be deterministic: the same inputs produce
// bit-identical vals on every process.
type PeerExchange interface {
	ExchangeMatrices(ctx context.Context, tag string, local []int, vals []*tensor.Matrix) error
	ExchangeFloat64s(ctx context.Context, tag string, local []int, vals []float64) error
}

// Sentinel failures a transport can report. Decorators treat these as
// retryable; anything else is a hard error.
var (
	// ErrDropped: the message was lost in flight and the sender detected it
	// (the simulated NACK of a reliable-delivery layer).
	ErrDropped = errors.New("message dropped")
	// ErrCorrupt: the payload failed its checksum.
	ErrCorrupt = errors.New("message corrupt")
	// ErrBackpressure: the receiver's buffer was full and the message was
	// discarded.
	ErrBackpressure = errors.New("receiver buffer full")
)

// IsRetryable reports whether err is a transient transport failure that a
// retransmission can fix.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrDropped) || errors.Is(err, ErrCorrupt) || errors.Is(err, ErrBackpressure)
}

// TransportError is the structured failure the retry decorator surfaces
// when a transfer exhausts its budget or deadline: which operation, which
// transfer, between whom, and after how many attempts.
type TransportError struct {
	Op       string // "send" or "recv"
	Key      TransferKey
	Src, Dst int
	Attempts int
	Err      error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("transport %s %s (%d->%d) failed after %d attempt(s): %v",
		e.Op, e.Key, e.Src, e.Dst, e.Attempts, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// chanBuffer is the per-transfer channel capacity. The unique sender of a
// fault-free transfer delivers exactly once, but fault injection can add
// duplicates and retransmissions; a deep-enough buffer keeps Send
// non-blocking (overflow is reported as ErrBackpressure and handled like a
// drop, never a deadlock).
const chanBuffer = 8

// chanTransport is the default in-memory transport: one buffered channel
// per transfer plays the role of the §6.1 peer buffer plus done flag — the
// send is the sender setting its done flag after filling the buffer, the
// receive is the peer retrieving the data when it observes the flag.
type chanTransport struct {
	chans [][]chan Message
}

// NewChanTransport builds the in-memory channel transport for a stage
// layout.
func NewChanTransport(stages [][]core.Transfer) Transport {
	t := &chanTransport{chans: make([][]chan Message, len(stages))}
	for si, st := range stages {
		t.chans[si] = make([]chan Message, len(st))
		for ti := range st {
			t.chans[si][ti] = make(chan Message, chanBuffer)
		}
	}
	return t
}

func (t *chanTransport) channel(key TransferKey) (chan Message, error) {
	if key.Stage < 0 || key.Stage >= len(t.chans) || key.Index < 0 || key.Index >= len(t.chans[key.Stage]) {
		return nil, fmt.Errorf("transport: no channel for %s", key)
	}
	return t.chans[key.Stage][key.Index], nil
}

func (t *chanTransport) Send(ctx context.Context, key TransferKey, tr core.Transfer, msg Message) error {
	ch, err := t.channel(key)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case ch <- msg:
		return nil
	default:
		return ErrBackpressure
	}
}

func (t *chanTransport) Recv(ctx context.Context, key TransferKey, tr core.Transfer) (Message, error) {
	ch, err := t.channel(key)
	if err != nil {
		return Message{}, err
	}
	select {
	case msg := <-ch:
		return msg, nil
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}
