package runtime_test

import (
	"testing"
	"time"

	"dgcl/internal/comm/wire"
	"dgcl/internal/core"
	"dgcl/internal/runtime"
	"dgcl/internal/runtime/transporttest"
)

// TestTransportConformance runs the shared battery against every Transport
// implementation in the tree from one table: the in-memory channel
// transport, the fault/retry/stats decorators, and the TCP wire transport.
// A transfer's semantics must not depend on whether its bytes cross a
// channel or a socket.
func TestTransportConformance(t *testing.T) {
	chanFactory := func(t testing.TB, st [][]core.Transfer) (runtime.Transport, transporttest.Caps) {
		return runtime.NewChanTransport(st), transporttest.Caps{}
	}
	rows := []struct {
		name    string
		factory transporttest.Factory
	}{
		{"chan", chanFactory},
		{"fault", func(t testing.TB, st [][]core.Transfer) (runtime.Transport, transporttest.Caps) {
			// Drop-only faults: send-side rejections are retryable, so the
			// battery's retry loop absorbs them without any recv-side
			// consumption the stream-shaped cases could observe.
			inner, _ := chanFactory(t, st)
			cfg := runtime.FaultConfig{Seed: 3, Default: runtime.FaultRates{Drop: 0.3}}
			return runtime.NewFaultTransport(inner, cfg), transporttest.Caps{}
		}},
		{"retry", func(t testing.TB, st [][]core.Transfer) (runtime.Transport, transporttest.Caps) {
			inner, _ := chanFactory(t, st)
			faulty := runtime.NewFaultTransport(inner, runtime.FaultConfig{Seed: 5, Default: runtime.FaultRates{Drop: 0.3}})
			policy := runtime.DefaultRetryPolicy()
			policy.BaseBackoff = 20 * time.Microsecond
			return runtime.NewRetryTransport(faulty, policy, nil), transporttest.Caps{}
		}},
		{"stats", func(t testing.TB, st [][]core.Transfer) (runtime.Transport, transporttest.Caps) {
			inner, _ := chanFactory(t, st)
			return runtime.NewStatsTransport(inner, runtime.NewCommStats(4), nil, false), transporttest.Caps{}
		}},
		{"wire", func(t testing.TB, st [][]core.Transfer) (runtime.Transport, transporttest.Caps) {
			k := 0
			for _, stage := range st {
				for _, tr := range stage {
					if tr.Src >= k {
						k = tr.Src + 1
					}
					if tr.Dst >= k {
						k = tr.Dst + 1
					}
				}
			}
			fab, err := wire.NewLoopbackFabric(k, wire.Config{ClusterID: "conformance"})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(fab.Close)
			return fab.CollectiveTransport(st, nil), transporttest.Caps{Close: fab.Close}
		}},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			transporttest.Run(t, row.factory)
		})
	}
}
