package runtime

import (
	"math"
	"testing"

	"dgcl/internal/baselines"
	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/tensor"
	"dgcl/internal/topology"
)

// setup builds the standard pipeline: graph -> partition -> relation ->
// local graphs -> SPST plan -> cluster.
func setup(t testing.TB, g *graph.Graph, k int, seed int64, featureBytes int64) (*Cluster, *comm.Relation) {
	t.Helper()
	p, err := partition.KWay(g, k, partition.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := comm.Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.SubDGX1(k)
	plan, _, err := core.PlanSPST(rel, topo, featureBytes, core.SPSTOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	locals := comm.BuildLocalGraphs(g, rel)
	c, err := NewCluster(rel, locals, plan)
	if err != nil {
		t.Fatal(err)
	}
	return c, rel
}

func TestAllgatherDeliversExactRows(t *testing.T) {
	g := graph.CommunityGraph(300, 10, 4, 0.8, 1)
	c, rel := setup(t, g, 4, 1, 64)
	// Feature = f(global id) so delivery is checkable.
	cols := 3
	local := make([]*tensor.Matrix, 4)
	for d := 0; d < 4; d++ {
		local[d] = tensor.New(len(rel.Local[d]), cols)
		for i, v := range rel.Local[d] {
			for j := 0; j < cols; j++ {
				local[d].Set(i, j, float32(v)*10+float32(j))
			}
		}
	}
	full, err := c.Allgather(local)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		lg := c.Locals[d]
		for i, v := range lg.GlobalID {
			for j := 0; j < cols; j++ {
				want := float32(v)*10 + float32(j)
				if got := full[d].At(i, j); got != want {
					t.Fatalf("GPU %d row %d (vertex %d) col %d = %v want %v", d, i, v, j, got, want)
				}
			}
		}
	}
}

func TestAllgatherWithP2PPlan(t *testing.T) {
	g := graph.Ring(32)
	p, _ := partition.KWay(g, 4, partition.Options{Seed: 2})
	rel, _ := comm.Build(g, p)
	plan := baselines.PlanP2P(rel, 64)
	c, err := NewCluster(rel, comm.BuildLocalGraphs(g, rel), plan)
	if err != nil {
		t.Fatal(err)
	}
	local := make([]*tensor.Matrix, 4)
	for d := 0; d < 4; d++ {
		local[d] = tensor.New(len(rel.Local[d]), 2)
		for i, v := range rel.Local[d] {
			local[d].Set(i, 0, float32(v))
		}
	}
	full, err := c.Allgather(local)
	if err != nil {
		t.Fatal(err)
	}
	lg := c.Locals[0]
	for i, v := range lg.GlobalID {
		if full[0].At(i, 0) != float32(v) {
			t.Fatalf("p2p allgather wrong at row %d", i)
		}
	}
}

func TestAllgatherInputValidation(t *testing.T) {
	g := graph.Ring(16)
	c, _ := setup(t, g, 4, 3, 16)
	if _, err := c.Allgather(make([]*tensor.Matrix, 2)); err == nil {
		t.Fatal("expected length error")
	}
	bad := make([]*tensor.Matrix, 4)
	for i := range bad {
		bad[i] = tensor.New(1, 2)
	}
	if _, err := c.Allgather(bad); err == nil {
		t.Fatal("expected row-count error")
	}
}

func TestBackwardAllgatherSumsContributions(t *testing.T) {
	// Ring of 8 over 4 GPUs: vertex v's gradient contributions from each
	// consumer must sum at the owner.
	g := graph.Ring(8)
	p := partition.Range(g, 4)
	rel, _ := comm.Build(g, p)
	plan := baselines.PlanP2P(rel, 8)
	c, err := NewCluster(rel, comm.BuildLocalGraphs(g, rel), plan)
	if err != nil {
		t.Fatal(err)
	}
	cols := 2
	gradFull := make([]*tensor.Matrix, 4)
	for d := 0; d < 4; d++ {
		lg := c.Locals[d]
		gradFull[d] = tensor.New(lg.NumLocal+lg.NumRemote, cols)
		for i := 0; i < lg.NumLocal+lg.NumRemote; i++ {
			// Every GPU contributes 1.0 per vertex row it holds.
			gradFull[d].Set(i, 0, 1)
		}
	}
	grads, err := c.BackwardAllgather(gradFull)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 0 is remote on GPU 3 (edge 7-0) and GPU 1? Ring edges: 0-1,7-0.
	// Owner GPU0 contributes 1; every GPU holding 0 as remote adds 1.
	holders := 1
	for d := 1; d < 4; d++ {
		for _, v := range rel.Remote[d] {
			if v == 0 {
				holders++
			}
		}
	}
	if got := grads[0].At(0, 0); got != float32(holders) {
		t.Fatalf("vertex 0 grad = %v want %v", got, holders)
	}
}

func TestBackwardAtomicAndNonAtomicAgree(t *testing.T) {
	g := graph.CommunityGraph(400, 12, 4, 0.8, 4)
	c, rel := setup(t, g, 8, 4, 32)
	cols := 4
	gradFull := make([]*tensor.Matrix, c.K)
	for d := 0; d < c.K; d++ {
		lg := c.Locals[d]
		gradFull[d] = tensor.New(lg.NumLocal+lg.NumRemote, cols).FillRandom(int64(d))
	}
	c.NonAtomic = true
	a, err := c.BackwardAllgather(gradFull)
	if err != nil {
		t.Fatal(err)
	}
	c.NonAtomic = false
	b, err := c.BackwardAllgather(gradFull)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < rel.K; d++ {
		if diff := tensor.MaxAbsDiff(a[d], b[d]); diff > 1e-5 {
			t.Fatalf("atomic/non-atomic diverge on GPU %d: %v", d, diff)
		}
	}
}

// The core correctness claim: distributed training over DGCL produces the
// same result as single-device training, for every model kind, up to
// float32 reassociation.
func TestDistributedMatchesSingleDevice(t *testing.T) {
	for _, kind := range gnn.AllModels {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			g := graph.CommunityGraph(200, 8, 4, 0.8, 5)
			n := g.NumVertices()
			fin, hidden := 6, 5
			model := gnn.NewModel(kind, fin, hidden, 2, 77)
			features := tensor.New(n, fin).FillRandom(88)
			targets := tensor.New(n, hidden).FillRandom(99)

			// Single device reference.
			ref := model.Clone()
			sd := gnn.NewSingleDevice(ref, g, 0)
			sd.Target = targets
			refLoss := sd.Epoch(features)

			// Distributed over 4 GPUs with SPST.
			c, _ := setup(t, g, 4, 5, int64(4*fin))
			trainer, err := NewTrainer(c, model, features, targets)
			if err != nil {
				t.Fatal(err)
			}
			loss, err := trainer.Epoch()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(loss-refLoss) > 1e-3*(1+math.Abs(refLoss)) {
				t.Fatalf("distributed loss %v != single-device %v", loss, refLoss)
			}
			// Gradients (allreduced) must match the single-device gradients.
			for li, layer := range ref.Layers {
				for pi, gref := range layer.Grads() {
					gdist := trainer.Models[0].Layers[li].Grads()[pi]
					if diff := tensor.MaxAbsDiff(gref, gdist); diff > 1e-2*(1+tensor.Frobenius(gref)) {
						t.Fatalf("%s layer %d param %d grad diff %v", kind, li, pi, diff)
					}
				}
			}
		})
	}
}

func TestDistributedTrainingConvergesIdentically(t *testing.T) {
	// Several epochs with weight updates: distributed and single-device loss
	// trajectories must stay together.
	g := graph.CommunityGraph(150, 8, 3, 0.8, 6)
	n := g.NumVertices()
	model := gnn.NewModel(gnn.GCN, 5, 4, 2, 11)
	features := tensor.New(n, 5).FillRandom(12)
	targets := tensor.New(n, 4).FillRandom(13)

	ref := model.Clone()
	sd := gnn.NewSingleDevice(ref, g, 0)
	sd.Target = targets

	c, _ := setup(t, g, 4, 6, 20)
	trainer, err := NewTrainer(c, model, features, targets)
	if err != nil {
		t.Fatal(err)
	}
	const lr = 0.005
	var refLoss, distLoss float64
	for e := 0; e < 5; e++ {
		refLoss = sd.Epoch(features)
		ref.Step(lr)
		distLoss, err = trainer.Epoch()
		if err != nil {
			t.Fatal(err)
		}
		trainer.Step(lr)
		if math.Abs(refLoss-distLoss) > 1e-2*(1+refLoss) {
			t.Fatalf("epoch %d: losses diverged %v vs %v", e, refLoss, distLoss)
		}
	}
	_ = distLoss
}

func TestForwardMatchesSingleDeviceExactVertices(t *testing.T) {
	g := graph.Grid2D(10, 10)
	n := g.NumVertices()
	model := gnn.NewModel(gnn.GCN, 4, 3, 2, 21)
	features := tensor.New(n, 4).FillRandom(22)
	targets := tensor.New(n, 3).FillRandom(23)

	ref := model.Clone()
	sd := gnn.NewSingleDevice(ref, g, 0)
	refOut, _ := sd.Forward(features)

	c, _ := setup(t, g, 4, 7, 16)
	trainer, err := NewTrainer(c, model, features, targets)
	if err != nil {
		t.Fatal(err)
	}
	out, err := trainer.Forward(n)
	if err != nil {
		t.Fatal(err)
	}
	if diff := tensor.MaxAbsDiff(refOut, out); diff > 1e-4 {
		t.Fatalf("forward outputs diverge: %v", diff)
	}
}

func TestClusterRejectsInvalidPlan(t *testing.T) {
	g := graph.Ring(16)
	p, _ := partition.KWay(g, 4, partition.Options{Seed: 8})
	rel, _ := comm.Build(g, p)
	empty := core.NewPlan(4, 8, "empty")
	if _, err := NewCluster(rel, comm.BuildLocalGraphs(g, rel), empty); err == nil {
		t.Fatal("expected plan validation failure")
	}
}

func TestMultiHopForwardingDeliversData(t *testing.T) {
	// Hand-built relation forcing a relay: GPU0 owns v0 needed by GPUs 2,3;
	// plan forwards 0->1->2->3.
	rel := &comm.Relation{
		K:      4,
		Owner:  []int32{0, 1, 2, 3},
		Local:  [][]int32{{0}, {1}, {2}, {3}},
		Remote: [][]int32{nil, nil, {0}, {0}},
		Send:   make([][][]int32, 4),
	}
	for i := range rel.Send {
		rel.Send[i] = make([][]int32, 4)
	}
	rel.Send[0][2] = []int32{0}
	rel.Send[0][3] = []int32{0}
	if err := rel.Validate(); err != nil {
		t.Fatal(err)
	}
	plan := core.NewPlan(4, 4, "relay")
	plan.Stages = [][]core.Transfer{
		{{Src: 0, Dst: 1, Vertices: []int32{0}}},
		{{Src: 1, Dst: 2, Vertices: []int32{0}}},
		{{Src: 2, Dst: 3, Vertices: []int32{0}}},
	}
	if err := plan.Validate(rel); err != nil {
		t.Fatal(err)
	}
	// Local graphs: build from a graph where 2 and 3 reference vertex 0.
	g := graph.MustFromEdges(4, []graph.Edge{{Src: 2, Dst: 0}, {Src: 3, Dst: 0}}, false)
	locals := comm.BuildLocalGraphs(g, rel)
	c, err := NewCluster(rel, locals, plan)
	if err != nil {
		t.Fatal(err)
	}
	local := []*tensor.Matrix{
		tensor.FromData(1, 1, []float32{42}),
		tensor.FromData(1, 1, []float32{1}),
		tensor.FromData(1, 1, []float32{2}),
		tensor.FromData(1, 1, []float32{3}),
	}
	full, err := c.Allgather(local)
	if err != nil {
		t.Fatal(err)
	}
	// GPU2 and GPU3 must have received 42 via the relay chain; GPU1 relayed
	// without consuming.
	lg2 := c.Locals[2]
	if full[2].At(lg2.NumLocal, 0) != 42 {
		t.Fatal("GPU2 did not receive relayed vertex")
	}
	lg3 := c.Locals[3]
	if full[3].At(lg3.NumLocal, 0) != 42 {
		t.Fatal("GPU3 did not receive relayed vertex")
	}
	// Backward: gradients 5 (GPU2) and 7 (GPU3) must sum to 12 at GPU0.
	gradFull := []*tensor.Matrix{
		tensor.FromData(1, 1, []float32{0}),
		tensor.FromData(1, 1, []float32{0}),
		tensor.FromData(2, 1, []float32{0, 5}),
		tensor.FromData(2, 1, []float32{0, 7}),
	}
	grads, err := c.BackwardAllgather(gradFull)
	if err != nil {
		t.Fatal(err)
	}
	if got := grads[0].At(0, 0); got != 12 {
		t.Fatalf("relayed gradient sum = %v want 12", got)
	}
}
