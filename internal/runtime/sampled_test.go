package runtime

import (
	"testing"

	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/tensor"
	"dgcl/internal/topology"
)

func sampledFixture(t *testing.T) (*SampledTrainer, *graph.Graph, [][]int32) {
	t.Helper()
	g := graph.CommunityGraph(240, 10, 4, 0.8, 91)
	p, err := partition.KWay(g, 4, partition.Options{Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	model := gnn.NewModel(gnn.GCN, 6, 5, 2, 92)
	features := tensor.New(g.NumVertices(), 6).FillRandom(93)
	targets := tensor.New(g.NumVertices(), 5).FillRandom(94)
	sampler := gnn.NewNeighborSampler([]int{4, 4}, 95)
	st, err := NewSampledTrainer(topology.SubDGX1(4), g, p.Assign, model, features, targets, sampler, 91)
	if err != nil {
		t.Fatal(err)
	}
	// Seed batches: every GPU trains all of its own vertices.
	seeds := make([][]int32, 4)
	for d := 0; d < 4; d++ {
		seeds[d] = st.Local[d]
	}
	return st, g, seeds
}

func TestSampledStepRunsAndPlansFetch(t *testing.T) {
	st, _, seeds := sampledFixture(t)
	loss, plan, err := st.Step(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatal("loss must be positive")
	}
	if plan == nil || plan.Algorithm != "spst" {
		t.Fatalf("fetch should be SPST-planned, got %v", plan)
	}
	// The fetch moves only sampled layer-0 features: far less than the
	// full-graph relation would.
	if plan.TotalBytes() == 0 {
		t.Fatal("cross-GPU batches must fetch something")
	}
}

func TestSampledTrainingConverges(t *testing.T) {
	st, _, seeds := sampledFixture(t)
	first, _, err := st.Step(seeds)
	if err != nil {
		t.Fatal(err)
	}
	st.Apply(0.003)
	var last float64
	for i := 0; i < 12; i++ {
		last, _, err = st.Step(seeds)
		if err != nil {
			t.Fatal(err)
		}
		st.Apply(0.003)
	}
	if last >= first {
		t.Fatalf("sampled distributed training did not progress: %v -> %v", first, last)
	}
}

func TestSampledReplicasStayIdentical(t *testing.T) {
	st, _, seeds := sampledFixture(t)
	if _, _, err := st.Step(seeds); err != nil {
		t.Fatal(err)
	}
	st.Apply(0.01)
	for d := 1; d < 4; d++ {
		for li := range st.Models[0].Layers {
			for pi, p0 := range st.Models[0].Layers[li].Params() {
				pd := st.Models[d].Layers[li].Params()[pi]
				if diff := tensor.MaxAbsDiff(p0, pd); diff > 1e-5 {
					t.Fatalf("replica %d layer %d param %d drifted by %v", d, li, pi, diff)
				}
			}
		}
	}
}

func TestSampledErrors(t *testing.T) {
	g := graph.Ring(16)
	p, _ := partition.KWay(g, 4, partition.Options{Seed: 1})
	model := gnn.NewModel(gnn.GCN, 4, 4, 2, 1)
	features := tensor.New(16, 4)
	targets := tensor.New(16, 4)
	sampler := gnn.NewNeighborSampler([]int{2, 2}, 1)
	if _, err := NewSampledTrainer(topology.SubDGX1(4), g, []int32{0}, model, features, targets, sampler, 1); err == nil {
		t.Fatal("owner length mismatch must fail")
	}
	bad := make([]int32, 16)
	bad[3] = 99
	if _, err := NewSampledTrainer(topology.SubDGX1(4), g, bad, model, features, targets, sampler, 1); err == nil {
		t.Fatal("invalid owner must fail")
	}
	st, err := NewSampledTrainer(topology.SubDGX1(4), g, p.Assign, model, features, targets, sampler, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Step([][]int32{{0}}); err == nil {
		t.Fatal("batch count mismatch must fail")
	}
	// Training a seed the GPU does not own must fail.
	foreign := make([][]int32, 4)
	for d := 0; d < 4; d++ {
		foreign[d] = st.Local[(d+1)%4][:1]
	}
	if _, _, err := st.Step(foreign); err == nil {
		t.Fatal("foreign seed must fail")
	}
}
