package simnet

// Recovery pricing: virtual-time cost of crash tolerance, mirroring the
// runtime's checkpoint/recovery machinery (internal/checkpoint, dgcl.Train)
// the way FaultProfile mirrors the fault-injecting transport. Experiments
// use it to draw the recovery cost curve: how the checkpoint interval trades
// steady-state overhead (write time every N epochs) against lost work plus
// detect/replan/restore stalls on a failure — the classical Young/Daly
// trade-off, priced for this system's fabrics.

// RecoveryProfile prices checkpoint I/O and failure handling in virtual
// time. Zero-valued fields take the listed defaults via withDefaults.
type RecoveryProfile struct {
	// CheckpointWriteBW is the durable-write bandwidth in bytes/second
	// (default 2 GB/s, a local NVMe).
	CheckpointWriteBW float64
	// CheckpointReadBW is the restore-read bandwidth in bytes/second
	// (default 4 GB/s).
	CheckpointReadBW float64
	// CommitLatency is the fixed fsync + rename commit cost per checkpoint,
	// in seconds (default 5ms).
	CommitLatency float64
	// DetectLatency is the time from a device dying to a down verdict, in
	// seconds (default 2s — the receive deadline that converts silence into
	// a strike, times the verdict threshold is already folded in by callers
	// that know their RetryPolicy).
	DetectLatency float64
	// ReplanLatency is the degraded SPST replan stall, in seconds (default
	// 50ms cold; callers with a warm plan cache pass their own).
	ReplanLatency float64
}

func (p *RecoveryProfile) withDefaults() RecoveryProfile {
	g := RecoveryProfile{}
	if p != nil {
		g = *p
	}
	if g.CheckpointWriteBW == 0 {
		g.CheckpointWriteBW = 2e9
	}
	if g.CheckpointReadBW == 0 {
		g.CheckpointReadBW = 4e9
	}
	if g.CommitLatency == 0 {
		g.CommitLatency = 5e-3
	}
	if g.DetectLatency == 0 {
		g.DetectLatency = 2.0
	}
	if g.ReplanLatency == 0 {
		g.ReplanLatency = 50e-3
	}
	return g
}

// CheckpointTime prices one durable checkpoint of the given payload size.
func (p *RecoveryProfile) CheckpointTime(bytes int64) float64 {
	g := p.withDefaults()
	return float64(bytes)/g.CheckpointWriteBW + g.CommitLatency
}

// RestoreTime prices reading and verifying one checkpoint payload.
func (p *RecoveryProfile) RestoreTime(bytes int64) float64 {
	g := p.withDefaults()
	return float64(bytes) / g.CheckpointReadBW
}

// RecoveryTime prices one full failure handling: detection, degraded
// replanning, and checkpoint restore — the stall between the last failed
// collective and the first degraded epoch.
func (p *RecoveryProfile) RecoveryTime(checkpointBytes int64) float64 {
	g := p.withDefaults()
	return g.DetectLatency + g.ReplanLatency + p.RestoreTime(checkpointBytes)
}

// LostWorkTime prices the re-executed epochs after a restore: with
// checkpoints every interval epochs, a crash loses on average interval/2
// epochs of epochTime each (worst case interval).
func (p *RecoveryProfile) LostWorkTime(interval int, epochTime float64) float64 {
	if interval < 1 {
		interval = 1
	}
	return float64(interval) / 2 * epochTime
}

// OverheadPerEpoch prices the expected per-epoch overhead of running with
// checkpoints every interval epochs under a device failure rate of
// failuresPerEpoch (failures per epoch, e.g. 1/10000): the amortized
// checkpoint write plus the expected recovery and lost-work cost. Sweeping
// interval traces the recovery cost curve; its minimum is the Young/Daly
// optimal interval for the configuration.
func (p *RecoveryProfile) OverheadPerEpoch(interval int, checkpointBytes int64, epochTime, failuresPerEpoch float64) float64 {
	if interval < 1 {
		interval = 1
	}
	steady := p.CheckpointTime(checkpointBytes) / float64(interval)
	expectedStall := failuresPerEpoch * (p.RecoveryTime(checkpointBytes) + p.LostWorkTime(interval, epochTime))
	return steady + expectedStall
}
