package simnet

import (
	"math"
	"testing"

	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/topology"
)

// relayPlan is a two-stage store-and-forward chain: 0 -> 3 over NV2, then
// 3 -> 7 over NV1. Serially the stages sum; the overlapped executor can
// forward rows as chunks land.
func relayPlan(rows int) *core.Plan {
	vs := make([]int32, rows)
	p := core.NewPlan(8, 1024, "t")
	p.Stages = [][]core.Transfer{
		{{Src: 0, Dst: 3, Vertices: vs}},
		{{Src: 3, Dst: 7, Vertices: vs}},
	}
	return p
}

func overlapNet(t *testing.T, o *OverlapModel) *Network {
	t.Helper()
	cfg := Config{Seed: 1, Jitter: 0, ContentionExponent: 1, LatencyScale: 0, AtomicFactor: 1, Overlap: o}
	n, err := New(topology.DGX1(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestOverlapUnchunkedEqualsSerial(t *testing.T) {
	// With no chunking (ChunkRows <= 0, or chunks larger than every
	// transfer) the overlapped makespan is exactly the serial one.
	p := relayPlan(1000)
	serial, err := overlapNet(t, nil).RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []*OverlapModel{{ChunkRows: 0}, {ChunkRows: -1}, {ChunkRows: 1 << 20}} {
		res, err := overlapNet(t, o).RunPlan(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Time != serial.Time {
			t.Fatalf("ChunkRows %d: overlapped %.6g != serial %.6g", o.ChunkRows, res.Time, serial.Time)
		}
	}
}

func TestOverlapPricesWormholePipeline(t *testing.T) {
	// 1000 rows in chunks of 100: the slow stage (NV1) runs in full, the
	// fast stage (NV2) contributes only one chunk's fill time.
	p := relayPlan(1000)
	res, err := overlapNet(t, &OverlapModel{ChunkRows: 100, Window: 4}).RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	t1 := 1024 * 1000 / topology.NV2.Bandwidth()
	t2 := 1024 * 1000 / topology.NV1.Bandwidth()
	want := t2 + t1/10
	if math.Abs(res.Time-want)/want > 0.01 {
		t.Fatalf("overlapped time %.6g want %.6g", res.Time, want)
	}
	// StageTimes still report the serial per-stage decomposition.
	if len(res.StageTimes) != 2 {
		t.Fatalf("stage times = %v", res.StageTimes)
	}
}

func TestOverlapMonotoneInChunking(t *testing.T) {
	p := relayPlan(1200)
	prev := math.Inf(1)
	for _, rows := range []int{1200, 600, 300, 100, 25} {
		res, err := overlapNet(t, &OverlapModel{ChunkRows: rows}).RunPlan(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Time > prev*(1+1e-12) {
			t.Fatalf("ChunkRows %d: time %.6g above coarser chunking %.6g", rows, res.Time, prev)
		}
		prev = res.Time
	}
}

func TestOverlapAppliesToRealPlanBothDirections(t *testing.T) {
	// On a real multi-stage SPST plan the overlapped forward and backward
	// times land between the bottleneck stage and the serial sum.
	g := graph.CommunityGraph(1200, 20, 8, 0.8, 2)
	part, err := partition.KWay(g, 8, partition.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := comm.Build(g, part)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := core.PlanSPST(rel, topology.DGX1(), 1024, core.SPSTOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	run := func(n *Network) (fwd, bwd float64) {
		f, err := n.RunPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		b, err := n.RunBackward(plan, true)
		if err != nil {
			t.Fatal(err)
		}
		return f.Time, b.Time
	}
	sf, sb := run(overlapNet(t, nil))
	of, ob := run(overlapNet(t, &OverlapModel{ChunkRows: 16, Window: 4}))
	if of >= sf || ob >= sb {
		t.Fatalf("overlap fwd %.6g / bwd %.6g not below serial %.6g / %.6g", of, ob, sf, sb)
	}
	maxStage := func(st []float64) float64 {
		m := 0.0
		for _, t := range st {
			if t > m {
				m = t
			}
		}
		return m
	}
	f, err := overlapNet(t, &OverlapModel{ChunkRows: 16}).RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if of < maxStage(f.StageTimes) {
		t.Fatalf("overlap fwd %.6g below bottleneck stage %.6g", of, maxStage(f.StageTimes))
	}
}
