package simnet

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/topology"
)

func tracedPlan(t *testing.T) (*Network, *core.Plan) {
	t.Helper()
	g := graph.CommunityGraph(500, 12, 4, 0.8, 1)
	p, _ := partition.KWay(g, 8, partition.Options{Seed: 1})
	rel, _ := comm.Build(g, p)
	topo := topology.DGX1()
	plan, _, err := core.PlanSPST(rel, topo, 512, core.SPSTOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := exactNet(t, topo)
	return n, plan
}

func TestRunPlanTracedConsistent(t *testing.T) {
	n, plan := tracedPlan(t)
	res, tr, err := n.RunPlanTraced(plan)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := n.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != plain.Time {
		t.Fatalf("traced time %v != plain %v", res.Time, plain.Time)
	}
	if tr.TotalTime != res.Time {
		t.Fatal("trace total mismatch")
	}
	if len(tr.Flows) != res.Flows {
		t.Fatalf("trace has %d flows, result %d", len(tr.Flows), res.Flows)
	}
	// Flow invariants: end >= start, flows fit inside the total, bytes match
	// the plan.
	var total int64
	for _, f := range tr.Flows {
		if f.End < f.Start {
			t.Fatalf("flow ends before start: %+v", f)
		}
		if f.End > tr.TotalTime+1e-12 {
			t.Fatalf("flow ends after plan: %+v (total %v)", f, tr.TotalTime)
		}
		if f.Stage < 1 || f.Stage > plan.NumStages() {
			t.Fatalf("bad stage %d", f.Stage)
		}
		total += f.Bytes
	}
	if total != plan.TotalBytes() {
		t.Fatalf("trace bytes %d != plan %d", total, plan.TotalBytes())
	}
	// Stages do not overlap: every stage-2 flow starts at or after every
	// stage-1 flow's stage window.
	var stage1End float64
	for _, f := range tr.Flows {
		if f.Stage == 1 && f.End > stage1End {
			stage1End = f.End
		}
	}
	for _, f := range tr.Flows {
		if f.Stage == 2 && f.Start < stage1End-1e-12 {
			t.Fatalf("stage 2 flow starts before stage 1 finished: %+v", f)
		}
	}
}

func TestTraceCSVAndQueries(t *testing.T) {
	n, plan := tracedPlan(t)
	_, tr, err := n.RunPlanTraced(plan)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(tr.Flows)+1 {
		t.Fatalf("csv lines %d want %d", len(lines), len(tr.Flows)+1)
	}
	if !strings.HasPrefix(lines[0], "stage,src,dst") {
		t.Fatalf("bad header %q", lines[0])
	}
	slow := tr.SlowestFlows(3)
	if len(slow) != 3 {
		t.Fatalf("slowest=%d", len(slow))
	}
	if slow[0].End < slow[1].End || slow[1].End < slow[2].End {
		t.Fatal("slowest flows not sorted")
	}
	sent, recv := tr.GPUBytes(8)
	var s, r int64
	for d := 0; d < 8; d++ {
		s += sent[d]
		r += recv[d]
	}
	if s != plan.TotalBytes() || r != plan.TotalBytes() {
		t.Fatalf("per-GPU bytes don't sum: sent %d recv %d want %d", s, r, plan.TotalBytes())
	}
}

func TestGanttRendering(t *testing.T) {
	n, plan := tracedPlan(t)
	_, tr, err := n.RunPlanTraced(plan)
	if err != nil {
		t.Fatal(err)
	}
	g := tr.Gantt(40)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != len(tr.Flows)+1 {
		t.Fatalf("gantt lines %d want %d", len(lines), len(tr.Flows)+1)
	}
	if !strings.Contains(lines[0], "stage 1") || !strings.Contains(lines[0], "#") {
		t.Fatalf("first line %q", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], "total:") {
		t.Fatal("missing total line")
	}
	// Stage ordering: stage numbers are non-decreasing down the chart.
	prev := 0
	for _, l := range lines[:len(lines)-1] {
		var st int
		if _, err := fmt.Sscanf(l, "stage %d", &st); err != nil {
			t.Fatalf("unparseable line %q", l)
		}
		if st < prev {
			t.Fatal("stages out of order")
		}
		prev = st
	}
	// Degenerate traces render too.
	empty := &Trace{}
	if !strings.Contains(empty.Gantt(40), "no flows") {
		t.Fatal("empty trace rendering")
	}
}
