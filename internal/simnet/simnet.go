// Package simnet is a virtual-time network simulator for the GPU fabrics of
// package topology. It stands in for the paper's physical testbed (see
// DESIGN.md): given a staged communication plan it simulates the concurrent
// flows of each stage with max-min fair bandwidth sharing on every physical
// hop, contention efficiency calibrated to Table 3 of the paper, per-channel
// message latency, and optional jitter. Its reported times are the
// "measured" communication times of every experiment in EXPERIMENTS.md.
package simnet

import (
	"fmt"
	"math"
	"math/rand"

	"dgcl/internal/baselines"
	"dgcl/internal/core"
	"dgcl/internal/topology"
)

// Config tunes the simulator.
type Config struct {
	// Seed drives jitter; the same seed reproduces identical timings.
	Seed int64
	// Jitter is the relative standard deviation of per-flow noise (0 = exact).
	Jitter float64
	// ContentionExponent e models sub-linear per-flow bandwidth under n-way
	// sharing: per-flow rate = B / n^e. e=0.95 reproduces the paper's Table 3
	// QPI measurements (9.50 / 5.12 / 3.34 GB/s for 1/2/3 GPUs).
	ContentionExponent float64
	// LatencyScale multiplies the per-class base latencies (1 = default).
	LatencyScale float64
	// Centralized switches the stage-boundary coordination model from the
	// decentralized ready/done flags of §6.1 (cheap) to master round-trips
	// (expensive, per-stage straggler wait), for the ablation.
	Centralized bool
	// AtomicFactor is the slowdown of receive-side processing when the
	// backward pass uses atomic gradient accumulation (§6.2). 1.35 matches
	// Table 9's shape. Ignored for forward passes.
	AtomicFactor float64
	// Faults, when non-nil, mirrors the runtime transport's fault knobs
	// (runtime.FaultConfig) into virtual time: lossy links force
	// retransmissions, priced as extra bytes on the same hops plus the
	// retry backoff latency, so experiments can quantify what a fault rate
	// costs end to end.
	Faults *FaultProfile
	// Overlap, when non-nil, prices the runtime's chunked pipelined
	// executor (DESIGN.md §16) instead of the serial stage-by-stage one.
	// When nil, Result.Time is the serial sum of the stage times.
	Overlap *OverlapModel
}

// OverlapModel describes the overlapped executor to the simulator. Chunking
// turns the staged plan from store-and-forward into wormhole routing: a
// relayed row can leave for stage s+1 as soon as its chunk lands in stage s,
// so the epoch makespan collapses from the sum of the stage times to the
// bottleneck stage plus every other stage's chunk fill time.
type OverlapModel struct {
	// ChunkRows is the transfer chunking granularity in rows; <= 0 means
	// unchunked, which makes the overlapped makespan equal the serial one.
	ChunkRows int
	// Window is the in-flight stage window of the executor. It bounds
	// buffering, not steady-state throughput, so it is not priced; it is
	// carried here so reports can record the configuration they simulated.
	Window int
}

// FaultProfile prices transport faults in virtual time. It mirrors the
// runtime's fault-injection + retry knobs: a transfer is lost with
// probability DropRate+CorruptRate (a corrupted copy still occupies the
// link, then is retransmitted), retransmitted up to MaxRetries times with
// exponential backoff, and duplicated with probability DuplicateRate.
type FaultProfile struct {
	DropRate      float64
	CorruptRate   float64
	DuplicateRate float64
	// MaxRetries is the retransmission budget per transfer (default 4).
	MaxRetries int
	// RetryBackoff is the virtual-time wait before the first
	// retransmission, doubling each retry (default 200µs).
	RetryBackoff float64
}

func (f *FaultProfile) withDefaults() *FaultProfile {
	if f == nil {
		return nil
	}
	g := *f
	if g.MaxRetries == 0 {
		g.MaxRetries = 4
	}
	if g.RetryBackoff == 0 {
		g.RetryBackoff = 200e-6
	}
	return &g
}

// DefaultConfig returns the calibrated configuration used by the experiment
// harness.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:               seed,
		Jitter:             0.02,
		ContentionExponent: 0.95,
		LatencyScale:       1,
		AtomicFactor:       1.35,
	}
}

// withDefaults fills only the fields whose zero value is meaningless;
// LatencyScale and Jitter are taken literally (0 = none), so analytic tests
// can disable them.
func (c Config) withDefaults() Config {
	if c.ContentionExponent == 0 {
		c.ContentionExponent = 0.95
	}
	if c.AtomicFactor == 0 {
		c.AtomicFactor = 1.35
	}
	c.Faults = c.Faults.withDefaults()
	return c
}

// Base per-message latencies by channel class, in seconds. These model the
// §6.2 transport selection: CUDA virtual memory for same-socket pairs,
// pinned host memory across sockets, helper thread + NIC across machines.
var classLatency = map[topology.ChannelClass]float64{
	topology.ClassNVLink:       5e-6,
	topology.ClassSameSocket:   10e-6,
	topology.ClassCrossSocket:  15e-6,
	topology.ClassCrossMachine: 30e-6,
	topology.ClassHostSwap:     12e-6,
}

// Coordination overheads per stage boundary, in seconds.
const (
	decentralizedFlagCost = 2e-6  // peers poll each other's ready/done flags
	centralizedRoundTrip  = 25e-6 // master notification + straggler wait
)

// Network simulates one fabric.
type Network struct {
	topo *topology.Topology
	cfg  Config
	rng  *rand.Rand
	// Precomputed directed hop chains and latency per ordered GPU pair.
	hops    [][][]topology.DirectedHop
	latency [][]float64
	// Host swap channels per GPU.
	hostHops    [][]topology.DirectedHop
	hostLatency []float64
}

// New builds a simulator for the topology.
func New(topo *topology.Topology, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	k := topo.NumGPUs()
	n := &Network{
		topo: topo, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)),
		hops: make([][][]topology.DirectedHop, k), latency: make([][]float64, k),
		hostHops: make([][]topology.DirectedHop, k), hostLatency: make([]float64, k),
	}
	for s := 0; s < k; s++ {
		n.hops[s] = make([][]topology.DirectedHop, k)
		n.latency[s] = make([]float64, k)
		for d := 0; d < k; d++ {
			if s == d {
				continue
			}
			ch, err := topo.GPUChannel(s, d)
			if err != nil {
				return nil, err
			}
			n.hops[s][d] = topo.DirectedHops(ch)
			n.latency[s][d] = classLatency[ch.Class] * cfg.LatencyScale
		}
		hch, err := topo.HostChannel(s)
		if err == nil {
			n.hostHops[s] = topo.DirectedHops(hch)
			n.hostLatency[s] = classLatency[topology.ClassHostSwap] * cfg.LatencyScale
		}
	}
	return n, nil
}

// Topology returns the simulated fabric.
func (n *Network) Topology() *topology.Topology { return n.topo }

// flow is one concurrent transfer within a stage.
type flow struct {
	hops    []topology.DirectedHop
	bytes   float64
	latency float64
	nvOnly  bool // all hops NVLink (for link-class breakdowns)
	done    float64
}

// Result reports the outcome of simulating one plan execution.
type Result struct {
	Time       float64   // total virtual seconds
	StageTimes []float64 // per (sub)stage
	// NVLinkTime and OtherTime decompose each stage into the completion time
	// of NVLink-only flows versus flows touching slower links (Tables 2, 7).
	NVLinkTime, OtherTime float64
	BytesMoved            int64
	Flows                 int
	// Retransmissions counts the extra copies forced by Config.Faults
	// (retried losses plus duplicates); their bytes are included in
	// BytesMoved and their backoff waits in Time.
	Retransmissions int
}

// simulateStage runs one set of concurrent flows to completion with max-min
// fair sharing and returns the stage makespan plus the per-class makespans.
func (n *Network) simulateStage(flows []*flow) (total, nvTime, otherTime float64) {
	if len(flows) == 0 {
		return 0, 0, 0
	}
	numSlots := 2 * len(n.topo.Conns())
	remaining := make([]float64, len(flows))
	active := 0
	for i, f := range flows {
		remaining[i] = f.bytes
		if f.bytes > 0 {
			active++
		} else {
			f.done = f.latency
		}
	}
	now := 0.0
	rates := make([]float64, len(flows))
	for active > 0 {
		n.fairShare(flows, remaining, rates, numSlots)
		// Advance to the next completion.
		dt := math.Inf(1)
		for i := range flows {
			if remaining[i] <= 0 {
				continue
			}
			if rates[i] <= 0 {
				continue
			}
			if t := remaining[i] / rates[i]; t < dt {
				dt = t
			}
		}
		if math.IsInf(dt, 1) {
			break // no progress possible (disconnected flow); avoid hanging
		}
		now += dt
		for i, f := range flows {
			if remaining[i] <= 0 {
				continue
			}
			remaining[i] -= rates[i] * dt
			if remaining[i] <= 1e-9 {
				remaining[i] = 0
				f.done = now + f.latency
				active--
			}
		}
	}
	for _, f := range flows {
		if f.done > total {
			total = f.done
		}
		if f.nvOnly {
			if f.done > nvTime {
				nvTime = f.done
			}
		} else if f.done > otherTime {
			otherTime = f.done
		}
	}
	return total, nvTime, otherTime
}

// fairShare computes max-min fair rates for the unfinished flows. Each
// directed hop h with n_h unfrozen flows offers them B_h * n_h^(1-e) / n_h
// each (aggregate B_h * n_h^(1-e+...)); with e = ContentionExponent the
// per-flow ceiling on a saturated hop is B_h / n_h^e, reproducing Table 3.
func (n *Network) fairShare(flows []*flow, remaining, rates []float64, numSlots int) {
	hopFlows := make([][]int, numSlots)
	counts := make([]int, numSlots)
	for i, f := range flows {
		if remaining[i] <= 0 {
			rates[i] = 0
			continue
		}
		rates[i] = -1
		for _, h := range f.hops {
			s := h.Slot()
			hopFlows[s] = append(hopFlows[s], i)
			counts[s]++
		}
	}
	// Effective aggregate capacity of a hop shared by c flows. The measured
	// Table 3 numbers show aggregate throughput growing mildly with 2-3
	// concurrent flows (duplex and pipelining effects); that superlinearity
	// saturates, so it is capped at 4 flows — schemes that spray dozens of
	// concurrent flows over one hop gain nothing further.
	effCap := func(slot int) float64 {
		c := counts[slot]
		if c == 0 {
			return 0
		}
		if c > 4 {
			c = 4
		}
		b := n.topo.Conn(slot / 2).Bandwidth
		return b * math.Pow(float64(c), 1-n.cfg.ContentionExponent)
	}
	frozen := make([]bool, len(flows))
	used := make([]float64, numSlots)
	unfrozenOnHop := make([]int, numSlots)
	copy(unfrozenOnHop, counts)
	for {
		// Find the tightest hop: min fair share among hops with unfrozen flows.
		bestSlot, bestShare := -1, math.Inf(1)
		for s := 0; s < numSlots; s++ {
			if unfrozenOnHop[s] == 0 {
				continue
			}
			share := (effCap(s) - used[s]) / float64(unfrozenOnHop[s])
			if share < bestShare {
				bestShare, bestSlot = share, s
			}
		}
		if bestSlot < 0 {
			break
		}
		if bestShare < 0 {
			bestShare = 0
		}
		// Freeze every unfrozen flow on the tightest hop at the fair share.
		for _, fi := range hopFlows[bestSlot] {
			if frozen[fi] || remaining[fi] <= 0 {
				continue
			}
			frozen[fi] = true
			rates[fi] = bestShare
			for _, h := range flows[fi].hops {
				s := h.Slot()
				used[s] += bestShare
				unfrozenOnHop[s]--
			}
		}
	}
}

// jitter returns a multiplicative noise factor around 1.
func (n *Network) jitter() float64 {
	if n.cfg.Jitter <= 0 {
		return 1
	}
	f := 1 + n.rng.NormFloat64()*n.cfg.Jitter
	if f < 0.5 {
		f = 0.5
	}
	return f
}

func (n *Network) stageBoundaryCost() float64 {
	if n.cfg.Centralized {
		return centralizedRoundTrip * n.cfg.LatencyScale
	}
	return decentralizedFlagCost * n.cfg.LatencyScale
}

func (n *Network) planFlows(transfers []core.Transfer, bytesPerVertex int64, overhead float64, res *Result) ([]*flow, error) {
	var flows []*flow
	for _, t := range transfers {
		if t.Src == t.Dst || t.Src < 0 || t.Dst < 0 || t.Src >= n.topo.NumGPUs() || t.Dst >= n.topo.NumGPUs() {
			return nil, fmt.Errorf("simnet: bad transfer %d->%d", t.Src, t.Dst)
		}
		b := int64(len(t.Vertices)) * bytesPerVertex
		res.BytesMoved += b
		hops := n.hops[t.Src][t.Dst]
		nvOnly := len(hops) > 0
		for _, h := range hops {
			if !n.topo.Conn(h.Conn).Type.IsNVLink() {
				nvOnly = false
			}
		}
		f := &flow{
			hops:    hops,
			bytes:   float64(b) * overhead * n.jitter(),
			latency: n.latency[t.Src][t.Dst],
			nvOnly:  nvOnly,
		}
		if extra := n.priceFaults(f); extra > 0 {
			res.Retransmissions += extra
			res.BytesMoved += int64(extra) * b
		}
		flows = append(flows, f)
	}
	res.Flows += len(flows)
	return flows, nil
}

// priceFaults applies the fault profile to one flow: each lost copy (drop
// or corrupt) occupies the flow's hops and forces a retransmission after a
// doubling backoff; a duplicate adds one more copy. Returns the number of
// extra copies; the flow's bytes and latency are scaled in place. Losses
// beyond the retry budget are not priceable in virtual time (the collective
// fails instead); the loss probability is capped so pricing terminates.
func (n *Network) priceFaults(f *flow) int {
	fp := n.cfg.Faults
	if fp == nil {
		return 0
	}
	lose := fp.DropRate + fp.CorruptRate
	if lose > 0.95 {
		lose = 0.95
	}
	extra := 0
	backoff := fp.RetryBackoff
	for i := 0; i < fp.MaxRetries && n.rng.Float64() < lose; i++ {
		extra++
		f.latency += backoff
		backoff *= 2
	}
	if fp.DuplicateRate > 0 && n.rng.Float64() < fp.DuplicateRate {
		extra++
	}
	f.bytes *= float64(1 + extra)
	return extra
}

// stageChunks returns how many chunks the overlapped executor splits the
// stage's largest transfer into (1 when overlap pricing is off).
func stageChunks(stage []core.Transfer, o *OverlapModel) int {
	if o == nil || o.ChunkRows <= 0 {
		return 1
	}
	c := 1
	for _, t := range stage {
		if k := (len(t.Vertices) + o.ChunkRows - 1) / o.ChunkRows; k > c {
			c = k
		}
	}
	return c
}

// applyOverlap rewrites res.Time from the serial stage sum to the pipelined
// makespan when Config.Overlap is set. First-order wormhole model: the
// bottleneck stage's transfer runs in full, every other stage contributes
// only its fill time (its transfer time divided by its chunk count), and
// every stage still pays its boundary cost. xfer holds the pure per-stage
// transfer times (boundary costs excluded); their boundary/flag overhead is
// recovered as res.Time minus the transfer sum. With chunk counts of 1 the
// rewrite is exact identity, so a disabled or unchunked model prices serial.
func (n *Network) applyOverlap(res *Result, xfer []float64, chunks []int) {
	if n.cfg.Overlap == nil || len(xfer) == 0 {
		return
	}
	boundaries := res.Time
	for _, t := range xfer {
		boundaries -= t
	}
	bi := 0
	for s, t := range xfer {
		if t > xfer[bi] {
			bi = s
		}
	}
	t := xfer[bi]
	for s, x := range xfer {
		if s != bi {
			t += x / float64(chunks[s])
		}
	}
	res.Time = t + boundaries
}

// RunPlan simulates the forward graphAllgather of a staged plan and returns
// the virtual-time result.
func (n *Network) RunPlan(p *core.Plan) (*Result, error) {
	res := &Result{}
	var xfer []float64
	var chunks []int
	for _, stage := range p.Stages {
		flows, err := n.planFlows(stage, p.BytesPerVertex, 1, res)
		if err != nil {
			return nil, err
		}
		t, nv, ot := n.simulateStage(flows)
		xfer = append(xfer, t)
		chunks = append(chunks, stageChunks(stage, n.cfg.Overlap))
		t += n.stageBoundaryCost()
		res.StageTimes = append(res.StageTimes, t)
		res.Time += t
		res.NVLinkTime += nv
		res.OtherTime += ot
	}
	n.applyOverlap(res, xfer, chunks)
	return res, nil
}

// RunBackward simulates the backward gradient exchange: stages reversed with
// roles swapped. With atomic accumulation every received byte pays the
// atomic-reduction overhead factor. With the non-atomic sub-stage schedule
// of §6.2 the overhead disappears: the sub-stages only sequence the
// *per-receiver* writes of a pair's receive table (each pair still streams
// its full table within the stage under decentralized flags), so their
// timing effect is one extra flag synchronization per additional sub-stage.
func (n *Network) RunBackward(p *core.Plan, nonAtomic bool) (*Result, error) {
	res := &Result{}
	overhead := 1.0
	if !nonAtomic {
		overhead = n.cfg.AtomicFactor
	}
	var xfer []float64
	var chunks []int
	for _, stage := range p.BackwardSchedule(nonAtomic) {
		// Merge the stage's sub-stages into one concurrent flow set for
		// timing; sub-stages cost one flag round each beyond the first.
		var all []core.Transfer
		for _, sub := range stage {
			all = append(all, sub...)
		}
		flows, err := n.planFlows(all, p.BytesPerVertex, overhead, res)
		if err != nil {
			return nil, err
		}
		t, nv, ot := n.simulateStage(flows)
		xfer = append(xfer, t)
		chunks = append(chunks, stageChunks(all, n.cfg.Overlap))
		t += n.stageBoundaryCost()
		if nonAtomic && len(stage) > 1 {
			t += float64(len(stage)-1) * decentralizedFlagCost * n.cfg.LatencyScale
		}
		res.StageTimes = append(res.StageTimes, t)
		res.Time += t
		res.NVLinkTime += nv
		res.OtherTime += ot
	}
	n.applyOverlap(res, xfer, chunks)
	return res, nil
}

// RunSwap simulates the NeuGraph-style swap exchange: a dump phase (all GPUs
// write their local embeddings to host memory), an optional cross-machine
// host synchronization, and a load phase (all GPUs read their remote sets).
func (n *Network) RunSwap(sp *baselines.SwapPlan) (*Result, error) {
	res := &Result{}
	mk := func(bytes []int64, toHost bool) []*flow {
		var flows []*flow
		for d, b := range bytes {
			if b == 0 || len(n.hostHops[d]) == 0 {
				continue
			}
			hops := n.hostHops[d]
			if !toHost {
				hops = reverseHops(hops)
			}
			flows = append(flows, &flow{
				hops:    hops,
				bytes:   float64(b) * n.jitter(),
				latency: n.hostLatency[d],
			})
			res.BytesMoved += b
		}
		return flows
	}
	dump := mk(sp.WriteBytes, true)
	t, nv, ot := n.simulateStage(dump)
	t += n.stageBoundaryCost()
	res.StageTimes = append(res.StageTimes, t)
	res.Time += t
	res.NVLinkTime += nv
	res.OtherTime += ot
	res.Flows += len(dump)

	var cross int64
	for _, b := range sp.CrossBytes {
		cross += b
	}
	if cross > 0 {
		ct := float64(cross)/topology.IB.Bandwidth() + classLatency[topology.ClassCrossMachine]*n.cfg.LatencyScale
		res.StageTimes = append(res.StageTimes, ct)
		res.Time += ct
		res.OtherTime += ct
		res.BytesMoved += cross
	}

	load := mk(sp.ReadBytes, false)
	t, nv, ot = n.simulateStage(load)
	t += n.stageBoundaryCost()
	res.StageTimes = append(res.StageTimes, t)
	res.Time += t
	res.NVLinkTime += nv
	res.OtherTime += ot
	res.Flows += len(load)
	return res, nil
}

func reverseHops(h []topology.DirectedHop) []topology.DirectedHop {
	out := make([]topology.DirectedHop, len(h))
	for i, d := range h {
		out[len(h)-1-i] = topology.DirectedHop{Conn: d.Conn, Forward: !d.Forward}
	}
	return out
}

// MeasureFlows simulates a set of ad-hoc point-to-point transfers of `bytes`
// each, all starting together (used by the Table 1 and Table 3 micro
// benchmarks). It returns each flow's achieved bandwidth in bytes/second.
func (n *Network) MeasureFlows(pairs [][2]int, bytes int64) ([]float64, error) {
	var flows []*flow
	for _, p := range pairs {
		if p[0] == p[1] {
			return nil, fmt.Errorf("simnet: measurement flow to self")
		}
		flows = append(flows, &flow{
			hops:    n.hops[p[0]][p[1]],
			bytes:   float64(bytes),
			latency: n.latency[p[0]][p[1]],
		})
	}
	n.simulateStage(flows)
	out := make([]float64, len(flows))
	for i, f := range flows {
		out[i] = float64(bytes) / f.done
	}
	return out, nil
}
