package simnet

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders the flow timeline as an ASCII chart, one row per flow,
// grouped by stage — the quickest way to see stage structure, stragglers
// and idle links when inspecting a plan with dgclplan.
//
//	stage 1 gpu0->gpu3  [#########               ]  32.1us
//	stage 1 gpu2->gpu6  [############            ]  41.8us
//	stage 2 gpu3->gpu7  [            ########    ]  28.9us
func (t *Trace) Gantt(width int) string {
	if len(t.Flows) == 0 {
		return "(no flows)\n"
	}
	if width < 10 {
		width = 10
	}
	total := t.TotalTime
	if total <= 0 {
		total = 1e-12
	}
	flows := make([]FlowTrace, len(t.Flows))
	copy(flows, t.Flows)
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Stage != flows[j].Stage {
			return flows[i].Stage < flows[j].Stage
		}
		if flows[i].Start != flows[j].Start {
			return flows[i].Start < flows[j].Start
		}
		return flows[i].End < flows[j].End
	})
	var b strings.Builder
	for _, f := range flows {
		lo := int(f.Start / total * float64(width))
		hi := int(f.End / total * float64(width))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) + strings.Repeat(" ", width-hi)
		fmt.Fprintf(&b, "stage %-2d gpu%d->gpu%-2d [%s] %7.1fus\n",
			f.Stage, f.Src, f.Dst, bar, (f.End-f.Start)*1e6)
	}
	fmt.Fprintf(&b, "total: %.1fus over %d flows\n", total*1e6, len(flows))
	return b.String()
}
