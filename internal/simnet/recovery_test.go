package simnet

import (
	"math"
	"testing"
)

// Recovery-pricing battery: the curve must behave like the Young/Daly
// trade-off it models — monotone parts pulling in opposite directions with
// an interior minimum, and defaults that kick in for zero-valued profiles.

func TestRecoveryProfileDefaults(t *testing.T) {
	var p *RecoveryProfile // nil profile: all defaults
	bytes := int64(2e9)    // 1s write at the 2 GB/s default
	if got := p.CheckpointTime(bytes); math.Abs(got-1.005) > 1e-9 {
		t.Fatalf("CheckpointTime(2GB) = %v, want 1.005 (1s write + 5ms commit)", got)
	}
	if got := p.RestoreTime(bytes); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("RestoreTime(2GB) = %v, want 0.5 at the 4 GB/s default", got)
	}
	want := 2.0 + 50e-3 + 0.5
	if got := p.RecoveryTime(bytes); math.Abs(got-want) > 1e-9 {
		t.Fatalf("RecoveryTime(2GB) = %v, want %v (detect + replan + restore)", got, want)
	}
}

func TestRecoveryProfileOverrides(t *testing.T) {
	p := &RecoveryProfile{CheckpointWriteBW: 1e9, CommitLatency: 1e-3}
	if got := p.CheckpointTime(1e9); math.Abs(got-1.001) > 1e-9 {
		t.Fatalf("CheckpointTime with overrides = %v, want 1.001", got)
	}
	// Unset fields still default: read bandwidth stays 4 GB/s.
	if got := p.RestoreTime(4e9); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("RestoreTime with partial overrides = %v, want 1.0", got)
	}
}

func TestLostWorkScalesWithInterval(t *testing.T) {
	var p *RecoveryProfile
	epoch := 2.0
	if got := p.LostWorkTime(4, epoch); got != 4.0 {
		t.Fatalf("LostWorkTime(4, 2s) = %v, want 4 (interval/2 epochs)", got)
	}
	if got := p.LostWorkTime(0, epoch); got != 1.0 {
		t.Fatalf("LostWorkTime clamps interval to 1, got %v", got)
	}
}

func TestOverheadPerEpochTracesAYoungDalyCurve(t *testing.T) {
	var p *RecoveryProfile
	const (
		bytes     = int64(1e9)
		epochTime = 10.0
		failures  = 1e-3
	)
	over := func(interval int) float64 {
		return p.OverheadPerEpoch(interval, bytes, epochTime, failures)
	}
	// Steady-state checkpoint cost strictly decreases with the interval;
	// expected lost work strictly increases. Their sum must dip somewhere in
	// between: the curve is not monotone.
	best, bestAt := math.Inf(1), 0
	for interval := 1; interval <= 10000; interval *= 10 {
		if o := over(interval); o < best {
			best, bestAt = o, interval
		}
	}
	if bestAt == 1 || bestAt == 10000 {
		t.Fatalf("overhead is monotone over the sweep (min at interval %d); the trade-off is missing", bestAt)
	}
	// With failures switched off, longer intervals are always at least as
	// cheap — only the amortized write remains.
	prev := math.Inf(1)
	for interval := 1; interval <= 1024; interval *= 2 {
		o := p.OverheadPerEpoch(interval, bytes, epochTime, 0)
		if o > prev+1e-12 {
			t.Fatalf("failure-free overhead rose from %v to %v at interval %d", prev, o, interval)
		}
		prev = o
	}
	// The degenerate interval clamps instead of dividing by zero.
	if got := over(0); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("OverheadPerEpoch(0) = %v", got)
	}
}
