package simnet

import (
	"math"
	"testing"

	"dgcl/internal/baselines"
	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/topology"
)

func exactNet(t testing.TB, topo *topology.Topology) *Network {
	t.Helper()
	n, err := New(topo, Config{Seed: 1, Jitter: 0, ContentionExponent: 1, LatencyScale: 0, AtomicFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSingleFlowMatchesTableOne(t *testing.T) {
	// A lone 1 GB transfer over each link class achieves the Table 1 speed
	// (within latency epsilon).
	n := exactNet(t, topology.DGX1())
	cases := []struct {
		src, dst int
		want     float64
	}{
		{0, 3, topology.NV2.Bandwidth()},
		{0, 1, topology.NV1.Bandwidth()},
		{0, 5, topology.QPI.Bandwidth()}, // cross-socket bottleneck
	}
	for _, c := range cases {
		bw, err := n.MeasureFlows([][2]int{{c.src, c.dst}}, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bw[0]-c.want)/c.want > 0.01 {
			t.Errorf("flow %d->%d bandwidth %.3g want %.3g", c.src, c.dst, bw[0], c.want)
		}
	}
}

func TestTableThreeQPIContention(t *testing.T) {
	// Table 3: attainable per-GPU bandwidth over QPI with 1/2/3 concurrent
	// GPUs is 9.50 / 5.12 / 3.34 GB/s. With the calibrated contention
	// exponent the simulator reproduces those numbers within 10%.
	n, err := New(topology.DGX1(), Config{Seed: 1, Jitter: 0, ContentionExponent: 0.95, LatencyScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	// GPU pairs crossing QPI with no NVLink: 0->5, 1->4, 2->4.
	pairs := [][2]int{{0, 5}, {1, 4}, {2, 4}}
	want := []float64{9.50e9, 5.12e9, 3.34e9}
	for k := 1; k <= 3; k++ {
		bws, err := n.MeasureFlows(pairs[:k], 1<<28)
		if err != nil {
			t.Fatal(err)
		}
		got := bws[0]
		if math.Abs(got-want[k-1])/want[k-1] > 0.10 {
			t.Errorf("%d concurrent flows: per-flow bw %.3g want %.3g", k, got, want[k-1])
		}
	}
}

func TestContendingFlowsSlowerThanLone(t *testing.T) {
	n, err := New(topology.DGX1(), DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	lone, _ := n.MeasureFlows([][2]int{{0, 5}}, 1<<26)
	three, _ := n.MeasureFlows([][2]int{{0, 5}, {1, 4}, {2, 4}}, 1<<26)
	if three[0] >= lone[0] {
		t.Fatalf("contended flow %.3g not slower than lone %.3g", three[0], lone[0])
	}
}

func TestDisjointFlowsRunInParallel(t *testing.T) {
	// Two NVLink flows on disjoint links finish in the time of one.
	n := exactNet(t, topology.DGX1())
	p := core.NewPlan(8, 1024, "t")
	vs := make([]int32, 1000)
	p.Stages = [][]core.Transfer{{
		{Src: 0, Dst: 3, Vertices: vs},
		{Src: 4, Dst: 7, Vertices: vs},
	}}
	res, err := n.RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 1024 * 1000 / topology.NV2.Bandwidth()
	if math.Abs(res.Time-want)/want > 0.01 {
		t.Fatalf("parallel stage time %.4g want %.4g", res.Time, want)
	}
}

func TestStagesAreSequential(t *testing.T) {
	n := exactNet(t, topology.DGX1())
	vs := make([]int32, 1000)
	p := core.NewPlan(8, 1024, "t")
	p.Stages = [][]core.Transfer{
		{{Src: 0, Dst: 3, Vertices: vs}},
		{{Src: 3, Dst: 7, Vertices: vs}},
	}
	res, err := n.RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	single := 1024 * 1000 / topology.NV2.Bandwidth()
	wantLow := single + 1000*1024/topology.NV1.Bandwidth()
	if res.Time < wantLow*0.99 {
		t.Fatalf("sequential stages time %.4g below sum %.4g", res.Time, wantLow)
	}
	if len(res.StageTimes) != 2 {
		t.Fatalf("stage times = %v", res.StageTimes)
	}
}

func TestSimulatorAgreesWithCostModel(t *testing.T) {
	// With contention exponent 1, zero jitter and zero latency, the
	// simulator must closely match the analytic §5.1 cost model on real
	// SPST plans (Figure 10's linearity, at its exact limit).
	g := graph.CommunityGraph(1200, 20, 8, 0.8, 2)
	p, err := partition.KWay(g, 8, partition.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := comm.Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.DGX1()
	plan, state, err := core.PlanSPST(rel, topo, 1024, core.SPSTOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := exactNet(t, topo)
	res, err := n.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Time-state.Cost())/state.Cost() > 0.05 {
		t.Fatalf("simulated %.4g vs modeled %.4g diverge >5%%", res.Time, state.Cost())
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	topo := topology.DGX1()
	mk := func() float64 {
		n, err := New(topo, DefaultConfig(42))
		if err != nil {
			t.Fatal(err)
		}
		vs := make([]int32, 500)
		p := core.NewPlan(8, 1024, "t")
		p.Stages = [][]core.Transfer{{{Src: 0, Dst: 3, Vertices: vs}}}
		res, err := n.RunPlan(p)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	if mk() != mk() {
		t.Fatal("same seed must give same simulated time")
	}
}

func TestBackwardAtomicSlowerThanNonAtomic(t *testing.T) {
	// Table 9: non-atomic aggregation reduces backward allgather time.
	g := graph.CommunityGraph(1500, 24, 8, 0.75, 3)
	p, _ := partition.KWay(g, 8, partition.Options{Seed: 3})
	rel, _ := comm.Build(g, p)
	topo := topology.DGX1()
	// Realistic embedding volume (hidden dim 128 x 4 bytes would be 512;
	// use a larger feature so bandwidth dominates latency as on the paper's
	// full-size Reddit graph).
	plan, _, err := core.PlanSPST(rel, topo, 32768, core.SPSTOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(topo, Config{Seed: 3, Jitter: 0, ContentionExponent: 0.95, LatencyScale: 1, AtomicFactor: 1.35})
	if err != nil {
		t.Fatal(err)
	}
	atomic, err := n.RunBackward(plan, false)
	if err != nil {
		t.Fatal(err)
	}
	nonAtomic, err := n.RunBackward(plan, true)
	if err != nil {
		t.Fatal(err)
	}
	if nonAtomic.Time >= atomic.Time {
		t.Fatalf("non-atomic %.4g should beat atomic %.4g", nonAtomic.Time, atomic.Time)
	}
}

func TestCentralizedCoordinationSlower(t *testing.T) {
	g := graph.CommunityGraph(400, 10, 4, 0.8, 4)
	p, _ := partition.KWay(g, 8, partition.Options{Seed: 4})
	rel, _ := comm.Build(g, p)
	topo := topology.DGX1()
	plan, _, _ := core.PlanSPST(rel, topo, 64, core.SPSTOptions{Seed: 4})
	dec, _ := New(topo, Config{Seed: 4, Jitter: 0, ContentionExponent: 1, LatencyScale: 1})
	cen, _ := New(topo, Config{Seed: 4, Jitter: 0, ContentionExponent: 1, LatencyScale: 1, Centralized: true})
	rd, err := dec.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := cen.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Time <= rd.Time {
		t.Fatalf("centralized %.4g should be slower than decentralized %.4g", rc.Time, rd.Time)
	}
}

func TestRunSwap(t *testing.T) {
	g := graph.CommunityGraph(800, 16, 6, 0.8, 5)
	p, _ := partition.KWay(g, 8, partition.Options{Seed: 5})
	rel, _ := comm.Build(g, p)
	topo := topology.DGX1()
	sp, err := baselines.PlanSwap(rel, topo, 1024)
	if err != nil {
		t.Fatal(err)
	}
	n := exactNet(t, topo)
	res, err := n.RunSwap(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.BytesMoved == 0 {
		t.Fatalf("swap result %+v", res)
	}
	// Swap must move at least the full vertex set once.
	if res.BytesMoved < int64(g.NumVertices())*1024 {
		t.Fatalf("swap moved %d bytes, expected at least full dump", res.BytesMoved)
	}
}

func TestSwapSlowerThanSPSTPlanOnSparse(t *testing.T) {
	g := graph.WikiTalk.Generate(512, 6)
	p, _ := partition.KWay(g, 8, partition.Options{Seed: 6})
	rel, _ := comm.Build(g, p)
	topo := topology.DGX1()
	plan, _, _ := core.PlanSPST(rel, topo, 1024, core.SPSTOptions{Seed: 6})
	n, _ := New(topo, DefaultConfig(6))
	spstRes, err := n.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := baselines.PlanSwap(rel, topo, 1024)
	swapRes, err := n.RunSwap(sp)
	if err != nil {
		t.Fatal(err)
	}
	if swapRes.Time <= spstRes.Time {
		t.Fatalf("swap %.4g should be slower than DGCL %.4g on sparse graph", swapRes.Time, spstRes.Time)
	}
}

func TestLinkClassBreakdownPopulated(t *testing.T) {
	g := graph.CommunityGraph(1000, 20, 8, 0.8, 7)
	p, _ := partition.KWay(g, 8, partition.Options{Seed: 7})
	rel, _ := comm.Build(g, p)
	topo := topology.DGX1()
	plan, _, _ := core.PlanSPST(rel, topo, 1024, core.SPSTOptions{Seed: 7})
	n, _ := New(topo, DefaultConfig(7))
	res, err := n.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.NVLinkTime <= 0 {
		t.Fatal("SPST on DGX-1 must use NVLink")
	}
}

func TestMeasureFlowsSelfError(t *testing.T) {
	n := exactNet(t, topology.DGX1())
	if _, err := n.MeasureFlows([][2]int{{2, 2}}, 1024); err == nil {
		t.Fatal("expected error for self flow")
	}
}

func TestRunPlanRejectsBadTransfer(t *testing.T) {
	n := exactNet(t, topology.DGX1())
	p := core.NewPlan(8, 8, "bad")
	p.Stages = [][]core.Transfer{{{Src: 0, Dst: 99, Vertices: []int32{1}}}}
	if _, err := n.RunPlan(p); err == nil {
		t.Fatal("expected error for out-of-range GPU")
	}
}

func BenchmarkSimulateStage(b *testing.B) {
	g := graph.CommunityGraph(2000, 24, 8, 0.8, 1)
	p, _ := partition.KWay(g, 8, partition.Options{Seed: 1})
	rel, _ := comm.Build(g, p)
	topo := topology.DGX1()
	plan, _, _ := core.PlanSPST(rel, topo, 1024, core.SPSTOptions{Seed: 1})
	n, _ := New(topo, DefaultConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.RunPlan(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: simulated plan time is monotone in transfer volume and linear
// at the bandwidth-dominated limit.
func TestPropertySimTimeMonotoneInVolume(t *testing.T) {
	topo := topology.DGX1()
	n := exactNet(t, topo)
	prev := 0.0
	for _, scaleUp := range []int{1, 2, 4, 8} {
		p := core.NewPlan(8, int64(1024*scaleUp), "t")
		vs := make([]int32, 200)
		p.Stages = [][]core.Transfer{
			{{Src: 0, Dst: 5, Vertices: vs}, {Src: 1, Dst: 4, Vertices: vs}},
			{{Src: 4, Dst: 7, Vertices: vs}},
		}
		res, err := n.RunPlan(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Time <= prev {
			t.Fatalf("time %v not monotone after %v", res.Time, prev)
		}
		if prev > 0 && math.Abs(res.Time-2*prev)/res.Time > 0.01 {
			t.Fatalf("doubling volume should double time: %v -> %v", prev, res.Time)
		}
		prev = res.Time
	}
}
