package simnet

import (
	"fmt"
	"io"
	"sort"

	"dgcl/internal/core"
)

// Flow tracing: RunPlanTraced records one entry per simulated transfer so
// plans can be inspected or visualized offline (who sent what when, over
// which bottleneck, at what achieved bandwidth).

// FlowTrace describes one simulated transfer.
type FlowTrace struct {
	Stage      int     // 1-based stage number
	Src, Dst   int     // GPU ids
	Bytes      int64   // payload size
	Start, End float64 // virtual seconds relative to plan start
	Bandwidth  float64 // achieved bytes/second (0 for empty flows)
}

// Trace is the recorded timeline of a plan execution.
type Trace struct {
	Flows     []FlowTrace
	TotalTime float64
}

// RunPlanTraced simulates the plan like RunPlan while recording a per-flow
// timeline.
func (n *Network) RunPlanTraced(p *core.Plan) (*Result, *Trace, error) {
	res := &Result{}
	tr := &Trace{}
	var clock float64
	for si, stage := range p.Stages {
		flows, err := n.planFlows(stage, p.BytesPerVertex, 1, res)
		if err != nil {
			return nil, nil, err
		}
		t, nv, ot := n.simulateStage(flows)
		for fi, f := range flows {
			ft := FlowTrace{
				Stage: si + 1,
				Src:   stage[fi].Src, Dst: stage[fi].Dst,
				Bytes: int64(len(stage[fi].Vertices)) * p.BytesPerVertex,
				Start: clock, End: clock + f.done,
			}
			if f.done > 0 && ft.Bytes > 0 {
				ft.Bandwidth = float64(ft.Bytes) / f.done
			}
			tr.Flows = append(tr.Flows, ft)
		}
		t += n.stageBoundaryCost()
		clock += t
		res.StageTimes = append(res.StageTimes, t)
		res.Time += t
		res.NVLinkTime += nv
		res.OtherTime += ot
	}
	tr.TotalTime = res.Time
	return res, tr, nil
}

// WriteCSV emits the trace as CSV (stage,src,dst,bytes,start_us,end_us,gbps).
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "stage,src,dst,bytes,start_us,end_us,gbps"); err != nil {
		return err
	}
	for _, f := range t.Flows {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%.3f,%.3f,%.3f\n",
			f.Stage, f.Src, f.Dst, f.Bytes, f.Start*1e6, f.End*1e6, f.Bandwidth/1e9); err != nil {
			return err
		}
	}
	return nil
}

// SlowestFlows returns the n flows with the latest end times, slowest last
// finisher first — the stragglers that set stage makespans.
func (t *Trace) SlowestFlows(n int) []FlowTrace {
	out := make([]FlowTrace, len(t.Flows))
	copy(out, t.Flows)
	sort.Slice(out, func(i, j int) bool { return out[i].End > out[j].End })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// GPUBytes aggregates sent and received bytes per GPU.
func (t *Trace) GPUBytes(k int) (sent, received []int64) {
	sent = make([]int64, k)
	received = make([]int64, k)
	for _, f := range t.Flows {
		if f.Src >= 0 && f.Src < k {
			sent[f.Src] += f.Bytes
		}
		if f.Dst >= 0 && f.Dst < k {
			received[f.Dst] += f.Bytes
		}
	}
	return sent, received
}
