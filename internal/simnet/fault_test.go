package simnet

import (
	"testing"

	"dgcl/internal/core"
	"dgcl/internal/topology"
)

// Fault pricing: Config.Faults mirrors the runtime transport's fault knobs
// into virtual time. A lossy profile must cost strictly more (time and
// bytes) than a clean run, record the retransmissions it priced, and stay
// deterministic per seed.

func faultPlan() *core.Plan {
	p := core.NewPlan(4, 256, "fault-test")
	p.Stages = [][]core.Transfer{
		{
			{Src: 0, Dst: 1, Vertices: []int32{0, 1, 2, 3}},
			{Src: 2, Dst: 3, Vertices: []int32{4, 5, 6, 7}},
		},
		{
			{Src: 1, Dst: 2, Vertices: []int32{0, 1}},
			{Src: 3, Dst: 0, Vertices: []int32{4, 5}},
		},
	}
	return p
}

func faultNet(t *testing.T, faults *FaultProfile) *Network {
	t.Helper()
	cfg := Config{Seed: 9, Jitter: 0, ContentionExponent: 1, LatencyScale: 1, Faults: faults}
	n, err := New(topology.SubDGX1(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestFaultProfilePricesRetransmissions(t *testing.T) {
	clean, err := faultNet(t, nil).RunPlan(faultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if clean.Retransmissions != 0 {
		t.Fatalf("clean run priced %d retransmissions", clean.Retransmissions)
	}

	lossy, err := faultNet(t, &FaultProfile{DropRate: 0.4, CorruptRate: 0.1, MaxRetries: 8}).RunPlan(faultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Retransmissions == 0 {
		t.Fatal("40% loss priced zero retransmissions")
	}
	if lossy.BytesMoved <= clean.BytesMoved {
		t.Fatalf("lossy run moved %d bytes, clean moved %d", lossy.BytesMoved, clean.BytesMoved)
	}
	if lossy.Time <= clean.Time {
		t.Fatalf("lossy run took %v, clean took %v", lossy.Time, clean.Time)
	}
	// A logical flow is one flow regardless of retransmissions.
	if lossy.Flows != clean.Flows {
		t.Fatalf("fault pricing changed the flow count: %d vs %d", lossy.Flows, clean.Flows)
	}
}

func TestFaultProfileZeroRatesMatchNilProfile(t *testing.T) {
	base, err := faultNet(t, nil).RunPlan(faultPlan())
	if err != nil {
		t.Fatal(err)
	}
	zero, err := faultNet(t, &FaultProfile{}).RunPlan(faultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if zero.Time != base.Time || zero.BytesMoved != base.BytesMoved || zero.Retransmissions != 0 {
		t.Fatalf("zero-rate profile diverges from nil: %+v vs %+v", zero, base)
	}
}

func TestFaultPricingIsSeedDeterministic(t *testing.T) {
	profile := &FaultProfile{DropRate: 0.3, DuplicateRate: 0.1, MaxRetries: 6}
	a, err := faultNet(t, profile).RunPlan(faultPlan())
	if err != nil {
		t.Fatal(err)
	}
	b, err := faultNet(t, profile).RunPlan(faultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.BytesMoved != b.BytesMoved || a.Retransmissions != b.Retransmissions {
		t.Fatalf("same seed, different pricing: %+v vs %+v", a, b)
	}
}

func TestFaultPricingAppliesToBackward(t *testing.T) {
	profile := &FaultProfile{DropRate: 0.4, MaxRetries: 8}
	res, err := faultNet(t, profile).RunBackward(faultPlan(), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmissions == 0 {
		t.Fatal("backward run priced zero retransmissions at 40% loss")
	}
}
