// Package device models the GPUs of the paper's testbeds: memory capacity
// for OOM accounting (the reason Replication fails on Com-Orkut and
// Wiki-Talk, and single GPUs fail on large graphs) and effective compute
// throughput for per-epoch time estimation. Throughputs are split into dense
// GEMM and sparse aggregation rates because GNN epochs are dominated by the
// irregular aggregation, which runs far below a GPU's peak FLOPS.
package device

import (
	"fmt"

	"dgcl/internal/gnn"
)

// GPU describes one accelerator.
type GPU struct {
	Name string
	// CapacityBytes is the physical memory; UsableBytes excludes the
	// CUDA context, framework workspace and fragmentation reserve.
	CapacityBytes, UsableBytes int64
	// DenseFLOPS and SparseFLOPS are effective fp32 throughputs for GEMM and
	// for SpMM-style neighbor aggregation, in FLOP/s.
	DenseFLOPS, SparseFLOPS float64
}

// V100 returns the 16 GB V100 of the paper's default configuration.
func V100() GPU {
	return GPU{
		Name:          "V100-16GB",
		CapacityBytes: 16 << 30,
		UsableBytes:   14 << 30,
		DenseFLOPS:    4e12,
		SparseFLOPS:   0.7e12,
	}
}

// GTX1080Ti returns the 12 GB 1080-Ti of the paper's second configuration.
func GTX1080Ti() GPU {
	return GPU{
		Name:          "1080Ti-12GB",
		CapacityBytes: 12 << 30,
		UsableBytes:   10 << 30,
		DenseFLOPS:    2e12,
		SparseFLOPS:   0.35e12,
	}
}

// EpochComputeTime returns the simulated seconds one GPU spends computing a
// full forward+backward epoch for `vertices` owned vertices and `edges`
// local edges under the given model.
func (g GPU) EpochComputeTime(m *gnn.Model, vertices, edges int64) float64 {
	sparse := m.SparseFLOPsPerEpoch(edges)
	dense := m.FLOPsPerEpoch(vertices, edges) - sparse
	return float64(dense)/g.DenseFLOPS + float64(sparse)/g.SparseFLOPS
}

// TrainingMemoryBytes estimates the device memory required to train the
// model with `resident` vertices (owned + remote + replicated) and `edges`
// local edges, with the given input feature dimension. The 1.5x factor
// covers temporaries and allocator slack.
func TrainingMemoryBytes(m *gnn.Model, resident, edges int64, featureDim int) int64 {
	activations := resident * m.ActivationFloatsPerVertex(featureDim) * 4
	graphBytes := edges*4 + resident*8 // CSR targets + offsets
	return (activations+graphBytes)*3/2 + (64 << 20)
}

// CheckFits returns nil when the working set fits the GPU's usable memory,
// or a descriptive OOM error.
func (g GPU) CheckFits(m *gnn.Model, resident, edges int64, featureDim int) error {
	need := TrainingMemoryBytes(m, resident, edges, featureDim)
	if need > g.UsableBytes {
		return fmt.Errorf("device: OOM on %s: need %.2f GB, usable %.2f GB",
			g.Name, float64(need)/(1<<30), float64(g.UsableBytes)/(1<<30))
	}
	return nil
}
