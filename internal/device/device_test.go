package device

import (
	"testing"

	"dgcl/internal/gnn"
	"dgcl/internal/graph"
)

func TestEpochComputeTimePositiveAndOrdered(t *testing.T) {
	g := V100()
	var prev float64
	for _, kind := range gnn.AllModels {
		m := gnn.NewModel(kind, 128, 128, 2, 1)
		tm := g.EpochComputeTime(m, 100_000, 4_000_000)
		if tm <= prev {
			t.Fatalf("%s compute time %v should exceed previous %v", kind, tm, prev)
		}
		prev = tm
	}
}

func TestV100FasterThan1080Ti(t *testing.T) {
	m := gnn.NewModel(gnn.GCN, 256, 256, 2, 1)
	v, p := V100(), GTX1080Ti()
	if v.EpochComputeTime(m, 50_000, 1_000_000) >= p.EpochComputeTime(m, 50_000, 1_000_000) {
		t.Fatal("V100 should be faster than 1080Ti")
	}
}

// Full-size OOM shapes from the paper's Figure 7: Replication fails on
// Com-Orkut and Wiki-Talk (each GPU would hold nearly the whole graph) but
// runs on Reddit and Web-Google.
func TestReplicationOOMShapes(t *testing.T) {
	gpu := V100()
	cases := []struct {
		ds      graph.Dataset
		kind    gnn.ModelKind
		wantOOM bool
	}{
		{graph.ComOrkut, gnn.GCN, true},
		{graph.WikiTalk, gnn.GCN, true},
		{graph.Reddit, gnn.GCN, false},
		{graph.WebGoogle, gnn.GCN, false},
	}
	for _, c := range cases {
		m := gnn.NewModel(c.kind, c.ds.FeatureDim, c.ds.HiddenDim, 2, 1)
		// Replication on a dense graph stores ~the whole graph per GPU.
		err := gpu.CheckFits(m, int64(c.ds.Vertices), c.ds.Edges, c.ds.FeatureDim)
		if (err != nil) != c.wantOOM {
			t.Errorf("%s full-graph-per-GPU OOM=%v want %v (err=%v)", c.ds.Name, err != nil, c.wantOOM, err)
		}
	}
}

// Figure 9: GIN on Web-Google does not fit a single GPU, but half the graph
// does (2 GPUs work).
func TestSingleGPUGINWebGoogleOOM(t *testing.T) {
	gpu := V100()
	ds := graph.WebGoogle
	m := gnn.NewModel(gnn.GIN, ds.FeatureDim, ds.HiddenDim, 2, 1)
	if err := gpu.CheckFits(m, int64(ds.Vertices), ds.Edges, ds.FeatureDim); err == nil {
		t.Fatal("GIN on full Web-Google should OOM on one V100")
	}
	if err := gpu.CheckFits(m, int64(ds.Vertices)/2, ds.Edges/2, ds.FeatureDim); err != nil {
		t.Fatalf("half of Web-Google should fit: %v", err)
	}
}

// Figure 8: GCN on Reddit fits a single GPU (the paper trains it on 1 GPU).
func TestSingleGPURedditFits(t *testing.T) {
	gpu := V100()
	ds := graph.Reddit
	m := gnn.NewModel(gnn.GCN, ds.FeatureDim, ds.HiddenDim, 2, 1)
	if err := gpu.CheckFits(m, int64(ds.Vertices), ds.Edges, ds.FeatureDim); err != nil {
		t.Fatalf("Reddit should fit one V100: %v", err)
	}
}

func TestNonReplicatedPartitionsFit(t *testing.T) {
	// With 8 GPUs and no replication every dataset must fit (the baseline
	// configurations of Figure 7 all run).
	gpu := V100()
	for _, ds := range graph.AllDatasets {
		for _, kind := range gnn.AllModels {
			m := gnn.NewModel(kind, ds.FeatureDim, ds.HiddenDim, 2, 1)
			// Resident ≈ owned + remote halo; be generous with 2x owned.
			resident := int64(ds.Vertices) / 8 * 2
			if err := gpu.CheckFits(m, resident, ds.Edges/8, ds.FeatureDim); err != nil {
				t.Errorf("%s/%s with 8 GPUs should fit: %v", ds.Name, kind, err)
			}
		}
	}
}

func TestTrainingMemoryMonotone(t *testing.T) {
	m := gnn.NewModel(gnn.GCN, 64, 64, 2, 1)
	small := TrainingMemoryBytes(m, 1000, 10000, 64)
	big := TrainingMemoryBytes(m, 2000, 10000, 64)
	if big <= small {
		t.Fatal("memory must grow with resident vertices")
	}
}
