package worker

import (
	"sort"
	"time"

	"dgcl/internal/runtime"
)

// leases is the coordinator's per-generation lease table: each live member
// holds a lease that its heartbeats renew, and the table converts missed
// deadlines into the HealthTracker verdict model from the in-process failure
// detector — one deadline-class strike per expired lease, DownAfter strikes
// for a verdict, explicit evidence (connection loss, peer DeviceDown
// reports) for an immediate verdict. That reuse keeps "stalled" vs "dead"
// semantics identical across the data plane and the control plane: a stalled
// worker earns strikes and a suspect state it can still renew its way out
// of; a dead one is fenced out of the generation.
//
// The table is driven from the supervisor's single event loop (time injected
// via Clock), so it needs no lock of its own; the embedded HealthTracker is
// internally synchronized.
type leases struct {
	clock   Clock
	timeout time.Duration
	health  *runtime.HealthTracker

	last map[int]time.Time // member id -> last renewal
	dev  map[int]int       // member id -> representative external device
}

// newLeases builds a lease table for one membership generation. timeout is
// the per-renewal deadline; downAfter the consecutive-strike threshold.
func newLeases(clock Clock, timeout time.Duration, downAfter int) *leases {
	return &leases{
		clock:   clock,
		timeout: timeout,
		health:  runtime.NewHealthTracker(downAfter, nil, nil),
		last:    make(map[int]time.Time),
		dev:     make(map[int]int),
	}
}

// track starts (or restarts) member id's lease, blaming dev on expiry.
func (l *leases) track(id, dev int) {
	l.last[id] = l.clock.Now()
	l.dev[id] = dev
}

// drop stops tracking member id (it finished, left, or was judged dead).
func (l *leases) drop(id int) {
	delete(l.last, id)
}

// renew records proof of life for member id: the lease re-arms and the
// strike count clears.
func (l *leases) renew(id int) {
	if _, ok := l.last[id]; !ok {
		return
	}
	l.last[id] = l.clock.Now()
	l.health.ObserveRenewal(l.dev[id])
}

// evidence records explicit fail-stop evidence for member id (its control
// connection died): an immediate verdict.
func (l *leases) evidence(id int) {
	l.health.ObserveEvidence(l.dev[id])
}

// dead reports whether member id has a down verdict.
func (l *leases) dead(id int) bool { return l.health.Down(l.dev[id]) }

// check expires every lease past its deadline: each earns one strike and
// re-arms. It returns the members newly struck this call (suspects) and the
// members whose strikes just reached a verdict (dead), both ascending.
func (l *leases) check() (suspects, dead []int) {
	now := l.clock.Now()
	ids := make([]int, 0, len(l.last))
	for id := range l.last {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if now.Sub(l.last[id]) < l.timeout {
			continue
		}
		l.last[id] = now
		if l.health.ObserveStrike(l.dev[id]) {
			dead = append(dead, id)
			continue
		}
		suspects = append(suspects, id)
	}
	return suspects, dead
}

// nextDeadline returns the earliest lease deadline among tracked members,
// and whether any member is tracked.
func (l *leases) nextDeadline() (time.Time, bool) {
	var min time.Time
	ids := make([]int, 0, len(l.last))
	for id := range l.last {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		d := l.last[id].Add(l.timeout)
		if min.IsZero() || d.Before(min) {
			min = d
		}
	}
	return min, !min.IsZero()
}
