package worker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"dgcl/internal/comm/wire"
)

func marshalCtrl(t *testing.T, m ctrlMsg) []byte {
	t.Helper()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDecodeCtrlAcceptsValidEnvelope(t *testing.T) {
	in := ctrlMsg{T: mtPrepare, Gen: 3, RunID: "run-7", You: 1, Ranks: []int{2, 3}, Beat: int64(time.Second)}
	m, err := decodeCtrl(marshalCtrl(t, in))
	if err != nil {
		t.Fatal(err)
	}
	if m.T != mtPrepare || m.Gen != 3 || m.RunID != "run-7" || m.You != 1 || len(m.Ranks) != 2 {
		t.Fatalf("decoded envelope lost fields: %+v", m)
	}
}

// TestDecodeCtrlRejectsOversizedFields drives every cap in the decode choke
// point: an envelope over any bound must be refused before protocol logic
// sees it.
func TestDecodeCtrlRejectsOversizedFields(t *testing.T) {
	longStr := strings.Repeat("x", maxCtrlString+1)
	cases := []struct {
		name string
		raw  []byte
	}{
		{"not json", []byte(`{`)},
		{"no type", []byte(`{}`)},
		{"unknown type", marshalCtrl(t, ctrlMsg{T: "gossip"})},
		{"long run id", marshalCtrl(t, ctrlMsg{T: mtJoin, RunID: longStr})},
		{"long code", marshalCtrl(t, ctrlMsg{T: mtReject, Code: longStr})},
		{"long addr", marshalCtrl(t, ctrlMsg{T: mtReady, Addr: longStr})},
		{"long err", marshalCtrl(t, ctrlMsg{T: mtBye, Err: strings.Repeat("e", maxCtrlErr+1)})},
		{"many ranks", marshalCtrl(t, ctrlMsg{T: mtPrepare, Ranks: make([]int, maxCtrlRanks+1)})},
		{"many down", marshalCtrl(t, ctrlMsg{T: mtPrepare, Down: make([]int, maxCtrlRanks+1)})},
		{"many blame", marshalCtrl(t, ctrlMsg{T: mtFault, Blame: make([]int, maxCtrlRanks+1)})},
		{"many ckpts", marshalCtrl(t, ctrlMsg{T: mtReady, Ckpts: make([]int, maxCtrlCkpts+1)})},
		{"many nodes", marshalCtrl(t, ctrlMsg{T: mtMesh, Nodes: make([]wire.NodeSpec, maxCtrlNodes+1)})},
		{"long node addr", marshalCtrl(t, ctrlMsg{T: mtMesh, Nodes: []wire.NodeSpec{{Addr: longStr}}})},
		{"many node ranks", marshalCtrl(t, ctrlMsg{T: mtMesh, Nodes: []wire.NodeSpec{{Ranks: make([]int, maxCtrlRanks+1)}}})},
		{"long spec dataset", marshalCtrl(t, ctrlMsg{T: mtPrepare, Spec: &Spec{Dataset: longStr}})},
		{"long spec model", marshalCtrl(t, ctrlMsg{T: mtPrepare, Spec: &Spec{Model: longStr}})},
	}
	for _, tc := range cases {
		if _, err := decodeCtrl(tc.raw); err == nil {
			t.Errorf("%s: decodeCtrl accepted the envelope", tc.name)
		}
	}
}

func TestProtocolErrorIsMatchesByCode(t *testing.T) {
	wrapped := fmt.Errorf("worker: coordinator said no: %w", &ProtocolError{Code: CodeProtoMismatch, Detail: "v1 vs v2"})
	if !errors.Is(wrapped, ErrProtoMismatch) {
		t.Fatal("wrapped proto-mismatch does not match its sentinel")
	}
	if errors.Is(wrapped, ErrRunMismatch) || errors.Is(wrapped, ErrFenced) {
		t.Fatal("proto-mismatch matched a foreign sentinel")
	}
	// A target with a Detail is specific: it only matches the same detail.
	spec := &ProtocolError{Code: CodeFenced, Detail: "generation 4"}
	if !errors.Is(&ProtocolError{Code: CodeFenced, Detail: "generation 4"}, spec) {
		t.Fatal("detail-equal errors do not match")
	}
	if errors.Is(&ProtocolError{Code: CodeFenced, Detail: "generation 5"}, spec) {
		t.Fatal("detail-divergent errors matched")
	}
}

// TestJoinProtocolVersionMismatchRejected speaks a wrong protocol version at
// a live coordinator over a real socket: the answer must be a typed reject
// carrying CodeProtoMismatch, not a decode failure or a hang.
func TestJoinProtocolVersionMismatchRejected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coordDone := make(chan struct{})
	go func() {
		defer close(coordDone)
		// The run never gathers a valid worker; the context cancel below
		// ends it. Only the rejection matters here.
		_, _ = Supervise(ctx, ln, SuperviseOptions{Workers: 1, Spec: testSpec()})
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteControl(conn, ctrlMsg{T: mtJoin, Proto: ProtoVersion + 1}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	msg, err := readCtrl(conn, 10*time.Second)
	if err != nil {
		t.Fatalf("reading rejection: %v", err)
	}
	if msg.T != mtReject || msg.Code != CodeProtoMismatch {
		t.Fatalf("got %q/%q, want %q/%q", msg.T, msg.Code, mtReject, CodeProtoMismatch)
	}
	cancel()
	<-coordDone
}

// TestWorkerSurfacesTypedRejection: a worker whose join is rejected must
// return a ProtocolError the caller can errors.Is against the code sentinel.
func TestWorkerSurfacesTypedRejection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := readCtrl(conn, 5*time.Second); err != nil {
			return
		}
		_ = wire.WriteControl(conn, ctrlMsg{T: mtReject, Code: CodeRunMismatch, Err: "stale identity"}, 5*time.Second)
	}()
	_, err = Run(context.Background(), WorkerOptions{Coordinator: ln.Addr().String()})
	if !errors.Is(err, ErrRunMismatch) {
		t.Fatalf("got %v, want a %s ProtocolError", err, CodeRunMismatch)
	}
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Detail != "stale identity" {
		t.Fatalf("rejection detail lost: %v", err)
	}
}

// FuzzDecodeCtrlMsg fuzzes the control-plane decode choke point: arbitrary
// bytes must never panic, and any envelope the decoder accepts must survive a
// marshal/decode round trip with its identity intact.
func FuzzDecodeCtrlMsg(f *testing.F) {
	seed := []ctrlMsg{
		{T: mtJoin, Proto: ProtoVersion},
		{T: mtJoin, Proto: ProtoVersion, Rejoin: true, RunID: "run-1", Plan: 0xfeed},
		{T: mtReject, Gen: 2, Code: CodeFenced, Err: "generation 2 already forming"},
		{T: mtPrepare, Gen: 1, RunID: "run-1", Spec: &Spec{Dataset: "Web-Google", Model: "GCN", GPUs: 4}, You: 1, Ranks: []int{2, 3}, Down: []int{1}, Beat: 5e8},
		{T: mtReady, Gen: 1, Addr: "127.0.0.1:401", Plan: 7, Ckpts: []int{1, 2}},
		{T: mtMesh, Gen: 1, Nodes: []wire.NodeSpec{{Addr: "127.0.0.1:402", Ranks: []int{0, 1}}}, Start: 2},
		{T: mtBeat, Gen: 1, Epoch: 2, Progress: true, Loss: 0.25},
		{T: mtFault, Gen: 1, Epoch: 2, Blame: []int{3}},
		{T: mtLeave, Gen: 1, Epoch: 2},
		{T: mtResult, Gen: 1, Epoch: 3, Sum: 0xabc, Losses: []float64{1, 0.5}},
		{T: mtBye, Gen: 1, OK: true, Losses: []float64{1, 0.5}, Sum: 0xabc},
	}
	for _, m := range seed {
		data, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"t":"join","proto":1e9}`))
	f.Add([]byte(`{"t":"mesh","nodes":[{"addr":"x","ranks":[0]}]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeCtrl(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted envelope does not re-marshal: %v", err)
		}
		m2, err := decodeCtrl(out)
		if err != nil {
			t.Fatalf("re-marshaled envelope rejected: %v", err)
		}
		if m2.T != m.T || m2.Gen != m.Gen || m2.RunID != m.RunID || m2.Epoch != m.Epoch {
			t.Fatalf("round trip changed the envelope: %+v vs %+v", m, m2)
		}
	})
}
