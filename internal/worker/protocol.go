package worker

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"dgcl/internal/comm/wire"
)

// The supervised membership protocol (DESIGN.md §15). Every control-plane
// message is one tagged envelope, length-prefixed JSON over the coordinator
// connection (wire.WriteControl / wire.ReadControl), and every message after
// the join carries the membership generation it belongs to: the coordinator
// bumps the generation on each membership change (death, leave, rejoin,
// degrade), and frames stamped with a stale generation are fenced — ignored,
// never applied — so a worker from a previous incarnation of the run cannot
// corrupt state.
//
// Lifecycle, per generation:
//
//	worker → join{proto[, run, plan, rejoin]}
//	coord  → prepare{gen, run, spec, you, ranks, down, beat}   (or reject{code})
//	worker → ready{gen, addr, plan, ckpts}
//	coord  → mesh{gen, nodes, start}
//	worker → beat{gen, epoch[, loss]}...   then one of:
//	worker → result{gen, epoch, sum} | fault{gen, epoch, blame} | leave{gen, epoch}
//	coord  → bye{gen, ok[, err]}           (or the next generation's prepare)

// ProtoVersion is the control-plane protocol version. The join message leads
// with it, and a coordinator speaking a different version rejects the worker
// with a typed ProtocolError instead of a decode failure mid-handshake.
const ProtoVersion = 2

// Message types for the ctrlMsg envelope.
const (
	mtJoin    = "join"
	mtReject  = "reject"
	mtPrepare = "prepare"
	mtReady   = "ready"
	mtMesh    = "mesh"
	mtBeat    = "beat"
	mtFault   = "fault"
	mtLeave   = "leave"
	mtResult  = "result"
	mtBye     = "bye"
)

// Reject codes carried by ProtocolError (and the reject message).
const (
	CodeProtoMismatch = "proto-mismatch"
	CodeRunMismatch   = "run-mismatch"
	CodePlanMismatch  = "plan-mismatch"
	CodeFenced        = "generation-fenced"
	CodeRunFull       = "run-full"
)

// ProtocolError is a typed control-plane rejection: the coordinator sends the
// code over the wire and the worker surfaces it as this error, so callers can
// errors.Is against the sentinel for each code instead of string-matching a
// decode failure.
type ProtocolError struct {
	Code   string
	Detail string
}

func (e *ProtocolError) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("worker: protocol: %s", e.Code)
	}
	return fmt.Sprintf("worker: protocol: %s: %s", e.Code, e.Detail)
}

// Is matches any ProtocolError with the same code (a code-only target acts as
// a sentinel; its empty Detail matches every detail).
func (e *ProtocolError) Is(target error) bool {
	t, ok := target.(*ProtocolError)
	return ok && t.Code == e.Code && (t.Detail == "" || t.Detail == e.Detail)
}

// Typed rejection sentinels for errors.Is.
var (
	ErrProtoMismatch = &ProtocolError{Code: CodeProtoMismatch}
	ErrRunMismatch   = &ProtocolError{Code: CodeRunMismatch}
	ErrPlanMismatch  = &ProtocolError{Code: CodePlanMismatch}
	ErrFenced        = &ProtocolError{Code: CodeFenced}
	ErrRunFull       = &ProtocolError{Code: CodeRunFull}
)

// ctrlMsg is the tagged control-plane envelope. Fields are a union over the
// message types; T selects which are meaningful. Gen is the membership
// generation fence and is present on every message after the join.
type ctrlMsg struct {
	T   string `json:"t"`
	Gen uint64 `json:"gen,omitempty"`

	// join (worker → coordinator). A rejoining worker presents the run id
	// and plan digest it persisted at its first join.
	Proto  int    `json:"proto,omitempty"`
	RunID  string `json:"run,omitempty"` // also on prepare (coordinator → worker)
	Rejoin bool   `json:"rejoin,omitempty"`
	Plan   uint64 `json:"plan,omitempty"` // join (rejoin) + ready

	// reject / bye / result
	Code string `json:"code,omitempty"`
	Err  string `json:"err,omitempty"`
	OK   bool   `json:"ok,omitempty"`

	// prepare (coordinator → worker)
	Spec  *Spec `json:"spec,omitempty"`
	You   int   `json:"you,omitempty"`   // node id within this generation
	Ranks []int `json:"ranks,omitempty"` // external device ids this member hosts
	Down  []int `json:"down,omitempty"`  // cumulative removed external devices
	Beat  int64 `json:"beat,omitempty"`  // heartbeat interval, nanoseconds

	// ready (worker → coordinator)
	Addr  string `json:"addr,omitempty"`  // fresh data listener for this generation
	Ckpts []int  `json:"ckpts,omitempty"` // intact checkpoint epochs, ascending

	// mesh (coordinator → worker)
	Nodes []wire.NodeSpec `json:"nodes,omitempty"`
	Start int             `json:"start,omitempty"` // common resume epoch

	// beat / fault / leave / result
	Epoch    int       `json:"epoch,omitempty"` // completed epoch count
	Progress bool      `json:"progress,omitempty"`
	Loss     float64   `json:"loss,omitempty"`   // beat with Progress: loss of epoch Epoch-1
	Blame    []int     `json:"blame,omitempty"`  // fault: devices the data plane implicated (advisory)
	Losses   []float64 `json:"losses,omitempty"` // result: this process's per-epoch losses
	Sum      uint64    `json:"sum,omitempty"`    // result: final model digest
}

// Caps applied before a decoded envelope is believed. wire.ReadControl
// already bounds the raw message at 1 MiB; these bound the decoded shapes so
// no later loop trusts an attacker-sized list.
const (
	maxCtrlString = 256
	maxCtrlErr    = 1 << 12
	maxCtrlRanks  = 1 << 16
	maxCtrlNodes  = 1 << 12
	maxCtrlCkpts  = 1 << 10
	maxCtrlLosses = 1 << 20
)

// validCtrlTypes is the closed set of envelope tags.
var validCtrlTypes = map[string]bool{
	mtJoin: true, mtReject: true, mtPrepare: true, mtReady: true, mtMesh: true,
	mtBeat: true, mtFault: true, mtLeave: true, mtResult: true, mtBye: true,
}

// decodeCtrl parses and validates one control envelope from raw JSON. It is
// the single choke point for untrusted control-plane input (and the fuzz
// target), enforcing the type tag and every list/string cap before the
// message reaches protocol logic.
func decodeCtrl(data []byte) (ctrlMsg, error) {
	var m ctrlMsg
	if err := json.Unmarshal(data, &m); err != nil {
		return ctrlMsg{}, fmt.Errorf("worker: control decode: %w", err)
	}
	if !validCtrlTypes[m.T] {
		return ctrlMsg{}, fmt.Errorf("worker: control message type %q unknown", m.T)
	}
	capStr := func(name, s string) error {
		if len(s) > maxCtrlString {
			return fmt.Errorf("worker: control %s field %d bytes exceeds cap %d", name, len(s), maxCtrlString)
		}
		return nil
	}
	capList := func(name string, n int) error {
		if n > maxCtrlRanks {
			return fmt.Errorf("worker: control %s list %d entries exceeds cap %d", name, n, maxCtrlRanks)
		}
		return nil
	}
	for _, err := range []error{
		capStr("run", m.RunID), capStr("code", m.Code), capStr("addr", m.Addr),
		capList("ranks", len(m.Ranks)), capList("down", len(m.Down)), capList("blame", len(m.Blame)),
	} {
		if err != nil {
			return ctrlMsg{}, err
		}
	}
	if len(m.Err) > maxCtrlErr {
		return ctrlMsg{}, fmt.Errorf("worker: control err field %d bytes exceeds cap %d", len(m.Err), maxCtrlErr)
	}
	if len(m.Nodes) > maxCtrlNodes {
		return ctrlMsg{}, fmt.Errorf("worker: control node table %d entries exceeds cap %d", len(m.Nodes), maxCtrlNodes)
	}
	for _, sp := range m.Nodes {
		if len(sp.Addr) > maxCtrlString {
			return ctrlMsg{}, fmt.Errorf("worker: control node addr %d bytes exceeds cap %d", len(sp.Addr), maxCtrlString)
		}
		if len(sp.Ranks) > maxCtrlRanks {
			return ctrlMsg{}, fmt.Errorf("worker: control node rank list %d entries exceeds cap %d", len(sp.Ranks), maxCtrlRanks)
		}
	}
	if len(m.Ckpts) > maxCtrlCkpts {
		return ctrlMsg{}, fmt.Errorf("worker: control checkpoint list %d entries exceeds cap %d", len(m.Ckpts), maxCtrlCkpts)
	}
	if len(m.Losses) > maxCtrlLosses {
		return ctrlMsg{}, fmt.Errorf("worker: control loss list %d entries exceeds cap %d", len(m.Losses), maxCtrlLosses)
	}
	if m.Spec != nil {
		if err := capStr("spec dataset", m.Spec.Dataset); err != nil {
			return ctrlMsg{}, err
		}
		if err := capStr("spec model", m.Spec.Model); err != nil {
			return ctrlMsg{}, err
		}
	}
	return m, nil
}

// readCtrl reads one envelope from conn under an armed deadline and runs it
// through the decodeCtrl validation choke point.
func readCtrl(conn net.Conn, timeout time.Duration) (ctrlMsg, error) {
	var raw json.RawMessage
	if err := wire.ReadControl(conn, &raw, timeout); err != nil {
		return ctrlMsg{}, err
	}
	return decodeCtrl(raw)
}

// ctrlConn serializes control-plane writes on one shared connection: the
// worker's epoch loop (progress beats, results) and its background heartbeat
// goroutine both write here.
type ctrlConn struct {
	conn net.Conn
	mu   sync.Mutex
}

// send writes one envelope under the write mutex with an armed deadline.
func (c *ctrlConn) send(m ctrlMsg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//dgclvet:ignore lockdisc mu exists to serialize whole-message writes on the shared control conn (heartbeat goroutine vs epoch loop); WriteControl arms a write deadline bounding the hold, and no other lock nests inside mu
	return wire.WriteControl(c.conn, m, controlTimeout)
}
