package worker

import (
	"context"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dgcl/internal/testutil"
)

func testSpec() Spec {
	return Spec{
		Dataset:    "Web-Google",
		Scale:      4096,
		FeatureDim: 16,
		Model:      "GCN",
		Hidden:     8,
		Layers:     2,
		GPUs:       4,
		Epochs:     3,
		Seed:       11,
		LR:         0.01,
	}
}

func TestSplitRanksContiguousAndComplete(t *testing.T) {
	cases := []struct {
		k, w int
		want [][]int
	}{
		{4, 2, [][]int{{0, 1}, {2, 3}}},
		{4, 4, [][]int{{0}, {1}, {2}, {3}}},
		{8, 3, [][]int{{0, 1}, {2, 3, 4}, {5, 6, 7}}},
		{4, 1, [][]int{{0, 1, 2, 3}}},
		// K not divisible by W: uneven but contiguous and complete.
		{5, 3, [][]int{{0}, {1, 2}, {3, 4}}},
		{7, 2, [][]int{{0, 1, 2}, {3, 4, 5, 6}}},
		// Single process hosting a single rank.
		{1, 1, [][]int{{0}}},
		// More processes than ranks: the arithmetic leaves early slots empty
		// (Supervise rejects this shape before it ever reaches splitRanks).
		{3, 4, [][]int{nil, {0}, {1}, {2}}},
	}
	for _, tc := range cases {
		if got := splitRanks(tc.k, tc.w); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitRanks(%d, %d) = %v, want %v", tc.k, tc.w, got, tc.want)
		}
	}
}

// runDistributed stands up a coordinator and w in-process workers over
// loopback TCP and returns the coordinator's verified report.
func runDistributed(t *testing.T, spec Spec, w int) *Report {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	workerReports := make([]*Report, w)
	workerErrs := make([]error, w)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerReports[i], workerErrs[i] = RunWorker(ctx, ln.Addr().String(), "127.0.0.1:0")
		}(i)
	}
	report, err := RunCoordinator(ctx, ln, w, spec)
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i := 0; i < w; i++ {
		if workerErrs[i] != nil {
			t.Fatalf("worker %d: %v", i, workerErrs[i])
		}
		if err := sameReport(report, workerReports[i]); err != nil {
			t.Fatalf("worker %d report differs from coordinator's: %v", i, err)
		}
	}
	return report
}

// TestDistributedRunBitIdenticalToLocal is the acceptance gate: a training
// run split over worker processes connected by real sockets must produce the
// same per-epoch losses and the same final model weights, bit for bit, as
// the single-process run of the same spec.
func TestDistributedRunBitIdenticalToLocal(t *testing.T) {
	spec := testSpec()
	local, err := TrainLocal(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(local.Losses) != spec.Epochs || local.Losses[0] == 0 {
		t.Fatalf("suspicious local baseline: %+v", local)
	}
	if local.Losses[spec.Epochs-1] >= local.Losses[0] {
		t.Fatalf("local baseline does not converge: %v", local.Losses)
	}

	for _, w := range []int{2, 4} {
		before := testutil.Goroutines()
		got := runDistributed(t, spec, w)
		if err := sameReport(local, got); err != nil {
			t.Fatalf("%d-worker run is not bit-identical to the local run: %v", w, err)
		}
		if !testutil.GoroutinesSettleTo(before, 2*time.Second) {
			t.Fatalf("%d-worker run leaked goroutines: %d before, %d after", w, before, testutil.Goroutines())
		}
	}
}

// TestWorkersRejectDivergentSpecs: a worker meshed into the wrong run must
// refuse at handshake time, not deadlock mid-collective.
func TestCoordinatorRejectsTooManyWorkers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	if _, err := RunCoordinator(context.Background(), ln, spec.GPUs+1, spec); err == nil {
		t.Fatal("coordinator accepted more workers than GPUs")
	}
}

// TestTwoOSProcesses runs the real dgclworker binary twice against an
// in-process coordinator: one training run spanning N OS processes, the
// acceptance scenario of the multi-process walkthrough.
func TestTwoOSProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs dgclworker subprocesses")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "dgclworker")
	build := exec.Command("go", "build", "-o", bin, "dgcl/cmd/dgclworker")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dgclworker: %v\n%s", err, out)
	}

	spec := testSpec()
	local, err := TrainLocal(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	procs := make([]*exec.Cmd, 2)
	outs := make([]strings.Builder, 2)
	for i := range procs {
		procs[i] = exec.CommandContext(ctx, bin, "-connect", ln.Addr().String())
		procs[i].Stdout = &outs[i]
		procs[i].Stderr = &outs[i]
		if err := procs[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	report, err := RunCoordinator(ctx, ln, 2, spec)
	for i, p := range procs {
		if werr := p.Wait(); werr != nil {
			t.Errorf("dgclworker %d: %v\n%s", i, werr, outs[i].String())
		}
	}
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if err := sameReport(local, report); err != nil {
		t.Fatalf("OS-process run is not bit-identical to the local run: %v", err)
	}
}

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}
