package worker

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// BackoffConfig bounds the exponential reconnect backoff a worker uses to
// (re)dial the coordinator: attempt i sleeps min(Initial·2^i, Max) scaled by
// a deterministic jitter in [0.5, 1.0) drawn from Seed, so restarted workers
// do not stampede the coordinator in lockstep yet every test schedule is
// reproducible. The zero value selects the defaults.
type BackoffConfig struct {
	// Initial is the first retry delay. Default 100ms.
	Initial time.Duration
	// Max caps the delay growth. Default 5s.
	Max time.Duration
	// Tries is the total connection attempts (1 = no retry). Default 1.
	Tries int
	// Seed drives the jitter stream; the schedule is a pure function of the
	// config.
	Seed int64
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Initial <= 0 {
		c.Initial = 100 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = 5 * time.Second
	}
	if c.Max < c.Initial {
		c.Max = c.Initial
	}
	if c.Tries <= 0 {
		c.Tries = 1
	}
	return c
}

// backoff iterates the jittered delay schedule.
type backoff struct {
	cfg     BackoffConfig
	rng     *rand.Rand
	attempt int
}

func newBackoff(cfg BackoffConfig) *backoff {
	cfg = cfg.withDefaults()
	return &backoff{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// next returns the delay before the next attempt: bounded exponential growth
// with multiplicative jitter in [0.5, 1.0).
func (b *backoff) next() time.Duration {
	d := b.cfg.Initial
	for i := 0; i < b.attempt && d < b.cfg.Max; i++ {
		d *= 2
	}
	if d > b.cfg.Max {
		d = b.cfg.Max
	}
	b.attempt++
	return time.Duration(float64(d) * (0.5 + b.rng.Float64()/2))
}

// dialBackoff dials the coordinator under the backoff schedule, sleeping on
// the injected clock so tests drive the retries deterministically.
func dialBackoff(ctx context.Context, clock Clock, addr string, cfg BackoffConfig) (net.Conn, error) {
	b := newBackoff(cfg)
	var lastErr error
	for try := 0; try < b.cfg.Tries; try++ {
		if try > 0 {
			ch, stop := clock.After(b.next())
			select {
			case <-ch:
			case <-ctx.Done():
				stop()
				return nil, ctx.Err()
			}
		}
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("worker: coordinator %s unreachable after %d attempts: %w", addr, b.cfg.Tries, lastErr)
}
