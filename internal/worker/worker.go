// Package worker turns the single-process training loop into a supervised
// N-process run over the wire transport. A coordinator (Supervise) admits
// worker processes into a membership, hands each its node id, client ranks,
// and the generation's address table; every worker builds the identical
// system from the shared Spec, meshes with its peers over TCP (handshakes
// reject strangers, divergent plans, and stale generations), and trains its
// ranks while exchanging losses and gradients through runtime.PeerExchange.
// Every process keeps all K model replicas and steps them identically, so
// the final weights of every worker — and of a single-process run with the
// same Spec — are bit-identical.
//
// The membership layer (DESIGN.md §15) makes the run survive its processes:
// heartbeats renew per-worker leases, missed deadlines accumulate
// HealthTracker strikes (stalled → suspect → dead), and a membership change
// rolls the run forward one generation. A restarted worker re-dials with
// bounded backoff, presents its persisted run identity, reclaims its slot,
// and every member catches up from the newest checkpoint epoch they all hold
// intact; when nobody rejoins within the grace window the coordinator
// degrades the dead ranks onto the survivors over the live control sockets.
package worker

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"dgcl"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
)

// Spec is the complete, JSON-serializable description of one training run.
// Every process (coordinator and workers) derives the identical graph,
// partition, plan, model, and inputs from it; nothing else may influence the
// math.
type Spec struct {
	Dataset    string // dataset name from the paper's Table 4 (graph.DatasetByName)
	Scale      int    // dataset downscale factor
	FeatureDim int    // input feature width; 0 means the dataset's native width
	Model      string // GCN | CommNet | GIN | GraphSAGE | GAT
	Hidden     int    // hidden layer width
	Layers     int    // GNN depth
	GPUs       int    // cluster size K
	Epochs     int
	Seed       int64
	LR         float64
	// ChunkRows is the overlap transfer-chunking granularity (0 means
	// dgcl.DefaultChunkRows). It determines the wire-visible transfer keys,
	// so it lives in the spec: every process of a run must compile the same
	// chunked layout, and the wire plan digest folds it in so a mismatch is
	// rejected at the handshake.
	ChunkRows int
	// WireWindow is the per-link credit window every worker's wire node
	// uses (0 means wire.DefaultWindow). Purely a tuning knob — it cannot
	// affect results — but distributing it through the spec keeps the whole
	// run consistently tuned.
	WireWindow int
}

func (s Spec) withDefaults() Spec {
	if s.Scale <= 0 {
		s.Scale = 256
	}
	if s.Hidden <= 0 {
		s.Hidden = 8
	}
	if s.Layers <= 0 {
		s.Layers = 2
	}
	if s.Epochs <= 0 {
		s.Epochs = 1
	}
	if s.LR == 0 {
		s.LR = 0.01
	}
	if s.Model == "" {
		s.Model = "GCN"
	}
	return s
}

// Report is one run's outcome: the per-epoch global losses and a digest of
// the final model weights. Identical Specs must produce identical Reports on
// every process, wire or no wire.
type Report struct {
	Losses   []float64
	ModelSum uint64
}

// Build deterministically constructs the system, model, and training inputs
// from the spec. Called identically by every process of a run.
func Build(spec Spec) (*dgcl.System, *dgcl.Model, *dgcl.Matrix, *dgcl.Matrix, error) {
	spec = spec.withDefaults()
	ds, err := graph.DatasetByName(spec.Dataset)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	kind := gnn.ModelKind(spec.Model)
	switch kind {
	case gnn.GCN, gnn.CommNet, gnn.GIN, gnn.GraphSAGE, gnn.GAT:
	default:
		return nil, nil, nil, nil, fmt.Errorf("worker: unknown model %q", spec.Model)
	}
	g := ds.Generate(spec.Scale, spec.Seed)
	topo, err := dgcl.TopologyForGPUCount(spec.GPUs)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	featDim := spec.FeatureDim
	if featDim <= 0 {
		featDim = ds.FeatureDim
	}
	sys := dgcl.Init(topo, dgcl.Options{
		Seed:    spec.Seed,
		Overlap: dgcl.OverlapOptions{ChunkRows: spec.ChunkRows},
	})
	if err := sys.BuildCommInfo(g, featDim); err != nil {
		return nil, nil, nil, nil, err
	}
	model := dgcl.NewModel(kind, featDim, spec.Hidden, spec.Layers, spec.Seed+1)
	features := dgcl.RandomFeatures(g.NumVertices(), featDim, spec.Seed+2)
	targets := dgcl.RandomFeatures(g.NumVertices(), spec.Hidden, spec.Seed+3)
	return sys, model, features, targets, nil
}

// trainEpochs runs the epoch loop and digests the outcome.
func trainEpochs(ctx context.Context, sys *dgcl.System, model *dgcl.Model, features, targets *dgcl.Matrix, spec Spec) (*Report, error) {
	tr, err := sys.NewTrainer(model, features, targets)
	if err != nil {
		return nil, err
	}
	rep := &Report{Losses: make([]float64, spec.Epochs)}
	for e := 0; e < spec.Epochs; e++ {
		loss, err := tr.EpochAt(ctx, e)
		if err != nil {
			return nil, fmt.Errorf("worker: epoch %d: %w", e, err)
		}
		tr.Step(float32(spec.LR))
		rep.Losses[e] = loss
	}
	rep.ModelSum = ModelDigest(tr.Models[0])
	return rep, nil
}

// TrainLocal runs the spec single-process (all ranks in this process, no
// wire): the baseline every multi-process run must match bit for bit.
func TrainLocal(ctx context.Context, spec Spec) (*Report, error) {
	spec = spec.withDefaults()
	sys, model, features, targets, err := Build(spec)
	if err != nil {
		return nil, err
	}
	return trainEpochs(ctx, sys, model, features, targets, spec)
}

// ModelDigest fingerprints the model weights: FNV-64a over every parameter
// float32's bits in deterministic order.
func ModelDigest(m *dgcl.Model) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		for _, c := range b {
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	for _, layer := range m.Layers {
		for _, p := range layer.Params() {
			for _, x := range p.Data {
				mix(math.Float32bits(x))
			}
		}
	}
	return h
}

// splitRanks assigns the K client ranks contiguously over w workers.
func splitRanks(k, w int) [][]int {
	out := make([][]int, w)
	for i := 0; i < w; i++ {
		lo, hi := i*k/w, (i+1)*k/w
		for r := lo; r < hi; r++ {
			out[i] = append(out[i], r)
		}
	}
	return out
}

const (
	controlTimeout = 60 * time.Second
	// resultTimeout bounds how long the coordinator waits for a worker's
	// training to finish, and a worker for its peers' results.
	resultTimeout = 10 * time.Minute
)

func sameReport(a, b *Report) error {
	if len(a.Losses) != len(b.Losses) {
		return fmt.Errorf("epoch counts differ: %d vs %d", len(a.Losses), len(b.Losses))
	}
	for e := range a.Losses {
		if a.Losses[e] != b.Losses[e] {
			return fmt.Errorf("epoch %d loss %v vs %v", e, a.Losses[e], b.Losses[e])
		}
	}
	if a.ModelSum != b.ModelSum {
		return fmt.Errorf("final model digests differ: %#x vs %#x", a.ModelSum, b.ModelSum)
	}
	return nil
}

// clusterID names the run: it prefixes the coordinator's run ID, which in
// turn (suffixed with the membership generation) becomes the wire cluster ID,
// so workers handed different specs — or meshing for a stale generation —
// refuse to connect even before the plan digest check.
func clusterID(spec Spec) string {
	return fmt.Sprintf("dgcl-%s-%s-k%d-s%d", spec.Dataset, spec.Model, spec.GPUs, spec.Seed)
}
