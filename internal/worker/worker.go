// Package worker turns the single-process training loop into an N-process
// run over the wire transport: a coordinator hands each joining worker
// process its node id, client ranks, and the cluster's address table; every
// worker builds the identical system from the shared Spec, meshes with its
// peers over TCP (handshakes reject strangers and divergent plans), and
// trains its ranks while exchanging losses and gradients through
// runtime.PeerExchange. Every process keeps all K model replicas and steps
// them identically, so the final weights of every worker — and of a
// single-process run with the same Spec — are bit-identical.
package worker

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"time"

	"dgcl"
	"dgcl/internal/comm/wire"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
)

// Spec is the complete, JSON-serializable description of one training run.
// Every process (coordinator and workers) derives the identical graph,
// partition, plan, model, and inputs from it; nothing else may influence the
// math.
type Spec struct {
	Dataset    string // dataset name from the paper's Table 4 (graph.DatasetByName)
	Scale      int    // dataset downscale factor
	FeatureDim int    // input feature width; 0 means the dataset's native width
	Model      string // GCN | CommNet | GIN | GraphSAGE | GAT
	Hidden     int    // hidden layer width
	Layers     int    // GNN depth
	GPUs       int    // cluster size K
	Epochs     int
	Seed       int64
	LR         float64
}

func (s Spec) withDefaults() Spec {
	if s.Scale <= 0 {
		s.Scale = 256
	}
	if s.Hidden <= 0 {
		s.Hidden = 8
	}
	if s.Layers <= 0 {
		s.Layers = 2
	}
	if s.Epochs <= 0 {
		s.Epochs = 1
	}
	if s.LR == 0 {
		s.LR = 0.01
	}
	if s.Model == "" {
		s.Model = "GCN"
	}
	return s
}

// Report is one run's outcome: the per-epoch global losses and a digest of
// the final model weights. Identical Specs must produce identical Reports on
// every process, wire or no wire.
type Report struct {
	Losses   []float64
	ModelSum uint64
}

// Build deterministically constructs the system, model, and training inputs
// from the spec. Called identically by every process of a run.
func Build(spec Spec) (*dgcl.System, *dgcl.Model, *dgcl.Matrix, *dgcl.Matrix, error) {
	spec = spec.withDefaults()
	ds, err := graph.DatasetByName(spec.Dataset)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	kind := gnn.ModelKind(spec.Model)
	switch kind {
	case gnn.GCN, gnn.CommNet, gnn.GIN, gnn.GraphSAGE, gnn.GAT:
	default:
		return nil, nil, nil, nil, fmt.Errorf("worker: unknown model %q", spec.Model)
	}
	g := ds.Generate(spec.Scale, spec.Seed)
	topo, err := dgcl.TopologyForGPUCount(spec.GPUs)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	featDim := spec.FeatureDim
	if featDim <= 0 {
		featDim = ds.FeatureDim
	}
	sys := dgcl.Init(topo, dgcl.Options{Seed: spec.Seed})
	if err := sys.BuildCommInfo(g, featDim); err != nil {
		return nil, nil, nil, nil, err
	}
	model := dgcl.NewModel(kind, featDim, spec.Hidden, spec.Layers, spec.Seed+1)
	features := dgcl.RandomFeatures(g.NumVertices(), featDim, spec.Seed+2)
	targets := dgcl.RandomFeatures(g.NumVertices(), spec.Hidden, spec.Seed+3)
	return sys, model, features, targets, nil
}

// trainEpochs runs the epoch loop and digests the outcome.
func trainEpochs(ctx context.Context, sys *dgcl.System, model *dgcl.Model, features, targets *dgcl.Matrix, spec Spec) (*Report, error) {
	tr, err := sys.NewTrainer(model, features, targets)
	if err != nil {
		return nil, err
	}
	rep := &Report{Losses: make([]float64, spec.Epochs)}
	for e := 0; e < spec.Epochs; e++ {
		loss, err := tr.EpochAt(ctx, e)
		if err != nil {
			return nil, fmt.Errorf("worker: epoch %d: %w", e, err)
		}
		tr.Step(float32(spec.LR))
		rep.Losses[e] = loss
	}
	rep.ModelSum = ModelDigest(model)
	return rep, nil
}

// TrainLocal runs the spec single-process (all ranks in this process, no
// wire): the baseline every multi-process run must match bit for bit.
func TrainLocal(ctx context.Context, spec Spec) (*Report, error) {
	spec = spec.withDefaults()
	sys, model, features, targets, err := Build(spec)
	if err != nil {
		return nil, err
	}
	return trainEpochs(ctx, sys, model, features, targets, spec)
}

// ModelDigest fingerprints the model weights: FNV-64a over every parameter
// float32's bits in deterministic order.
func ModelDigest(m *dgcl.Model) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		for _, c := range b {
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	for _, layer := range m.Layers {
		for _, p := range layer.Params() {
			for _, x := range p.Data {
				mix(math.Float32bits(x))
			}
		}
	}
	return h
}

// splitRanks assigns the K client ranks contiguously over w workers.
func splitRanks(k, w int) [][]int {
	out := make([][]int, w)
	for i := 0; i < w; i++ {
		lo, hi := i*k/w, (i+1)*k/w
		for r := lo; r < hi; r++ {
			out[i] = append(out[i], r)
		}
	}
	return out
}

// Control-plane messages, length-prefixed JSON over the coordinator
// connection (wire.WriteControl / wire.ReadControl).
type joinMsg struct {
	// DataAddr is where this worker's wire node accepts peer connections.
	// The worker binds its data listener before joining, so the address
	// table is complete the moment the last worker joins.
	DataAddr string
}

type startMsg struct {
	Spec  Spec
	Nodes []wire.NodeSpec
	You   int
}

type resultMsg struct {
	Err      string
	Losses   []float64
	ModelSum uint64
}

type byeMsg struct {
	OK  bool
	Err string
}

const (
	controlTimeout = 60 * time.Second
	// resultTimeout bounds how long the coordinator waits for a worker's
	// training to finish, and a worker for its peers' results.
	resultTimeout = 10 * time.Minute
)

// RunCoordinator serves one multi-process run on a pre-opened listener: it
// accepts `workers` join connections, assigns node ids in join order and
// ranks contiguously, broadcasts the start message with the full address
// table, then collects every worker's report and verifies they are
// identical. The coordinator is pure control plane — no tensor crosses it.
func RunCoordinator(ctx context.Context, ln net.Listener, workers int, spec Spec) (*Report, error) {
	spec = spec.withDefaults()
	if workers < 1 {
		return nil, fmt.Errorf("worker: need at least 1 worker, got %d", workers)
	}
	if workers > spec.GPUs {
		return nil, fmt.Errorf("worker: %d workers for %d GPUs: some would host no rank", workers, spec.GPUs)
	}
	defer ln.Close()
	deadline := time.Now().Add(controlTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	type deadliner interface{ SetDeadline(time.Time) error }
	if dl, ok := ln.(deadliner); ok {
		if err := dl.SetDeadline(deadline); err != nil {
			return nil, err
		}
	}

	conns := make([]net.Conn, 0, workers)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	ranks := splitRanks(spec.GPUs, workers)
	nodes := make([]wire.NodeSpec, 0, workers)
	for len(conns) < workers {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("worker: accept (have %d of %d workers): %w", len(conns), workers, err)
		}
		var join joinMsg
		if err := wire.ReadControl(conn, &join, controlTimeout); err != nil {
			conn.Close()
			return nil, err
		}
		conns = append(conns, conn)
		nodes = append(nodes, wire.NodeSpec{Addr: join.DataAddr, Ranks: ranks[len(nodes)]})
	}
	for i, conn := range conns {
		if err := wire.WriteControl(conn, startMsg{Spec: spec, Nodes: nodes, You: i}, controlTimeout); err != nil {
			return nil, fmt.Errorf("worker: start node %d: %w", i, err)
		}
	}

	var report *Report
	var failures []error
	for i, conn := range conns {
		var res resultMsg
		if err := wire.ReadControl(conn, &res, resultTimeout); err != nil {
			failures = append(failures, fmt.Errorf("worker %d: %w", i, err))
			continue
		}
		if res.Err != "" {
			failures = append(failures, fmt.Errorf("worker %d: %s", i, res.Err))
			continue
		}
		got := &Report{Losses: res.Losses, ModelSum: res.ModelSum}
		if report == nil {
			report = got
			continue
		}
		if err := sameReport(report, got); err != nil {
			failures = append(failures, fmt.Errorf("worker %d diverged from worker 0: %w", i, err))
		}
	}
	err := errors.Join(failures...)
	bye := byeMsg{OK: err == nil}
	if err != nil {
		bye.Err = err.Error()
	}
	for _, conn := range conns {
		// Best effort: a worker that already died cannot read its bye.
		_ = wire.WriteControl(conn, bye, controlTimeout) //dgclvet:ignore errwrap shutdown ack is best-effort; the joined error below carries the verdict
	}
	if err != nil {
		return nil, err
	}
	return report, nil
}

func sameReport(a, b *Report) error {
	if len(a.Losses) != len(b.Losses) {
		return fmt.Errorf("epoch counts differ: %d vs %d", len(a.Losses), len(b.Losses))
	}
	for e := range a.Losses {
		if a.Losses[e] != b.Losses[e] {
			return fmt.Errorf("epoch %d loss %v vs %v", e, a.Losses[e], b.Losses[e])
		}
	}
	if a.ModelSum != b.ModelSum {
		return fmt.Errorf("final model digests differ: %#x vs %#x", a.ModelSum, b.ModelSum)
	}
	return nil
}

// RunWorker hosts one process's share of a run: it binds the data listener
// on dataBind (the advertised peer address; "127.0.0.1:0" for single-machine
// runs, a routable host:port on real clusters), joins the coordinator at
// coordAddr, builds the system from the received spec, meshes with its
// peers, trains its ranks, and reports back.
func RunWorker(ctx context.Context, coordAddr, dataBind string) (*Report, error) {
	if dataBind == "" {
		dataBind = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", dataBind)
	if err != nil {
		return nil, fmt.Errorf("worker: data listener: %w", err)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", coordAddr)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("worker: coordinator %s: %w", coordAddr, err)
	}
	defer conn.Close()
	if err := wire.WriteControl(conn, joinMsg{DataAddr: ln.Addr().String()}, controlTimeout); err != nil {
		ln.Close()
		return nil, err
	}
	var start startMsg
	if err := wire.ReadControl(conn, &start, controlTimeout); err != nil {
		ln.Close()
		return nil, err
	}

	report, node, trainErr := runAssignment(ctx, ln, start)
	if node != nil {
		// Keep the mesh up until the coordinator acknowledges every
		// worker's result: no process tears its sockets down while a
		// slower peer still drains them.
		defer node.Close()
	}
	res := resultMsg{}
	if trainErr != nil {
		res.Err = trainErr.Error()
	} else {
		res.Losses, res.ModelSum = report.Losses, report.ModelSum
	}
	if err := wire.WriteControl(conn, res, controlTimeout); err != nil {
		return nil, errors.Join(trainErr, err)
	}
	var bye byeMsg
	if err := wire.ReadControl(conn, &bye, resultTimeout); err != nil {
		return nil, errors.Join(trainErr, err)
	}
	if trainErr != nil {
		return nil, trainErr
	}
	if !bye.OK {
		return nil, fmt.Errorf("worker: run failed: %s", bye.Err)
	}
	return report, nil
}

// runAssignment executes the received assignment: build, mesh, train. The
// returned node (when non-nil) is still connected — the caller closes it
// after the coordinator's bye, or immediately on error, where the fast
// teardown is the fail-stop signal peers map to DeviceDownError.
func runAssignment(ctx context.Context, ln net.Listener, start startMsg) (*Report, *wire.Node, error) {
	spec := start.Spec
	if start.You < 0 || start.You >= len(start.Nodes) {
		ln.Close()
		return nil, nil, fmt.Errorf("worker: node id %d outside %d-entry table", start.You, len(start.Nodes))
	}
	sys, model, features, targets, err := Build(spec)
	if err != nil {
		ln.Close()
		return nil, nil, err
	}
	node := wire.NewNode(wire.Config{
		ClusterID: clusterID(spec),
		PlanSum:   wire.PlanDigest(sys.Plan()),
	}, start.You, ln)
	if err := node.Connect(ctx, start.Nodes); err != nil {
		node.Close()
		return nil, nil, err
	}
	if err := sys.SetRunOptions(dgcl.RunOptions{Transport: node}); err != nil {
		return nil, node, err
	}
	if err := sys.SetWorkerMode(start.Nodes[start.You].Ranks, node); err != nil {
		return nil, node, err
	}
	rep, err := trainEpochs(ctx, sys, model, features, targets, spec)
	return rep, node, err
}

// clusterID names the run in the wire handshake so workers handed different
// specs refuse to mesh even before the plan digest check.
func clusterID(spec Spec) string {
	return fmt.Sprintf("dgcl-%s-%s-k%d-s%d", spec.Dataset, spec.Model, spec.GPUs, spec.Seed)
}
