package worker

import "time"

// Clock abstracts time for the membership layer — coordinator leases, worker
// heartbeats, and reconnect backoff — so the supervision suites run against
// an injected fake clock (internal/testutil.FakeClock satisfies this
// structurally) instead of wall-clock sleeps. Production uses the real clock.
type Clock interface {
	Now() time.Time
	// After returns a channel that delivers once after d, plus a stop
	// function reporting whether it prevented the firing (time.Timer
	// semantics). Callers must call stop when they abandon the channel.
	After(d time.Duration) (<-chan time.Time, func() bool)
}

// realClock is the production clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) After(d time.Duration) (<-chan time.Time, func() bool) {
	t := time.NewTimer(d)
	return t.C, t.Stop
}
