package worker

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// OS-process chaos battery: the acceptance scenarios of DESIGN.md §15 run
// against the real dgclworker binary. A SIGKILLed worker restarted with
// -rejoin must finish the run bit-identical to the uninterrupted baseline; a
// SIGTERMed worker must drain gracefully (checkpoint flushed, leave sent,
// exit 0) and a replacement must resume the run.

func buildWorkerBin(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dgclworker")
	build := exec.Command("go", "build", "-o", bin, "dgcl/cmd/dgclworker")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dgclworker: %v\n%s", err, out)
	}
	return bin
}

// superviseOS starts the supervised coordinator for an OS-process test and
// returns the join address, the event log, and a wait function.
func superviseOS(t *testing.T, ctx context.Context, spec Spec) (string, *eventLog, func() (*Report, error)) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	log := &eventLog{}
	var rep *Report
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		rep, runErr = Supervise(ctx, ln, SuperviseOptions{
			Workers:    2,
			Spec:       spec,
			Heartbeat:  100 * time.Millisecond,
			RejoinWait: 2 * time.Minute, // the test restarts the worker itself
			OnEvent:    log.add,
		})
	}()
	return ln.Addr().String(), log, func() (*Report, error) {
		<-done
		return rep, runErr
	}
}

func startWorkerProc(t *testing.T, ctx context.Context, bin, addr, stateDir string, out *strings.Builder, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"-connect", addr, "-state", stateDir}, extra...)
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// recoveredDuration parses the measured detection→resume time out of the
// "recovered" event's detail line.
func recoveredDuration(t *testing.T, ev MemberEvent) time.Duration {
	t.Helper()
	idx := strings.LastIndex(ev.Detail, ": ")
	if idx < 0 {
		t.Fatalf("recovered event carries no duration: %+v", ev)
	}
	d, err := time.ParseDuration(ev.Detail[idx+2:])
	if err != nil {
		t.Fatalf("recovered event duration %q: %v", ev.Detail[idx+2:], err)
	}
	return d
}

// recordRecovery upserts the measured recovery time into the "recovery" run
// of BENCH_runtime.json when DGCL_RECORD_RECOVERY is set (the `make rejoin`
// tier sets it; plain test runs do not touch the file). Other runs in the
// file are preserved byte for byte.
func recordRecovery(t *testing.T, d time.Duration) {
	t.Helper()
	if os.Getenv("DGCL_RECORD_RECOVERY") == "" {
		return
	}
	type result struct {
		Name     string  `json:"name"`
		Iters    int64   `json:"iters"`
		NsPerOp  float64 `json:"ns_op"`
		BPerOp   int64   `json:"b_op"`
		AllocsOp int64   `json:"allocs_op"`
	}
	type run struct {
		Label   string   `json:"label"`
		Results []result `json:"results"`
	}
	path := filepath.Join(repoRoot(t), "BENCH_runtime.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("recording recovery time: %v", err)
	}
	var doc struct {
		Note string            `json:"note,omitempty"`
		Runs []json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	raw, err := json.Marshal(run{Label: "recovery", Results: []result{{
		Name: "RecoveryKillRestartRejoin", Iters: 1, NsPerOp: float64(d.Nanoseconds()),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	replaced := false
	for i, rr := range doc.Runs {
		var probe struct {
			Label string `json:"label"`
		}
		if json.Unmarshal(rr, &probe) == nil && probe.Label == "recovery" {
			doc.Runs[i], replaced = raw, true
			break
		}
	}
	if !replaced {
		doc.Runs = append(doc.Runs, json.RawMessage(raw))
	}
	out, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
	t.Logf("recorded recovery time %v into %s", d, path)
}

// TestOSProcessKillRestartRejoinBitIdentical is the tentpole acceptance test:
// SIGKILL a real dgclworker mid-epoch, restart it with -rejoin, and the run
// finishes bit-identical to the uninterrupted single-process baseline. The
// measured detection→resume time lands in BENCH_runtime.json under the
// "recovery" label when DGCL_RECORD_RECOVERY is set.
func TestOSProcessKillRestartRejoinBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills dgclworker subprocesses")
	}
	bin := buildWorkerBin(t)
	spec := chaosSpec()
	local, err := TrainLocal(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	addr, log, wait := superviseOS(t, ctx, spec)

	dir0, dir1 := t.TempDir(), t.TempDir()
	var out0, out1, out2 strings.Builder
	p0 := startWorkerProc(t, ctx, bin, addr, dir0, &out0)
	p1 := startWorkerProc(t, ctx, bin, addr, dir1, &out1)

	// SIGKILL the victim only once it holds a committed checkpoint; with 6
	// epochs the run is still mid-flight.
	waitForCheckpoint(t, dir1, 2*time.Minute)
	if err := p1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := p1.Wait(); err == nil {
		t.Fatal("SIGKILLed worker exited cleanly")
	}
	log.awaitState(t, "dead", time.Minute)

	p2 := startWorkerProc(t, ctx, bin, addr, dir1, &out2, "-rejoin", "-dial-tries", "10")
	rep, err := wait()
	if err != nil {
		t.Fatalf("coordinator: %v\nevents: %+v", err, log.all())
	}
	if err := p0.Wait(); err != nil {
		t.Fatalf("surviving dgclworker: %v\n%s", err, out0.String())
	}
	if err := p2.Wait(); err != nil {
		t.Fatalf("rejoined dgclworker: %v\n%s", err, out2.String())
	}
	if err := sameReport(local, rep); err != nil {
		t.Fatalf("recovered run is not bit-identical to the local baseline: %v", err)
	}
	if !strings.Contains(out2.String(), "final model digest") {
		t.Fatalf("rejoined worker printed no digest:\n%s", out2.String())
	}
	log.awaitState(t, "rejoined", time.Second)
	rec := log.awaitState(t, "recovered", time.Second)
	recovery := recoveredDuration(t, rec)
	if recovery <= 0 {
		t.Fatalf("nonpositive recovery time %v", recovery)
	}
	t.Logf("detection to resumed progress: %v", recovery)
	recordRecovery(t, recovery)
}

// TestOSProcessSIGTERMDrainsGracefully: a SIGTERMed dgclworker finishes its
// in-flight epoch, flushes a checkpoint, announces its leave, prints
// "drained", and exits 0; a replacement started with -rejoin resumes the run
// to a bit-identical finish.
func TestOSProcessSIGTERMDrainsGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals dgclworker subprocesses")
	}
	bin := buildWorkerBin(t)
	spec := chaosSpec()
	local, err := TrainLocal(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	addr, log, wait := superviseOS(t, ctx, spec)

	dir0, dir1 := t.TempDir(), t.TempDir()
	var out0, out1, out2 strings.Builder
	p0 := startWorkerProc(t, ctx, bin, addr, dir0, &out0)
	p1 := startWorkerProc(t, ctx, bin, addr, dir1, &out1)

	waitForCheckpoint(t, dir1, 2*time.Minute)
	if err := p1.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p1.Wait(); err != nil {
		t.Fatalf("SIGTERMed worker did not exit 0: %v\n%s", err, out1.String())
	}
	if !strings.Contains(out1.String(), "drained") {
		t.Fatalf("drained worker never said so:\n%s", out1.String())
	}
	left := log.awaitState(t, "left", time.Minute)
	if left.Epoch < 1 && !strings.Contains(left.Detail, "drained") {
		t.Fatalf("unexpected leave event: %+v", left)
	}
	// The drain flushed durable state the replacement can catch up from.
	if matches, err := filepath.Glob(filepath.Join(dir1, "*", "gen-*.json")); err != nil || len(matches) == 0 {
		t.Fatalf("no checkpoint survived the drain under %s", dir1)
	}

	p2 := startWorkerProc(t, ctx, bin, addr, dir1, &out2, "-rejoin", "-dial-tries", "10")
	rep, err := wait()
	if err != nil {
		t.Fatalf("coordinator: %v\nevents: %+v", err, log.all())
	}
	if err := p0.Wait(); err != nil {
		t.Fatalf("surviving dgclworker: %v\n%s", err, out0.String())
	}
	if err := p2.Wait(); err != nil {
		t.Fatalf("rejoined dgclworker: %v\n%s", err, out2.String())
	}
	if err := sameReport(local, rep); err != nil {
		t.Fatalf("post-drain run is not bit-identical to the local baseline: %v", err)
	}
}
