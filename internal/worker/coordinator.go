package worker

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dgcl/internal/comm/wire"
	"dgcl/internal/runtime"
)

// The supervised coordinator (DESIGN.md §15). RunCoordinator's static
// join/start/result/bye protocol is now the degenerate fast path of a
// membership layer: every worker holds a lease renewed by heartbeats, missed
// deadlines accumulate HealthTracker strikes (stalled → suspect → dead), a
// connection loss is immediate fail-stop evidence, and a membership change —
// death, graceful leave, rejoin — rolls the run forward one generation
// instead of tearing it down. Within the rejoin grace window a restarted
// worker can reclaim its dead slot and every member catches up from the
// newest checkpoint epoch they all hold; after the window the coordinator
// degrades the dead members' ranks onto the survivors over live sockets
// (System.Degrade in every surviving process).

// SuperviseOptions configures the supervised coordinator. The zero value of
// every field selects a default.
type SuperviseOptions struct {
	// Workers is the number of worker processes the run spans (required).
	Workers int
	// Spec describes the run (required).
	Spec Spec
	// Heartbeat is the renewal interval workers are told to beat at.
	// Default 500ms.
	Heartbeat time.Duration
	// LeaseTimeout is the per-renewal deadline; each expiry is one
	// deadline-class strike. Default 4×Heartbeat.
	LeaseTimeout time.Duration
	// DownAfter is the consecutive-strike threshold before a silent worker
	// is judged dead (0 = runtime.DefaultDownAfter). Explicit evidence (a
	// dropped control connection) skips the strikes.
	DownAfter int
	// RejoinWait is the grace window after a death during which a restarted
	// worker may reclaim its slot before the coordinator degrades onto the
	// survivors. Default 15s.
	RejoinWait time.Duration
	// PrepareTimeout bounds each member's system build per generation.
	// Default 2m.
	PrepareTimeout time.Duration
	// MaxChanges bounds membership generations (churn budget). Default
	// 2×GPUs.
	MaxChanges int
	// Clock injects time for lease arithmetic and wakeups (tests use
	// testutil.FakeClock). Default: the real clock.
	Clock Clock
	// OnEvent, when non-nil, observes every membership transition.
	OnEvent func(MemberEvent)
}

// MemberEvent is one observed membership transition.
type MemberEvent struct {
	// Gen is the membership generation the event belongs to.
	Gen uint64
	// Member is the stable slot id of the worker.
	Member int
	// State names the transition: joined, live, suspect, dead, left,
	// rejoined, barrier, done, fenced, degraded.
	State string
	// Epoch is the member's completed-epoch count at the event.
	Epoch int
	// When is the coordinator clock's time of the event.
	When time.Time
	// Detail carries free-form context (blame lists, reasons).
	Detail string
}

// Membership phases of one slot.
type memberPhase int

const (
	phJoined    memberPhase = iota // admitted (or rejoined), awaiting prepare
	phPreparing                    // prepare sent, awaiting ready
	phRunning                      // mesh sent, training under lease
	phWaiting                      // faulted at an epoch barrier, awaiting next prepare
	phDone                         // result received, awaiting bye
	phDead                         // lease verdict or connection loss; slot rejoinable
	phLeft                         // graceful leave; slot rejoinable
	phRemoved                      // degraded out of the run for good
)

// member is one worker slot. The slot id is stable across rejoin (the
// restarted process reclaims it); the per-generation node id is the slot's
// position among the generation's active members.
type member struct {
	slot    int
	conn    net.Conn
	cc      *ctrlConn
	ranks   []int // external device ids this slot hosts
	phase   memberPhase
	suspect bool
	addr    string // data listener for the current generation
	ckpts   []int  // intact checkpoint epochs from the latest ready
	epoch   int    // completed epochs
	sum     uint64
	sumOK   bool
}

// Event-loop events.
const (
	evJoin = iota
	evMsg
	evGone
	evTick
)

type supEvent struct {
	kind int
	conn net.Conn
	msg  ctrlMsg
	slot int
	err  error
}

type lossRec struct {
	gen  uint64
	loss float64
}

type supervisor struct {
	opts  SuperviseOptions
	spec  Spec
	clock Clock
	runID string
	ln    net.Listener

	events chan supEvent
	done   chan struct{}
	wg     sync.WaitGroup

	members  []*member
	gen      uint64
	planSum  uint64
	havePlan bool
	down     []int // cumulative degraded-out external devices, ascending
	degraded bool
	leases   *leases

	lossAt map[int]lossRec

	// Recovery timing: detection of the current incident and the generation
	// it happened in; resolved by the first progress beat of a later
	// generation.
	measuring  bool
	detectAt   time.Time
	detectGen  uint64
	recoveries []time.Duration

	failure error
}

func (o SuperviseOptions) withDefaults() SuperviseOptions {
	if o.Heartbeat <= 0 {
		o.Heartbeat = 500 * time.Millisecond
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 4 * o.Heartbeat
	}
	if o.DownAfter <= 0 {
		o.DownAfter = runtime.DefaultDownAfter
	}
	if o.RejoinWait <= 0 {
		o.RejoinWait = 15 * time.Second
	}
	if o.PrepareTimeout <= 0 {
		o.PrepareTimeout = 2 * time.Minute
	}
	if o.MaxChanges <= 0 {
		o.MaxChanges = 2 * o.Spec.GPUs
	}
	if o.Clock == nil {
		o.Clock = realClock{}
	}
	return o
}

// RunCoordinator serves one multi-process run on a pre-opened listener with
// default supervision. Kept as the compatibility entry point; Supervise is
// the full surface.
func RunCoordinator(ctx context.Context, ln net.Listener, workers int, spec Spec) (*Report, error) {
	return Supervise(ctx, ln, SuperviseOptions{Workers: workers, Spec: spec})
}

// Supervise serves one supervised multi-process run: it admits Workers
// joins, then drives generations of prepare → ready → mesh → train until
// every member reports, recovering from member death by rejoin (bit-identical
// catch-up from the common checkpoint epoch) or, after the grace window, by
// degrading the dead ranks onto the survivors. The coordinator is pure
// control plane — no tensor crosses it.
func Supervise(ctx context.Context, ln net.Listener, opts SuperviseOptions) (*Report, error) {
	opts = opts.withDefaults()
	spec := opts.Spec.withDefaults()
	opts.Spec = spec
	if opts.Workers < 1 {
		return nil, fmt.Errorf("worker: need at least 1 worker, got %d", opts.Workers)
	}
	if opts.Workers > spec.GPUs {
		return nil, fmt.Errorf("worker: %d workers for %d GPUs: some would host no rank", opts.Workers, spec.GPUs)
	}
	s := &supervisor{
		opts:   opts,
		spec:   spec,
		clock:  opts.Clock,
		runID:  fmt.Sprintf("%s-%x", clusterID(spec), opts.Clock.Now().UnixNano()),
		ln:     ln,
		events: make(chan supEvent, 256),
		done:   make(chan struct{}),
		lossAt: make(map[int]lossRec),
	}
	defer s.shutdown()
	s.wg.Add(1)
	go s.acceptLoop(ctx)

	rep, err := s.run(ctx)
	if err != nil {
		// Best effort: members blocked on their control reads learn the
		// verdict instead of diagnosing a bare connection loss.
		bye := ctrlMsg{T: mtBye, Gen: s.gen, Err: err.Error()}
		for _, m := range s.activeMembers() {
			_ = m.cc.send(bye) //dgclvet:ignore errwrap shutdown notice is best-effort; the returned error carries the verdict
		}
		return nil, err
	}
	return rep, nil
}

func (s *supervisor) run(ctx context.Context) (*Report, error) {
	if err := s.gather(ctx); err != nil {
		return nil, err
	}
	for {
		if int(s.gen) > s.opts.MaxChanges {
			return nil, fmt.Errorf("worker: membership churn budget (%d generations) exhausted", s.opts.MaxChanges)
		}
		if err := s.startGeneration(ctx); err != nil {
			return nil, err
		}
		complete, err := s.runGeneration(ctx)
		if err != nil {
			return nil, err
		}
		if complete {
			return s.finish()
		}
	}
}

// shutdown tears the control plane down: the listener, every member
// connection, and (via done) every blocked producer goroutine, then waits
// for them so callers can goroutine-leak-check immediately after.
func (s *supervisor) shutdown() {
	close(s.done)
	s.ln.Close()
	for _, m := range s.members {
		m.conn.Close()
	}
	s.wg.Wait()
}

// acceptLoop admits control connections for the life of the run — joins
// during gather, rejoins during recovery — under a rolling accept deadline so
// shutdown and context cancellation are honored promptly.
func (s *supervisor) acceptLoop(ctx context.Context) {
	defer s.wg.Done()
	type deadliner interface{ SetDeadline(time.Time) error }
	dl, _ := s.ln.(deadliner)
	for {
		select {
		case <-s.done:
			return
		case <-ctx.Done():
			return
		default:
		}
		if dl != nil {
			if err := dl.SetDeadline(time.Now().Add(time.Second)); err != nil {
				return
			}
		}
		conn, err := s.ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return // listener closed
		}
		s.wg.Add(1)
		go s.handleJoin(conn)
	}
}

// handleJoin reads one join message off a fresh connection and hands it to
// the event loop (which owns all admission decisions).
func (s *supervisor) handleJoin(conn net.Conn) {
	defer s.wg.Done()
	msg, err := readCtrl(conn, controlTimeout)
	if err != nil || msg.T != mtJoin {
		conn.Close()
		return
	}
	select {
	case s.events <- supEvent{kind: evJoin, conn: conn, msg: msg}:
	case <-s.done:
		conn.Close()
	}
}

// reader pumps one member connection into the event loop until it dies.
func (s *supervisor) reader(slot int, conn net.Conn) {
	defer s.wg.Done()
	for {
		msg, err := readCtrl(conn, resultTimeout)
		if err != nil {
			select {
			case s.events <- supEvent{kind: evGone, slot: slot, conn: conn, err: err}:
			case <-s.done:
			}
			return
		}
		select {
		case s.events <- supEvent{kind: evMsg, slot: slot, conn: conn, msg: msg}:
		case <-s.done:
			conn.Close()
			return
		}
	}
}

// next blocks for the next event, waking at the given absolute time (zero =
// no wakeup) on the injected clock.
func (s *supervisor) next(ctx context.Context, wake time.Time) (supEvent, error) {
	var timer <-chan time.Time
	var stop func() bool
	if !wake.IsZero() {
		d := wake.Sub(s.clock.Now())
		if d < 0 {
			d = 0
		}
		timer, stop = s.clock.After(d)
	}
	select {
	case ev := <-s.events:
		if stop != nil {
			stop()
		}
		return ev, nil
	case <-timer:
		return supEvent{kind: evTick}, nil
	case <-ctx.Done():
		if stop != nil {
			stop()
		}
		return supEvent{}, ctx.Err()
	}
}

func (s *supervisor) event(slot int, state string, epoch int, detail string) {
	if s.opts.OnEvent == nil {
		return
	}
	s.opts.OnEvent(MemberEvent{Gen: s.gen, Member: slot, State: state, Epoch: epoch, When: s.clock.Now(), Detail: detail})
}

// reject answers a join with a typed rejection and closes the connection.
func (s *supervisor) reject(conn net.Conn, code, detail string) {
	_ = wire.WriteControl(conn, ctrlMsg{T: mtReject, Gen: s.gen, Code: code, Err: detail}, controlTimeout) //dgclvet:ignore errwrap rejection is best-effort; the connection closes either way
	conn.Close()
}

// gather admits the initial membership: Workers fresh joins.
func (s *supervisor) gather(ctx context.Context) error {
	ranks := splitRanks(s.spec.GPUs, s.opts.Workers)
	for len(s.members) < s.opts.Workers {
		ev, err := s.next(ctx, time.Time{})
		if err != nil {
			return err
		}
		switch ev.kind {
		case evJoin:
			msg := ev.msg
			switch {
			case msg.Proto != ProtoVersion:
				s.reject(ev.conn, CodeProtoMismatch, fmt.Sprintf("coordinator speaks protocol %d, worker sent %d", ProtoVersion, msg.Proto))
			case msg.Rejoin:
				s.reject(ev.conn, CodeRunMismatch, fmt.Sprintf("rejoin for run %q, but run %q has not started", msg.RunID, s.runID))
			default:
				slot := len(s.members)
				m := &member{slot: slot, conn: ev.conn, cc: &ctrlConn{conn: ev.conn}, ranks: ranks[slot], phase: phJoined}
				s.members = append(s.members, m)
				s.event(slot, "joined", 0, "")
				s.wg.Add(1)
				go s.reader(slot, ev.conn)
			}
		case evGone:
			if m := s.memberFor(ev.slot, ev.conn); m != nil {
				return fmt.Errorf("worker: member %d lost before start: %w", ev.slot, ev.err)
			}
		case evMsg:
			// Pre-start chatter: nothing is expected before prepare; drop it.
		}
	}
	return nil
}

// activeMembers returns the slots participating in the current (or next)
// generation — joined, rejoined, at a barrier, or done — ascending by slot.
func (s *supervisor) activeMembers() []*member {
	var out []*member
	for _, m := range s.members {
		switch m.phase {
		case phJoined, phPreparing, phRunning, phWaiting, phDone:
			out = append(out, m)
		}
	}
	return out
}

// rejoinableSlots returns the dead/left slots a restarted worker may reclaim.
func (s *supervisor) rejoinableSlots() []*member {
	var out []*member
	for _, m := range s.members {
		if m.phase == phDead || m.phase == phLeft {
			out = append(out, m)
		}
	}
	return out
}

func repDev(m *member) int {
	if len(m.ranks) > 0 {
		return m.ranks[0]
	}
	return m.slot
}

// startGeneration rolls the membership forward one generation: prepare every
// active member, collect their readies (fresh data listener addresses, plan
// digests, intact checkpoint epochs), negotiate the common resume epoch, and
// mesh them.
func (s *supervisor) startGeneration(ctx context.Context) error {
	s.gen++
	// Plan agreement is per generation: a degrade changes the plan for
	// everyone, legitimately. Each generation's first ready re-seeds the
	// digest the rest must match.
	s.havePlan = false
	active := s.activeMembers()
	if len(active) == 0 {
		return errors.New("worker: no members remain")
	}
	for i, m := range active {
		m.phase = phPreparing
		m.suspect = false
		m.addr, m.ckpts = "", nil
		err := m.cc.send(ctrlMsg{
			T: mtPrepare, Gen: s.gen, RunID: s.runID, Spec: &s.spec,
			You: i, Ranks: m.ranks, Down: s.down, Beat: int64(s.opts.Heartbeat),
		})
		if err != nil {
			return fmt.Errorf("worker: prepare member %d: %w", m.slot, err)
		}
	}
	deadline := s.clock.Now().Add(s.opts.PrepareTimeout)
	for {
		pending := 0
		for _, m := range active {
			if m.phase == phPreparing && m.addr == "" {
				pending++
			}
		}
		if pending == 0 {
			break
		}
		ev, err := s.next(ctx, deadline)
		if err != nil {
			return err
		}
		switch ev.kind {
		case evTick:
			if !s.clock.Now().Before(deadline) {
				return fmt.Errorf("worker: generation %d: %d members never sent ready", s.gen, pending)
			}
		case evJoin:
			// The recovery window closed when this generation started.
			s.reject(ev.conn, CodeFenced, fmt.Sprintf("generation %d already forming", s.gen))
		case evGone:
			if m := s.memberFor(ev.slot, ev.conn); m != nil {
				return fmt.Errorf("worker: member %d lost during prepare: %w", m.slot, ev.err)
			}
		case evMsg:
			if m := s.memberFor(ev.slot, ev.conn); m != nil {
				s.handleMemberMsg(m, ev.msg)
			}
		}
		if s.failure != nil {
			return s.failure
		}
	}
	resume := commonResume(active)
	nodes := make([]wire.NodeSpec, len(active))
	for i, m := range active {
		nodes[i] = wire.NodeSpec{Addr: m.addr, Ranks: m.ranks}
	}
	s.leases = newLeases(s.clock, s.opts.LeaseTimeout, s.opts.DownAfter)
	for _, m := range active {
		if err := m.cc.send(ctrlMsg{T: mtMesh, Gen: s.gen, Nodes: nodes, Start: resume}); err != nil {
			return fmt.Errorf("worker: mesh member %d: %w", m.slot, err)
		}
		m.phase = phRunning
		s.leases.track(m.slot, repDev(m))
		s.event(m.slot, "live", m.epoch, fmt.Sprintf("resume epoch %d", resume))
	}
	return nil
}

// commonResume is the newest checkpoint epoch every active member holds
// intact (0 — a fresh start — is always common).
func commonResume(active []*member) int {
	counts := make(map[int]int)
	for _, m := range active {
		for _, e := range m.ckpts {
			counts[e]++
		}
	}
	resume := 0
	epochs := make([]int, 0, len(counts))
	for e := range counts {
		epochs = append(epochs, e)
	}
	sort.Ints(epochs)
	for _, e := range epochs {
		if counts[e] == len(active) && e > resume {
			resume = e
		}
	}
	return resume
}

// runGeneration drives one generation to a verdict: true when every active
// member reported a result (the run is complete), false when a membership
// change was assembled (rejoin admitted, stall cleared, or degrade applied)
// and the next generation should start.
func (s *supervisor) runGeneration(ctx context.Context) (bool, error) {
	var rejoinBy time.Time
	for {
		if s.failure != nil {
			return false, s.failure
		}
		active := s.activeMembers()
		if len(active) == 0 {
			return false, errors.New("worker: every member was lost")
		}
		allDone, barrier := true, true
		for _, m := range active {
			if m.phase != phDone {
				allDone = false
			}
			if m.phase == phRunning || m.phase == phPreparing {
				barrier = false
			}
		}
		if allDone {
			return true, nil
		}
		deadSlots := s.rejoinableSlots()
		if len(deadSlots) > 0 && rejoinBy.IsZero() {
			rejoinBy = s.clock.Now().Add(s.opts.RejoinWait)
		}
		if barrier {
			if len(deadSlots) == 0 {
				// Rejoins are admitted (or the faults were spurious — a
				// stall that cleared): rerun with the full membership.
				return false, nil
			}
			if !s.clock.Now().Before(rejoinBy) {
				s.applyDegrade(deadSlots)
				return false, nil
			}
		}
		wake := rejoinBy
		if s.leases != nil {
			if d, ok := s.leases.nextDeadline(); ok && (wake.IsZero() || d.Before(wake)) {
				wake = d
			}
		}
		ev, err := s.next(ctx, wake)
		if err != nil {
			return false, err
		}
		switch ev.kind {
		case evTick:
			s.checkLeases()
		case evJoin:
			s.admitRejoin(ev.conn, ev.msg)
		case evGone:
			if m := s.memberFor(ev.slot, ev.conn); m != nil {
				s.leases.evidence(m.slot)
				s.noteDeparture(m, phDead, "dead", fmt.Sprintf("connection lost: %v", ev.err))
			}
		case evMsg:
			if m := s.memberFor(ev.slot, ev.conn); m != nil {
				s.handleMemberMsg(m, ev.msg)
			}
		}
	}
}

// memberFor resolves an event's slot, discarding events from a previous
// incarnation's connection (a rejoined slot has a fresh conn; the old
// reader's trailing evGone must not kill the new member).
func (s *supervisor) memberFor(slot int, conn net.Conn) *member {
	if slot < 0 || slot >= len(s.members) {
		return nil
	}
	m := s.members[slot]
	if m.conn != conn {
		return nil
	}
	switch m.phase {
	case phDead, phLeft, phRemoved:
		return nil
	}
	return m
}

// checkLeases expires overdue leases: strikes mark members suspect, verdicts
// mark them dead.
func (s *supervisor) checkLeases() {
	if s.leases == nil {
		return
	}
	suspects, dead := s.leases.check()
	for _, slot := range suspects {
		m := s.members[slot]
		if m.phase == phRunning && !m.suspect {
			m.suspect = true
			s.event(slot, "suspect", m.epoch, fmt.Sprintf("lease expired (strike %d)", s.leases.health.Strikes(repDev(m))))
		}
	}
	for _, slot := range dead {
		m := s.members[slot]
		if m.phase == phRunning {
			s.noteDeparture(m, phDead, "dead", "lease strikes reached verdict")
		}
	}
}

// noteDeparture records a member leaving the generation (death or drain) and
// starts the recovery stopwatch on the first departure of an incident.
func (s *supervisor) noteDeparture(m *member, phase memberPhase, state, detail string) {
	m.phase = phase
	m.suspect = false
	if s.leases != nil {
		s.leases.drop(m.slot)
	}
	if !s.measuring {
		s.measuring = true
		s.detectAt = s.clock.Now()
		s.detectGen = s.gen
	}
	s.event(m.slot, state, m.epoch, detail)
}

// admitRejoin validates a mid-run join: protocol version, run identity, plan
// digest, and an open slot — each failure a distinct typed rejection. A
// degraded run fences rejoins out entirely (the dead ranks are gone; elastic
// re-expansion is ROADMAP item 5).
func (s *supervisor) admitRejoin(conn net.Conn, msg ctrlMsg) {
	switch {
	case msg.Proto != ProtoVersion:
		s.reject(conn, CodeProtoMismatch, fmt.Sprintf("coordinator speaks protocol %d, worker sent %d", ProtoVersion, msg.Proto))
		return
	case !msg.Rejoin:
		s.reject(conn, CodeRunFull, fmt.Sprintf("run %q already has %d members", s.runID, s.opts.Workers))
		return
	case msg.RunID != s.runID:
		s.reject(conn, CodeRunMismatch, fmt.Sprintf("rejoin presents run %q, this is run %q", msg.RunID, s.runID))
		return
	case s.degraded:
		s.reject(conn, CodeFenced, "membership already degraded past your generation")
		return
	case s.havePlan && msg.Plan != s.planSum:
		s.reject(conn, CodePlanMismatch, fmt.Sprintf("rejoin presents plan %#x, members agreed on %#x", msg.Plan, s.planSum))
		return
	}
	slots := s.rejoinableSlots()
	if len(slots) == 0 {
		s.reject(conn, CodeFenced, "no slot awaits a rejoin")
		return
	}
	m := slots[0]
	m.conn.Close()
	m.conn, m.cc = conn, &ctrlConn{conn: conn}
	m.phase = phJoined
	m.suspect = false
	s.event(m.slot, "rejoined", m.epoch, "")
	s.wg.Add(1)
	go s.reader(m.slot, conn)
}

// applyDegrade removes the still-dead slots for good: their ranks join the
// cumulative down list the next prepare carries, and every surviving process
// will Degrade onto the remaining devices.
func (s *supervisor) applyDegrade(deadSlots []*member) {
	for _, m := range deadSlots {
		m.phase = phRemoved
		s.down = append(s.down, m.ranks...)
		s.event(m.slot, "degraded", m.epoch, fmt.Sprintf("ranks %v reassigned to survivors", m.ranks))
	}
	sort.Ints(s.down)
	s.degraded = true
}

// handleMemberMsg applies one generation-fenced member message.
func (s *supervisor) handleMemberMsg(m *member, msg ctrlMsg) {
	if msg.Gen != s.gen {
		s.event(m.slot, "fenced", msg.Epoch, fmt.Sprintf("%s from generation %d ignored in generation %d", msg.T, msg.Gen, s.gen))
		return
	}
	if s.leases != nil {
		s.leases.renew(m.slot)
	}
	if m.suspect {
		m.suspect = false
		s.event(m.slot, "live", m.epoch, "lease renewed after suspicion")
	}
	switch msg.T {
	case mtReady:
		if m.phase != phPreparing {
			return
		}
		if !s.havePlan {
			s.planSum, s.havePlan = msg.Plan, true
		} else if msg.Plan != s.planSum {
			s.failure = fmt.Errorf("worker: member %d compiled plan %#x, members agreed on %#x", m.slot, msg.Plan, s.planSum)
			return
		}
		m.addr, m.ckpts = msg.Addr, msg.Ckpts
	case mtBeat:
		if !msg.Progress {
			return
		}
		if err := s.recordLoss(msg.Epoch-1, msg.Loss); err != nil {
			s.failure = err
			return
		}
		m.epoch = msg.Epoch
		if s.measuring && s.gen > s.detectGen {
			s.measuring = false
			s.recoveries = append(s.recoveries, s.clock.Now().Sub(s.detectAt))
			s.event(m.slot, "recovered", m.epoch, fmt.Sprintf("detection to resumed progress: %v", s.recoveries[len(s.recoveries)-1]))
		}
	case mtFault:
		if s.leases != nil {
			s.leases.drop(m.slot) // at the barrier a member is quiet by design
		}
		m.phase = phWaiting
		s.event(m.slot, "barrier", msg.Epoch, fmt.Sprintf("fault at epoch %d, blames %v", msg.Epoch, msg.Blame))
	case mtLeave:
		s.noteDeparture(m, phLeft, "left", fmt.Sprintf("drained after epoch %d", msg.Epoch))
	case mtResult:
		if s.leases != nil {
			s.leases.drop(m.slot)
		}
		if msg.Err != "" {
			s.failure = fmt.Errorf("worker: member %d failed: %s", m.slot, msg.Err)
			return
		}
		m.phase = phDone
		m.sum, m.sumOK = msg.Sum, true
		m.epoch = msg.Epoch
		s.event(m.slot, "done", msg.Epoch, "")
	}
}

// recordLoss cross-checks one epoch's loss across members and generations:
// two members of the same generation must agree bit for bit (rank-ordered
// float64 sums are deterministic); a later generation overwrites — a rerun
// after rollback, or legitimately different math after a degrade.
func (s *supervisor) recordLoss(epoch int, loss float64) error {
	if epoch < 0 || epoch >= s.spec.Epochs {
		return fmt.Errorf("worker: progress for epoch %d outside [0,%d)", epoch, s.spec.Epochs)
	}
	rec, ok := s.lossAt[epoch]
	if ok && rec.gen == s.gen && rec.loss != loss {
		return fmt.Errorf("worker: epoch %d loss diverged within generation %d: %v vs %v", epoch, s.gen, rec.loss, loss)
	}
	if !ok || s.gen >= rec.gen {
		s.lossAt[epoch] = lossRec{gen: s.gen, loss: loss}
	}
	return nil
}

// finish verifies the members converged and assembles the run report: model
// digests from the final generation's results, per-epoch losses from the
// authoritative progress-beat record.
func (s *supervisor) finish() (*Report, error) {
	active := s.activeMembers()
	var sum uint64
	have := false
	for _, m := range active {
		if !m.sumOK {
			continue
		}
		if !have {
			sum, have = m.sum, true
			continue
		}
		if m.sum != sum {
			return nil, fmt.Errorf("worker: final model digests diverged: %#x vs %#x (member %d)", sum, m.sum, m.slot)
		}
	}
	if !have {
		return nil, errors.New("worker: run finished with no result")
	}
	losses := make([]float64, s.spec.Epochs)
	for e := range losses {
		rec, ok := s.lossAt[e]
		if !ok {
			return nil, fmt.Errorf("worker: epoch %d loss was never reported", e)
		}
		losses[e] = rec.loss
	}
	bye := ctrlMsg{T: mtBye, Gen: s.gen, OK: true, Losses: losses, Sum: sum}
	for _, m := range active {
		// Best effort: a worker that already died cannot read its bye.
		_ = m.cc.send(bye) //dgclvet:ignore errwrap shutdown ack is best-effort; the run already has its verified report
	}
	return &Report{Losses: losses, ModelSum: sum}, nil
}

// RecoveryTimes returns the measured detection→resume durations of a
// supervisor run. Exposed through Supervise's OnEvent "recovered" records;
// this accessor exists for the chaos bench recorder.
func (s *supervisor) RecoveryTimes() []time.Duration { return s.recoveries }
