package worker

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dgcl/internal/testutil"
)

// Membership battery: kill a worker mid-run and the supervised coordinator
// must recover — bit-identically when the worker restarts and rejoins from
// the common checkpoint epoch, and within the degraded-loss band when nobody
// comes back. All in-process, over real loopback sockets.

// eventLog collects MemberEvents from the supervisor's OnEvent callback so
// test goroutines can await transitions.
type eventLog struct {
	mu  sync.Mutex
	evs []MemberEvent
}

func (l *eventLog) add(ev MemberEvent) {
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

func (l *eventLog) all() []MemberEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]MemberEvent(nil), l.evs...)
}

// awaitState blocks until any member reaches state (worker goroutines race
// to join, so the victim's slot id is not deterministic).
func (l *eventLog) awaitState(t *testing.T, state string, timeout time.Duration) MemberEvent {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		l.mu.Lock()
		for _, ev := range l.evs {
			if ev.State == state {
				l.mu.Unlock()
				return ev
			}
		}
		l.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no %q event within %v; saw %+v", state, timeout, l.all())
	return MemberEvent{}
}

// waitForCheckpoint blocks until a committed checkpoint manifest appears
// under the worker's state dir (the kill gate: the victim dies only after it
// holds durable state to catch up from).
func waitForCheckpoint(t *testing.T, stateDir string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	pattern := filepath.Join(stateDir, "*", "gen-*.json")
	for time.Now().Before(deadline) {
		if matches, err := filepath.Glob(pattern); err == nil && len(matches) > 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no checkpoint appeared under %s within %v", stateDir, timeout)
}

// chaosSpec widens the epoch count so a mid-run kill lands with work left on
// both sides of it (epochs are milliseconds at the test scale; the extra
// epochs buy scheduling slack, not wall-clock pain).
func chaosSpec() Spec {
	spec := testSpec()
	spec.Epochs = 10
	return spec
}

// TestMembershipKillRestartRejoinBitIdentical is the tentpole acceptance
// test, in-process: worker 1 is killed mid-epoch (context cancel tears its
// sockets down exactly like a process death), the coordinator detects the
// loss, a fresh worker rejoins with the persisted identity, every member
// catches up from the newest common checkpoint epoch, and the run finishes
// bit-identical to the uninterrupted single-process baseline.
func TestMembershipKillRestartRejoinBitIdentical(t *testing.T) {
	spec := chaosSpec()
	local, err := TrainLocal(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	before := testutil.Goroutines()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	log := &eventLog{}
	var coordRep *Report
	var coordErr error
	coordDone := make(chan struct{})
	go func() {
		defer close(coordDone)
		coordRep, coordErr = Supervise(ctx, ln, SuperviseOptions{
			Workers:    2,
			Spec:       spec,
			Heartbeat:  50 * time.Millisecond,
			RejoinWait: 60 * time.Second,
			OnEvent:    log.add,
		})
	}()

	dir0, dir1 := t.TempDir(), t.TempDir()
	var w0Rep *Report
	w0Done := make(chan error, 1)
	go func() {
		var err error
		w0Rep, err = Run(ctx, WorkerOptions{Coordinator: addr, StateDir: dir0})
		w0Done <- err
	}()
	victimCtx, kill := context.WithCancel(ctx)
	defer kill()
	victimDone := make(chan error, 1)
	go func() {
		_, err := Run(victimCtx, WorkerOptions{Coordinator: addr, StateDir: dir1})
		victimDone <- err
	}()

	// Kill only once the victim holds a committed checkpoint, so the rejoin
	// has state to catch up from; with 6 epochs the run is still mid-flight.
	waitForCheckpoint(t, dir1, time.Minute)
	kill()
	if err := <-victimDone; err == nil {
		t.Fatal("killed worker reported success")
	}
	log.awaitState(t, "dead", 30*time.Second)

	var rejoinRep *Report
	rejoinDone := make(chan error, 1)
	go func() {
		var err error
		rejoinRep, err = Run(ctx, WorkerOptions{
			Coordinator: addr,
			StateDir:    dir1,
			Rejoin:      true,
			Backoff:     BackoffConfig{Initial: 20 * time.Millisecond, Tries: 10},
		})
		rejoinDone <- err
	}()

	<-coordDone
	if coordErr != nil {
		t.Fatalf("coordinator: %v\nevents: %+v", coordErr, log.all())
	}
	if err := <-w0Done; err != nil {
		t.Fatalf("survivor worker: %v", err)
	}
	if err := <-rejoinDone; err != nil {
		t.Fatalf("rejoined worker: %v", err)
	}
	if err := sameReport(local, coordRep); err != nil {
		t.Fatalf("recovered run is not bit-identical to the local baseline: %v", err)
	}
	if err := sameReport(local, w0Rep); err != nil {
		t.Fatalf("survivor's report diverged: %v", err)
	}
	if err := sameReport(local, rejoinRep); err != nil {
		t.Fatalf("rejoined worker's report diverged: %v", err)
	}

	// The recovery had to happen through the membership machine: the slot was
	// reclaimed, training resumed in a later generation, and the catch-up
	// started from a checkpointed epoch, not from scratch.
	log.awaitState(t, "rejoined", time.Second)
	log.awaitState(t, "recovered", time.Second)
	resumed := false
	for _, ev := range log.all() {
		var epoch int
		if ev.State == "live" && ev.Gen >= 2 {
			if _, err := fmt.Sscanf(ev.Detail, "resume epoch %d", &epoch); err == nil && epoch >= 1 {
				resumed = true
			}
		}
	}
	if !resumed {
		t.Fatalf("no post-rejoin generation resumed from a checkpoint epoch >= 1; events: %+v", log.all())
	}
	if !testutil.GoroutinesSettleTo(before, 2*time.Second) {
		t.Fatalf("kill/rejoin run leaked goroutines: %d before, %d after", before, testutil.Goroutines())
	}
}

// TestMembershipDeadWorkerDegradesOntoSurvivors: when nobody rejoins within
// the grace window, the coordinator degrades the dead worker's ranks onto the
// survivors over the live control sockets and the run completes with every
// epoch accounted for, its final loss within the same 2% band the in-process
// degrade path guarantees.
func TestMembershipDeadWorkerDegradesOntoSurvivors(t *testing.T) {
	spec := chaosSpec()
	local, err := TrainLocal(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	log := &eventLog{}
	var coordRep *Report
	var coordErr error
	coordDone := make(chan struct{})
	go func() {
		defer close(coordDone)
		coordRep, coordErr = Supervise(ctx, ln, SuperviseOptions{
			Workers:    2,
			Spec:       spec,
			Heartbeat:  50 * time.Millisecond,
			RejoinWait: 200 * time.Millisecond, // nobody is coming back
			OnEvent:    log.add,
		})
	}()

	dir0, dir1 := t.TempDir(), t.TempDir()
	var w0Rep *Report
	w0Done := make(chan error, 1)
	go func() {
		var err error
		w0Rep, err = Run(ctx, WorkerOptions{Coordinator: addr, StateDir: dir0})
		w0Done <- err
	}()
	victimCtx, kill := context.WithCancel(ctx)
	defer kill()
	victimDone := make(chan error, 1)
	go func() {
		_, err := Run(victimCtx, WorkerOptions{Coordinator: addr, StateDir: dir1})
		victimDone <- err
	}()

	waitForCheckpoint(t, dir1, time.Minute)
	kill()
	<-victimDone

	<-coordDone
	if coordErr != nil {
		t.Fatalf("coordinator: %v\nevents: %+v", coordErr, log.all())
	}
	if err := <-w0Done; err != nil {
		t.Fatalf("survivor worker: %v", err)
	}
	if err := sameReport(coordRep, w0Rep); err != nil {
		t.Fatalf("survivor's report differs from the coordinator's: %v", err)
	}
	log.awaitState(t, "dead", time.Second)
	log.awaitState(t, "degraded", time.Second)
	if len(coordRep.Losses) != spec.Epochs {
		t.Fatalf("degraded run reported %d epochs, want %d", len(coordRep.Losses), spec.Epochs)
	}
	got, want := coordRep.Losses[spec.Epochs-1], local.Losses[spec.Epochs-1]
	if math.Abs(got-want)/math.Abs(want) > 0.02 {
		t.Fatalf("degraded final loss %v strays more than 2%% from the full run's %v", got, want)
	}
}

// TestMembershipDrainLeaveRejoinResumes: a drained worker (the SIGTERM path,
// driven here through the Drain channel) leaves gracefully — in-flight epoch
// finished, checkpoint flushed, leave sent — and a restarted worker resumes
// the run to a bit-identical finish.
func TestMembershipDrainLeaveRejoinResumes(t *testing.T) {
	spec := chaosSpec()
	local, err := TrainLocal(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	log := &eventLog{}
	var coordRep *Report
	var coordErr error
	coordDone := make(chan struct{})
	go func() {
		defer close(coordDone)
		coordRep, coordErr = Supervise(ctx, ln, SuperviseOptions{
			Workers:    2,
			Spec:       spec,
			Heartbeat:  50 * time.Millisecond,
			RejoinWait: 60 * time.Second,
			OnEvent:    log.add,
		})
	}()

	dir0, dir1 := t.TempDir(), t.TempDir()
	w0Done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, WorkerOptions{Coordinator: addr, StateDir: dir0})
		w0Done <- err
	}()
	drain := make(chan struct{})
	drainDone := make(chan error, 1)
	go func() {
		_, err := Run(ctx, WorkerOptions{Coordinator: addr, StateDir: dir1, Drain: drain})
		drainDone <- err
	}()

	waitForCheckpoint(t, dir1, time.Minute)
	close(drain)
	if err := <-drainDone; !errors.Is(err, ErrDrained) {
		t.Fatalf("drained worker returned %v, want ErrDrained", err)
	}
	log.awaitState(t, "left", 30*time.Second)

	var rejoinRep *Report
	rejoinDone := make(chan error, 1)
	go func() {
		var err error
		rejoinRep, err = Run(ctx, WorkerOptions{
			Coordinator: addr,
			StateDir:    dir1,
			Rejoin:      true,
			Backoff:     BackoffConfig{Initial: 20 * time.Millisecond, Tries: 10},
		})
		rejoinDone <- err
	}()

	<-coordDone
	if coordErr != nil {
		t.Fatalf("coordinator: %v\nevents: %+v", coordErr, log.all())
	}
	if err := <-w0Done; err != nil {
		t.Fatalf("survivor worker: %v", err)
	}
	if err := <-rejoinDone; err != nil {
		t.Fatalf("rejoined worker: %v", err)
	}
	if err := sameReport(local, coordRep); err != nil {
		t.Fatalf("post-drain run is not bit-identical to the local baseline: %v", err)
	}
	if err := sameReport(local, rejoinRep); err != nil {
		t.Fatalf("rejoined worker's report diverged: %v", err)
	}
}
