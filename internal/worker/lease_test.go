package worker

import (
	"reflect"
	"testing"
	"time"

	"dgcl/internal/testutil"
)

// Lease-table battery on the injected clock: expiry cadence, strike
// accumulation to a verdict, renewal clearing strikes, and the wakeup
// arithmetic are all exact — no wall-clock sleeps.

func leaseFixture(timeout time.Duration, downAfter int) (*testutil.FakeClock, *leases) {
	fc := testutil.NewFakeClock(time.Unix(1000, 0))
	return fc, newLeases(fc, timeout, downAfter)
}

func TestLeaseStrikesSuspectThenDead(t *testing.T) {
	fc, l := leaseFixture(time.Second, 3)
	l.track(0, 10)
	l.track(1, 11)
	if s, d := l.check(); len(s) != 0 || len(d) != 0 {
		t.Fatalf("fresh leases expired: suspects %v dead %v", s, d)
	}
	fc.Advance(time.Second)
	if s, d := l.check(); !reflect.DeepEqual(s, []int{0, 1}) || len(d) != 0 {
		t.Fatalf("first expiry: suspects %v dead %v, want [0 1] []", s, d)
	}
	// Member 1 beats: its strikes clear and its lease re-arms.
	l.renew(1)
	if got := l.health.Strikes(11); got != 0 {
		t.Fatalf("renewal left %d strikes", got)
	}
	fc.Advance(time.Second)
	if s, d := l.check(); !reflect.DeepEqual(s, []int{0, 1}) || len(d) != 0 {
		t.Fatalf("second expiry: suspects %v dead %v, want [0 1] []", s, d)
	}
	fc.Advance(time.Second)
	// Member 0 reaches its third consecutive strike (the verdict); member 1
	// is only at its second.
	s, d := l.check()
	if !reflect.DeepEqual(d, []int{0}) || !reflect.DeepEqual(s, []int{1}) {
		t.Fatalf("third expiry: suspects %v dead %v, want [1] [0]", s, d)
	}
	if !l.dead(0) || l.dead(1) {
		t.Fatalf("verdicts wrong: dead(0)=%v dead(1)=%v", l.dead(0), l.dead(1))
	}
}

func TestLeaseRenewalWithinDeadlineNeverStrikes(t *testing.T) {
	fc, l := leaseFixture(time.Second, 2)
	l.track(0, 10)
	for i := 0; i < 10; i++ {
		fc.Advance(900 * time.Millisecond)
		l.renew(0)
		if s, d := l.check(); len(s) != 0 || len(d) != 0 {
			t.Fatalf("beat %d: healthy member struck: suspects %v dead %v", i, s, d)
		}
	}
	if l.dead(0) {
		t.Fatal("healthy member judged dead")
	}
}

func TestLeaseEvidenceIsImmediateVerdict(t *testing.T) {
	_, l := leaseFixture(time.Second, 5)
	l.track(2, 42)
	l.evidence(2)
	if !l.dead(2) {
		t.Fatal("explicit evidence did not produce a verdict")
	}
}

func TestLeaseDropAndUntrackedRenewAreNoops(t *testing.T) {
	fc, l := leaseFixture(time.Second, 2)
	l.renew(7) // never tracked: must not create a lease
	l.track(0, 10)
	l.drop(0)
	l.renew(0) // dropped: must not resurrect the lease
	fc.Advance(2 * time.Second)
	if s, d := l.check(); len(s) != 0 || len(d) != 0 {
		t.Fatalf("dropped lease expired: suspects %v dead %v", s, d)
	}
	if _, ok := l.nextDeadline(); ok {
		t.Fatal("empty table reports a deadline")
	}
}

func TestLeaseNextDeadlineIsEarliest(t *testing.T) {
	fc, l := leaseFixture(time.Second, 2)
	start := fc.Now()
	l.track(0, 10)
	fc.Advance(300 * time.Millisecond)
	l.track(1, 11)
	d, ok := l.nextDeadline()
	if !ok || !d.Equal(start.Add(time.Second)) {
		t.Fatalf("deadline %v ok=%v, want %v", d, ok, start.Add(time.Second))
	}
	l.drop(0)
	d, ok = l.nextDeadline()
	if !ok || !d.Equal(start.Add(300*time.Millisecond+time.Second)) {
		t.Fatalf("deadline after drop %v ok=%v", d, ok)
	}
}
