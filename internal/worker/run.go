package worker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dgcl"
	"dgcl/internal/checkpoint"
	"dgcl/internal/comm/wire"
	"dgcl/internal/gnn"
	"dgcl/internal/runtime"
)

// ErrDrained reports that the worker exited on request (SIGTERM/SIGINT →
// WorkerOptions.Drain): it finished its in-flight epoch, flushed a
// checkpoint, and told the coordinator it was leaving. A drained exit is
// deliberate, not a failure.
var ErrDrained = errors.New("worker: drained")

// errFaulted marks a collective failure the worker already reported to the
// coordinator; the control loop waits for the next generation's prepare.
var errFaulted = errors.New("worker: faulted, awaiting next generation")

// WorkerOptions configures one worker process's run. The zero value of every
// optional field selects a default.
type WorkerOptions struct {
	// Coordinator is the coordinator's control address (required).
	Coordinator string
	// DataBind is the advertised peer address for the per-generation data
	// listener ("127.0.0.1:0" when empty; a routable host:port on real
	// clusters).
	DataBind string
	// StateDir, when set, roots this worker's durable state: a membership
	// file identifying the run it last prepared for, and a per-run
	// checkpoint store catch-up resumes from. Empty disables both (the
	// worker can still fault and rerun, but never rejoin after a restart).
	StateDir string
	// CheckpointEvery is the checkpoint cadence in epochs (default 1).
	CheckpointEvery int
	// Rejoin makes the worker present the persisted run identity from
	// StateDir and reclaim its dead slot instead of joining fresh.
	Rejoin bool
	// Backoff shapes the coordinator dial retry schedule.
	Backoff BackoffConfig
	// Clock injects time for backoff sleeps and heartbeat pacing. Default:
	// the real clock.
	Clock Clock
	// Drain, when non-nil, requests a graceful exit when it becomes
	// readable: polled at epoch boundaries (cmd/dgclworker closes it on
	// SIGTERM/SIGINT).
	Drain <-chan struct{}
	// EpochTimeout bounds each epoch's collectives so a stalled peer
	// surfaces as a fault instead of a hang. Default 2m.
	EpochTimeout time.Duration
	// OverlapOff disables the pipelined overlap executor locally. The
	// spec's chunked layout still applies (it determines the wire transfer
	// keys), so an overlap-off worker interoperates bit-identically with
	// pipelined peers.
	OverlapOff bool
	// OverlapWindow overrides the in-flight stage window locally (0 keeps
	// the default).
	OverlapWindow int
	// WireWindow overrides the spec's per-link credit window locally (0
	// uses the spec's, then wire.DefaultWindow).
	WireWindow int
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.DataBind == "" {
		o.DataBind = "127.0.0.1:0"
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	if o.Clock == nil {
		o.Clock = realClock{}
	}
	if o.EpochTimeout <= 0 {
		o.EpochTimeout = 2 * time.Minute
	}
	return o
}

// memberState is the durable identity a restarted worker presents to rejoin
// its run: written to StateDir/membership.json at the first healthy prepare.
type memberState struct {
	RunID string `json:"run_id"`
	Plan  uint64 `json:"plan"`
	Proto int    `json:"proto"`
}

func membershipPath(dir string) string { return filepath.Join(dir, "membership.json") }

func loadMemberState(dir string) (memberState, bool) {
	data, err := os.ReadFile(membershipPath(dir))
	if err != nil {
		return memberState{}, false
	}
	var st memberState
	if err := json.Unmarshal(data, &st); err != nil || st.RunID == "" {
		return memberState{}, false
	}
	return st, true
}

// saveMemberState commits the membership file atomically (temp + rename) so
// a crash mid-write never leaves a half-written identity.
func saveMemberState(dir string, st memberState) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("worker: state dir: %w", err)
	}
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("worker: encode membership: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "membership-*.tmp")
	if err != nil {
		return fmt.Errorf("worker: membership temp: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil { //dgclvet:ignore ctxbound local temp-file write; there is no peer to wait on
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("worker: write membership: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("worker: close membership: %w", err)
	}
	if err := os.Rename(name, membershipPath(dir)); err != nil {
		os.Remove(name)
		return fmt.Errorf("worker: commit membership: %w", err)
	}
	return nil
}

// runStateDir names the per-run checkpoint directory under StateDir, so
// checkpoints from an earlier run with the same spec can never poison a
// rejoin.
func runStateDir(stateDir, runID string) string {
	safe := make([]rune, 0, len(runID))
	for _, r := range runID {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			safe = append(safe, r)
		default:
			safe = append(safe, '_')
		}
	}
	return filepath.Join(stateDir, string(safe))
}

// RunWorker hosts one process's share of a run with default options: join
// the coordinator at coordAddr, advertise data listeners bound on dataBind,
// train, report. Kept as the compatibility entry point; Run is the full
// surface.
func RunWorker(ctx context.Context, coordAddr, dataBind string) (*Report, error) {
	return Run(ctx, WorkerOptions{Coordinator: coordAddr, DataBind: dataBind})
}

// session is one membership generation's training state: the system built
// (and possibly degraded) from the generation's prepare, the fresh data
// listener, and the per-run checkpoint store.
type session struct {
	gen     uint64
	runID   string
	spec    Spec
	you     int
	compact []int // this process's ranks in post-degrade compact numbering
	alive   []int // compact rank -> external device id

	sys      *dgcl.System
	model    *dgcl.Model
	features *dgcl.Matrix
	targets  *dgcl.Matrix
	planSum  uint64
	beat     time.Duration

	ln    net.Listener
	node  *wire.Node
	store *checkpoint.Store
}

func (s *session) close() {
	if s.node != nil {
		s.node.Close()
		s.node = nil
	} else if s.ln != nil {
		// Connect never ran; the listener is still ours to close.
		s.ln.Close()
	}
	s.ln = nil
}

// Run executes the supervised worker protocol against the coordinator:
// dial (with backoff), join (fresh or rejoining), then serve generations —
// prepare builds the system and a fresh data listener, ready advertises them
// with the intact checkpoint epochs, mesh triggers catch-up and training
// under heartbeats — until the coordinator's bye carries the verified run
// report.
func Run(ctx context.Context, opts WorkerOptions) (*Report, error) {
	opts = opts.withDefaults()
	var persisted memberState
	rejoining := false
	if opts.Rejoin {
		if opts.StateDir == "" {
			return nil, errors.New("worker: rejoin requires a state dir")
		}
		persisted, rejoining = loadMemberState(opts.StateDir)
		if !rejoining {
			return nil, fmt.Errorf("worker: rejoin requested but %s holds no run identity", membershipPath(opts.StateDir))
		}
	}
	conn, err := dialBackoff(ctx, opts.Clock, opts.Coordinator, opts.Backoff)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	cc := &ctrlConn{conn: conn}
	join := ctrlMsg{T: mtJoin, Proto: ProtoVersion}
	if rejoining {
		join.Rejoin, join.RunID, join.Plan = true, persisted.RunID, persisted.Plan
	}
	if err := cc.send(join); err != nil {
		return nil, err
	}

	var sess *session
	defer func() {
		if sess != nil {
			sess.close()
		}
	}()
	for {
		msg, err := readCtrl(conn, resultTimeout)
		if err != nil {
			return nil, fmt.Errorf("worker: coordinator connection: %w", err)
		}
		switch msg.T {
		case mtReject:
			return nil, &ProtocolError{Code: msg.Code, Detail: msg.Err}
		case mtPrepare:
			if sess != nil {
				sess.close()
				sess = nil
			}
			s, err := prepare(msg, opts)
			if err != nil {
				// A local build failure is unrecoverable and identical on
				// every process; report it so the run fails with a cause.
				_ = cc.send(ctrlMsg{T: mtResult, Gen: msg.Gen, Err: err.Error()}) //dgclvet:ignore errwrap failure report is best-effort; the build error below is the cause
				return nil, err
			}
			sess = s
			if opts.StateDir != "" && len(msg.Down) == 0 {
				if err := saveMemberState(opts.StateDir, memberState{RunID: s.runID, Plan: s.planSum, Proto: ProtoVersion}); err != nil {
					_ = cc.send(ctrlMsg{T: mtResult, Gen: msg.Gen, Err: err.Error()}) //dgclvet:ignore errwrap failure report is best-effort; the state error below is the cause
					return nil, err
				}
			}
			ready := ctrlMsg{T: mtReady, Gen: s.gen, Addr: s.ln.Addr().String(), Plan: s.planSum}
			if s.store != nil {
				if ready.Ckpts, err = s.store.Epochs(); err != nil {
					_ = cc.send(ctrlMsg{T: mtResult, Gen: msg.Gen, Err: err.Error()}) //dgclvet:ignore errwrap failure report is best-effort; the store error below is the cause
					return nil, err
				}
			}
			if err := cc.send(ready); err != nil {
				return nil, err
			}
		case mtMesh:
			if sess == nil || msg.Gen != sess.gen {
				return nil, fmt.Errorf("worker: mesh for generation %d without a prepared session", msg.Gen)
			}
			err := sess.train(ctx, cc, msg, opts)
			switch {
			case err == nil:
				// Result sent; the mesh stays up until the coordinator's
				// bye so slower peers can drain their last frames.
			case errors.Is(err, ErrDrained):
				return nil, ErrDrained
			case errors.Is(err, errFaulted):
				sess.close()
				sess = nil
			default:
				return nil, err
			}
		case mtBye:
			if !msg.OK {
				return nil, fmt.Errorf("worker: run failed: %s", msg.Err)
			}
			if len(msg.Losses) == 0 {
				return nil, errors.New("worker: bye carries no report")
			}
			return &Report{Losses: msg.Losses, ModelSum: msg.Sum}, nil
		}
	}
}

// prepare builds one generation's session from its prepare message: the
// deterministic system (degraded onto the survivors when the membership
// shrank), this process's compact ranks, a fresh data listener, and the
// per-run checkpoint store.
func prepare(msg ctrlMsg, opts WorkerOptions) (*session, error) {
	if msg.Spec == nil {
		return nil, errors.New("worker: prepare carries no spec")
	}
	spec := msg.Spec.withDefaults()
	sys, model, features, targets, err := Build(spec)
	if err != nil {
		return nil, err
	}
	if len(msg.Down) > 0 {
		if err := sys.Degrade(msg.Down); err != nil {
			return nil, err
		}
	}
	if opts.OverlapOff || opts.OverlapWindow > 0 {
		sys.SetOverlapPolicy(opts.OverlapOff, opts.OverlapWindow)
	}
	alive := sys.AliveDevices()
	compactOf := make(map[int]int, len(alive))
	for i, id := range alive {
		compactOf[id] = i
	}
	compact := make([]int, 0, len(msg.Ranks))
	for _, r := range msg.Ranks {
		c, ok := compactOf[r]
		if !ok {
			return nil, fmt.Errorf("worker: assigned rank %d is not alive after degrading %v", r, msg.Down)
		}
		compact = append(compact, c)
	}
	ln, err := net.Listen("tcp", opts.DataBind)
	if err != nil {
		return nil, fmt.Errorf("worker: data listener: %w", err)
	}
	s := &session{
		gen:      msg.Gen,
		runID:    msg.RunID,
		spec:     spec,
		you:      msg.You,
		compact:  compact,
		alive:    alive,
		sys:      sys,
		model:    model,
		features: features,
		targets:  targets,
		planSum:  wire.DigestWithChunking(wire.PlanDigest(sys.Plan()), sys.OverlapChunkRows()),
		beat:     time.Duration(msg.Beat),
		ln:       ln,
	}
	if s.beat <= 0 {
		s.beat = 500 * time.Millisecond
	}
	if opts.StateDir != "" {
		s.store = checkpoint.NewStore(runStateDir(opts.StateDir, msg.RunID))
	}
	return s, nil
}

// optimizerName is the optimizer identity stamped into (and validated
// against) checkpoints; the epoch loop's stateless SGD step must match it.
func optimizerName(spec Spec) string {
	return gnn.NewSGD(float32(spec.LR), 0).Name()
}

// train runs one generation: catch up from the negotiated common checkpoint
// epoch, mesh with the generation's peers (the cluster ID carries the
// generation, so a stale worker's data connections are fenced at the
// handshake), then train under heartbeats, reporting progress each epoch. On
// a collective fault it tells the coordinator whom it blames, tears its mesh
// down (unblocking peers), and returns errFaulted.
func (s *session) train(ctx context.Context, cc *ctrlConn, mesh ctrlMsg, opts WorkerOptions) error {
	if s.you < 0 || s.you >= len(mesh.Nodes) {
		return fmt.Errorf("worker: node id %d outside %d-entry table", s.you, len(mesh.Nodes))
	}
	start := mesh.Start
	model := s.model
	if start > 0 {
		if s.store == nil {
			return fmt.Errorf("worker: coordinator resumes at epoch %d but this worker has no state dir", start)
		}
		snap, _, err := s.store.LoadEpoch(start)
		if err != nil {
			return fmt.Errorf("worker: catch-up epoch %d: %w", start, err)
		}
		if snap.Seed != s.spec.Seed {
			return fmt.Errorf("worker: checkpoint seed %d != run seed %d; resuming would break determinism", snap.Seed, s.spec.Seed)
		}
		if want := optimizerName(s.spec); snap.OptName != want {
			return fmt.Errorf("worker: checkpoint optimizer %q != configured %q", snap.OptName, want)
		}
		model = snap.Model
	}
	if start >= s.spec.Epochs {
		return fmt.Errorf("worker: resume epoch %d is beyond the run's %d epochs", start, s.spec.Epochs)
	}

	window := s.spec.WireWindow
	if opts.WireWindow > 0 {
		window = opts.WireWindow
	}
	node := wire.NewNode(wire.Config{
		ClusterID: fmt.Sprintf("%s#g%d", s.runID, s.gen),
		PlanSum:   s.planSum,
		Window:    window,
	}, s.you, s.ln)
	s.node = node
	if err := node.Connect(ctx, mesh.Nodes); err != nil {
		return s.fault(cc, start, err)
	}
	node.SetDeviceIDs(s.alive)
	if err := s.sys.SetRunOptions(dgcl.RunOptions{Transport: node}); err != nil {
		return err
	}
	if err := s.sys.SetWorkerMode(s.compact, node); err != nil {
		return err
	}
	tr, err := s.sys.NewTrainer(model, s.features, s.targets)
	if err != nil {
		return err
	}

	// Heartbeats: proof of life on the injected clock's cadence for as long
	// as an epoch is in flight. Send errors are left to the control loop's
	// reads to surface.
	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		for {
			ch, cancel := opts.Clock.After(s.beat)
			select {
			case <-stop:
				cancel()
				return
			case <-ch:
			}
			if err := cc.send(ctrlMsg{T: mtBeat, Gen: s.gen}); err != nil {
				return
			}
		}
	}()
	stopBeats := func() {
		close(stop)
		hb.Wait()
	}

	for e := start; e < s.spec.Epochs; e++ {
		if drained(opts.Drain) {
			stopBeats()
			return s.drain(cc, tr, e)
		}
		epochCtx, cancel := context.WithTimeout(ctx, opts.EpochTimeout)
		loss, err := tr.EpochAt(epochCtx, e)
		cancel()
		if err != nil {
			stopBeats()
			if ctx.Err() != nil {
				return fmt.Errorf("worker: epoch %d: %w", e, err)
			}
			return s.fault(cc, e, err)
		}
		tr.Step(float32(s.spec.LR))
		if err := cc.send(ctrlMsg{T: mtBeat, Gen: s.gen, Epoch: e + 1, Progress: true, Loss: loss}); err != nil {
			stopBeats()
			return err
		}
		if s.store != nil && ((e+1)%opts.CheckpointEvery == 0 || e+1 == s.spec.Epochs) {
			if err := s.checkpoint(tr, e+1); err != nil {
				stopBeats()
				return err
			}
		}
	}
	stopBeats()
	if drained(opts.Drain) {
		return s.drain(cc, tr, s.spec.Epochs)
	}
	return cc.send(ctrlMsg{T: mtResult, Gen: s.gen, Epoch: s.spec.Epochs, Sum: ModelDigest(tr.Models[0])})
}

func drained(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// drain performs the graceful exit: flush a checkpoint at the completed
// epoch (even off-cadence), tell the coordinator, tear the mesh down.
func (s *session) drain(cc *ctrlConn, tr *dgcl.Trainer, epoch int) error {
	if s.store != nil && epoch > 0 {
		if err := s.checkpoint(tr, epoch); err != nil {
			return err
		}
	}
	_ = cc.send(ctrlMsg{T: mtLeave, Gen: s.gen, Epoch: epoch}) //dgclvet:ignore errwrap leave notice is best-effort; the worker is exiting either way
	return ErrDrained
}

// checkpoint commits the replica-0 state at a completed epoch boundary.
func (s *session) checkpoint(tr *dgcl.Trainer, epoch int) error {
	_, err := s.store.Save(&checkpoint.Snapshot{
		Epoch:   epoch,
		Seed:    s.spec.Seed,
		OptName: optimizerName(s.spec),
		Model:   tr.Models[0],
	})
	if err != nil {
		return fmt.Errorf("worker: checkpoint epoch %d: %w", epoch, err)
	}
	return nil
}

// fault reports a collective failure (with whoever the error evidence
// blames) and tears this node's mesh down so peers blocked mid-collective
// observe the link loss and fault too, instead of deadlocking at the
// barrier.
func (s *session) fault(cc *ctrlConn, epoch int, cause error) error {
	msg := ctrlMsg{T: mtFault, Gen: s.gen, Epoch: epoch, Blame: blameOf(cause)}
	_ = cc.send(msg) //dgclvet:ignore errwrap fault report is best-effort; a dead control link surfaces in the control loop's next read
	s.close()
	return fmt.Errorf("%w: epoch %d: %v", errFaulted, epoch, cause)
}

// blameOf extracts the device blame list from collective error evidence.
func blameOf(err error) []int {
	var ce *runtime.CollectiveError
	if errors.As(err, &ce) && len(ce.Down) > 0 {
		return append([]int(nil), ce.Down...)
	}
	var dde *runtime.DeviceDownError
	if errors.As(err, &dde) {
		return []int{dde.Device}
	}
	return nil
}
