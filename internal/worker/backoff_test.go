package worker

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"dgcl/internal/testutil"
)

// TestBackoffScheduleDeterministicAndBounded: the retry schedule is a pure
// function of the config — two iterators agree delay for delay — and every
// delay lands in [raw/2, raw) where raw is the capped exponential.
func TestBackoffScheduleDeterministicAndBounded(t *testing.T) {
	cfg := BackoffConfig{Initial: 100 * time.Millisecond, Max: time.Second, Tries: 8, Seed: 7}
	a, b := newBackoff(cfg), newBackoff(cfg)
	for i := 0; i < 8; i++ {
		raw := cfg.Initial << i
		if raw > cfg.Max {
			raw = cfg.Max
		}
		da, db := a.next(), b.next()
		if da != db {
			t.Fatalf("attempt %d: same config produced %v and %v", i, da, db)
		}
		if da < raw/2 || da >= raw {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", i, da, raw/2, raw)
		}
	}
}

func TestBackoffDifferentSeedsDiverge(t *testing.T) {
	a := newBackoff(BackoffConfig{Initial: time.Second, Max: time.Minute, Seed: 1})
	b := newBackoff(BackoffConfig{Initial: time.Second, Max: time.Minute, Seed: 2})
	same := true
	for i := 0; i < 5; i++ {
		if a.next() != b.next() {
			same = false
		}
	}
	if same {
		t.Fatal("two seeds produced identical jitter streams; restarts would stampede in lockstep")
	}
}

func TestBackoffDefaults(t *testing.T) {
	cfg := BackoffConfig{}.withDefaults()
	if cfg.Initial != 100*time.Millisecond || cfg.Max != 5*time.Second || cfg.Tries != 1 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	// Max below Initial is lifted to Initial so the schedule stays sane.
	cfg = BackoffConfig{Initial: time.Second, Max: time.Millisecond}.withDefaults()
	if cfg.Max != time.Second {
		t.Fatalf("Max not lifted to Initial: %+v", cfg)
	}
}

// TestDialBackoffSleepsOnInjectedClock proves the retry sleeps run on the
// injected clock: with hour-long delays the dial would otherwise hang for
// hours, but advancing the fake clock drains all three attempts in
// milliseconds, and the give-up error names the attempt count.
func TestDialBackoffSleepsOnInjectedClock(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here any more: every dial fails fast

	fc := testutil.NewFakeClock(time.Unix(0, 0))
	done := make(chan error, 1)
	go func() {
		_, err := dialBackoff(context.Background(), fc, addr,
			BackoffConfig{Initial: time.Hour, Max: time.Hour, Tries: 3, Seed: 1})
		done <- err
	}()
	deadline := time.After(20 * time.Second)
	for {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("dial of a closed port succeeded")
			}
			if !strings.Contains(err.Error(), "after 3 attempts") {
				t.Fatalf("give-up error does not name the attempt count: %v", err)
			}
			return
		case <-deadline:
			t.Fatal("dialBackoff did not finish; is it sleeping on the real clock?")
		default:
			fc.Advance(time.Hour)
			time.Sleep(time.Millisecond)
		}
	}
}

func TestDialBackoffHonorsContextCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	fc := testutil.NewFakeClock(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := dialBackoff(ctx, fc, addr, BackoffConfig{Initial: time.Hour, Max: time.Hour, Tries: 10, Seed: 1})
		done <- err
	}()
	// Let the first attempt fail and the sleep arm, then cancel: the dial
	// must return promptly without the clock ever advancing.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled dial returned success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled dialBackoff never returned")
	}
}
