package partition

import (
	"strings"
	"testing"

	"dgcl/internal/graph"
)

func TestCommVolumeOnRing(t *testing.T) {
	g := graph.Ring(8)
	p := Range(g, 4)
	// Each part references 2 remote vertices.
	if got := CommVolume(g, p); got != 8 {
		t.Fatalf("CommVolume=%d want 8", got)
	}
}

func TestCommVolumeDedupsMultiEdges(t *testing.T) {
	// Two vertices in part 0 both reference the same remote vertex: counts
	// once, while the edge cut counts twice.
	g := graph.MustFromEdges(3, []graph.Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}}, false)
	p := &Partition{K: 2, Assign: []int32{0, 0, 1}}
	if got := CommVolume(g, p); got != 1 {
		t.Fatalf("CommVolume=%d want 1", got)
	}
	if p.EdgeCut(g) != 2 {
		t.Fatal("edge cut should be 2")
	}
}

func TestReplicationHalo(t *testing.T) {
	g := graph.Ring(8)
	p := Range(g, 4)
	halo := ReplicationHalo(g, p)
	for d, h := range halo {
		if h != 2 {
			t.Fatalf("part %d halo %d want 2", d, h)
		}
	}
}

func TestEvaluateAndString(t *testing.T) {
	g := graph.Grid2D(10, 10)
	p, err := KWay(g, 4, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(g, p)
	if q.EdgeCut <= 0 || q.CommVolume <= 0 || q.Balance < 1 {
		t.Fatalf("quality %+v", q)
	}
	if q.CutPercent <= 0 || q.CutPercent >= 100 {
		t.Fatalf("cut percent %v", q.CutPercent)
	}
	if !strings.Contains(q.String(), "balance") {
		t.Fatal("String missing fields")
	}
}
