package partition

import (
	"strings"
	"testing"

	"dgcl/internal/graph"
)

func TestCommVolumeOnRing(t *testing.T) {
	g := graph.Ring(8)
	p := Range(g, 4)
	// Each part references 2 remote vertices.
	if got := CommVolume(g, p); got != 8 {
		t.Fatalf("CommVolume=%d want 8", got)
	}
}

func TestCommVolumeDedupsMultiEdges(t *testing.T) {
	// Two vertices in part 0 both reference the same remote vertex: counts
	// once, while the edge cut counts twice.
	g := graph.MustFromEdges(3, []graph.Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}}, false)
	p := &Partition{K: 2, Assign: []int32{0, 0, 1}}
	if got := CommVolume(g, p); got != 1 {
		t.Fatalf("CommVolume=%d want 1", got)
	}
	if p.EdgeCut(g) != 2 {
		t.Fatal("edge cut should be 2")
	}
}

func TestReplicationHalo(t *testing.T) {
	g := graph.Ring(8)
	p := Range(g, 4)
	halo := ReplicationHalo(g, p)
	for d, h := range halo {
		if h != 2 {
			t.Fatalf("part %d halo %d want 2", d, h)
		}
	}
}

func TestEvaluateAndString(t *testing.T) {
	g := graph.Grid2D(10, 10)
	p, err := KWay(g, 4, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(g, p)
	if q.EdgeCut <= 0 || q.CommVolume <= 0 || q.Balance < 1 {
		t.Fatalf("quality %+v", q)
	}
	if q.CutPercent <= 0 || q.CutPercent >= 100 {
		t.Fatalf("cut percent %v", q.CutPercent)
	}
	if !strings.Contains(q.String(), "balance") {
		t.Fatal("String missing fields")
	}
}

func TestStreamingPartitioner(t *testing.T) {
	g := graph.Grid2D(24, 24)
	p := Streaming(g, 4, 1)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if b := p.Balance(); b > 1.25 {
		t.Fatalf("LDG balance %f too loose", b)
	}
	// Quality sits between hash and multilevel on structured graphs.
	hashCut := Hash(g, 4).EdgeCut(g)
	ldgCut := p.EdgeCut(g)
	ml, err := KWay(g, 4, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mlCut := ml.EdgeCut(g)
	if ldgCut >= hashCut {
		t.Fatalf("LDG cut %d should beat hash %d", ldgCut, hashCut)
	}
	if mlCut > ldgCut {
		// Multilevel should be at least as good; it is allowed to tie.
		t.Logf("note: multilevel %d vs LDG %d", mlCut, ldgCut)
	}
}

func TestStreamingDeterministic(t *testing.T) {
	g := graph.CommunityGraph(400, 10, 4, 0.8, 3)
	a := Streaming(g, 4, 7)
	b := Streaming(g, 4, 7)
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatal("same seed must give same streaming partition")
		}
	}
	if Streaming(g, 0, 1).K != 1 {
		t.Fatal("k<1 should clamp to 1")
	}
}
