package partition

import (
	"math/rand"
	"sort"

	"dgcl/internal/graph"
)

// weightedGraph is the internal CSR representation used during multilevel
// partitioning: vertices and edges carry weights that accumulate as the
// graph is coarsened.
type weightedGraph struct {
	xadj   []int64
	adjncy []int32
	adjwgt []int64
	vwgt   []int64
}

func (w *weightedGraph) numVertices() int { return len(w.vwgt) }

func (w *weightedGraph) totalVWgt() int64 {
	var t int64
	for _, x := range w.vwgt {
		t += x
	}
	return t
}

// fromGraph symmetrizes g and converts it to unit-weight form.
func fromGraph(g *graph.Graph) *weightedGraph {
	s := g
	if !g.IsSymmetric() {
		s = g.Symmetrize()
	}
	n := s.NumVertices()
	w := &weightedGraph{
		xadj:   make([]int64, n+1),
		adjncy: make([]int32, 0, s.NumEdges()),
		adjwgt: make([]int64, 0, s.NumEdges()),
		vwgt:   make([]int64, n),
	}
	for v := 0; v < n; v++ {
		w.vwgt[v] = 1
		for _, u := range s.Neighbors(int32(v)) {
			if u == int32(v) {
				continue // self loops contribute nothing to cut
			}
			w.adjncy = append(w.adjncy, u)
			w.adjwgt = append(w.adjwgt, 1)
		}
		w.xadj[v+1] = int64(len(w.adjncy))
	}
	return w
}

func (w *weightedGraph) neighbors(v int32) ([]int32, []int64) {
	return w.adjncy[w.xadj[v]:w.xadj[v+1]], w.adjwgt[w.xadj[v]:w.xadj[v+1]]
}

// coarsen performs one level of heavy-edge matching and returns the coarse
// graph plus the fine->coarse vertex map. Returns nil if matching failed to
// shrink the graph meaningfully (ratio > 0.95).
func (w *weightedGraph) coarsen(rng *rand.Rand) (*weightedGraph, []int32) {
	n := w.numVertices()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	coarseN := 0
	cmap := make([]int32, n)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		// Heavy-edge matching: pick the unmatched neighbor with the largest
		// edge weight.
		var best int32 = -1
		var bestW int64 = -1
		nbrs, wgts := w.neighbors(v)
		for i, u := range nbrs {
			if u != v && match[u] < 0 && wgts[i] > bestW {
				best, bestW = u, wgts[i]
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
			cmap[v] = int32(coarseN)
			cmap[best] = int32(coarseN)
		} else {
			match[v] = v
			cmap[v] = int32(coarseN)
		}
		coarseN++
	}
	if float64(coarseN) > 0.95*float64(n) {
		return nil, nil
	}
	// Build coarse graph, merging parallel edges.
	cw := &weightedGraph{
		xadj: make([]int64, coarseN+1),
		vwgt: make([]int64, coarseN),
	}
	edgeAccum := make(map[int32]int64, 16)
	// Gather fine vertices per coarse vertex.
	fine := make([][2]int32, coarseN)
	for i := range fine {
		fine[i] = [2]int32{-1, -1}
	}
	for v := 0; v < n; v++ {
		c := cmap[v]
		if fine[c][0] < 0 {
			fine[c][0] = int32(v)
		} else {
			fine[c][1] = int32(v)
		}
	}
	for c := 0; c < coarseN; c++ {
		clear(edgeAccum)
		for _, v := range fine[c] {
			if v < 0 {
				continue
			}
			cw.vwgt[c] += w.vwgt[v]
			nbrs, wgts := w.neighbors(v)
			for i, u := range nbrs {
				cu := cmap[u]
				if cu != int32(c) {
					edgeAccum[cu] += wgts[i]
				}
			}
		}
		// Sorted emission keeps the partitioner deterministic for a seed.
		keys := make([]int32, 0, len(edgeAccum))
		for u := range edgeAccum {
			keys = append(keys, u)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, u := range keys {
			cw.adjncy = append(cw.adjncy, u)
			cw.adjwgt = append(cw.adjwgt, edgeAccum[u])
		}
		cw.xadj[c+1] = int64(len(cw.adjncy))
	}
	return cw, cmap
}

// multilevel runs the full coarsen / initial-partition / refine pipeline.
func multilevel(w *weightedGraph, k int, opts Options, rng *rand.Rand) []int32 {
	// Coarsening phase.
	var levels []*weightedGraph
	var maps [][]int32
	cur := w
	for cur.numVertices() > opts.CoarsenTo {
		cw, cmap := cur.coarsen(rng)
		if cw == nil {
			break
		}
		levels = append(levels, cur)
		maps = append(maps, cmap)
		cur = cw
	}
	// Initial partition at the coarsest level.
	assign := greedyGrow(cur, k, rng)
	refine(cur, assign, k, opts, rng)
	// Uncoarsening with refinement.
	for i := len(levels) - 1; i >= 0; i-- {
		fineG, cmap := levels[i], maps[i]
		fineAssign := make([]int32, fineG.numVertices())
		for v := range fineAssign {
			fineAssign[v] = assign[cmap[v]]
		}
		assign = fineAssign
		refine(fineG, assign, k, opts, rng)
	}
	return assign
}

// greedyGrow produces an initial k-way partition by BFS-growing parts from
// random seeds until each reaches its weight target.
func greedyGrow(w *weightedGraph, k int, rng *rand.Rand) []int32 {
	n := w.numVertices()
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	target := (w.totalVWgt() + int64(k) - 1) / int64(k)
	order := rng.Perm(n)
	oi := 0
	nextSeed := func() int32 {
		for oi < len(order) {
			v := int32(order[oi])
			oi++
			if assign[v] < 0 {
				return v
			}
		}
		return -1
	}
	queue := make([]int32, 0, 256)
	for p := 0; p < k; p++ {
		seed := nextSeed()
		if seed < 0 {
			break
		}
		var wgt int64
		queue = append(queue[:0], seed)
		assign[seed] = int32(p)
		wgt += w.vwgt[seed]
		for len(queue) > 0 && wgt < target {
			v := queue[0]
			queue = queue[1:]
			nbrs, _ := w.neighbors(v)
			for _, u := range nbrs {
				if assign[u] < 0 && wgt < target {
					assign[u] = int32(p)
					wgt += w.vwgt[u]
					queue = append(queue, u)
				}
			}
		}
	}
	// Any leftovers go to the currently lightest part.
	loads := make([]int64, k)
	for v := 0; v < n; v++ {
		if assign[v] >= 0 {
			loads[assign[v]] += w.vwgt[v]
		}
	}
	for v := 0; v < n; v++ {
		if assign[v] >= 0 {
			continue
		}
		best := 0
		for p := 1; p < k; p++ {
			if loads[p] < loads[best] {
				best = p
			}
		}
		assign[v] = int32(best)
		loads[best] += w.vwgt[v]
	}
	return assign
}

// refine performs greedy boundary FM-style refinement passes: boundary
// vertices move to the neighboring part with the highest cut gain subject to
// the balance constraint.
func refine(w *weightedGraph, assign []int32, k int, opts Options, rng *rand.Rand) {
	n := w.numVertices()
	loads := make([]int64, k)
	for v := 0; v < n; v++ {
		loads[assign[v]] += w.vwgt[v]
	}
	maxLoad := int64(float64(w.totalVWgt()) * (1 + opts.Imbalance) / float64(k))
	if maxLoad < 1 {
		maxLoad = 1
	}
	conn := make([]int64, k) // connectivity of current vertex to each part
	for pass := 0; pass < opts.Refinement; pass++ {
		moved := 0
		order := rng.Perm(n)
		for _, vi := range order {
			v := int32(vi)
			from := assign[v]
			nbrs, wgts := w.neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			boundary := false
			for _, u := range nbrs {
				if assign[u] != from {
					boundary = true
					break
				}
			}
			if !boundary {
				continue
			}
			for p := 0; p < k; p++ {
				conn[p] = 0
			}
			for i, u := range nbrs {
				conn[assign[u]] += wgts[i]
			}
			bestPart, bestGain := from, int64(0)
			for p := 0; p < k; p++ {
				if int32(p) == from {
					continue
				}
				gain := conn[p] - conn[from]
				if gain > bestGain && loads[p]+w.vwgt[v] <= maxLoad {
					bestPart, bestGain = int32(p), gain
				}
			}
			if bestPart != from {
				loads[from] -= w.vwgt[v]
				loads[bestPart] += w.vwgt[v]
				assign[v] = bestPart
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
