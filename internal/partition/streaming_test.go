package partition

import (
	"testing"

	"dgcl/internal/graph"
)

// Direct unit tests for the LDG streaming partitioner: balance bounds,
// determinism, locality quality versus hash, and the degenerate inputs
// (empty graph, more parts than vertices, k < 1).

func TestStreamingBalanceBound(t *testing.T) {
	g := graph.CommunityGraph(1000, 12, 8, 0.8, 1)
	for _, k := range []int{2, 4, 8, 16} {
		p := Streaming(g, k, 1)
		if err := p.Validate(g); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// LDG only places a vertex on a part below capacity n/k+1, so no part
		// can exceed it by more than the final placement.
		capacity := g.NumVertices()/k + 2
		for part, size := range p.Sizes() {
			if size > capacity {
				t.Errorf("k=%d: part %d has %d vertices, capacity bound %d", k, part, size, capacity)
			}
			if size == 0 && g.NumVertices() >= k {
				t.Errorf("k=%d: part %d is empty", k, part)
			}
		}
	}
}

func TestStreamingDeterministic(t *testing.T) {
	g := graph.RMAT(512, 4096, 0.57, 0.19, 0.19, 2)
	a := Streaming(g, 8, 7)
	b := Streaming(g, 8, 7)
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatalf("same seed diverged at vertex %d: %d vs %d", v, a.Assign[v], b.Assign[v])
		}
	}
	c := Streaming(g, 8, 8)
	same := 0
	for v := range a.Assign {
		if a.Assign[v] == c.Assign[v] {
			same++
		}
	}
	if same == len(a.Assign) {
		t.Error("different seeds produced identical assignments (stream order not seeded?)")
	}
}

// TestStreamingBeatsHashOnCommunities: the point of LDG over hash is
// locality — on a community graph it must cut meaningfully fewer edges.
func TestStreamingBeatsHashOnCommunities(t *testing.T) {
	g := graph.CommunityGraph(2000, 16, 16, 0.9, 3)
	k := 8
	ldg := Streaming(g, k, 3).EdgeCut(g)
	hash := Hash(g, k).EdgeCut(g)
	if ldg >= hash {
		t.Errorf("LDG cut %d not better than hash cut %d", ldg, hash)
	}
}

// TestStreamingQualityOnGrid: quality sits between hash and multilevel on
// structured graphs, with balance within the LDG capacity slack.
func TestStreamingQualityOnGrid(t *testing.T) {
	g := graph.Grid2D(24, 24)
	p := Streaming(g, 4, 1)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if b := p.Balance(); b > 1.25 {
		t.Fatalf("LDG balance %f too loose", b)
	}
	hashCut := Hash(g, 4).EdgeCut(g)
	ldgCut := p.EdgeCut(g)
	ml, err := KWay(g, 4, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ldgCut >= hashCut {
		t.Fatalf("LDG cut %d should beat hash %d", ldgCut, hashCut)
	}
	if mlCut := ml.EdgeCut(g); mlCut > ldgCut {
		// Multilevel should be at least as good; it is allowed to tie.
		t.Logf("note: multilevel %d vs LDG %d", mlCut, ldgCut)
	}
}

func TestStreamingEmptyGraph(t *testing.T) {
	g := graph.MustFromEdges(0, nil, false)
	p := Streaming(g, 4, 1)
	if p.K != 4 || len(p.Assign) != 0 {
		t.Fatalf("empty graph: got K=%d, %d assignments", p.K, len(p.Assign))
	}
}

func TestStreamingMorePartsThanVertices(t *testing.T) {
	g := graph.Ring(3)
	p := Streaming(g, 16, 1)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	for v, part := range p.Assign {
		if part < 0 || part >= 16 {
			t.Fatalf("vertex %d assigned to out-of-range part %d", v, part)
		}
	}
	for part, size := range p.Sizes() {
		if size > 2 {
			t.Errorf("part %d has %d of only 3 vertices", part, size)
		}
	}
}

func TestStreamingClampsK(t *testing.T) {
	g := graph.Ring(8)
	p := Streaming(g, 0, 1)
	if p.K != 1 {
		t.Fatalf("k=0 should clamp to 1 part, got %d", p.K)
	}
	for v, part := range p.Assign {
		if part != 0 {
			t.Fatalf("vertex %d not in the single part: %d", v, part)
		}
	}
}
