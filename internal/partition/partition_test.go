package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgcl/internal/graph"
)

func TestKWayBasics(t *testing.T) {
	g := graph.Grid2D(16, 16)
	p, err := KWay(g, 4, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if b := p.Balance(); b > 1.10 {
		t.Fatalf("balance %f exceeds 1.10", b)
	}
	sizes := p.Sizes()
	for i, s := range sizes {
		if s == 0 {
			t.Fatalf("part %d empty: %v", i, sizes)
		}
	}
}

func TestKWayErrors(t *testing.T) {
	g := graph.Ring(4)
	if _, err := KWay(g, 0, Options{}); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := KWay(g, 10, Options{}); err == nil {
		t.Fatal("k>n should fail")
	}
}

func TestKWaySinglePart(t *testing.T) {
	g := graph.Ring(10)
	p, err := KWay(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.EdgeCut(g) != 0 {
		t.Fatal("single part must have zero cut")
	}
}

func TestKWayBeatsHashOnStructuredGraphs(t *testing.T) {
	// This is the property the paper relies on: METIS-style partitioning
	// yields a far smaller cut (hence communication volume) than naive
	// assignment on graphs with locality.
	g := graph.Grid2D(32, 32)
	ml, err := KWay(g, 8, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	h := Hash(g, 8)
	if mlCut, hCut := ml.EdgeCut(g), h.EdgeCut(g); mlCut*2 >= hCut {
		t.Fatalf("multilevel cut %d not much better than hash cut %d", mlCut, hCut)
	}
}

func TestKWayOnCommunityGraph(t *testing.T) {
	g := graph.CommunityGraph(2000, 16, 8, 0.9, 5)
	p, err := KWay(g, 8, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if b := p.Balance(); b > 1.12 {
		t.Fatalf("balance %f", b)
	}
	frac := float64(p.EdgeCut(g)) / float64(g.NumEdges())
	if frac > 0.6 {
		t.Fatalf("cut fraction %f too high for community graph", frac)
	}
}

func TestKWayDeterministic(t *testing.T) {
	g := graph.CommunityGraph(500, 10, 4, 0.8, 2)
	a, _ := KWay(g, 4, Options{Seed: 9})
	b, _ := KWay(g, 4, Options{Seed: 9})
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatal("same seed must give same partition")
		}
	}
}

func TestHashAndRange(t *testing.T) {
	g := graph.Ring(10)
	h := Hash(g, 3)
	if err := h.Validate(g); err != nil {
		t.Fatal(err)
	}
	if h.Assign[0] != 0 || h.Assign[4] != 1 || h.Assign[5] != 2 {
		t.Fatalf("hash assignment wrong: %v", h.Assign)
	}
	r := Range(g, 3)
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if r.Assign[0] != 0 || r.Assign[9] != 2 {
		t.Fatalf("range assignment wrong: %v", r.Assign)
	}
	// Range parts are contiguous.
	for v := 1; v < 10; v++ {
		if r.Assign[v] < r.Assign[v-1] {
			t.Fatal("range parts must be monotone")
		}
	}
}

func TestHierarchicalComposition(t *testing.T) {
	g := graph.Grid2D(24, 24)
	p, err := Hierarchical(g, []int{4, 4}, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 8 {
		t.Fatalf("K=%d want 8", p.K)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	sizes := p.Sizes()
	for i, s := range sizes {
		if s == 0 {
			t.Fatalf("hierarchical part %d empty: %v", i, sizes)
		}
	}
}

func TestHierarchicalPrioritizesMachineCut(t *testing.T) {
	g := graph.CommunityGraph(1600, 12, 2, 0.95, 13)
	p, err := Hierarchical(g, []int{4, 4}, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// Count machine-crossing vs total cut edges; machine crossing should be a
	// minority of the cut because the top-level split minimizes it first.
	var machineCut, totalCut int64
	for u := 0; u < g.NumVertices(); u++ {
		pu := p.Assign[u]
		for _, v := range g.Neighbors(int32(u)) {
			pv := p.Assign[v]
			if pu == pv {
				continue
			}
			totalCut++
			if (pu < 4) != (pv < 4) {
				machineCut++
			}
		}
	}
	if totalCut == 0 {
		t.Skip("degenerate: no cut at all")
	}
	if float64(machineCut) > 0.8*float64(totalCut) {
		t.Fatalf("machine cut %d should be small fraction of total %d", machineCut, totalCut)
	}
}

func TestHierarchicalErrors(t *testing.T) {
	g := graph.Ring(8)
	if _, err := Hierarchical(g, nil, Options{}); err == nil {
		t.Fatal("no machines should fail")
	}
	if _, err := Hierarchical(g, []int{2, 0}, Options{}); err == nil {
		t.Fatal("zero-GPU machine should fail")
	}
}

func TestHierarchicalSingleMachine(t *testing.T) {
	g := graph.Grid2D(10, 10)
	p, err := Hierarchical(g, []int{4}, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 4 {
		t.Fatalf("K=%d", p.K)
	}
}

func TestMembers(t *testing.T) {
	g := graph.Ring(6)
	p := Range(g, 2)
	mem := p.Members()
	if len(mem) != 2 || len(mem[0]) != 3 || len(mem[1]) != 3 {
		t.Fatalf("members = %v", mem)
	}
	if mem[0][0] != 0 || mem[1][0] != 3 {
		t.Fatalf("members content = %v", mem)
	}
}

func TestEdgeCutMatchesBruteForce(t *testing.T) {
	g := graph.ErdosRenyi(100, 500, 17)
	p := Hash(g, 4)
	var want int64
	for u := 0; u < 100; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if p.Assign[u] != p.Assign[v] {
				want++
			}
		}
	}
	if got := p.EdgeCut(g); got != want {
		t.Fatalf("EdgeCut=%d want %d", got, want)
	}
}

// Property: every KWay result is a valid, reasonably balanced partition
// regardless of graph shape.
func TestPropertyKWayValidBalanced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(300)
		g := graph.ErdosRenyi(n, int64(4*n), seed)
		k := 2 + rng.Intn(6)
		p, err := KWay(g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		if p.Validate(g) != nil {
			return false
		}
		// With isolated vertices and greedy fallback balance can drift, but
		// should stay below 1.5 on these dense-ish random graphs.
		return p.Balance() < 1.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: refinement never leaves the partition invalid and the cut of the
// multilevel partitioner is never worse than 4x the hash baseline.
func TestPropertyKWayCutQuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		side := 8 + rng.Intn(12)
		g := graph.Grid2D(side, side)
		k := 2 + rng.Intn(4)
		p, err := KWay(g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		return p.EdgeCut(g) <= Hash(g, k).EdgeCut(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKWay8(b *testing.B) {
	g := graph.WebGoogle.Generate(128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KWay(g, 8, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
