// Package partition provides graph partitioning for distributed GNN
// training. The paper uses METIS to split the input graph into one balanced
// partition per GPU while minimizing cross-partition edges; this package
// implements the same objective with a from-scratch multilevel k-way
// partitioner (heavy-edge-matching coarsening, greedy growing initial
// partitioning, boundary FM refinement), a hierarchical mode that prioritizes
// cut reduction on slow inter-machine links, and simple hash/range baselines.
package partition

import (
	"fmt"
	"math/rand"

	"dgcl/internal/graph"
)

// Partition assigns every vertex of a graph to one of K parts.
type Partition struct {
	K      int
	Assign []int32 // vertex -> part in [0,K)
}

// Options configures the multilevel partitioner.
type Options struct {
	Seed       int64   // PRNG seed; same seed => same partition
	Imbalance  float64 // allowed load imbalance, e.g. 0.05 for 5%; default 0.05
	CoarsenTo  int     // stop coarsening below this many vertices; default 30*k
	Refinement int     // max refinement passes per level; default 8
}

func (o Options) withDefaults(k int) Options {
	if o.Imbalance <= 0 {
		o.Imbalance = 0.05
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 30 * k
	}
	if o.CoarsenTo < 4*k {
		o.CoarsenTo = 4 * k
	}
	if o.Refinement <= 0 {
		o.Refinement = 8
	}
	return o
}

// KWay partitions g into k balanced parts minimizing edge cut, treating g as
// undirected (edges are symmetrized internally for the cut objective).
func KWay(g *graph.Graph, k int, opts Options) (*Partition, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	n := g.NumVertices()
	if n == 0 {
		return &Partition{K: k, Assign: nil}, nil
	}
	if k == 1 {
		return &Partition{K: 1, Assign: make([]int32, n)}, nil
	}
	if k > n {
		return nil, fmt.Errorf("partition: k=%d exceeds vertex count %d", k, n)
	}
	opts = opts.withDefaults(k)
	rng := rand.New(rand.NewSource(opts.Seed))
	wg := fromGraph(g)
	assign := multilevel(wg, k, opts, rng)
	return &Partition{K: k, Assign: assign}, nil
}

// Hash partitions by vertex id modulo k (a common naive baseline).
func Hash(g *graph.Graph, k int) *Partition {
	n := g.NumVertices()
	assign := make([]int32, n)
	for v := 0; v < n; v++ {
		assign[v] = int32(v % k)
	}
	return &Partition{K: k, Assign: assign}
}

// Range partitions by contiguous vertex ranges of equal size.
func Range(g *graph.Graph, k int) *Partition {
	n := g.NumVertices()
	assign := make([]int32, n)
	for v := 0; v < n; v++ {
		p := v * k / n
		if p >= k {
			p = k - 1
		}
		assign[v] = int32(p)
	}
	return &Partition{K: k, Assign: assign}
}

// Hierarchical performs two-level partitioning for multi-machine clusters:
// the graph is first split across machines (minimizing slow cross-machine
// edges), then each machine's subgraph is split across its GPUs. gpusPer
// lists the GPU count of each machine; the returned partition numbers parts
// machine-major (machine 0's GPUs first).
func Hierarchical(g *graph.Graph, gpusPer []int, opts Options) (*Partition, error) {
	m := len(gpusPer)
	if m == 0 {
		return nil, fmt.Errorf("partition: no machines")
	}
	total := 0
	for _, c := range gpusPer {
		if c < 1 {
			return nil, fmt.Errorf("partition: machine with %d GPUs", c)
		}
		total += c
	}
	if m == 1 {
		return KWay(g, gpusPer[0], opts)
	}
	top, err := KWay(g, m, opts)
	if err != nil {
		return nil, err
	}
	assign := make([]int32, g.NumVertices())
	base := 0
	for mi := 0; mi < m; mi++ {
		var members []int32
		for v, p := range top.Assign {
			if int(p) == mi {
				members = append(members, int32(v))
			}
		}
		if len(members) == 0 {
			base += gpusPer[mi]
			continue
		}
		sub, orig := g.InducedSubgraph(members)
		k := gpusPer[mi]
		if k > sub.NumVertices() {
			k = sub.NumVertices()
		}
		subOpts := opts
		subOpts.Seed = opts.Seed + int64(mi) + 1
		sp, err := KWay(sub, k, subOpts)
		if err != nil {
			return nil, err
		}
		for sv, p := range sp.Assign {
			assign[orig[sv]] = int32(base) + p
		}
		base += gpusPer[mi]
	}
	return &Partition{K: total, Assign: assign}, nil
}

// EdgeCut returns the number of directed edges of g whose endpoints are in
// different parts.
func (p *Partition) EdgeCut(g *graph.Graph) int64 {
	var cut int64
	for u := 0; u < g.NumVertices(); u++ {
		pu := p.Assign[u]
		for _, v := range g.Neighbors(int32(u)) {
			if p.Assign[v] != pu {
				cut++
			}
		}
	}
	return cut
}

// Sizes returns the number of vertices per part.
func (p *Partition) Sizes() []int {
	sizes := make([]int, p.K)
	for _, a := range p.Assign {
		sizes[a]++
	}
	return sizes
}

// Balance returns max part size divided by the mean part size (1.0 =
// perfectly balanced).
func (p *Partition) Balance() float64 {
	if len(p.Assign) == 0 {
		return 1
	}
	sizes := p.Sizes()
	maxSz := 0
	for _, s := range sizes {
		if s > maxSz {
			maxSz = s
		}
	}
	return float64(maxSz) * float64(p.K) / float64(len(p.Assign))
}

// Validate checks internal consistency of the partition against g.
func (p *Partition) Validate(g *graph.Graph) error {
	if len(p.Assign) != g.NumVertices() {
		return fmt.Errorf("partition: %d assignments for %d vertices", len(p.Assign), g.NumVertices())
	}
	for v, a := range p.Assign {
		if a < 0 || int(a) >= p.K {
			return fmt.Errorf("partition: vertex %d assigned to invalid part %d (K=%d)", v, a, p.K)
		}
	}
	return nil
}

// Members returns the vertices of each part, in ascending order.
func (p *Partition) Members() [][]int32 {
	out := make([][]int32, p.K)
	for v, a := range p.Assign {
		out[a] = append(out[a], int32(v))
	}
	return out
}
