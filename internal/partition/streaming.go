package partition

import (
	"math/rand"

	"dgcl/internal/graph"
)

// Streaming implements the linear deterministic greedy (LDG) streaming
// partitioner: vertices arrive one at a time (in randomized order) and each
// goes to the part with the most already-placed neighbors, discounted by
// how full the part is. One pass, O(|E|), no coarsening — the quality point
// between hash and multilevel that streaming systems use when the graph
// cannot be held in memory.
func Streaming(g *graph.Graph, k int, seed int64) *Partition {
	n := g.NumVertices()
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	if k < 1 {
		k = 1
	}
	capacity := float64(n)/float64(k) + 1
	sizes := make([]float64, k)
	order := rand.New(rand.NewSource(seed)).Perm(n)
	scores := make([]float64, k)
	for _, vi := range order {
		v := int32(vi)
		for p := range scores {
			scores[p] = 0
		}
		for _, u := range g.Neighbors(v) {
			if a := assign[u]; a >= 0 {
				scores[a]++
			}
		}
		best, bestScore := 0, -1.0
		for p := 0; p < k; p++ {
			s := (scores[p] + 1) * (1 - sizes[p]/capacity)
			if s > bestScore {
				best, bestScore = p, s
			}
		}
		assign[v] = int32(best)
		sizes[best]++
	}
	return &Partition{K: k, Assign: assign}
}
