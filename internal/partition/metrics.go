package partition

import (
	"fmt"

	"dgcl/internal/graph"
)

// CommVolume returns the total communication volume of one graphAllgather
// under the partition, in vertex copies: for every part, the number of
// distinct vertices of other parts its vertices reference. Unlike the edge
// cut, a boundary vertex referenced by many edges of the same remote part
// counts once — this is exactly |∪ V_r_d| summed over GPUs, the quantity the
// paper's communication relation moves.
func CommVolume(g *graph.Graph, p *Partition) int64 {
	seen := make([]map[int32]bool, p.K)
	for d := range seen {
		seen[d] = make(map[int32]bool)
	}
	for u := 0; u < g.NumVertices(); u++ {
		du := p.Assign[u]
		for _, v := range g.Neighbors(int32(u)) {
			if p.Assign[v] != du {
				seen[du][v] = true
			}
		}
	}
	var total int64
	for d := range seen {
		total += int64(len(seen[d]))
	}
	return total
}

// ReplicationHalo returns per-part halo sizes: the number of distinct remote
// vertices each part references (its 1-hop halo), from which the 1-hop
// replication factor follows directly.
func ReplicationHalo(g *graph.Graph, p *Partition) []int {
	seen := make([]map[int32]bool, p.K)
	for d := range seen {
		seen[d] = make(map[int32]bool)
	}
	for u := 0; u < g.NumVertices(); u++ {
		du := p.Assign[u]
		for _, v := range g.Neighbors(int32(u)) {
			if p.Assign[v] != du {
				seen[du][v] = true
			}
		}
	}
	out := make([]int, p.K)
	for d := range seen {
		out[d] = len(seen[d])
	}
	return out
}

// Quality bundles the metrics a partitioning is judged by.
type Quality struct {
	EdgeCut    int64
	CutPercent float64
	CommVolume int64
	Balance    float64
}

// Evaluate computes the quality metrics of p over g.
func Evaluate(g *graph.Graph, p *Partition) Quality {
	cut := p.EdgeCut(g)
	pct := 0.0
	if g.NumEdges() > 0 {
		pct = 100 * float64(cut) / float64(g.NumEdges())
	}
	return Quality{
		EdgeCut:    cut,
		CutPercent: pct,
		CommVolume: CommVolume(g, p),
		Balance:    p.Balance(),
	}
}

// String renders the quality metrics.
func (q Quality) String() string {
	return fmt.Sprintf("cut %d (%.1f%%), comm volume %d, balance %.3f",
		q.EdgeCut, q.CutPercent, q.CommVolume, q.Balance)
}
