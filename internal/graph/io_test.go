package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment line
10	20
20	30

10	30
`
	g, remap, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if remap[10] != 0 || remap[20] != 1 || remap[30] != 2 {
		t.Fatalf("remap=%v", remap)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Fatal("edges missing after remap")
	}
}

func TestReadEdgeListDedups(t *testing.T) {
	g, _, err := ReadEdgeList(strings.NewReader("1 2\n1 2\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges=%d want deduped 1", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"justonefield\n",
		"a b\n",
		"1 b\n",
		"-1 2\n",
	}
	for _, c := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := Grid2D(5, 5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, remap, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip changed shape: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	// Ids are remapped by first appearance; translate through the mapping.
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if !g2.HasEdge(remap[int64(u)], remap[int64(v)]) {
				t.Fatalf("edge (%d,%d) lost in roundtrip", u, v)
			}
		}
	}
}

func TestSubsample(t *testing.T) {
	g := ErdosRenyi(1000, 5000, 1)
	sub, orig := Subsample(g, 0.3)
	if sub.NumVertices() != len(orig) {
		t.Fatal("size mismatch")
	}
	frac := float64(sub.NumVertices()) / float64(g.NumVertices())
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("kept fraction %f far from 0.3", frac)
	}
	// Deterministic.
	sub2, _ := Subsample(g, 0.3)
	if sub2.NumVertices() != sub.NumVertices() {
		t.Fatal("subsample not deterministic")
	}
	// frac >= 1 keeps everything.
	all, _ := Subsample(g, 1.0)
	if all.NumVertices() != g.NumVertices() || all.NumEdges() != g.NumEdges() {
		t.Fatal("frac=1 should keep the whole graph")
	}
}
