// Package graph provides the compressed-sparse-row graph substrate used by
// every other DGCL component: the data graphs that GNN models train on, the
// synthetic dataset generators standing in for the paper's Reddit, Com-Orkut,
// Web-Google and Wiki-Talk graphs, and basic traversal utilities (k-hop
// neighborhoods, connectivity) needed by partitioning and replication.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a directed graph in CSR (compressed sparse row) form. Vertices are
// dense integers [0, NumVertices). Edge (u,v) means "v's embedding flows to u
// during aggregation", i.e. v ∈ N(u); this matches the paper's convention
// where computing h_u requires the embeddings of u's in-neighbors.
//
// A Graph is immutable after construction; all methods are safe for
// concurrent readers.
type Graph struct {
	offsets []int64 // len = NumVertices()+1
	targets []int32 // len = NumEdges(); neighbors of u are targets[offsets[u]:offsets[u+1]]
}

// NewCSR wraps pre-built CSR arrays. offsets must be non-decreasing with
// offsets[0]==0 and len(targets)==offsets[len(offsets)-1]; targets must be in
// range. It returns an error describing the first violation found.
func NewCSR(offsets []int64, targets []int32) (*Graph, error) {
	if len(offsets) == 0 || offsets[0] != 0 {
		return nil, fmt.Errorf("graph: offsets must start with 0")
	}
	n := len(offsets) - 1
	for i := 0; i < n; i++ {
		if offsets[i+1] < offsets[i] {
			return nil, fmt.Errorf("graph: offsets decrease at vertex %d", i)
		}
	}
	if int64(len(targets)) != offsets[n] {
		return nil, fmt.Errorf("graph: len(targets)=%d but offsets end at %d", len(targets), offsets[n])
	}
	for i, t := range targets {
		if t < 0 || int(t) >= n {
			return nil, fmt.Errorf("graph: target %d at position %d out of range [0,%d)", t, i, n)
		}
	}
	return &Graph{offsets: offsets, targets: targets}, nil
}

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst int32
}

// FromEdges builds a CSR graph with n vertices from an edge list. Duplicate
// edges are kept unless dedup is true; self loops are kept. Neighbor lists
// are sorted ascending.
func FromEdges(n int, edges []Edge, dedup bool) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	deg := make([]int64, n+1)
	for _, e := range edges {
		if e.Src < 0 || int(e.Src) >= n || e.Dst < 0 || int(e.Dst) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.Src, e.Dst, n)
		}
		deg[e.Src+1]++
	}
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	targets := make([]int32, len(edges))
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		targets[cursor[e.Src]] = e.Dst
		cursor[e.Src]++
	}
	for u := 0; u < n; u++ {
		nbrs := targets[offsets[u]:offsets[u+1]]
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	}
	g := &Graph{offsets: offsets, targets: targets}
	if dedup {
		g = g.dedup()
	}
	return g, nil
}

// MustFromEdges is FromEdges that panics on error; for tests and generators
// whose inputs are correct by construction.
func MustFromEdges(n int, edges []Edge, dedup bool) *Graph {
	g, err := FromEdges(n, edges, dedup)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) dedup() *Graph {
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	targets := make([]int32, 0, len(g.targets))
	for u := 0; u < n; u++ {
		var prev int32 = -1
		for _, v := range g.Neighbors(int32(u)) {
			if v != prev {
				targets = append(targets, v)
				prev = v
			}
		}
		offsets[u+1] = int64(len(targets))
	}
	return &Graph{offsets: offsets, targets: targets}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int64 { return g.offsets[g.NumVertices()] }

// Degree returns the out-degree (number of stored neighbors) of u.
func (g *Graph) Degree(u int32) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors returns the neighbor list of u as a shared slice; callers must
// not modify it.
func (g *Graph) Neighbors(u int32) []int32 {
	return g.targets[g.offsets[u]:g.offsets[u+1]]
}

// HasEdge reports whether the directed edge (u,v) exists, by binary search.
func (g *Graph) HasEdge(u, v int32) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

// Reverse returns the transpose graph (every edge flipped). For symmetric
// graphs the result equals the input.
func (g *Graph) Reverse() *Graph {
	n := g.NumVertices()
	deg := make([]int64, n+1)
	for _, v := range g.targets {
		deg[v+1]++
	}
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	targets := make([]int32, len(g.targets))
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			targets[cursor[v]] = int32(u)
			cursor[v]++
		}
	}
	for u := 0; u < n; u++ {
		nbrs := targets[offsets[u]:offsets[u+1]]
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	}
	return &Graph{offsets: offsets, targets: targets}
}

// Symmetrize returns the undirected closure: for every edge (u,v) both (u,v)
// and (v,u) exist exactly once in the result.
func (g *Graph) Symmetrize() *Graph {
	edges := make([]Edge, 0, 2*len(g.targets))
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			edges = append(edges, Edge{int32(u), v}, Edge{v, int32(u)})
		}
	}
	return MustFromEdges(n, edges, true)
}

// IsSymmetric reports whether for every edge (u,v) the edge (v,u) exists.
func (g *Graph) IsSymmetric() bool {
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if !g.HasEdge(v, int32(u)) {
				return false
			}
		}
	}
	return true
}

// Stats summarizes a graph the way Table 4 of the paper does.
type Stats struct {
	Vertices  int
	Edges     int64
	AvgDegree float64
	MaxDegree int
}

// ComputeStats returns summary statistics for g.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Vertices: g.NumVertices(), Edges: g.NumEdges(), AvgDegree: g.AvgDegree()}
	for u := 0; u < g.NumVertices(); u++ {
		if d := g.Degree(int32(u)); d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	return s
}

// KHopNeighborhood returns the set of vertices reachable from the seed set
// within at most k hops following edges (excluding or including the seeds per
// includeSeeds). The result is returned as a sorted slice.
func (g *Graph) KHopNeighborhood(seeds []int32, k int, includeSeeds bool) []int32 {
	visited := make(map[int32]bool, len(seeds)*4)
	frontier := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if !visited[s] {
			visited[s] = true
			frontier = append(frontier, s)
		}
	}
	for hop := 0; hop < k; hop++ {
		var next []int32
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if !visited[v] {
					visited[v] = true
					next = append(next, v)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	if !includeSeeds {
		for _, s := range seeds {
			delete(visited, s)
		}
	}
	out := make([]int32, 0, len(visited))
	for v := range visited {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConnectedComponents returns, for the undirected interpretation of g, a
// component id per vertex and the number of components. Useful to sanity
// check generators and partitioner inputs.
func (g *Graph) ConnectedComponents() ([]int32, int) {
	n := g.NumVertices()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	rev := g
	if !g.IsSymmetric() {
		rev = g.Reverse()
	}
	var id int32
	queue := make([]int32, 0, 1024)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = id
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if comp[v] < 0 {
					comp[v] = id
					queue = append(queue, v)
				}
			}
			if rev != g {
				for _, v := range rev.Neighbors(u) {
					if comp[v] < 0 {
						comp[v] = id
						queue = append(queue, v)
					}
				}
			}
		}
		id++
	}
	return comp, int(id)
}

// InducedSubgraph returns the subgraph induced by the given vertices together
// with the mapping from new ids to original ids. Edges to vertices outside
// the set are dropped.
func (g *Graph) InducedSubgraph(vertices []int32) (*Graph, []int32) {
	remap := make(map[int32]int32, len(vertices))
	orig := make([]int32, len(vertices))
	for i, v := range vertices {
		remap[v] = int32(i)
		orig[i] = v
	}
	var edges []Edge
	for i, v := range vertices {
		for _, w := range g.Neighbors(v) {
			if j, ok := remap[w]; ok {
				edges = append(edges, Edge{int32(i), j})
			}
		}
	}
	return MustFromEdges(len(vertices), edges, false), orig
}
