package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Generators for synthetic graphs. These stand in for the paper's datasets
// (Table 4): the communication behaviour that drives the evaluation depends
// on cut structure and degree skew, which the generators reproduce, not on
// the exact edge identities of the original crawls.

// RMAT generates a scale-free directed graph with n vertices (rounded up to a
// power of two internally, then trimmed) and m edges using the recursive
// matrix method with parameters a,b,c (d = 1-a-b-c). Typical Kronecker
// parameters a=0.57,b=0.19,c=0.19 give a power-law degree distribution like
// web and interaction graphs.
func RMAT(n int, m int64, a, b, c float64, seed int64) *Graph {
	if a+b+c >= 1 || a <= 0 || b < 0 || c < 0 {
		panic(fmt.Sprintf("graph: bad RMAT parameters a=%v b=%v c=%v", a, b, c))
	}
	levels := 0
	for (1 << levels) < n {
		levels++
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for int64(len(edges)) < m {
		u, v := 0, 0
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: no bits set
			case r < a+b:
				v |= 1 << l
			case r < a+b+c:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u >= n || v >= n || u == v {
			continue
		}
		edges = append(edges, Edge{int32(u), int32(v)})
	}
	return MustFromEdges(n, edges, true)
}

// CommunityGraph generates a dense undirected community-structured graph:
// vertices are grouped into communities of geometrically distributed size and
// most edges are intra-community, like the paper's Reddit (posts linked via
// shared commenters) and Com-Orkut (friendship) graphs. avgDeg controls edge
// volume; pIntra is the fraction of edges that stay within a community.
func CommunityGraph(n int, avgDeg float64, numCommunities int, pIntra float64, seed int64) *Graph {
	if numCommunities < 1 {
		numCommunities = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// Assign vertices to communities with skewed (Zipf-ish) sizes.
	comm := make([]int32, n)
	weights := make([]float64, numCommunities)
	var total float64
	for i := range weights {
		weights[i] = 1.0 / float64(i+1)
		total += weights[i]
	}
	// Cumulative distribution for community pick.
	cum := make([]float64, numCommunities)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	members := make([][]int32, numCommunities)
	for v := 0; v < n; v++ {
		r := rng.Float64()
		c := 0
		for c < numCommunities-1 && cum[c] < r {
			c++
		}
		comm[v] = int32(c)
		members[c] = append(members[c], int32(v))
	}
	m := int64(float64(n) * avgDeg / 2) // undirected edge pairs
	edges := make([]Edge, 0, 2*m)
	for int64(len(edges)) < 2*m {
		u := int32(rng.Intn(n))
		var v int32
		if rng.Float64() < pIntra {
			mem := members[comm[u]]
			if len(mem) < 2 {
				continue
			}
			v = mem[rng.Intn(len(mem))]
		} else {
			v = int32(rng.Intn(n))
		}
		if u == v {
			continue
		}
		edges = append(edges, Edge{u, v}, Edge{v, u})
	}
	return MustFromEdges(n, edges, true)
}

// LocalityGraph generates a sparse undirected graph with strong locality and
// power-law degrees, like web graphs: vertices sit on a ring and each vertex
// draws its neighbors at Pareto-distributed ring distances, so most edges
// are short-range (small METIS cut, bounded k-hop growth) with a heavy tail
// of long-range links.
func LocalityGraph(n int, avgDeg float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	deg := zipfDegrees(n, avgDeg/2, 2.1, rng)
	// 20% of links are uniform long-range (cross-site hyperlinks); the rest
	// follow a Pareto ring distance (within-site locality).
	const qUniform = 0.2
	edges := make([]Edge, 0, int(float64(n)*avgDeg))
	for u := 0; u < n; u++ {
		for i := 0; i < deg[u]; i++ {
			var v int
			if rng.Float64() < qUniform {
				v = rng.Intn(n)
			} else {
				d := int(math.Pow(1-rng.Float64(), -1/1.3))
				if d >= n/2 {
					d = n / 2
				}
				if d < 1 {
					d = 1
				}
				v = u + d
				if rng.Intn(2) == 0 {
					v = u - d
				}
				v = ((v % n) + n) % n
			}
			if v == u {
				continue
			}
			edges = append(edges, Edge{int32(u), int32(v)}, Edge{int32(v), int32(u)})
		}
	}
	return MustFromEdges(n, edges, true)
}

// SuperlinearPA generates an undirected graph by superlinear preferential
// attachment: each new vertex attaches to the higher-degree of two
// degree-proportional samples, which condenses attachment onto a few
// Θ(n)-degree hubs — the structure of interaction graphs like Wiki-Talk,
// where a handful of admins/bots touch a constant fraction of all users and
// the 2-hop neighborhood of any sizable vertex set covers most of the graph.
func SuperlinearPA(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]int32, 0, 2*n)
	degree := make([]int, n)
	edges := make([]Edge, 0, 2*n)
	addEdge := func(u, v int32) {
		edges = append(edges, Edge{u, v}, Edge{v, u})
		pool = append(pool, u, v)
		degree[u]++
		degree[v]++
	}
	addEdge(1, 0)
	for v := 2; v < n; v++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		t := a
		if degree[b] > degree[a] {
			t = b
		}
		if int(t) == v {
			t = int32(rng.Intn(v))
		}
		addEdge(int32(v), t)
	}
	return MustFromEdges(n, edges, true)
}

// PreferentialAttachment generates a Barabási–Albert style undirected graph
// where each new vertex attaches to k existing vertices chosen proportionally
// to degree. Produces heavy-tailed sparse graphs like Wiki-Talk.
func PreferentialAttachment(n, k int, seed int64) *Graph {
	if k < 1 {
		k = 1
	}
	if n < k+1 {
		n = k + 1
	}
	rng := rand.New(rand.NewSource(seed))
	// targetsPool holds one entry per edge endpoint; sampling uniformly from
	// it is sampling proportional to degree.
	pool := make([]int32, 0, 2*n*k)
	edges := make([]Edge, 0, 2*n*k)
	for v := 1; v <= k; v++ {
		edges = append(edges, Edge{int32(v), 0}, Edge{0, int32(v)})
		pool = append(pool, int32(v), 0)
	}
	for v := k + 1; v < n; v++ {
		chosen := make(map[int32]bool, k)
		for len(chosen) < k {
			var t int32
			if rng.Float64() < 0.9 {
				t = pool[rng.Intn(len(pool))]
			} else {
				t = int32(rng.Intn(v))
			}
			if int(t) != v {
				chosen[t] = true
			}
		}
		// Iterate the chosen targets in sorted order: the pool's element
		// order feeds the degree-proportional sampling above, so map
		// iteration order would make the seeded generator nondeterministic
		// across runs.
		targets := make([]int32, 0, len(chosen))
		for t := range chosen {
			targets = append(targets, t)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		for _, t := range targets {
			edges = append(edges, Edge{int32(v), t}, Edge{t, int32(v)})
			pool = append(pool, int32(v), t)
		}
	}
	return MustFromEdges(n, edges, true)
}

// Grid2D generates an r×c grid graph (each vertex connected to its 4
// neighbors), useful for tests with predictable structure.
func Grid2D(r, c int) *Graph {
	var edges []Edge
	id := func(i, j int) int32 { return int32(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if i+1 < r {
				edges = append(edges, Edge{id(i, j), id(i+1, j)}, Edge{id(i+1, j), id(i, j)})
			}
			if j+1 < c {
				edges = append(edges, Edge{id(i, j), id(i, j+1)}, Edge{id(i, j+1), id(i, j)})
			}
		}
	}
	return MustFromEdges(r*c, edges, true)
}

// Ring generates a cycle of n vertices (undirected), minimal connected test
// structure.
func Ring(n int) *Graph {
	edges := make([]Edge, 0, 2*n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		edges = append(edges, Edge{int32(i), int32(j)}, Edge{int32(j), int32(i)})
	}
	return MustFromEdges(n, edges, true)
}

// ErdosRenyi generates a G(n, m) random directed graph.
func ErdosRenyi(n int, m int64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for int64(len(edges)) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u != v {
			edges = append(edges, Edge{u, v})
		}
	}
	return MustFromEdges(n, edges, true)
}

// zipfDegrees draws n degrees following a truncated power law with the given
// exponent and mean approximately avg.
func zipfDegrees(n int, avg float64, exponent float64, rng *rand.Rand) []int {
	deg := make([]int, n)
	var sum float64
	for i := range deg {
		u := rng.Float64()
		// Inverse-CDF sampling of a Pareto distribution, truncated.
		d := math.Pow(1-u, -1/(exponent-1))
		if d > float64(n)/4 {
			d = float64(n) / 4
		}
		deg[i] = int(d)
		sum += d
	}
	scale := avg * float64(n) / sum
	for i := range deg {
		deg[i] = int(float64(deg[i])*scale + 0.5)
		if deg[i] < 1 {
			deg[i] = 1
		}
	}
	return deg
}

// ChungLu generates an undirected graph whose expected degree sequence
// follows a truncated power law with the given average degree; used for
// web-like graphs.
func ChungLu(n int, avgDeg float64, exponent float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	deg := zipfDegrees(n, avgDeg, exponent, rng)
	// Endpoint pool proportional to desired degree.
	var pool []int32
	for v, d := range deg {
		for i := 0; i < d; i++ {
			pool = append(pool, int32(v))
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	edges := make([]Edge, 0, len(pool))
	for i := 0; i+1 < len(pool); i += 2 {
		u, v := pool[i], pool[i+1]
		if u != v {
			edges = append(edges, Edge{u, v}, Edge{v, u})
		}
	}
	return MustFromEdges(n, edges, true)
}
