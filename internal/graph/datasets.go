package graph

import "fmt"

// Dataset describes one of the paper's four evaluation graphs (Table 4)
// together with the model dimensions used for it.
type Dataset struct {
	Name       string
	Vertices   int     // full-size vertex count
	Edges      int64   // full-size directed edge count
	AvgDegree  float64 // Table 4
	FeatureDim int     // input feature size
	HiddenDim  int     // hidden layer size
	Dense      bool    // community-structured (Reddit, Com-Orkut) vs power-law sparse
}

// The four datasets from Table 4 of the paper.
var (
	Reddit    = Dataset{Name: "Reddit", Vertices: 230_000, Edges: 110_000_000, AvgDegree: 478, FeatureDim: 602, HiddenDim: 256, Dense: true}
	ComOrkut  = Dataset{Name: "Com-Orkut", Vertices: 3_070_000, Edges: 117_000_000, AvgDegree: 38.1, FeatureDim: 128, HiddenDim: 128, Dense: true}
	WebGoogle = Dataset{Name: "Web-Google", Vertices: 870_000, Edges: 5_100_000, AvgDegree: 5.86, FeatureDim: 256, HiddenDim: 256, Dense: false}
	WikiTalk  = Dataset{Name: "Wiki-Talk", Vertices: 2_390_000, Edges: 5_000_000, AvgDegree: 2.09, FeatureDim: 256, HiddenDim: 256, Dense: false}
)

// AllDatasets lists the paper's datasets in the order they appear in Table 4.
var AllDatasets = []Dataset{Reddit, ComOrkut, WebGoogle, WikiTalk}

// DatasetByName returns the dataset with the given (case-sensitive) name.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range AllDatasets {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("graph: unknown dataset %q", name)
}

// Generate synthesizes a graph matching the dataset's statistics at 1/scale
// size: vertices and edges are divided by scale while the average degree is
// preserved as closely as possible. scale=1 produces the full-size graph.
// Generation is deterministic for a given (dataset, scale, seed).
func (d Dataset) Generate(scale int, seed int64) *Graph {
	if scale < 1 {
		scale = 1
	}
	n := d.Vertices / scale
	if n < 64 {
		n = 64
	}
	m := int64(float64(n) * d.AvgDegree)
	switch d.Name {
	case Reddit.Name:
		// Post-to-post graph: very dense with strong community structure.
		return CommunityGraph(n, d.AvgDegree, max(8, n/600), 0.85, seed)
	case ComOrkut.Name:
		// Social network: dense-ish communities, moderate degree.
		return CommunityGraph(n, d.AvgDegree, max(16, n/2000), 0.75, seed^0x6f726b)
	case WebGoogle.Name:
		// Web graph: sparse power law with strong link locality (web sites
		// link within their neighborhood), so k-hop neighborhoods grow
		// slowly and METIS finds small cuts — both essential to the paper's
		// Web-Google results (Figure 4, Figure 7).
		return LocalityGraph(n, d.AvgDegree, seed^0x676f6f)
	case WikiTalk.Name:
		// Interaction graph: very sparse but condensed onto Θ(n)-degree hub
		// users, so 2-hop replication covers nearly the whole graph (the
		// reason Replication OOMs on Wiki-Talk in Figure 7).
		return SuperlinearPA(n, seed^0x77696b)
	default:
		return RMAT(n, m, 0.57, 0.19, 0.19, seed)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
