package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge-list I/O in the SNAP text format the paper's datasets ship in: one
// "src<TAB>dst" pair per line, '#' comments ignored. Vertex ids may be
// arbitrary non-negative integers; they are densified on read.

// ReadEdgeList parses a SNAP-style edge list. Vertex ids are remapped to a
// dense [0,n) range in first-appearance order; the mapping is returned so
// callers can translate back. Malformed lines produce an error naming the
// line number.
func ReadEdgeList(r io.Reader) (*Graph, map[int64]int32, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	remap := make(map[int64]int32)
	var edges []Edge
	intern := func(raw int64) int32 {
		if id, ok := remap[raw]; ok {
			return id
		}
		id := int32(len(remap))
		remap[raw] = id
		return id
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want 'src dst', got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad src %q: %v", lineNo, fields[0], err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad dst %q: %v", lineNo, fields[1], err)
		}
		if src < 0 || dst < 0 {
			return nil, nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		edges = append(edges, Edge{intern(src), intern(dst)})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: read: %w", err)
	}
	g, err := FromEdges(len(remap), edges, true)
	if err != nil {
		return nil, nil, err
	}
	return g, remap, nil
}

// WriteEdgeList emits the graph as a SNAP-style edge list with a header
// comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# Nodes: %d Edges: %d\n", g.NumVertices(), g.NumEdges())
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(int32(u)) {
			fmt.Fprintf(bw, "%d\t%d\n", u, v)
		}
	}
	return bw.Flush()
}

// Subsample returns the subgraph induced on a deterministic pseudo-random
// fraction of the vertices (hash-based so no RNG state is needed), together
// with the kept vertex ids. Useful for scaling down real edge lists the way
// the generators scale down the synthetic ones.
func Subsample(g *Graph, frac float64) (*Graph, []int32) {
	if frac >= 1 {
		all := make([]int32, g.NumVertices())
		for i := range all {
			all[i] = int32(i)
		}
		sub, _ := g.InducedSubgraph(all)
		return sub, all
	}
	threshold := uint32(frac * float64(1<<32-1))
	var keep []int32
	for v := 0; v < g.NumVertices(); v++ {
		// xorshift-style hash of the vertex id.
		h := uint32(v) * 2654435761
		h ^= h >> 16
		h *= 2246822519
		h ^= h >> 13
		if h <= threshold {
			keep = append(keep, int32(v))
		}
	}
	sub, orig := g.InducedSubgraph(keep)
	return sub, orig
}
