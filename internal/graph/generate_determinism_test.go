package graph

import "testing"

// Regression test: PreferentialAttachment used to iterate a map of chosen
// targets while building both the edge list and the degree-proportional
// sampling pool, so the same seed produced different graphs across runs
// (the pool's element order biases every later sample). The generator must
// be a pure function of its arguments.
func TestPreferentialAttachmentDeterministic(t *testing.T) {
	const n, k, seed = 300, 4, 42
	a := PreferentialAttachment(n, k, seed)
	b := PreferentialAttachment(n, k, seed)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape differs across runs: %d/%d vertices, %d/%d edges",
			a.NumVertices(), b.NumVertices(), a.NumEdges(), b.NumEdges())
	}
	for u := int32(0); int(u) < a.NumVertices(); u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			t.Fatalf("vertex %d: degree %d vs %d across identical-seed runs", u, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d: neighbor %d differs (%d vs %d) across identical-seed runs",
					u, i, na[i], nb[i])
			}
		}
	}
}

// The generators are seeded: different seeds should not collapse to the same
// graph (sanity check that determinism did not come from ignoring the seed).
func TestPreferentialAttachmentSeedSensitive(t *testing.T) {
	a := PreferentialAttachment(300, 4, 1)
	b := PreferentialAttachment(300, 4, 2)
	same := a.NumEdges() == b.NumEdges()
	if same {
		for u := int32(0); int(u) < a.NumVertices() && same; u++ {
			na, nb := a.Neighbors(u), b.Neighbors(u)
			if len(na) != len(nb) {
				same = false
				break
			}
			for i := range na {
				if na[i] != nb[i] {
					same = false
					break
				}
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical graphs; generator ignores its seed")
	}
}
