package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList: the SNAP parser must never panic, and any successfully
// parsed graph must round-trip through WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("# comment\n10\t20\n")
	f.Add("")
	f.Add("a b\n")
	f.Add("9999999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, _, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, _, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("reread failed: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("roundtrip changed shape")
		}
	})
}
