package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCSRValidation(t *testing.T) {
	tests := []struct {
		name    string
		offsets []int64
		targets []int32
		wantErr bool
	}{
		{"empty graph", []int64{0}, nil, false},
		{"single vertex no edges", []int64{0, 0}, nil, false},
		{"valid two vertices", []int64{0, 1, 2}, []int32{1, 0}, false},
		{"no offsets", nil, nil, true},
		{"nonzero start", []int64{1, 2}, []int32{0}, true},
		{"decreasing offsets", []int64{0, 2, 1}, []int32{1, 0}, true},
		{"target count mismatch", []int64{0, 2}, []int32{0}, true},
		{"target out of range", []int64{0, 1}, []int32{5}, true},
		{"negative target", []int64{0, 1}, []int32{-1}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCSR(tc.offsets, tc.targets)
			if (err != nil) != tc.wantErr {
				t.Fatalf("NewCSR() err=%v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

func TestFromEdgesBasics(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 2}, {3, 0}}, false)
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices=%d want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges=%d want 4", g.NumEdges())
	}
	if got := g.Neighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Neighbors(0)=%v want [1 2]", got)
	}
	if g.Degree(3) != 1 || g.Degree(2) != 0 {
		t.Fatalf("unexpected degrees: deg(3)=%d deg(2)=%d", g.Degree(3), g.Degree(2))
	}
	if !g.HasEdge(0, 2) || g.HasEdge(2, 0) {
		t.Fatal("HasEdge gave wrong answers")
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}, false); err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
	if _, err := FromEdges(-1, nil, false); err == nil {
		t.Fatal("expected error for negative n")
	}
}

func TestDedup(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}, {0, 1}, {0, 2}, {0, 1}}, true)
	if got := g.Neighbors(0); len(got) != 2 {
		t.Fatalf("dedup failed: neighbors=%v", got)
	}
}

func TestReverse(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}, {0, 2}, {1, 2}}, false)
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 0) || !r.HasEdge(2, 1) {
		t.Fatal("Reverse missing flipped edges")
	}
	if r.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", r.NumEdges(), g.NumEdges())
	}
	rr := r.Reverse()
	for u := 0; u < g.NumVertices(); u++ {
		a, b := g.Neighbors(int32(u)), rr.Neighbors(int32(u))
		if len(a) != len(b) {
			t.Fatalf("double reverse changed degree of %d", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("double reverse changed neighbors of %d", u)
			}
		}
	}
}

func TestSymmetrize(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}, {1, 2}}, false)
	s := g.Symmetrize()
	if !s.IsSymmetric() {
		t.Fatal("Symmetrize result not symmetric")
	}
	if !s.HasEdge(1, 0) || !s.HasEdge(2, 1) {
		t.Fatal("Symmetrize missing reverse edges")
	}
}

func TestKHopNeighborhood(t *testing.T) {
	// Path graph 0-1-2-3-4.
	g := Ring(5)
	got := g.KHopNeighborhood([]int32{0}, 1, false)
	if len(got) != 2 {
		t.Fatalf("1-hop of ring vertex: %v", got)
	}
	got = g.KHopNeighborhood([]int32{0}, 2, true)
	if len(got) != 5 {
		t.Fatalf("2-hop incl seeds on 5-ring should cover all: %v", got)
	}
	got = g.KHopNeighborhood([]int32{0}, 0, false)
	if len(got) != 0 {
		t.Fatalf("0-hop excluding seeds should be empty: %v", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two disjoint triangles.
	g := MustFromEdges(6, []Edge{
		{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 0}, {0, 2},
		{3, 4}, {4, 3}, {4, 5}, {5, 4}, {5, 3}, {3, 5},
	}, false)
	comp, n := g.ConnectedComponents()
	if n != 2 {
		t.Fatalf("components=%d want 2", n)
	}
	if comp[0] != comp[1] || comp[0] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] {
		t.Fatalf("bad component assignment %v", comp)
	}
}

func TestConnectedComponentsDirected(t *testing.T) {
	// Directed chain 0->1->2 is one weakly connected component.
	g := MustFromEdges(3, []Edge{{0, 1}, {1, 2}}, false)
	_, n := g.ConnectedComponents()
	if n != 1 {
		t.Fatalf("weakly connected components=%d want 1", n)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Grid2D(3, 3)
	sub, orig := g.InducedSubgraph([]int32{0, 1, 3, 4})
	if sub.NumVertices() != 4 {
		t.Fatalf("NumVertices=%d", sub.NumVertices())
	}
	if len(orig) != 4 || orig[0] != 0 || orig[3] != 4 {
		t.Fatalf("orig mapping wrong: %v", orig)
	}
	// 0-1, 0-3, 1-4, 3-4 edges should survive, each in both directions.
	if sub.NumEdges() != 8 {
		t.Fatalf("NumEdges=%d want 8", sub.NumEdges())
	}
}

func TestGrid2DStructure(t *testing.T) {
	g := Grid2D(2, 3)
	if g.NumVertices() != 6 {
		t.Fatalf("vertices=%d", g.NumVertices())
	}
	// interior horizontal/vertical counts: edges = 2*(r*(c-1)+c*(r-1))
	if g.NumEdges() != int64(2*(2*2+3*1)) {
		t.Fatalf("edges=%d", g.NumEdges())
	}
	if !g.IsSymmetric() {
		t.Fatal("grid should be symmetric")
	}
}

func TestRingStructure(t *testing.T) {
	g := Ring(10)
	for u := 0; u < 10; u++ {
		if g.Degree(int32(u)) != 2 {
			t.Fatalf("ring degree of %d is %d", u, g.Degree(int32(u)))
		}
	}
	_, n := g.ConnectedComponents()
	if n != 1 {
		t.Fatalf("ring components=%d", n)
	}
}

func TestRMATProperties(t *testing.T) {
	g := RMAT(1024, 8192, 0.57, 0.19, 0.19, 42)
	if g.NumVertices() != 1024 {
		t.Fatalf("vertices=%d", g.NumVertices())
	}
	if g.NumEdges() < 4000 {
		t.Fatalf("RMAT produced too few edges after dedup: %d", g.NumEdges())
	}
	stats := g.ComputeStats()
	if stats.MaxDegree < 3*int(stats.AvgDegree) {
		t.Fatalf("RMAT should be skewed: max=%d avg=%f", stats.MaxDegree, stats.AvgDegree)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(256, 1024, 0.57, 0.19, 0.19, 7)
	b := RMAT(256, 1024, 0.57, 0.19, 0.19, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	for u := 0; u < 256; u++ {
		an, bn := a.Neighbors(int32(u)), b.Neighbors(int32(u))
		if len(an) != len(bn) {
			t.Fatalf("degree mismatch at %d", u)
		}
	}
}

func TestCommunityGraphSymmetricAndClustered(t *testing.T) {
	g := CommunityGraph(2000, 20, 10, 0.9, 1)
	if !g.IsSymmetric() {
		t.Fatal("community graph must be symmetric")
	}
	got := g.AvgDegree()
	if got < 10 || got > 30 {
		t.Fatalf("avg degree %f far from requested 20", got)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(2000, 2, 3)
	if !g.IsSymmetric() {
		t.Fatal("PA graph must be symmetric")
	}
	_, n := g.ConnectedComponents()
	if n != 1 {
		t.Fatalf("PA graph should be connected, got %d components", n)
	}
	s := g.ComputeStats()
	if s.MaxDegree < 20 {
		t.Fatalf("PA graph should have hubs, max degree %d", s.MaxDegree)
	}
}

func TestChungLuDegrees(t *testing.T) {
	g := ChungLu(5000, 6, 2.2, 11)
	got := g.AvgDegree()
	if got < 2 || got > 14 {
		t.Fatalf("ChungLu avg degree %f far from 6", got)
	}
	if !g.IsSymmetric() {
		t.Fatal("ChungLu must be symmetric")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(500, 2500, 5)
	if g.NumVertices() != 500 {
		t.Fatalf("vertices=%d", g.NumVertices())
	}
	if g.NumEdges() < 2000 {
		t.Fatalf("edges=%d", g.NumEdges())
	}
}

func TestDatasetGenerateScaled(t *testing.T) {
	for _, d := range AllDatasets {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			g := d.Generate(256, 99)
			n := g.NumVertices()
			if n < 64 {
				t.Fatalf("%s too small: %d", d.Name, n)
			}
			avg := g.AvgDegree()
			// Degree should be within a factor ~3 of the target for dense
			// graphs; sparse generators have min-degree floors at tiny scale.
			if d.Dense && (avg < d.AvgDegree/3 || avg > d.AvgDegree*3) {
				t.Fatalf("%s avg degree %f target %f", d.Name, avg, d.AvgDegree)
			}
		})
	}
}

func TestDatasetByName(t *testing.T) {
	d, err := DatasetByName("Reddit")
	if err != nil || d.Name != "Reddit" {
		t.Fatalf("DatasetByName(Reddit) = %v, %v", d, err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestDatasetDeterminism(t *testing.T) {
	a := Reddit.Generate(512, 3)
	b := Reddit.Generate(512, 3)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("dataset generation must be deterministic")
	}
}

// Property: FromEdges + Neighbors round-trips every edge.
func TestPropertyFromEdgesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		m := rng.Intn(200)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		g := MustFromEdges(n, edges, false)
		if g.NumEdges() != int64(m) {
			return false
		}
		for _, e := range edges {
			if !g.HasEdge(e.Src, e.Dst) {
				return false
			}
		}
		// Total degree equals edge count.
		var total int
		for u := 0; u < n; u++ {
			total += g.Degree(int32(u))
		}
		return total == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Reverse preserves edge count and flips every edge.
func TestPropertyReverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := ErdosRenyi(n, int64(rng.Intn(150)+1), seed)
		r := g.Reverse()
		if r.NumEdges() != g.NumEdges() {
			return false
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(int32(u)) {
				if !r.HasEdge(v, int32(u)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: KHopNeighborhood is monotone in k.
func TestPropertyKHopMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		g := ErdosRenyi(n, int64(3*n), seed)
		seed0 := int32(rng.Intn(n))
		prev := 0
		for k := 0; k <= 3; k++ {
			got := len(g.KHopNeighborhood([]int32{seed0}, k, true))
			if got < prev {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFromEdges(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	edges := make([]Edge, 100000)
	for i := range edges {
		edges[i] = Edge{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustFromEdges(n, edges, false)
	}
}

func BenchmarkKHop(b *testing.B) {
	g := WebGoogle.Generate(64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KHopNeighborhood([]int32{int32(i % g.NumVertices())}, 2, true)
	}
}
