package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// typecheckSrc builds a Package from one in-memory file, for engine tests
// that don't need the go-list loader.
func typecheckSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{Path: "p", Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info}
}

// passFor wraps a typechecked package in a Pass for a throwaway analyzer.
func passFor(pkg *Package) *Pass {
	return &Pass{
		Analyzer:  &Analyzer{Name: "test"},
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
}

func nodeNamed(t *testing.T, cg *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, fn := range cg.Ordered {
		if fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("no function %q in call graph", name)
	return nil
}

// taintAll returns an all-true taint vector sized to fn's parameters.
func taintAll(pass *Pass, fn *FuncNode) []bool {
	v := make([]bool, len(paramObjs(pass, fn)))
	for i := range v {
		v[i] = true
	}
	return v
}

func sinksIn(t *Taint, fn *FuncNode, tainted []bool) []Sink {
	var out []Sink
	t.AnalyzeFunc(fn, tainted, func(s Sink) { out = append(out, s) }, nil)
	return out
}

func TestCallGraphResolvesLocalCalls(t *testing.T) {
	pkg := typecheckSrc(t, `package p

type box struct{ n int }

func (b *box) fill() int { return b.n }

func helper(n int) int { return n + 1 }

func entry(b *box) int {
	return helper(b.fill())
}
`)
	pass := passFor(pkg)
	cg := BuildCallGraph(pass)
	entry := nodeNamed(t, cg, "entry")
	if len(entry.Calls) != 2 {
		t.Fatalf("entry has %d call sites, want 2", len(entry.Calls))
	}
	for _, site := range entry.Calls {
		if site.Callee == nil {
			t.Errorf("call at %v unresolved, want package-local callee", pass.Fset.Position(site.Call.Pos()))
		}
	}
	helper := nodeNamed(t, cg, "helper")
	if got := len(cg.CallersOf(helper)); got != 1 {
		t.Errorf("CallersOf(helper) = %d sites, want 1", got)
	}
	fill := nodeNamed(t, cg, "box.fill")
	if got := len(cg.CallersOf(fill)); got != 1 {
		t.Errorf("CallersOf(box.fill) = %d sites, want 1", got)
	}
}

func TestTaintReadToMake(t *testing.T) {
	pkg := typecheckSrc(t, `package p

import (
	"encoding/binary"
	"io"
)

func unbounded(r io.Reader) []byte {
	hdr := make([]byte, 8)
	io.ReadFull(r, hdr)
	n := binary.LittleEndian.Uint32(hdr)
	return make([]byte, n)
}

func bounded(r io.Reader) []byte {
	hdr := make([]byte, 8)
	io.ReadFull(r, hdr)
	n := binary.LittleEndian.Uint32(hdr)
	if n > 1024 {
		return nil
	}
	return make([]byte, n)
}

func zeroCheckIsNotABound(r io.Reader) []byte {
	hdr := make([]byte, 8)
	io.ReadFull(r, hdr)
	n := binary.LittleEndian.Uint32(hdr)
	if n == 0 {
		return nil
	}
	return make([]byte, n)
}
`)
	pass := passFor(pkg)
	cg := BuildCallGraph(pass)
	eng := NewTaint(pass, cg)

	if got := sinksIn(eng, nodeNamed(t, cg, "unbounded"), nil); len(got) != 1 {
		t.Errorf("unbounded: %d sinks, want 1 (untrusted n reaches make)", len(got))
	} else if !strings.Contains(got[0].Origin, "LittleEndian.Uint32") {
		t.Errorf("unbounded: origin = %q, want a LittleEndian.Uint32 origin", got[0].Origin)
	}
	if got := sinksIn(eng, nodeNamed(t, cg, "bounded"), nil); len(got) != 0 {
		t.Errorf("bounded: %d sinks, want 0 (comparison sanitizes)", len(got))
	}
	if got := sinksIn(eng, nodeNamed(t, cg, "zeroCheckIsNotABound"), nil); len(got) != 1 {
		t.Errorf("zeroCheckIsNotABound: %d sinks, want 1 (n == 0 is not a bound)", len(got))
	}
}

func TestSummaryBoundsAndFillsParams(t *testing.T) {
	pkg := typecheckSrc(t, `package p

import (
	"encoding/binary"
	"io"
)

// checkDims bound-checks both parameters (helper-bounds shape).
func checkDims(rows, cols int) bool {
	return rows <= 1024 && cols <= 1024
}

// readInto fills p with input bytes (helper-fills shape).
func readInto(r io.Reader, p []byte) error {
	_, err := io.ReadFull(r, p)
	return err
}

func viaHelpers(r io.Reader) []byte {
	hdr := make([]byte, 8)
	readInto(r, hdr)
	rows := int(binary.LittleEndian.Uint32(hdr))
	cols := int(binary.LittleEndian.Uint32(hdr[4:]))
	if !checkDims(rows, cols) {
		return nil
	}
	return make([]byte, rows*cols)
}
`)
	pass := passFor(pkg)
	cg := BuildCallGraph(pass)
	eng := NewTaint(pass, cg)

	check := eng.SummaryOf(nodeNamed(t, cg, "checkDims"))
	if !check.BoundsParam[0] || !check.BoundsParam[1] {
		t.Errorf("checkDims summary BoundsParam = %v, want both true", check.BoundsParam)
	}
	read := eng.SummaryOf(nodeNamed(t, cg, "readInto"))
	if read.FillsParam[0] || !read.FillsParam[1] {
		t.Errorf("readInto summary FillsParam = %v, want [false true]", read.FillsParam)
	}
	if got := sinksIn(eng, nodeNamed(t, cg, "viaHelpers"), nil); len(got) != 0 {
		t.Errorf("viaHelpers: %d sinks, want 0 (depth-1 summaries sanitize)", len(got))
	}
}

func TestFieldSensitiveStructResults(t *testing.T) {
	pkg := typecheckSrc(t, `package p

import "encoding/binary"

type header struct {
	length int
	sum    uint64
}

// parse bounds length but not sum, mirroring the wire frame header parser.
func parse(data []byte) (header, bool) {
	n := int(binary.LittleEndian.Uint32(data))
	if n > 4096 {
		return header{}, false
	}
	return header{length: n, sum: binary.LittleEndian.Uint64(data[4:])}, true
}

func useLength(data []byte) []byte {
	h, ok := parse(data)
	if !ok {
		return nil
	}
	return make([]byte, h.length)
}

func useSum(data []byte) []byte {
	h, ok := parse(data)
	if !ok {
		return nil
	}
	return make([]byte, h.sum)
}
`)
	pass := passFor(pkg)
	cg := BuildCallGraph(pass)
	eng := NewTaint(pass, cg)

	useLength := nodeNamed(t, cg, "useLength")
	if got := sinksIn(eng, useLength, taintAll(pass, useLength)); len(got) != 0 {
		t.Errorf("useLength: %d sinks, want 0 (h.length is bounded in parse)", len(got))
	}
	useSum := nodeNamed(t, cg, "useSum")
	if got := sinksIn(eng, useSum, taintAll(pass, useSum)); len(got) != 1 {
		t.Errorf("useSum: %d sinks, want 1 (h.sum is never bounded)", len(got))
	}
}

func TestArgFactsHookSeesUntrustedArgs(t *testing.T) {
	pkg := typecheckSrc(t, `package p

func alloc(n int) []byte { return make([]byte, n) }

func entry(n int) []byte { return alloc(n) }
`)
	pass := passFor(pkg)
	cg := BuildCallGraph(pass)
	eng := NewTaint(pass, cg)

	entry := nodeNamed(t, cg, "entry")
	var seen []Fact
	eng.AnalyzeFunc(entry, taintAll(pass, entry), nil, func(site *CallSite, facts []Fact) {
		if site.Callee != nil && site.Callee.Name() == "alloc" {
			seen = facts
		}
	})
	if len(seen) != 1 || seen[0] != FactUntrusted {
		t.Errorf("argFacts for alloc = %v, want [FactUntrusted]", seen)
	}

	// And the untrusted caller argument makes the sink inside alloc fire
	// when the callee is re-analyzed with caller taint.
	alloc := nodeNamed(t, cg, "alloc")
	if got := sinksIn(eng, alloc, []bool{true}); len(got) != 1 {
		t.Errorf("alloc with tainted param: %d sinks, want 1", len(got))
	}
	if got := sinksIn(eng, alloc, []bool{false}); len(got) != 0 {
		t.Errorf("alloc with clean param: %d sinks, want 0", len(got))
	}
}

func TestPoolGetSink(t *testing.T) {
	pkg := typecheckSrc(t, `package p

import (
	"encoding/binary"
	"io"
)

type MatrixPool struct{}

func (p *MatrixPool) Get(rows, cols int) []float32 { return nil }

func fromWire(r io.Reader, pool *MatrixPool) []float32 {
	hdr := make([]byte, 8)
	io.ReadFull(r, hdr)
	rows := int(binary.LittleEndian.Uint32(hdr))
	cols := int(binary.LittleEndian.Uint32(hdr[4:]))
	return pool.Get(rows, cols)
}
`)
	pass := passFor(pkg)
	cg := BuildCallGraph(pass)
	eng := NewTaint(pass, cg)

	if got := sinksIn(eng, nodeNamed(t, cg, "fromWire"), nil); len(got) != 2 {
		t.Errorf("fromWire: %d sinks, want 2 (rows and cols both reach MatrixPool.Get)", len(got))
	}
}
