// Package poolown implements the dgclvet analyzer that enforces the
// ownership discipline of the size-classed buffer pools (runtime.bufPool /
// MatrixPool, wire.bytePool).
//
// Pooled memory is dirty by contract and recycled across collectives: a
// buffer read after it was returned to the pool races with the next
// exchange that reuses it, and a buffer stored into a long-lived struct
// outlives the exchange that owns it. Both bugs pass every unit test that
// doesn't happen to reuse the same size class, which is exactly why they
// are enforced statically. The rules, per function:
//
//   - P1: a handle obtained from a pool Get must not be used after a
//     Put/Release/recycle on the same path returned it to the pool. A
//     release inside a branch that falls through poisons the handle for
//     the code after the branch (a conditionally-released buffer is
//     already a bug); a release inside a branch that returns or continues
//     does not. `defer pool.put(x)` releases at function exit and never
//     poisons the body.
//   - P2: a handle must not be released twice on one path.
//   - P3: a live handle must not be assigned into a field of the method
//     receiver or a package-level variable — those outlive the exchange.
//     Handing the handle to a channel, a message struct, or a return value
//     is ownership transfer and stays legal.
//
// The walk is source-order and branch-aware but not a real CFG: a release
// in one select case poisons the code after the select even though another
// case may have kept the handle (flagged as a conditional release — still
// a bug worth a look).
//
// Function literals are flow-checked as independent functions with a fresh
// state: a closure that runs on its own goroutine (the pipelined sender of
// runtime/overlap.go) owns the buffers it acquires, so its acquire/release
// discipline is checked like any function body, while a captured outer
// handle crossing into the closure is ownership transfer (like a channel
// send) and stays legal.
package poolown

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dgcl/internal/analysis"
)

// Analyzer is the poolown analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "poolown",
	Doc: "flags pooled buffers used after being returned to their pool, " +
		"released twice, or stored into structs that outlive the exchange",
	AppliesTo: func(pkgPath string) bool {
		switch pkgPath {
		case "dgcl/internal/runtime", "dgcl/internal/comm/wire":
			return true
		}
		return false
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// handle is the per-path state of one tracked pool buffer.
type handle struct {
	released   bool
	releasePos token.Pos
}

type state map[types.Object]*handle

func (st state) clone() state {
	c := make(state, len(st))
	for k, v := range st {
		h := *v
		c[k] = &h
	}
	return c
}

type checker struct {
	pass *analysis.Pass
	recv types.Object // method receiver, for the escape rule
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		c.recv = pass.ObjectOf(fd.Recv.List[0].Names[0])
	}
	c.walkStmts(fd.Body.List, state{})
	// Closure bodies execute on their own goroutine or call path, outside
	// the enclosing flow (the enclosing walk treats the literal as one
	// opaque use). Flow-check each with a fresh state: handles acquired
	// inside are tracked, captured outer handles are ownership transfers.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			c.walkStmts(fl.Body.List, state{})
		}
		return true
	})
}

func (c *checker) walkStmts(stmts []ast.Stmt, st state) {
	for _, s := range stmts {
		c.walkStmt(s, st)
	}
}

func (c *checker) walkStmt(s ast.Stmt, st state) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		c.assign(x, st)
	case *ast.ExprStmt:
		if released := c.applyRelease(x.X, st); !released {
			c.checkUses(x.X, st)
		}
	case *ast.DeferStmt:
		// A deferred release runs at function exit: the handle stays live
		// for the whole body. Everything else in the deferred call is a
		// normal use.
		if !c.isReleaseCall(x.Call) {
			c.checkUses(x.Call, st)
		}
	case *ast.BlockStmt:
		c.walkStmts(x.List, st)
	case *ast.IfStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		c.checkUses(x.Cond, st)
		thenSt := st.clone()
		c.walkStmts(x.Body.List, thenSt)
		elseSt := st.clone()
		if x.Else != nil {
			c.walkStmt(x.Else, elseSt)
		}
		c.merge(st, branchOutcome{thenSt, terminates(x.Body)}, branchOutcome{elseSt, x.Else != nil && stmtTerminates(x.Else)})
	case *ast.ForStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		if x.Cond != nil {
			c.checkUses(x.Cond, st)
		}
		bodySt := st.clone()
		c.walkStmts(x.Body.List, bodySt)
		if x.Post != nil {
			c.walkStmt(x.Post, bodySt)
		}
		c.merge(st, branchOutcome{bodySt, false})
	case *ast.RangeStmt:
		c.checkUses(x.X, st)
		bodySt := st.clone()
		c.walkStmts(x.Body.List, bodySt)
		c.merge(st, branchOutcome{bodySt, false})
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		if x.Tag != nil {
			c.checkUses(x.Tag, st)
		}
		c.walkCases(x.Body, st)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		c.checkUses(x.Assign, st)
		c.walkCases(x.Body, st)
	case *ast.SelectStmt:
		c.walkCases(x.Body, st)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			c.checkUses(r, st)
		}
	case *ast.GoStmt:
		c.checkUses(x.Call, st)
	case *ast.SendStmt:
		c.checkUses(x.Chan, st)
		c.checkUses(x.Value, st)
	case *ast.LabeledStmt:
		c.walkStmt(x.Stmt, st)
	default:
		if s != nil {
			c.checkUses(s, st)
		}
	}
}

type branchOutcome struct {
	st         state
	terminates bool
}

// merge folds branch outcomes back into st: a handle released in any branch
// that can fall through is released after the join.
func (c *checker) merge(st state, branches ...branchOutcome) {
	for obj, h := range st {
		for _, b := range branches {
			if b.terminates {
				continue
			}
			if bh, ok := b.st[obj]; ok && bh.released && !h.released {
				h.released = true
				h.releasePos = bh.releasePos
			}
		}
	}
}

// walkCases runs each case clause on a cloned state and merges.
func (c *checker) walkCases(body *ast.BlockStmt, st state) {
	var outcomes []branchOutcome
	for _, cl := range body.List {
		caseSt := st.clone()
		switch cc := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				c.checkUses(e, caseSt)
			}
			c.walkStmts(cc.Body, caseSt)
			outcomes = append(outcomes, branchOutcome{caseSt, listTerminates(cc.Body)})
		case *ast.CommClause:
			if cc.Comm != nil {
				c.walkStmt(cc.Comm, caseSt)
			}
			c.walkStmts(cc.Body, caseSt)
			outcomes = append(outcomes, branchOutcome{caseSt, listTerminates(cc.Body)})
		}
	}
	c.merge(st, outcomes...)
}

// assign handles acquires, reassignment, escapes, and ordinary uses.
func (c *checker) assign(a *ast.AssignStmt, st state) {
	for _, r := range a.Rhs {
		if released := c.applyRelease(r, st); !released {
			c.checkUses(r, st)
		}
	}
	single := len(a.Lhs) == 1 && len(a.Rhs) == 1
	for i, l := range a.Lhs {
		switch lhs := ast.Unparen(l).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := c.pass.ObjectOf(lhs)
			if obj == nil {
				continue
			}
			if single && c.isPoolGet(a.Rhs[0]) {
				st[obj] = &handle{}
				continue
			}
			// Reassignment: whatever the variable now holds, it is not the
			// tracked handle anymore.
			delete(st, obj)
			_ = i
		case *ast.SelectorExpr:
			// Uses on the written-to path (s.f = x reads s).
			c.checkUses(lhs.X, st)
			c.checkEscape(lhs, a.Rhs, i, st)
		default:
			c.checkUses(l, st)
		}
	}
}

// checkEscape flags a live handle stored into receiver state or a
// package-level variable.
func (c *checker) checkEscape(lhs *ast.SelectorExpr, rhs []ast.Expr, i int, st state) {
	if i >= len(rhs) {
		return
	}
	id, ok := ast.Unparen(rhs[i]).(*ast.Ident)
	if !ok {
		return
	}
	obj := c.pass.ObjectOf(id)
	h, tracked := st[obj]
	if !tracked || h.released {
		return
	}
	root := analysis.RootIdent(lhs.X)
	if root == nil {
		return
	}
	rootObj := c.pass.ObjectOf(root)
	if rootObj == nil {
		return
	}
	longLived := rootObj == c.recv ||
		(rootObj.Parent() != nil && rootObj.Parent() == c.pass.Pkg.Scope())
	if longLived {
		c.pass.Reportf(id.Pos(),
			"pooled buffer %q escapes into a long-lived struct; the pool will hand "+
				"its memory to the next exchange — copy the data or transfer ownership",
			id.Name)
	}
}

// applyRelease recognizes a release call and updates st, reporting double
// releases. Returns true when e was a release call.
func (c *checker) applyRelease(e ast.Expr, st state) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || !c.isReleaseCall(call) {
		return false
	}
	for _, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		obj := c.pass.ObjectOf(id)
		h, tracked := st[obj]
		if !tracked {
			continue
		}
		if h.released {
			c.pass.Reportf(id.Pos(),
				"pooled buffer %q released twice (first at %s)",
				id.Name, c.pass.Fset.Position(h.releasePos))
			continue
		}
		h.released = true
		h.releasePos = id.Pos()
	}
	return true
}

// checkUses reports any mention of a released handle under n.
func (c *checker) checkUses(n ast.Node, st state) {
	ast.Inspect(n, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.ObjectOf(id)
		if obj == nil {
			return true
		}
		if h, tracked := st[obj]; tracked && h.released {
			c.pass.Reportf(id.Pos(),
				"pooled buffer %q used after release (returned to the pool at %s)",
				id.Name, c.pass.Fset.Position(h.releasePos))
			// One report per handle is enough; stop tracking it.
			delete(st, obj)
		}
		return true
	})
}

// isPoolGet reports whether e is (possibly a reslice of) a Get/get call on
// a *Pool* receiver.
func (c *checker) isPoolGet(e ast.Expr) bool {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "get") {
		return false
	}
	return isPoolType(c.pass.TypeOf(sel.X))
}

// isReleaseCall reports whether call returns a buffer to a pool:
// Put/put/Release/release on a *Pool* receiver, or any recycle-named call.
func (c *checker) isReleaseCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Put", "put", "Release", "release":
			return isPoolType(c.pass.TypeOf(fun.X))
		case "recycle", "Recycle", "RecycleMessage":
			return true
		}
	case *ast.Ident:
		switch fun.Name {
		case "recycle", "Recycle", "RecycleMessage":
			return true
		}
	}
	return false
}

func isPoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && strings.Contains(n.Obj().Name(), "Pool")
}

// terminates reports whether a block's last statement unconditionally
// leaves the enclosing flow (return, branch, panic).
func terminates(b *ast.BlockStmt) bool { return b != nil && listTerminates(b.List) }

func listTerminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return x.Tok == token.BREAK || x.Tok == token.CONTINUE || x.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(x)
	case *ast.IfStmt:
		return terminates(x.Body) && x.Else != nil && stmtTerminates(x.Else)
	}
	return false
}
