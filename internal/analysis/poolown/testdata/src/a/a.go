// Positive and negative corpus for poolown: lines with `want` comments
// must be flagged, lines without must stay silent.
package a

// BufPool stands in for the size-classed pools; any *Pool* type with
// Get/Put is recognized.
type BufPool struct{}

func (p *BufPool) Get(n int) []byte { return make([]byte, n) }
func (p *BufPool) Put(b []byte)     {}
func (p *BufPool) get(n int) []byte { return make([]byte, n) }
func (p *BufPool) put(b []byte)     {}
func (p *BufPool) Release(b []byte) {}

type message struct{ payload []byte }

func recycle(m message) {}

// server is the long-lived struct for the escape rule.
type server struct {
	pool    *BufPool
	scratch []byte
}

// useAfterPut is the P1 classic.
func useAfterPut(pool *BufPool) byte {
	buf := pool.Get(64)
	buf[0] = 1
	pool.Put(buf)
	return buf[0] // want "pooled buffer .buf. used after release"
}

// releaseInFallthroughBranch: a conditional release poisons the code after
// the branch.
func releaseInFallthroughBranch(pool *BufPool, bad bool) byte {
	buf := pool.Get(64)
	if bad {
		pool.Put(buf)
	}
	return buf[0] // want "pooled buffer .buf. used after release"
}

// releaseInTerminatingBranch is the legal early-exit shape: the release is
// followed by a return, so the fall-through still owns the buffer.
func releaseInTerminatingBranch(pool *BufPool, bad bool) byte {
	buf := pool.Get(64)
	if bad {
		pool.Put(buf)
		return 0
	}
	buf[0] = 1
	pool.Put(buf)
	return 1
}

// doubleRelease is P2.
func doubleRelease(pool *BufPool) {
	buf := pool.Get(64)
	pool.Put(buf)
	pool.Put(buf) // want "pooled buffer .buf. released twice"
}

// deferredReleaseIsFine: defer runs at exit, the body keeps the handle.
func deferredReleaseIsFine(pool *BufPool) byte {
	buf := pool.Get(64)
	defer pool.Put(buf)
	buf[0] = 1
	return buf[0]
}

// loopBodyOwnership is the readLoop shape: acquire, branch-release-return,
// fall-through release, next iteration reacquires.
func loopBodyOwnership(pool *BufPool, n int) {
	for i := 0; i < n; i++ {
		buf := pool.get(64)
		if i == 3 {
			pool.put(buf)
			return
		}
		buf[0] = byte(i)
		pool.put(buf)
	}
}

// lowercaseRelease covers the unexported pool face and Release.
func lowercaseRelease(pool *BufPool) byte {
	buf := pool.get(64)
	pool.Release(buf)
	return buf[0] // want "pooled buffer .buf. used after release"
}

// recycleRelease covers the recycle-style release.
func recycleRelease(pool *BufPool) byte {
	buf := pool.Get(64)
	Recycle(buf)
	return buf[0] // want "pooled buffer .buf. used after release"
}

// recycleOfComposite: the tracked ident is inside a composite literal, not
// a direct argument — ownership went with the message, tracking stops being
// precise, and the analyzer stays silent.
func recycleOfComposite(pool *BufPool) {
	buf := pool.Get(64)
	recycle(message{payload: buf})
}

// Recycle returns a buffer to its pool.
func Recycle(b []byte) {}

// escapeIntoReceiver is P3: a live handle stored into receiver state
// outlives the exchange.
func (s *server) escapeIntoReceiver() {
	buf := s.pool.Get(64)
	s.scratch = buf // want "pooled buffer .buf. escapes into a long-lived struct"
}

// transferViaChannel is legal ownership transfer.
func transferViaChannel(pool *BufPool, ch chan []byte) {
	buf := pool.Get(64)
	ch <- buf
}

// transferViaReturn is legal ownership transfer.
func transferViaReturn(pool *BufPool) []byte {
	buf := pool.Get(64)
	return buf
}

// storeInLocalStruct is legal: the message is as short-lived as the frame.
func storeInLocalStruct(pool *BufPool) message {
	buf := pool.Get(64)
	m := message{}
	m.payload = buf
	return m
}

// senderGoroutineOwnership is the pipelined-sender shape: the goroutine
// body is its own flow and keeps the loop-body acquire/release discipline.
func senderGoroutineOwnership(pool *BufPool, n int) {
	go func() {
		for i := 0; i < n; i++ {
			buf := pool.Get(64)
			buf[0] = byte(i)
			pool.Put(buf)
		}
	}()
}

// useAfterPutInsideGoroutine: a release across a goroutine boundary is
// still a release — the closure's own later use is flagged.
func useAfterPutInsideGoroutine(pool *BufPool) {
	go func() {
		buf := pool.Get(64)
		pool.Put(buf)
		buf[0] = 1 // want "pooled buffer .buf. used after release"
	}()
}

// transferIntoGoroutine is legal: the spawner hands the handle to the
// goroutine (ownership transfer, like a channel send) and never touches it
// again; the closure, a fresh flow, releases an untracked capture.
func transferIntoGoroutine(pool *BufPool) {
	buf := pool.Get(64)
	go func() {
		pool.Put(buf)
	}()
}

// reassignmentClearsTracking mirrors the append-grow idiom.
func reassignmentClearsTracking(pool *BufPool) {
	buf := pool.Get(8)[:0]
	buf = append(buf, 1, 2, 3)
	pool.Put(buf)
	_ = buf // reassigned handle is no longer tracked
}
