package poolown_test

import (
	"testing"

	"dgcl/internal/analysis/analysistest"
	"dgcl/internal/analysis/poolown"
)

func TestPoolown(t *testing.T) {
	analysistest.Run(t, poolown.Analyzer, "a")
}
