package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Shared AST/type predicates the dgclvet analyzers compose. They live here
// so every analyzer answers "is this send cancellable", "is this variable
// declared outside that loop" the same way.

// InspectStack walks the AST in depth-first order, calling fn with each node
// and the stack of its ancestors (outermost first, not including n itself).
// Returning false skips the node's children.
func InspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// EnclosingFuncDecl returns the innermost *ast.FuncDecl on the stack (Go has
// no nested FuncDecls, so "innermost" is "the" declaration), or nil when the
// node is not inside a function declaration.
func EnclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// EnclosingFuncBody returns the body of the innermost function (declaration
// or literal) on the stack, or nil.
func EnclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// InnermostLoopBody returns the body of the innermost for/range statement on
// the stack whose body encloses pos, or nil when pos is not inside a loop
// body (being inside a loop's init/cond/post does not count).
func InnermostLoopBody(stack []ast.Node, pos token.Pos) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		var body *ast.BlockStmt
		switch l := stack[i].(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			continue
		}
		if body != nil && body.Pos() <= pos && pos <= body.End() {
			return body
		}
	}
	return nil
}

// DeclaredOutside reports whether the object behind id is declared outside
// the [lo, hi] position range — i.e. the identifier refers to state that
// survives the region (a loop body, a range statement) rather than a
// region-local temporary.
func DeclaredOutside(pass *Pass, id *ast.Ident, lo, hi token.Pos) bool {
	obj := pass.ObjectOf(id)
	if obj == nil || obj.Pos() == token.NoPos {
		return false
	}
	return obj.Pos() < lo || obj.Pos() > hi
}

// RootIdent returns the leftmost identifier of an expression like a, a.b,
// a.b[i].c, or (*a).b — the variable whose storage the expression reaches —
// or nil when the expression has no identifier root (e.g. a call result).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// InCancellableSelect reports whether the channel operation op (a SendStmt,
// or a receive expression possibly wrapped in an assignment or expression
// statement) is the *communication* of a select clause that has an escape:
// at least one other case or a default. A single-case select without default
// blocks exactly like the bare operation and does not count, and an op in a
// clause's body (as opposed to its communication) does not count either.
func InCancellableSelect(stack []ast.Node, op ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.CommClause:
			// CommClause children include both the communication and the
			// clause body statements; only the communication is guarded.
			if s.Comm == nil || op.Pos() < s.Comm.Pos() || op.End() > s.Comm.End() {
				return false
			}
			// The clause's parent chain is SelectStmt -> BlockStmt (the
			// select body) -> CommClause.
			if i > 1 {
				if sel, ok := stack[i-2].(*ast.SelectStmt); ok {
					return len(sel.Body.List) >= 2
				}
			}
			return false
		case *ast.AssignStmt, *ast.ExprStmt:
			// `v := <-ch` or a bare receive statement may itself be the
			// clause communication; keep climbing.
			continue
		default:
			return false
		}
	}
	return false
}

// IsChanReceive reports whether e is a receive from a channel-typed operand.
func IsChanReceive(pass *Pass, e ast.Expr) bool {
	u, ok := e.(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return false
	}
	t := pass.TypeOf(u.X)
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// IsFloat reports whether t is (an alias of) float32 or float64.
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// IsString reports whether t is (an alias of) string.
func IsString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// IsPkgCall reports whether call invokes pkgPath.name (a package-level
// function accessed through its import), e.g. IsPkgCall(pass, call, "fmt",
// "Errorf").
func IsPkgCall(pass *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// PkgFuncName returns (pkgPath, funcName) when call invokes a package-level
// function through an import selector, else ("", "").
func PkgFuncName(pass *Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.ObjectOf(id).(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// IsNamedType reports whether t (or the pointee of a pointer t) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsDeadlineConn reports whether t's method set has SetReadDeadline(time.Time)
// — the structural signature of net.Conn and the in-memory test conns, used
// by ctxbound (C6) and lockdisc (L3) to recognize socket I/O.
func IsDeadlineConn(t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "SetReadDeadline")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return false
	}
	return IsNamedType(sig.Params().At(0).Type(), "time", "Time")
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// HasDirective reports whether the comment group contains the given
// dgclvet directive (e.g. "dgclvet:detreduce").
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
		if strings.HasPrefix(text, directive) {
			return true
		}
	}
	return false
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsErrorType reports whether t implements the error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType)
}
