package analysis

import (
	"go/ast"
	"go/types"
)

// The package-local call graph underlying the dgclvet dataflow analyzers
// (DESIGN.md §14). It resolves only statically-dispatched calls whose callee
// is declared in the package under analysis: that is exactly the
// decode-helper shape the boundcheck/lockdisc summaries need (an exported
// entry point fanning into unexported helpers), and it keeps the graph free
// of the soundness cliffs of interface dispatch — a call through an
// interface or a function value simply has a nil Callee and contributes no
// summary facts.

// A FuncNode is one function or method declared in the package.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	// Calls are the static call sites inside this function's body,
	// in source order (including sites inside function literals nested in
	// the body — a closure runs with its enclosing function's facts as far
	// as the depth-1 analyses are concerned).
	Calls []*CallSite
}

// Name returns the function's name (methods render as Type.Name).
func (fn *FuncNode) Name() string {
	if recv := fn.Obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Obj.Name()
		}
	}
	return fn.Obj.Name()
}

// A CallSite is one static call expression.
type CallSite struct {
	Call   *ast.CallExpr
	Caller *FuncNode
	// Callee is the package-local target, nil for cross-package calls,
	// interface dispatch, function values, and built-ins.
	Callee *FuncNode
}

// CallGraph indexes the package's functions and their call sites.
type CallGraph struct {
	// Nodes maps every declared function/method object to its node.
	Nodes map[*types.Func]*FuncNode
	// Ordered lists the nodes in source order, for deterministic iteration.
	Ordered []*FuncNode
	// callers maps a node to the sites that invoke it.
	callers map[*FuncNode][]*CallSite
}

// CallersOf returns the package-local call sites targeting fn, in the order
// they were discovered (source order within each caller).
func (g *CallGraph) CallersOf(fn *FuncNode) []*CallSite { return g.callers[fn] }

// NodeFor returns the node for a declared function object, or nil.
func (g *CallGraph) NodeFor(obj *types.Func) *FuncNode {
	if obj == nil {
		return nil
	}
	return g.Nodes[obj]
}

// StaticCallee resolves call to the package-local function it invokes, or
// nil. Both plain calls (helper(x)) and method calls (p.helper(x)) resolve;
// conversions and built-ins do not.
func StaticCallee(pass *Pass, g *CallGraph, call *ast.CallExpr) *FuncNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.ObjectOf(fun).(*types.Func); ok {
			return g.NodeFor(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.ObjectOf(fun.Sel).(*types.Func); ok {
			if sel, ok := pass.TypesInfo.Selections[fun]; !ok || sel.Kind() == types.MethodVal {
				return g.NodeFor(fn)
			}
		}
	}
	return nil
}

// BuildCallGraph constructs the package-local call graph for the pass's
// files.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		Nodes:   make(map[*types.Func]*FuncNode),
		callers: make(map[*FuncNode][]*CallSite),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			node := &FuncNode{Obj: obj, Decl: fd}
			g.Nodes[obj] = node
			g.Ordered = append(g.Ordered, node)
		}
	}
	for _, node := range g.Ordered {
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			site := &CallSite{Call: call, Caller: node, Callee: StaticCallee(pass, g, call)}
			node.Calls = append(node.Calls, site)
			if site.Callee != nil {
				g.callers[site.Callee] = append(g.callers[site.Callee], site)
			}
			return true
		})
	}
	return g
}
