// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// built entirely on the standard library's go/ast, go/parser and go/types.
// The module deliberately has no external dependencies, so the x/tools
// framework itself is not available; this package mirrors its shape closely
// enough that the dgclvet analyzers could be ported to the real framework by
// swapping the import.
//
// The suite exists because the repository stakes correctness on invariants
// no compiler checks: SPST plans must be bit-identical per configuration,
// gradient aggregation must use a fixed reduction order, and every transport
// op must be context-bounded and leak-free. The analyzers in the
// sub-packages encode those invariants; the dynamic test tiers (golden
// plans, the W1B1 equivalence battery, the chaos suite) backstop them at
// runtime. See DESIGN.md §9.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dgclvet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// AppliesTo restricts the analyzer to packages for which it returns
	// true. Nil means every package. The multichecker driver consults it;
	// Package.Run does not, so tests can exercise an analyzer on testdata
	// packages outside its production scope.
	AppliesTo func(pkgPath string) bool
	// Run performs the check on one package, reporting findings through
	// pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass provides one analyzer run with a type-checked package and a
// diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when unknown (e.g. in a
// package that did not fully type-check).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.TypesInfo.ObjectOf(id) }

// Package is a parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker complaints. Analysis still runs on
	// partially-checked packages; the driver surfaces these separately.
	TypeErrors []error
	// LoadErr is the `go list -e` Error for a package that failed to
	// resolve (bad pattern, missing directory, build-constraint exclusion).
	// Such a package carries no files; the driver reports the error as a
	// diagnostic instead of silently dropping the package.
	LoadErr string
}

// Run executes the analyzers on the package and returns their findings with
// //dgclvet:ignore directives applied, sorted by position. It does not
// consult Analyzer.AppliesTo — scoping is the driver's concern.
func (pkg *Package) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a, Fset: pkg.Fset, Files: pkg.Files,
			Pkg: pkg.Types, TypesInfo: pkg.Info, diags: &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = pkg.filterIgnored(diags)
	diags = dedup(diags)
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// dedup drops diagnostics identical in (pos, analyzer, message). Nested
// constructs (a map range inside a map range) can legitimately report the
// same statement twice; one finding is enough.
func dedup(diags []Diagnostic) []Diagnostic {
	seen := make(map[Diagnostic]bool, len(diags))
	kept := diags[:0]
	for _, d := range diags {
		if seen[d] {
			continue
		}
		seen[d] = true
		kept = append(kept, d)
	}
	return kept
}

// IgnoreDirective is the comment prefix that suppresses findings:
//
//	//dgclvet:ignore name1,name2 justification...
//
// The first token after the prefix is a comma-separated analyzer list ("all"
// or an empty list suppresses every analyzer). The directive applies to its
// own source line and the line immediately below, so it works both as a
// trailing comment and as a standalone comment above the flagged statement.
const IgnoreDirective = "dgclvet:ignore"

// ignoreKey identifies one suppressed (file, line).
type ignoreKey struct {
	file string
	line int
}

func (pkg *Package) filterIgnored(diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	ignored := make(map[ignoreKey][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnoreDirective))
				names := []string{"all"}
				if fields := strings.Fields(rest); len(fields) > 0 {
					names = strings.Split(fields[0], ",")
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := ignoreKey{pos.Filename, line}
					ignored[k] = append(ignored[k], names...)
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		names := ignored[ignoreKey{pos.Filename, pos.Line}]
		suppressed := false
		for _, n := range names {
			if n == "all" || n == d.Analyzer {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}
