package ctxbound_test

import (
	"testing"

	"dgcl/internal/analysis/analysistest"
	"dgcl/internal/analysis/ctxbound"
)

func TestCtxbound(t *testing.T) {
	analysistest.Run(t, ctxbound.Analyzer, "a")
}
