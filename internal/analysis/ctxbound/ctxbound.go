// Package ctxbound implements the dgclvet analyzer that keeps every
// blocking path in the graphAllgather runtime and the collective layer
// context-bounded.
//
// The PR-1 failure-semantics contract is that a lost message becomes a
// structured error within the caller's deadline — never a hung collective.
// That holds only while every potentially-blocking operation can observe
// cancellation. The analyzer enforces four local rules in internal/runtime
// and internal/collective:
//
//   - C1: a channel send must be the communication of a select with an
//     escape (another case or a default); a bare `ch <- v` can block
//     forever with no way to cancel it.
//   - C2: likewise for channel receives outside a cancellable select.
//   - C3: time.Sleep is forbidden — sleeping code holds its goroutine past
//     cancellation; select on time.After and ctx.Done() instead.
//   - C4: when a context is in scope and the callee has a "...Context"
//     variant, the variant must be used — calling the Background-context
//     convenience wrapper silently unbinds the operation from the caller's
//     deadline.
//
// The wire transport (PR 6) extends the contract to real sockets, where the
// unbounded operations are dials and deadline-less reads/writes:
//
//   - C5: net.Dial / net.DialTimeout cannot observe cancellation; dial
//     through a net.Dialer's DialContext.
//   - C6: a function that reads or writes a net.Conn (directly or via
//     io.ReadFull) must arm a Set*Deadline in the same function — a
//     deadline-less socket op blocks until the peer acts, which may be
//     never. Helpers whose callers arm the deadline carry a
//     //dgclvet:ignore with the justification.
package ctxbound

import (
	"go/ast"
	"go/types"

	"dgcl/internal/analysis"
)

// Analyzer is the ctxbound analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxbound",
	Doc: "flags transport/collective code that can block without observing " +
		"cancellation: bare channel ops, time.Sleep, calls that drop an in-scope " +
		"context, unbounded dials, and deadline-less socket reads/writes",
	AppliesTo: func(pkgPath string) bool {
		switch pkgPath {
		case "dgcl/internal/runtime", "dgcl/internal/collective",
			"dgcl/internal/comm/wire", "dgcl/internal/worker":
			return true
		}
		return false
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				checkConnDeadlines(pass, fd)
			}
		}
		analysis.InspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch x := n.(type) {
			case *ast.SendStmt:
				if !analysis.InCancellableSelect(stack, x) {
					pass.Reportf(x.Pos(),
						"channel send outside a cancellable select can block forever; "+
							"select on the send and ctx.Done()")
				}
			case *ast.UnaryExpr:
				if analysis.IsChanReceive(pass, x) && !analysis.InCancellableSelect(stack, x) {
					pass.Reportf(x.Pos(),
						"channel receive outside a cancellable select can block forever; "+
							"select on the receive and ctx.Done()")
				}
			case *ast.CallExpr:
				checkCall(pass, x, stack)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	if analysis.IsPkgCall(pass, call, "time", "Sleep") {
		pass.Reportf(call.Pos(),
			"time.Sleep cannot observe cancellation; select on time.After and ctx.Done()")
		return
	}
	// C5: the package-level dial entry points have no cancellation hook.
	for _, name := range []string{"Dial", "DialTimeout"} {
		if analysis.IsPkgCall(pass, call, "net", name) {
			pass.Reportf(call.Pos(),
				"net.%s cannot observe cancellation; dial through a net.Dialer's "+
					"DialContext so connecting stays bounded by the caller's deadline", name)
			return
		}
	}
	// C4: prefer the ...Context variant when a context is in scope.
	if !ctxInScope(pass, stack) || passesContext(pass, call) {
		return
	}
	name, hasVariant := contextVariant(pass, call)
	if hasVariant {
		pass.Reportf(call.Pos(),
			"call to %s ignores the in-scope context; use %sContext so the operation "+
				"stays bounded by the caller's deadline", name, name)
	}
}

// ctxInScope reports whether the innermost enclosing function declaration or
// literal has a context.Context parameter.
func ctxInScope(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			ft = f.Type
		case *ast.FuncLit:
			ft = f.Type
		default:
			continue
		}
		if ft.Params != nil {
			for _, field := range ft.Params.List {
				if analysis.IsContextType(pass.TypeOf(field.Type)) {
					return true
				}
			}
		}
		// Keep climbing: a closure captures any ctx parameter of the
		// functions it is nested in.
	}
	return false
}

// passesContext reports whether any argument of the call is a context.
func passesContext(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if analysis.IsContextType(pass.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// checkConnDeadlines enforces C6 on one function: every net.Conn Read/Write
// (including io.ReadFull/io.ReadAtLeast over a conn) must be covered by a
// Set*Deadline call in the same function. The granularity is deliberate —
// one armed deadline bounds every subsequent op on that conn, so the rule
// only demands that the function arming responsibility is local (or
// explicitly waived with a justified //dgclvet:ignore on helpers whose
// callers arm it).
func checkConnDeadlines(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	var connOps []*ast.CallExpr
	var opNames []string
	armed := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
				armed = true
			case "Read", "Write":
				if isConnType(pass.TypeOf(sel.X)) {
					connOps = append(connOps, call)
					opNames = append(opNames, "conn."+sel.Sel.Name)
				}
			}
		}
		for _, name := range []string{"ReadFull", "ReadAtLeast"} {
			if analysis.IsPkgCall(pass, call, "io", name) && len(call.Args) > 0 &&
				isConnType(pass.TypeOf(call.Args[0])) {
				connOps = append(connOps, call)
				opNames = append(opNames, "io."+name+" over a conn")
			}
		}
		return true
	})
	if armed {
		return
	}
	for i, call := range connOps {
		pass.Reportf(call.Pos(),
			"%s without a deadline armed in this function can block until the peer "+
				"acts; call Set*Deadline first (or justify with //dgclvet:ignore when "+
				"every caller arms it)", opNames[i])
	}
}

// isConnType reports whether t is a deadline-capable connection: its method
// set has SetReadDeadline(time.Time) — true for net.Conn, every concrete
// net connection, and test doubles, and false for plain io.Readers/Writers.
// (Shared with lockdisc via analysis.IsDeadlineConn.)
func isConnType(t types.Type) bool { return analysis.IsDeadlineConn(t) }

// contextVariant returns the callee's display name and whether a sibling
// named <callee>Context exists: a method on the same receiver type, or a
// package-level function in the callee's package.
func contextVariant(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			obj, _, _ := types.LookupFieldOrMethod(recv, true, sel.Obj().Pkg(), fun.Sel.Name+"Context")
			if _, isFunc := obj.(*types.Func); isFunc {
				return fun.Sel.Name, true
			}
			return "", false
		}
		// Package-qualified function call: look the sibling up in the
		// imported package's scope.
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok {
				if _, isFunc := pn.Imported().Scope().Lookup(fun.Sel.Name + "Context").(*types.Func); isFunc {
					return id.Name + "." + fun.Sel.Name, true
				}
			}
		}
	case *ast.Ident:
		fn, ok := pass.ObjectOf(fun).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return "", false
		}
		if _, isFunc := fn.Pkg().Scope().Lookup(fun.Name + "Context").(*types.Func); isFunc {
			return fun.Name, true
		}
	}
	return "", false
}
