// Package a is the ctxbound analysistest fixture.
package a

import (
	"bytes"
	"context"
	"io"
	"net"
	"time"
)

// bareSend can block forever.
func bareSend(ch chan int) {
	ch <- 1 // want "channel send outside a cancellable select"
}

// bareRecv can block forever.
func bareRecv(ch chan int) int {
	return <-ch // want "channel receive outside a cancellable select"
}

// guarded is the sanctioned pattern: the op is a select communication with
// an escape clause.
func guarded(ctx context.Context, ch chan int) error {
	select {
	case ch <- 1:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// guardedRecv receives under a deadline escape.
func guardedRecv(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// nonBlocking uses default as the escape.
func nonBlocking(ch chan int) bool {
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// singleClause blocks exactly like the bare send: one case, no default.
func singleClause(ch chan int) {
	select {
	case ch <- 1: // want "channel send outside a cancellable select"
	}
}

// clauseBody: only the clause communication is guarded, not ops in the body.
func clauseBody(ctx context.Context, in, out chan int) {
	select {
	case <-ctx.Done():
	case v := <-in:
		out <- v // want "channel send outside a cancellable select"
	}
}

// sleepy holds its goroutine past cancellation.
func sleepy() {
	time.Sleep(time.Millisecond) // want "time.Sleep cannot observe cancellation"
}

// Op is a Background-context convenience wrapper.
func Op() error { return OpContext(context.Background()) }

// OpContext is the context-bounded variant.
func OpContext(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

type conn struct{}

func (c *conn) Ping() error { return c.PingContext(context.Background()) }

func (c *conn) PingContext(ctx context.Context) error { return ctx.Err() }

// dropsCtx has a context in scope but calls the unbounded variants.
func dropsCtx(ctx context.Context, c *conn) error {
	if err := Op(); err != nil { // want "call to Op ignores the in-scope context"
		return err
	}
	return c.Ping() // want "call to Ping ignores the in-scope context"
}

// threadsCtx uses the Context variants; nothing fires.
func threadsCtx(ctx context.Context, c *conn) error {
	if err := OpContext(ctx); err != nil {
		return err
	}
	return c.PingContext(ctx)
}

// noCtxInScope has no context to drop; the wrapper call is fine.
func noCtxInScope(c *conn) error {
	if err := Op(); err != nil {
		return err
	}
	return c.Ping()
}

// closureCapture: a closure captures the outer context, so dropping it still
// fires inside the literal.
func closureCapture(ctx context.Context, c *conn) func() error {
	return func() error {
		return c.Ping() // want "call to Ping ignores the in-scope context"
	}
}

// unboundedDials use the package-level dial entry points, which have no
// cancellation hook (C5).
func unboundedDials() (net.Conn, error) {
	if c, err := net.Dial("tcp", "example:1"); err == nil { // want "net.Dial cannot observe cancellation"
		return c, nil
	}
	return net.DialTimeout("tcp", "example:1", time.Second) // want "net.DialTimeout cannot observe cancellation"
}

// boundedDial is the sanctioned pattern: a Dialer's DialContext.
func boundedDial(ctx context.Context) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", "example:1")
}

// nakedConnRead reads a socket with no deadline armed anywhere in the
// function (C6): it blocks until the peer talks, which may be never.
func nakedConnRead(conn net.Conn, p []byte) (int, error) {
	return conn.Read(p) // want "conn.Read without a deadline armed in this function"
}

// nakedConnWrite likewise for the write side.
func nakedConnWrite(conn net.Conn, p []byte) (int, error) {
	return conn.Write(p) // want "conn.Write without a deadline armed in this function"
}

// nakedReadFull: io.ReadFull over a conn is the same blocking read.
func nakedReadFull(conn net.Conn, p []byte) error {
	_, err := io.ReadFull(conn, p) // want "io.ReadFull over a conn without a deadline armed in this function"
	return err
}

// armedConnOps arm a deadline before the ops; nothing fires.
func armedConnOps(conn net.Conn, p []byte) error {
	if err := conn.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	if _, err := conn.Write(p); err != nil {
		return err
	}
	_, err := io.ReadFull(conn, p)
	return err
}

// armedReadDeadline: any Set*Deadline variant counts.
func armedReadDeadline(conn net.Conn, p []byte) (int, error) {
	if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return conn.Read(p)
}

// bufferRead is not a socket: Read on deadline-less types stays legal.
func bufferRead(b *bytes.Buffer, p []byte) (int, error) {
	return b.Read(p)
}
