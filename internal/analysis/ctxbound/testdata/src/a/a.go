// Package a is the ctxbound analysistest fixture.
package a

import (
	"context"
	"time"
)

// bareSend can block forever.
func bareSend(ch chan int) {
	ch <- 1 // want "channel send outside a cancellable select"
}

// bareRecv can block forever.
func bareRecv(ch chan int) int {
	return <-ch // want "channel receive outside a cancellable select"
}

// guarded is the sanctioned pattern: the op is a select communication with
// an escape clause.
func guarded(ctx context.Context, ch chan int) error {
	select {
	case ch <- 1:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// guardedRecv receives under a deadline escape.
func guardedRecv(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// nonBlocking uses default as the escape.
func nonBlocking(ch chan int) bool {
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// singleClause blocks exactly like the bare send: one case, no default.
func singleClause(ch chan int) {
	select {
	case ch <- 1: // want "channel send outside a cancellable select"
	}
}

// clauseBody: only the clause communication is guarded, not ops in the body.
func clauseBody(ctx context.Context, in, out chan int) {
	select {
	case <-ctx.Done():
	case v := <-in:
		out <- v // want "channel send outside a cancellable select"
	}
}

// sleepy holds its goroutine past cancellation.
func sleepy() {
	time.Sleep(time.Millisecond) // want "time.Sleep cannot observe cancellation"
}

// Op is a Background-context convenience wrapper.
func Op() error { return OpContext(context.Background()) }

// OpContext is the context-bounded variant.
func OpContext(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

type conn struct{}

func (c *conn) Ping() error { return c.PingContext(context.Background()) }

func (c *conn) PingContext(ctx context.Context) error { return ctx.Err() }

// dropsCtx has a context in scope but calls the unbounded variants.
func dropsCtx(ctx context.Context, c *conn) error {
	if err := Op(); err != nil { // want "call to Op ignores the in-scope context"
		return err
	}
	return c.Ping() // want "call to Ping ignores the in-scope context"
}

// threadsCtx uses the Context variants; nothing fires.
func threadsCtx(ctx context.Context, c *conn) error {
	if err := OpContext(ctx); err != nil {
		return err
	}
	return c.PingContext(ctx)
}

// noCtxInScope has no context to drop; the wrapper call is fine.
func noCtxInScope(c *conn) error {
	if err := Op(); err != nil {
		return err
	}
	return c.Ping()
}

// closureCapture: a closure captures the outer context, so dropping it still
// fires inside the literal.
func closureCapture(ctx context.Context, c *conn) func() error {
	return func() error {
		return c.Ping() // want "call to Ping ignores the in-scope context"
	}
}
