package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// This file is the dgclvet dataflow engine (DESIGN.md §14): a lightweight
// forward taint analysis over one package, built on the package-local call
// graph in callgraph.go. It tracks where values originate (bytes read off a
// net.Conn or io.Reader, integers decoded from raw frame bodies), pushes
// those facts through assignments, calls and returns in source order, and
// lets analyzers ask "did an untrusted length reach this allocation without
// a dominating bound comparison?".
//
// The lattice is deliberately tiny — None < Bounded < Untrusted — and the
// transfer function is an approximation, not a CFG-precise dataflow:
//
//   - Statement order stands in for dominance. A bound comparison sanitizes
//     its operands for the rest of the function; in the early-return decode
//     style this package tree uses ("if n > cap { return err }"), source
//     order and dominance coincide. A comparison inside a never-taken
//     branch, or one whose polarity guards the wrong arm, is still credited
//     (a known blind spot).
//   - Facts are field-sensitive one level deep: h.length and h.sum carry
//     independent facts, a.b.c collapses to a's "Rows"-level field.
//   - Summaries flow facts exactly one call deep. A helper's summary
//     records which parameters it bound-checks, which it fills with
//     untrusted bytes, and how its results derive from its parameters;
//     callers apply those effects at the call site, and callee bodies are
//     re-analyzed with the union of taint their callers pass in. Depth 1 is
//     enough for the decode-helper shape (exported entry → unexported
//     helpers) in wire, serve and checkpoint; a chain of three hops loses
//     the taint (also documented).
//   - Comparisons against the literal 0 do not sanitize: "n == 0" guards
//     the empty case, it does not bound n.

// Fact is one lattice point for a tracked value.
type Fact uint8

const (
	// FactNone: nothing known; the value is trusted.
	FactNone Fact = iota
	// FactBounded: the value derives from untrusted input but a bound
	// comparison on it has been seen.
	FactBounded
	// FactUntrusted: the value derives from untrusted input and no bound
	// comparison has been seen yet.
	FactUntrusted
)

// join returns the higher (less safe) of two facts.
func (f Fact) join(g Fact) Fact {
	if g > f {
		return g
	}
	return f
}

// Ref names one tracked storage location: a variable, or one field of a
// struct variable (Field == "" is the whole variable).
type Ref struct {
	Obj   types.Object
	Field string
}

// Summary is the depth-1 interprocedural fact set for one function,
// computed by NewTaint and applied at call sites.
type Summary struct {
	// BoundsParam[i]: the body compares parameter i against a bound, so a
	// call sanitizes the caller's argument.
	BoundsParam []bool
	// FillsParam[i]: the body writes untrusted bytes into (the storage
	// behind) parameter i — a Read-style helper.
	FillsParam []bool
	// Result[i] is the fact of result i when every parameter is untrusted.
	Result []Fact
	// ResultIndep[i] is the fact of result i when no parameter is tainted
	// (untrusted here means the function reads untrusted input itself).
	ResultIndep []Fact
	// ResultField/ResultFieldIndep carry per-field facts for struct
	// results, same convention.
	ResultField      []map[string]Fact
	ResultFieldIndep []map[string]Fact
}

// Sink is one allocation-style use of an untrusted value, reported by
// Taint.AnalyzeFunc.
type Sink struct {
	Pos token.Pos
	// Call names the allocating operation ("make", "Pool.Get", "tensor.New",
	// "io.ReadFull").
	Call string
	// Origin describes where the untrusted value came from.
	Origin string
}

// Taint is the per-package dataflow engine.
type Taint struct {
	pass      *Pass
	cg        *CallGraph
	summaries map[*FuncNode]*Summary
}

// NewTaint builds summaries for every function in the call graph. Summaries
// are computed in two rounds so that depth-1 callee effects (a helper that
// itself delegates filling or bounding to another local helper) are visible;
// deeper chains are not chased.
func NewTaint(pass *Pass, cg *CallGraph) *Taint {
	t := &Taint{pass: pass, cg: cg, summaries: make(map[*FuncNode]*Summary)}
	for round := 0; round < 2; round++ {
		next := make(map[*FuncNode]*Summary, len(cg.Ordered))
		for _, fn := range cg.Ordered {
			next[fn] = t.summarize(fn)
		}
		t.summaries = next
	}
	return t
}

// SummaryOf returns fn's summary (never nil after NewTaint).
func (t *Taint) SummaryOf(fn *FuncNode) *Summary { return t.summaries[fn] }

// ParamsOf returns fn's declared parameter objects, flattened in order
// (nil holds the place of an unnamed parameter).
func (t *Taint) ParamsOf(fn *FuncNode) []types.Object { return paramObjs(t.pass, fn) }

// paramObjs returns the objects of fn's declared parameters, flattened.
func paramObjs(pass *Pass, fn *FuncNode) []types.Object {
	var objs []types.Object
	if fn.Decl.Type.Params == nil {
		return objs
	}
	for _, field := range fn.Decl.Type.Params.List {
		for _, name := range field.Names {
			objs = append(objs, pass.ObjectOf(name))
		}
		if len(field.Names) == 0 {
			objs = append(objs, nil) // unnamed parameter: position holder
		}
	}
	return objs
}

// summarize computes fn's summary with the current summary table for
// callees.
func (t *Taint) summarize(fn *FuncNode) *Summary {
	params := paramObjs(t.pass, fn)
	allTainted := make([]bool, len(params))
	for i := range allTainted {
		allTainted[i] = true
	}
	tainted := t.run(fn, allTainted, nil, nil)
	clean := t.run(fn, make([]bool, len(params)), nil, nil)

	s := &Summary{
		BoundsParam:      make([]bool, len(params)),
		FillsParam:       make([]bool, len(params)),
		Result:           tainted.results,
		ResultIndep:      clean.results,
		ResultField:      tainted.resultFields,
		ResultFieldIndep: clean.resultFields,
	}
	for i, obj := range params {
		if obj == nil {
			continue
		}
		s.BoundsParam[i] = tainted.sanitized[Ref{Obj: obj}]
		// A parameter that ends up untrusted in the clean run was filled
		// with input bytes by the body itself.
		s.FillsParam[i] = clean.st.get(Ref{Obj: obj}) == FactUntrusted
	}
	return s
}

// AnalyzeFunc runs the forward walk over fn with the given per-parameter
// taint. sink (optional) receives every unbounded untrusted value reaching
// an allocation. argFacts (optional) receives, for every package-local call
// site in fn, the fact of each argument at that point — the hook boundcheck
// uses to propagate taint one call deep into callees.
func (t *Taint) AnalyzeFunc(fn *FuncNode, taintedParams []bool, sink func(Sink), argFacts func(site *CallSite, facts []Fact)) {
	t.run(fn, taintedParams, sink, argFacts)
}

// state is the mutable fact table of one function walk.
type taintState struct {
	facts   map[Ref]Fact
	origins map[Ref]string
}

func (st *taintState) get(r Ref) Fact {
	if r.Obj == nil {
		return FactNone
	}
	if f, ok := st.facts[r]; ok {
		return f
	}
	if r.Field != "" {
		return st.facts[Ref{Obj: r.Obj}]
	}
	return FactNone
}

func (st *taintState) origin(r Ref) string {
	if o, ok := st.origins[r]; ok {
		return o
	}
	if r.Field != "" {
		return st.origins[Ref{Obj: r.Obj}]
	}
	return ""
}

func (st *taintState) set(r Ref, f Fact, origin string) {
	if r.Obj == nil {
		return
	}
	st.facts[r] = f
	if f == FactNone {
		delete(st.origins, r)
	} else if origin != "" {
		st.origins[r] = origin
	}
}

// sanitize downgrades an untrusted ref (and, for a whole-variable ref, its
// tracked fields) to bounded.
func (st *taintState) sanitize(r Ref) bool {
	hit := false
	if st.get(r) == FactUntrusted {
		st.facts[r] = FactBounded
		hit = true
	}
	if r.Field == "" {
		for fr, f := range st.facts {
			if fr.Obj == r.Obj && f == FactUntrusted {
				st.facts[fr] = FactBounded
				hit = true
			}
		}
	}
	return hit
}

// runResult carries what summarize needs out of one walk.
type runResult struct {
	st           *taintState
	sanitized    map[Ref]bool
	results      []Fact
	resultFields []map[string]Fact
}

type walker struct {
	t         *Taint
	fn        *FuncNode
	st        *taintState
	sanitized map[Ref]bool
	sink      func(Sink)
	argFacts  func(site *CallSite, facts []Fact)
	res       *runResult
	sites     map[*ast.CallExpr]*CallSite
	nresults  int
}

func (t *Taint) run(fn *FuncNode, taintedParams []bool, sink func(Sink), argFacts func(*CallSite, []Fact)) *runResult {
	st := &taintState{facts: make(map[Ref]Fact), origins: make(map[Ref]string)}
	params := paramObjs(t.pass, fn)
	for i, obj := range params {
		if i < len(taintedParams) && taintedParams[i] && obj != nil {
			st.set(Ref{Obj: obj}, FactUntrusted, fmt.Sprintf("parameter %q", obj.Name()))
		}
	}
	nres := 0
	if fn.Decl.Type.Results != nil {
		for _, f := range fn.Decl.Type.Results.List {
			n := len(f.Names)
			if n == 0 {
				n = 1
			}
			nres += n
		}
	}
	w := &walker{
		t: t, fn: fn, st: st,
		sanitized: make(map[Ref]bool),
		sink:      sink, argFacts: argFacts,
		sites:    make(map[*ast.CallExpr]*CallSite, len(fn.Calls)),
		nresults: nres,
		res: &runResult{
			results:      make([]Fact, nres),
			resultFields: make([]map[string]Fact, nres),
		},
	}
	for _, site := range fn.Calls {
		w.sites[site.Call] = site
	}
	ast.Inspect(fn.Decl.Body, w.visit)
	w.res.st = st
	w.res.sanitized = w.sanitized
	return w.res
}

// visit is the pre-order transfer function. ast.Inspect delivers nodes in
// source order, which is what stands in for dominance here.
func (w *walker) visit(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.BinaryExpr:
		w.compare(x)
	case *ast.AssignStmt:
		w.assign(x.Lhs, x.Rhs)
	case *ast.GenDecl:
		if x.Tok == token.VAR {
			for _, spec := range x.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, name := range vs.Names {
					lhs[i] = name
				}
				w.assign(lhs, vs.Values)
			}
		}
	case *ast.CallExpr:
		w.call(x)
	case *ast.ReturnStmt:
		w.returnStmt(x)
	}
	return true
}

// compare handles a comparison: operands that are tracked refs (or contain
// them arithmetically) become bounded, unless the opposing side is the
// literal 0.
func (w *walker) compare(b *ast.BinaryExpr) {
	switch b.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	sides := [2]ast.Expr{b.X, b.Y}
	for i, side := range sides {
		if w.isZero(sides[1-i]) {
			continue
		}
		for _, r := range w.gatherRefs(side) {
			if w.st.sanitize(r) {
				w.sanitized[Ref{Obj: r.Obj}] = true
			}
			w.sanitized[r] = w.sanitized[r] || w.st.get(r) == FactBounded
		}
	}
}

func (w *walker) isZero(e ast.Expr) bool {
	tv, ok := w.t.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v == 0
}

// gatherRefs collects the tracked refs mentioned by an expression, skipping
// len/cap and other call results (len(b) < k bounds b's length, not the
// bytes inside b).
func (w *walker) gatherRefs(e ast.Expr) []Ref {
	var refs []Ref
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if r, ok := w.refOf(e); ok {
				refs = append(refs, r)
			}
		case *ast.ParenExpr:
			walk(x.X)
		case *ast.UnaryExpr:
			walk(x.X)
		case *ast.StarExpr:
			walk(x.X)
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
		case *ast.CallExpr:
			// Conversions pass the ref through; real calls do not.
			if tv, ok := w.t.pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				walk(x.Args[0])
			}
		}
	}
	walk(e)
	return refs
}

// refOf resolves an lvalue-ish expression to a tracked ref.
func (w *walker) refOf(e ast.Expr) (Ref, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.t.pass.ObjectOf(x)
		if _, ok := obj.(*types.Var); ok {
			return Ref{Obj: obj}, true
		}
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			obj := w.t.pass.ObjectOf(id)
			if _, ok := obj.(*types.Var); ok {
				return Ref{Obj: obj, Field: x.Sel.Name}, true
			}
			return Ref{}, false
		}
		if root := RootIdent(x); root != nil {
			obj := w.t.pass.ObjectOf(root)
			if _, ok := obj.(*types.Var); ok {
				return Ref{Obj: obj}, true
			}
		}
	case *ast.StarExpr:
		return w.refOf(x.X)
	}
	return Ref{}, false
}

// assign applies lhs_i = rhs_i (or the multi-value call form).
func (w *walker) assign(lhs, rhs []ast.Expr) {
	if len(lhs) > 1 && len(rhs) == 1 {
		// Multi-value call: facts come from the callee summary.
		call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		facts, fields, origin := w.callResults(call)
		for i, l := range lhs {
			f, fieldMap := FactNone, map[string]Fact(nil)
			if i < len(facts) {
				f = facts[i]
			}
			if i < len(fields) {
				fieldMap = fields[i]
			}
			w.assignOne(l, f, fieldMap, origin)
		}
		return
	}
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		f, fieldMap, origin := w.evalWithFields(rhs[i])
		w.assignOne(l, f, fieldMap, origin)
	}
}

func (w *walker) assignOne(l ast.Expr, f Fact, fields map[string]Fact, origin string) {
	switch x := ast.Unparen(l).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
	case *ast.IndexExpr:
		// b[i] = v: storing an untrusted value taints the container.
		if f == FactUntrusted {
			if r, ok := w.refOf(x.X); ok {
				w.st.set(r, w.st.get(r).join(f), origin)
			}
		}
		return
	}
	r, ok := w.refOf(l)
	if !ok {
		return
	}
	w.st.set(r, f, origin)
	if r.Field == "" {
		// Whole-variable overwrite invalidates stale field facts.
		for fr := range w.st.facts {
			if fr.Obj == r.Obj && fr.Field != "" {
				delete(w.st.facts, fr)
			}
		}
		for name, ff := range fields {
			w.st.set(Ref{Obj: r.Obj, Field: name}, ff, origin)
		}
	}
}

// eval computes the fact of an expression.
func (w *walker) eval(e ast.Expr) (Fact, string) {
	f, _, o := w.evalWithFields(e)
	return f, o
}

func (w *walker) evalWithFields(e ast.Expr) (Fact, map[string]Fact, string) {
	switch x := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if r, ok := w.refOf(e); ok {
			return w.st.get(r), nil, w.st.origin(r)
		}
	case *ast.ParenExpr:
		return w.evalWithFields(x.X)
	case *ast.StarExpr:
		return w.evalWithFields(x.X)
	case *ast.IndexExpr:
		// An element of an untrusted slice is untrusted.
		f, _, o := w.evalWithFields(x.X)
		return f, nil, o
	case *ast.SliceExpr:
		f, _, o := w.evalWithFields(x.X)
		return f, nil, o
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return FactNone, nil, ""
		}
		return w.evalWithFields(x.X)
	case *ast.TypeAssertExpr:
		return w.evalWithFields(x.X)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ,
			token.LAND, token.LOR:
			return FactNone, nil, ""
		}
		fx, _, ox := w.evalWithFields(x.X)
		fy, _, oy := w.evalWithFields(x.Y)
		o := ox
		if fy > fx {
			o = oy
		}
		return fx.join(fy), nil, o
	case *ast.CompositeLit:
		joined, fields := FactNone, map[string]Fact{}
		origin := ""
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				f, o := w.eval(kv.Value)
				if key, ok := kv.Key.(*ast.Ident); ok {
					fields[key.Name] = f
				}
				if f > joined {
					joined, origin = f, o
				}
				continue
			}
			f, o := w.eval(elt)
			if f > joined {
				joined, origin = f, o
			}
		}
		return joined, fields, origin
	case *ast.CallExpr:
		facts, fields, origin := w.callResults(x)
		if len(facts) > 0 {
			var fm map[string]Fact
			if len(fields) > 0 {
				fm = fields[0]
			}
			return facts[0], fm, origin
		}
	}
	return FactNone, nil, ""
}

// callResults computes the per-result facts of a call expression.
func (w *walker) callResults(call *ast.CallExpr) ([]Fact, []map[string]Fact, string) {
	pass := w.t.pass
	// Conversion: T(x) passes x's fact through.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			f, fields, o := w.evalWithFields(call.Args[0])
			return []Fact{f}, []map[string]Fact{fields}, o
		}
		return nil, nil, ""
	}
	// Integer decodes over untrusted bytes.
	if name, ok := w.byteOrderDecode(call); ok {
		if len(call.Args) == 1 {
			if f, _ := w.eval(call.Args[0]); f == FactUntrusted {
				return []Fact{FactUntrusted}, nil, name
			}
		}
		return []Fact{FactNone}, nil, ""
	}
	// String-to-int parses of untrusted text.
	if pkg, name := PkgFuncName(pass, call); pkg == "strconv" {
		switch name {
		case "Atoi", "ParseInt", "ParseUint", "ParseFloat":
			if len(call.Args) > 0 {
				if f, _ := w.eval(call.Args[0]); f == FactUntrusted {
					return []Fact{FactUntrusted, FactNone}, nil, "strconv." + name
				}
			}
			return []Fact{FactNone, FactNone}, nil, ""
		}
	}
	// Package-local callee: apply its summary.
	if site, ok := w.sites[call]; ok && site.Callee != nil {
		return w.localCall(site)
	}
	return nil, nil, ""
}

// byteOrderDecode recognizes binary.LittleEndian.Uint16/32/64 (and the
// BigEndian twins): the canonical "integer decoded from raw input bytes"
// source.
func (w *walker) byteOrderDecode(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Uint16", "Uint32", "Uint64":
	default:
		return "", false
	}
	t := w.t.pass.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "encoding/binary" {
		return "", false
	}
	return types.ExprString(sel.X) + "." + sel.Sel.Name + " of untrusted bytes", true
}

// localCall applies a package-local callee's summary: argument facts are
// reported to the argFacts hook, bound-checking parameters sanitize the
// caller's argument refs, and result facts derive from whether any argument
// was untrusted.
func (w *walker) localCall(site *CallSite) ([]Fact, []map[string]Fact, string) {
	sum := w.t.summaries[site.Callee]
	call := site.Call
	facts := make([]Fact, len(call.Args))
	anyUntrusted := false
	origin := ""
	for i, arg := range call.Args {
		f, o := w.eval(arg)
		facts[i] = f
		if f == FactUntrusted {
			anyUntrusted = true
			if origin == "" {
				origin = o
			}
		}
	}
	if w.argFacts != nil {
		w.argFacts(site, facts)
	}
	if sum == nil {
		return nil, nil, ""
	}
	for i, arg := range call.Args {
		if i < len(sum.BoundsParam) && sum.BoundsParam[i] {
			if r, ok := w.refOf(arg); ok {
				if w.st.sanitize(r) {
					w.sanitized[Ref{Obj: r.Obj}] = true
				}
			}
		}
		if i < len(sum.FillsParam) && sum.FillsParam[i] {
			if r, ok := w.refOf(arg); ok {
				w.st.set(r, FactUntrusted, "bytes filled by "+site.Callee.Name())
			}
		}
	}
	if anyUntrusted {
		if origin == "" {
			origin = "untrusted argument"
		}
		return sum.Result, sum.ResultField, "result of " + site.Callee.Name() + " (" + origin + ")"
	}
	return sum.ResultIndep, sum.ResultFieldIndep, "result of " + site.Callee.Name()
}

// call applies a call's side effects: external fill sources, allocation
// sinks, and local-callee effects (the latter also fire via callResults when
// the call is an expression statement — route through callResults once).
func (w *walker) call(call *ast.CallExpr) {
	// Fill sources: bytes read off a reader/conn are untrusted.
	w.fillEffects(call)

	// Allocation sinks.
	if w.sink != nil {
		w.checkSinks(call)
	}

	// A call to a local helper needs its sanitize/fill effects applied even
	// as a bare expression statement; localCall is idempotent (assignment
	// paths run it too via callResults, at worst re-applying the same
	// facts), and it fires the argFacts hook.
	if site, ok := w.sites[call]; ok && site.Callee != nil {
		w.localCall(site)
	}
}

// fillEffects marks buffers filled from readers as untrusted.
func (w *walker) fillEffects(call *ast.CallExpr) {
	pass := w.t.pass
	mark := func(arg ast.Expr, desc string) {
		e := ast.Unparen(arg)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = u.X
		}
		if r, ok := w.refOf(e); ok {
			w.st.set(r, FactUntrusted, desc)
		} else if sl, ok := e.(*ast.SliceExpr); ok {
			if r, ok := w.refOf(sl.X); ok {
				w.st.set(r, FactUntrusted, desc)
			}
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Read" && len(call.Args) == 1 {
		// r.Read(p): p now holds input bytes. Applies to any reader-shaped
		// method (net.Conn, io.Reader, test doubles).
		if t := pass.TypeOf(call.Args[0]); IsByteSlice(t) {
			mark(call.Args[0], "bytes read by "+types.ExprString(sel.X)+".Read")
		}
		return
	}
	for _, name := range []string{"ReadFull", "ReadAtLeast"} {
		if IsPkgCall(pass, call, "io", name) && len(call.Args) >= 2 {
			mark(call.Args[1], "bytes read by io."+name)
			return
		}
	}
	if IsPkgCall(pass, call, "encoding/binary", "Read") && len(call.Args) >= 3 {
		mark(call.Args[2], "value decoded by binary.Read")
		return
	}
	if IsPkgCall(pass, call, "encoding/json", "Unmarshal") && len(call.Args) >= 2 {
		mark(call.Args[1], "value decoded by json.Unmarshal")
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Decode" && len(call.Args) == 1 {
		if IsNamedType(pass.TypeOf(sel.X), "encoding/json", "Decoder") {
			mark(call.Args[0], "value decoded by json.Decoder.Decode")
		}
	}
}

// checkSinks reports untrusted values reaching allocations.
func (w *walker) checkSinks(call *ast.CallExpr) {
	pass := w.t.pass
	report := func(arg ast.Expr, sinkName string) {
		f, o := w.eval(arg)
		if f != FactUntrusted {
			return
		}
		if o == "" {
			o = "untrusted input"
		}
		w.sink(Sink{Pos: arg.Pos(), Call: sinkName, Origin: o})
	}
	// Built-in make(T, n[, c]).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" {
		if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "make" {
			for _, arg := range call.Args[1:] {
				report(arg, "make")
			}
			return
		}
	}
	// Size-classed pool allocators: a Get/get method on a *Pool type whose
	// arguments are the requested dimensions.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Get" || sel.Sel.Name == "get") {
		if t := pass.TypeOf(sel.X); t != nil && strings.Contains(typeName(t), "Pool") {
			for _, arg := range call.Args {
				if at := pass.TypeOf(arg); at != nil {
					if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
						report(arg, typeName(t)+"."+sel.Sel.Name)
					}
				}
			}
			return
		}
	}
	// tensor.New(rows, cols): the matrix allocator.
	if pkg, name := PkgFuncName(pass, call); name == "New" && strings.HasSuffix(pkg, "tensor") {
		for _, arg := range call.Args {
			report(arg, "tensor.New")
		}
		return
	}
	// io.ReadFull/ReadAtLeast into a slice whose cap derives from untrusted
	// input: buf[:n] with untrusted n.
	for _, name := range []string{"ReadFull", "ReadAtLeast"} {
		if IsPkgCall(pass, call, "io", name) && len(call.Args) >= 2 {
			if sl, ok := ast.Unparen(call.Args[1]).(*ast.SliceExpr); ok {
				for _, bound := range []ast.Expr{sl.Low, sl.High, sl.Max} {
					if bound != nil {
						report(bound, "io."+name)
					}
				}
			}
		}
	}
}

// returnStmt folds return-expression facts into the run's result facts.
func (w *walker) returnStmt(ret *ast.ReturnStmt) {
	if len(ret.Results) == 0 {
		return
	}
	if len(ret.Results) == 1 && w.nresults > 1 {
		// return f() forwarding a multi-value call.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			facts, fields, _ := w.callResults(call)
			for i := 0; i < w.nresults && i < len(facts); i++ {
				w.res.results[i] = w.res.results[i].join(facts[i])
				if i < len(fields) && fields[i] != nil {
					w.res.resultFields[i] = joinFieldFacts(w.res.resultFields[i], fields[i])
				}
			}
		}
		return
	}
	for i, e := range ret.Results {
		if i >= w.nresults {
			break
		}
		f, fields, _ := w.evalWithFields(e)
		w.res.results[i] = w.res.results[i].join(f)
		if fields != nil {
			w.res.resultFields[i] = joinFieldFacts(w.res.resultFields[i], fields)
		}
		// A returned ref's recorded per-field facts travel too.
		if r, ok := w.refOf(e); ok && r.Field == "" {
			m := map[string]Fact{}
			for fr, ff := range w.st.facts {
				if fr.Obj == r.Obj && fr.Field != "" {
					m[fr.Field] = ff
				}
			}
			if len(m) > 0 {
				w.res.resultFields[i] = joinFieldFacts(w.res.resultFields[i], m)
			}
		}
	}
}

func joinFieldFacts(dst, src map[string]Fact) map[string]Fact {
	if dst == nil {
		dst = map[string]Fact{}
	}
	for k, v := range src {
		dst[k] = dst[k].join(v)
	}
	return dst
}

// IsByteSlice reports whether t is (an alias of) []byte.
func IsByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// typeName returns the bare name of a (possibly pointer-to) named type.
func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
