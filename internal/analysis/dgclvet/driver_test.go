package dgclvet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -json must emit a parseable array of findings with stable fields.
func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	code := Run(".", []string{"./testdata/src/bad"}, Analyzers, Options{JSON: true}, &out)
	if code != ExitFindings {
		t.Fatalf("Run = %d, want %d; output:\n%s", code, ExitFindings, out.String())
	}
	var findings []Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON finding array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON run on the bad fixture produced zero findings")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding file %q is absolute; want repo-relative for a portable baseline", f.File)
		}
	}
}

// A clean JSON run must print an empty array, not "null" — downstream jq in
// CI iterates the array unconditionally.
func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	var out bytes.Buffer
	code := Run(".", []string{"./testdata/src/clean"}, Analyzers, Options{JSON: true}, &out)
	if code != ExitClean {
		t.Fatalf("Run on clean fixture = %d, want %d; output:\n%s", code, ExitClean, out.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("clean JSON output = %q, want []", got)
	}
}

// Baselined findings are still printed but do not fail the run; a finding
// NOT in the baseline still does.
func TestRunBaseline(t *testing.T) {
	var jsonOut bytes.Buffer
	if code := Run(".", []string{"./testdata/src/bad"}, Analyzers, Options{JSON: true}, &jsonOut); code != ExitFindings {
		t.Fatalf("seed run = %d, want %d", code, ExitFindings)
	}
	var findings []Finding
	if err := json.Unmarshal(jsonOut.Bytes(), &findings); err != nil {
		t.Fatal(err)
	}

	full := writeBaseline(t, findings)
	var out bytes.Buffer
	if code := Run(".", []string{"./testdata/src/bad"}, Analyzers, Options{Baseline: full}, &out); code != ExitClean {
		t.Fatalf("fully-baselined run = %d, want %d; output:\n%s", code, ExitClean, out.String())
	}
	if !strings.Contains(out.String(), "(baselined)") {
		t.Fatalf("baselined findings not annotated in text output:\n%s", out.String())
	}

	partial := writeBaseline(t, findings[:len(findings)-1])
	out.Reset()
	if code := Run(".", []string{"./testdata/src/bad"}, Analyzers, Options{Baseline: partial}, &out); code != ExitFindings {
		t.Fatalf("partially-baselined run = %d, want %d (the new finding must fail)", code, ExitFindings)
	}
}

// Baseline matching ignores line numbers: the same finding shifted by an
// unrelated edit must still match.
func TestBaselineIgnoresLineNumbers(t *testing.T) {
	var jsonOut bytes.Buffer
	Run(".", []string{"./testdata/src/bad"}, Analyzers, Options{JSON: true}, &jsonOut)
	var findings []Finding
	if err := json.Unmarshal(jsonOut.Bytes(), &findings); err != nil {
		t.Fatal(err)
	}
	for i := range findings {
		findings[i].Line += 100
		findings[i].Col = 1
	}
	shifted := writeBaseline(t, findings)
	var out bytes.Buffer
	if code := Run(".", []string{"./testdata/src/bad"}, Analyzers, Options{Baseline: shifted}, &out); code != ExitClean {
		t.Fatalf("line-shifted baseline did not match: exit %d\n%s", code, out.String())
	}
}

// A missing baseline file is a hard error, not a silent no-op gate.
func TestMissingBaselineIsLoadError(t *testing.T) {
	var out bytes.Buffer
	code := Run(".", []string{"./testdata/src/bad"}, Analyzers, Options{Baseline: "no/such/baseline.json"}, &out)
	if code != ExitLoadError {
		t.Fatalf("Run with missing baseline = %d, want %d", code, ExitLoadError)
	}
}

// The committed baseline must be empty: the tree is clean, and any finding a
// PR introduces must fail CI rather than ride in via a pre-populated file.
func TestCommittedBaselineIsEmpty(t *testing.T) {
	root := moduleRoot(t)
	data, err := os.ReadFile(filepath.Join(root, ".github", "dgclvet-baseline.json"))
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var entries []Finding
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("committed baseline is not a JSON finding array: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("committed baseline has %d entries, want 0", len(entries))
	}
}

// The ignores audit lists every directive in the real tree and passes: each
// names a live analyzer and carries a justification.
func TestIgnoresAuditOnTree(t *testing.T) {
	var out bytes.Buffer
	code := Ignores(moduleRoot(t), Analyzers, &out)
	if code != ExitClean {
		t.Fatalf("ignores audit failed (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ignore directives") {
		t.Fatalf("audit printed no summary:\n%s", out.String())
	}
}

// Stale analyzer names and missing justifications must fail the audit.
func TestIgnoresAuditRejectsStaleAndBare(t *testing.T) {
	dir := t.TempDir()
	src := `package p

func f() {
	_ = 1 //dgclvet:ignore nosuchanalyzer historical reasons
	_ = 2 //dgclvet:ignore mapdet
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := Ignores(dir, Analyzers, &out); code != ExitFindings {
		t.Fatalf("audit of stale/bare ignores = %d, want %d:\n%s", code, ExitFindings, out.String())
	}
	if !strings.Contains(out.String(), "stale suppression") {
		t.Errorf("stale analyzer name not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "without justification") {
		t.Errorf("missing justification not reported:\n%s", out.String())
	}
}

// The ignores audit must not descend into testdata — fixtures use directives
// in ways the audit would reject.
func TestIgnoresSkipsTestdata(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "testdata")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	bad := "package p\n\nvar x = 1 //dgclvet:ignore bogus\n"
	if err := os.WriteFile(filepath.Join(sub, "p.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := Ignores(dir, Analyzers, &out); code != ExitClean {
		t.Fatalf("audit descended into testdata (exit %d):\n%s", code, out.String())
	}
}

// A broken package pattern must surface as a per-package load diagnostic —
// naming the pattern — while other packages in the same run still analyze.
func TestLoadErrorIsPerPackage(t *testing.T) {
	var out bytes.Buffer
	code := Main(".", []string{"./testdata/src/bad", "./no/such/dir"}, Analyzers, &out)
	if code != ExitLoadError {
		t.Fatalf("Main with one bad pattern = %d, want %d:\n%s", code, ExitLoadError, out.String())
	}
	if !strings.Contains(out.String(), "no/such/dir") {
		t.Fatalf("load error does not name the bad pattern:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "mapdet") {
		t.Fatalf("good package was not analyzed alongside the bad pattern:\n%s", out.String())
	}
}

func writeBaseline(t *testing.T, findings []Finding) string {
	t.Helper()
	data, err := json.Marshal(findings)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
