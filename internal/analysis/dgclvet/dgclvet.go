// Package dgclvet assembles the dgclvet analyzer suite and implements the
// multichecker driver logic behind cmd/dgclvet.
//
// The suite enforces the invariants the repository's dynamic tiers (golden
// plans, the W1B1 equivalence battery, the chaos suite) can only sample:
// deterministic plan/serialization order, fixed float reduction order,
// context-bounded blocking, leak-free goroutine launches, and the per-GPU
// error wrapping discipline. See DESIGN.md §9.
package dgclvet

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dgcl/internal/analysis"
	"dgcl/internal/analysis/ctxbound"
	"dgcl/internal/analysis/errwrap"
	"dgcl/internal/analysis/floatorder"
	"dgcl/internal/analysis/goleaklite"
	"dgcl/internal/analysis/mapdet"
)

// Analyzers is the full suite, in report order.
var Analyzers = []*analysis.Analyzer{
	ctxbound.Analyzer,
	errwrap.Analyzer,
	floatorder.Analyzer,
	goleaklite.Analyzer,
	mapdet.Analyzer,
}

// Exit codes of Main, mirroring the x/tools multichecker convention.
const (
	ExitClean     = 0 // no findings
	ExitFindings  = 1 // at least one diagnostic
	ExitLoadError = 2 // packages failed to load or type-check
)

// Select returns the analyzers whose names appear in the comma-separated
// list, or the full suite when the list is empty. Unknown names are an
// error.
func Select(only string) ([]*analysis.Analyzer, error) {
	if strings.TrimSpace(only) == "" {
		return Analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(Analyzers))
	for _, a := range Analyzers {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(Names(), ", "))
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// Names returns the sorted analyzer names.
func Names() []string {
	names := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}

// Main loads the packages matched by patterns (relative to dir), runs each
// selected analyzer over the packages it applies to, prints findings to w as
// "file:line:col: analyzer: message", and returns the exit code.
func Main(dir string, patterns []string, analyzers []*analysis.Analyzer, w io.Writer) int {
	pkgs, err := analysis.DefaultLoader().Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(w, "dgclvet: %v\n", err)
		return ExitLoadError
	}
	exit := ExitClean
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(w, "dgclvet: %s: %v\n", pkg.Path, te)
			}
			exit = ExitLoadError
			continue
		}
		applicable := make([]*analysis.Analyzer, 0, len(analyzers))
		for _, a := range analyzers {
			if a.AppliesTo == nil || a.AppliesTo(pkg.Path) {
				applicable = append(applicable, a)
			}
		}
		if len(applicable) == 0 {
			continue
		}
		diags, err := pkg.Run(applicable)
		if err != nil {
			fmt.Fprintf(w, "dgclvet: %v\n", err)
			return ExitLoadError
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Fprintf(w, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
			if exit == ExitClean {
				exit = ExitFindings
			}
		}
	}
	return exit
}
