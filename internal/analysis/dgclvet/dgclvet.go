// Package dgclvet assembles the dgclvet analyzer suite and implements the
// multichecker driver logic behind cmd/dgclvet.
//
// The suite enforces the invariants the repository's dynamic tiers (golden
// plans, the W1B1 equivalence battery, the chaos suite) can only sample:
// deterministic plan/serialization order, fixed float reduction order,
// context-bounded blocking, leak-free goroutine launches, and the per-GPU
// error wrapping discipline. See DESIGN.md §9.
package dgclvet

import (
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dgcl/internal/analysis"
	"dgcl/internal/analysis/boundcheck"
	"dgcl/internal/analysis/ctxbound"
	"dgcl/internal/analysis/errtaxon"
	"dgcl/internal/analysis/errwrap"
	"dgcl/internal/analysis/floatorder"
	"dgcl/internal/analysis/goleaklite"
	"dgcl/internal/analysis/lockdisc"
	"dgcl/internal/analysis/mapdet"
	"dgcl/internal/analysis/poolown"
)

// Analyzers is the full suite, in report order.
var Analyzers = []*analysis.Analyzer{
	boundcheck.Analyzer,
	ctxbound.Analyzer,
	errtaxon.Analyzer,
	errwrap.Analyzer,
	floatorder.Analyzer,
	goleaklite.Analyzer,
	lockdisc.Analyzer,
	mapdet.Analyzer,
	poolown.Analyzer,
}

// Exit codes of Main, mirroring the x/tools multichecker convention.
const (
	ExitClean     = 0 // no findings
	ExitFindings  = 1 // at least one diagnostic
	ExitLoadError = 2 // packages failed to load or type-check
)

// Select returns the analyzers whose names appear in the comma-separated
// list, or the full suite when the list is empty. Unknown names are an
// error.
func Select(only string) ([]*analysis.Analyzer, error) {
	if strings.TrimSpace(only) == "" {
		return Analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(Analyzers))
	for _, a := range Analyzers {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(Names(), ", "))
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// Names returns the sorted analyzer names.
func Names() []string {
	names := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}

// A Finding is one diagnostic in machine-readable form, as emitted by the
// -json flag and as stored in the baseline file.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// baselineKey identifies a finding for baseline matching. Line and column are
// deliberately excluded: unrelated edits shift positions, and a baseline that
// churns on every diff trains people to regenerate it blindly.
type baselineKey struct {
	File     string
	Analyzer string
	Message  string
}

func (f Finding) key() baselineKey {
	return baselineKey{File: filepath.ToSlash(f.File), Analyzer: f.Analyzer, Message: f.Message}
}

// Options configures a driver run.
type Options struct {
	// JSON emits findings as a JSON array of Finding instead of the
	// "file:line:col: analyzer: message" text lines.
	JSON bool
	// Baseline is the path of a committed JSON baseline (an array of
	// Finding). Findings matching a baseline entry on (file, analyzer,
	// message) are reported but do not affect the exit code, so CI fails
	// on NEW findings only. Empty means no baseline.
	Baseline string
}

// Main loads the packages matched by patterns (relative to dir), runs each
// selected analyzer over the packages it applies to, prints findings to w as
// "file:line:col: analyzer: message", and returns the exit code. It is
// Run with zero Options.
func Main(dir string, patterns []string, analyzers []*analysis.Analyzer, w io.Writer) int {
	return Run(dir, patterns, analyzers, Options{}, w)
}

// Run is Main with explicit Options.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer, opts Options, w io.Writer) int {
	baseline, err := loadBaseline(opts.Baseline)
	if err != nil {
		fmt.Fprintf(w, "dgclvet: %v\n", err)
		return ExitLoadError
	}
	pkgs, err := analysis.DefaultLoader().Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(w, "dgclvet: %v\n", err)
		return ExitLoadError
	}
	exit := ExitClean
	absDir, absErr := filepath.Abs(dir)
	var findings []Finding
	for _, pkg := range pkgs {
		if pkg.LoadErr != "" {
			fmt.Fprintf(w, "dgclvet: %s: %s\n", pkg.Path, pkg.LoadErr)
			exit = ExitLoadError
			continue
		}
		if len(pkg.TypeErrors) > 0 {
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(w, "dgclvet: %s: %v\n", pkg.Path, te)
			}
			exit = ExitLoadError
			continue
		}
		applicable := make([]*analysis.Analyzer, 0, len(analyzers))
		for _, a := range analyzers {
			if a.AppliesTo == nil || a.AppliesTo(pkg.Path) {
				applicable = append(applicable, a)
			}
		}
		if len(applicable) == 0 {
			continue
		}
		diags, err := pkg.Run(applicable)
		if err != nil {
			fmt.Fprintf(w, "dgclvet: %v\n", err)
			return ExitLoadError
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			f := Finding{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			}
			if absErr == nil {
				if rel, err := filepath.Rel(absDir, f.File); err == nil && !strings.HasPrefix(rel, "..") {
					f.File = filepath.ToSlash(rel)
				}
			}
			findings = append(findings, f)
			if !baseline[f.key()] && exit == ExitClean {
				exit = ExitFindings
			}
		}
	}
	if opts.JSON {
		if findings == nil {
			findings = []Finding{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(w, "dgclvet: %v\n", err)
			return ExitLoadError
		}
		return exit
	}
	for _, f := range findings {
		suffix := ""
		if baseline[f.key()] {
			suffix = " (baselined)"
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s%s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message, suffix)
	}
	return exit
}

// loadBaseline reads a baseline file into a match set. A missing path is an
// error — a typo'd -baseline silently accepting every finding would defeat
// the gate.
func loadBaseline(path string) (map[baselineKey]bool, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var entries []Finding
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	set := make(map[baselineKey]bool, len(entries))
	for _, e := range entries {
		set[e.key()] = true
	}
	return set, nil
}

// An Ignore is one //dgclvet:ignore directive found in the tree.
type Ignore struct {
	File          string
	Line          int
	Analyzers     []string
	Justification string
}

// Ignores walks every .go file under dir (testdata and .git excluded,
// _test.go files included — directives rot there too), prints each
// //dgclvet:ignore directive with its justification, and audits them: a
// directive naming an analyzer not in the suite, or carrying no
// justification, is a finding. This keeps suppressions honest — an ignore
// for a renamed or deleted analyzer is dead weight that hides the next real
// finding on that line.
func Ignores(dir string, analyzers []*analysis.Analyzer, w io.Writer) int {
	known := make(map[string]bool, len(analyzers)+1)
	known["all"] = true
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ignores, err := collectIgnores(dir)
	if err != nil {
		fmt.Fprintf(w, "dgclvet: %v\n", err)
		return ExitLoadError
	}
	exit := ExitClean
	for _, ig := range ignores {
		fmt.Fprintf(w, "%s:%d: ignore %s: %s\n",
			ig.File, ig.Line, strings.Join(ig.Analyzers, ","), ig.Justification)
		for _, name := range ig.Analyzers {
			if !known[name] {
				fmt.Fprintf(w, "%s:%d: stale suppression: no analyzer named %q in the suite\n",
					ig.File, ig.Line, name)
				exit = ExitFindings
			}
		}
		if ig.Justification == "" {
			fmt.Fprintf(w, "%s:%d: suppression without justification\n", ig.File, ig.Line)
			exit = ExitFindings
		}
	}
	fmt.Fprintf(w, "%d ignore directives\n", len(ignores))
	return exit
}

// collectIgnores parses every .go file under dir — directly, not via the
// loader — so it also covers _test.go files and packages excluded from the
// current build. Parsing (rather than a textual grep) is what keeps prose
// mentions of the directive in doc comments and string literals out of the
// report: only a comment whose own text starts with the directive counts,
// exactly the condition Package.Run suppresses on.
func collectIgnores(dir string) ([]Ignore, error) {
	var out []Ignore
	fset := token.NewFileSet()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			rel = path
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, analysis.IgnoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, analysis.IgnoreDirective))
				ig := Ignore{
					File: filepath.ToSlash(rel), Line: fset.Position(c.Pos()).Line,
					Analyzers: []string{"all"},
				}
				if fields := strings.Fields(rest); len(fields) > 0 {
					ig.Analyzers = strings.Split(fields[0], ",")
					ig.Justification = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
				}
				out = append(out, ig)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}
