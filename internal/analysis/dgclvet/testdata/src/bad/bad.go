// Package bad is a driver fixture with one known mapdet violation, used to
// prove the Main entry point loads, scopes, runs and reports end to end.
package bad

// Keys leaks map iteration order into its result.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
