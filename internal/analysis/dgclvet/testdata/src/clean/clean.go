// Package clean is a driver fixture with no violations, used to prove clean
// runs exit 0 and -json prints an empty array rather than null.
package clean

import "sort"

// Keys returns map keys in sorted order — the sanctioned collect-then-sort
// pattern.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
