package dgclvet

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestSuiteRegistered(t *testing.T) {
	if len(Analyzers) != 9 {
		t.Fatalf("suite has %d analyzers, want 9", len(Analyzers))
	}
	seen := map[string]bool{}
	for _, a := range Analyzers {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{
		"boundcheck", "ctxbound", "errtaxon", "errwrap", "floatorder",
		"goleaklite", "lockdisc", "mapdet", "poolown",
	} {
		if !seen[want] {
			t.Errorf("analyzer %q not registered", want)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(Analyzers) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want full suite", len(all), err)
	}
	two, err := Select("mapdet, errwrap")
	if err != nil || len(two) != 2 {
		t.Fatalf("Select subset = %d analyzers, err %v; want 2", len(two), err)
	}
	if _, err := Select("nosuchanalyzer"); err == nil {
		t.Fatal("Select accepted an unknown analyzer name")
	}
}

// Main must report the seeded violation in the driver fixture and exit 1.
func TestMainReportsFindings(t *testing.T) {
	var out bytes.Buffer
	code := Main(".", []string{"./testdata/src/bad"}, Analyzers, &out)
	if code != ExitFindings {
		t.Fatalf("Main = %d, want %d (findings); output:\n%s", code, ExitFindings, out.String())
	}
	if !strings.Contains(out.String(), "mapdet") || !strings.Contains(out.String(), "bad.go") {
		t.Fatalf("finding not attributed to mapdet/bad.go:\n%s", out.String())
	}
}

// Unresolvable patterns are load errors, not silence.
func TestMainBadPattern(t *testing.T) {
	var out bytes.Buffer
	if code := Main(".", []string{"./no/such/dir"}, Analyzers, &out); code != ExitLoadError {
		t.Fatalf("Main on bad pattern = %d, want %d; output:\n%s", code, ExitLoadError, out.String())
	}
}

// The tree itself must be clean: every invariant the suite encodes holds in
// the production code. Runs the real binary via `go run` so this smoke test
// also covers cmd/dgclvet flag handling and stays cheap under -race (the
// child process is not race-instrumented).
func TestTreeIsClean(t *testing.T) {
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/dgclvet", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("dgclvet ./... failed: %v\n%s", err, out)
	}
	if len(bytes.TrimSpace(out)) != 0 {
		t.Fatalf("dgclvet ./... reported findings on a tree that must be clean:\n%s", out)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}
