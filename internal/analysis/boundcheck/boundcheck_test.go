package boundcheck_test

import (
	"testing"

	"dgcl/internal/analysis/analysistest"
	"dgcl/internal/analysis/boundcheck"
)

func TestBoundcheck(t *testing.T) {
	analysistest.Run(t, boundcheck.Analyzer, "a")
}
