// Positive and negative corpus for boundcheck: lines with `want` comments
// must be flagged, lines without must stay silent. The suite is
// deliberately multi-file — helpers.go holds the depth-1 helpers whose
// summaries this file leans on.
package a

import (
	"encoding/binary"
	"io"
)

const maxBody = 1 << 20

// DecodeFrame is the canonical bad decode: the length prefix goes straight
// from the header to the allocator.
func DecodeFrame(data []byte) []byte {
	n := binary.LittleEndian.Uint32(data)
	return make([]byte, n) // want "untrusted value .* reaches make without a dominating bound check"
}

// DecodeFrameBounded is the same decode with the cap comparison in place.
func DecodeFrameBounded(data []byte) []byte {
	n := binary.LittleEndian.Uint32(data)
	if n > maxBody {
		return nil
	}
	return make([]byte, n)
}

// DecodeFrameZeroCheck guards the empty case only: comparing against the
// literal 0 does not bound n.
func DecodeFrameZeroCheck(data []byte) []byte {
	n := binary.LittleEndian.Uint32(data)
	if n == 0 {
		return nil
	}
	return make([]byte, n) // want "untrusted value .* reaches make without a dominating bound check"
}

// ReadFrame shows the reader-fill source: header bytes read off the conn
// are untrusted even though hdr itself was allocated with a constant.
func ReadFrame(r io.Reader) ([]byte, error) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(hdr)
	buf := make([]byte, n) // want "untrusted value .* reaches make without a dominating bound check"
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// ReadFrameBounded is the fixed twin.
func ReadFrameBounded(r io.Reader) ([]byte, error) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(hdr)
	if n > maxBody {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// ReadInto demonstrates the slice-bound sink: reading into buf[:n] with an
// untrusted n overruns whatever the caller sized buf for.
func ReadInto(r io.Reader, buf []byte) error {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr)
	_, err := io.ReadFull(r, buf[:n]) // want "untrusted value .* reaches io.ReadFull"
	return err
}

// DecodeMatrix exercises the pool sink and the helper summaries from
// helpers.go: parseDims bounds both dimensions, so the Get is clean; the
// raw header fields are not.
func DecodeMatrix(data []byte, pool *MatrixPool) []float32 {
	rows, cols, ok := parseDims(data)
	if !ok {
		return nil
	}
	return pool.Get(rows, cols)
}

// DecodeMatrixRaw skips the helper and pays for it.
func DecodeMatrixRaw(data []byte, pool *MatrixPool) []float32 {
	rows := int(binary.LittleEndian.Uint32(data))
	cols := int(binary.LittleEndian.Uint32(data[4:]))
	return pool.Get(rows, cols) // want "untrusted value .* reaches MatrixPool.Get" "untrusted value .* reaches MatrixPool.Get"
}

// DecodeViaHeader leans on the field-sensitive header summary: h.length is
// bounded inside parseHeader, h.sum never is.
func DecodeViaHeader(data []byte) []byte {
	h, ok := parseHeader(data)
	if !ok {
		return nil
	}
	return make([]byte, h.length)
}

// DecodeSumAsLength allocates from the unbounded field.
func DecodeSumAsLength(data []byte) []byte {
	h, ok := parseHeader(data)
	if !ok {
		return nil
	}
	return make([]byte, h.sum) // want "untrusted value .* reaches make without a dominating bound check"
}

// fill is an unexported helper: its parameter is tainted by the exported
// caller below, and the sink fires here, inside the allocating helper.
func fill(n uint32) []byte {
	return make([]byte, n) // want "untrusted value .* reaches make without a dominating bound check"
}

// DecodeDelegated taints fill's parameter one call deep.
func DecodeDelegated(data []byte) []byte {
	return fill(binary.LittleEndian.Uint32(data))
}
