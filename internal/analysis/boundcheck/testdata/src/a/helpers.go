// The depth-1 helpers a.go calls across the file boundary: the analyzer's
// call-graph summaries must see these even though they live in a different
// file of the package.
package a

import "encoding/binary"

const maxDim = 1 << 14

// MatrixPool stands in for the size-classed pools: any Get on a *Pool*
// type is an allocation sink.
type MatrixPool struct{}

// Get allocates rows*cols floats.
func (p *MatrixPool) Get(rows, cols int) []float32 {
	return make([]float32, rows*cols)
}

// parseDims bound-checks both dimensions; callers' arguments come out
// sanitized (BoundsParam summary).
func parseDims(data []byte) (rows, cols int, ok bool) {
	rows = int(binary.LittleEndian.Uint32(data))
	cols = int(binary.LittleEndian.Uint32(data[4:]))
	if rows > maxDim || cols > maxDim {
		return 0, 0, false
	}
	return rows, cols, true
}

// header mirrors the wire frame header: length is validated at parse time,
// sum is carried raw.
type header struct {
	length uint32
	sum    uint64
}

// parseHeader bounds length but not sum (ResultField summary).
func parseHeader(data []byte) (header, bool) {
	n := binary.LittleEndian.Uint32(data)
	if n > uint32(maxDim) {
		return header{}, false
	}
	return header{length: n, sum: binary.LittleEndian.Uint64(data[4:])}, true
}
