// Package boundcheck implements the dgclvet analyzer that enforces the
// bounded-decode discipline on the untrusted-input surfaces (DGW1 wire
// frames, DGS1 serve requests, DGCLSNAP checkpoints, worker control):
// every length or count decoded from raw input must pass a bound
// comparison before it reaches an allocation.
//
// The analyzer rides the dataflow engine (DESIGN.md §14): bytes arriving
// through io.Reader/net.Conn reads and the []byte parameters of exported
// decode entry points are untrusted; integers extracted from them via
// binary.LittleEndian/BigEndian or strconv stay untrusted until compared
// against a bound (a comparison against the literal 0 does not count — "n
// == 0" guards the empty case, it does not cap n). An untrusted value
// reaching make, a size-classed pool Get, tensor.New, or an io.ReadFull
// slice bound is a finding. Facts flow one call deep: a helper that
// bound-checks its parameter sanitizes the caller's argument, a helper
// that fills a buffer taints it, and arguments untrusted at a call site
// taint the callee's parameters.
package boundcheck

import (
	"go/ast"
	"strings"

	"dgcl/internal/analysis"
)

// Analyzer is the boundcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "boundcheck",
	Doc: "flags untrusted lengths/counts decoded from frames, requests, or " +
		"snapshots that reach make/pool allocations or io.ReadFull bounds " +
		"without a dominating bound comparison",
	AppliesTo: func(pkgPath string) bool {
		switch pkgPath {
		case "dgcl/internal/comm/wire", "dgcl/internal/serve",
			"dgcl/internal/checkpoint", "dgcl/internal/worker":
			return true
		}
		return false
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	cg := analysis.BuildCallGraph(pass)
	eng := analysis.NewTaint(pass, cg)

	// Entry taint: the []byte parameters of exported functions carry raw
	// input (DecodeFrame, DecodeRequest, DecodeSnapshot, ...). Everything
	// else starts clean and picks up taint from reader fills or callers.
	entry := make(map[*analysis.FuncNode][]bool, len(cg.Ordered))
	for _, fn := range cg.Ordered {
		params := eng.ParamsOf(fn)
		v := make([]bool, len(params))
		if ast.IsExported(fn.Obj.Name()) {
			for i, p := range params {
				if p != nil && analysis.IsByteSlice(p.Type()) {
					v[i] = true
				}
			}
		}
		entry[fn] = v
	}

	// One propagation round (summary depth 1): an argument that is
	// untrusted at a package-local call site taints the callee's
	// parameter, so the sink fires inside the helper that allocates.
	extra := make(map[*analysis.FuncNode][]bool, len(cg.Ordered))
	for _, fn := range cg.Ordered {
		eng.AnalyzeFunc(fn, entry[fn], nil, func(site *analysis.CallSite, facts []analysis.Fact) {
			if site.Callee == nil || isPoolGet(site.Callee) {
				// A pool Get IS the allocation sink: the engine reports an
				// untrusted argument at the call site, so taint must not
				// also flow into the allocator's own make.
				return
			}
			v := extra[site.Callee]
			if v == nil {
				v = make([]bool, len(eng.ParamsOf(site.Callee)))
				extra[site.Callee] = v
			}
			for i, f := range facts {
				if i < len(v) && f == analysis.FactUntrusted {
					v[i] = true
				}
			}
		})
	}

	for _, fn := range cg.Ordered {
		merged := entry[fn]
		for i, b := range extra[fn] {
			if b && i < len(merged) {
				merged[i] = true
			}
		}
		eng.AnalyzeFunc(fn, merged, func(s analysis.Sink) {
			pass.Reportf(s.Pos,
				"untrusted value (%s) reaches %s without a dominating bound check; "+
					"compare it against a fixed cap before allocating", s.Origin, s.Call)
		}, nil)
	}
	return nil
}

// isPoolGet reports whether fn is a Get/get method on a *Pool* type — the
// allocator the engine already treats as a sink at call sites.
func isPoolGet(fn *analysis.FuncNode) bool {
	if fn.Obj.Name() != "Get" && fn.Obj.Name() != "get" {
		return false
	}
	name := fn.Name()
	return name != fn.Obj.Name() && strings.Contains(name, "Pool")
}
