// Package mapdet implements the dgclvet analyzer that catches
// nondeterministic map iteration feeding order-sensitive state.
//
// Go randomizes map iteration order per run. Most map ranges in this
// codebase are harmless (counting, set membership, keyed writes), but the
// moment iteration order leaks into a plan, a serialized output, a cache
// key, a hash, or a floating-point accumulator, runs stop being
// bit-identical — exactly the bug class the W1B1 bit-identity battery and
// the golden-plan tests exist to catch after the fact. DistDGL and DistGNN
// both report nondeterministic iteration order as the dominant source of
// silent cross-run divergence in distributed GNN stacks; this analyzer
// fails the build the moment a new code path introduces it.
//
// Flagged effects inside a `range m` body (m a map):
//
//   - append to a slice declared outside the loop, without a subsequent
//     sort of that slice in the same function (collect-then-sort is the
//     sanctioned pattern and is not flagged);
//   - string concatenation into a variable declared outside the loop;
//   - float32/float64 accumulation into a variable declared outside the
//     loop (float addition is not associative, so order changes the sum);
//   - calls to order-sensitive sinks (Write/WriteString/WriteByte/
//     WriteRune/Encode methods on receivers declared outside the loop, and
//     fmt.Fprint* calls) — bytes emitted per iteration encode the order.
//
// Integer/bool accumulation is exempt: integer addition, max, and set
// inserts are order-insensitive.
package mapdet

import (
	"go/ast"
	"go/token"
	"go/types"

	"dgcl/internal/analysis"
)

// Analyzer is the mapdet analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "mapdet",
	Doc: "flags range-over-map bodies whose iteration order leaks into plans, " +
		"serialized output, cache keys or float accumulators without an intervening sort",
	Run: run,
}

// orderSinkMethods are method names whose calls emit bytes in call order.
var orderSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// sortFuncs are the sort/slices functions that launder an append-collected
// slice back into a deterministic order.
var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true, "Slice": true,
	"SliceStable": true, "Sort": true, "SortFunc": true, "SortStableFunc": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.InspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rng, analysis.EnclosingFuncBody(stack))
			return true
		})
	}
	return nil
}

func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rng, fnBody, s)
		case *ast.CallExpr:
			checkSinkCall(pass, rng, s)
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt, s *ast.AssignStmt) {
	// x = append(x, ...) into an outer slice.
	if s.Tok == token.ASSIGN && len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
				if id, ok := s.Lhs[0].(*ast.Ident); ok &&
					analysis.DeclaredOutside(pass, id, rng.Pos(), rng.End()) &&
					!sortedAfter(pass, fnBody, rng, id) {
					pass.Reportf(s.Pos(),
						"append to %q inside range over map: element order follows the "+
							"randomized map iteration; sort %q afterwards or iterate sorted keys",
						id.Name, id.Name)
				}
				return
			}
		}
	}
	// Compound accumulation: s += v / s = s + v on outer string or float.
	var lhs ast.Expr
	switch {
	case (s.Tok == token.ADD_ASSIGN || s.Tok == token.SUB_ASSIGN) && len(s.Lhs) == 1:
		lhs = s.Lhs[0]
	case s.Tok == token.ASSIGN && len(s.Lhs) == 1 && len(s.Rhs) == 1:
		if bin, ok := s.Rhs[0].(*ast.BinaryExpr); ok &&
			(bin.Op == token.ADD || bin.Op == token.SUB) && mentions(bin, s.Lhs[0]) {
			lhs = s.Lhs[0]
		}
	}
	if lhs == nil {
		return
	}
	id, ok := lhs.(*ast.Ident) // indexed/field writes are keyed, not ordered
	if !ok || !analysis.DeclaredOutside(pass, id, rng.Pos(), rng.End()) {
		return
	}
	t := pass.TypeOf(id)
	switch {
	case analysis.IsString(t):
		pass.Reportf(s.Pos(),
			"string concatenation into %q inside range over map: output order follows "+
				"the randomized map iteration; iterate sorted keys", id.Name)
	case analysis.IsFloat(t):
		pass.Reportf(s.Pos(),
			"float accumulation into %q inside range over map: float addition is not "+
				"associative, so the sum depends on the randomized iteration order; "+
				"iterate sorted keys", id.Name)
	}
}

func checkSinkCall(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	if pkg, name := analysis.PkgFuncName(pass, call); pkg == "fmt" &&
		(name == "Fprintf" || name == "Fprint" || name == "Fprintln") {
		pass.Reportf(call.Pos(),
			"fmt.%s inside range over map writes in randomized iteration order; "+
				"iterate sorted keys", name)
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !orderSinkMethods[sel.Sel.Name] {
		return
	}
	// Method (not package-qualified) call on a receiver that outlives the loop.
	if _, isPkg := pass.ObjectOf(firstIdent(sel.X)).(*types.PkgName); isPkg {
		return
	}
	recv := analysis.RootIdent(sel.X)
	if recv == nil || !analysis.DeclaredOutside(pass, recv, rng.Pos(), rng.End()) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s.%s inside range over map emits bytes in randomized iteration order "+
			"(serialized output / hash input); iterate sorted keys",
		recv.Name, sel.Sel.Name)
}

// sortedAfter reports whether fnBody contains, after the range statement, a
// sort.* or slices.Sort* call taking the collected slice.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, slice *ast.Ident) bool {
	if fnBody == nil {
		return false
	}
	target := pass.ObjectOf(slice)
	if target == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		pkg, name := analysis.PkgFuncName(pass, call)
		if (pkg != "sort" && pkg != "slices") || !sortFuncs[name] {
			return true
		}
		for _, arg := range call.Args {
			if root := analysis.RootIdent(arg); root != nil && pass.ObjectOf(root) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentions reports whether expr contains an identifier denoting the same
// object as ref (an *ast.Ident).
func mentions(expr ast.Expr, ref ast.Expr) bool {
	refID, ok := ref.(*ast.Ident)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == refID.Name {
			found = true
		}
		return !found
	})
	return found
}

func firstIdent(e ast.Expr) *ast.Ident {
	if id := analysis.RootIdent(e); id != nil {
		return id
	}
	return &ast.Ident{Name: ""}
}
