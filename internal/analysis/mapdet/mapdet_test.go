package mapdet_test

import (
	"testing"

	"dgcl/internal/analysis/analysistest"
	"dgcl/internal/analysis/mapdet"
)

func TestMapdet(t *testing.T) {
	analysistest.Run(t, mapdet.Analyzer, "a")
}
