// Package a is the mapdet analysistest fixture: lines with `want` comments
// are the positive corpus, lines without are the negative corpus.
package a

import (
	"bytes"
	"fmt"
	"sort"
)

// appendNoSort leaks map order into the returned slice.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to \"keys\" inside range over map"
	}
	return keys
}

// appendThenSort is the sanctioned collect-then-sort pattern.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// appendLocal appends to a slice scoped inside the loop body.
func appendLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// stringConcat leaks map order into the output string.
func stringConcat(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want "string concatenation into \"out\" inside range over map"
	}
	return out
}

// floatAccum leaks map order into a non-associative float sum.
func floatAccum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "float accumulation into \"total\" inside range over map"
	}
	return total
}

// intAccum is order-insensitive and exempt.
func intAccum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// keyedWrite builds a keyed structure; no order leaks.
func keyedWrite(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// printSink emits bytes per iteration.
func printSink(m map[string]int, buf *bytes.Buffer) {
	for k, v := range m {
		fmt.Fprintf(buf, "%s=%d\n", k, v) // want "fmt.Fprintf inside range over map"
	}
}

// writerSink streams into an outer buffer.
func writerSink(m map[string]int) string {
	var b bytes.Buffer
	for k := range m {
		b.WriteString(k) // want "b.WriteString inside range over map"
	}
	return b.String()
}

// sliceRange is not a map range; nothing fires.
func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// nestedRanges: the same append sits in two map-range bodies but is reported
// once (diagnostics are deduplicated).
func nestedRanges(m map[string]map[string]int) []string {
	var keys []string
	for _, inner := range m {
		for k := range inner {
			keys = append(keys, k) // want "append to \"keys\" inside range over map"
		}
	}
	return keys
}

// suppressed documents an intentional use; the directive silences mapdet.
func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //dgclvet:ignore mapdet order re-established by the caller
	}
	return keys
}
