package floatorder_test

import (
	"testing"

	"dgcl/internal/analysis/analysistest"
	"dgcl/internal/analysis/floatorder"
)

func TestFloatorder(t *testing.T) {
	analysistest.Run(t, floatorder.Analyzer, "a")
}
