// Package a is the floatorder analysistest fixture.
package a

// sumAssign accumulates with +=.
func sumAssign(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x // want "scalar float accumulation into \"s\""
	}
	return s
}

// sumBinary accumulates with s = s + x.
func sumBinary(xs []float32) float32 {
	var s float32
	for i := 0; i < len(xs); i++ {
		s = s + xs[i] // want "scalar float accumulation into \"s\""
	}
	return s
}

// sumCommuted accumulates with the operands flipped.
func sumCommuted(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s = x + s // want "scalar float accumulation into \"s\""
	}
	return s
}

// sumSub accumulates with -=.
func sumSub(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s -= x // want "scalar float accumulation into \"s\""
	}
	return s
}

// detSum is a designated helper; the directive exempts it.
//
//dgclvet:detreduce plain left-to-right accumulation, order locked by tests.
func detSum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// elementWise has an indexed left-hand side: iteration order is pinned by
// the index loop, so it is exempt.
func elementWise(dst, src []float64) {
	for j := range src {
		dst[j] += src[j]
	}
}

// intSum accumulates integers; integer addition is associative.
func intSum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// loopLocal accumulates into a scalar declared inside the loop body.
func loopLocal(xs [][2]float64) float64 {
	var last float64
	for _, p := range xs {
		pair := p[0]
		pair += p[1]
		last = pair
	}
	return last
}

// noLoop is a single addition, not a reduction.
func noLoop(a, b float64) float64 {
	s := a
	s += b
	return s
}
