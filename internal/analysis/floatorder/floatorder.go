// Package floatorder implements the dgclvet analyzer that pins the paper's
// fixed-reduction-order discipline (§5.3: non-atomic backward aggregation).
//
// Distributed training is verified against single-device training "up to
// floating-point reassociation", and the cost model's stage sums feed
// golden-plan assertions that must be bit-identical across runs and
// refactors. Both properties die quietly the moment someone reassociates a
// float reduction — by accumulating in a different order, by splitting a
// loop, or by summing on multiple goroutines. The defense is to route every
// scalar float reduction through the small set of designated
// deterministic-reduce helpers (internal/tensor/reduce.go), whose
// left-to-right order is documented and locked by tests.
//
// The analyzer flags, inside internal/tensor, internal/gnn and
// internal/core/cost.go, any loop that accumulates into a float32/float64
// scalar declared outside the loop (s += x, s -= x, s = s + x), unless the
// enclosing function is itself a designated helper — marked by the
// //dgclvet:detreduce directive in its doc comment. Element-wise updates
// with indexed left-hand sides (row[j] += v) are exempt: their iteration
// order is pinned by the index loop itself.
package floatorder

import (
	"go/ast"
	"go/token"
	"path/filepath"

	"dgcl/internal/analysis"
)

// Directive marks a function as a designated deterministic-reduce helper in
// its doc comment. Marked functions are the implementation of the invariant
// and are exempt; everything else must call them.
const Directive = "dgclvet:detreduce"

// Analyzer is the floatorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "floatorder",
	Doc: "flags scalar float accumulation loops outside the designated " +
		"deterministic-reduce helpers (//dgclvet:detreduce)",
	AppliesTo: func(pkgPath string) bool {
		switch pkgPath {
		case "dgcl/internal/tensor", "dgcl/internal/gnn", "dgcl/internal/core":
			return true
		}
		return false
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Within internal/core only the cost model is in scope: cost.go's
		// stage sums are what golden plans and the equivalence battery pin.
		if pass.Pkg != nil && pass.Pkg.Path() == "dgcl/internal/core" {
			if filepath.Base(pass.Fset.Position(f.Pos()).Filename) != "cost.go" {
				continue
			}
		}
		analysis.InspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			s, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			checkAssign(pass, s, stack)
			return true
		})
	}
	return nil
}

func checkAssign(pass *analysis.Pass, s *ast.AssignStmt, stack []ast.Node) {
	var lhs ast.Expr
	switch {
	case (s.Tok == token.ADD_ASSIGN || s.Tok == token.SUB_ASSIGN) && len(s.Lhs) == 1:
		lhs = s.Lhs[0]
	case s.Tok == token.ASSIGN && len(s.Lhs) == 1 && len(s.Rhs) == 1:
		// s = s + x, s = s - x, and the commuted s = x + s.
		if bin, ok := s.Rhs[0].(*ast.BinaryExpr); ok {
			switch {
			case (bin.Op == token.ADD || bin.Op == token.SUB) && sameVar(pass, bin.X, s.Lhs[0]):
				lhs = s.Lhs[0]
			case bin.Op == token.ADD && sameVar(pass, bin.Y, s.Lhs[0]):
				lhs = s.Lhs[0]
			}
		}
	}
	if lhs == nil {
		return
	}
	// Indexed LHS (row[j] += v) is element-wise, not a scalar reduction.
	id, ok := lhs.(*ast.Ident)
	if !ok || !analysis.IsFloat(pass.TypeOf(id)) {
		return
	}
	loopBody := analysis.InnermostLoopBody(stack, s.Pos())
	if loopBody == nil {
		return
	}
	if !analysis.DeclaredOutside(pass, id, loopBody.Pos(), loopBody.End()) {
		return
	}
	if fd := analysis.EnclosingFuncDecl(stack); fd != nil && analysis.HasDirective(fd.Doc, Directive) {
		return
	}
	pass.Reportf(s.Pos(),
		"scalar float accumulation into %q outside a deterministic-reduce helper; "+
			"use the internal/tensor reduce helpers (Dot/Sum/Sum64/SumSquares) or mark "+
			"the function //dgclvet:detreduce with a fixed-order justification", id.Name)
}

// sameVar reports whether a and b are identifiers denoting the same object.
func sameVar(pass *analysis.Pass, a, b ast.Expr) bool {
	ai, ok := a.(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := b.(*ast.Ident)
	if !ok {
		return false
	}
	oa, ob := pass.ObjectOf(ai), pass.ObjectOf(bi)
	return oa != nil && oa == ob
}
