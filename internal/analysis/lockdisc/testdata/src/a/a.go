// Positive and negative corpus for lockdisc: lines with `want` comments
// must be flagged, lines without must stay silent.
package a

import (
	"sync"
	"time"
)

// conn is deadline-capable (SetReadDeadline(time.Time)), so lockdisc
// treats its Read/Write as socket I/O.
type conn struct{}

func (c *conn) Read(p []byte) (int, error)        { return 0, nil }
func (c *conn) Write(p []byte) (int, error)       { return 0, nil }
func (c *conn) SetReadDeadline(t time.Time) error { return nil }

type server struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	wg   sync.WaitGroup
	ch   chan int
	conn *conn
}

// sendUnderLock is L1.
func (s *server) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want "s.mu is held across a channel send"
	s.mu.Unlock()
}

// recvUnderLock is L1.
func (s *server) recvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "s.mu is held across a channel receive"
}

// unlockBeforeSend is the legal shape: release, then communicate.
func (s *server) unlockBeforeSend(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

// selectUnderLock is L2.
func (s *server) selectUnderLock(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "s.mu is held across a select without a default case"
	case v := <-s.ch:
		_ = v
	case <-done:
	}
}

// defaultSelectUnderLock is non-blocking and legal (the batcher's submit
// shape).
func (s *server) defaultSelectUnderLock(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

// connWriteUnderRLock is L3: readers block writers too.
func (s *server) connWriteUnderRLock(p []byte) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.conn.Write(p) // want "s.rw is held across net.Conn Write"
}

// sleepUnderLock is L3.
func (s *server) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "s.mu is held across time.Sleep"
	s.mu.Unlock()
}

// waitUnderLock is L3.
func (s *server) waitUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want "s.mu is held across sync.WaitGroup.Wait"
}

// condWaitIsExempt: sync.Cond.Wait releases the lock while waiting.
func (s *server) condWaitIsExempt() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cond.Wait()
}

// drain blocks (a bare receive): callers holding a lock get flagged one
// call deep.
func (s *server) drain() int {
	return <-s.ch
}

// callBlockingHelperUnderLock is L4.
func (s *server) callBlockingHelperUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drain() // want "s.mu is held across a call to server.drain, which blocks"
}

// pure is a non-blocking helper: calling it under a lock is fine.
func (s *server) pure(v int) int { return v * 2 }

func (s *server) callPureHelperUnderLock(v int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pure(v)
}

// spawnUnderLock: the goroutine does not run under the spawner's lock, and
// its body is its own unit (where the bare send is legal — ctxbound's
// concern, not lockdisc's).
func (s *server) spawnUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- v
	}()
}

// goroutineBodyIsChecked: a goroutine that takes the lock itself plays by
// the same rules.
func (s *server) goroutineBodyIsChecked(v int) {
	go func() {
		s.mu.Lock()
		s.ch <- v // want "s.mu is held across a channel send"
		s.mu.Unlock()
	}()
}

// branchIntersection: the lock is held on only one path into the send, so
// the join does not count it as held.
func (s *server) branchIntersection(lock bool, v int) {
	if lock {
		s.mu.Lock()
		s.mu.Unlock()
	}
	s.ch <- v
}

// readFullUnderLock is L3 via the io helper.
func (s *server) readFullUnderLock(buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	readFull(s.conn, buf) // want "s.mu is held across a call to readFull, which blocks"
}

func readFull(c *conn, buf []byte) error {
	for n := 0; n < len(buf); {
		m, err := c.Read(buf[n:])
		n += m
		if err != nil {
			return err
		}
	}
	return nil
}
