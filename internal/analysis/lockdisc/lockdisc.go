// Package lockdisc implements the dgclvet analyzer that keeps blocking
// operations out of mutex critical sections in the collective hot path
// (runtime, wire transport, serve).
//
// A goroutine that blocks while holding a sync.Mutex/RWMutex stalls every
// other goroutine contending for that lock: with one goroutine per GPU
// over shared transports, one blocked send under a lock serializes the
// whole collective — or deadlocks it, when the unblocking party needs the
// same lock. The rules, per function:
//
//   - L1: no channel send or receive while a mutex is held.
//   - L2: no select without a default case while a mutex is held (a
//     default-select is non-blocking and exempt; the select is reported
//     once, not each of its cases).
//   - L3: no net.Conn read/write (any SetReadDeadline-bearing type,
//     directly or via io.ReadFull/ReadAtLeast) and no time.Sleep or
//     sync.WaitGroup.Wait while a mutex is held.
//   - L4: no call to a package-local function that itself blocks (one
//     call deep, using the call graph).
//
// sync.Cond.Wait is exempt — it releases the lock while waiting, that is
// its contract. Function literals are separate analysis units with an
// empty held-set: a goroutine or deferred closure does not run under the
// spawner's critical section (the cost: a closure invoked inline while a
// lock is held is a blind spot, documented in DESIGN.md §14).
//
// The walk tracks the held-set structurally: Lock/RLock adds, Unlock/
// RUnlock removes, `defer x.Unlock()` holds to function exit, and branches
// merge on the intersection (a lock is "held" after a join only if every
// fall-through path held it), so unlock-before-select shapes analyze
// cleanly.
package lockdisc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"dgcl/internal/analysis"
)

// Analyzer is the lockdisc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockdisc",
	Doc: "flags mutexes held across blocking operations (channel ops, " +
		"selects without default, socket I/O, sleeps, WaitGroup waits, and " +
		"calls to local functions that block)",
	AppliesTo: func(pkgPath string) bool {
		switch pkgPath {
		case "dgcl/internal/runtime", "dgcl/internal/comm/wire",
			"dgcl/internal/serve":
			return true
		}
		return false
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	cg := analysis.BuildCallGraph(pass)
	// Depth-1 summaries: which local functions directly block.
	blocks := make(map[*analysis.FuncNode]bool, len(cg.Ordered))
	for _, fn := range cg.Ordered {
		blocks[fn] = directlyBlocks(pass, fn.Decl.Body)
	}
	for _, fn := range cg.Ordered {
		c := &checker{pass: pass, cg: cg, blocks: blocks}
		c.walkStmts(fn.Decl.Body.List, held{})
	}
	return nil
}

// held is the set of mutexes currently held, keyed by the lock expression's
// printed form ("l.wmu", "s.mu").
type held map[string]bool

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

type checker struct {
	pass   *analysis.Pass
	cg     *analysis.CallGraph
	blocks map[*analysis.FuncNode]bool
}

func (c *checker) walkStmts(stmts []ast.Stmt, h held) {
	for _, s := range stmts {
		c.walkStmt(s, h)
	}
}

func (c *checker) walkStmt(s ast.Stmt, h held) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		c.expr(x.X, h)
	case *ast.SendStmt:
		c.blocking(x.Pos(), "a channel send", h)
		c.expr(x.Chan, h)
		c.expr(x.Value, h)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			c.expr(r, h)
		}
		for _, l := range x.Lhs {
			c.expr(l, h)
		}
	case *ast.DeferStmt:
		// defer x.Unlock() pins the lock to function exit: no state change.
		// Other deferred calls run at exit, outside this critical section —
		// only their argument evaluation happens here, and a deferred
		// closure body is a separate unit.
		if name, op := c.lockOp(x.Call); name != "" && (op == "Unlock" || op == "RUnlock") {
			return
		}
		c.spawnedCall(x.Call, h)
	case *ast.GoStmt:
		// The spawned goroutine does not hold this goroutine's locks: only
		// argument evaluation runs here; the closure body is a separate
		// unit with an empty held-set.
		c.spawnedCall(x.Call, h)
	case *ast.DeclStmt:
		c.expr(x, h)
	case *ast.BlockStmt:
		c.walkStmts(x.List, h)
	case *ast.IfStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, h)
		}
		c.expr(x.Cond, h)
		thenH := h.clone()
		c.walkStmts(x.Body.List, thenH)
		elseH := h.clone()
		if x.Else != nil {
			c.walkStmt(x.Else, elseH)
		}
		c.mergeIntersect(h, branch{thenH, terminates(x.Body)}, branch{elseH, x.Else != nil && stmtTerminates(x.Else)})
	case *ast.ForStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, h)
		}
		if x.Cond != nil {
			c.expr(x.Cond, h)
		}
		bodyH := h.clone()
		c.walkStmts(x.Body.List, bodyH)
		if x.Post != nil {
			c.walkStmt(x.Post, bodyH)
		}
	case *ast.RangeStmt:
		c.expr(x.X, h)
		bodyH := h.clone()
		c.walkStmts(x.Body.List, bodyH)
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, h)
		}
		if x.Tag != nil {
			c.expr(x.Tag, h)
		}
		c.walkCases(x.Body, h)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, h)
		}
		c.walkCases(x.Body, h)
	case *ast.SelectStmt:
		if !hasDefault(x.Body) {
			c.blocking(x.Pos(), "a select without a default case", h)
		}
		// The comm clauses themselves are the select's blocking points,
		// already covered above; walk only the case bodies.
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				caseH := h.clone()
				c.walkStmts(cc.Body, caseH)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			c.expr(r, h)
		}
	case *ast.LabeledStmt:
		c.walkStmt(x.Stmt, h)
	}
}

type branch struct {
	h          held
	terminates bool
}

// mergeIntersect keeps a lock held after a join only when every
// fall-through branch held it, and adopts locks acquired on all
// fall-through branches.
func (c *checker) mergeIntersect(h held, branches ...branch) {
	live := branches[:0]
	for _, b := range branches {
		if !b.terminates {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		return
	}
	keys := map[string]bool{}
	for k := range h {
		keys[k] = true
	}
	for _, b := range live {
		for k := range b.h {
			keys[k] = true
		}
	}
	for k := range keys {
		all := true
		for _, b := range live {
			if !b.h[k] {
				all = false
				break
			}
		}
		if all {
			h[k] = true
		} else {
			delete(h, k)
		}
	}
}

func (c *checker) walkCases(body *ast.BlockStmt, h held) {
	var branches []branch
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			caseH := h.clone()
			for _, e := range cc.List {
				c.expr(e, caseH)
			}
			c.walkStmts(cc.Body, caseH)
			branches = append(branches, branch{caseH, listTerminates(cc.Body)})
		}
	}
	if len(branches) > 0 {
		c.mergeIntersect(h, branches...)
	}
}

// spawnedCall handles a go/defer call: arguments are evaluated now (under
// the current held-set), the call itself runs on another goroutine or at
// function exit, and a function-literal body is its own unit.
func (c *checker) spawnedCall(call *ast.CallExpr, h held) {
	for _, arg := range call.Args {
		c.expr(arg, h)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		c.walkStmts(lit.Body.List, held{})
	}
}

// expr inspects an expression (or small statement) for lock transitions,
// blocking operations, and nested function literals.
func (c *checker) expr(e ast.Node, h held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Separate unit, empty held-set.
			c.walkStmts(x.Body.List, held{})
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.blocking(x.Pos(), "a channel receive", h)
			}
		case *ast.CallExpr:
			c.call(x, h)
		}
		return true
	})
}

// call handles lock transitions and blocking calls.
func (c *checker) call(call *ast.CallExpr, h held) {
	if name, op := c.lockOp(call); name != "" {
		switch op {
		case "Lock", "RLock":
			h[name] = true
		case "Unlock", "RUnlock":
			delete(h, name)
		}
		return
	}
	if len(h) == 0 {
		return
	}
	if desc := c.blockingCall(call); desc != "" {
		c.blocking(call.Pos(), desc, h)
		return
	}
	// L4: a local callee that directly blocks.
	if callee := analysis.StaticCallee(c.pass, c.cg, call); callee != nil && c.blocks[callee] {
		c.blocking(call.Pos(), "a call to "+callee.Name()+", which blocks", h)
	}
}

// lockOp recognizes x.Lock/RLock/Unlock/RUnlock on a sync.Mutex/RWMutex
// (including embedded ones) and returns the lock's printed name and the
// operation.
func (c *checker) lockOp(call *ast.CallExpr) (lock, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	fn, ok := c.pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !analysis.IsNamedType(recv.Type(), "sync", "Mutex") && !analysis.IsNamedType(recv.Type(), "sync", "RWMutex") {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

// blockingCall classifies a call as directly blocking, returning a
// description or "".
func (c *checker) blockingCall(call *ast.CallExpr) string {
	if analysis.IsPkgCall(c.pass, call, "time", "Sleep") {
		return "time.Sleep"
	}
	for _, name := range []string{"ReadFull", "ReadAtLeast"} {
		if analysis.IsPkgCall(c.pass, call, "io", name) && len(call.Args) >= 1 &&
			analysis.IsDeadlineConn(c.pass.TypeOf(call.Args[0])) {
			return "io." + name + " on a net.Conn"
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recvT := c.pass.TypeOf(sel.X)
	switch sel.Sel.Name {
	case "Read", "Write":
		if analysis.IsDeadlineConn(recvT) {
			return "net.Conn " + sel.Sel.Name
		}
	case "Wait":
		if analysis.IsNamedType(recvT, "sync", "WaitGroup") {
			return "sync.WaitGroup.Wait"
		}
		// sync.Cond.Wait releases the lock while waiting: exempt.
	}
	return ""
}

func (c *checker) blocking(pos token.Pos, desc string, h held) {
	if len(h) == 0 {
		return
	}
	for _, name := range sortedKeys(h) {
		c.pass.Reportf(pos,
			"%s is held across %s; a blocked goroutine here stalls every %s waiter — "+
				"shrink the critical section", name, desc, name)
	}
}

func sortedKeys(h held) []string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// directlyBlocks reports whether a function body contains a blocking
// operation at its own level (function literals excluded), for the L4
// depth-1 summary.
func directlyBlocks(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			if !hasDefault(x.Body) {
				found = true
				return false
			}
			// A default-select is non-blocking: its comm clauses don't
			// count, but its case bodies still might.
			for _, cl := range x.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						if directlyBlocks(pass, &ast.BlockStmt{List: []ast.Stmt{s}}) {
							found = true
						}
					}
				}
			}
			return false
		case *ast.CallExpr:
			d := (&checker{pass: pass}).blockingCall(x)
			if d != "" {
				found = true
			}
		}
		return !found
	})
	return found
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func terminates(b *ast.BlockStmt) bool { return b != nil && listTerminates(b.List) }

func listTerminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return x.Tok == token.BREAK || x.Tok == token.CONTINUE || x.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(x)
	case *ast.IfStmt:
		return terminates(x.Body) && x.Else != nil && stmtTerminates(x.Else)
	}
	return false
}
