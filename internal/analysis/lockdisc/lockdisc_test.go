package lockdisc_test

import (
	"testing"

	"dgcl/internal/analysis/analysistest"
	"dgcl/internal/analysis/lockdisc"
)

func TestLockdisc(t *testing.T) {
	analysistest.Run(t, lockdisc.Analyzer, "a")
}
