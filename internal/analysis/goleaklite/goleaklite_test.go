package goleaklite_test

import (
	"testing"

	"dgcl/internal/analysis/analysistest"
	"dgcl/internal/analysis/goleaklite"
)

func TestGoleaklite(t *testing.T) {
	analysistest.Run(t, goleaklite.Analyzer, "a")
}
