// Package a is the goleaklite analysistest fixture.
package a

import "sync"

// leakySend: the goroutine blocks forever if nobody drains ch.
func leakySend(ch chan int) {
	go func() {
		ch <- 1 // want "channel send with no cancellation escape"
	}()
}

// leakyRecv: the goroutine blocks forever if nobody closes done.
func leakyRecv(done chan struct{}) {
	go func() {
		<-done // want "channel receive with no cancellation escape"
	}()
}

// guarded selects with an escape clause; nothing fires.
func guarded(ch chan int, done chan struct{}) {
	go func() {
		select {
		case ch <- 1:
		case <-done:
		}
	}()
}

// nonBlocking uses default as the escape.
func nonBlocking(ch chan int) {
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

// wgByValue copies the WaitGroup twice: at the call site and into the
// parameter. Done decrements the copies; Wait blocks forever.
func wgByValue(wg sync.WaitGroup) {
	go func(w sync.WaitGroup) { // want "WaitGroup parameter passed by value"
		w.Done()
	}(wg) // want "WaitGroup passed by value"
}

// wgByPointer is the correct form.
func wgByPointer(wg *sync.WaitGroup) {
	go func(w *sync.WaitGroup) {
		defer w.Done()
	}(wg)
}

// namedLaunch launches a declared function; channel discipline inside it is
// the callee's concern, and the argument is not a WaitGroup.
func namedLaunch(ch chan int) {
	go drain(ch)
}

func drain(ch chan int) {
	for range ch {
	}
}

// nested: each go statement is its own launch site; the inner leak is
// reported once, at the inner send.
func nested(ch chan int, done chan struct{}) {
	go func() {
		go func() {
			ch <- 1 // want "channel send with no cancellation escape"
		}()
		select {
		case ch <- 2:
		case <-done:
		}
	}()
}

// loopBody: a guarded receive loop is the sanctioned worker shape.
func loopBody(in chan int, done chan struct{}, out []int) {
	go func() {
		for {
			select {
			case v := <-in:
				out = append(out, v)
			case <-done:
				return
			}
		}
	}()
}
