// Package goleaklite implements the dgclvet analyzer that catches goroutine
// launches which can block forever.
//
// The chaos tier (PR 1) asserts the runtime is leak-free dynamically — for
// the fault schedules it happens to inject. This analyzer encodes the local
// discipline that makes those tests pass by construction:
//
//   - G1: a `go func() { ... }()` whose body performs a bare channel send
//     or receive (not the communication of a select with an escape) can
//     block forever once its peer errors out — the goroutine, its stack and
//     everything it captures leak. Channel ops inside goroutines must sit
//     in a select with a ctx.Done()/default escape, or behind a function
//     that takes a context.
//   - G2: passing a sync.WaitGroup *by value* into a goroutine (parameter
//     or argument) — the classic copied-WaitGroup bug: Done decrements the
//     copy and Wait blocks forever.
//
// Nested `go` statements are analyzed independently (each launch is its own
// finding site).
package goleaklite

import (
	"go/ast"
	"go/types"

	"dgcl/internal/analysis"
)

// Analyzer is the goleaklite analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goleaklite",
	Doc: "flags goroutine launches that can block forever: bare channel ops " +
		"without a cancellation escape, and WaitGroups passed by value",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, g)
			return true
		})
	}
	return nil
}

func checkGo(pass *analysis.Pass, g *ast.GoStmt) {
	// G2: WaitGroup by value, as an argument...
	for _, arg := range g.Call.Args {
		t := pass.TypeOf(arg)
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if analysis.IsNamedType(t, "sync", "WaitGroup") {
			pass.Reportf(arg.Pos(),
				"sync.WaitGroup passed by value to a goroutine: Done decrements a copy "+
					"and Wait blocks forever; pass a pointer")
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	// ...or as a parameter of the launched literal.
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			if t := pass.TypeOf(field.Type); t != nil && analysis.IsNamedType(t, "sync", "WaitGroup") && !isPointerType(field.Type) {
				pass.Reportf(field.Pos(),
					"sync.WaitGroup parameter passed by value into a goroutine: Done "+
						"decrements a copy and Wait blocks forever; pass a pointer")
			}
		}
	}
	// G1: bare blocking channel ops anywhere in the literal's body, skipping
	// nested go statements (they are visited as their own launch sites).
	analysis.InspectStack(lit.Body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			if !analysis.InCancellableSelect(stack, x) {
				pass.Reportf(x.Pos(),
					"goroutine performs a channel send with no cancellation escape and can "+
						"leak forever; select on the send and ctx.Done() (or a done channel)")
			}
		case *ast.UnaryExpr:
			if analysis.IsChanReceive(pass, x) && !analysis.InCancellableSelect(stack, x) {
				pass.Reportf(x.Pos(),
					"goroutine performs a channel receive with no cancellation escape and "+
						"can leak forever; select on the receive and ctx.Done() (or a done channel)")
			}
		}
		return true
	})
}

func isPointerType(e ast.Expr) bool {
	_, ok := e.(*ast.StarExpr)
	return ok
}
