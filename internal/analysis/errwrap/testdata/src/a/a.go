// Package a is the errwrap analysistest fixture.
package a

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func op() error { return errBase }

func opMulti() (int, error) { return 0, nil }

// badWrap cuts the error chain: %v keeps the text, loses errors.Is/As.
func badWrap(err error) error {
	return fmt.Errorf("collective: %v", err) // want "fmt.Errorf formats an error without %w"
}

// goodWrap preserves the chain.
func goodWrap(err error) error {
	return fmt.Errorf("collective: %w", err)
}

// noErrorArg formats plain values; nothing to wrap.
func noErrorArg(n int) error {
	return fmt.Errorf("bad count: %d", n)
}

type wrapped struct{ inner error }

// Error methods format their own message; %v is correct here (wrapping
// inside Error would recurse).
func (w *wrapped) Error() string {
	return fmt.Errorf("wrapped: %v", w.inner).Error()
}

// dropBlank discards the error.
func dropBlank() {
	_ = op() // want "error result discarded with _"
}

// dropStmt discards the error in statement position.
func dropStmt() {
	op() // want "error result is silently dropped"
}

// intentional documents a best-effort drop; the directive silences errwrap.
func intentional() {
	_ = op() //dgclvet:ignore errwrap best-effort cleanup on shutdown path
}

// handled is the normal shape.
func handled() error {
	if err := op(); err != nil {
		return fmt.Errorf("op failed: %w", err)
	}
	return nil
}

// multiValued drops a tuple; out of errwrap's single-error scope.
func multiValued() {
	opMulti()
}

// assigned errors are the caller's to handle; only blank/statement drops fire.
func assigned() error {
	err := op()
	return err
}
