// Package errwrap implements the dgclvet analyzer that enforces the per-GPU
// error discipline of the graphAllgather runtime.
//
// PR 1 established the failure-semantics contract: every client failure
// inside a collective surfaces as a CollectiveError carrying the per-GPU
// error slice, and callers match causes with errors.Is/As through the
// wrapping chain. Two local mistakes silently break that contract, and both
// are invisible to go vet:
//
//   - E1: rewrapping with fmt.Errorf("...: %v", err) instead of %w. The
//     text survives but the chain is cut — errors.Is(err, ErrLinkDown) and
//     errors.As(err, *CollectiveError) stop matching, so retry policies and
//     chaos assertions degrade to string matching.
//   - E2: discarding an error outright (`_ = op()` or a bare statement-
//     position call returning only an error). A dropped transport error is
//     how a lost message turns back into a silent hang or a stale-tensor
//     read. Intentional best-effort drops must carry a
//     //dgclvet:ignore errwrap directive with a justification.
//
// Methods named Error or String are exempt from E1: formatting an error's
// own message with %v there is correct (wrapping inside Error() would
// recurse).
package errwrap

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"dgcl/internal/analysis"
)

// Analyzer is the errwrap analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "flags error handling that cuts the CollectiveError chain: " +
		"fmt.Errorf with %v instead of %w, and discarded error results",
	AppliesTo: func(pkgPath string) bool {
		return pkgPath == "dgcl/internal/runtime" || pkgPath == "dgcl/internal/collective"
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.InspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, x, stack)
			case *ast.AssignStmt:
				checkBlankAssign(pass, x)
			case *ast.ExprStmt:
				checkDroppedCall(pass, x)
			}
			return true
		})
	}
	return nil
}

// checkErrorf flags fmt.Errorf calls that format an error argument without a
// %w verb in a literal format string (E1).
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	if !analysis.IsPkgCall(pass, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	if fd := analysis.EnclosingFuncDecl(stack); fd != nil &&
		(fd.Name.Name == "Error" || fd.Name.Name == "String") {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if analysis.IsErrorType(pass.TypeOf(arg)) {
			pass.Reportf(call.Pos(),
				"fmt.Errorf formats an error without %%w, cutting the error chain: "+
					"errors.Is/As (and CollectiveError unwrapping) stop matching; use %%w")
			return
		}
	}
}

// checkBlankAssign flags `_ = call` where the call returns exactly one value
// of type error (E2).
func checkBlankAssign(pass *analysis.Pass, s *ast.AssignStmt) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	if id, ok := s.Lhs[0].(*ast.Ident); !ok || id.Name != "_" {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !returnsOnlyError(pass, call) {
		return
	}
	pass.Reportf(s.Pos(),
		"error result discarded with _: a dropped transport/collective error becomes "+
			"a silent hang or stale read; handle it, or annotate //dgclvet:ignore errwrap "+
			"with a justification if the drop is intentional")
}

// checkDroppedCall flags a statement-position call whose only result is an
// error (E2). Calls returning nothing (or non-error values) are fine.
func checkDroppedCall(pass *analysis.Pass, s *ast.ExprStmt) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok || !returnsOnlyError(pass, call) {
		return
	}
	pass.Reportf(s.Pos(),
		"call's error result is silently dropped; handle it, or annotate "+
			"//dgclvet:ignore errwrap with a justification if the drop is intentional")
}

// returnsOnlyError reports whether the call yields exactly one value, of type
// error. Conversions and builtin calls never match.
func returnsOnlyError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || !tv.IsValue() {
		return false
	}
	if _, isTuple := tv.Type.(*types.Tuple); isTuple {
		return false
	}
	return analysis.IsErrorType(tv.Type)
}
