package errwrap_test

import (
	"testing"

	"dgcl/internal/analysis/analysistest"
	"dgcl/internal/analysis/errwrap"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, errwrap.Analyzer, "a")
}
