package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Loader parses and type-checks packages for analysis. All packages loaded
// through one Loader share a FileSet and a source importer, so the standard
// library is type-checked at most once per Loader.
//
// Type information comes from the stdlib "source" importer (go/types over
// source files), which works fully offline — the module has no dependencies
// beyond the standard library, so no export data or module proxy is needed.
type Loader struct {
	fset *token.FileSet
	mu   sync.Mutex
	imp  types.Importer
}

// NewLoader returns a fresh loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

var defaultLoader = sync.OnceValue(NewLoader)

// DefaultLoader returns a process-wide shared loader, so multiple tests in
// one binary amortize standard-library type-checking.
func DefaultLoader() *Loader { return defaultLoader() }

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves the go-list patterns relative to dir and returns one
// type-checked Package per matched Go package, sorted by import path. Test
// files are excluded (GoFiles only): the analyzers enforce production-code
// invariants, and testdata fixtures deliberately violate them.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, patterns...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		listed = append(listed, p)
	}
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := l.check(lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks every non-test .go file directly in dir as
// a single package with the given import path. It is the entry point the
// analysistest harness uses for testdata packages, which live outside the
// module's package tree.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, m := range matches {
		if strings.HasSuffix(m, "_test.go") {
			continue
		}
		files = append(files, m)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(path, files)
}

// check parses the files and type-checks them as one package. Type errors
// are collected, not fatal: analyzers run on the partial information (the
// repository's own tree always type-checks; the tolerance is for testdata).
func (l *Loader) check(path string, filenames []string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var astFiles []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", fn, err)
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, astFiles, info) // errors already collected
	return &Package{
		Path: path, Fset: l.fset, Files: astFiles,
		Types: tpkg, Info: info, TypeErrors: typeErrs,
	}, nil
}
