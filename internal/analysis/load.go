package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Loader parses and type-checks packages for analysis. All packages loaded
// through one Loader share a FileSet and a source importer, so the standard
// library is type-checked at most once per Loader.
//
// Type information comes from the stdlib "source" importer (go/types over
// source files), which works fully offline — the module has no dependencies
// beyond the standard library, so no export data or module proxy is needed.
type Loader struct {
	fset *token.FileSet
	mu   sync.Mutex
	imp  types.Importer
}

// NewLoader returns a fresh loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

var defaultLoader = sync.OnceValue(NewLoader)

// DefaultLoader returns a process-wide shared loader, so multiple tests in
// one binary amortize standard-library type-checking.
func DefaultLoader() *Loader { return defaultLoader() }

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves the go-list patterns relative to dir and returns one
// type-checked Package per matched Go package, sorted by import path. Test
// files are excluded (GoFiles only): the analyzers enforce production-code
// invariants, and testdata fixtures deliberately violate them.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, patterns...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		listed = append(listed, p)
	}
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			// go list -e reports per-package resolution failures inline.
			// Surface them as a loaded-but-broken package so the driver can
			// diagnose every pattern instead of aborting on the first.
			pkgs = append(pkgs, &Package{
				Path:    lp.ImportPath,
				LoadErr: strings.TrimSpace(lp.Error.Err),
			})
			continue
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := l.check(lp.ImportPath, files, nil)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks every non-test .go file directly in dir as
// a single package with the given import path. It is the entry point the
// analysistest harness uses for testdata packages, which live outside the
// module's package tree.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	files, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return l.check(path, files, nil)
}

// LoadTree loads dir as the package `path` plus every subdirectory of dir
// containing Go files as `path/<rel>`. The packages are type-checked in
// dependency order with imports among them resolved to the freshly checked
// packages, so multi-package testdata fixtures can exercise cross-package
// behavior (a root fixture importing its own helper package). Returns the
// packages sorted by import path.
func (l *Loader) LoadTree(dir, path string) ([]*Package, error) {
	type node struct {
		path  string
		files []string
		deps  []string // local import paths only
	}
	var nodes []*node
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		files, err := goFilesIn(p)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return err
		}
		ipath := path
		if rel != "." {
			ipath = path + "/" + filepath.ToSlash(rel)
		}
		nodes = append(nodes, &node{path: ipath, files: files})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("analysis: no Go files under %s", dir)
	}
	local := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		local[n.path] = true
	}
	// Discover which local packages each node imports, with a throwaway
	// FileSet: these parses exist only to read import clauses, and the real
	// positions come from the type-checking parse below.
	impFset := token.NewFileSet()
	for _, n := range nodes {
		for _, fn := range n.files {
			f, err := parser.ParseFile(impFset, fn, nil, parser.ImportsOnly)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse %s: %w", fn, err)
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err == nil && local[p] && p != n.path {
					n.deps = append(n.deps, p)
				}
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].path < nodes[j].path })
	// Check in dependency order. The pass structure keeps iteration
	// deterministic (sorted slice, not map order); no progress means an
	// import cycle among the fixtures.
	checked := make(map[string]*types.Package, len(nodes))
	pkgs := make([]*Package, 0, len(nodes))
	remaining := nodes
	for len(remaining) > 0 {
		var next []*node
		progressed := false
		for _, n := range remaining {
			ready := true
			for _, dep := range n.deps {
				if checked[dep] == nil {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, n)
				continue
			}
			pkg, err := l.check(n.path, n.files, checked)
			if err != nil {
				return nil, err
			}
			checked[n.path] = pkg.Types
			pkgs = append(pkgs, pkg)
			progressed = true
		}
		if !progressed {
			var stuck []string
			for _, n := range next {
				stuck = append(stuck, n.path)
			}
			return nil, fmt.Errorf("analysis: import cycle among testdata packages: %s", strings.Join(stuck, ", "))
		}
		remaining = next
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// goFilesIn returns the sorted non-test .go files directly in dir.
func goFilesIn(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, m := range matches {
		if strings.HasSuffix(m, "_test.go") {
			continue
		}
		files = append(files, m)
	}
	sort.Strings(files)
	return files, nil
}

// overlayImporter resolves a fixed set of already-checked local packages
// before falling back to the loader's source importer. LoadTree uses it so
// testdata packages can import their sibling fixtures by the synthetic
// import paths they were checked under.
type overlayImporter struct {
	base  types.Importer
	local map[string]*types.Package
}

func (o *overlayImporter) Import(path string) (*types.Package, error) {
	if pkg := o.local[path]; pkg != nil {
		return pkg, nil
	}
	return o.base.Import(path)
}

// check parses the files and type-checks them as one package. Type errors
// are collected, not fatal: analyzers run on the partial information (the
// repository's own tree always type-checks; the tolerance is for testdata).
// A non-nil local map overlays already-checked packages over the source
// importer.
func (l *Loader) check(path string, filenames []string, local map[string]*types.Package) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var astFiles []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", fn, err)
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	imp := l.imp
	if len(local) > 0 {
		imp = &overlayImporter{base: l.imp, local: local}
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, astFiles, info) // errors already collected
	return &Package{
		Path: path, Fset: l.fset, Files: astFiles,
		Types: tpkg, Info: info, TypeErrors: typeErrs,
	}, nil
}
