package analysistest_test

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"dgcl/internal/analysis"
	"dgcl/internal/analysis/analysistest"
)

// flagAnalyzer reports every top-level function whose name starts with
// "Flag" — a trivial check whose findings the multi fixture pins with wants
// in both the root package and its imported subpackage.
var flagAnalyzer = &analysis.Analyzer{
	Name: "flagtest",
	Doc:  "reports functions named Flag* (harness self-test)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Flag") {
					pass.Reportf(fd.Pos(), "function %s is flagged", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

// silentAnalyzer reports nothing, so every want in the fixture goes
// unmatched.
var silentAnalyzer = &analysis.Analyzer{
	Name: "silenttest",
	Doc:  "reports nothing (harness self-test)",
	Run:  func(pass *analysis.Pass) error { return nil },
}

// noisyAnalyzer reports on a line that carries no want.
var noisyAnalyzer = &analysis.Analyzer{
	Name: "noisytest",
	Doc:  "reports unexpected findings (harness self-test)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "clean" {
					pass.Reportf(fd.Pos(), "function %s is flagged", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

// The multi fixture loads the root package plus its subdirectory package,
// resolves the cross-package import, and matches wants in both files.
func TestMultiPackageFixture(t *testing.T) {
	analysistest.Run(t, flagAnalyzer, "multi")
}

// fakeTB records harness failures instead of failing the real test.
type fakeTB struct {
	errors []string
	fatal  string
}

type fatalCalled struct{}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.errors = append(f.errors, fmt.Sprintf(format, args...))
}
func (f *fakeTB) Fatalf(format string, args ...any) {
	f.fatal = fmt.Sprintf(format, args...)
	panic(fatalCalled{})
}

// runFake runs the harness against a recording reporter, translating its
// Fatalf panic back into a return.
func runFake(a *analysis.Analyzer, pkg string) *fakeTB {
	fake := &fakeTB{}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(fatalCalled); !ok {
					panic(r)
				}
			}
		}()
		analysistest.RunTB(fake, a, pkg)
	}()
	return fake
}

// A want with no matching diagnostic must fail — in every package of the
// tree, not just the root.
func TestHarnessCatchesMissingDiagnostics(t *testing.T) {
	fake := runFake(silentAnalyzer, "multi")
	if fake.fatal != "" {
		t.Fatalf("unexpected fatal: %s", fake.fatal)
	}
	if len(fake.errors) != 2 {
		t.Fatalf("silent analyzer produced %d errors, want 2 (one per unmatched want):\n%s",
			len(fake.errors), strings.Join(fake.errors, "\n"))
	}
	joined := strings.Join(fake.errors, "\n")
	for _, frag := range []string{"a.go", "sub.go", "expected diagnostic"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("errors missing %q:\n%s", frag, joined)
		}
	}
}

// A diagnostic on a line with no want must fail, and the matched wants must
// not mask it.
func TestHarnessCatchesUnexpectedDiagnostic(t *testing.T) {
	fake := runFake(noisyAnalyzer, "multi")
	joined := strings.Join(fake.errors, "\n")
	if !strings.Contains(joined, "unexpected diagnostic") {
		t.Fatalf("unexpected diagnostic not reported:\n%s", joined)
	}
}

// A missing fixture directory is a fatal load error, not a silent pass.
func TestHarnessFatalOnMissingFixture(t *testing.T) {
	fake := runFake(flagAnalyzer, "nosuchfixture")
	if fake.fatal == "" {
		t.Fatal("missing fixture did not Fatalf")
	}
	if !strings.Contains(fake.fatal, "nosuchfixture") {
		t.Fatalf("fatal does not name the fixture: %s", fake.fatal)
	}
}
