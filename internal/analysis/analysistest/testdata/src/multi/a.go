// Package multi is the harness's own fixture: a root package importing a
// sibling testdata package, with expectations in both files, proving the
// loader resolves fixture-local imports and the matcher covers every loaded
// package.
package multi

import "multi/sub"

func FlagRoot() sub.Thing { // want "function FlagRoot is flagged"
	return sub.Make()
}

func clean() int {
	t := FlagRoot()
	return t.N + sub.FlagValue
}
