// Package sub is the helper package the multi fixture imports.
package sub

// FlagValue exists so the root package uses a cross-package constant.
const FlagValue = 7

// Thing crosses the package boundary as a return type.
type Thing struct{ N int }

// Make builds a Thing.
func Make() Thing { return Thing{N: FlagValue} }

func FlagHelper() {} // want "function FlagHelper is flagged"
