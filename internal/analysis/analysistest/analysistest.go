// Package analysistest runs a dgclvet analyzer over a testdata package and
// checks its diagnostics against expectations written in the source, in the
// style of golang.org/x/tools/go/analysis/analysistest:
//
//	badSend(ch) // want "channel send outside a cancellable select"
//
// A `// want` comment holds one or more quoted Go strings, each a regular
// expression. Every expectation must be matched by a diagnostic reported on
// the same line, and every diagnostic must be matched by an expectation —
// unmatched items in either direction fail the test. This makes each
// testdata file simultaneously the positive corpus (lines with wants) and
// the negative corpus (lines without).
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dgcl/internal/analysis"
)

// expectation is one `want` regexp at a source line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// TB is the subset of testing.T the harness reports through. The seam lets
// the harness's own tests substitute a recording reporter and assert that
// mismatches in either direction are caught — a harness whose failures can't
// be tested is a harness that can silently stop failing.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Run loads testdata/src/<pkg> (relative to the calling test's directory) —
// plus any subdirectories as packages importable by the fixtures as
// "<pkg>/<subdir>" — runs the analyzer over every loaded package, and
// reports mismatches between diagnostics and `// want` expectations
// through t.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	RunTB(t, a, pkg)
}

// RunTB is Run against any TB. After a Fatalf the reporter must not return
// control (testing.T's kills the goroutine; a fake should panic).
func RunTB(t TB, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	pkgs, err := analysis.DefaultLoader().LoadTree(dir, pkg)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	for _, p := range pkgs {
		diags, err := p.Run([]*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, p.Path, err)
		}
		wants, err := parseWants(p)
		if err != nil {
			t.Fatalf("parse want comments in %s: %v", p.Path, err)
		}
		for _, d := range diags {
			pos := p.Fset.Position(d.Pos)
			if w := match(wants, pos.Filename, pos.Line, d.Message); w != nil {
				w.matched = true
				continue
			}
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
			}
		}
	}
}

// match returns the first unmatched expectation at (file, line) whose regexp
// matches msg, or nil.
func match(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

// parseWants extracts the `// want "re" ["re" ...]` expectations from every
// file of the package.
func parseWants(p *analysis.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: malformed want comment %q: %v",
							pos.Filename, pos.Line, c.Text, err)
					}
					raw, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: unquote %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: raw,
					})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants, nil
}
