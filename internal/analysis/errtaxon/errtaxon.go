// Package errtaxon implements the dgclvet analyzer that enforces the error
// taxonomy discipline: typed sentinels (ErrOverload, ErrDeviceDown,
// errLinkDown) and structured error types (DeviceDownError,
// CollectiveError) must be matched with errors.Is/errors.As, never with
// ==/!= or a type assertion/switch.
//
// The failure-semantics contract wraps every error with per-GPU context
// ("runtime: GPU 3 send: ...: device down") as it crosses a layer. A
// direct == against a sentinel or a direct type assertion silently stops
// matching the moment anyone adds a wrapping layer — the bug class where
// failover works in the unit test and misses in the full stack. The rules:
//
//   - E1: ==/!= between two error-typed operands is flagged unless one
//     side is nil (the universal "did it fail" check).
//   - E2: a type assertion err.(T) from an error interface to a concrete
//     error type is flagged; asserting to another *interface* (err.(net.
//     Error)) stays legal — errors.As handles interfaces poorly and the
//     stdlib itself blesses the pattern.
//   - E3: a type switch over an error-typed operand with concrete error
//     case types is flagged, one report per offending case.
//
// Exemption: the bodies of Is/As methods — an `Is(target error) bool`
// implementation is exactly where == against a sentinel belongs.
package errtaxon

import (
	"go/ast"
	"go/token"
	"go/types"

	"dgcl/internal/analysis"
)

// Analyzer is the errtaxon analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errtaxon",
	Doc: "flags error sentinels and typed errors matched with ==, type " +
		"assertions, or type switches instead of errors.Is/errors.As",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "Is" || fd.Name.Name == "As" {
				// An Is/As method body is where direct matching belongs.
				continue
			}
			check(pass, fd.Body)
		}
	}
	return nil
}

func check(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			checkComparison(pass, x)
		case *ast.TypeAssertExpr:
			checkAssert(pass, x)
		case *ast.TypeSwitchStmt:
			checkTypeSwitch(pass, x)
			// The implicit assertions inside are reported per-case above;
			// don't also fire E2 on the Assign clause.
			for _, cl := range x.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					for _, s := range cc.Body {
						check(pass, &ast.BlockStmt{List: []ast.Stmt{s}})
					}
				}
			}
			return false
		}
		return true
	})
}

// checkComparison is E1.
func checkComparison(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isNil(pass, b.X) || isNil(pass, b.Y) {
		return
	}
	if !isErrorish(pass.TypeOf(b.X)) || !isErrorish(pass.TypeOf(b.Y)) {
		return
	}
	op, fix := "==", "errors.Is(err, sentinel)"
	if b.Op == token.NEQ {
		op = "!="
	}
	pass.Reportf(b.OpPos,
		"error compared with %s; one wrapping layer breaks this match — use %s",
		op, fix)
}

// checkAssert is E2.
func checkAssert(pass *analysis.Pass, x *ast.TypeAssertExpr) {
	if x.Type == nil {
		return // the type-switch guard, handled by checkTypeSwitch
	}
	from := pass.TypeOf(x.X)
	to := pass.TypeOf(x.Type)
	if !isErrorInterface(from) || to == nil {
		return
	}
	if types.IsInterface(to) {
		return // err.(net.Error) and friends stay legal
	}
	if !implementsError(to) {
		return
	}
	pass.Reportf(x.Pos(),
		"error type-asserted to %s; one wrapping layer breaks this match — "+
			"use errors.As(err, &target)", types.TypeString(to, types.RelativeTo(pass.Pkg)))
}

// checkTypeSwitch is E3.
func checkTypeSwitch(pass *analysis.Pass, x *ast.TypeSwitchStmt) {
	// Extract the switched-on expression: `switch v := err.(type)` or
	// `switch err.(type)`.
	var operand ast.Expr
	switch a := x.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				operand = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			operand = ta.X
		}
	}
	if operand == nil || !isErrorInterface(pass.TypeOf(operand)) {
		return
	}
	for _, cl := range x.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, typeExpr := range cc.List {
			t := pass.TypeOf(typeExpr)
			if t == nil || types.IsInterface(t) || !implementsError(t) {
				continue
			}
			if id, ok := typeExpr.(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			pass.Reportf(typeExpr.Pos(),
				"type switch matches error case %s; one wrapping layer breaks this "+
					"match — use errors.As(err, &target)",
				types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// isErrorish reports whether t is an interface type that implements error
// (the error interface itself or a superset). Concrete error types compared
// with == are pointer-identity checks, which may be intentional; the
// sentinel-matching bug class needs an interface on both sides.
func isErrorish(t types.Type) bool {
	return t != nil && types.IsInterface(t) && implementsError(t)
}

// isErrorInterface reports whether t is an error-implementing interface —
// the "we don't know the concrete type yet" shape assertions start from.
func isErrorInterface(t types.Type) bool { return isErrorish(t) }

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}
