package errtaxon_test

import (
	"testing"

	"dgcl/internal/analysis/analysistest"
	"dgcl/internal/analysis/errtaxon"
)

func TestErrtaxon(t *testing.T) {
	analysistest.Run(t, errtaxon.Analyzer, "a")
}
