// Positive and negative corpus for errtaxon: lines with `want` comments
// must be flagged, lines without must stay silent.
package a

import (
	"errors"
	"fmt"
	"io"
	"net"
)

// ErrOverload mirrors the serve admission sentinel.
var ErrOverload = errors.New("overloaded")

// DeviceDownError mirrors the runtime's structured failure type.
type DeviceDownError struct{ Device int }

func (e *DeviceDownError) Error() string { return fmt.Sprintf("device %d down", e.Device) }

// sentinelEquality is E1.
func sentinelEquality(err error) bool {
	return err == ErrOverload // want "error compared with ==; one wrapping layer breaks this match"
}

// sentinelInequality is E1 with !=.
func sentinelInequality(err error) bool {
	if err != io.EOF { // want "error compared with !=; one wrapping layer breaks this match"
		return true
	}
	return false
}

// nilChecksAreLegal: the universal "did it fail" comparison.
func nilChecksAreLegal(err error) bool {
	if err == nil {
		return true
	}
	return err != nil
}

// errorsIsIsTheFix is the blessed form.
func errorsIsIsTheFix(err error) bool {
	return errors.Is(err, ErrOverload)
}

// concreteAssertion is E2.
func concreteAssertion(err error) int {
	if dde, ok := err.(*DeviceDownError); ok { // want "error type-asserted to \\*DeviceDownError"
		return dde.Device
	}
	return -1
}

// interfaceAssertionIsLegal: err.(net.Error) asserts to an interface, the
// pattern the stdlib itself blesses for timeouts.
func interfaceAssertionIsLegal(err error) bool {
	if ne, ok := err.(net.Error); ok {
		return ne.Timeout()
	}
	return false
}

// errorsAsIsTheFix is the blessed form.
func errorsAsIsTheFix(err error) int {
	var dde *DeviceDownError
	if errors.As(err, &dde) {
		return dde.Device
	}
	return -1
}

// typeSwitchOnError is E3, one report per concrete error case.
func typeSwitchOnError(err error) int {
	switch e := err.(type) {
	case *DeviceDownError: // want "type switch matches error case \\*DeviceDownError"
		return e.Device
	case net.Error:
		return -2
	case nil:
		return 0
	default:
		return -1
	}
}

// typeSwitchOnNonError: switching over a plain interface{} is not error
// matching.
func typeSwitchOnNonError(v interface{}) int {
	switch v.(type) {
	case *DeviceDownError:
		return 1
	case string:
		return 2
	}
	return 0
}

// overloadError carries a temporary-overload signal.
type overloadError struct{}

func (overloadError) Error() string { return "overload" }

// Is implements the errors.Is contract: direct == belongs here and is
// exempt.
func (overloadError) Is(target error) bool {
	return target == ErrOverload
}

// comparingConcretePointers: both sides concrete — pointer identity, which
// may be intentional; errtaxon only polices interface matching.
func comparingConcretePointers(a, b *DeviceDownError) bool {
	return a == b
}
