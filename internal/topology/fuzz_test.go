package topology

import (
	"strings"
	"testing"
)

// FuzzParseSpec: the fabric parser must never panic, and every accepted
// fabric must support channel computation between all GPU pairs that are
// connected.
func FuzzParseSpec(f *testing.F) {
	f.Add("node g gpu\nnode h gpu\nlink g h nv1\n")
	f.Add("node g gpu machine=0\n")
	f.Add("link a b pcie\n")
	f.Add("node c cpu\nnode m mem\nlink c m membus\n")
	f.Add("node g gpu\nnode h gpu\nlink g h nv2 bw=1e9\n# x\n")
	f.Fuzz(func(t *testing.T, input string) {
		topo, err := ParseSpec("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted fabrics must render and answer channel queries without
		// panicking (errors are fine: fabrics may be disconnected).
		_ = topo.Summary()
		_ = topo.Matrix()
		n := topo.NumGPUs()
		for i := 0; i < n && i < 4; i++ {
			for j := 0; j < n && j < 4; j++ {
				if i != j {
					_, _ = topo.GPUChannel(i, j)
				}
			}
		}
	})
}
