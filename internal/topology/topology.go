// Package topology models the physical communication fabric of a GPU
// cluster: GPUs, CPU sockets, PCIe switches, NICs and host memory connected
// by typed physical links (NVLink, PCIe, QPI, IB, Ethernet). It provides the
// builders for the paper's hardware configurations (the NVIDIA DGX-1 of
// Figure 3, the two-machine 16-GPU setup, and the PCIe-only 8-GPU server) and
// computes the physical hop chains that logical GPU-to-GPU channels traverse.
package topology

import (
	"fmt"
	"sort"
)

// LinkType classifies a physical connection. Bandwidths follow Table 1 of
// the paper (measured GB/s on the authors' testbed).
type LinkType int

const (
	NV2      LinkType = iota // two bonded NVLinks
	NV1                      // single NVLink
	PCIe                     // PCIe 3.0 x16 hop
	QPI                      // cross-socket interconnect
	IB                       // InfiniBand NIC-to-NIC
	Ethernet                 // commodity Ethernet
	MemBus                   // CPU to host memory (not a bottleneck)
)

const gb = 1e9 // bytes per GB/s unit

// tableOneSpeeds holds Table 1 of the paper, in bytes/second.
var tableOneSpeeds = [...]float64{
	NV2:      48.35 * gb,
	NV1:      24.22 * gb,
	PCIe:     11.13 * gb,
	QPI:      9.56 * gb,
	IB:       6.37 * gb,
	Ethernet: 3.12 * gb,
	MemBus:   60.0 * gb,
}

var linkTypeNames = [...]string{
	NV2: "NV2", NV1: "NV1", PCIe: "PCIe", QPI: "QPI", IB: "IB",
	Ethernet: "Ethernet", MemBus: "MemBus",
}

// Bandwidth returns the nominal bandwidth of the link type in bytes/second.
func (t LinkType) Bandwidth() float64 { return tableOneSpeeds[t] }

// IsNVLink reports whether the type is an NVLink variant.
func (t LinkType) IsNVLink() bool { return t == NV1 || t == NV2 }

func (t LinkType) String() string {
	if int(t) < len(linkTypeNames) {
		return linkTypeNames[t]
	}
	return fmt.Sprintf("LinkType(%d)", int(t))
}

// NodeKind classifies a fabric node.
type NodeKind int

const (
	GPU NodeKind = iota
	CPU
	Switch
	NIC
	HostMem
)

func (k NodeKind) String() string {
	switch k {
	case GPU:
		return "GPU"
	case CPU:
		return "CPU"
	case Switch:
		return "Switch"
	case NIC:
		return "NIC"
	case HostMem:
		return "HostMem"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// NodeID identifies a fabric node within a Topology.
type NodeID int32

// Node is one element of the fabric.
type Node struct {
	ID      NodeID
	Kind    NodeKind
	Machine int // machine (server) index
	GPU     int // GPU index if Kind==GPU, else -1
	Name    string
}

// Conn is a full-duplex physical connection between two fabric nodes. The
// same Conn is the contention domain: concurrent transfers crossing it in a
// stage share its bandwidth.
type Conn struct {
	ID        int
	A, B      NodeID
	Type      LinkType
	Bandwidth float64 // bytes/second
}

// Other returns the endpoint of c opposite to n.
func (c Conn) Other(n NodeID) NodeID {
	if c.A == n {
		return c.B
	}
	return c.A
}

// Topology is an immutable description of the fabric.
type Topology struct {
	Name     string
	nodes    []Node
	conns    []Conn
	adj      [][]int  // node -> indices into conns
	gpuNodes []NodeID // gpu index -> node
	memNodes []NodeID // machine -> host memory node
	machines int
}

// Builder incrementally constructs a Topology.
type Builder struct {
	t Topology
}

// NewBuilder returns an empty topology builder with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{t: Topology{Name: name}}
}

// AddNode adds a fabric node and returns its id.
func (b *Builder) AddNode(kind NodeKind, machine int, name string) NodeID {
	id := NodeID(len(b.t.nodes))
	n := Node{ID: id, Kind: kind, Machine: machine, GPU: -1, Name: name}
	if kind == GPU {
		n.GPU = len(b.t.gpuNodes)
		b.t.gpuNodes = append(b.t.gpuNodes, id)
	}
	if kind == HostMem {
		for len(b.t.memNodes) <= machine {
			b.t.memNodes = append(b.t.memNodes, -1)
		}
		b.t.memNodes[machine] = id
	}
	if machine+1 > b.t.machines {
		b.t.machines = machine + 1
	}
	b.t.nodes = append(b.t.nodes, n)
	return id
}

// Connect adds a physical connection of the given type at its nominal
// (Table 1) bandwidth and returns its id.
func (b *Builder) Connect(a, bn NodeID, t LinkType) int {
	return b.ConnectBW(a, bn, t, t.Bandwidth())
}

// ConnectBW adds a physical connection with an explicit bandwidth.
func (b *Builder) ConnectBW(a, bn NodeID, t LinkType, bw float64) int {
	id := len(b.t.conns)
	b.t.conns = append(b.t.conns, Conn{ID: id, A: a, B: bn, Type: t, Bandwidth: bw})
	return id
}

// Build finalizes the topology.
func (b *Builder) Build() *Topology {
	t := b.t
	t.adj = make([][]int, len(t.nodes))
	for i, c := range t.conns {
		t.adj[c.A] = append(t.adj[c.A], i)
		t.adj[c.B] = append(t.adj[c.B], i)
	}
	return &t
}

// NumGPUs returns the number of GPU nodes.
func (t *Topology) NumGPUs() int { return len(t.gpuNodes) }

// NumMachines returns the number of machines (servers).
func (t *Topology) NumMachines() int { return t.machines }

// Nodes returns all fabric nodes (shared slice; do not modify).
func (t *Topology) Nodes() []Node { return t.nodes }

// Conns returns all physical connections (shared slice; do not modify).
func (t *Topology) Conns() []Conn { return t.conns }

// Conn returns the physical connection with the given id.
func (t *Topology) Conn(id int) Conn { return t.conns[id] }

// Node returns the node with the given id.
func (t *Topology) Node(id NodeID) Node { return t.nodes[id] }

// GPUNode returns the fabric node id of GPU gpu.
func (t *Topology) GPUNode(gpu int) NodeID { return t.gpuNodes[gpu] }

// GPUMachine returns the machine hosting GPU gpu.
func (t *Topology) GPUMachine(gpu int) int { return t.nodes[t.gpuNodes[gpu]].Machine }

// HostMemNode returns the host-memory node of the given machine, or -1.
func (t *Topology) HostMemNode(machine int) NodeID {
	if machine < len(t.memNodes) {
		return t.memNodes[machine]
	}
	return -1
}

// route finds the physical hop chain between two fabric nodes that maximizes
// the bottleneck bandwidth (ties broken by fewer hops), never routing
// *through* a GPU node: relaying via a GPU is a planner-level decision, not a
// fabric property. It returns conn indices in order, or nil if unreachable.
func (t *Topology) route(src, dst NodeID) []int {
	type state struct {
		bottleneck float64
		hops       int
		via        int // conn used to reach this node, -1 for src
		prev       NodeID
	}
	const inf = 1e30
	best := make([]state, len(t.nodes))
	for i := range best {
		best[i] = state{bottleneck: -1, via: -1, prev: -1}
	}
	best[src] = state{bottleneck: inf, via: -1, prev: -1}
	// Simple O(V^2) widest-path Dijkstra; fabric graphs are tiny (<100 nodes).
	done := make([]bool, len(t.nodes))
	for {
		u := NodeID(-1)
		for i := range t.nodes {
			if done[i] || best[i].bottleneck < 0 {
				continue
			}
			if u < 0 || best[i].bottleneck > best[u].bottleneck ||
				(best[i].bottleneck == best[u].bottleneck && best[i].hops < best[u].hops) {
				u = NodeID(i)
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		if u == dst {
			break
		}
		if (t.nodes[u].Kind == GPU || t.nodes[u].Kind == HostMem) && u != src {
			continue // GPUs and host memory are endpoints, never relays
		}
		for _, ci := range t.adj[u] {
			c := t.conns[ci]
			v := c.Other(u)
			bw := best[u].bottleneck
			if c.Bandwidth < bw {
				bw = c.Bandwidth
			}
			if bw > best[v].bottleneck ||
				(bw == best[v].bottleneck && best[u].hops+1 < best[v].hops) {
				best[v] = state{bottleneck: bw, hops: best[u].hops + 1, via: ci, prev: u}
			}
		}
	}
	if best[dst].bottleneck < 0 {
		return nil
	}
	var hops []int
	for n := dst; n != src; n = best[n].prev {
		hops = append(hops, best[n].via)
	}
	// Reverse into src→dst order.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return hops
}

// ChannelClass describes how a logical GPU-to-GPU channel is realized; it
// drives the runtime's automatic communication method selection (§6.2).
type ChannelClass int

const (
	ClassNVLink       ChannelClass = iota // direct NVLink peer access
	ClassSameSocket                       // CUDA virtual memory over shared PCIe fabric
	ClassCrossSocket                      // pinned host memory across QPI
	ClassCrossMachine                     // helper thread + NIC
	ClassHostSwap                         // GPU <-> host memory (swap baseline)
)

func (c ChannelClass) String() string {
	switch c {
	case ClassNVLink:
		return "NVLink"
	case ClassSameSocket:
		return "SameSocket"
	case ClassCrossSocket:
		return "CrossSocket"
	case ClassCrossMachine:
		return "CrossMachine"
	case ClassHostSwap:
		return "HostSwap"
	}
	return fmt.Sprintf("ChannelClass(%d)", int(c))
}

// Channel is the logical link between a pair of GPUs (or a GPU and host
// memory). It is the unit the planner reasons about; Hops are the physical
// connections it occupies, in order.
type Channel struct {
	Src, Dst int // GPU indices; Dst==-1 means host memory of Src's machine
	Class    ChannelClass
	Hops     []int // conn indices
}

// Bottleneck returns the lowest hop bandwidth of the channel in bytes/s.
func (ch Channel) Bottleneck(t *Topology) float64 {
	b := 1e30
	for _, h := range ch.Hops {
		if bw := t.conns[h].Bandwidth; bw < b {
			b = bw
		}
	}
	return b
}

// UsesNVLinkOnly reports whether every hop of the channel is NVLink.
func (ch Channel) UsesNVLinkOnly(t *Topology) bool {
	for _, h := range ch.Hops {
		if !t.conns[h].Type.IsNVLink() {
			return false
		}
	}
	return len(ch.Hops) > 0
}

// DirectedHop is a physical connection traversed in a specific direction
// (Forward means from Conn.A to Conn.B). Opposite directions of a
// full-duplex connection are independent contention domains.
type DirectedHop struct {
	Conn    int
	Forward bool
}

// Slot returns a dense index for the directed hop (conn*2 + direction).
func (h DirectedHop) Slot() int {
	s := h.Conn * 2
	if !h.Forward {
		s++
	}
	return s
}

// DirectedHops walks the channel's hop chain from its source endpoint and
// returns each hop with its traversal direction.
func (t *Topology) DirectedHops(ch Channel) []DirectedHop {
	cur := t.gpuNodes[ch.Src]
	out := make([]DirectedHop, len(ch.Hops))
	for i, hi := range ch.Hops {
		c := t.conns[hi]
		if c.A == cur {
			out[i] = DirectedHop{Conn: hi, Forward: true}
			cur = c.B
		} else {
			out[i] = DirectedHop{Conn: hi, Forward: false}
			cur = c.A
		}
	}
	return out
}

// GPUChannel computes the direct channel between GPUs src and dst: NVLink if
// a direct NVLink connection exists, otherwise the best path through the
// PCIe/QPI/NIC fabric. It returns an error when the GPUs cannot reach each
// other.
func (t *Topology) GPUChannel(src, dst int) (Channel, error) {
	if src == dst {
		return Channel{}, fmt.Errorf("topology: channel to self (gpu %d)", src)
	}
	a, b := t.gpuNodes[src], t.gpuNodes[dst]
	// Prefer a direct NVLink connection (the fastest if several exist).
	bestConn, bestBW := -1, 0.0
	for _, ci := range t.adj[a] {
		c := t.conns[ci]
		if c.Other(a) == b && c.Type.IsNVLink() && c.Bandwidth > bestBW {
			bestConn, bestBW = ci, c.Bandwidth
		}
	}
	if bestConn >= 0 {
		return Channel{Src: src, Dst: dst, Class: ClassNVLink, Hops: []int{bestConn}}, nil
	}
	hops := t.route(a, b)
	if hops == nil {
		return Channel{}, fmt.Errorf("topology: no path from gpu %d to gpu %d", src, dst)
	}
	class := ClassSameSocket
	for _, h := range hops {
		switch t.conns[h].Type {
		case QPI:
			if class == ClassSameSocket {
				class = ClassCrossSocket
			}
		case IB, Ethernet:
			class = ClassCrossMachine
		}
	}
	return Channel{Src: src, Dst: dst, Class: class, Hops: hops}, nil
}

// HostChannel computes the swap channel between GPU gpu and its machine's
// host memory (used by the NeuGraph-style swap baseline).
func (t *Topology) HostChannel(gpu int) (Channel, error) {
	m := t.GPUMachine(gpu)
	mem := t.HostMemNode(m)
	if mem < 0 {
		return Channel{}, fmt.Errorf("topology: machine %d has no host memory node", m)
	}
	hops := t.route(t.gpuNodes[gpu], mem)
	if hops == nil {
		return Channel{}, fmt.Errorf("topology: gpu %d cannot reach host memory", gpu)
	}
	return Channel{Src: gpu, Dst: -1, Class: ClassHostSwap, Hops: hops}, nil
}

// AllGPUChannels returns the direct channel for every ordered GPU pair,
// indexed [src][dst] (nil on the diagonal).
func (t *Topology) AllGPUChannels() ([][]*Channel, error) {
	n := t.NumGPUs()
	out := make([][]*Channel, n)
	for i := 0; i < n; i++ {
		out[i] = make([]*Channel, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			ch, err := t.GPUChannel(i, j)
			if err != nil {
				return nil, err
			}
			out[i][j] = &ch
		}
	}
	return out, nil
}

// NVLinkNeighbors returns the GPUs directly connected to gpu by NVLink,
// sorted ascending.
func (t *Topology) NVLinkNeighbors(gpu int) []int {
	a := t.gpuNodes[gpu]
	var out []int
	seen := map[int]bool{}
	for _, ci := range t.adj[a] {
		c := t.conns[ci]
		if !c.Type.IsNVLink() {
			continue
		}
		o := t.nodes[c.Other(a)]
		if o.Kind == GPU && !seen[o.GPU] {
			seen[o.GPU] = true
			out = append(out, o.GPU)
		}
	}
	sort.Ints(out)
	return out
}
