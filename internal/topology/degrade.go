package topology

import (
	"fmt"
	"sort"
	"strings"
)

// Without returns a degraded copy of t with the given GPUs (by GPU index)
// removed: their fabric nodes and every physical connection touching them
// disappear; all other nodes, connections, and explicit bandwidths are
// preserved. Surviving GPUs are renumbered compactly 0..K'-1 in their
// original order — callers keep their own survivor list to map compact
// indices back to original device ids. Switches, CPUs, NICs, and host memory
// always survive (the fail-stop model kills devices, not the fabric), so
// survivor routes are unchanged except where they relayed through nothing —
// which they never do, since route() refuses GPU relays.
func Without(t *Topology, down []int) (*Topology, error) {
	dead := make(map[int]bool, len(down))
	for _, d := range down {
		if d < 0 || d >= t.NumGPUs() {
			return nil, fmt.Errorf("topology: cannot remove gpu %d from %d-GPU %s", d, t.NumGPUs(), t.Name)
		}
		dead[d] = true
	}
	if len(dead) == 0 {
		return t, nil
	}
	if len(dead) >= t.NumGPUs() {
		return nil, fmt.Errorf("topology: removing %d of %d GPUs leaves no survivors", len(dead), t.NumGPUs())
	}
	sorted := make([]int, 0, len(dead))
	for d := range dead {
		sorted = append(sorted, d)
	}
	sort.Ints(sorted)
	labels := make([]string, len(sorted))
	for i, d := range sorted {
		labels[i] = fmt.Sprintf("%d", d)
	}
	b := NewBuilder(fmt.Sprintf("%s-minus-%s", t.Name, strings.Join(labels, ",")))
	// Re-add nodes in original order: the builder assigns surviving GPUs
	// their compact indices in the same order, and machine indices carry
	// over unchanged.
	remap := make([]NodeID, len(t.nodes))
	for i := range remap {
		remap[i] = -1
	}
	for _, n := range t.nodes {
		if n.Kind == GPU && dead[n.GPU] {
			continue
		}
		remap[n.ID] = b.AddNode(n.Kind, n.Machine, n.Name)
	}
	for _, c := range t.conns {
		a, bn := remap[c.A], remap[c.B]
		if a < 0 || bn < 0 {
			continue
		}
		b.ConnectBW(a, bn, c.Type, c.Bandwidth)
	}
	return b.Build(), nil
}
