package topology

import (
	"strings"
	"testing"
)

const tinySpec = `
# two GPUs behind one switch, NVLink between them
node cpu0 cpu machine=0
node mem0 mem machine=0
node sw0  switch machine=0
node g0   gpu machine=0
node g1   gpu machine=0
link cpu0 mem0 membus
link sw0 cpu0 pcie
link g0 sw0 pcie
link g1 sw0 pcie
link g0 g1 nv1
`

func TestParseSpecBasic(t *testing.T) {
	topo, err := ParseSpec("tiny", strings.NewReader(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 2 {
		t.Fatalf("gpus=%d", topo.NumGPUs())
	}
	ch, err := topo.GPUChannel(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Class != ClassNVLink {
		t.Fatalf("class=%v", ch.Class)
	}
	if _, err := topo.HostChannel(0); err != nil {
		t.Fatalf("host channel: %v", err)
	}
}

func TestParseSpecCustomBandwidth(t *testing.T) {
	spec := tinySpec + "link g0 g1 nv2 bw=99e9\n"
	topo, err := ParseSpec("bw", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := topo.GPUChannel(0, 1)
	// The NV2 link is faster, so it should be chosen.
	if got := ch.Bottleneck(topo); got != 99e9 {
		t.Fatalf("bottleneck=%v want 99e9", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ name, spec string }{
		{"no gpus", "node c cpu\n"},
		{"unknown kind", "node x blob\n"},
		{"unknown type", "node g gpu\nnode h gpu\nlink g h warp\n"},
		{"unknown node", "node g gpu\nlink g missing pcie\n"},
		{"duplicate node", "node g gpu\nnode g gpu\n"},
		{"bad machine", "node g gpu machine=x\n"},
		{"bad bw", "node g gpu\nnode h gpu\nlink g h nv1 bw=-3\n"},
		{"bad directive", "frob g h\n"},
		{"short node", "node g\n"},
		{"short link", "node g gpu\nlink g\n"},
		{"unknown node attr", "node g gpu color=red\n"},
		{"unknown link attr", "node g gpu\nnode h gpu\nlink g h nv1 color=red\n"},
	}
	for _, c := range cases {
		if _, err := ParseSpec(c.name, strings.NewReader(c.spec)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseSpecComments(t *testing.T) {
	spec := "node g gpu # trailing comment\nnode h gpu\nlink g h nv1\n"
	if _, err := ParseSpec("c", strings.NewReader(spec)); err != nil {
		t.Fatal(err)
	}
}

func TestDGX2AllPairsNVLink(t *testing.T) {
	topo := DGX2()
	if topo.NumGPUs() != 16 {
		t.Fatalf("gpus=%d", topo.NumGPUs())
	}
	// Every pair reaches the other through the NVSwitch at NV2 speed within
	// two hops (gpu-switch-gpu).
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if i == j {
				continue
			}
			ch, err := topo.GPUChannel(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if got := ch.Bottleneck(topo); got != NV2.Bandwidth() {
				t.Fatalf("pair %d-%d bottleneck %v", i, j, got)
			}
		}
	}
}

func TestMatrixRendering(t *testing.T) {
	m := DGX1().Matrix()
	if !strings.Contains(m, "NV2") || !strings.Contains(m, "SYS") {
		t.Fatalf("matrix missing expected classes:\n%s", m)
	}
	lines := strings.Split(strings.TrimSpace(m), "\n")
	if len(lines) != 9 { // header + 8 GPUs
		t.Fatalf("matrix lines=%d", len(lines))
	}
	two := TwoMachineDGX1().Matrix()
	if !strings.Contains(two, "NET") {
		t.Fatal("two-machine matrix should contain NET")
	}
	p := PCIeOnly8().Matrix()
	if strings.Contains(p, "NV") {
		t.Fatal("PCIe-only matrix must not contain NVLink")
	}
	if !strings.Contains(p, "PIX") {
		t.Fatal("PCIe-only matrix should contain PIX pairs")
	}
}

func TestSummary(t *testing.T) {
	s := DGX1().Summary()
	if !strings.Contains(s, "8 GPU") || !strings.Contains(s, "NV2") {
		t.Fatalf("summary: %s", s)
	}
}
