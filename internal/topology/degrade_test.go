package topology

import (
	"reflect"
	"testing"
)

// Degraded-topology battery: Without must renumber survivors compactly in
// original order, preserve the fabric (switches, NICs, host memory) and
// every connection between surviving nodes, keep survivor routes usable, and
// reject degenerate removals.

func TestWithoutRenumbersSurvivorsCompactly(t *testing.T) {
	full := DGX1()
	deg, err := Without(full, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if deg.NumGPUs() != 6 {
		t.Fatalf("degraded topology has %d GPUs, want 6", deg.NumGPUs())
	}
	// Survivors keep their original relative order: original GPUs
	// 0,1,3,4,6,7 become compact 0..5. Node names carry the original labels.
	wantNames := []string{"m0.gpu0", "m0.gpu1", "m0.gpu3", "m0.gpu4", "m0.gpu6", "m0.gpu7"}
	for i := 0; i < deg.NumGPUs(); i++ {
		if name := deg.Node(deg.GPUNode(i)).Name; name != wantNames[i] {
			t.Errorf("compact GPU %d is %q, want %q", i, name, wantNames[i])
		}
	}
	// Machine assignment carries over.
	for i := 0; i < deg.NumGPUs(); i++ {
		if deg.GPUMachine(i) != 0 {
			t.Errorf("compact GPU %d on machine %d, want 0", i, deg.GPUMachine(i))
		}
	}
}

func TestWithoutPreservesSurvivorChannels(t *testing.T) {
	full := TwoMachineDGX1()
	deg, err := Without(full, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if deg.NumMachines() != full.NumMachines() {
		t.Fatalf("machines changed: %d -> %d", full.NumMachines(), deg.NumMachines())
	}
	// Every surviving ordered pair still has a channel, including the
	// cross-machine ones that route through NICs — the fabric survives.
	for i := 0; i < deg.NumGPUs(); i++ {
		for j := 0; j < deg.NumGPUs(); j++ {
			if i == j {
				continue
			}
			if _, err := deg.GPUChannel(i, j); err != nil {
				t.Fatalf("no channel between compact GPUs %d and %d: %v", i, j, err)
			}
		}
	}
	// A same-machine survivor pair that was NVLink-connected keeps its
	// channel class and bottleneck bandwidth: compact 0 is original GPU 1.
	chFull, err := full.GPUChannel(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	chDeg, err := deg.GPUChannel(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if chDeg.Class != chFull.Class {
		t.Fatalf("surviving pair channel class changed: %v -> %v", chFull.Class, chDeg.Class)
	}
	if got, want := chDeg.Bottleneck(deg), chFull.Bottleneck(full); got != want {
		t.Fatalf("surviving pair bottleneck changed: %v -> %v", want, got)
	}
}

func TestWithoutEdgeCases(t *testing.T) {
	full := SubDGX1(4)
	if deg, err := Without(full, nil); err != nil || deg != full {
		t.Fatalf("empty removal should return the topology unchanged, got %v %v", deg, err)
	}
	if _, err := Without(full, []int{4}); err == nil {
		t.Fatal("out-of-range GPU accepted")
	}
	if _, err := Without(full, []int{-1}); err == nil {
		t.Fatal("negative GPU accepted")
	}
	if _, err := Without(full, []int{0, 1, 2, 3}); err == nil {
		t.Fatal("removing every GPU accepted")
	}
	// Duplicates collapse to one removal.
	deg, err := Without(full, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if deg.NumGPUs() != 3 {
		t.Fatalf("duplicate removal left %d GPUs, want 3", deg.NumGPUs())
	}
}

func TestWithoutIsDeterministic(t *testing.T) {
	full := DGX1()
	a, err := Without(full, []int{3, 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Without(full, []int{6, 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name {
		t.Fatalf("names differ across removal orders: %q vs %q", a.Name, b.Name)
	}
	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) {
		t.Fatal("node lists differ across removal orders")
	}
	if !reflect.DeepEqual(a.Conns(), b.Conns()) {
		t.Fatal("connection lists differ across removal orders")
	}
}
