package topology

import "fmt"

// Builders for the paper's hardware configurations.

// dgx1NVLinks is the hybrid cube-mesh of the NVIDIA DGX-1 (Figure 3): GPUs
// 0-3 and 4-7 form two fully connected quads, and GPU i links to GPU i+4
// across the quads. The NV1/NV2 assignment follows the published DGX-1V
// connection matrix.
var dgx1NVLinks = []struct {
	a, b int
	t    LinkType
}{
	{0, 1, NV1}, {0, 2, NV1}, {0, 3, NV2}, {0, 4, NV2},
	{1, 2, NV2}, {1, 3, NV1}, {1, 5, NV2},
	{2, 3, NV2}, {2, 6, NV1},
	{4, 5, NV1}, {4, 6, NV1}, {4, 7, NV2},
	{5, 6, NV2}, {5, 7, NV1},
	{6, 7, NV2},
	{3, 7, NV1},
}

// addDGXMachine adds one 8-GPU DGX-1-style machine to the builder: two CPU
// sockets joined by QPI, two PCIe switches per socket with two GPUs each,
// host memory per socket (modeled as one node per machine), and a NIC under
// the first PCIe switch. It returns the GPU node ids and the NIC node id.
// If nvlink is false, the machine is the paper's second configuration (8
// 1080-Ti GPUs connected only via PCIe).
func addDGXMachine(b *Builder, machine int, nvlink bool) (gpus []NodeID, nic NodeID) {
	cpu0 := b.AddNode(CPU, machine, fmt.Sprintf("m%d.cpu0", machine))
	cpu1 := b.AddNode(CPU, machine, fmt.Sprintf("m%d.cpu1", machine))
	b.Connect(cpu0, cpu1, QPI)
	mem := b.AddNode(HostMem, machine, fmt.Sprintf("m%d.mem", machine))
	b.Connect(cpu0, mem, MemBus)
	b.Connect(cpu1, mem, MemBus)

	var switches []NodeID
	for s := 0; s < 4; s++ {
		cpu := cpu0
		if s >= 2 {
			cpu = cpu1
		}
		sw := b.AddNode(Switch, machine, fmt.Sprintf("m%d.pcie%d", machine, s))
		b.Connect(sw, cpu, PCIe)
		switches = append(switches, sw)
	}
	gpus = make([]NodeID, 8)
	for g := 0; g < 8; g++ {
		gpus[g] = b.AddNode(GPU, machine, fmt.Sprintf("m%d.gpu%d", machine, g))
		b.Connect(gpus[g], switches[g/2], PCIe)
	}
	if nvlink {
		for _, l := range dgx1NVLinks {
			b.Connect(gpus[l.a], gpus[l.b], l.t)
		}
	}
	nic = b.AddNode(NIC, machine, fmt.Sprintf("m%d.nic0", machine))
	b.Connect(nic, switches[0], PCIe)
	return gpus, nic
}

// DGX1 builds the 8-GPU NVIDIA DGX-1 topology of Figure 3 (the paper's
// default single-machine configuration).
func DGX1() *Topology {
	b := NewBuilder("dgx1")
	addDGXMachine(b, 0, true)
	return b.Build()
}

// TwoMachineDGX1 builds the paper's default 16-GPU configuration: two DGX-1
// servers whose GPUs communicate across machines through one shared IB NIC
// per machine.
func TwoMachineDGX1() *Topology {
	b := NewBuilder("2x-dgx1")
	_, nic0 := addDGXMachine(b, 0, true)
	_, nic1 := addDGXMachine(b, 1, true)
	b.Connect(nic0, nic1, IB)
	return b.Build()
}

// PCIeOnly8 builds the paper's second hardware configuration: one server
// with 8 1080-Ti GPUs connected via PCIe only (no NVLink).
func PCIeOnly8() *Topology {
	b := NewBuilder("pcie8")
	addDGXMachine(b, 0, false)
	return b.Build()
}

// SubDGX1 builds a DGX-1 restricted to the first n GPUs (n in 1..8), used by
// the GPU-count sweeps (Figures 2, 8, 9). The first four GPUs form a fully
// NVLink-connected quad, matching the paper's observation that with 4 or
// fewer GPUs every pair has a direct NVLink.
func SubDGX1(n int) *Topology {
	if n < 1 || n > 8 {
		panic(fmt.Sprintf("topology: SubDGX1 wants 1..8 GPUs, got %d", n))
	}
	b := NewBuilder(fmt.Sprintf("dgx1-%dgpu", n))
	cpu0 := b.AddNode(CPU, 0, "cpu0")
	cpu1 := b.AddNode(CPU, 0, "cpu1")
	b.Connect(cpu0, cpu1, QPI)
	mem := b.AddNode(HostMem, 0, "mem")
	b.Connect(cpu0, mem, MemBus)
	b.Connect(cpu1, mem, MemBus)
	var switches []NodeID
	for s := 0; s < 4; s++ {
		cpu := cpu0
		if s >= 2 {
			cpu = cpu1
		}
		sw := b.AddNode(Switch, 0, fmt.Sprintf("pcie%d", s))
		b.Connect(sw, cpu, PCIe)
		switches = append(switches, sw)
	}
	gpus := make([]NodeID, n)
	for g := 0; g < n; g++ {
		gpus[g] = b.AddNode(GPU, 0, fmt.Sprintf("gpu%d", g))
		b.Connect(gpus[g], switches[g/2], PCIe)
	}
	for _, l := range dgx1NVLinks {
		if l.a < n && l.b < n {
			b.Connect(gpus[l.a], gpus[l.b], l.t)
		}
	}
	return b.Build()
}

// ForGPUCount returns the paper's topology for a given GPU count: SubDGX1
// for 1..8 and the two-machine configuration for 16.
func ForGPUCount(n int) (*Topology, error) {
	switch {
	case n >= 1 && n <= 8:
		return SubDGX1(n), nil
	case n == 16:
		return TwoMachineDGX1(), nil
	default:
		return nil, fmt.Errorf("topology: no standard configuration with %d GPUs", n)
	}
}

// MultiMachineDGX1 builds a cluster of n DGX-1 servers whose NICs all
// attach to one non-blocking IB switch — the natural extension of the
// paper's two-machine setup for studying scaling beyond 16 GPUs. Each
// machine's cross-traffic shares its single NIC-to-switch IB link, so the
// per-machine NIC remains the scaling bottleneck, as in the paper.
func MultiMachineDGX1(n int) *Topology {
	if n < 1 {
		panic(fmt.Sprintf("topology: MultiMachineDGX1 wants >=1 machines, got %d", n))
	}
	b := NewBuilder(fmt.Sprintf("%dx-dgx1", n))
	if n == 1 {
		addDGXMachine(b, 0, true)
		return b.Build()
	}
	sw := b.AddNode(Switch, 0, "ibswitch")
	for m := 0; m < n; m++ {
		_, nic := addDGXMachine(b, m, true)
		b.Connect(nic, sw, IB)
	}
	return b.Build()
}

// TwoMachineEthernet builds a 16-GPU configuration connected by Ethernet
// instead of IB, for studying slower cross-machine fabrics.
func TwoMachineEthernet() *Topology {
	b := NewBuilder("2x-dgx1-eth")
	_, nic0 := addDGXMachine(b, 0, true)
	_, nic1 := addDGXMachine(b, 1, true)
	b.Connect(nic0, nic1, Ethernet)
	return b.Build()
}

// Ring builds an n-GPU synthetic topology where GPU i connects to GPU (i+1)
// mod n via NV1 and every GPU hangs off one shared PCIe switch; used by unit
// tests that need simple predictable fabrics.
func RingGPUs(n int) *Topology {
	b := NewBuilder(fmt.Sprintf("ring%d", n))
	cpu := b.AddNode(CPU, 0, "cpu0")
	mem := b.AddNode(HostMem, 0, "mem")
	b.Connect(cpu, mem, MemBus)
	sw := b.AddNode(Switch, 0, "pcie0")
	b.Connect(sw, cpu, PCIe)
	gpus := make([]NodeID, n)
	for g := 0; g < n; g++ {
		gpus[g] = b.AddNode(GPU, 0, fmt.Sprintf("gpu%d", g))
		b.Connect(gpus[g], sw, PCIe)
	}
	for g := 0; g < n; g++ {
		b.Connect(gpus[g], gpus[(g+1)%n], NV1)
	}
	return b.Build()
}
