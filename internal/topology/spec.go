package topology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// A small text format for describing custom fabrics, so users can model
// their own servers without writing Go:
//
//	# one declaration per line; '#' comments
//	node cpu0   cpu    machine=0
//	node mem0   mem    machine=0
//	node sw0    switch machine=0
//	node gpu0   gpu    machine=0
//	node nic0   nic    machine=0
//	link cpu0 mem0 membus
//	link gpu0 sw0  pcie
//	link gpu0 gpu1 nv2 bw=50e9    # optional explicit bytes/sec
//
// Node kinds: gpu, cpu, switch, nic, mem. Link types: nv2, nv1, pcie, qpi,
// ib, ethernet, membus. GPUs are numbered in declaration order.

var specLinkTypes = map[string]LinkType{
	"nv2": NV2, "nv1": NV1, "pcie": PCIe, "qpi": QPI,
	"ib": IB, "ethernet": Ethernet, "membus": MemBus,
}

var specNodeKinds = map[string]NodeKind{
	"gpu": GPU, "cpu": CPU, "switch": Switch, "nic": NIC, "mem": HostMem,
}

// ParseSpec builds a topology from the text format above.
func ParseSpec(name string, r io.Reader) (*Topology, error) {
	b := NewBuilder(name)
	nodes := make(map[string]NodeID)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) < 3 {
				return nil, fmt.Errorf("topology: line %d: node wants 'node NAME KIND [machine=M]'", lineNo)
			}
			nm := fields[1]
			if _, dup := nodes[nm]; dup {
				return nil, fmt.Errorf("topology: line %d: duplicate node %q", lineNo, nm)
			}
			kind, ok := specNodeKinds[strings.ToLower(fields[2])]
			if !ok {
				return nil, fmt.Errorf("topology: line %d: unknown node kind %q", lineNo, fields[2])
			}
			machine := 0
			for _, f := range fields[3:] {
				if v, ok := strings.CutPrefix(f, "machine="); ok {
					m, err := strconv.Atoi(v)
					if err != nil || m < 0 {
						return nil, fmt.Errorf("topology: line %d: bad machine %q", lineNo, v)
					}
					machine = m
				} else {
					return nil, fmt.Errorf("topology: line %d: unknown attribute %q", lineNo, f)
				}
			}
			nodes[nm] = b.AddNode(kind, machine, nm)
		case "link":
			if len(fields) < 4 {
				return nil, fmt.Errorf("topology: line %d: link wants 'link A B TYPE [bw=BYTES/S]'", lineNo)
			}
			a, ok := nodes[fields[1]]
			if !ok {
				return nil, fmt.Errorf("topology: line %d: unknown node %q", lineNo, fields[1])
			}
			bn, ok := nodes[fields[2]]
			if !ok {
				return nil, fmt.Errorf("topology: line %d: unknown node %q", lineNo, fields[2])
			}
			lt, ok := specLinkTypes[strings.ToLower(fields[3])]
			if !ok {
				return nil, fmt.Errorf("topology: line %d: unknown link type %q", lineNo, fields[3])
			}
			bw := lt.Bandwidth()
			for _, f := range fields[4:] {
				if v, ok := strings.CutPrefix(f, "bw="); ok {
					x, err := strconv.ParseFloat(v, 64)
					if err != nil || x <= 0 {
						return nil, fmt.Errorf("topology: line %d: bad bandwidth %q", lineNo, v)
					}
					bw = x
				} else {
					return nil, fmt.Errorf("topology: line %d: unknown attribute %q", lineNo, f)
				}
			}
			b.ConnectBW(a, bn, lt, bw)
		default:
			return nil, fmt.Errorf("topology: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t := b.Build()
	if t.NumGPUs() == 0 {
		return nil, fmt.Errorf("topology: spec declares no GPUs")
	}
	return t, nil
}

// DGX2 builds a 16-GPU single-machine topology where every GPU pair is
// connected through an NVSwitch plane at full NV2 bandwidth (the successor
// system the paper's introduction mentions; with a flat fast fabric the
// planner should find little to improve over peer-to-peer).
func DGX2() *Topology {
	b := NewBuilder("dgx2")
	cpu0 := b.AddNode(CPU, 0, "cpu0")
	cpu1 := b.AddNode(CPU, 0, "cpu1")
	b.Connect(cpu0, cpu1, QPI)
	mem := b.AddNode(HostMem, 0, "mem")
	b.Connect(cpu0, mem, MemBus)
	b.Connect(cpu1, mem, MemBus)
	// One logical NVSwitch plane; every GPU hangs off it with an NV2 trunk.
	sw := b.AddNode(Switch, 0, "nvswitch")
	var switches []NodeID
	for s := 0; s < 4; s++ {
		cpu := cpu0
		if s >= 2 {
			cpu = cpu1
		}
		ps := b.AddNode(Switch, 0, fmt.Sprintf("pcie%d", s))
		b.Connect(ps, cpu, PCIe)
		switches = append(switches, ps)
	}
	for g := 0; g < 16; g++ {
		gpu := b.AddNode(GPU, 0, fmt.Sprintf("gpu%d", g))
		b.Connect(gpu, switches[g/4], PCIe)
		b.Connect(gpu, sw, NV2)
	}
	return b.Build()
}

// Matrix renders the GPU-to-GPU connection matrix the way `nvidia-smi topo
// -m` does: the direct channel class of every pair (NV2/NV1 for direct
// NVLink, PIX for same-switch PCIe, SYS for cross-socket, NET for
// cross-machine).
func (t *Topology) Matrix() string {
	n := t.NumGPUs()
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "")
	for j := 0; j < n; j++ {
		fmt.Fprintf(&b, "%-6s", fmt.Sprintf("GPU%d", j))
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%-6s", fmt.Sprintf("GPU%d", i))
		for j := 0; j < n; j++ {
			cell := "X"
			if i != j {
				ch, err := t.GPUChannel(i, j)
				if err != nil {
					cell = "?"
				} else {
					switch ch.Class {
					case ClassNVLink:
						cell = t.Conn(ch.Hops[0]).Type.String()
					case ClassSameSocket:
						cell = "PIX"
					case ClassCrossSocket:
						cell = "SYS"
					case ClassCrossMachine:
						cell = "NET"
					}
				}
			}
			fmt.Fprintf(&b, "%-6s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary lists node and link counts by type.
func (t *Topology) Summary() string {
	kindCount := map[NodeKind]int{}
	for _, n := range t.nodes {
		kindCount[n.Kind]++
	}
	linkCount := map[LinkType]int{}
	for _, c := range t.conns {
		linkCount[c.Type]++
	}
	var parts []string
	for _, k := range []NodeKind{GPU, CPU, Switch, NIC, HostMem} {
		if kindCount[k] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", kindCount[k], k))
		}
	}
	var links []string
	for lt := range linkCount {
		links = append(links, fmt.Sprintf("%d %s", linkCount[lt], lt))
	}
	sort.Strings(links)
	return fmt.Sprintf("%s: %s; links: %s", t.Name, strings.Join(parts, ", "), strings.Join(links, ", "))
}
