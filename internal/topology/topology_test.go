package topology

import (
	"testing"
)

func TestTableOneSpeeds(t *testing.T) {
	// Table 1 of the paper, GB/s.
	want := map[LinkType]float64{
		NV2: 48.35, NV1: 24.22, PCIe: 11.13, QPI: 9.56, IB: 6.37, Ethernet: 3.12,
	}
	for lt, gbps := range want {
		if got := lt.Bandwidth() / gb; got != gbps {
			t.Errorf("%v bandwidth = %v GB/s, want %v", lt, got, gbps)
		}
	}
	if !NV1.IsNVLink() || !NV2.IsNVLink() || PCIe.IsNVLink() {
		t.Error("IsNVLink misclassifies")
	}
}

func TestDGX1Shape(t *testing.T) {
	top := DGX1()
	if top.NumGPUs() != 8 {
		t.Fatalf("NumGPUs=%d want 8", top.NumGPUs())
	}
	if top.NumMachines() != 1 {
		t.Fatalf("NumMachines=%d want 1", top.NumMachines())
	}
	// Every GPU has exactly 4 NVLink neighbors in the cube mesh.
	for g := 0; g < 8; g++ {
		nb := top.NVLinkNeighbors(g)
		if len(nb) != 4 {
			t.Errorf("gpu %d NVLink neighbors = %v, want 4 of them", g, nb)
		}
	}
}

func TestDGX1EveryPairWithinTwoNVLinkHops(t *testing.T) {
	// The paper: "all GPU pairs in Figure 3 can be connected within two hops
	// of NVLink".
	top := DGX1()
	for a := 0; a < 8; a++ {
		nb := map[int]bool{}
		for _, x := range top.NVLinkNeighbors(a) {
			nb[x] = true
		}
		for b := 0; b < 8; b++ {
			if a == b || nb[b] {
				continue
			}
			ok := false
			for x := range nb {
				for _, y := range top.NVLinkNeighbors(x) {
					if y == b {
						ok = true
					}
				}
			}
			if !ok {
				t.Errorf("gpu %d to %d not reachable in 2 NVLink hops", a, b)
			}
		}
	}
}

func TestGPUChannelClasses(t *testing.T) {
	top := DGX1()
	// GPU0-GPU1: direct NVLink.
	ch, err := top.GPUChannel(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Class != ClassNVLink || len(ch.Hops) != 1 {
		t.Fatalf("gpu0-gpu1 channel = %+v, want single NVLink hop", ch)
	}
	// GPU0-GPU5 (0-based): no direct NVLink; direct channel goes through
	// PCIe-QPI-PCIe per Figure 3.
	ch, err = top.GPUChannel(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Class != ClassCrossSocket {
		t.Fatalf("gpu0-gpu5 class = %v, want CrossSocket", ch.Class)
	}
	sawQPI := false
	for _, h := range ch.Hops {
		if top.Conn(h).Type == QPI {
			sawQPI = true
		}
		if top.Conn(h).Type.IsNVLink() {
			t.Fatalf("direct fabric channel must not use NVLink hops: %+v", ch)
		}
	}
	if !sawQPI {
		t.Fatalf("gpu0-gpu5 channel should cross QPI: %+v", ch)
	}
	// Bottleneck of a QPI-crossing path is the QPI speed.
	if bw := ch.Bottleneck(top); bw != QPI.Bandwidth() {
		t.Fatalf("bottleneck = %v, want QPI %v", bw, QPI.Bandwidth())
	}
	// Same-switch pair without NVLink: 1080-Ti config.
	p := PCIeOnly8()
	ch, err = p.GPUChannel(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Class != ClassSameSocket {
		t.Fatalf("pcie same-switch class = %v", ch.Class)
	}
}

func TestGPUChannelSelfError(t *testing.T) {
	if _, err := DGX1().GPUChannel(3, 3); err == nil {
		t.Fatal("expected error for self channel")
	}
}

func TestNVLinkPreferredOverPCIe(t *testing.T) {
	top := DGX1()
	ch, err := top.GPUChannel(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Class != ClassNVLink {
		t.Fatalf("gpu0-gpu3 should use NVLink, got %v", ch.Class)
	}
	if top.Conn(ch.Hops[0]).Type != NV2 {
		t.Fatalf("gpu0-gpu3 should pick the NV2 link, got %v", top.Conn(ch.Hops[0]).Type)
	}
}

func TestTwoMachineTopology(t *testing.T) {
	top := TwoMachineDGX1()
	if top.NumGPUs() != 16 || top.NumMachines() != 2 {
		t.Fatalf("gpus=%d machines=%d", top.NumGPUs(), top.NumMachines())
	}
	if top.GPUMachine(3) != 0 || top.GPUMachine(12) != 1 {
		t.Fatal("GPU machine assignment wrong")
	}
	ch, err := top.GPUChannel(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Class != ClassCrossMachine {
		t.Fatalf("cross machine channel class = %v", ch.Class)
	}
	if bw := ch.Bottleneck(top); bw != IB.Bandwidth() {
		t.Fatalf("cross machine bottleneck = %v, want IB", bw)
	}
	// Intra-machine channels on machine 1 still NVLink.
	ch, err = top.GPUChannel(8, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Class != ClassNVLink {
		t.Fatalf("machine-1 local channel class = %v", ch.Class)
	}
}

func TestHostChannel(t *testing.T) {
	top := DGX1()
	ch, err := top.HostChannel(6)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Class != ClassHostSwap || ch.Dst != -1 {
		t.Fatalf("host channel = %+v", ch)
	}
	// Swap path is bottlenecked by PCIe.
	if bw := ch.Bottleneck(top); bw != PCIe.Bandwidth() {
		t.Fatalf("swap bottleneck = %v, want PCIe", bw)
	}
}

func TestSubDGX1(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		top := SubDGX1(n)
		if top.NumGPUs() != n {
			t.Fatalf("SubDGX1(%d) has %d GPUs", n, top.NumGPUs())
		}
	}
	// With 4 GPUs every pair has a direct NVLink (the paper's observation).
	top := SubDGX1(4)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if a == b {
				continue
			}
			ch, err := top.GPUChannel(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if ch.Class != ClassNVLink {
				t.Fatalf("SubDGX1(4) pair %d-%d class %v, want NVLink", a, b, ch.Class)
			}
		}
	}
}

func TestSubDGX1Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for SubDGX1(0)")
		}
	}()
	SubDGX1(0)
}

func TestForGPUCount(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		top, err := ForGPUCount(n)
		if err != nil {
			t.Fatalf("ForGPUCount(%d): %v", n, err)
		}
		if top.NumGPUs() != n {
			t.Fatalf("ForGPUCount(%d) gave %d GPUs", n, top.NumGPUs())
		}
	}
	if _, err := ForGPUCount(12); err == nil {
		t.Fatal("expected error for 12 GPUs")
	}
	if _, err := ForGPUCount(0); err == nil {
		t.Fatal("expected error for 0 GPUs")
	}
}

func TestPCIeOnly8NoNVLink(t *testing.T) {
	top := PCIeOnly8()
	for _, c := range top.Conns() {
		if c.Type.IsNVLink() {
			t.Fatal("PCIeOnly8 must not contain NVLink")
		}
	}
	for g := 0; g < 8; g++ {
		if nb := top.NVLinkNeighbors(g); len(nb) != 0 {
			t.Fatalf("gpu %d has NVLink neighbors %v", g, nb)
		}
	}
}

func TestAllGPUChannels(t *testing.T) {
	top := DGX1()
	chans, err := top.AllGPUChannels()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == j {
				if chans[i][j] != nil {
					t.Fatal("diagonal should be nil")
				}
				continue
			}
			if chans[i][j] == nil || len(chans[i][j].Hops) == 0 {
				t.Fatalf("missing channel %d-%d", i, j)
			}
		}
	}
}

func TestRingGPUs(t *testing.T) {
	top := RingGPUs(4)
	if top.NumGPUs() != 4 {
		t.Fatalf("NumGPUs=%d", top.NumGPUs())
	}
	ch, err := top.GPUChannel(0, 1)
	if err != nil || ch.Class != ClassNVLink {
		t.Fatalf("ring adjacent pair should be NVLink: %+v %v", ch, err)
	}
	ch, err = top.GPUChannel(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Class == ClassNVLink {
		t.Fatal("opposite ring pair should not be direct NVLink")
	}
}

func TestEthernetConfig(t *testing.T) {
	top := TwoMachineEthernet()
	ch, err := top.GPUChannel(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bw := ch.Bottleneck(top); bw != Ethernet.Bandwidth() {
		t.Fatalf("ethernet bottleneck = %v", bw)
	}
}

func TestChannelUsesNVLinkOnly(t *testing.T) {
	top := DGX1()
	ch, _ := top.GPUChannel(0, 1)
	if !ch.UsesNVLinkOnly(top) {
		t.Fatal("NVLink channel should be NVLink-only")
	}
	ch, _ = top.GPUChannel(0, 5)
	if ch.UsesNVLinkOnly(top) {
		t.Fatal("cross-socket channel is not NVLink-only")
	}
}

func TestMultiMachineDGX1(t *testing.T) {
	top := MultiMachineDGX1(4)
	if top.NumGPUs() != 32 || top.NumMachines() != 4 {
		t.Fatalf("gpus=%d machines=%d", top.NumGPUs(), top.NumMachines())
	}
	// Cross-machine pairs route through the IB switch at IB speed.
	ch, err := top.GPUChannel(0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Class != ClassCrossMachine || ch.Bottleneck(top) != IB.Bandwidth() {
		t.Fatalf("cross pair: %+v bottleneck %v", ch, ch.Bottleneck(top))
	}
	// Intra-machine pairs on machine 3 still have NVLink.
	ch, err = top.GPUChannel(24, 25)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Class != ClassNVLink {
		t.Fatalf("machine-3 local pair class %v", ch.Class)
	}
	// Single machine degenerates to DGX-1.
	if MultiMachineDGX1(1).NumGPUs() != 8 {
		t.Fatal("single machine should be a DGX-1")
	}
}

func TestMultiMachineDGX1Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 machines")
		}
	}()
	MultiMachineDGX1(0)
}
