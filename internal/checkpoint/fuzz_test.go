package checkpoint

import (
	"bytes"
	"testing"

	"dgcl/internal/gnn"
)

// Fuzz targets for the two untrusted decode paths. The property in both
// cases is total: arbitrary bytes yield either a valid value or an error —
// never a panic, and never an allocation sized by unvalidated input.

func fuzzSeedSnapshots(f *testing.F) {
	model := gnn.NewModel(gnn.GCN, 4, 3, 2, 1)
	snap := &Snapshot{Epoch: 2, Seed: 7, OptName: "sgd(lr=0.01,m=0.9)", OptState: []byte{0, 0, 0, 0}, Model: model}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte("DGCLSNAP"))
	f.Add([]byte{})
	// A header claiming an enormous optimizer state.
	hostile := append([]byte(nil), valid[:28]...)
	hostile = append(hostile, 0xff, 0xff, 0xff, 0x7f)
	f.Add(hostile)
	// Flip a byte in the middle of the model section.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)*3/4] ^= 0x10
	f.Add(flipped)
}

func FuzzDecodeSnapshot(f *testing.F) {
	fuzzSeedSnapshots(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(bytes.NewReader(data))
		if err == nil && snap.Model == nil {
			t.Fatal("decode succeeded without a model")
		}
		if err == nil && snap.Epoch < 0 {
			t.Fatalf("decode accepted negative epoch %d", snap.Epoch)
		}
	})
}

func FuzzDecodeManifest(f *testing.F) {
	f.Add([]byte(`{"generation":1,"epoch":2,"payload":"gen-00000001.ckpt","sha256":"` +
		"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa" + `","size":10}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"payload":"../escape"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if m.Generation < 0 || m.Epoch < 0 || m.Size < 0 {
			t.Fatalf("accepted manifest with negative field: %+v", m)
		}
		if m.Payload == "" || m.Payload == "." || m.Payload == ".." {
			t.Fatalf("accepted manifest with degenerate payload name %q", m.Payload)
		}
		for _, c := range m.Payload {
			if c == '/' || c == '\\' {
				t.Fatalf("accepted manifest with path separator in payload name %q", m.Payload)
			}
		}
	})
}
