package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// Epoch-indexed store battery: the catch-up negotiation of the multi-process
// membership layer (internal/worker) rests on Epochs advertising exactly the
// restorable set and LoadEpoch restoring the agreed epoch — not merely the
// newest snapshot.

func TestEpochsListsIntactSnapshotsDeduplicated(t *testing.T) {
	store := NewStore(filepath.Join(t.TempDir(), "ckpt"))
	store.Keep = 10

	if epochs, err := store.Epochs(); err != nil || len(epochs) != 0 {
		t.Fatalf("empty store: epochs %v err %v, want [] nil", epochs, err)
	}

	for _, e := range []int{1, 2, 3} {
		if _, err := store.Save(testSnapshot(t, e, 11)); err != nil {
			t.Fatal(err)
		}
	}
	// A rollback-and-rerun commits epoch 2 again under a newer generation.
	if _, err := store.Save(testSnapshot(t, 2, 11)); err != nil {
		t.Fatal(err)
	}
	epochs, err := store.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 || epochs[0] != 1 || epochs[1] != 2 || epochs[2] != 3 {
		t.Fatalf("epochs %v, want [1 2 3]", epochs)
	}
}

func TestLoadEpochRestoresExactEpochNewestFirst(t *testing.T) {
	store := NewStore(filepath.Join(t.TempDir(), "ckpt"))
	store.Keep = 10

	first := testSnapshot(t, 2, 11)
	if _, err := store.Save(first); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(testSnapshot(t, 3, 11)); err != nil {
		t.Fatal(err)
	}
	// A newer generation at the same epoch wins the tie.
	second := testSnapshot(t, 2, 11)
	second.Model.Layers[0].Params()[0].Data[0] += 1
	gen2, err := store.Save(second)
	if err != nil {
		t.Fatal(err)
	}

	snap, gen, err := store.LoadEpoch(2)
	if err != nil {
		t.Fatal(err)
	}
	if gen != gen2 {
		t.Fatalf("LoadEpoch(2) restored generation %d, want the newest %d", gen, gen2)
	}
	if snap.Epoch != 2 || !modelsEqual(snap.Model, second.Model) {
		t.Fatal("LoadEpoch(2) did not restore the newest epoch-2 snapshot bit for bit")
	}
	if _, _, err := store.LoadEpoch(9); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("LoadEpoch(9) = %v, want ErrNoCheckpoint", err)
	}
}

func TestEpochsSkipsCorruptGenerations(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	store := NewStore(dir)
	store.Keep = 10

	if _, err := store.Save(testSnapshot(t, 1, 11)); err != nil {
		t.Fatal(err)
	}
	gen3, err := store.Save(testSnapshot(t, 3, 11))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in epoch 3's payload: it must vanish from the advertised
	// set and LoadEpoch must refuse it rather than restore corrupt weights.
	payload := filepath.Join(dir, genName(gen3)+payloadSuffix)
	data, err := os.ReadFile(payload)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(payload, data, 0o644); err != nil {
		t.Fatal(err)
	}

	epochs, err := store.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 1 || epochs[0] != 1 {
		t.Fatalf("epochs %v, want [1] after corrupting epoch 3", epochs)
	}
	if _, _, err := store.LoadEpoch(3); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("LoadEpoch(3) on a corrupt generation = %v, want ErrNoCheckpoint", err)
	}
}
