package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dgcl/internal/gnn"
)

// Checkpoint battery: a snapshot must round-trip bit-identically; the store
// must survive torn writes, truncation, and bit flips by falling back to the
// newest intact generation; pruning must keep exactly Keep generations; and
// nothing in the load path may panic on corrupt bytes.

func testSnapshot(t *testing.T, epoch int, seed int64) *Snapshot {
	t.Helper()
	model := gnn.NewModel(gnn.GCN, 8, 6, 2, seed)
	opt := gnn.NewSGD(0.01, 0.9)
	// Run a step so the optimizer has velocity state worth saving.
	for _, l := range model.Layers {
		for _, g := range l.Grads() {
			g.FillRandom(seed + 7)
		}
	}
	opt.Step(model)
	var state bytes.Buffer
	if err := opt.SaveState(&state, model); err != nil {
		t.Fatal(err)
	}
	return &Snapshot{
		Epoch:    epoch,
		Seed:     seed,
		OptName:  opt.Name(),
		OptState: state.Bytes(),
		Model:    model,
	}
}

func modelsEqual(a, b *gnn.Model) bool {
	if a.Kind != b.Kind || len(a.Layers) != len(b.Layers) {
		return false
	}
	for i := range a.Layers {
		ap, bp := a.Layers[i].Params(), b.Layers[i].Params()
		if len(ap) != len(bp) {
			return false
		}
		for j := range ap {
			if ap[j].Rows != bp[j].Rows || ap[j].Cols != bp[j].Cols {
				return false
			}
			for k := range ap[j].Data {
				if ap[j].Data[k] != bp[j].Data[k] {
					return false
				}
			}
		}
	}
	return true
}

func TestSnapshotRoundTripsBitIdentically(t *testing.T) {
	snap := testSnapshot(t, 5, 42)
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != snap.Epoch || got.Seed != snap.Seed || got.OptName != snap.OptName {
		t.Fatalf("header round-trip: got epoch=%d seed=%d opt=%q", got.Epoch, got.Seed, got.OptName)
	}
	if !bytes.Equal(got.OptState, snap.OptState) {
		t.Fatal("optimizer state bytes differ after round-trip")
	}
	if !modelsEqual(got.Model, snap.Model) {
		t.Fatal("model weights differ after round-trip")
	}
}

func TestStoreSaveLoadNewest(t *testing.T) {
	s := NewStore(t.TempDir())
	for epoch := 1; epoch <= 3; epoch++ {
		gen, err := s.Save(testSnapshot(t, epoch, 42))
		if err != nil {
			t.Fatal(err)
		}
		if gen != epoch-1 {
			t.Fatalf("epoch %d committed as generation %d, want %d", epoch, gen, epoch-1)
		}
	}
	snap, gen, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || snap.Epoch != 3 {
		t.Fatalf("loaded generation %d epoch %d, want generation 2 epoch 3", gen, snap.Epoch)
	}
}

func TestStorePrunesToKeep(t *testing.T) {
	s := NewStore(t.TempDir())
	s.Keep = 2
	for epoch := 1; epoch <= 5; epoch++ {
		if _, err := s.Save(testSnapshot(t, epoch, 1)); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := s.generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 3 || gens[1] != 4 {
		t.Fatalf("after pruning generations = %v, want [3 4]", gens)
	}
	// Payloads of pruned generations are gone too.
	if _, err := os.Stat(filepath.Join(s.Dir, genName(0)+payloadSuffix)); !os.IsNotExist(err) {
		t.Fatalf("pruned payload still present: %v", err)
	}
}

func TestLoadFallsBackPastCorruptGenerations(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, dir string, gen int)
	}{
		{"truncated payload", func(t *testing.T, dir string, gen int) {
			p := filepath.Join(dir, genName(gen)+payloadSuffix)
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit flip", func(t *testing.T, dir string, gen int) {
			p := filepath.Join(dir, genName(gen)+payloadSuffix)
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/3] ^= 0x40
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing payload", func(t *testing.T, dir string, gen int) {
			if err := os.Remove(filepath.Join(dir, genName(gen)+payloadSuffix)); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage manifest", func(t *testing.T, dir string, gen int) {
			p := filepath.Join(dir, genName(gen)+manifestSuffix)
			if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"traversal payload name", func(t *testing.T, dir string, gen int) {
			p := filepath.Join(dir, genName(gen)+manifestSuffix)
			if err := os.WriteFile(p, []byte(`{"generation":9,"epoch":1,"payload":"../../etc/passwd","sha256":"`+
				"0000000000000000000000000000000000000000000000000000000000000000"+`","size":1}`), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s := NewStore(t.TempDir())
			if _, err := s.Save(testSnapshot(t, 1, 9)); err != nil {
				t.Fatal(err)
			}
			newest, err := s.Save(testSnapshot(t, 2, 9))
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, s.Dir, newest)
			snap, gen, err := s.Load()
			if err != nil {
				t.Fatalf("load with corrupt newest generation: %v", err)
			}
			if gen != 0 || snap.Epoch != 1 {
				t.Fatalf("fell back to generation %d epoch %d, want generation 0 epoch 1", gen, snap.Epoch)
			}
		})
	}
}

func TestLoadAllCorruptReturnsErrNoCheckpoint(t *testing.T) {
	s := NewStore(t.TempDir())
	if _, err := s.Save(testSnapshot(t, 1, 3)); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(s.Dir, genName(0)+payloadSuffix)
	if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("load over all-corrupt store: %v, want ErrNoCheckpoint", err)
	}
	// An empty directory and a missing directory behave identically.
	empty := NewStore(t.TempDir())
	if _, _, err := empty.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("load from empty store: %v, want ErrNoCheckpoint", err)
	}
	missing := NewStore(filepath.Join(t.TempDir(), "never-created"))
	if _, _, err := missing.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("load from missing dir: %v, want ErrNoCheckpoint", err)
	}
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	s := NewStore(t.TempDir())
	if _, err := s.Save(testSnapshot(t, 1, 5)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if name := e.Name(); filepath.Ext(name) != payloadSuffix && filepath.Ext(name) != manifestSuffix {
			t.Fatalf("unexpected leftover file %q after save", name)
		}
	}
}

func TestDecodeManifestRejectsHostileFields(t *testing.T) {
	good := `{"generation":1,"epoch":2,"payload":"gen-00000001.ckpt","sha256":"` +
		"ab" + string(bytes.Repeat([]byte("cd"), 31)) + `","size":10}`
	if _, err := DecodeManifest([]byte(good)); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	bad := []string{
		`{"generation":-1,"epoch":0,"payload":"p.ckpt","sha256":"` + string(bytes.Repeat([]byte("ab"), 32)) + `","size":1}`,
		`{"generation":0,"epoch":-2,"payload":"p.ckpt","sha256":"` + string(bytes.Repeat([]byte("ab"), 32)) + `","size":1}`,
		`{"generation":0,"epoch":0,"payload":"p.ckpt","sha256":"` + string(bytes.Repeat([]byte("ab"), 32)) + `","size":-1}`,
		`{"generation":0,"epoch":0,"payload":"","sha256":"` + string(bytes.Repeat([]byte("ab"), 32)) + `","size":1}`,
		`{"generation":0,"epoch":0,"payload":"a/b.ckpt","sha256":"` + string(bytes.Repeat([]byte("ab"), 32)) + `","size":1}`,
		`{"generation":0,"epoch":0,"payload":"..","sha256":"` + string(bytes.Repeat([]byte("ab"), 32)) + `","size":1}`,
		`{"generation":0,"epoch":0,"payload":"p.ckpt","sha256":"zz","size":1}`,
	}
	for _, m := range bad {
		if _, err := DecodeManifest([]byte(m)); err == nil {
			t.Errorf("hostile manifest accepted: %s", m)
		}
	}
}
