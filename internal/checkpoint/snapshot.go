// Package checkpoint provides durable, generation-numbered training
// checkpoints: a binary snapshot payload (epoch counter, RNG seed, optimizer
// state, model weights) committed atomically via temp-file + rename, with a
// JSON manifest carrying a SHA-256 over the payload. Load verifies the
// checksum and falls back to the newest intact generation when the latest is
// truncated or corrupt, so a crash during a checkpoint write can never lose
// more than one interval of progress.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"io"

	"dgcl/internal/gnn"
)

const (
	snapshotMagic   = "DGCLSNAP"
	snapshotVersion = 1

	// Decoder bounds: snapshots read during fallback are untrusted bytes, so
	// every length prefix is bounded before it sizes an allocation.
	maxOptNameLen  = 256
	maxOptStateLen = 1 << 26
)

// Snapshot is the complete restartable training state at an epoch boundary:
// everything a resumed process needs to continue bit-identically.
type Snapshot struct {
	// Epoch is the number of completed epochs (the resumed run starts at
	// epoch Epoch).
	Epoch int
	// Seed is the run's RNG seed; a resume must reuse it so partitioning,
	// planning, and any seeded schedules replay identically.
	Seed int64
	// OptName identifies the optimizer configuration (gnn.Optimizer.Name);
	// resume validates it against the optimizer the caller constructed.
	OptName string
	// OptState is the optimizer's serialized state
	// (gnn.StatefulOptimizer.SaveState against Model), empty for stateless
	// optimizers.
	OptState []byte
	// Model is the replica model (replicas are identical by construction, so
	// one copy restores every device).
	Model *gnn.Model
}

// Encode writes the snapshot.
func (s *Snapshot) Encode(w io.Writer) error {
	if s.Model == nil {
		return fmt.Errorf("checkpoint: snapshot has no model")
	}
	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return fmt.Errorf("checkpoint: write magic: %w", err)
	}
	hdr := []any{
		uint32(snapshotVersion),
		int64(s.Epoch),
		s.Seed,
		int32(len(s.OptName)),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("checkpoint: write header: %w", err)
		}
	}
	if _, err := io.WriteString(w, s.OptName); err != nil {
		return fmt.Errorf("checkpoint: write optimizer name: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, int32(len(s.OptState))); err != nil {
		return fmt.Errorf("checkpoint: write optimizer state length: %w", err)
	}
	if _, err := w.Write(s.OptState); err != nil {
		return fmt.Errorf("checkpoint: write optimizer state: %w", err)
	}
	if err := s.Model.Save(w); err != nil {
		return fmt.Errorf("checkpoint: write model: %w", err)
	}
	return nil
}

// DecodeSnapshot reads a snapshot, validating every length against its bound
// before allocating. Corrupt or truncated input yields an error, never a
// panic.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("checkpoint: read magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("checkpoint: not a snapshot (magic %q)", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("checkpoint: read version: %w", err)
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("checkpoint: unsupported snapshot version %d", version)
	}
	var epoch, seed int64
	if err := binary.Read(r, binary.LittleEndian, &epoch); err != nil {
		return nil, fmt.Errorf("checkpoint: read epoch: %w", err)
	}
	if epoch < 0 {
		return nil, fmt.Errorf("checkpoint: negative epoch %d", epoch)
	}
	if err := binary.Read(r, binary.LittleEndian, &seed); err != nil {
		return nil, fmt.Errorf("checkpoint: read seed: %w", err)
	}
	var nameLen int32
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return nil, fmt.Errorf("checkpoint: read optimizer name length: %w", err)
	}
	if nameLen < 0 || nameLen > maxOptNameLen {
		return nil, fmt.Errorf("checkpoint: implausible optimizer name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("checkpoint: read optimizer name: %w", err)
	}
	var stateLen int32
	if err := binary.Read(r, binary.LittleEndian, &stateLen); err != nil {
		return nil, fmt.Errorf("checkpoint: read optimizer state length: %w", err)
	}
	if stateLen < 0 || stateLen > maxOptStateLen {
		return nil, fmt.Errorf("checkpoint: implausible optimizer state length %d", stateLen)
	}
	state := make([]byte, stateLen)
	if _, err := io.ReadFull(r, state); err != nil {
		return nil, fmt.Errorf("checkpoint: read optimizer state: %w", err)
	}
	model, err := gnn.Load(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read model: %w", err)
	}
	return &Snapshot{
		Epoch:    int(epoch),
		Seed:     seed,
		OptName:  string(name),
		OptState: state,
		Model:    model,
	}, nil
}
