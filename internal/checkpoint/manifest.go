package checkpoint

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
)

// Manifest is the commit record of one checkpoint generation. The payload is
// written and fsynced first; the manifest's atomic rename is the commit
// point, so a manifest that exists and verifies implies an intact payload
// (modulo later corruption, which the SHA-256 catches at load time).
type Manifest struct {
	// Generation numbers checkpoints monotonically; higher is newer.
	Generation int `json:"generation"`
	// Epoch is the snapshot's completed-epoch counter, duplicated here so
	// tools can inspect progress without decoding payloads.
	Epoch int `json:"epoch"`
	// Payload is the snapshot filename, relative to the store directory.
	Payload string `json:"payload"`
	// SHA256 is the lowercase hex digest of the payload bytes.
	SHA256 string `json:"sha256"`
	// Size is the payload length in bytes.
	Size int64 `json:"size"`
}

// maxManifestLen bounds manifest files; a real manifest is a few hundred
// bytes.
const maxManifestLen = 1 << 16

// DecodeManifest parses and validates a manifest. Corrupt input yields an
// error, never a panic, and a manifest naming a payload outside the store
// directory is rejected.
func DecodeManifest(data []byte) (*Manifest, error) {
	if len(data) > maxManifestLen {
		return nil, fmt.Errorf("checkpoint: manifest of %d bytes exceeds %d", len(data), maxManifestLen)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("checkpoint: parse manifest: %w", err)
	}
	if m.Generation < 0 {
		return nil, fmt.Errorf("checkpoint: negative generation %d", m.Generation)
	}
	if m.Epoch < 0 {
		return nil, fmt.Errorf("checkpoint: negative epoch %d", m.Epoch)
	}
	if m.Size < 0 {
		return nil, fmt.Errorf("checkpoint: negative payload size %d", m.Size)
	}
	// The payload name must be a bare filename: a manifest is untrusted
	// input and must not direct reads outside the store directory.
	if m.Payload == "" || m.Payload != filepath.Base(m.Payload) ||
		m.Payload == "." || m.Payload == ".." || strings.ContainsAny(m.Payload, "/\\") {
		return nil, fmt.Errorf("checkpoint: invalid payload name %q", m.Payload)
	}
	digest, err := hex.DecodeString(m.SHA256)
	if err != nil || len(digest) != 32 {
		return nil, fmt.Errorf("checkpoint: invalid sha256 %q", m.SHA256)
	}
	return &m, nil
}

// encode renders the manifest as indented JSON.
func (m *Manifest) encode() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode manifest: %w", err)
	}
	return append(data, '\n'), nil
}
