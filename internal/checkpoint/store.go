package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrNoCheckpoint reports that the store holds no intact checkpoint (empty
// directory, or every generation failed verification).
var ErrNoCheckpoint = errors.New("no intact checkpoint")

// DefaultKeep is how many generations a store retains when Keep is unset.
const DefaultKeep = 3

const (
	manifestSuffix = ".json"
	payloadSuffix  = ".ckpt"
	genPrefix      = "gen-"
)

// Store manages generation-numbered checkpoints in one directory.
type Store struct {
	// Dir is the checkpoint directory (created on first Save).
	Dir string
	// Keep bounds retained generations (<=0 means DefaultKeep). Pruning
	// happens after each successful Save and never removes the generation
	// just written.
	Keep int
}

// NewStore builds a store over dir.
func NewStore(dir string) *Store { return &Store{Dir: dir, Keep: DefaultKeep} }

func (s *Store) keep() int {
	if s.Keep <= 0 {
		return DefaultKeep
	}
	return s.Keep
}

func genName(gen int) string { return fmt.Sprintf("%s%08d", genPrefix, gen) }

// generations lists the generation numbers that have a manifest file,
// ascending. Malformed filenames are ignored.
func (s *Store) generations() ([]int, error) {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: list %s: %w", s.Dir, err)
	}
	var gens []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, genPrefix) || !strings.HasSuffix(name, manifestSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, genPrefix), manifestSuffix)
		gen, err := strconv.Atoi(num)
		if err != nil || gen < 0 {
			continue
		}
		gens = append(gens, gen)
	}
	sort.Ints(gens)
	return gens, nil
}

// Save commits the snapshot as a new generation: payload first (temp +
// fsync + rename), then the manifest the same way — the manifest rename is
// the commit point. After a successful commit, generations beyond Keep are
// pruned oldest-first. It returns the committed generation number.
func (s *Store) Save(snap *Snapshot) (int, error) {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return 0, fmt.Errorf("checkpoint: create %s: %w", s.Dir, err)
	}
	gens, err := s.generations()
	if err != nil {
		return 0, err
	}
	gen := 0
	if len(gens) > 0 {
		gen = gens[len(gens)-1] + 1
	}
	var payload bytes.Buffer
	if err := snap.Encode(&payload); err != nil {
		return 0, err
	}
	sum := sha256.Sum256(payload.Bytes())
	payloadName := genName(gen) + payloadSuffix
	if err := s.writeAtomic(payloadName, payload.Bytes()); err != nil {
		return 0, err
	}
	man := &Manifest{
		Generation: gen,
		Epoch:      snap.Epoch,
		Payload:    payloadName,
		SHA256:     hex.EncodeToString(sum[:]),
		Size:       int64(payload.Len()),
	}
	manData, err := man.encode()
	if err != nil {
		return 0, err
	}
	if err := s.writeAtomic(genName(gen)+manifestSuffix, manData); err != nil {
		return 0, err
	}
	s.prune(append(gens, gen))
	return gen, nil
}

// writeAtomic writes name under Dir via a temp file, fsync, and rename, so a
// crash mid-write leaves either the old file or the new one — never a
// partial file under the final name.
func (s *Store) writeAtomic(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.Dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp for %s: %w", name, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: sync %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close %s: %w", name, err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.Dir, name)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: commit %s: %w", name, err)
	}
	return nil
}

// prune removes generations beyond the retention bound, oldest first.
// Removal errors are ignored: a leftover old generation costs disk, not
// correctness.
func (s *Store) prune(gens []int) {
	sort.Ints(gens)
	if len(gens) <= s.keep() {
		return
	}
	for _, gen := range gens[:len(gens)-s.keep()] {
		os.Remove(filepath.Join(s.Dir, genName(gen)+payloadSuffix))
		os.Remove(filepath.Join(s.Dir, genName(gen)+manifestSuffix))
	}
}

// Load returns the newest intact snapshot: generations are tried newest
// first, and one whose manifest is corrupt, whose payload is missing, whose
// checksum mismatches, or whose snapshot fails to decode is skipped in favor
// of the next older. ErrNoCheckpoint means nothing intact remains.
func (s *Store) Load() (*Snapshot, int, error) {
	gens, err := s.generations()
	if err != nil {
		return nil, 0, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		snap, err := s.loadGeneration(gens[i])
		if err != nil {
			// Corrupt generation: fall back to the next older one.
			continue
		}
		return snap, gens[i], nil
	}
	return nil, 0, fmt.Errorf("checkpoint: %s: %w", s.Dir, ErrNoCheckpoint)
}

// loadGeneration verifies and decodes one generation.
func (s *Store) loadGeneration(gen int) (*Snapshot, error) {
	manData, err := os.ReadFile(filepath.Join(s.Dir, genName(gen)+manifestSuffix))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read manifest %d: %w", gen, err)
	}
	man, err := DecodeManifest(manData)
	if err != nil {
		return nil, err
	}
	payload, err := os.ReadFile(filepath.Join(s.Dir, man.Payload))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read payload %d: %w", gen, err)
	}
	if int64(len(payload)) != man.Size {
		return nil, fmt.Errorf("checkpoint: generation %d payload is %d bytes, manifest says %d",
			gen, len(payload), man.Size)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != man.SHA256 {
		return nil, fmt.Errorf("checkpoint: generation %d checksum mismatch", gen)
	}
	snap, err := DecodeSnapshot(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// Epochs returns the epoch of every intact snapshot in the store, ascending
// and deduplicated (a rollback-and-rerun can commit the same epoch under two
// generations). Corrupt generations are skipped, so the result is exactly the
// set of epochs LoadEpoch can serve — what a rejoining worker advertises to
// the coordinator when negotiating the common resume epoch. An empty store is
// an empty list, not an error.
func (s *Store) Epochs() ([]int, error) {
	gens, err := s.generations()
	if err != nil {
		return nil, err
	}
	seen := make(map[int]bool)
	var epochs []int
	for _, gen := range gens {
		snap, err := s.loadGeneration(gen)
		if err != nil {
			// Corrupt generation: not restorable, not advertised.
			continue
		}
		if !seen[snap.Epoch] {
			seen[snap.Epoch] = true
			epochs = append(epochs, snap.Epoch)
		}
	}
	sort.Ints(epochs)
	return epochs, nil
}

// LoadEpoch returns the newest intact snapshot taken at exactly the given
// epoch — the catch-up path of a worker rejoining at an agreed epoch barrier,
// where "newest or nothing" (Load) is wrong: every member must restore the
// same epoch or the replicas diverge. Corrupt generations fall back to older
// ones with the same epoch; ErrNoCheckpoint means no intact snapshot at that
// epoch exists.
func (s *Store) LoadEpoch(epoch int) (*Snapshot, int, error) {
	gens, err := s.generations()
	if err != nil {
		return nil, 0, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		snap, err := s.loadGeneration(gens[i])
		if err != nil || snap.Epoch != epoch {
			continue
		}
		return snap, gens[i], nil
	}
	return nil, 0, fmt.Errorf("checkpoint: %s has no intact snapshot at epoch %d: %w", s.Dir, epoch, ErrNoCheckpoint)
}

// Latest returns the newest generation number present (by manifest), or
// ErrNoCheckpoint. It does not verify the payload; use Load for that.
func (s *Store) Latest() (int, error) {
	gens, err := s.generations()
	if err != nil {
		return 0, err
	}
	if len(gens) == 0 {
		return 0, fmt.Errorf("checkpoint: %s: %w", s.Dir, ErrNoCheckpoint)
	}
	return gens[len(gens)-1], nil
}
