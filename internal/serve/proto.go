package serve

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"
)

// The serve protocol frames requests as DGS1 binary frames (the wire codec's
// bounded-decode discipline: validate every length against a cap before
// materializing memory, error — never panic — on malformed input, canonical
// encoding) and replies as length-prefixed JSON via wire.WriteControl, so one
// connection speaks compact fuzz-hardened requests inbound and debuggable
// control replies outbound.
//
// Request layout (all integers little-endian):
//
//	header (20 bytes): magic "DGS1" | version u8 | op u8 | 2 reserved |
//	                   body length u32 | body FNV-64a checksum u64
//	query body (12+):  id u64 | count u32 | count * vertex i32
//	stats body (8):    id u64
const (
	reqHeaderSize = 20
	protoVersion  = 1

	// OpQuery asks for the embeddings of a batch of vertices.
	OpQuery = 1
	// OpStats asks for a Stats snapshot.
	OpStats = 2

	// MaxQueryVertices caps one request's vertex list; the body cap follows
	// from it, so no oversized length prefix ever materializes memory.
	MaxQueryVertices = 4096

	maxReqBody = 12 + 4*MaxQueryVertices
)

var serveMagic = [4]byte{'D', 'G', 'S', '1'}

// Request is one decoded client request.
type Request struct {
	Op byte
	// ID is echoed in the reply so clients can pipeline.
	ID uint64
	// Vertices is the query batch (OpQuery only, 1..MaxQueryVertices).
	Vertices []int32
}

// QueryReply answers an OpQuery, one slot per requested vertex in order.
// Failed vertices have a non-empty Errors entry and a nil row.
type QueryReply struct {
	ID       uint64      `json:"id"`
	Rows     [][]float32 `json:"rows"`
	Versions []uint64    `json:"versions"`
	Cached   []bool      `json:"cached"`
	Errors   []string    `json:"errors"`
}

// StatsReply answers an OpStats.
type StatsReply struct {
	ID          uint64 `json:"id"`
	NumVertices int    `json:"num_vertices"`
	Stats       Stats  `json:"stats"`
}

// reqFNV64a is FNV-64a over the raw body bytes (same checksum as the wire
// frame codec, inlined for the same no-alloc reason).
func reqFNV64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// AppendRequest appends the canonical encoding of r to buf.
func AppendRequest(buf []byte, r *Request) []byte {
	start := len(buf)
	buf = append(buf, serveMagic[:]...)
	buf = append(buf, protoVersion, r.Op, 0, 0)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // body length, patched below
	buf = binary.LittleEndian.AppendUint64(buf, 0) // body checksum, patched below
	bodyStart := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, r.ID)
	if r.Op == OpQuery {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Vertices)))
		for _, v := range r.Vertices {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	body := buf[bodyStart:]
	binary.LittleEndian.PutUint32(buf[start+8:], uint32(len(body)))
	binary.LittleEndian.PutUint64(buf[start+12:], reqFNV64a(body))
	return buf
}

// DecodeRequest parses one complete request from the front of data, returning
// the request and the bytes consumed. Truncated, oversized, or bit-flipped
// inputs error without panicking, and nothing larger than the capped body
// length is ever allocated. The encoding is canonical: re-encoding a decoded
// request reproduces the input bytes (reserved bytes excepted).
func DecodeRequest(data []byte) (*Request, int, error) {
	if len(data) < reqHeaderSize {
		return nil, 0, fmt.Errorf("serve: short request header: %d bytes", len(data))
	}
	if [4]byte(data[:4]) != serveMagic {
		return nil, 0, fmt.Errorf("serve: bad request magic %q", data[:4])
	}
	if data[4] != protoVersion {
		return nil, 0, fmt.Errorf("serve: unsupported request version %d", data[4])
	}
	op := data[5]
	if op != OpQuery && op != OpStats {
		return nil, 0, fmt.Errorf("serve: unknown request op %d", op)
	}
	length := binary.LittleEndian.Uint32(data[8:])
	if int64(length) > maxReqBody {
		return nil, 0, fmt.Errorf("serve: request body %d bytes exceeds cap %d", length, maxReqBody)
	}
	if len(data) < reqHeaderSize+int(length) {
		return nil, 0, fmt.Errorf("serve: truncated request: header declares %d body bytes, %d available", length, len(data)-reqHeaderSize)
	}
	sum := binary.LittleEndian.Uint64(data[12:])
	body := data[reqHeaderSize : reqHeaderSize+int(length)]
	if got := reqFNV64a(body); got != sum {
		return nil, 0, fmt.Errorf("serve: request checksum mismatch: header %#x, body %#x", sum, got)
	}
	r := &Request{Op: op}
	switch op {
	case OpStats:
		if len(body) != 8 {
			return nil, 0, fmt.Errorf("serve: stats body %d bytes, need 8", len(body))
		}
		r.ID = binary.LittleEndian.Uint64(body)
	case OpQuery:
		if len(body) < 12 {
			return nil, 0, fmt.Errorf("serve: query body %d bytes, need at least 12", len(body))
		}
		r.ID = binary.LittleEndian.Uint64(body)
		count := binary.LittleEndian.Uint32(body[8:])
		if count == 0 || count > MaxQueryVertices {
			return nil, 0, fmt.Errorf("serve: query vertex count %d out of range [1,%d]", count, MaxQueryVertices)
		}
		if len(body) != 12+4*int(count) {
			return nil, 0, fmt.Errorf("serve: query body %d bytes, %d vertices need %d", len(body), count, 12+4*count)
		}
		r.Vertices = make([]int32, count)
		for i := range r.Vertices {
			r.Vertices[i] = int32(binary.LittleEndian.Uint32(body[12+4*i:]))
		}
	}
	return r, reqHeaderSize + int(length), nil
}

// WriteRequest encodes and writes one request with an armed write deadline.
func WriteRequest(conn net.Conn, r *Request, timeout time.Duration) error {
	if len(r.Vertices) > MaxQueryVertices {
		return fmt.Errorf("serve: query of %d vertices exceeds cap %d", len(r.Vertices), MaxQueryVertices)
	}
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return fmt.Errorf("serve: arming write deadline: %w", err)
	}
	buf := AppendRequest(nil, r)
	if _, err := conn.Write(buf); err != nil {
		return fmt.Errorf("serve: writing request: %w", err)
	}
	return nil
}

// ReadRequest reads one request with an armed read deadline, in two bounded
// reads: the fixed header, then exactly the declared (capped) body.
func ReadRequest(conn net.Conn, timeout time.Duration) (*Request, error) {
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("serve: arming read deadline: %w", err)
	}
	hdr := make([]byte, reqHeaderSize)
	if err := readFull(conn, hdr); err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[8:])
	if int64(length) > maxReqBody {
		return nil, fmt.Errorf("serve: request body %d bytes exceeds cap %d", length, maxReqBody)
	}
	buf := append(hdr, make([]byte, length)...)
	if err := readFull(conn, buf[reqHeaderSize:]); err != nil {
		return nil, err
	}
	r, _, err := DecodeRequest(buf)
	return r, err
}

func readFull(conn net.Conn, buf []byte) error {
	for n := 0; n < len(buf); {
		m, err := conn.Read(buf[n:])
		n += m
		if err != nil {
			return fmt.Errorf("serve: reading request: %w", err)
		}
	}
	return nil
}
