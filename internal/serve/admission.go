package serve

import (
	"sync"
	"time"
)

// tokenBucket is the rate half of admission control: a classic token bucket
// refilled continuously at rate tokens/second up to burst. A nil bucket
// admits everything (rate limiting disabled). The clock is injected by the
// caller so refill is testable with a fake clock.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// newTokenBucket builds a bucket starting full. rate <= 0 disables limiting
// (returns nil). burst < 1 is raised to 1 so a conforming request can always
// eventually pass.
func newTokenBucket(rate float64, burst int, now time.Time) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: now}
}

// allow takes one token if available. It reports false when the bucket is
// empty — the caller sheds with ErrOverload.
func (b *tokenBucket) allow(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
