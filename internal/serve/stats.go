package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxLatencySamples bounds the latency reservoir; once full, further samples
// update counters but not quantiles (Stats.DroppedSamples reports how many).
const maxLatencySamples = 1 << 20

// serverStats is the server's internal accumulator. Counters are atomics
// (hot path); the latency reservoir and the transition log are mutex'd.
type serverStats struct {
	requests  atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	shedRate  atomic.Uint64
	shedQueue atomic.Uint64
	errors    atomic.Uint64

	flushFull     atomic.Uint64
	flushDeadline atomic.Uint64
	flushDrain    atomic.Uint64
	batchSum      atomic.Uint64

	mu          sync.Mutex
	batchMax    int
	lat         []latSample
	dropped     uint64
	transitions []Transition
}

type latSample struct {
	d   time.Duration
	hit bool
}

// Transition records one serve-path failover: the devices that died, the
// survivors now answering, and the model version minted for the degraded
// replica (all previously cached embeddings are invalid from this version
// on).
type Transition struct {
	Down      []int
	Survivors []int
	Version   uint64
}

// Stats is a point-in-time snapshot of the serving counters.
type Stats struct {
	Requests  uint64 // admitted or shed, including out-of-range errors
	Hits      uint64 // served from the embedding cache
	Misses    uint64 // served through a batched forward
	ShedRate  uint64 // rejected by the token bucket
	ShedQueue uint64 // rejected at the queue-depth threshold
	Errors    uint64 // failed after admission (forward errors, cancellations)

	Flushes       uint64 // total batched forwards
	FlushFull     uint64 // occupancy-cutoff flushes
	FlushDeadline uint64 // deadline-cutoff flushes
	FlushDrain    uint64 // shutdown-drain flushes
	AvgBatch      float64
	MaxBatch      int

	P50, P99, P999             time.Duration // all served queries
	HitP50, HitP99, HitP999    time.Duration // cache hits only
	MissP50, MissP99, MissP999 time.Duration // batched-forward path only

	ModelVersion   uint64
	CacheEntries   int
	DroppedSamples uint64

	// Transitions lists completed serve-path failovers, oldest first.
	Transitions []Transition
}

func (s *serverStats) noteFlush(size int, reason flushReason) {
	switch reason {
	case flushFull:
		s.flushFull.Add(1)
	case flushDeadline:
		s.flushDeadline.Add(1)
	case flushDrain:
		s.flushDrain.Add(1)
	}
	s.batchSum.Add(uint64(size))
	s.mu.Lock()
	if size > s.batchMax {
		s.batchMax = size
	}
	s.mu.Unlock()
}

func (s *serverStats) observe(d time.Duration, hit bool) {
	s.mu.Lock()
	if len(s.lat) < maxLatencySamples {
		s.lat = append(s.lat, latSample{d: d, hit: hit})
	} else {
		s.dropped++
	}
	s.mu.Unlock()
}

func (s *serverStats) noteTransition(t Transition) {
	s.mu.Lock()
	s.transitions = append(s.transitions, t)
	s.mu.Unlock()
}

// snapshot assembles a Stats under the reservoir lock.
func (s *serverStats) snapshot(version uint64, cacheEntries int) Stats {
	out := Stats{
		Requests:      s.requests.Load(),
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		ShedRate:      s.shedRate.Load(),
		ShedQueue:     s.shedQueue.Load(),
		Errors:        s.errors.Load(),
		FlushFull:     s.flushFull.Load(),
		FlushDeadline: s.flushDeadline.Load(),
		FlushDrain:    s.flushDrain.Load(),
		ModelVersion:  version,
		CacheEntries:  cacheEntries,
	}
	out.Flushes = out.FlushFull + out.FlushDeadline + out.FlushDrain
	if out.Flushes > 0 {
		out.AvgBatch = float64(s.batchSum.Load()) / float64(out.Flushes)
	}
	s.mu.Lock()
	out.MaxBatch = s.batchMax
	out.DroppedSamples = s.dropped
	out.Transitions = append([]Transition(nil), s.transitions...)
	all := make([]time.Duration, 0, len(s.lat))
	hits := make([]time.Duration, 0, len(s.lat))
	misses := make([]time.Duration, 0, len(s.lat))
	for _, l := range s.lat {
		all = append(all, l.d)
		if l.hit {
			hits = append(hits, l.d)
		} else {
			misses = append(misses, l.d)
		}
	}
	s.mu.Unlock()
	out.P50, out.P99, out.P999 = quantiles(all)
	out.HitP50, out.HitP99, out.HitP999 = quantiles(hits)
	out.MissP50, out.MissP99, out.MissP999 = quantiles(misses)
	return out
}

// quantiles returns the p50/p99/p999 of the samples (zeros when empty).
// It sorts a copy; callers own their slices.
func quantiles(d []time.Duration) (p50, p99, p999 time.Duration) {
	if len(d) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), d...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return quantile(sorted, 0.50), quantile(sorted, 0.99), quantile(sorted, 0.999)
}

// quantile picks the nearest-rank quantile from an ascending slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
