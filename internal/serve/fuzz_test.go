package serve

import (
	"testing"
)

// FuzzDecodeServeRequest drives the DGS1 request decode path with arbitrary
// bytes, mirroring the wire frame codec's fuzz invariants: malformed input —
// truncated, oversized, bit-flipped, or garbage — must return an error,
// never panic, and must never allocate a vertex list larger than the capped,
// validated count declares.
func FuzzDecodeServeRequest(f *testing.F) {
	seeds := [][]byte{
		AppendRequest(nil, &Request{Op: OpQuery, ID: 1, Vertices: []int32{0}}),
		AppendRequest(nil, &Request{Op: OpQuery, ID: 42, Vertices: []int32{7, 7, 1023, -1}}),
		AppendRequest(nil, &Request{Op: OpStats, ID: 3}),
	}
	for _, s := range seeds {
		f.Add(s)
		f.Add(s[:len(s)/2]) // truncated
		flip := append([]byte(nil), s...)
		flip[len(flip)/3] ^= 0x10
		f.Add(flip)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeRequest(data)
		if err != nil {
			if r != nil || n != 0 {
				t.Fatalf("error return leaked a partial request: %v, %d", r, n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		if len(r.Vertices) > MaxQueryVertices {
			t.Fatalf("vertex list of %d exceeds the cap %d", len(r.Vertices), MaxQueryVertices)
		}
		// The encoding is canonical: a request the decoder accepts
		// re-encodes to the bytes it came from (reserved bytes excepted).
		re := AppendRequest(nil, r)
		if len(re) != n {
			t.Fatalf("re-encode is %d bytes, decode consumed %d", len(re), n)
		}
		for i := range re {
			if re[i] != data[i] && i != 6 && i != 7 { // reserved bytes are not canonical
				t.Fatalf("re-encode differs at byte %d: %#x vs %#x", i, re[i], data[i])
			}
		}
	})
}
