package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"dgcl/internal/comm/wire"
)

// The load generator drives a server with a Zipf-distributed query stream at
// a target QPS — the skewed access pattern real vertex-serving workloads see
// (a hot head of popular vertices, a long cold tail), which is exactly what
// exercises the LRU: the head hits, the tail misses. It can drive a Server
// in-process (direct mode) or a dgclserve endpoint over TCP, and can record
// its report into a dgclbenchdiff runs file.

// LoadOptions configures one load run. Exactly one of Server and Addr must
// be set.
type LoadOptions struct {
	// Server drives an in-process server directly.
	Server *Server
	// Addr drives a remote dgclserve endpoint (one TCP connection per
	// worker).
	Addr string

	// Vertices is the query key space [0, Vertices).
	Vertices int
	// QPS is the target offered rate; 0 means unpaced (as fast as the
	// workers go).
	QPS float64
	// Requests is the total number of queries to issue.
	Requests int
	// Concurrency is the number of worker goroutines. Default 8.
	Concurrency int
	// ZipfS and ZipfV shape the vertex popularity distribution
	// (rand.NewZipf; s > 1, v >= 1). Defaults 1.2 and 1.
	ZipfS, ZipfV float64
	// Seed makes the query stream reproducible.
	Seed int64
	// RequestTimeout bounds one query. Default 15s.
	RequestTimeout time.Duration
}

// LoadReport summarizes one load run.
type LoadReport struct {
	QPS         float64       `json:"qps"` // target offered rate (0 = unpaced)
	Requests    int           `json:"requests"`
	OK          int           `json:"ok"`
	Cached      int           `json:"cached"`
	Shed        int           `json:"shed"`
	Failed      int           `json:"failed"`
	Elapsed     time.Duration `json:"elapsed"`
	AchievedQPS float64       `json:"achieved_qps"`

	P50, P99, P999             time.Duration // all successful queries
	HitP50, HitP99, HitP999    time.Duration // cache hits
	MissP50, MissP99, MissP999 time.Duration // forward-path queries

	HitRate float64 `json:"hit_rate"` // cached / ok
}

// RunLoad issues opts.Requests Zipf-distributed queries and reports the
// latency distribution. Offered load is paced on an absolute schedule
// (request i fires at start + i/QPS) so a slow burst doesn't silently shrink
// the offered rate.
func RunLoad(ctx context.Context, opts LoadOptions) (*LoadReport, error) {
	if (opts.Server == nil) == (opts.Addr == "") {
		return nil, errors.New("loadgen: exactly one of Server and Addr must be set")
	}
	if opts.Vertices <= 0 {
		return nil, errors.New("loadgen: Vertices must be positive")
	}
	if opts.Requests <= 0 {
		return nil, errors.New("loadgen: Requests must be positive")
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.ZipfS <= 1 {
		opts.ZipfS = 1.2
	}
	if opts.ZipfV < 1 {
		opts.ZipfV = 1
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 15 * time.Second
	}

	// Zipf ranks hit a fixed popularity order (0 most popular); the seeded
	// permutation scatters that order across the vertex id space so hot
	// vertices land in every partition.
	rng := rand.New(rand.NewSource(opts.Seed))
	zipf := rand.NewZipf(rng, opts.ZipfS, opts.ZipfV, uint64(opts.Vertices-1))
	perm := rng.Perm(opts.Vertices)
	vertices := make([]int, opts.Requests)
	for i := range vertices {
		vertices[i] = perm[int(zipf.Uint64())]
	}

	type sample struct {
		d      time.Duration
		cached bool
	}
	var (
		mu      sync.Mutex
		samples []sample
		shed    int
		failed  int
	)

	jobs := make(chan int)
	var wg sync.WaitGroup
	worker := func(query func(v int) (bool, error)) {
		defer wg.Done()
		for v := range jobs {
			t0 := time.Now()
			cached, err := query(v)
			d := time.Since(t0)
			mu.Lock()
			switch {
			case err == nil:
				samples = append(samples, sample{d: d, cached: cached})
			case errors.Is(err, ErrOverload) || strings.Contains(err.Error(), "overloaded"):
				shed++
			default:
				failed++
			}
			mu.Unlock()
		}
	}

	for i := 0; i < opts.Concurrency; i++ {
		wg.Add(1)
		if opts.Server != nil {
			srv := opts.Server
			go worker(func(v int) (bool, error) {
				res, err := srv.Query(ctx, v)
				return res.Cached, err
			})
		} else {
			conn, err := net.Dial("tcp", opts.Addr)
			if err != nil {
				close(jobs)
				return nil, fmt.Errorf("loadgen: dialing %s: %w", opts.Addr, err)
			}
			defer conn.Close()
			go worker(tcpQuerier(conn, opts.RequestTimeout))
		}
	}

	start := time.Now()
	interval := time.Duration(0)
	if opts.QPS > 0 {
		interval = time.Duration(float64(time.Second) / opts.QPS)
	}
dispatch:
	for i, v := range vertices {
		if interval > 0 {
			due := start.Add(time.Duration(i) * interval)
			if d := time.Until(due); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					break dispatch
				}
			}
		}
		select {
		case jobs <- v:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		QPS:      opts.QPS,
		Requests: opts.Requests,
		OK:       len(samples),
		Shed:     shed,
		Failed:   failed,
		Elapsed:  elapsed,
	}
	if elapsed > 0 {
		rep.AchievedQPS = float64(len(samples)+shed+failed) / elapsed.Seconds()
	}
	all := make([]time.Duration, 0, len(samples))
	hits := make([]time.Duration, 0, len(samples))
	misses := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		all = append(all, s.d)
		if s.cached {
			rep.Cached++
			hits = append(hits, s.d)
		} else {
			misses = append(misses, s.d)
		}
	}
	rep.P50, rep.P99, rep.P999 = quantiles(all)
	rep.HitP50, rep.HitP99, rep.HitP999 = quantiles(hits)
	rep.MissP50, rep.MissP99, rep.MissP999 = quantiles(misses)
	if rep.OK > 0 {
		rep.HitRate = float64(rep.Cached) / float64(rep.OK)
	}
	return rep, nil
}

// tcpQuerier issues single-vertex DGS1 queries over one connection. A reply
// whose error slot mentions overload counts as shed on the client side.
func tcpQuerier(conn net.Conn, timeout time.Duration) func(v int) (bool, error) {
	var id uint64
	return func(v int) (bool, error) {
		id++
		req := Request{Op: OpQuery, ID: id, Vertices: []int32{int32(v)}}
		if err := WriteRequest(conn, &req, timeout); err != nil {
			return false, err
		}
		var reply QueryReply
		if err := wire.ReadControl(conn, &reply, timeout); err != nil {
			return false, err
		}
		if reply.ID != id {
			return false, fmt.Errorf("loadgen: reply id %d for request %d", reply.ID, id)
		}
		if len(reply.Errors) != 1 || len(reply.Cached) != 1 {
			return false, fmt.Errorf("loadgen: malformed reply: %d slots", len(reply.Errors))
		}
		if reply.Errors[0] != "" {
			return false, errors.New(reply.Errors[0])
		}
		return reply.Cached[0], nil
	}
}

// benchResult / benchRun / benchRecord mirror the dgclbenchdiff runs-file
// shape so BENCH_serve.json diffs with the same tool as the other BENCH
// files.
type benchResult struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_op"`
	BPerOp   int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

type benchRun struct {
	Label   string        `json:"label"`
	Results []benchResult `json:"results"`
}

type benchRecord struct {
	Note string     `json:"note,omitempty"`
	Runs []benchRun `json:"runs"`
}

// RecordBench upserts the reports as a labeled run in a dgclbenchdiff runs
// file. Latencies are recorded in ns/op under ServeZipf/qps=... names; the
// hit rate rides along as a pseudo-benchmark in percent.
func RecordBench(path, label string, reports []*LoadReport) error {
	var results []benchResult
	for _, r := range reports {
		iters := int64(r.OK)
		prefix := fmt.Sprintf("BenchmarkServeZipf/qps=%g", r.QPS)
		add := func(name string, v float64) {
			results = append(results, benchResult{Name: prefix + "/" + name, Iters: iters, NsPerOp: v})
		}
		add("p50", float64(r.P50.Nanoseconds()))
		add("p99", float64(r.P99.Nanoseconds()))
		add("p999", float64(r.P999.Nanoseconds()))
		add("hit_p99", float64(r.HitP99.Nanoseconds()))
		add("miss_p99", float64(r.MissP99.Nanoseconds()))
		add("hit_rate_pct", 100*r.HitRate)
	}
	rec := &benchRecord{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, rec); err != nil {
			return fmt.Errorf("loadgen: %s: %w", path, err)
		}
	}
	if rec.Note == "" {
		rec.Note = "serve-path latency under Zipf load (ns_op carries latency quantiles; hit_rate_pct is a percentage)"
	}
	replaced := false
	for i := range rec.Runs {
		if rec.Runs[i].Label == label {
			rec.Runs[i].Results = results
			replaced = true
		}
	}
	if !replaced {
		rec.Runs = append(rec.Runs, benchRun{Label: label, Results: results})
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatReport renders one report as a human-readable line block.
func FormatReport(r *LoadReport) string {
	var b strings.Builder
	pace := "unpaced"
	if r.QPS > 0 {
		pace = fmt.Sprintf("%g qps target", r.QPS)
	}
	fmt.Fprintf(&b, "%s: %d requests in %v (%.1f qps achieved)\n", pace, r.Requests, r.Elapsed.Round(time.Millisecond), r.AchievedQPS)
	fmt.Fprintf(&b, "  ok %d (%.1f%% cached)  shed %d  failed %d\n", r.OK, 100*r.HitRate, r.Shed, r.Failed)
	fmt.Fprintf(&b, "  latency p50 %v  p99 %v  p999 %v\n", r.P50, r.P99, r.P999)
	fmt.Fprintf(&b, "  hits    p50 %v  p99 %v  p999 %v\n", r.HitP50, r.HitP99, r.HitP999)
	fmt.Fprintf(&b, "  misses  p50 %v  p99 %v  p999 %v", r.MissP50, r.MissP99, r.MissP999)
	return b.String()
}
