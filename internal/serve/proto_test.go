package serve

import (
	"bytes"
	"net"
	"testing"
	"time"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpQuery, ID: 1, Vertices: []int32{0}},
		{Op: OpQuery, ID: 1 << 40, Vertices: []int32{5, 5, 2, 1 << 20}},
		{Op: OpStats, ID: 9},
	}
	for _, want := range cases {
		buf := AppendRequest(nil, &want)
		got, n, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("DecodeRequest(%v): %v", want, err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d bytes", n, len(buf))
		}
		if got.Op != want.Op || got.ID != want.ID || len(got.Vertices) != len(want.Vertices) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
		for i := range want.Vertices {
			if got.Vertices[i] != want.Vertices[i] {
				t.Fatalf("vertex %d: got %d, want %d", i, got.Vertices[i], want.Vertices[i])
			}
		}
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	valid := AppendRequest(nil, &Request{Op: OpQuery, ID: 1, Vertices: []int32{1, 2}})
	cases := map[string][]byte{
		"empty":       nil,
		"short":       valid[:10],
		"bad magic":   append([]byte("XXXX"), valid[4:]...),
		"bad version": append(append([]byte{}, valid[:4]...), append([]byte{99}, valid[5:]...)...),
		"bad op":      append(append([]byte{}, valid[:5]...), append([]byte{77}, valid[6:]...)...),
		"truncated":   valid[:len(valid)-3],
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01
	cases["checksum"] = flipped
	oversize := append([]byte(nil), valid...)
	oversize[8], oversize[9], oversize[10], oversize[11] = 0xff, 0xff, 0xff, 0x7f
	cases["oversized body"] = oversize
	for name, data := range cases {
		if r, n, err := DecodeRequest(data); err == nil {
			t.Errorf("%s: decoded %+v (%d bytes) without error", name, r, n)
		}
	}
	zeroCount := AppendRequest(nil, &Request{Op: OpQuery, ID: 1, Vertices: []int32{}})
	if _, _, err := DecodeRequest(zeroCount); err == nil {
		t.Error("zero-vertex query accepted")
	}
}

func TestWriteReadRequestOverPipe(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	want := Request{Op: OpQuery, ID: 77, Vertices: []int32{3, 1, 4, 1, 5}}
	errc := make(chan error, 1)
	go func() { errc <- WriteRequest(client, &want, 5*time.Second) }()
	got, err := ReadRequest(server, 5*time.Second)
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	if werr := <-errc; werr != nil {
		t.Fatalf("WriteRequest: %v", werr)
	}
	if got.Op != want.Op || got.ID != want.ID || len(got.Vertices) != 5 {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	wantBytes := AppendRequest(nil, &want)
	gotBytes := AppendRequest(nil, got)
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatal("pipe round trip not canonical")
	}
}

func TestReadRequestRejectsOversizedDeclaredBody(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	// A header declaring a body beyond the cap must be rejected from the
	// header alone (before the reader materializes anything).
	hdr := AppendRequest(nil, &Request{Op: OpStats, ID: 1})[:reqHeaderSize]
	hdr = append([]byte(nil), hdr...)
	hdr[8], hdr[9], hdr[10], hdr[11] = 0xff, 0xff, 0xff, 0x7f
	go func() {
		server.SetWriteDeadline(time.Now().Add(5 * time.Second))
		server.Write(hdr)
	}()
	if _, err := ReadRequest(client, 5*time.Second); err == nil {
		t.Fatal("oversized declared body accepted")
	}
}
