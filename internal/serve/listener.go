package serve

import (
	"context"
	"errors"
	"net"
	"sync"

	"dgcl/internal/comm/wire"
)

// ServeListener accepts connections on ln and answers DGS1 requests until the
// listener is closed. It returns after every in-flight connection handler has
// exited, so callers can close the listener and then the server without
// leaking goroutines. A closed listener returns nil; any other accept error
// is returned as-is.
func (s *Server) ServeListener(ln net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn answers one connection's requests in order. Any read, decode, or
// write failure (including the idle timeout) shears the connection down; the
// client reconnects.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		req, err := ReadRequest(conn, s.cfg.IdleTimeout)
		if err != nil {
			return
		}
		switch req.Op {
		case OpQuery:
			if err := s.handleQuery(conn, req); err != nil {
				return
			}
		case OpStats:
			reply := StatsReply{ID: req.ID, NumVertices: s.numVertices, Stats: s.Stats()}
			if err := wire.WriteControl(conn, &reply, s.cfg.WriteTimeout); err != nil {
				return
			}
		}
	}
}

// handleQuery fans one request's vertices out as concurrent Query calls — the
// batcher coalesces them into shared flushes — and replies with one slot per
// vertex in request order.
func (s *Server) handleQuery(conn net.Conn, req *Request) error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	defer cancel()
	reply := QueryReply{
		ID:       req.ID,
		Rows:     make([][]float32, len(req.Vertices)),
		Versions: make([]uint64, len(req.Vertices)),
		Cached:   make([]bool, len(req.Vertices)),
		Errors:   make([]string, len(req.Vertices)),
	}
	var wg sync.WaitGroup
	for i, v := range req.Vertices {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Query(ctx, int(v))
			if err != nil {
				reply.Errors[i] = err.Error()
				return
			}
			reply.Rows[i] = res.Row
			reply.Versions[i] = res.Version
			reply.Cached[i] = res.Cached
		}()
	}
	wg.Wait()
	return wire.WriteControl(conn, &reply, s.cfg.WriteTimeout)
}
