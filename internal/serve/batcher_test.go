package serve

import (
	"sync"
	"testing"
	"time"

	"dgcl/internal/testutil"
)

// fakeClock is a deterministic Clock for the batcher tests: time advances
// only when the test says so, and timers fire only when advanced past their
// deadline.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{ch: make(chan time.Time, 1), deadline: c.now.Add(d)}
	c.timers = append(c.timers, t)
	return t
}

// advance moves time forward and fires every timer whose deadline passed.
func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var live []*fakeTimer
	for _, t := range c.timers {
		if t.fire(c.now) {
			continue
		}
		live = append(live, t)
	}
	c.timers = live
	c.mu.Unlock()
}

type fakeTimer struct {
	mu       sync.Mutex
	ch       chan time.Time
	deadline time.Time
	stopped  bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	was := !t.stopped
	t.stopped = true
	return was
}

// fire delivers the tick if due and not stopped; reports whether the timer
// is finished (fired or stopped).
func (t *fakeTimer) fire(now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return true
	}
	if !now.Before(t.deadline) {
		t.stopped = true
		t.ch <- now
		return true
	}
	return false
}

// flushRecorder collects flushes for assertions.
type flushRecorder struct {
	mu      sync.Mutex
	flushes []recordedFlush
	notify  chan struct{}
}

type recordedFlush struct {
	vertices []int32
	reason   flushReason
}

func newFlushRecorder() *flushRecorder {
	return &flushRecorder{notify: make(chan struct{}, 64)}
}

func (r *flushRecorder) flush(batch []request, reason flushReason) {
	var vs []int32
	for _, req := range batch {
		vs = append(vs, req.vertex)
		req.ch <- response{version: 1}
	}
	r.mu.Lock()
	r.flushes = append(r.flushes, recordedFlush{vertices: vs, reason: reason})
	r.mu.Unlock()
	r.notify <- struct{}{}
}

func (r *flushRecorder) wait(t *testing.T, n int) []recordedFlush {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		r.mu.Lock()
		if len(r.flushes) >= n {
			out := append([]recordedFlush(nil), r.flushes...)
			r.mu.Unlock()
			return out
		}
		r.mu.Unlock()
		select {
		case <-r.notify:
		case <-deadline:
			t.Fatalf("timed out waiting for %d flushes", n)
		}
	}
}

func submitN(t *testing.T, b *batcher, vertices ...int32) []request {
	t.Helper()
	reqs := make([]request, len(vertices))
	for i, v := range vertices {
		reqs[i] = request{vertex: v, ch: make(chan response, 1)}
		if !b.submit(reqs[i]) {
			t.Fatalf("submit(%d) shed unexpectedly", v)
		}
	}
	return reqs
}

// waitBatched polls until the batcher's run loop has drained the in channel
// (the requests are in the open batch), so a subsequent clock advance is
// guaranteed to find the deadline timer armed.
func waitBatched(t *testing.T, b *batcher) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(b.in) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("batcher never drained its queue")
		}
		time.Sleep(time.Millisecond)
	}
	// One more beat: the last request may be read but not yet appended.
	time.Sleep(2 * time.Millisecond)
}

func TestBatcherDeadlineFiresBeforeOccupancy(t *testing.T) {
	base := testutil.Goroutines()
	clock := newFakeClock()
	rec := newFlushRecorder()
	b := newBatcher(8, 10*time.Millisecond, 64, clock, rec.flush)

	submitN(t, b, 1, 2, 3)
	waitBatched(t, b)
	clock.advance(10 * time.Millisecond)

	flushes := rec.wait(t, 1)
	if got := flushes[0]; got.reason != flushDeadline || len(got.vertices) != 3 {
		t.Fatalf("flush = %d vertices, reason %v; want 3 vertices on deadline", len(got.vertices), got.reason)
	}
	b.close()
	if !testutil.GoroutinesSettleTo(base, 5*time.Second) {
		t.Fatal("goroutines leaked")
	}
}

func TestBatcherOccupancyFiresBeforeDeadline(t *testing.T) {
	clock := newFakeClock()
	rec := newFlushRecorder()
	b := newBatcher(4, time.Hour, 64, clock, rec.flush)
	defer b.close()

	// The deadline is an hour out and the clock never advances: only the
	// occupancy cutoff can fire.
	submitN(t, b, 1, 2, 3, 4)
	flushes := rec.wait(t, 1)
	if got := flushes[0]; got.reason != flushFull || len(got.vertices) != 4 {
		t.Fatalf("flush = %d vertices, reason %v; want 4 vertices on occupancy", len(got.vertices), got.reason)
	}

	// The next batch opens fresh and fills again.
	submitN(t, b, 5, 6, 7, 8)
	flushes = rec.wait(t, 2)
	if got := flushes[1]; got.reason != flushFull || len(got.vertices) != 4 {
		t.Fatalf("second flush = %d vertices, reason %v; want 4 on occupancy", len(got.vertices), got.reason)
	}
}

func TestBatcherShedsAtQueueThreshold(t *testing.T) {
	clock := newFakeClock()
	// A flush gate that blocks keeps the run loop busy so submissions pile
	// up in the queue.
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	b := newBatcher(1, time.Hour, 4, clock, func(batch []request, _ flushReason) {
		<-gate
		for _, r := range batch {
			r.ch <- response{}
		}
	})

	// maxBatch 1: the first request is picked up immediately and its flush
	// blocks on the gate. The queue (capacity 4) then fills.
	submitN(t, b, 0)
	waitBatched(t, b)
	accepted := 0
	for i := int32(1); i <= 16; i++ {
		if b.submit(request{vertex: i, ch: make(chan response, 1)}) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d queued requests at threshold 4", accepted)
	}
	release()
	b.close()
}

func TestBatcherDrainsOnShutdown(t *testing.T) {
	base := testutil.Goroutines()
	clock := newFakeClock()
	rec := newFlushRecorder()
	b := newBatcher(8, time.Hour, 64, clock, rec.flush)

	reqs := submitN(t, b, 1, 2, 3, 4, 5)
	b.close() // deadline never fired, batch not full: drain must flush

	seen := 0
	for _, r := range reqs {
		select {
		case <-r.ch:
			seen++
		default:
			t.Fatalf("request %d abandoned on shutdown", r.vertex)
		}
	}
	if seen != len(reqs) {
		t.Fatalf("answered %d of %d requests", seen, len(reqs))
	}
	flushes := rec.wait(t, 1)
	last := flushes[len(flushes)-1]
	if last.reason != flushDrain {
		t.Fatalf("final flush reason %v, want drain", last.reason)
	}
	total := 0
	for _, f := range flushes {
		total += len(f.vertices)
	}
	if total != 5 {
		t.Fatalf("flushed %d vertices total, want 5", total)
	}
	if !testutil.GoroutinesSettleTo(base, 5*time.Second) {
		t.Fatal("goroutines leaked")
	}

	// Submissions after close shed rather than block.
	if b.submit(request{vertex: 9, ch: make(chan response, 1)}) {
		t.Fatal("submit after close accepted")
	}
}
