package serve

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dgcl"
	"dgcl/internal/comm/wire"
	"dgcl/internal/testutil"
	"dgcl/internal/worker"
)

func listenLoopback(t *testing.T) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", "127.0.0.1:0")
}

// tcpQuerierForTest returns a single-vertex query function over a fresh
// connection plus its closer (close before shutting the listener down, or
// ServeListener waits out the idle timeout on the open connection).
func tcpQuerierForTest(t *testing.T, addr string) (func(v int) []float32, func()) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	closer := func() { once.Do(func() { conn.Close() }) }
	t.Cleanup(closer)
	var id uint64
	query := func(v int) []float32 {
		id++
		req := Request{Op: OpQuery, ID: id, Vertices: []int32{int32(v)}}
		if err := WriteRequest(conn, &req, 10*time.Second); err != nil {
			t.Fatalf("WriteRequest(%d): %v", v, err)
		}
		var reply QueryReply
		if err := wire.ReadControl(conn, &reply, 10*time.Second); err != nil {
			t.Fatalf("ReadControl(%d): %v", v, err)
		}
		if reply.ID != id || len(reply.Rows) != 1 || reply.Errors[0] != "" {
			t.Fatalf("malformed reply for vertex %d: %+v", v, reply)
		}
		return reply.Rows[0]
	}
	return query, closer
}

// serveSpec is the battery's fixture: the resilience suite's Web-Google
// fixture (4 GPUs, 2-layer GCN, feature dim 16) built through the
// deterministic worker spec.
func serveSpec(seed int64) worker.Spec {
	return worker.Spec{
		Dataset:    "Web-Google",
		Scale:      4096,
		GPUs:       4,
		FeatureDim: 16,
		Hidden:     8,
		Layers:     2,
		Seed:       seed,
	}
}

func buildFixture(t *testing.T, seed int64) (*dgcl.System, *dgcl.Model, *dgcl.Matrix, *dgcl.Matrix) {
	t.Helper()
	sys, model, features, targets, err := worker.Build(serveSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sys, model, features, targets
}

// directForward computes the uncached ground truth: a fresh trainer over the
// same system, one full forward.
func directForward(t *testing.T, sys *dgcl.System, model *dgcl.Model, features, targets *dgcl.Matrix) *dgcl.Matrix {
	t.Helper()
	tr, err := sys.NewTrainer(model, features, targets)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.Forward(features.Rows)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// queryAll fans every vertex through the server concurrently (so the batcher
// coalesces) and returns the rows and versions indexed by vertex.
func queryAll(t *testing.T, srv *Server, n int) ([][]float32, []uint64) {
	t.Helper()
	rows := make([][]float32, n)
	versions := make([]uint64, n)
	errs := make([]error, n)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := srv.Query(ctx, v)
			rows[v], versions[v], errs[v] = res.Row, res.Version, err
		}()
	}
	wg.Wait()
	for v, err := range errs {
		if err != nil {
			t.Fatalf("Query(%d): %v", v, err)
		}
	}
	return rows, versions
}

func rowsEqualBitwise(a []float32, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServedEmbeddingsBitwiseEqualDirectForward is the first property of the
// battery: for every vertex, the served embedding — through the batcher, the
// flush, and the cache — is bitwise identical to a direct uncached forward
// pass, both on the miss path and on the subsequent hit path.
func TestServedEmbeddingsBitwiseEqualDirectForward(t *testing.T) {
	for _, seed := range []int64{11, 23} {
		base := testutil.Goroutines()
		sys, model, features, targets := buildFixture(t, seed)
		want := directForward(t, sys, model, features, targets)
		n := features.Rows

		srv, err := New(sys, model, features, Config{
			MaxBatch:     64,
			BatchDelay:   time.Millisecond,
			QueueDepth:   n + 16,
			CacheEntries: n,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Miss path: every vertex through batched forwards.
		rows, versions := queryAll(t, srv, n)
		for v := 0; v < n; v++ {
			if versions[v] != 0 {
				t.Fatalf("seed %d: vertex %d served version %d, want 0", seed, v, versions[v])
			}
			if !rowsEqualBitwise(rows[v], want.Row(v)) {
				t.Fatalf("seed %d: vertex %d miss-path row differs from direct forward", seed, v)
			}
		}

		// Hit path: the same queries again must come from the cache, bitwise
		// unchanged.
		for v := 0; v < n; v++ {
			res, err := srv.Query(context.Background(), v)
			if err != nil {
				t.Fatalf("seed %d: cached Query(%d): %v", seed, v, err)
			}
			if !res.Cached {
				t.Fatalf("seed %d: vertex %d missed on the second pass", seed, v)
			}
			if !rowsEqualBitwise(res.Row, want.Row(v)) {
				t.Fatalf("seed %d: vertex %d hit-path row differs from direct forward", seed, v)
			}
		}

		st := srv.Stats()
		if st.Hits < uint64(n) {
			t.Fatalf("seed %d: %d hits after a full cached pass, want >= %d", seed, st.Hits, n)
		}
		if st.Flushes == 0 || st.AvgBatch < 1 {
			t.Fatalf("seed %d: implausible flush stats %+v", seed, st)
		}
		srv.Close()
		if !testutil.GoroutinesSettleTo(base, 5*time.Second) {
			t.Fatalf("seed %d: goroutines leaked", seed)
		}
	}
}

// TestEpochInvalidationNoStaleEmbeddings is the second property: after an
// epoch-boundary invalidation (System.OnEpochEnd -> Server.EpochHook), no
// embedding computed under the old model version is ever returned — every
// post-epoch answer carries the new version and is bitwise identical to a
// direct forward with the newly trained weights.
func TestEpochInvalidationNoStaleEmbeddings(t *testing.T) {
	base := testutil.Goroutines()
	sys, model, features, targets := buildFixture(t, 31)
	n := features.Rows

	srv, err := New(sys, model, features, Config{
		MaxBatch:     64,
		BatchDelay:   time.Millisecond,
		QueueDepth:   n + 16,
		CacheEntries: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.OnEpochEnd(srv.EpochHook)

	// Warm the cache under version 0.
	oldRows, oldVersions := queryAll(t, srv, n)
	for v := 0; v < n; v++ {
		if oldVersions[v] != 0 {
			t.Fatalf("vertex %d pre-train version %d, want 0", v, oldVersions[v])
		}
	}
	if got := srv.Stats().CacheEntries; got != n {
		t.Fatalf("cache holds %d entries after warmup, want %d", got, n)
	}

	// One training epoch; the epoch-end hook swaps the weights and
	// invalidates the cache wholesale. (Training and serving collectives
	// must not overlap — the hook runs at the epoch boundary with none in
	// flight, which is exactly the seam this test exercises.)
	res, err := sys.Train(context.Background(), model, features, targets, dgcl.TrainOptions{Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := directForward(t, sys, res.Model, features, targets)

	newRows, newVersions := queryAll(t, srv, n)
	stale := 0
	changed := false
	for v := 0; v < n; v++ {
		if newVersions[v] == 0 {
			stale++
		}
		if !rowsEqualBitwise(newRows[v], want.Row(v)) {
			t.Fatalf("vertex %d post-epoch row differs from direct forward with trained weights", v)
		}
		if !rowsEqualBitwise(newRows[v], oldRows[v]) {
			changed = true
		}
	}
	if stale > 0 {
		t.Fatalf("%d of %d post-epoch answers carried the stale model version", stale, n)
	}
	if !changed {
		t.Fatal("training an epoch changed no embedding; staleness test is vacuous")
	}
	if got := srv.Stats().ModelVersion; got == 0 {
		t.Fatal("model version not bumped by the epoch hook")
	}

	srv.Close()
	if !testutil.GoroutinesSettleTo(base, 5*time.Second) {
		t.Fatal("goroutines leaked")
	}
}

// TestQueryShedsOnRateLimit: with a one-token bucket, the second immediate
// query sheds with ErrOverload and is counted.
func TestQueryShedsOnRateLimit(t *testing.T) {
	sys, model, features, _ := buildFixture(t, 7)
	srv, err := New(sys, model, features, Config{
		RateLimit: 0.001, // ~one token per 17 minutes: no refill mid-test
		RateBurst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Query(context.Background(), 0); err != nil {
		t.Fatalf("first query rejected: %v", err)
	}
	if _, err := srv.Query(context.Background(), 1); !errors.Is(err, ErrOverload) {
		t.Fatalf("second query error = %v, want ErrOverload", err)
	}
	st := srv.Stats()
	if st.ShedRate != 1 {
		t.Fatalf("ShedRate = %d, want 1", st.ShedRate)
	}
}

func TestQueryRejectsOutOfRange(t *testing.T) {
	sys, model, features, _ := buildFixture(t, 7)
	srv, err := New(sys, model, features, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Query(context.Background(), -1); err == nil || errors.Is(err, ErrOverload) {
		t.Fatalf("Query(-1) error = %v, want range error", err)
	}
	if _, err := srv.Query(context.Background(), features.Rows); err == nil {
		t.Fatal("Query(NumVertices) accepted")
	}
}

// TestLoadgenDirectSmoke runs the Zipf load driver against an in-process
// server and sanity-checks the report arithmetic.
func TestLoadgenDirectSmoke(t *testing.T) {
	base := testutil.Goroutines()
	sys, model, features, _ := buildFixture(t, 7)
	srv, err := New(sys, model, features, Config{
		MaxBatch:     64,
		BatchDelay:   time.Millisecond,
		QueueDepth:   1024,
		CacheEntries: features.Rows,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(context.Background(), LoadOptions{
		Server:      srv,
		Vertices:    features.Rows,
		Requests:    500,
		Concurrency: 8,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK+rep.Shed+rep.Failed != rep.Requests {
		t.Fatalf("report does not add up: %+v", rep)
	}
	if rep.Failed > 0 {
		t.Fatalf("%d queries failed under plain load", rep.Failed)
	}
	if rep.OK == 0 || rep.P99 == 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.HitRate < 0 || rep.HitRate > 1 {
		t.Fatalf("hit rate %v outside [0,1]", rep.HitRate)
	}
	// Zipf load on a warm cache must produce some hits: the head of the
	// distribution repeats.
	if rep.Cached == 0 {
		t.Fatal("no cache hits under Zipf load")
	}
	srv.Close()
	if !testutil.GoroutinesSettleTo(base, 5*time.Second) {
		t.Fatal("goroutines leaked")
	}
}

// TestServeOverTCP exercises the DGS1 listener end to end: queries over a
// real socket, stats probe, and bitwise equality with the direct forward.
func TestServeOverTCP(t *testing.T) {
	base := testutil.Goroutines()
	sys, model, features, targets := buildFixture(t, 13)
	want := directForward(t, sys, model, features, targets)
	srv, err := New(sys, model, features, Config{
		MaxBatch:     16,
		BatchDelay:   time.Millisecond,
		CacheEntries: features.Rows,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := listenLoopback(t)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.ServeListener(ln) }()

	rep, err := RunLoad(context.Background(), LoadOptions{
		Addr:        ln.Addr().String(),
		Vertices:    features.Rows,
		Requests:    200,
		Concurrency: 4,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != rep.Requests {
		t.Fatalf("%d of %d TCP queries failed: %+v", rep.Requests-rep.OK, rep.Requests, rep)
	}

	// Spot-check bitwise equality through the socket path.
	q, closeConn := tcpQuerierForTest(t, ln.Addr().String())
	for _, v := range []int{0, 1, features.Rows - 1} {
		row := q(v)
		if !rowsEqualBitwise(row, want.Row(v)) {
			t.Fatalf("vertex %d over TCP differs from direct forward", v)
		}
	}
	closeConn()

	ln.Close()
	if err := <-served; err != nil {
		t.Fatalf("ServeListener: %v", err)
	}
	srv.Close()
	if !testutil.GoroutinesSettleTo(base, 5*time.Second) {
		t.Fatal("goroutines leaked")
	}
}
