// Package serve is the online-inference frontend over a trained dgcl.System:
// a long-running embedding server that batches concurrent vertex queries into
// one distributed forward per flush, caches embeddings in a partition-aware
// LRU keyed by (vertex, model-version), sheds load past a token-bucket rate
// or a queue-depth threshold with ErrOverload, and fails over onto survivors
// via System.Degrade when a device dies mid-serve.
//
// Interleaving constraint: concurrent collectives on one System are
// unsupported, so serving and training must not overlap collectives. The
// supported pattern is phase-separated — train, then serve — with
// System.OnEpochEnd(server.EpochHook) bridging the two: the hook runs at
// epoch boundaries (no collective in flight), swaps in the freshly stepped
// weights, bumps the model version, and invalidates the embedding cache
// wholesale.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dgcl"
)

// ErrOverload is returned by Query when admission control sheds the request:
// the token bucket is empty or the batcher queue is at the shed threshold.
// Clients should back off and retry; the server is healthy, just saturated.
var ErrOverload = errors.New("serve: overloaded")

// Result is one answered embedding query.
type Result struct {
	// Row is the vertex's embedding under Version. It is shared with the
	// cache: callers must not modify it.
	Row     []float32
	Version uint64
	Cached  bool
}

// Config tunes the server. The zero value gets sensible defaults.
type Config struct {
	// MaxBatch is the occupancy cutoff: a batch with this many requests
	// flushes immediately. Default 32.
	MaxBatch int
	// BatchDelay is the latency cutoff: a batch flushes this long after its
	// first request even if not full. Default 2ms.
	BatchDelay time.Duration
	// QueueDepth is the shed threshold: requests beyond this many queued
	// misses are rejected with ErrOverload. Default 256.
	QueueDepth int
	// CacheEntries bounds the embedding cache; 0 means default (4096),
	// negative disables caching.
	CacheEntries int
	// RateLimit admits at most this many queries per second (token bucket,
	// capacity RateBurst). 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket capacity; minimum 1 when RateLimit > 0.
	RateBurst int
	// ForwardTimeout bounds one batched forward. Default 30s.
	ForwardTimeout time.Duration
	// DisableFailover turns off the Degrade-and-retry path (forward errors
	// then fail the batch).
	DisableFailover bool
	// IdleTimeout bounds how long a network connection may sit between
	// requests. Default 60s.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one reply. Default 10s.
	WriteTimeout time.Duration
	// RequestTimeout bounds one query on behalf of a network client.
	// Default 15s.
	RequestTimeout time.Duration
	// Clock injects time (tests); nil means the wall clock.
	Clock Clock
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	} else if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 30 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	return c
}

// Server answers vertex-embedding queries over a trained system.
type Server struct {
	cfg         Config
	sys         *dgcl.System
	clock       Clock
	numVertices int

	// version is the model version: bumped by UpdateModel/EpochHook and by
	// failover. Cache entries are keyed by it; a bump invalidates them all.
	version atomic.Uint64

	// mu serializes batched forwards against model swaps and failover — only
	// one collective runs on the system at a time, and version/engine writes
	// happen under it.
	mu  sync.Mutex
	eng *engine

	cache   *cache
	limiter *tokenBucket
	stats   serverStats
	batcher *batcher

	closeOnce sync.Once
}

// New builds a server over sys serving embeddings of model applied to
// features. The model is cloned; later training steps reach the server only
// through UpdateModel or EpochHook.
func New(sys *dgcl.System, model *dgcl.Model, features *dgcl.Matrix, cfg Config) (*Server, error) {
	if model == nil || len(model.Layers) == 0 {
		return nil, errors.New("serve: model must have at least one layer")
	}
	if features == nil || features.Rows == 0 {
		return nil, errors.New("serve: features must be non-empty")
	}
	cfg = cfg.withDefaults()
	eng, err := newEngine(sys, model, features)
	if err != nil {
		return nil, fmt.Errorf("serve: building inference engine: %w", err)
	}
	s := &Server{
		cfg:         cfg,
		sys:         sys,
		clock:       cfg.Clock,
		numVertices: features.Rows,
		eng:         eng,
		limiter:     newTokenBucket(cfg.RateLimit, cfg.RateBurst, cfg.Clock.Now()),
	}
	if cfg.CacheEntries > 0 {
		assign := append([]int32(nil), sys.PartitionAssignment()...)
		s.cache = newCache(cfg.CacheEntries, assign, sys.NumGPUs())
	}
	s.batcher = newBatcher(cfg.MaxBatch, cfg.BatchDelay, cfg.QueueDepth, cfg.Clock, s.flush)
	return s, nil
}

// NumVertices is the valid query range: vertices are [0, NumVertices).
func (s *Server) NumVertices() int { return s.numVertices }

// Query answers one vertex-embedding query: from the cache when a fresh
// (current model-version) entry exists, otherwise through the batcher and one
// batched forward. It returns ErrOverload when shed by admission control and
// ctx.Err when the caller gives up first.
func (s *Server) Query(ctx context.Context, vertex int) (Result, error) {
	s.stats.requests.Add(1)
	if vertex < 0 || vertex >= s.numVertices {
		s.stats.errors.Add(1)
		return Result{}, fmt.Errorf("serve: vertex %d out of range [0,%d)", vertex, s.numVertices)
	}
	start := s.clock.Now()
	if !s.limiter.allow(start) {
		s.stats.shedRate.Add(1)
		return Result{}, ErrOverload
	}
	v := int32(vertex)
	if row, ok := s.cache.get(v, s.version.Load()); ok {
		s.stats.hits.Add(1)
		s.stats.observe(s.clock.Now().Sub(start), true)
		return Result{Row: row, Version: s.version.Load(), Cached: true}, nil
	}
	req := request{vertex: v, ch: make(chan response, 1)}
	if !s.batcher.submit(req) {
		s.stats.shedQueue.Add(1)
		return Result{}, ErrOverload
	}
	s.stats.misses.Add(1)
	select {
	case resp := <-req.ch:
		if resp.err != nil {
			s.stats.errors.Add(1)
			return Result{}, resp.err
		}
		s.stats.observe(s.clock.Now().Sub(start), false)
		return Result{Row: resp.row, Version: resp.version}, nil
	case <-ctx.Done():
		s.stats.errors.Add(1)
		return Result{}, ctx.Err()
	}
}

// flush executes one batch: a single distributed forward answers every
// request, deduplicated by vertex. On a device-death failure (and failover
// enabled) it degrades the system onto the survivors, invalidates the cache,
// records the transition, and retries once on the degraded replica.
func (s *Server) flush(batch []request, reason flushReason) {
	s.stats.noteFlush(len(batch), reason)
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ForwardTimeout)
	defer cancel()

	s.mu.Lock()
	out, err := s.eng.forward(ctx)
	if err != nil && !s.cfg.DisableFailover {
		if down := downDevices(err); len(down) > 0 {
			if rerr := s.eng.recover(down); rerr != nil {
				err = fmt.Errorf("serve: failover after losing %v: %w", down, rerr)
			} else {
				v := s.version.Add(1)
				s.cache.invalidateAll()
				s.stats.noteTransition(Transition{
					Down:      down,
					Survivors: s.sys.AliveDevices(),
					Version:   v,
				})
				out, err = s.eng.forward(ctx)
			}
		}
	}
	ver := s.version.Load()
	s.mu.Unlock()

	if err != nil {
		err = fmt.Errorf("serve: batched forward (%s, %d requests): %w", reason, len(batch), err)
		for _, r := range batch {
			r.ch <- response{err: err}
		}
		return
	}
	rows := make(map[int32][]float32, len(batch))
	for _, r := range batch {
		row, ok := rows[r.vertex]
		if !ok {
			row = append([]float32(nil), out.Row(int(r.vertex))...)
			rows[r.vertex] = row
			s.cache.put(r.vertex, ver, row)
		}
		r.ch <- response{row: row, version: ver}
	}
}

// UpdateModel swaps in new weights (cloned), bumps the model version, and
// invalidates the cache. It must not run while a training collective is in
// flight on the same system.
func (s *Server) UpdateModel(m *dgcl.Model) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.eng.setModel(m); err != nil {
		return fmt.Errorf("serve: swapping model: %w", err)
	}
	s.version.Add(1)
	s.cache.invalidateAll()
	return nil
}

// EpochHook adapts UpdateModel to System.OnEpochEnd: register with
// sys.OnEpochEnd(srv.EpochHook) and every completed epoch (and every
// crash-recovery rebuild) refreshes the served weights and drops the now
// stale cache wholesale.
func (s *Server) EpochHook(epoch int, m *dgcl.Model) {
	if err := s.UpdateModel(m); err != nil {
		// The swap failed (e.g. the cluster is mid-rebuild); keep serving the
		// old weights but make sure no stale cache entry survives.
		s.mu.Lock()
		s.version.Add(1)
		s.cache.invalidateAll()
		s.mu.Unlock()
	}
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	return s.stats.snapshot(s.version.Load(), s.cache.len())
}

// Close drains the batcher (pending requests are answered) and stops the
// coalescing goroutine. Queries after Close shed with ErrOverload.
func (s *Server) Close() {
	s.closeOnce.Do(s.batcher.close)
}
