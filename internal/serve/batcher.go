package serve

import (
	"sync"
	"time"
)

// The request batcher coalesces concurrent vertex-embedding queries into one
// batched forward per flush. A batch opens when the first request arrives
// and flushes on whichever cutoff hits first: the latency deadline (delay
// after the batch opened) or the occupancy cutoff (maxBatch requests).
// Shutdown drains: requests already queued are flushed before the goroutine
// exits, so no waiter is ever abandoned.

// request is one pending vertex-embedding query.
type request struct {
	vertex int32
	// ch receives exactly one response; it is buffered so the flusher never
	// blocks on a waiter that already gave up (context cancellation).
	ch chan response
}

// response answers one request.
type response struct {
	row     []float32
	version uint64
	err     error
}

// flushReason records which cutoff fired a flush.
type flushReason uint8

const (
	flushFull     flushReason = iota // occupancy cutoff: maxBatch requests
	flushDeadline                    // latency cutoff: delay expired
	flushDrain                       // shutdown drain
)

func (r flushReason) String() string {
	switch r {
	case flushFull:
		return "full"
	case flushDeadline:
		return "deadline"
	case flushDrain:
		return "drain"
	}
	return "unknown"
}

// flushFunc executes one batch (the batched forward + responses).
type flushFunc func(batch []request, reason flushReason)

// batcher owns the coalescing loop. The in channel doubles as the admission
// queue: its capacity is the queue-depth shed threshold, and a full channel
// rejects instead of queueing unbounded latency.
type batcher struct {
	in       chan request
	maxBatch int
	delay    time.Duration
	clock    Clock
	flush    flushFunc
	done     chan struct{}

	mu     sync.RWMutex // guards closed against concurrent submit/close
	closed bool
}

func newBatcher(maxBatch int, delay time.Duration, queueDepth int, clock Clock, flush flushFunc) *batcher {
	b := &batcher{
		in:       make(chan request, queueDepth),
		maxBatch: maxBatch,
		delay:    delay,
		clock:    clock,
		flush:    flush,
		done:     make(chan struct{}),
	}
	go b.run()
	return b
}

// submit enqueues a request without blocking. It reports false when the
// queue is at the shed threshold (or the batcher is closed) — the caller
// surfaces ErrOverload instead of waiting.
func (b *batcher) submit(r request) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return false
	}
	select {
	case b.in <- r:
		return true
	default:
		return false
	}
}

// close stops admission, drains and flushes the pending requests, and waits
// for the coalescing goroutine to exit. Safe to call more than once.
func (b *batcher) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.in)
	}
	b.mu.Unlock()
	<-b.done
}

// run is the coalescing loop: one goroutine, one open batch, one deadline
// timer. Closing the in channel switches it into drain mode — buffered
// requests keep coalescing (occupancy flushes still apply) and the final
// partial batch flushes before exit.
func (b *batcher) run() {
	defer close(b.done)
	var batch []request
	var tm Timer
	stopTimer := func() {
		if tm != nil {
			tm.Stop()
			tm = nil
		}
	}
	for {
		var deadline <-chan time.Time
		if tm != nil {
			deadline = tm.C()
		}
		select {
		case r, ok := <-b.in:
			if !ok {
				stopTimer()
				if len(batch) > 0 {
					b.flush(batch, flushDrain)
				}
				return
			}
			batch = append(batch, r)
			if len(batch) == 1 {
				tm = b.clock.NewTimer(b.delay)
			}
			if len(batch) >= b.maxBatch {
				stopTimer()
				b.flush(batch, flushFull)
				batch = nil
			}
		case <-deadline:
			tm = nil
			if len(batch) > 0 {
				b.flush(batch, flushDeadline)
			}
			batch = nil
		}
	}
}
