package serve

import (
	"container/list"
	"sync"
)

// The embedding cache is a size-bounded, partition-aware LRU keyed by
// (vertex, model-version). Partition-aware means the shard a vertex lives in
// is its owning device under the system's initial partition: queries for one
// partition's vertices contend on one lock, matching the request locality a
// partition-aware router would produce, and shard capacity splits the budget
// evenly across devices. Sharding is only a placement heuristic — after a
// degraded replan the assignment is stale as a routing table but still a
// perfectly good hash, and correctness never depends on it.
//
// Version discipline: entries carry the model version they were computed
// under, get compares it against the caller's current version and treats any
// mismatch as a miss (evicting the stale entry), and invalidateAll drops
// everything wholesale on epoch boundaries. Both guards exist so a stale
// (old model-version) embedding is never returned even if an invalidation
// and a lookup race.
type cache struct {
	shards []cacheShard
	assign []int32 // vertex -> shard (owning device at build time)
}

type cacheShard struct {
	mu  sync.Mutex
	cap int        // shard capacity: the budget share of its partition
	ll  *list.List // front = most recently used
	idx map[int32]*list.Element
}

type cacheEntry struct {
	vertex  int32
	version uint64
	row     []float32
}

// newCache builds a cache bounding total entries across k shards; assign
// maps vertex id -> shard in [0, k). Each shard's capacity is the budget
// share proportional to its partition's vertex count (rounded up), so an
// entries budget covering the whole graph really caches the whole graph even
// under an imbalanced partition. entries <= 0 disables caching (nil cache,
// every method a no-op miss).
func newCache(entries int, assign []int32, k int) *cache {
	if entries <= 0 || k <= 0 || len(assign) == 0 {
		return nil
	}
	counts := make([]int, k)
	for _, a := range assign {
		counts[a]++
	}
	c := &cache{shards: make([]cacheShard, k), assign: assign}
	for i := range c.shards {
		s := &c.shards[i]
		s.cap = (entries*counts[i] + len(assign) - 1) / len(assign)
		if s.cap < 1 {
			s.cap = 1
		}
		s.ll = list.New()
		s.idx = make(map[int32]*list.Element)
	}
	return c
}

func (c *cache) shard(v int32) *cacheShard {
	return &c.shards[c.assign[v]]
}

// get returns the cached row for (v, version). A cached row under any other
// version is removed and reported as a miss. The returned slice is shared
// with the cache and must not be modified.
func (c *cache) get(v int32, version uint64) ([]float32, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(v)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.idx[v]
	if !ok {
		return nil, false
	}
	ent := e.Value.(*cacheEntry)
	if ent.version != version {
		s.ll.Remove(e)
		delete(s.idx, v)
		return nil, false
	}
	s.ll.MoveToFront(e)
	return ent.row, true
}

// put inserts (or refreshes) the row for (v, version), evicting the
// least-recently-used entry of v's shard when the shard is at capacity. The
// cache takes ownership of row.
func (c *cache) put(v int32, version uint64, row []float32) {
	if c == nil {
		return
	}
	s := c.shard(v)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.idx[v]; ok {
		ent := e.Value.(*cacheEntry)
		ent.version, ent.row = version, row
		s.ll.MoveToFront(e)
		return
	}
	s.idx[v] = s.ll.PushFront(&cacheEntry{vertex: v, version: version, row: row})
	if s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.idx, oldest.Value.(*cacheEntry).vertex)
	}
}

// invalidateAll empties every shard — the epoch-boundary wholesale
// invalidation.
func (c *cache) invalidateAll() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		clear(s.idx)
		s.mu.Unlock()
	}
}

// len counts cached entries (tests and stats).
func (c *cache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
