package serve

import "time"

// Clock abstracts time for the batcher and the admission controller so the
// cutoff semantics (deadline-before-occupancy, occupancy-before-deadline,
// token refill) are testable deterministically with a fake clock. Production
// uses the real clock; Config.Clock overrides it.
type Clock interface {
	Now() time.Time
	NewTimer(d time.Duration) Timer
}

// Timer is the minimal timer surface the batcher needs.
type Timer interface {
	// C delivers the firing time once the timer expires.
	C() <-chan time.Time
	// Stop cancels the timer; it reports whether the call prevented the
	// firing (time.Timer semantics).
	Stop() bool
}

// realClock is the production clock.
type realClock struct{}

func (realClock) Now() time.Time                 { return time.Now() }
func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }
