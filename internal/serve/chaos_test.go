package serve

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dgcl"
	"dgcl/internal/comm/wire"
	"dgcl/internal/testutil"
)

// TestServeSurvivesDeviceKillMidLoad is the chaos half of the battery: with
// the loopback TCP fabric as the base transport, one device's sockets die
// for real while a query load is in flight. The server must detect the
// death from the failed batched forward, degrade onto the survivors via
// System.Degrade, invalidate the cache, record the transition in its stats,
// and keep answering — bitwise identical to a direct forward on the degraded
// cluster and within a tight band of the pre-kill embeddings — without a
// restart, a leak, or a race.
func TestServeSurvivesDeviceKillMidLoad(t *testing.T) {
	base := testutil.Goroutines()
	sys, model, features, targets := buildFixture(t, 11)
	n := features.Rows

	fab, err := wire.NewLoopbackFabric(4, wire.Config{
		ClusterID: "dgcl-serve-chaos",
		PlanSum:   wire.PlanDigest(sys.Plan()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	if err := sys.SetRunOptions(dgcl.RunOptions{Transport: fab, DownAfter: 1}); err != nil {
		t.Fatal(err)
	}

	// The cache holds only a quarter of the vertices, so the background
	// load keeps missing — keeping forwards, and therefore collectives, in
	// flight for the kill to land in.
	srv, err := New(sys, model, features, Config{
		MaxBatch:     32,
		BatchDelay:   time.Millisecond,
		QueueDepth:   1024,
		CacheEntries: n / 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-kill ground truth from the healthy 4-device fabric.
	preRows, preVersions := queryAll(t, srv, n)
	for v := 0; v < n; v++ {
		if preVersions[v] != 0 {
			t.Fatalf("vertex %d pre-kill version %d, want 0", v, preVersions[v])
		}
	}

	// Background load over the whole vertex range: most queries miss the
	// quarter-sized cache and go through batched forwards.
	var failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				_, err := srv.Query(ctx, rng.Intn(n))
				cancel()
				if err != nil {
					failed.Add(1)
				}
			}
		}(int64(w))
	}

	// Let the load establish itself, then node 1's sockets die for real.
	time.Sleep(20 * time.Millisecond)
	fab.Kill(1)

	// The next forward that touches device 1 must trip the failover.
	deadline := time.Now().Add(30 * time.Second)
	for len(srv.Stats().Transitions) == 0 {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatalf("no failover transition within 30s (load failures: %d)", failed.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Keep serving a beat on the degraded fabric before stopping the load.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	st := srv.Stats()
	if len(st.Transitions) != 1 {
		t.Fatalf("transitions = %+v, want exactly one", st.Transitions)
	}
	tr := st.Transitions[0]
	if !reflect.DeepEqual(tr.Down, []int{1}) {
		t.Fatalf("transition removed %v, want [1]", tr.Down)
	}
	if !reflect.DeepEqual(tr.Survivors, []int{0, 2, 3}) {
		t.Fatalf("transition survivors = %v, want [0 2 3]", tr.Survivors)
	}
	if tr.Version == 0 {
		t.Fatal("transition did not mint a new model version")
	}
	if !reflect.DeepEqual(sys.AliveDevices(), []int{0, 2, 3}) {
		t.Fatalf("alive devices = %v, want [0 2 3]", sys.AliveDevices())
	}
	if got := failed.Load(); got != 0 {
		t.Fatalf("%d queries failed across the failover; the flush-level retry should answer all of them", got)
	}

	// Post-kill answers come from the degraded replica: bitwise identical
	// to a direct forward on the degraded cluster, under the new version.
	want := directForward(t, sys, model, features, targets)
	postRows, postVersions := queryAll(t, srv, n)
	for v := 0; v < n; v++ {
		if postVersions[v] != tr.Version {
			t.Fatalf("vertex %d post-kill version %d, want %d", v, postVersions[v], tr.Version)
		}
		if !rowsEqualBitwise(postRows[v], want.Row(v)) {
			t.Fatalf("vertex %d post-kill row differs from degraded direct forward", v)
		}
	}

	// Quality band: the degraded partition reorders float32 reductions but
	// must not change the math — pre- and post-kill embeddings agree to a
	// tight relative Frobenius tolerance.
	var num, den float64
	for v := 0; v < n; v++ {
		for i := range preRows[v] {
			d := float64(postRows[v][i]) - float64(preRows[v][i])
			num += d * d
			den += float64(preRows[v][i]) * float64(preRows[v][i])
		}
	}
	if den == 0 {
		t.Fatal("pre-kill embeddings are all zero; band check is vacuous")
	}
	if rel := math.Sqrt(num / den); rel > 1e-4 {
		t.Fatalf("degraded embeddings drifted: relative Frobenius diff %v > 1e-4", rel)
	}

	srv.Close()
	fab.Close()
	if !testutil.GoroutinesSettleTo(base, 5*time.Second) {
		t.Fatalf("goroutines leaked across the kill: %d before, %d after", base, testutil.Goroutines())
	}
}
