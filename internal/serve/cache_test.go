package serve

import (
	"testing"
	"time"
)

// flatAssign maps every vertex to shard 0 — single-shard LRU semantics.
func flatAssign(n int) []int32 { return make([]int32, n) }

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2, flatAssign(8), 1)
	c.put(0, 1, []float32{0})
	c.put(1, 1, []float32{1})
	if _, ok := c.get(0, 1); !ok {
		t.Fatal("vertex 0 missing before eviction")
	}
	// Touch 0, insert 2: the LRU entry is now 1.
	c.put(2, 1, []float32{2})
	if _, ok := c.get(1, 1); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	if _, ok := c.get(0, 1); !ok {
		t.Fatal("recently-used entry 0 evicted")
	}
	if _, ok := c.get(2, 1); !ok {
		t.Fatal("new entry 2 missing")
	}
	if got := c.len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
}

func TestCacheVersionMismatchIsMissAndEvicts(t *testing.T) {
	c := newCache(4, flatAssign(8), 1)
	c.put(3, 1, []float32{3})
	if _, ok := c.get(3, 2); ok {
		t.Fatal("stale version served")
	}
	// The stale entry is gone entirely: even the old version misses now.
	if _, ok := c.get(3, 1); ok {
		t.Fatal("stale entry not evicted on version mismatch")
	}
	if got := c.len(); got != 0 {
		t.Fatalf("len = %d after stale eviction, want 0", got)
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	assign := []int32{0, 1, 0, 1} // two shards
	c := newCache(8, assign, 2)
	for v := int32(0); v < 4; v++ {
		c.put(v, 7, []float32{float32(v)})
	}
	if got := c.len(); got != 4 {
		t.Fatalf("len = %d before invalidation, want 4", got)
	}
	c.invalidateAll()
	if got := c.len(); got != 0 {
		t.Fatalf("len = %d after invalidateAll, want 0", got)
	}
	for v := int32(0); v < 4; v++ {
		if _, ok := c.get(v, 7); ok {
			t.Fatalf("vertex %d survived invalidateAll", v)
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	var c *cache // entries <= 0 => nil cache
	if got := newCache(0, flatAssign(4), 2); got != nil {
		t.Fatal("newCache(0) should disable caching")
	}
	c.put(0, 1, []float32{0})
	if _, ok := c.get(0, 1); ok {
		t.Fatal("nil cache returned a hit")
	}
	c.invalidateAll()
	if c.len() != 0 {
		t.Fatal("nil cache has entries")
	}
}

func TestTokenBucketRefill(t *testing.T) {
	now := time.Unix(1700000000, 0)
	b := newTokenBucket(10, 2, now) // 10 tokens/s, burst 2, starts full
	if !b.allow(now) || !b.allow(now) {
		t.Fatal("burst tokens not available")
	}
	if b.allow(now) {
		t.Fatal("empty bucket admitted a request")
	}
	// 100ms refills exactly one token at 10/s.
	now = now.Add(100 * time.Millisecond)
	if !b.allow(now) {
		t.Fatal("refilled token not available")
	}
	if b.allow(now) {
		t.Fatal("second token appeared from a single refill")
	}
	// Refill caps at burst even after a long idle stretch.
	now = now.Add(time.Hour)
	if !b.allow(now) || !b.allow(now) {
		t.Fatal("burst not refilled after idle")
	}
	if b.allow(now) {
		t.Fatal("bucket exceeded burst capacity")
	}
}

func TestTokenBucketDisabled(t *testing.T) {
	var b *tokenBucket
	if b = newTokenBucket(0, 5, time.Unix(0, 0)); b != nil {
		t.Fatal("rate 0 should disable limiting")
	}
	for i := 0; i < 100; i++ {
		if !b.allow(time.Unix(0, 0)) {
			t.Fatal("nil bucket rejected a request")
		}
	}
}
